#!/usr/bin/env python3
"""Self-tests for tools/slint: each check (S1-S7) must catch its seeded
violation in a synthetic fixture, clean fixtures must produce zero
findings, and the suppression grammar must reject malformed entries.

Run directly (python3 tools/slint_test.py) or via the slint_selftest ctest.
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from slint import Analysis, parse_program  # noqa: E402
from slint import checks as C  # noqa: E402

# A miniature mutex.h: parse_program only reads the LockRank enum from it.
MUTEX_H = """
#pragma once
namespace fix {
enum class LockRank : unsigned {
  kLow = 10,
  kMid = 20,
  kHigh = 30,
};
}
"""

# Shared class declarations for the fixtures.
WIDGET_H = """
#pragma once
class Widget {
 public:
  void ErrorPathInversion();
  void SleepTwoFramesDown();
  void UnguardedWrite();
  void GuardedWrite();
  void BumpLocked() REQUIRES(low_);
 private:
  Mutex low_{LockRank::kLow, "fix.low"};
  Mutex high_{LockRank::kHigh, "fix.high"};
  int count_ GUARDED_BY(low_) = 0;
};
"""


def analyze(sources, observed=None):
    srcs = {"src/common/mutex.h": MUTEX_H}
    for name, text in sources.items():
        srcs["src/" + name] = text
    program = parse_program(srcs)
    analysis = Analysis(program)
    findings, edges = C.run_checks(program, analysis, observed)
    return program, analysis, findings, edges


def keys(findings, check=None):
    return [(f.check, f.key) for f in findings
            if check is None or f.check == check]


class S1RankInversionTest(unittest.TestCase):
    def test_inversion_on_error_path_is_found(self):
        # The ascending acquisition lives in an `if` no test may ever
        # enter — exactly what the runtime checker cannot see.
        _, _, findings, edges = analyze({
            "widget.h": WIDGET_H,
            "widget.cc": """
#include "widget.h"
void Widget::ErrorPathInversion() {
  MutexLock lock(&low_);
  count_ += 1;
  if (count_ < 0) {
    MutexLock recover(&high_);
    count_ = 0;
  }
}
""",
        })
        self.assertIn(("S1", "fix.low->fix.high"), keys(findings))
        self.assertIn(("fix.low", "fix.high"), edges)

    def test_descending_acquisition_is_clean(self):
        _, _, findings, _ = analyze({
            "widget.h": WIDGET_H,
            "widget.cc": """
#include "widget.h"
void Widget::ErrorPathInversion() {
  MutexLock outer(&high_);
  MutexLock inner(&low_);
  count_ += 1;
}
""",
        })
        self.assertEqual(keys(findings, "S1"), [])

    def test_striped_same_name_nesting_is_left_to_runtime(self):
        # Ascending same-rank striped acquisition is the documented idiom;
        # the static pass admits same-name edges (stripe ORDER is runtime's
        # job) and must not flag them.
        _, _, findings, _ = analyze({
            "striped.h": """
#pragma once
class Striped {
 public:
  void Ascending();
 private:
  Mutex s0_{LockRank::kMid, "fix.stripe", 0};
  Mutex s1_{LockRank::kMid, "fix.stripe", 1};
};
""",
            "striped.cc": """
#include "striped.h"
void Striped::Ascending() {
  MutexLock a(&s0_);
  MutexLock b(&s1_);
}
""",
        })
        self.assertEqual(keys(findings), [])

    def test_interprocedural_edge_through_callee(self):
        # Caller holds high_, callee (another class) takes its own lock at
        # a higher-or-equal rank: the edge only exists interprocedurally.
        _, _, findings, edges = analyze({
            "a.h": """
#pragma once
class Inner {
 public:
  void Touch();
 private:
  Mutex imu_{LockRank::kHigh, "fix.inner"};
};
class Outer {
 public:
  void Call(Inner* inner);
 private:
  Mutex omu_{LockRank::kLow, "fix.outer"};
};
""",
            "a.cc": """
#include "a.h"
void Inner::Touch() { MutexLock lock(&imu_); }
void Outer::Call(Inner* inner) {
  MutexLock lock(&omu_);
  inner->Touch();
}
""",
        })
        self.assertIn(("fix.outer", "fix.inner"), edges)
        self.assertIn(("S1", "fix.outer->fix.inner"), keys(findings))


class S2BlockingTest(unittest.TestCase):
    def test_sleep_two_frames_below_a_lock_is_found(self):
        _, _, findings, _ = analyze({
            "widget.h": WIDGET_H,
            "widget.cc": """
#include "widget.h"
static void NapInner() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
static void Nap() { NapInner(); }
void Widget::SleepTwoFramesDown() {
  MutexLock lock(&low_);
  Nap();
}
""",
        })
        s2 = keys(findings, "S2")
        self.assertIn(("S2", "Widget::SleepTwoFramesDown:sleep"), s2)
        # The witness chain names the intermediate frame.
        msg = [f.message for f in findings
               if f.key == "Widget::SleepTwoFramesDown:sleep"][0]
        self.assertIn("Nap", msg)

    def test_condvar_wait_on_own_mutex_is_exempt(self):
        _, _, findings, _ = analyze({
            "waiter.h": """
#pragma once
class Waiter {
 public:
  void WaitIdle();
  void WaitHoldingForeign();
 private:
  Mutex mu_{LockRank::kLow, "fix.waiter"};
  Mutex other_{LockRank::kHigh, "fix.other"};
  CondVar cv_;
  bool busy_ = false;
};
""",
            "waiter.cc": """
#include "waiter.h"
void Waiter::WaitIdle() {
  MutexLock lock(&mu_);
  while (busy_) cv_.Wait(&mu_);
}
void Waiter::WaitHoldingForeign() {
  MutexLock outer(&other_);
  MutexLock lock(&mu_);
  while (busy_) cv_.Wait(&mu_);
}
""",
        })
        s2 = keys(findings, "S2")
        self.assertNotIn(("S2", "Waiter::WaitIdle:condvar"), s2)
        # Waiting with a FOREIGN lock also held parks that lock: flagged.
        self.assertIn(("S2", "Waiter::WaitHoldingForeign:condvar"), s2)

    def test_no_lock_held_means_no_finding(self):
        _, _, findings, _ = analyze({
            "widget.h": WIDGET_H,
            "widget.cc": """
#include "widget.h"
void Widget::SleepTwoFramesDown() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  MutexLock lock(&low_);
  count_ += 1;
}
""",
        })
        self.assertEqual(keys(findings, "S2"), [])


class S3GuardedByTest(unittest.TestCase):
    def test_unguarded_access_is_found(self):
        _, _, findings, _ = analyze({
            "widget.h": WIDGET_H,
            "widget.cc": """
#include "widget.h"
void Widget::UnguardedWrite() { count_ = 7; }
""",
        })
        self.assertIn(("S3", "Widget::UnguardedWrite:count_"),
                      keys(findings, "S3"))

    def test_guard_scope_and_requires_both_satisfy(self):
        _, _, findings, _ = analyze({
            "widget.h": WIDGET_H,
            "widget.cc": """
#include "widget.h"
void Widget::GuardedWrite() {
  MutexLock lock(&low_);
  count_ = 7;
}
void Widget::BumpLocked() { count_ += 1; }
""",
        })
        self.assertEqual(keys(findings, "S3"), [])


class S4SubsetTest(unittest.TestCase):
    FIXTURE = {
        "widget.h": WIDGET_H,
        "widget.cc": """
#include "widget.h"
void Widget::GuardedWrite() {
  MutexLock outer(&high_);
  MutexLock lock(&low_);
  count_ = 7;
}
""",
    }

    def test_observed_edge_missing_from_static_is_found(self):
        observed = """digraph lock_order {
  "fix.low" [lockrank=10];
  "fix.high" [lockrank=30];
  "fix.low" -> "fix.high";
}
"""
        _, _, findings, _ = analyze(self.FIXTURE, observed)
        self.assertIn(("S4", "fix.low->fix.high"), keys(findings, "S4"))

    def test_observed_subset_and_foreign_nodes_pass(self):
        observed = """digraph lock_order {
  "fix.high" -> "fix.low";
  "test.only" -> "fix.low";
}
"""
        _, _, findings, _ = analyze(self.FIXTURE, observed)
        # high->low is in the static graph; test.only is outside the
        # static universe (a test-local lock) and is ignored.
        self.assertEqual(keys(findings, "S4"), [])


class S5GuardCompletenessTest(unittest.TestCase):
    def test_submit_lambda_write_to_unannotated_member_is_found(self):
        # Tracker escapes to a worker thread via the Submit lambda; hits_
        # is written there but carries no GUARDED_BY and is not atomic.
        _, _, findings, _ = analyze({
            "tracker.h": """
#pragma once
class Tracker {
 public:
  void Kick();
 private:
  ThreadPool* pool_;
  int hits_ = 0;
};
""",
            "tracker.cc": """
#include "tracker.h"
void Tracker::Kick() {
  pool_->Submit([this] { hits_ = hits_ + 1; });
}
""",
        })
        self.assertIn(("S5", "Tracker:hits_"), keys(findings, "S5"))

    def test_annotated_and_atomic_members_are_clean(self):
        _, _, findings, _ = analyze({
            "tracker.h": """
#pragma once
class SafeTracker {
 public:
  void Kick();
 private:
  ThreadPool* pool_;
  Mutex mu_{LockRank::kMid, "fix.tracker"};
  int hits_ GUARDED_BY(mu_) = 0;
  std::atomic<int> spins_{0};
};
""",
            "tracker.cc": """
#include "tracker.h"
void SafeTracker::Kick() {
  pool_->Submit([this] {
    MutexLock lock(&mu_);
    hits_ = hits_ + 1;
    spins_ = spins_ + 1;
  });
}
""",
        })
        self.assertEqual(keys(findings, "S5"), [])

    def test_const_after_construction_member_is_clean(self):
        # name_ is written only by the constructor, which runs before the
        # object can be shared with the pool workers.
        _, _, findings, _ = analyze({
            "tracker.h": """
#pragma once
class NamedTracker {
 public:
  NamedTracker();
  void Kick();
 private:
  ThreadPool* pool_;
  int name_ = 0;
};
""",
            "tracker.cc": """
#include "tracker.h"
NamedTracker::NamedTracker() { name_ = 7; }
void NamedTracker::Kick() {
  pool_->Submit([this] { int x = name_; (void)x; });
}
""",
        })
        self.assertEqual(keys(findings, "S5"), [])


class S6TornStateTest(unittest.TestCase):
    COMMITTER_H = """
#pragma once
class Committer {
 public:
  Status Commit();
  Status CommitWithRollback();
  Status CommitViaHelper();
  Status Stamp();
  Status Purge();
 private:
  void Retract();
  KvStore* kv_;
};
"""

    def test_error_return_between_two_writes_without_rollback_is_found(self):
        _, _, findings, _ = analyze({
            "committer.h": self.COMMITTER_H,
            "committer.cc": """
#include "committer.h"
Status Committer::Commit() {
  SL_RETURN_NOT_OK(kv_->Write("a", "1"));
  Status b = kv_->Write("b", "2");
  if (!b.ok()) return b;
  return Status::OK();
}
""",
        })
        self.assertIn(("S6", "Committer::Commit:torn"), keys(findings, "S6"))

    def test_discarded_delete_before_the_return_is_a_rollback(self):
        _, _, findings, _ = analyze({
            "committer.h": self.COMMITTER_H,
            "committer.cc": """
#include "committer.h"
Status Committer::CommitWithRollback() {
  SL_RETURN_NOT_OK(kv_->Write("a", "1"));
  Status b = kv_->Write("b", "2");
  if (!b.ok()) {
    kv_->Delete("a").LogIgnored("rollback");
    return b;
  }
  return Status::OK();
}
""",
        })
        self.assertEqual(keys(findings, "S6"), [])

    def test_factored_out_undo_helper_is_a_rollback(self):
        # Retract() performs no mutation of its own (its Delete is
        # discarded, i.e. best-effort) — calling it counts as the undo.
        _, _, findings, _ = analyze({
            "committer.h": self.COMMITTER_H,
            "committer.cc": """
#include "committer.h"
void Committer::Retract() { kv_->Delete("a").LogIgnored("rollback"); }
Status Committer::CommitViaHelper() {
  SL_RETURN_NOT_OK(kv_->Write("a", "1"));
  Status b = kv_->Write("b", "2");
  if (!b.ok()) {
    Retract();
    return b;
  }
  return Status::OK();
}
""",
        })
        self.assertEqual(keys(findings, "S6"), [])

    def test_terminal_return_mutation_cannot_tear(self):
        # `return kv_->Write(...)` ends its path: nothing can fail after
        # it, so only one non-terminal mutation remains — below the bar.
        _, _, findings, _ = analyze({
            "committer.h": self.COMMITTER_H,
            "committer.cc": """
#include "committer.h"
Status Committer::Stamp() {
  SL_RETURN_NOT_OK(kv_->Write("a", "1"));
  return kv_->Write("b", "2");
}
""",
        })
        self.assertEqual(keys(findings, "S6"), [])

    def test_all_delete_kind_protocol_is_exempt(self):
        # A torn delete protocol leaves re-drivable garbage; re-running
        # the delete IS the rollback.
        _, _, findings, _ = analyze({
            "committer.h": self.COMMITTER_H,
            "committer.cc": """
#include "committer.h"
Status Committer::Purge() {
  SL_RETURN_NOT_OK(kv_->Delete("a"));
  SL_RETURN_NOT_OK(kv_->Delete("b"));
  return Status::OK();
}
""",
        })
        self.assertEqual(keys(findings, "S6"), [])


class S7PublishLastTest(unittest.TestCase):
    CATALOG_H = """
#pragma once
class Catalog {
 public:
  Status CreatePublishFirst();
  Status CreatePublishLast();
  Status CreateWithGc();
 private:
  KvStore* kv_;
  std::map<std::string, int> live_;
};
"""

    def test_fallible_call_after_member_map_publish_is_found(self):
        _, _, findings, _ = analyze({
            "catalog.h": self.CATALOG_H,
            "catalog.cc": """
#include "catalog.h"
Status Catalog::CreatePublishFirst() {
  SL_RETURN_NOT_OK(kv_->Write("meta", "1"));
  live_["t"] = 1;
  return kv_->Write("audit", "2");
}
""",
        })
        self.assertIn(("S7", "Catalog::CreatePublishFirst:publish"),
                      keys(findings, "S7"))

    def test_publish_as_last_step_is_clean(self):
        _, _, findings, _ = analyze({
            "catalog.h": self.CATALOG_H,
            "catalog.cc": """
#include "catalog.h"
Status Catalog::CreatePublishLast() {
  SL_RETURN_NOT_OK(kv_->Write("meta", "1"));
  SL_RETURN_NOT_OK(kv_->Write("audit", "2"));
  live_["t"] = 1;
  return Status::OK();
}
""",
        })
        self.assertEqual(keys(findings, "S7"), [])

    def test_discarded_cleanup_after_publish_is_clean(self):
        # Best-effort GC after the flip cannot tear the commit: its
        # status is absorbed, so the protocol cannot error past it.
        _, _, findings, _ = analyze({
            "catalog.h": self.CATALOG_H,
            "catalog.cc": """
#include "catalog.h"
Status Catalog::CreateWithGc() {
  SL_RETURN_NOT_OK(kv_->Write("meta", "1"));
  live_["t"] = 1;
  kv_->Delete("tmp").LogIgnored("gc");
  return Status::OK();
}
""",
        })
        self.assertEqual(keys(findings, "S7"), [])


class DotRoundTripTest(unittest.TestCase):
    def test_write_then_parse_preserves_nodes_and_edges(self):
        program, _, _, edges = analyze(S4SubsetTest.FIXTURE)
        text = C.write_dot(program, edges)
        nodes, parsed_edges = C.parse_dot(text)
        self.assertEqual(nodes, {"fix.low", "fix.high"})
        self.assertIn(("fix.high", "fix.low"), parsed_edges)
        # Stable: emitting twice yields identical text.
        self.assertEqual(text, C.write_dot(program, edges))


class SuppressionsTest(unittest.TestCase):
    def test_justified_entry_suppresses_exactly_its_finding(self):
        _, _, findings, _ = analyze({
            "widget.h": WIDGET_H,
            "widget.cc": """
#include "widget.h"
void Widget::UnguardedWrite() { count_ = 7; }
""",
        })
        supps = C.load_suppressions(
            "S3 Widget::UnguardedWrite:count_ -- stats read, torn ok\n")
        remaining, unused = C.apply_suppressions(findings, supps)
        self.assertEqual(keys(remaining, "S3"), [])
        self.assertEqual(unused, [])

    def test_trailing_star_wildcard_matches_key_prefix(self):
        _, _, findings, _ = analyze({
            "committer.h": S6TornStateTest.COMMITTER_H,
            "committer.cc": """
#include "committer.h"
Status Committer::Commit() {
  SL_RETURN_NOT_OK(kv_->Write("a", "1"));
  Status b = kv_->Write("b", "2");
  if (!b.ok()) return b;
  return Status::OK();
}
""",
        })
        supps = C.load_suppressions(
            "S6 Committer::* -- fixture protocol is at-least-once\n")
        remaining, unused = C.apply_suppressions(findings, supps)
        self.assertEqual(keys(remaining, "S6"), [])
        self.assertEqual(unused, [])

    def test_unused_suppression_is_itself_an_error(self):
        remaining, unused = C.apply_suppressions(
            [], C.load_suppressions("S1 a->b -- stale\n"))
        self.assertEqual(remaining, [])
        self.assertEqual(len(unused), 1)
        self.assertIn("unused suppression", unused[0].message)

    def test_malformed_lines_are_rejected(self):
        for bad in ("S3 key.without.justification\n",
                    "S9 key -- bogus check id\n",
                    "key -- no check id\n"):
            with self.assertRaises(ValueError):
                C.load_suppressions(bad)

    def test_comments_and_blanks_are_ignored(self):
        self.assertEqual(
            C.load_suppressions("# comment\n\nS2 f:sleep -- why\n"),
            [("S2", "f:sleep", "why", 3)])


class ModelSanityTest(unittest.TestCase):
    def test_mutex_db_records_rank_stripe_owner(self):
        program, _, _, _ = analyze({
            "striped.h": """
#pragma once
class Striped {
 private:
  Mutex s0_{LockRank::kMid, "fix.stripe", 0};
  Mutex plain_{LockRank::kLow, "fix.plain"};
};
""",
        })
        stripe = program.mutexes["fix.stripe"]
        self.assertEqual(stripe.rank, 20)
        self.assertTrue(stripe.striped)
        self.assertEqual(stripe.owner_class, "Striped")
        plain = program.mutexes["fix.plain"]
        self.assertEqual(plain.rank, 10)
        self.assertFalse(plain.striped)

    def test_submit_lambda_is_deferred_not_inline(self):
        # A lambda handed to ThreadPool::Submit runs later on a worker
        # with nothing held: its acquisitions must NOT create edges from
        # the submitter's held set.
        _, _, findings, edges = analyze({
            "widget.h": WIDGET_H,
            "widget.cc": """
#include "widget.h"
void Widget::GuardedWrite() {
  MutexLock lock(&low_);
  count_ = 1;
  pool_->Submit([this] {
    MutexLock inner(&high_);
  });
}
""",
        })
        self.assertNotIn(("fix.low", "fix.high"), edges)
        self.assertEqual(keys(findings, "S1"), [])


if __name__ == "__main__":
    unittest.main()
