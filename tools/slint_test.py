#!/usr/bin/env python3
"""Self-tests for tools/slint: each check (S1-S4) must catch its seeded
violation in a synthetic fixture, clean fixtures must produce zero
findings, and the suppression grammar must reject malformed entries.

Run directly (python3 tools/slint_test.py) or via the slint_selftest ctest.
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from slint import Analysis, parse_program  # noqa: E402
from slint import checks as C  # noqa: E402

# A miniature mutex.h: parse_program only reads the LockRank enum from it.
MUTEX_H = """
#pragma once
namespace fix {
enum class LockRank : unsigned {
  kLow = 10,
  kMid = 20,
  kHigh = 30,
};
}
"""

# Shared class declarations for the fixtures.
WIDGET_H = """
#pragma once
class Widget {
 public:
  void ErrorPathInversion();
  void SleepTwoFramesDown();
  void UnguardedWrite();
  void GuardedWrite();
  void BumpLocked() REQUIRES(low_);
 private:
  Mutex low_{LockRank::kLow, "fix.low"};
  Mutex high_{LockRank::kHigh, "fix.high"};
  int count_ GUARDED_BY(low_) = 0;
};
"""


def analyze(sources, observed=None):
    srcs = {"src/common/mutex.h": MUTEX_H}
    for name, text in sources.items():
        srcs["src/" + name] = text
    program = parse_program(srcs)
    analysis = Analysis(program)
    findings, edges = C.run_checks(program, analysis, observed)
    return program, analysis, findings, edges


def keys(findings, check=None):
    return [(f.check, f.key) for f in findings
            if check is None or f.check == check]


class S1RankInversionTest(unittest.TestCase):
    def test_inversion_on_error_path_is_found(self):
        # The ascending acquisition lives in an `if` no test may ever
        # enter — exactly what the runtime checker cannot see.
        _, _, findings, edges = analyze({
            "widget.h": WIDGET_H,
            "widget.cc": """
#include "widget.h"
void Widget::ErrorPathInversion() {
  MutexLock lock(&low_);
  count_ += 1;
  if (count_ < 0) {
    MutexLock recover(&high_);
    count_ = 0;
  }
}
""",
        })
        self.assertIn(("S1", "fix.low->fix.high"), keys(findings))
        self.assertIn(("fix.low", "fix.high"), edges)

    def test_descending_acquisition_is_clean(self):
        _, _, findings, _ = analyze({
            "widget.h": WIDGET_H,
            "widget.cc": """
#include "widget.h"
void Widget::ErrorPathInversion() {
  MutexLock outer(&high_);
  MutexLock inner(&low_);
  count_ += 1;
}
""",
        })
        self.assertEqual(keys(findings, "S1"), [])

    def test_striped_same_name_nesting_is_left_to_runtime(self):
        # Ascending same-rank striped acquisition is the documented idiom;
        # the static pass admits same-name edges (stripe ORDER is runtime's
        # job) and must not flag them.
        _, _, findings, _ = analyze({
            "striped.h": """
#pragma once
class Striped {
 public:
  void Ascending();
 private:
  Mutex s0_{LockRank::kMid, "fix.stripe", 0};
  Mutex s1_{LockRank::kMid, "fix.stripe", 1};
};
""",
            "striped.cc": """
#include "striped.h"
void Striped::Ascending() {
  MutexLock a(&s0_);
  MutexLock b(&s1_);
}
""",
        })
        self.assertEqual(keys(findings), [])

    def test_interprocedural_edge_through_callee(self):
        # Caller holds high_, callee (another class) takes its own lock at
        # a higher-or-equal rank: the edge only exists interprocedurally.
        _, _, findings, edges = analyze({
            "a.h": """
#pragma once
class Inner {
 public:
  void Touch();
 private:
  Mutex imu_{LockRank::kHigh, "fix.inner"};
};
class Outer {
 public:
  void Call(Inner* inner);
 private:
  Mutex omu_{LockRank::kLow, "fix.outer"};
};
""",
            "a.cc": """
#include "a.h"
void Inner::Touch() { MutexLock lock(&imu_); }
void Outer::Call(Inner* inner) {
  MutexLock lock(&omu_);
  inner->Touch();
}
""",
        })
        self.assertIn(("fix.outer", "fix.inner"), edges)
        self.assertIn(("S1", "fix.outer->fix.inner"), keys(findings))


class S2BlockingTest(unittest.TestCase):
    def test_sleep_two_frames_below_a_lock_is_found(self):
        _, _, findings, _ = analyze({
            "widget.h": WIDGET_H,
            "widget.cc": """
#include "widget.h"
static void NapInner() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
static void Nap() { NapInner(); }
void Widget::SleepTwoFramesDown() {
  MutexLock lock(&low_);
  Nap();
}
""",
        })
        s2 = keys(findings, "S2")
        self.assertIn(("S2", "Widget::SleepTwoFramesDown:sleep"), s2)
        # The witness chain names the intermediate frame.
        msg = [f.message for f in findings
               if f.key == "Widget::SleepTwoFramesDown:sleep"][0]
        self.assertIn("Nap", msg)

    def test_condvar_wait_on_own_mutex_is_exempt(self):
        _, _, findings, _ = analyze({
            "waiter.h": """
#pragma once
class Waiter {
 public:
  void WaitIdle();
  void WaitHoldingForeign();
 private:
  Mutex mu_{LockRank::kLow, "fix.waiter"};
  Mutex other_{LockRank::kHigh, "fix.other"};
  CondVar cv_;
  bool busy_ = false;
};
""",
            "waiter.cc": """
#include "waiter.h"
void Waiter::WaitIdle() {
  MutexLock lock(&mu_);
  while (busy_) cv_.Wait(&mu_);
}
void Waiter::WaitHoldingForeign() {
  MutexLock outer(&other_);
  MutexLock lock(&mu_);
  while (busy_) cv_.Wait(&mu_);
}
""",
        })
        s2 = keys(findings, "S2")
        self.assertNotIn(("S2", "Waiter::WaitIdle:condvar"), s2)
        # Waiting with a FOREIGN lock also held parks that lock: flagged.
        self.assertIn(("S2", "Waiter::WaitHoldingForeign:condvar"), s2)

    def test_no_lock_held_means_no_finding(self):
        _, _, findings, _ = analyze({
            "widget.h": WIDGET_H,
            "widget.cc": """
#include "widget.h"
void Widget::SleepTwoFramesDown() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  MutexLock lock(&low_);
  count_ += 1;
}
""",
        })
        self.assertEqual(keys(findings, "S2"), [])


class S3GuardedByTest(unittest.TestCase):
    def test_unguarded_access_is_found(self):
        _, _, findings, _ = analyze({
            "widget.h": WIDGET_H,
            "widget.cc": """
#include "widget.h"
void Widget::UnguardedWrite() { count_ = 7; }
""",
        })
        self.assertIn(("S3", "Widget::UnguardedWrite:count_"),
                      keys(findings, "S3"))

    def test_guard_scope_and_requires_both_satisfy(self):
        _, _, findings, _ = analyze({
            "widget.h": WIDGET_H,
            "widget.cc": """
#include "widget.h"
void Widget::GuardedWrite() {
  MutexLock lock(&low_);
  count_ = 7;
}
void Widget::BumpLocked() { count_ += 1; }
""",
        })
        self.assertEqual(keys(findings, "S3"), [])


class S4SubsetTest(unittest.TestCase):
    FIXTURE = {
        "widget.h": WIDGET_H,
        "widget.cc": """
#include "widget.h"
void Widget::GuardedWrite() {
  MutexLock outer(&high_);
  MutexLock lock(&low_);
  count_ = 7;
}
""",
    }

    def test_observed_edge_missing_from_static_is_found(self):
        observed = """digraph lock_order {
  "fix.low" [lockrank=10];
  "fix.high" [lockrank=30];
  "fix.low" -> "fix.high";
}
"""
        _, _, findings, _ = analyze(self.FIXTURE, observed)
        self.assertIn(("S4", "fix.low->fix.high"), keys(findings, "S4"))

    def test_observed_subset_and_foreign_nodes_pass(self):
        observed = """digraph lock_order {
  "fix.high" -> "fix.low";
  "test.only" -> "fix.low";
}
"""
        _, _, findings, _ = analyze(self.FIXTURE, observed)
        # high->low is in the static graph; test.only is outside the
        # static universe (a test-local lock) and is ignored.
        self.assertEqual(keys(findings, "S4"), [])


class DotRoundTripTest(unittest.TestCase):
    def test_write_then_parse_preserves_nodes_and_edges(self):
        program, _, _, edges = analyze(S4SubsetTest.FIXTURE)
        text = C.write_dot(program, edges)
        nodes, parsed_edges = C.parse_dot(text)
        self.assertEqual(nodes, {"fix.low", "fix.high"})
        self.assertIn(("fix.high", "fix.low"), parsed_edges)
        # Stable: emitting twice yields identical text.
        self.assertEqual(text, C.write_dot(program, edges))


class SuppressionsTest(unittest.TestCase):
    def test_justified_entry_suppresses_exactly_its_finding(self):
        _, _, findings, _ = analyze({
            "widget.h": WIDGET_H,
            "widget.cc": """
#include "widget.h"
void Widget::UnguardedWrite() { count_ = 7; }
""",
        })
        supps = C.load_suppressions(
            "S3 Widget::UnguardedWrite:count_ -- stats read, torn ok\n")
        remaining, unused = C.apply_suppressions(findings, supps)
        self.assertEqual(keys(remaining, "S3"), [])
        self.assertEqual(unused, [])

    def test_unused_suppression_is_itself_an_error(self):
        remaining, unused = C.apply_suppressions(
            [], C.load_suppressions("S1 a->b -- stale\n"))
        self.assertEqual(remaining, [])
        self.assertEqual(len(unused), 1)
        self.assertIn("unused suppression", unused[0].message)

    def test_malformed_lines_are_rejected(self):
        for bad in ("S3 key.without.justification\n",
                    "S9 key -- bogus check id\n",
                    "key -- no check id\n"):
            with self.assertRaises(ValueError):
                C.load_suppressions(bad)

    def test_comments_and_blanks_are_ignored(self):
        self.assertEqual(
            C.load_suppressions("# comment\n\nS2 f:sleep -- why\n"),
            [("S2", "f:sleep", "why", 3)])


class ModelSanityTest(unittest.TestCase):
    def test_mutex_db_records_rank_stripe_owner(self):
        program, _, _, _ = analyze({
            "striped.h": """
#pragma once
class Striped {
 private:
  Mutex s0_{LockRank::kMid, "fix.stripe", 0};
  Mutex plain_{LockRank::kLow, "fix.plain"};
};
""",
        })
        stripe = program.mutexes["fix.stripe"]
        self.assertEqual(stripe.rank, 20)
        self.assertTrue(stripe.striped)
        self.assertEqual(stripe.owner_class, "Striped")
        plain = program.mutexes["fix.plain"]
        self.assertEqual(plain.rank, 10)
        self.assertFalse(plain.striped)

    def test_submit_lambda_is_deferred_not_inline(self):
        # A lambda handed to ThreadPool::Submit runs later on a worker
        # with nothing held: its acquisitions must NOT create edges from
        # the submitter's held set.
        _, _, findings, edges = analyze({
            "widget.h": WIDGET_H,
            "widget.cc": """
#include "widget.h"
void Widget::GuardedWrite() {
  MutexLock lock(&low_);
  count_ = 1;
  pool_->Submit([this] {
    MutexLock inner(&high_);
  });
}
""",
        })
        self.assertNotIn(("fix.low", "fix.high"), edges)
        self.assertEqual(keys(findings, "S1"), [])


if __name__ == "__main__":
    unittest.main()
