#!/usr/bin/env python3
"""Benchmark regression gate: compare bench outputs against a baseline.

Inputs are any mix of
  * BenchReport files (BENCH_<name>.json, written by bench binaries run
    with --json_out=PATH; see bench/bench_report.h):
        {"bench": "fig15_metadata", "metrics": {...}, "registry": {...}}
    Metrics flatten to "<bench>.<metric>"; registry counters flatten to
    "<bench>.registry.<counter>". Both are simulated-clock / logical-count
    values, fully deterministic, so tight tolerances are safe.
  * google-benchmark JSON (--benchmark_format=json --benchmark_out=PATH):
        {"context": {...}, "benchmarks": [{"name": ..., "real_time": ...}]}
    Each entry flattens to "gbench.<name>.real_time" (and .cpu_time).
    These are wall-clock and machine-dependent; the checked-in baseline
    deliberately tracks none of them (see DESIGN.md, "Observability").

The baseline (bench/baseline.json) lists the tracked metrics:
    {"default_tolerance": 0.25,
     "metrics": [{"name": "...", "value": 123.0, "direction": "lower"},
                 {"name": "...", "value": 456.0, "direction": "higher",
                  "tolerance": 0.10}, ...]}
"direction" says which way is better: a "lower"-is-better metric fails when
measured > value * (1 + tolerance); a "higher"-is-better metric fails when
measured < value * (1 - tolerance). A tracked metric missing from the
measured set always fails (a silently-vanished bench is a regression).

Usage:
    bench_compare.py --baseline bench/baseline.json FILE [FILE ...]
    bench_compare.py --baseline bench/baseline.json --update FILE [FILE ...]

--update rewrites the baseline values in place from the measured run
(directions and tolerances are preserved); tools/update_bench_baseline.sh
wraps the build-run-update cycle. Exit status: 0 = all tracked metrics
within tolerance, 1 = regression or missing metric, 2 = usage/parse error.
"""

import argparse
import json
import sys


def flatten_report(doc):
    """Flatten one parsed JSON document into {metric_name: float}."""
    out = {}
    if "benchmarks" in doc:  # google-benchmark format
        for entry in doc["benchmarks"]:
            name = entry.get("name")
            if not name:
                continue
            for field in ("real_time", "cpu_time"):
                if field in entry:
                    out[f"gbench.{name}.{field}"] = float(entry[field])
    elif "bench" in doc:  # BenchReport format
        bench = doc["bench"]
        for metric, value in doc.get("metrics", {}).items():
            out[f"{bench}.{metric}"] = float(value)
        for counter, value in doc.get("registry", {}).get(
                "counters", {}).items():
            out[f"{bench}.registry.{counter}"] = float(value)
    else:
        raise ValueError("unrecognized bench JSON (no 'bench' or "
                         "'benchmarks' key)")
    return out


def load_measurements(paths):
    measured = {}
    for path in paths:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
        for name, value in flatten_report(doc).items():
            if name in measured:
                raise ValueError(f"{path}: duplicate metric '{name}'")
            measured[name] = value
    return measured


def compare(baseline, measured):
    """Returns (rows, failures). Each row is a display tuple."""
    default_tol = float(baseline.get("default_tolerance", 0.25))
    rows = []
    failures = 0
    for entry in baseline.get("metrics", []):
        name = entry["name"]
        base = float(entry["value"])
        direction = entry.get("direction", "lower")
        tol = float(entry.get("tolerance", default_tol))
        if name not in measured:
            rows.append((name, base, None, "MISSING"))
            failures += 1
            continue
        value = measured[name]
        if direction == "lower":
            bad = value > base * (1.0 + tol)
        elif direction == "higher":
            bad = value < base * (1.0 - tol)
        else:
            raise ValueError(f"{name}: bad direction '{direction}'")
        delta = 0.0 if base == 0 else (value - base) / base * 100.0
        rows.append((name, base, value, f"FAIL {delta:+.1f}%" if bad
                     else f"ok {delta:+.1f}%"))
        if bad:
            failures += 1
    return rows, failures


def update_baseline(baseline, measured, baseline_path):
    missing = []
    for entry in baseline.get("metrics", []):
        if entry["name"] in measured:
            entry["value"] = measured[entry["name"]]
        else:
            missing.append(entry["name"])
    if missing:
        for name in missing:
            print(f"bench_compare: --update: no measurement for '{name}'",
                  file=sys.stderr)
        return 1
    with open(baseline_path, "w", encoding="utf-8") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"bench_compare: baseline updated "
          f"({len(baseline.get('metrics', []))} metrics)")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="compare bench JSON outputs against a baseline")
    parser.add_argument("--baseline", required=True,
                        help="path to bench/baseline.json")
    parser.add_argument("--update", action="store_true",
                        help="rewrite baseline values from this run")
    parser.add_argument("files", nargs="+",
                        help="BENCH_*.json and/or google-benchmark JSON")
    args = parser.parse_args(argv)

    try:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
        measured = load_measurements(args.files)
    except (OSError, ValueError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    if args.update:
        return update_baseline(baseline, measured, args.baseline)

    try:
        rows, failures = compare(baseline, measured)
    except ValueError as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2
    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'metric':<{width}}  {'baseline':>14}  {'measured':>14}  status")
    for name, base, value, status in rows:
        shown = "-" if value is None else f"{value:14.4g}"
        print(f"{name:<{width}}  {base:14.4g}  {shown:>14}  {status}")
    if failures:
        print(f"bench_compare: {failures} regression(s) out of "
              f"{len(rows)} tracked metrics")
        return 1
    print(f"bench_compare: all {len(rows)} tracked metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
