#!/usr/bin/env python3
"""Self-test for tools/bench_compare.py, run as the `bench_compare_selftest`
ctest.

Exercises the regression gate end to end on synthetic bench outputs: a 25%
regression in a lower-is-better metric must fail the gate (the CI contract),
within-tolerance drift must pass, a vanished metric must fail, --update must
rewrite values in place, and both input formats (BenchReport and
google-benchmark JSON) must parse.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_compare  # noqa: E402


def write_json(directory, name, doc):
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f)
    return path


BASELINE = {
    "default_tolerance": 0.25,
    "metrics": [
        {"name": "figX.metadata_ms", "value": 100.0, "direction": "lower"},
        {"name": "figX.capacity", "value": 1000.0, "direction": "higher"},
    ],
}


def report(metadata_ms, capacity):
    return {"bench": "figX",
            "metrics": {"metadata_ms": metadata_ms, "capacity": capacity},
            "registry": {"counters": {"kv.get.ops": 42}}}


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.baseline = write_json(self.dir.name, "baseline.json", BASELINE)

    def tearDown(self):
        self.dir.cleanup()

    def run_gate(self, *docs, extra=()):
        files = [write_json(self.dir.name, f"BENCH_{i}.json", doc)
                 for i, doc in enumerate(docs)]
        return bench_compare.main(
            ["--baseline", self.baseline, *extra, *files])

    def test_within_tolerance_passes(self):
        # +20% on lower-is-better and -20% on higher-is-better: both inside
        # the 25% default tolerance.
        self.assertEqual(self.run_gate(report(120.0, 800.0)), 0)

    def test_synthetic_25_percent_regression_fails(self):
        # The acceptance scenario: >25% slowdown on a lower-is-better
        # metric exits non-zero.
        self.assertEqual(self.run_gate(report(126.0, 1000.0)), 1)

    def test_higher_direction_regression_fails(self):
        self.assertEqual(self.run_gate(report(100.0, 700.0)), 1)

    def test_missing_metric_fails(self):
        doc = {"bench": "figX", "metrics": {"metadata_ms": 100.0}}
        self.assertEqual(self.run_gate(doc), 1)

    def test_per_metric_tolerance_overrides_default(self):
        tight = json.loads(json.dumps(BASELINE))
        tight["metrics"][0]["tolerance"] = 0.05
        self.baseline = write_json(self.dir.name, "tight.json", tight)
        self.assertEqual(self.run_gate(report(110.0, 1000.0)), 1)

    def test_registry_counters_are_comparable(self):
        doc = json.loads(json.dumps(BASELINE))
        doc["metrics"].append({"name": "figX.registry.kv.get.ops",
                               "value": 42.0, "direction": "lower"})
        self.baseline = write_json(self.dir.name, "reg.json", doc)
        self.assertEqual(self.run_gate(report(100.0, 1000.0)), 0)

    def test_update_rewrites_values_and_then_passes(self):
        self.assertEqual(
            self.run_gate(report(150.0, 2000.0), extra=("--update",)), 0)
        with open(self.baseline, encoding="utf-8") as f:
            updated = json.load(f)
        self.assertEqual(updated["metrics"][0]["value"], 150.0)
        self.assertEqual(updated["metrics"][1]["value"], 2000.0)
        self.assertEqual(updated["metrics"][0]["direction"], "lower")
        self.assertEqual(self.run_gate(report(150.0, 2000.0)), 0)

    def test_update_with_missing_metric_fails(self):
        doc = {"bench": "figX", "metrics": {"metadata_ms": 1.0}}
        self.assertEqual(self.run_gate(doc, extra=("--update",)), 1)

    def test_google_benchmark_format_parses(self):
        doc = {"context": {"host_name": "ci"},
               "benchmarks": [{"name": "BM_Crc32c/1024",
                               "real_time": 123.4, "cpu_time": 120.0}]}
        flat = bench_compare.flatten_report(doc)
        self.assertEqual(flat["gbench.BM_Crc32c/1024.real_time"], 123.4)
        self.assertEqual(flat["gbench.BM_Crc32c/1024.cpu_time"], 120.0)

    def test_unknown_format_is_a_usage_error(self):
        path = write_json(self.dir.name, "junk.json", {"what": 1})
        self.assertEqual(
            bench_compare.main(["--baseline", self.baseline, path]), 2)

    def test_duplicate_metric_across_files_is_an_error(self):
        files = [write_json(self.dir.name, f"d{i}.json", report(1.0, 1.0))
                 for i in range(2)]
        self.assertEqual(
            bench_compare.main(["--baseline", self.baseline, *files]), 2)


if __name__ == "__main__":
    unittest.main()
