"""Source model extraction: scopes, classes, functions, and the mutex DB.

Everything here works on comment/string-stripped text (reusing
tools/lint.py's strip_comments tokenizer, which preserves newlines so line
numbers survive) with targeted dips back into the raw text to recover the
one thing stripping erases: the constructor-site name strings that key the
mutex database.

This is a heuristic C++ reader, not a compiler frontend. It understands the
shapes this codebase actually uses — out-of-class definitions, inline class
methods, constructor init-lists, default member initializers, nested
structs, lambdas — and reports what it could not attribute (see
Program.parse_gaps) instead of silently guessing.
"""

import hashlib
import multiprocessing
import os
import pickle
import re
import sys

# Bump whenever the parse model changes shape: invalidates every cached
# fragment under build/slint_cache/ (cache keys include this stamp).
PARSER_VERSION = 2

_TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)
import lint  # noqa: E402  (tools/lint.py: strip_comments)

strip_comments = lint.strip_comments

# Trailing qualifiers/annotation macros a function header may carry between
# its parameter list and its body. Macros capture their argument lists.
_QUAL_WORDS = ("const", "noexcept", "override", "final", "mutable",
               "NO_THREAD_SAFETY_ANALYSIS", "SCOPED_CAPABILITY")
_QUAL_MACROS = ("REQUIRES_SHARED", "REQUIRES", "ACQUIRE_SHARED", "ACQUIRE",
                "RELEASE_SHARED", "RELEASE", "TRY_ACQUIRE", "EXCLUDES",
                "ASSERT_CAPABILITY", "RETURN_CAPABILITY", "noexcept",
                "EXCLUSIVE_LOCKS_REQUIRED", "SHARED_LOCKS_REQUIRED")

_CONTROL_KEYWORDS = frozenset((
    "if", "for", "while", "switch", "return", "sizeof", "catch", "do",
    "else", "case", "default", "new", "delete", "throw", "static_cast",
    "dynamic_cast", "reinterpret_cast", "const_cast", "static_assert",
    "alignof", "decltype", "defined", "assert", "co_await", "co_return"))


class MutexInfo:
    """One class-level lock role, keyed by its constructor-site name string
    (the same key the runtime graph uses)."""

    def __init__(self, name, rank_token, striped, owner_chain, var, site):
        self.name = name              # "storage.plog_store.stripe"
        self.rank_token = rank_token  # "kPlogStore"
        self.rank = None              # int, filled from the LockRank enum
        self.striped = striped
        # Enclosing classes at the construction site, innermost first —
        # ("Stripe", "PlogStore") for a stripe lock. Disambiguates the two
        # same-named Stripe structs (kv vs. plog_store).
        self.owner_chain = tuple(owner_chain)
        self.owner_class = owner_chain[0] if owner_chain else None
        self.var = var                # declared variable name or None
        self.sites = [site]           # (path, line)


class FunctionInfo:
    def __init__(self, qualname, cls, name, path, header, body, body_line,
                 requires, no_tsa, param_types, ret=""):
        self.qualname = qualname      # "StreamObject::AppendBatch"
        self.cls = cls                # "StreamObject" or None
        self.name = name
        self.path = path
        self.header = header
        self.body = body              # stripped text, braces included
        self.body_line = body_line    # 1-based line of the opening brace
        self.requires = requires      # raw REQUIRES(...) argument strings
        self.no_tsa = no_tsa
        self.param_types = param_types  # {param_name: type_string}
        self.ret = ret                # raw return-type text ("" for ctors)
        self.deferred = False         # True for Submit-excised lambdas
        # Filled by analysis:
        self.summary = None

    def line_of(self, pos):
        """Line number (1-based, in self.path) of offset `pos` in body."""
        return self.body_line + self.body.count("\n", 0, pos)


class ClassInfo:
    def __init__(self, name, qualname, path):
        self.name = name
        self.qualname = qualname
        self.path = path
        self.members = {}       # member var -> type string
        self.guarded = []       # (field, guard_expr, line)
        self.annotated = set()  # fields with GUARDED_BY or PT_GUARDED_BY
        self.const_members = set()  # const / static / constexpr members
        self.member_lines = {}  # member var -> declaration line
        self.decl_requires = {}  # method name -> [REQUIRES args]
        self.bases = []


class Program:
    """Parsed model of the whole source tree."""

    def __init__(self):
        self.functions = []           # [FunctionInfo]
        self.functions_by_name = {}   # name -> [FunctionInfo]
        self.classes = {}             # class name -> ClassInfo
        self.mutexes = {}             # lock name string -> MutexInfo
        self.ranks = {}               # "kFoo" -> int
        self.parse_gaps = []          # human-readable attribution warnings


def _match_brace(text, open_pos):
    """Index of the `}` matching the `{` at open_pos (text is stripped, so
    braces in strings/comments are gone). Returns len(text) if unbalanced."""
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text)


_TEMPLATE_HDR = re.compile(r"template\s*<[^<>]*(?:<[^<>]*>[^<>]*)*>")
_CLASS_HDR = re.compile(
    r"\b(?:class|struct)\s+"
    r"(?:(?:CAPABILITY|SCOPED_CAPABILITY|SL_THREAD_ANNOTATION|alignas)"
    r"\s*(?:\([^()]*\))?\s*)*"
    r"([A-Za-z_]\w*)")
_NAMESPACE_HDR = re.compile(r"\bnamespace\s*([\w:]*)")
_CTOR_INIT_SPLIT = re.compile(r"\)\s*:\s*(?!:)")
_FUNC_NAME = re.compile(r"((?:[\w~]+\s*::\s*)*[\w~]+|operator\s*[^\s(]+)\s*$")


def _strip_qualifiers(header):
    """Peel trailing qualifiers/annotation macros off a function header,
    returning (core_header_ending_in_param_list, requires_args, no_tsa)."""
    requires = []
    no_tsa = False
    h = header.rstrip()
    while True:
        h = h.rstrip()
        progressed = False
        for w in _QUAL_WORDS:
            if h.endswith(w) and re.search(r"(\W|^)" + w + r"$", h):
                if w == "NO_THREAD_SAFETY_ANALYSIS":
                    no_tsa = True
                h = h[: -len(w)]
                progressed = True
                break
        if progressed:
            continue
        if h.endswith(")"):
            # A trailing (...) group: qualifier macro or the param list.
            depth = 0
            i = len(h) - 1
            while i >= 0:
                if h[i] == ")":
                    depth += 1
                elif h[i] == "(":
                    depth -= 1
                    if depth == 0:
                        break
                i -= 1
            before = h[:i].rstrip()
            macro = None
            for m in _QUAL_MACROS:
                if before.endswith(m):
                    macro = m
                    break
            if macro is not None:
                args = h[i + 1:-1]
                if macro in ("REQUIRES", "REQUIRES_SHARED",
                             "EXCLUSIVE_LOCKS_REQUIRED",
                             "SHARED_LOCKS_REQUIRED"):
                    requires.extend(
                        a.strip() for a in args.split(",") if a.strip())
                h = before[: -len(macro)]
                progressed = True
        if not progressed:
            return h, requires, no_tsa


def _param_types(core_header):
    """{param_name: normalized type} from the header's parameter list."""
    if not core_header.endswith(")"):
        return {}
    depth = 0
    i = len(core_header) - 1
    while i >= 0:
        if core_header[i] == ")":
            depth += 1
        elif core_header[i] == "(":
            depth -= 1
            if depth == 0:
                break
        i -= 1
    params = core_header[i + 1:-1]
    out = {}
    # Split on top-level commas only (template args contain commas too).
    parts, d, start = [], 0, 0
    for j, c in enumerate(params):
        if c in "<([":
            d += 1
        elif c in ">)]":
            d -= 1
        elif c == "," and d == 0:
            parts.append(params[start:j])
            start = j + 1
    parts.append(params[start:])
    for p in parts:
        p = p.split("=")[0].strip()
        m = re.match(r"(.+?)[\s*&]+(\w+)\s*$", p)
        if m:
            out[m.group(2)] = m.group(1).strip()
    return out


def normalize_type(t):
    """Reduce a declared type to a bare class name: peel const/ptr/ref,
    namespaces, and one-value containers (vector, unique_ptr, ...)."""
    t = t.strip()
    t = re.sub(r"\b(const|mutable|static|volatile|typename|struct|class)\b",
               "", t)
    t = t.replace("*", " ").replace("&", " ").strip()
    wrappers = ("std::vector", "std::unique_ptr", "std::shared_ptr",
                "std::optional", "std::deque", "std::array", "vector",
                "unique_ptr", "shared_ptr", "optional", "deque", "array")
    changed = True
    while changed:
        changed = False
        for w in wrappers:
            if t.startswith(w + "<") and t.endswith(">"):
                t = t[len(w) + 1:-1].strip()
                # std::array<T, N> / pair-ish: keep the first top-level arg.
                d = 0
                for j, c in enumerate(t):
                    if c == "<":
                        d += 1
                    elif c == ">":
                        d -= 1
                    elif c == "," and d == 0:
                        t = t[:j].strip()
                        break
                changed = True
                break
    t = re.sub(r"<.*>$", "", t).strip()
    if "::" in t:
        t = t.split("::")[-1]
    return t.strip()


_MEMBER_DECL = re.compile(
    r"^\s*((?:mutable\s+|static\s+|constexpr\s+|inline\s+)*)"
    r"(const\s+)?([\w:]+(?:\s*<[^;{}]*?>)?)\s*([*&]*)\s+(\w+)\s*"
    r"(GUARDED_BY\(([^)]*)\)|PT_GUARDED_BY\(([^)]*)\))?\s*"
    r"(=[^;]*|\{[^;]*\})?;", re.M)

_LOCKRANK_SITE = re.compile(
    r"\b(?:(Mutex|SharedMutex)\s+(\w+)\s*)?[({]?\s*"
    r"LockRank::(k\w+)\s*,\s*\"\"\s*(?:,\s*([^,)}]+))?\s*[)}]")


def _extract_string(raw_lines, line0, nlines=3):
    """First string literal on raw lines [line0, line0+nlines)."""
    for ln in range(line0, min(line0 + nlines, len(raw_lines))):
        m = re.search(r'"((?:[^"\\]|\\.)*)"', raw_lines[ln])
        if m:
            return m.group(1)
    return None


def _parse_lockranks(code):
    m = re.search(r"enum\s+class\s+LockRank[^{]*\{", code)
    if not m:
        return {}
    body = code[m.end():_match_brace(code, m.end() - 1)]
    return {name: int(val)
            for name, val in re.findall(r"\b(k\w+)\s*=\s*(\d+)", body)}


def _line_at(code, pos):
    return code.count("\n", 0, pos) + 1


def parse_file(program, path, raw):
    """Scan one stripped file for namespaces / classes / functions / mutex
    construction sites and merge into `program`."""
    code = strip_comments(raw)
    raw_lines = raw.split("\n")

    # Scope scan first: class spans must exist before owner lookup.
    _scan_scopes(program, path, code)

    # --- mutex construction sites (declaration-site or init-list) ---------
    for m in _LOCKRANK_SITE.finditer(code):
        decl_kind, var, rank_token, third = m.group(1), m.group(2), \
            m.group(3), m.group(4)
        line = _line_at(code, m.start())
        name = _extract_string(raw_lines, line - 1)
        if name is None:
            program.parse_gaps.append(
                f"{path}:{line}: LockRank::{rank_token} site without a "
                "recoverable name string")
            continue
        striped = third is not None and third.strip() != "kNoStripe"
        owners = _enclosing_classes(path, m.start())
        if name in program.mutexes:
            info = program.mutexes[name]
            info.striped = info.striped or striped
            if var and not info.var:
                info.var = var
            if owners and not info.owner_chain:
                info.owner_chain = tuple(owners)
                info.owner_class = owners[0]
            info.sites.append((path, line))
            if info.rank_token != rank_token:
                program.parse_gaps.append(
                    f"{path}:{line}: lock \"{name}\" constructed with "
                    f"{rank_token} here but {info.rank_token} elsewhere")
        else:
            program.mutexes[name] = MutexInfo(
                name, rank_token, striped, owners, var, (path, line))


# Class spans per file, recorded during _scan_scopes for owner lookup.
_CLASS_SPANS = {}


def _enclosing_classes(path, pos):
    """Class names whose spans contain `pos`, innermost first."""
    out = []
    for name, start, end in reversed(_CLASS_SPANS.get(path, [])):
        if start <= pos < end:
            out.append(name)
    return out


def _scan_scopes(program, path, code):
    """One linear pass: track namespace/class scopes, emit functions."""
    spans = _CLASS_SPANS.setdefault(path, [])
    stack = []  # (kind, name, close_pos)
    i = 0
    stmt_start = 0
    n = len(code)
    while i < n:
        c = code[i]
        if c == ";":
            stmt_start = i + 1
            i += 1
            continue
        if c == "}":
            while stack and stack[-1][2] <= i:
                stack.pop()
            stmt_start = i + 1
            i += 1
            continue
        if c != "{":
            i += 1
            continue

        header = code[stmt_start:i]
        # Preprocessor directives are line-scoped, not ';'-terminated, so
        # an #include/#pragma would otherwise glue onto the next
        # definition's header and disqualify it.
        if "#" in header:
            header = "\n".join(
                ln for ln in header.split("\n")
                if not ln.lstrip().startswith("#"))
        close = _match_brace(code, i)
        in_class = any(s[0] == "class" for s in stack)
        hdr_for_class = _TEMPLATE_HDR.sub(" ", header)

        nm = _NAMESPACE_HDR.search(header)
        cm = _CLASS_HDR.search(hdr_for_class) \
            if "enum" not in header else None
        if nm and "(" not in header:
            stack.append(("namespace", nm.group(1), close))
            stmt_start = i + 1
            i += 1
            continue
        if cm and "=" not in header.split("class")[0].split("struct")[0]:
            cname = cm.group(1)
            stack.append(("class", cname, close))
            spans.append((cname, i, close))
            if cname not in program.classes:
                program.classes[cname] = ClassInfo(
                    cname, "::".join(s[1] for s in stack if s[1]), path)
            stmt_start = i + 1
            i += 1
            continue

        # Candidate function definition: header's core must end in a
        # balanced parameter list. Constructor init-lists are cut off first.
        fn_header = header
        init_split = _CTOR_INIT_SPLIT.search(fn_header)
        if init_split:
            fn_header = fn_header[:init_split.start() + 1]
        core, requires, no_tsa = _strip_qualifiers(fn_header)
        is_func = False
        fname = None
        ret = ""
        if core.endswith(")") and "(" in core:
            depth, j = 0, len(core) - 1
            while j >= 0:
                if core[j] == ")":
                    depth += 1
                elif core[j] == "(":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            nmatch = _FUNC_NAME.search(core[:j])
            if nmatch:
                fname = re.sub(r"\s+", "", nmatch.group(1))
                base = fname.split("::")[-1].lstrip("~")
                if base and base not in _CONTROL_KEYWORDS \
                        and not header.lstrip().startswith("#"):
                    is_func = True
                    ret = core[:nmatch.start()].replace("[[nodiscard]]", "")
                    ret = re.sub(
                        r"\b(static|inline|virtual|explicit|friend|"
                        r"constexpr)\b", "", ret).strip()

        if is_func:
            cls = None
            if "::" in fname:
                parts = fname.split("::")
                cls, fname_short = parts[-2], parts[-1]
            else:
                fname_short = fname
                for s in reversed(stack):
                    if s[0] == "class":
                        cls = s[1]
                        break
            qual = f"{cls}::{fname_short}" if cls else fname_short
            fn = FunctionInfo(
                qual, cls, fname_short, path,
                header.strip(), code[i:close + 1],
                _line_at(code, i), requires, no_tsa, _param_types(core),
                ret=ret)
            program.functions.append(fn)
            program.functions_by_name.setdefault(fname_short, []).append(fn)
            i = close + 1
            stmt_start = i
            continue

        # Unclassifiable at class/namespace scope: default member init
        # braces, aggregate initializers, enum bodies. Consume inline.
        if in_class or not stack or stack[-1][0] in ("namespace", "class"):
            i = close + 1
            # Header keeps accumulating until the next ';' (member decl).
            continue
        i += 1

    # Member declarations & GUARDED_BY fields, per class span.
    for cname, start, end in spans:
        cls = program.classes.get(cname)
        if cls is None:
            continue
        body = code[start + 1:end]  # inside the class braces
        # Blank out nested function bodies so their locals don't read as
        # member declarations.
        blanked = _blank_nested_braces(body)
        for m in _MEMBER_DECL.finditer(blanked):
            quals, constp, type_str = m.group(1), m.group(2), m.group(3)
            ptr, field = m.group(4), m.group(5)
            if field in ("const", "override"):
                continue
            cls.members.setdefault(field, normalize_type(type_str))
            cls.member_lines.setdefault(
                field, _line_at(code, start + 1 + m.start()))
            if ("static" in quals or "constexpr" in quals
                    or (constp and not ptr)):
                cls.const_members.add(field)
            if m.group(6):  # GUARDED_BY / PT_GUARDED_BY
                cls.annotated.add(field)
            if m.group(7):  # GUARDED_BY
                cls.guarded.append(
                    (field, m.group(7).strip(),
                     _line_at(code, start + 1 + m.start())))
        # Method DECLARATIONS carrying REQUIRES (definitions may be in .cc).
        for dm in re.finditer(
                r"(\w+)\s*\(([^;{}()]*(?:\([^()]*\)[^;{}()]*)*)\)\s*"
                r"((?:const|noexcept|override|final|\s)*)"
                r"((?:(?:REQUIRES(?:_SHARED)?|"
                r"(?:EXCLUSIVE|SHARED)_LOCKS_REQUIRED)"
                r"\s*\([^)]*\)\s*)+)[^;{]*;",
                blanked):
            args = []
            for rm in re.finditer(
                    r"(?:REQUIRES(?:_SHARED)?|"
                    r"(?:EXCLUSIVE|SHARED)_LOCKS_REQUIRED)\s*\(([^)]*)\)",
                    dm.group(4)):
                args.extend(a.strip() for a in rm.group(1).split(",")
                            if a.strip())
            if args:
                cls.decl_requires.setdefault(dm.group(1), []).extend(args)


def _blank_nested_braces(body):
    """Replace top-level nested {...} regions (method bodies, nested class
    bodies) inside a class body with spaces, preserving length/newlines."""
    out = list(body)
    depth = 0
    for i, c in enumerate(body):
        if c == "{":
            depth += 1
            if depth >= 1:
                out[i] = " "
        elif c == "}":
            if depth >= 1:
                out[i] = " "
            depth -= 1
        elif depth >= 1 and c != "\n":
            out[i] = " "
    return "".join(out)


def parse_file_fragment(item):
    """Parse ONE file into a self-contained Program fragment. Fragments are
    plain picklable objects: they fan out across a multiprocessing pool
    (--jobs) and round-trip through the content-hash cache, then merge in
    deterministic path order."""
    path, raw = item
    frag = Program()
    _CLASS_SPANS.pop(path, None)
    parse_file(frag, path, raw)
    return frag


def _merge_fragment(program, frag):
    """Merge a file fragment into the whole-program model with the same
    semantics the old sequential scan had (first declaration wins, member
    tables union, mutex sites accumulate)."""
    for fn in frag.functions:
        program.functions.append(fn)
        program.functions_by_name.setdefault(fn.name, []).append(fn)
    for cname, src in frag.classes.items():
        dst = program.classes.get(cname)
        if dst is None:
            program.classes[cname] = src
            continue
        for field, t in src.members.items():
            dst.members.setdefault(field, t)
        for field, line in src.member_lines.items():
            dst.member_lines.setdefault(field, line)
        dst.annotated |= src.annotated
        dst.const_members |= src.const_members
        for g in src.guarded:
            if g not in dst.guarded:
                dst.guarded.append(g)
        for mname, args in src.decl_requires.items():
            dst.decl_requires.setdefault(mname, []).extend(args)
        for b in src.bases:
            if b not in dst.bases:
                dst.bases.append(b)
    for name, src in frag.mutexes.items():
        dst = program.mutexes.get(name)
        if dst is None:
            program.mutexes[name] = src
            continue
        dst.striped = dst.striped or src.striped
        if src.var and not dst.var:
            dst.var = src.var
        if src.owner_chain and not dst.owner_chain:
            dst.owner_chain = src.owner_chain
            dst.owner_class = src.owner_class
        dst.sites.extend(src.sites)
        if dst.rank_token != src.rank_token:
            program.parse_gaps.append(
                f"lock \"{name}\" constructed with {src.rank_token} and "
                f"{dst.rank_token} at different sites")
    program.parse_gaps.extend(frag.parse_gaps)


def _cache_key(path, raw):
    h = hashlib.sha256()
    h.update(f"v{PARSER_VERSION}:{path}:".encode())
    h.update(raw.encode())
    return h.hexdigest()


def _cache_load(cache_dir, path, raw):
    if cache_dir is None:
        return None
    entry = os.path.join(cache_dir, _cache_key(path, raw) + ".pickle")
    try:
        with open(entry, "rb") as f:
            return pickle.load(f)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError):
        return None  # miss or stale/corrupt entry: reparse


def _cache_store(cache_dir, path, raw, frag):
    if cache_dir is None:
        return
    try:
        os.makedirs(cache_dir, exist_ok=True)
        entry = os.path.join(cache_dir, _cache_key(path, raw) + ".pickle")
        tmp = entry + f".tmp.{os.getpid()}"
        with open(tmp, "wb") as f:
            pickle.dump(frag, f)
        os.replace(tmp, entry)
    except OSError:
        pass  # cache is best-effort; never fail the parse over it


def parse_program(sources, jobs=1, cache_dir=None):
    """Build a Program from {relative_path: raw_text}. The LockRank enum is
    read from the file named common/mutex.h (any prefix); mutex.{h,cc}
    themselves are otherwise excluded (they implement the runtime checker
    and legally use raw primitives).

    `jobs` > 1 parses files on a process pool; `cache_dir` (if set) caches
    per-file fragments keyed by content hash + PARSER_VERSION. Both paths
    merge fragments in sorted path order, so the result is byte-identical
    to the sequential parse."""
    program = Program()
    _CLASS_SPANS.clear()
    mutex_h = None
    for path in sorted(sources):
        norm = path.replace(os.sep, "/")
        if norm.endswith("common/mutex.h"):
            mutex_h = sources[path]
    if mutex_h is not None:
        program.ranks = _parse_lockranks(strip_comments(mutex_h))

    items = [(path, sources[path]) for path in sorted(sources)
             if not path.replace(os.sep, "/").endswith(
                 ("common/mutex.h", "common/mutex.cc"))]
    frags = {}
    pending = []
    for path, raw in items:
        frag = _cache_load(cache_dir, path, raw)
        if frag is not None:
            frags[path] = frag
        else:
            pending.append((path, raw))
    if jobs > 1 and len(pending) > 1:
        with multiprocessing.Pool(min(jobs, len(pending))) as pool:
            parsed = pool.map(parse_file_fragment, pending)
    else:
        parsed = [parse_file_fragment(it) for it in pending]
    for (path, raw), frag in zip(pending, parsed):
        frags[path] = frag
        _cache_store(cache_dir, path, raw, frag)
    for path, _ in items:
        _merge_fragment(program, frags[path])

    for info in program.mutexes.values():
        info.rank = program.ranks.get(info.rank_token)
        if info.rank is None:
            program.parse_gaps.append(
                f"lock \"{info.name}\": unknown rank token "
                f"{info.rank_token}")
    return program


def load_tree(repo_root, subdir="src"):
    """{relative_path: text} for every C++ file under `subdir`."""
    sources = {}
    base = os.path.join(repo_root, subdir)
    for root, _, names in os.walk(base):
        for name in sorted(names):
            if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                full = os.path.join(root, name)
                rel = os.path.relpath(full, repo_root)
                with open(full, encoding="utf-8") as f:
                    sources[rel] = f.read()
    return sources
