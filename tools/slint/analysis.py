"""Per-function lock summaries, call-graph resolution, and closures.

The core abstraction is the *held-set*: a linear scan of each function body
computes, for every interesting position (call site, blocking primitive,
guarded-field access, lock acquisition), the set of lock NAMES held there.
RAII guards hold to the end of their enclosing block; raw Lock()/Unlock()
pairs hold between the matched calls, with two deliberate refinements
matched to this codebase's idioms:

  * an Unlock in a deeper block that exits (return/break/continue before
    the block closes) is an early-out release and does not end the
    main-path region (StreamObject::AppendBatch's error returns);
  * re-acquiring a name already held is skipped (the re-lock after a
    branch-dependent release; true recursive locking is the runtime
    checker's catch).

Lambdas are analyzed where they run: a lambda passed to ThreadPool::Submit
executes later on a worker with an empty held-set, so its body is excised
into a synthetic function; every other lambda body stays inline in its
enclosing function.

Call resolution is by qualified-name heuristics: receiver member/local/param
type first, own class second, globally unique name third. Anything else
lands in the ambiguity report rather than silently growing or shrinking the
graph.
"""

import re

from .parsing import normalize_type

# ---------------------------------------------------------------------------
# Body-level patterns (stripped text).
# ---------------------------------------------------------------------------

_RAII = re.compile(
    r"\b(MutexLock|WriterMutexLock|ReaderMutexLock)\s+\w+\s*[({]\s*"
    r"&\s*([\w.\[\]*>-]+?)\s*[,)}]")
_RAW_LOCK = re.compile(
    r"(?:\.|->)\s*(Lock|LockShared|LockCounted|LockSharedCounted|"
    r"Unlock|UnlockShared)\s*\(\s*\)")
_SLEEP = re.compile(
    r"std::this_thread::sleep_(?:for|until)\b"
    r"|\b(?:::)?(?:sleep|usleep|nanosleep)\s*\("
    r"|(?:\.|->)Sleep(?:For|Until)\s*\(")
_JOIN = re.compile(r"\.join\s*\(\s*\)")
_POOL_WAIT = re.compile(r"(?:\.|->)\s*Wait\s*\(\s*\)")
_SUBMIT = re.compile(r"(?:\.|->)\s*Submit\s*\(")
_CONDVAR_WAIT = re.compile(
    r"(?:\.|->)\s*Wait(?:For)?\s*\(\s*&\s*([\w.\[\]*>-]+?)\s*[,)]")
_ASSERT_HELD = re.compile(r"([\w.\[\]*>-]+?)\s*(?:\.|->)\s*AssertHeld\s*\(")
_CALL = re.compile(r"(?<![\w.:>])((?:\w+::)+\w+|\w+)\s*\(")
_METHOD_CALL = re.compile(r"(\.|->)\s*(\w+)\s*\(")
_LAMBDA = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\)\s*)?(?:mutable\s*)?"
    r"(?:->\s*[\w:<>&*\s]+?\s*)?\{")
_DEVICE_HOOK = re.compile(r"\bio(?:_read)?_delay_hook\s*\(")

# --- error-path / shared-state patterns (checks S5-S7) ---------------------

# Method names whose calls mutate externally visible state: PLog appends,
# KV/metadata puts, object-store writes/creates, cache/table inserts,
# catalog deletes. Name-matching is only the first net: a matched call
# that RESOLVES to in-program callees reaching no durable-write root is
# dropped again by effective_mutations() — that is how ScmSliceCache::Put
# (self-healing) and WriteBatch::Put (staging) fall out while
# Table::Insert (a real commit) stays in.
_MUTATION_NAMES = frozenset((
    "Append", "AppendKeyed", "AppendEntry", "AppendBatch", "Put",
    "PutCommit", "PutSnapshot", "PutTableInfo", "Write", "WriteBatch",
    "WriteEntry", "CreateObject", "CreateTable", "Insert", "Delete",
    "DeleteEntry", "DeleteCommit", "DeleteSnapshot", "DeleteTableInfo",
    "Remove"))
# Delete-kind mutations are idempotent: a torn delete protocol leaves
# re-drivable garbage, never an inconsistently *referenced* state, so
# functions whose durable mutations are ALL delete-kind are exempt from
# S6 (re-running the delete IS the rollback).
_DELETE_KIND = re.compile(
    r"^(Delete|Remove|Destroy|Drop|Erase|Expire|Trim|MarkGarbage|Unlink"
    r"|Evict|Invalidate)")
# Ground-truth mutation roots: the atomic durable-write primitives of the
# storage layer. Everything below them (per-extent device writes, WAL
# segment appends, stripe applies) is the primitive's own implementation,
# covered by the seal/repair/WAL-replay machinery, and everything above
# them inherits "mutates durable state" by reaching one of these.
_ROOT_MUTATIONS = frozenset(("KvStore::Write", "PlogStore::Append"))
# Calls that undo earlier mutations on an error path. A Delete/Remove/erase
# whose Status is explicitly discarded (.IgnoreError()/.LogIgnored()) is
# best-effort cleanup, i.e. an undo, not a mutation.
_UNDO_NAMES = frozenset(("MarkGarbage", "Rollback", "Abort", "Undo"))
_DISCARD_SUFFIX = re.compile(r"\s*\.\s*(IgnoreError|LogIgnored)\s*\(")
_ERR_MACRO = re.compile(r"\bSL_(?:RETURN_NOT_OK|ASSIGN_OR_RETURN)\s*\(")
_ERR_RETURN = re.compile(r"\breturn\s+Status\s*::\s*(?!OK\b)\w+\s*\(")
# Operations that make state visible to readers: a catalog-version bump
# (PutTableInfo & friends) or a member-map publish (`objects_[id] = ...`).
_PUBLISH_NAMES = frozenset(("PutTableInfo",))
_MAP_PUBLISH = re.compile(r"\b(\w+_)\s*\[[^\]]*\]\s*=(?!=)")
_LOOP_HDR = re.compile(r"\b(?:for|while)\s*\(")
_FALLIBLE_RET = re.compile(r"\b(?:Status|Result\s*<)")

_NOT_CALLS = frozenset((
    "if", "for", "while", "switch", "return", "sizeof", "catch", "do",
    "new", "delete", "throw", "static_cast", "dynamic_cast", "const_cast",
    "reinterpret_cast", "static_assert", "alignof", "decltype", "defined",
    "assert", "emplace", "emplace_back", "push_back", "insert", "erase",
    "find", "count", "begin", "end", "size", "empty", "clear", "reserve",
    "resize", "at", "front", "back", "get", "reset", "release", "swap",
    "substr", "append", "c_str", "data", "length", "compare", "make_pair",
    "make_unique", "make_shared", "move", "forward", "min", "max", "abs",
    "to_string", "stoull", "stoul", "stoi", "snprintf", "memcpy", "memset",
    "push", "pop", "top", "load", "store", "exchange", "fetch_add",
    "fetch_sub", "compare_exchange_weak", "compare_exchange_strong"))


class Summary:
    """Everything the checks need to know about one function."""

    def __init__(self):
        self.acquisitions = []     # (lock_name, pos)
        self.intra_edges = []      # (from_name, to_name, pos)
        self.calls = []            # CallSite
        self.blocking = []         # (kind, detail, pos, frozenset(held))
        self.guarded_uses = []     # (field, guard_name, pos, held_bool)
        self.callback_holds = []   # frozenset(held) at callback invocations
        self.unresolved_locks = []  # (expr, pos)
        # Error-path / shared-state facts (checks S6/S7):
        self.mutations = []        # (desc, pos) direct durable mutations
        self.undos = []            # (desc, pos) rollback/cleanup calls
        self.error_returns = []    # positions of early error returns
        self.publishes = []        # (desc, pos) visibility flips
        self.loops = []            # (start, end) loop body spans


class CallSite:
    def __init__(self, raw, pos, held, targets, lambdas, recv=None,
                 discarded=False):
        self.raw = raw            # textual callee
        self.pos = pos
        self.held = held          # frozenset of lock names
        self.targets = targets    # [FunctionInfo] (empty = external/unknown)
        self.lambdas = lambdas    # [FunctionInfo] synthetic lambda args
        self.recv = recv          # receiver expression or None
        self.discarded = discarded  # .IgnoreError()/.LogIgnored() suffix


class Analysis:
    def __init__(self, program):
        self.program = program
        self.ambiguities = []     # (path, line, text)
        self.lambda_funcs = []
        self._mutex_by_var = {}
        for info in program.mutexes.values():
            if info.var:
                self._mutex_by_var.setdefault(info.var, []).append(info)
        self._closure_cache = {}
        self._blocking_cache = {}
        self._mutation_cache = {}
        self._effmut_cache = {}
        self._escaped_cache = None
        self._run()

    # -- lock reference resolution ----------------------------------------

    def resolve_lock(self, expr, fn):
        """Lock NAME for an `&expr` reference, or None. Matches the final
        member/variable identifier against mutex construction sites,
        preferring the function's own class (including its nested
        structs, via each mutex's owner chain)."""
        ident = re.findall(r"\w+", re.sub(r"\[[^\]]*\]", "", expr))
        if not ident:
            return None
        var = ident[-1]
        candidates = self._mutex_by_var.get(var, [])
        if len(candidates) == 1:
            return candidates[0].name
        if fn.cls:
            own = [c for c in candidates if fn.cls in c.owner_chain]
            if len(own) == 1:
                return own[0].name
        if len(ident) >= 2:
            # A member of a member: resolve the receiver's class.
            recv_cls = self._receiver_class(ident[-2], fn)
            scoped = [c for c in candidates
                      if recv_cls is not None and recv_cls in c.owner_chain]
            if len(scoped) == 1:
                return scoped[0].name
        return None

    def _receiver_class(self, var, fn):
        """Class name a receiver variable refers to, via param / member /
        local-declaration types."""
        t = fn.param_types.get(var)
        if t is None and fn.cls and fn.cls in self.program.classes:
            t = self.program.classes[fn.cls].members.get(var)
        if t is None:
            m = re.search(
                r"([\w:]+(?:<[^;=(]*>)?)[\s*&]+" + re.escape(var) +
                r"\s*[({=;]", fn.body)
            if m and m.group(1) not in ("return", "auto"):
                t = m.group(1)
        if t is None:
            return None
        return normalize_type(t)

    def _receiver_class_chain(self, expr, fn):
        """Class of a possibly-chained receiver expression: `extent.device`
        resolves `extent`'s type, then walks member `device` through the
        class member tables. None when any hop is unknown."""
        parts = re.findall(r"\w+", re.sub(r"\[[^\]]*\]", "", expr))
        if parts and parts[0] == "this":
            parts = parts[1:]
            cls = fn.cls
            if not parts:
                return cls
        elif parts:
            cls = self._receiver_class(parts[0], fn)
        else:
            return None
        for member in parts[1:]:
            if cls is None or cls not in self.program.classes:
                cls = None
                break
            t = self.program.classes[cls].members.get(member)
            cls = normalize_type(t) if t else None
        if cls is None and len(parts) >= 2:
            # The chain broke (e.g. a hop through a function-local struct
            # the scanner never sees). If the FINAL member name has exactly
            # one declared type across every class in the program, that
            # type is the receiver: `p.route.worker->` resolves through the
            # unique `worker` member even though `p` is opaque.
            types = {normalize_type(t)
                     for c in self.program.classes.values()
                     for f, t in c.members.items() if f == parts[-1]}
            if len(types) == 1:
                cls = next(iter(types))
        return cls

    # -- call resolution ---------------------------------------------------

    def resolve_call(self, name, recv_var, fn):
        """[FunctionInfo] targets for a call, [] if external, None if
        ambiguous (recorded by caller)."""
        cands = self.program.functions_by_name.get(name, [])
        if not cands:
            return []
        if recv_var is not None:
            recv_cls = self._receiver_class_chain(recv_var, fn)
            if recv_cls is not None:
                scoped = [c for c in cands if c.cls == recv_cls]
                if scoped:
                    return scoped
                return []  # known class, method not in program: external
            # this-> or unknown receiver: fall through to heuristics below.
        if fn.cls:
            own = [c for c in cands if c.cls == fn.cls]
            if own:
                return own
        if len({c.qualname for c in cands}) == 1:
            return cands
        return None

    # -- body scanning -----------------------------------------------------

    def _run(self):
        # Excise Submit-lambdas into synthetic deferred functions first,
        # then summarize everything. Call-argument lambdas are synthesized
        # and summarized on the fly by _lambda_args.
        self._lambda_cache = {}
        deferred = []
        for fn in list(self.program.functions):
            fn.body, lams = _excise_submit_lambdas(self, fn)
            deferred.extend(lams)
        for fn in self.program.functions:
            fn.summary = self._summarize(fn)
        for lam in deferred:
            lam.summary = self._summarize(lam)
        self.all_functions = self.program.functions + self.lambda_funcs
        self.by_qualname = {}
        for fn in self.all_functions:
            self.by_qualname.setdefault(fn.qualname, fn)

    def _summarize(self, fn):
        s = Summary()
        body = fn.body
        block_end = _block_ends(body)

        # Locks held over the whole body: REQUIRES on the definition or the
        # in-class declaration.
        req = list(fn.requires)
        if fn.cls and fn.cls in self.program.classes:
            req += self.program.classes[fn.cls].decl_requires.get(fn.name, [])
        whole = set()
        for expr in req:
            name = self.resolve_lock(expr, fn)
            if name:
                whole.add(name)
            elif expr not in ("mu",):  # CondVar::Wait's own param
                s.unresolved_locks.append((expr, 0))

        # Region list: (start, end, name).
        regions = []
        for m in _RAII.finditer(body):
            name = self.resolve_lock(m.group(2), fn)
            if name is None:
                s.unresolved_locks.append((m.group(2), m.start()))
                continue
            regions.append((m.start(), block_end.get(m.start(), len(body)),
                            name, "raii"))
        raw_events = []
        for m in _RAW_LOCK.finditer(body):
            expr = _receiver_expr(body, m.start())
            name = self.resolve_lock(expr, fn)
            if name is None:
                s.unresolved_locks.append((expr or "?", m.start()))
                continue
            kind = "unlock" if m.group(1).startswith("Un") else "lock"
            raw_events.append((m.start(), kind, name))
        depth_at = _depths(body)
        open_locks = {}
        for pos, kind, name in raw_events:
            if kind == "lock":
                open_locks.setdefault(name, []).append((pos, depth_at[pos]))
            else:
                stack = open_locks.get(name)
                if not stack:
                    continue
                lpos, ldepth = stack[-1]
                if depth_at[pos] > ldepth and \
                        _branch_exits(body, pos, block_end):
                    continue  # early-out release on an error path
                stack.pop()
                regions.append((lpos, pos, name, "raw"))
        for name, stack in open_locks.items():
            for lpos, _ in stack:
                regions.append((lpos, len(body), name, "raw"))
        for m in _ASSERT_HELD.finditer(body):
            name = self.resolve_lock(m.group(1), fn)
            if name:
                regions.append((m.start(), len(body), name, "assert"))

        def held_at(pos):
            h = set(whole)
            for start, end, name, _ in regions:
                if start <= pos < end:
                    h.add(name)
            return frozenset(h)

        # Deduplicate self-reacquisition: drop regions whose lock name is
        # already held at their start by an earlier region.
        kept = []
        for r in sorted(regions):
            start, end, name, kind = r
            covered = name in whole or any(
                ks <= start < ke for ks, ke, kn, _ in kept if kn == name)
            if covered and kind != "assert":
                continue
            kept.append(r)
        regions = kept

        # Acquisitions + intraprocedural edges.
        for start, end, name, kind in sorted(regions):
            if kind == "assert":
                continue
            h = held_at(start - 1) if start > 0 else frozenset(whole)
            s.acquisitions.append((name, start))
            for other in h:
                if other != name:
                    s.intra_edges.append((other, name, start))

        # Blocking primitives.
        for m in _SLEEP.finditer(body):
            s.blocking.append(("sleep", m.group(0).strip(), m.start(),
                               held_at(m.start())))
        for m in _JOIN.finditer(body):
            s.blocking.append(("join", ".join()", m.start(),
                               held_at(m.start())))
        for m in _CONDVAR_WAIT.finditer(body):
            name = self.resolve_lock(m.group(1), fn) or m.group(1)
            s.blocking.append(("condvar", name, m.start(),
                               held_at(m.start())))
        for m in _POOL_WAIT.finditer(body):
            s.blocking.append(("pool-wait", "ThreadPool::Wait", m.start(),
                               held_at(m.start())))
        for m in _SUBMIT.finditer(body):
            s.blocking.append(("submit", "ThreadPool::Submit", m.start(),
                               held_at(m.start())))
        for m in _DEVICE_HOOK.finditer(body):
            s.blocking.append(("device-io", m.group(0).rstrip("( \t"),
                               m.start(), held_at(m.start())))

        # Guarded-field accesses (own class only; constructors/destructors
        # exempt — they run before the object is shared).
        if fn.cls and fn.cls in self.program.classes and \
                fn.name.lstrip("~") != fn.cls:
            for field, guard, _ in self.program.classes[fn.cls].guarded:
                guard_name = self.resolve_lock(guard, fn)
                if guard_name is None:
                    continue
                for m in re.finditer(r"\b%s\b" % re.escape(field), body):
                    # Skip declarations of same-named locals (rare).
                    s.guarded_uses.append(
                        (field, guard_name, m.start(),
                         guard_name in held_at(m.start())))

        # Call sites.
        seen_spans = set()
        for m in _METHOD_CALL.finditer(body):
            name = m.group(2)
            if name in _NOT_CALLS or _RAW_LOCK.match(body, m.start()):
                continue
            recv = _receiver_expr(body, m.start())
            recv_var = recv if re.search(r"\w", recv) else None
            self._add_call(s, fn, name, recv_var, m.start(), held_at,
                           body)
            seen_spans.add(m.end(2))
        for m in _CALL.finditer(body):
            name = m.group(1).split("::")[-1]
            if m.end(1) in seen_spans or name in _NOT_CALLS:
                continue
            prev = body[max(0, m.start() - 1):m.start()]
            if prev in (".", ">", ":"):
                continue
            recv_var = None
            if "::" in m.group(1):
                # Explicit qualification: Class::Method or ns::func.
                qual = m.group(1).split("::")[-2]
                cands = [c for c in
                         self.program.functions_by_name.get(name, [])
                         if c.cls == qual]
                if cands:
                    s.calls.append(CallSite(m.group(1), m.start(),
                                            held_at(m.start()), cands, [],
                                            recv=None))
                    continue
            self._add_call(s, fn, name, recv_var, m.start(), held_at, body,
                           bare=True)

        # Callback invocations: calling a std::function-typed parameter.
        for pname, ptype in fn.param_types.items():
            if "function" not in ptype:
                continue
            for m in re.finditer(r"\b%s\s*\(" % re.escape(pname), body):
                h = held_at(m.start())
                if h:
                    s.callback_holds.append(h)

        # Error-path facts (S6/S7): early error returns, loop spans,
        # mutation/undo/publish sites.
        for m in _ERR_MACRO.finditer(body):
            s.error_returns.append(m.start())
        for m in _ERR_RETURN.finditer(body):
            s.error_returns.append(m.start())
        s.error_returns.extend(_notok_returns(body))
        s.error_returns = sorted(set(s.error_returns))
        s.loops = _loop_spans(body)
        for m in _METHOD_CALL.finditer(body):
            name = m.group(2)
            close = _call_close(body, m.start())
            discarded = close is not None and \
                _DISCARD_SUFFIX.match(body, close) is not None
            recv = _receiver_expr(body, m.start())
            desc = f"{recv}->{name}" if recv else name
            if name in _UNDO_NAMES or \
                    (discarded and name in _MUTATION_NAMES):
                s.undos.append((desc, m.start()))
            elif name in _MUTATION_NAMES and not discarded:
                s.mutations.append((desc, m.start()))
            if name in _PUBLISH_NAMES or name.startswith("Publish"):
                s.publishes.append((desc, m.start()))
        if fn.cls and fn.cls in self.program.classes:
            members = self.program.classes[fn.cls].members
            for m in _MAP_PUBLISH.finditer(body):
                if m.group(1) in members:
                    s.publishes.append((f"{m.group(1)}[...] =", m.start()))

        return s

    def _add_call(self, s, fn, name, recv_var, pos, held_at, body,
                  bare=False):
        if bare and name in self.program.classes:
            return  # constructor call / local declaration
        if bare and fn.cls is None and \
                name not in self.program.functions_by_name:
            return
        targets = self.resolve_call(name, recv_var, fn)
        if targets is None:
            self.ambiguities.append(
                (fn.path, fn.line_of(pos),
                 f"{fn.qualname}: call to {name}() is ambiguous "
                 f"({len(self.program.functions_by_name.get(name, []))} "
                 "candidates); dropped from the graph"))
            targets = []
        if not targets and name not in self.program.functions_by_name:
            return  # external (std::, gtest, libc): no model needed
        lambdas = _lambda_args(self, fn, pos, body)
        close = _call_close(body, pos)
        discarded = close is not None and \
            _DISCARD_SUFFIX.match(body, close) is not None
        s.calls.append(CallSite(name, pos, held_at(pos), targets, lambdas,
                                recv=recv_var, discarded=discarded))

    # -- closures ----------------------------------------------------------

    def acquired_closure(self, fn, _stack=None):
        """Set of lock names `fn` (or anything it synchronously reaches) can
        acquire."""
        if fn.qualname in self._closure_cache:
            return self._closure_cache[fn.qualname]
        _stack = _stack or set()
        if fn.qualname in _stack:
            return set()
        _stack.add(fn.qualname)
        out = {name for name, _ in fn.summary.acquisitions}
        for call in fn.summary.calls:
            for t in call.targets:
                out |= self.acquired_closure(t, _stack)
            for lam in call.lambdas:
                out |= self.acquired_closure(lam, _stack)
        _stack.discard(fn.qualname)
        self._closure_cache[fn.qualname] = out
        return out

    def blocking_closure(self, fn, _stack=None):
        """{(kind, detail): witness_chain} of blocking roots reachable from
        `fn`. ThreadPool's own internals are excluded: its blocking
        behaviour is modelled by the submit/pool-wait call-site patterns."""
        if fn.qualname in self._blocking_cache:
            return self._blocking_cache[fn.qualname]
        _stack = _stack or set()
        if fn.qualname in _stack:
            return {}
        _stack.add(fn.qualname)
        out = {}
        if fn.cls != "ThreadPool":
            for kind, detail, pos, _ in fn.summary.blocking:
                out.setdefault((kind, detail),
                               [f"{fn.qualname} [{fn.path}:"
                                f"{fn.line_of(pos)}]"])
            for call in fn.summary.calls:
                for t in call.targets + call.lambdas:
                    for key, chain in self.blocking_closure(
                            t, _stack).items():
                        out.setdefault(
                            key,
                            [f"{fn.qualname} [{fn.path}:"
                             f"{fn.line_of(call.pos)}]"] + chain)
        _stack.discard(fn.qualname)
        self._blocking_cache[fn.qualname] = out
        return out

    def effective_mutations(self, fn, _stack=None):
        """[(desc, pos)] direct durable mutations of `fn` that survive
        resolution: a name-matched call is dropped when it resolves wholly
        to in-program callees none of which reach a mutation root —
        `WriteBatch::Put` stages into a local buffer, `ScmSliceCache::Put`
        self-heals on miss, `LakeFileWriter::AppendBatch` builds an
        in-memory file. Unresolved/external calls stay conservative."""
        if fn.qualname in self._effmut_cache:
            return self._effmut_cache[fn.qualname]
        call_at = {c.pos: c for c in fn.summary.calls}
        out = []
        for desc, pos in fn.summary.mutations:
            c = call_at.get(pos)
            if c and c.targets and not any(
                    self.mutation_closure(t, _stack) for t in c.targets):
                continue
            out.append((desc, pos))
        self._effmut_cache[fn.qualname] = out
        return out

    def mutation_closure(self, fn, _stack=None):
        """{mutation_desc: witness_chain} of durable externally-visible
        mutations reachable from `fn` — the S6 analogue of
        blocking_closure. A call to a function with a non-empty mutation
        closure counts as a mutation at that call site. Two kinds of
        functions export nothing to their callers: none (the closure stops
        at them) —

        * mutation roots (`_ROOT_MUTATIONS`): they export themselves as a
          single opaque primitive; their internals (stripe writes, WAL
          segment appends) belong to the seal/repair/replay machinery;
        * publishers: a callee that completes its own visibility flip
          (catalog bump, map publish) is a finished transaction, not
          dangling preparatory state, so callers need no undo for it.
        """
        if fn.qualname in self._mutation_cache:
            return self._mutation_cache[fn.qualname]
        _stack = _stack or set()
        if fn.qualname in _stack:
            return {}
        if fn.qualname in _ROOT_MUTATIONS:
            out = {fn.qualname: [f"{fn.qualname} "
                                 f"[{fn.path}:{fn.body_line}] "
                                 "(durable write primitive)"]}
            self._mutation_cache[fn.qualname] = out
            return out
        if fn.summary.publishes:
            self._mutation_cache[fn.qualname] = {}
            return {}
        _stack.add(fn.qualname)
        out = {}
        for desc, pos in self.effective_mutations(fn, _stack):
            out.setdefault(desc,
                           [f"{fn.qualname} [{fn.path}:{fn.line_of(pos)}]"])
        for call in fn.summary.calls:
            if call.discarded:
                continue  # best-effort cleanup: cannot fail the caller
            for t in call.targets + call.lambdas:
                for key, chain in self.mutation_closure(t, _stack).items():
                    out.setdefault(
                        key,
                        [f"{fn.qualname} [{fn.path}:"
                         f"{fn.line_of(call.pos)}]"] + chain)
        _stack.discard(fn.qualname)
        self._mutation_cache[fn.qualname] = out
        return out

    # -- thread-escape (S5) ------------------------------------------------

    def _local_value_recv(self, caller, recv):
        """True when a call's receiver is a function-local VALUE object of
        the caller — a per-call private instance that never escapes to
        another thread (e.g. `CachedFileReader reader(...)` in a scan
        job). Pointer/reference locals stay conservative (they may alias
        shared state)."""
        if not recv or recv == "this":
            return False
        idents = re.findall(r"\w+", recv)
        if not idents:
            return False
        v = idents[0]
        if v == "this" or v in caller.param_types:
            return False
        if caller.cls and caller.cls in self.program.classes and \
                v in self.program.classes[caller.cls].members:
            return False
        m = re.search(
            r"(?:^|[;{}\n])\s*([\w:]+(?:<[^;=(]*>)?)\s+" + re.escape(v) +
            r"\s*[({;=]", caller.body)
        return bool(m and m.group(1) not in ("return", "auto"))

    def escaped_classes(self):
        """{class_name: reason} for every class whose instances are
        thread-shared: it owns synchronization state (a mutex, condvar, or
        atomic member — the class itself declares concurrent entry), or
        its methods are reachable from a deferred ThreadPool::Submit
        lambda through non-local receivers (the instance escapes onto a
        pool worker)."""
        if self._escaped_cache is not None:
            return self._escaped_cache
        shared = {}
        for cname, ci in self.program.classes.items():
            for field, t in ci.members.items():
                if t in ("Mutex", "SharedMutex", "CondVar") or \
                        "atomic" in t:
                    shared.setdefault(
                        cname, f"owns synchronization member \"{field}\"")
                    break
        work = [(lam, f"Submit lambda {lam.qualname}")
                for lam in self.lambda_funcs if lam.deferred]
        # A deferred lambda that invokes a LOCAL lambda variable of its
        # enclosing function (`auto run_job = [&](...) {...}` then
        # `Submit([&]{ run_job(i); })`) runs the enclosing function's
        # inline-lambda code on a pool worker; the call cannot resolve by
        # name, so conservatively treat the whole enclosing function as
        # worker-reachable.
        for lam in self.lambda_funcs:
            if not lam.deferred or "::<lambda@" not in lam.qualname:
                continue
            parent = self.by_qualname.get(
                lam.qualname.rsplit("::<lambda@", 1)[0])
            if parent is None:
                continue
            for m in re.finditer(r"\b(\w+)\s*\(", lam.body):
                if re.search(r"\b%s\s*=\s*\[" % re.escape(m.group(1)),
                             parent.body):
                    work.append(
                        (parent, f"Submit lambda {lam.qualname} runs "
                                 f"local lambda {m.group(1)}"))
                    break
        seen = set()
        while work:
            fn, reason = work.pop()
            if fn.qualname in seen:
                continue
            seen.add(fn.qualname)
            if fn.cls:
                shared.setdefault(fn.cls, reason)
            for call in fn.summary.calls:
                if self._local_value_recv(fn, call.recv):
                    continue  # per-job private instance, does not escape
                for t in call.targets + call.lambdas:
                    work.append((t, reason))
        self._escaped_cache = shared
        return shared

    # -- the static lock graph --------------------------------------------

    def static_edges(self):
        """{(from_name, to_name): (path, line)} over the whole program."""
        edges = {}

        def add(frm, to, path, line):
            if frm != to:
                edges.setdefault((frm, to), (path, line))

        for fn in self.all_functions:
            for frm, to, pos in fn.summary.intra_edges:
                add(frm, to, fn.path, fn.line_of(pos))
            for call in fn.summary.calls:
                acquired = set()
                for t in call.targets:
                    acquired |= self.acquired_closure(t)
                for lam in call.lambdas:
                    acquired |= self.acquired_closure(lam)
                for h in call.held:
                    for a in acquired:
                        add(h, a, fn.path, fn.line_of(call.pos))
                # Callback binding: a lambda passed to a function that
                # invokes its callback parameter under locks.
                for t in call.targets:
                    for holds in t.summary.callback_holds:
                        for h in holds:
                            for lam in call.lambdas:
                                for a in self.acquired_closure(lam):
                                    add(h, a, fn.path, fn.line_of(call.pos))
        return edges


# ---------------------------------------------------------------------------
# Body helpers.
# ---------------------------------------------------------------------------

def _depths(body):
    d = 0
    out = [0] * len(body)
    for i, c in enumerate(body):
        if c == "{":
            d += 1
        elif c == "}":
            d -= 1
        out[i] = d
    return out


def _block_ends(body):
    """{pos: close_brace_pos_of_enclosing_block} for every position that
    starts an interesting token; computed lazily as a full map of positions
    to the end of the innermost block containing them."""
    stack = [len(body)]
    # Precompute matching close for each open brace.
    match = {}
    opens = []
    for i, c in enumerate(body):
        if c == "{":
            opens.append(i)
        elif c == "}":
            if opens:
                match[opens.pop()] = i
    out = {}
    stack = []
    for i, c in enumerate(body):
        if c == "{":
            stack.append(match.get(i, len(body)))
        elif c == "}":
            if stack:
                stack.pop()
        out[i] = stack[-1] if stack else len(body)
    return out


def _branch_exits(body, pos, block_end):
    """True if the block containing `pos` exits (return/break/continue)
    between `pos` and its close — the early-out unlock idiom."""
    end = block_end.get(pos, len(body))
    return re.search(r"\b(return|break|continue)\b", body[pos:end]) \
        is not None


def _match_paren(body, open_pos):
    """Index of the `)` matching the `(` at open_pos, or None."""
    depth = 0
    for i in range(open_pos, len(body)):
        if body[i] == "(":
            depth += 1
        elif body[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return None


def _call_close(body, pos):
    """Position just past the `)` closing the call whose `.`/`->` starts at
    `pos`, or None."""
    op = body.find("(", pos)
    if op == -1:
        return None
    close = _match_paren(body, op)
    return None if close is None else close + 1


def _notok_returns(body):
    """Positions of `return` statements inside `if (... !....ok() ...)`
    blocks — the explicit-error-propagation idiom the SL_ macros expand
    to."""
    out = []
    for m in re.finditer(r"\bif\s*\(", body):
        close = _match_paren(body, m.end() - 1)
        if close is None:
            continue
        cond = body[m.end():close]
        if ".ok()" not in cond or "!" not in cond:
            continue
        j = close + 1
        while j < len(body) and body[j] in " \t\n":
            j += 1
        if j < len(body) and body[j] == "{":
            end = _close_brace(body, j)
            span_end = end if end is not None else len(body)
        else:
            semi = body.find(";", j)
            span_end = semi if semi != -1 else len(body)
        for rm in re.finditer(r"\breturn\b", body[j:span_end]):
            out.append(j + rm.start())
    return out


def _loop_spans(body):
    """(start, end) span of each for/while statement including its body."""
    spans = []
    for m in _LOOP_HDR.finditer(body):
        close = _match_paren(body, m.end() - 1)
        if close is None:
            continue
        j = close + 1
        while j < len(body) and body[j] in " \t\n":
            j += 1
        if j < len(body) and body[j] == "{":
            end = _close_brace(body, j)
            spans.append((m.start(), (end if end is not None
                                      else len(body)) + 1))
        else:
            semi = body.find(";", j)
            spans.append((m.start(), (semi if semi != -1
                                      else len(body)) + 1))
    return spans


def fallible_ret(fn):
    """True when `fn` returns Status or Result<T> (an error can propagate
    out of it)."""
    return bool(_FALLIBLE_RET.search(getattr(fn, "ret", "") or ""))


def _receiver_expr(body, call_pos):
    """Best-effort receiver expression ending just before `.` / `->` at
    call_pos (walks left over identifiers, subscripts, ->/., parens)."""
    i = call_pos
    while i > 0 and body[i - 1] in " \t\n":
        i -= 1
    end = i
    depth = 0
    while i > 0:
        c = body[i - 1]
        if c in ")]":
            depth += 1
        elif c in "([":
            if depth == 0:
                break
            depth -= 1
        elif depth == 0 and not (c.isalnum() or c in "_.>-:*"):
            break
        i -= 1
    return body[i:end].strip().rstrip("->.")


def _lambda_args(analysis, fn, call_pos, body):
    """Synthetic FunctionInfo for each lambda literally inside the argument
    list of the call at call_pos (treated as invoked synchronously — used
    for callback binding: ForEachPlog(fn) runs fn under its stripe locks).
    The lambda text also stays inline in the enclosing function's scan,
    which is correct for synchronous invocation; edges dedupe."""
    from .parsing import FunctionInfo  # local import to avoid cycle
    open_paren = body.find("(", call_pos)
    if open_paren == -1:
        return []
    depth = 0
    close = len(body)
    for i in range(open_paren, len(body)):
        if body[i] == "(":
            depth += 1
        elif body[i] == ")":
            depth -= 1
            if depth == 0:
                close = i
                break
    out = []
    for lm in _LAMBDA.finditer(body, open_paren, close):
        key = (fn.qualname, lm.start())
        lam = analysis._lambda_cache.get(key)
        if lam is None:
            open_brace = lm.end() - 1
            lam_close = _close_brace(body, open_brace)
            if lam_close is None:
                continue
            line = fn.line_of(open_brace)
            lam = FunctionInfo(
                f"{fn.qualname}::<lambda@{line}>", fn.cls,
                f"<lambda@{line}>", fn.path, "",
                body[open_brace:lam_close + 1], line,
                [], False, dict(fn.param_types))
            analysis._lambda_cache[key] = lam
            analysis.lambda_funcs.append(lam)
            lam.summary = analysis._summarize(lam)
        out.append(lam)
    return out


def _close_brace(body, open_brace):
    depth = 0
    for i in range(open_brace, len(body)):
        if body[i] == "{":
            depth += 1
        elif body[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return None


def _excise_submit_lambdas(analysis, fn):
    """Cut lambda bodies passed to Submit() out of `fn`'s body (replaced by
    spaces, newlines kept) and register them as synthetic deferred
    functions analyzed with an empty entry held-set."""
    from .parsing import FunctionInfo  # local import to avoid cycle
    body = fn.body
    excised = []
    lams = []
    for m in _SUBMIT.finditer(body):
        lm = _LAMBDA.search(body, m.end(), min(len(body), m.end() + 80))
        if lm is None:
            continue
        open_brace = lm.end() - 1
        depth = 0
        close = None
        for i in range(open_brace, len(body)):
            if body[i] == "{":
                depth += 1
            elif body[i] == "}":
                depth -= 1
                if depth == 0:
                    close = i
                    break
        if close is None:
            continue
        lam_body = body[open_brace:close + 1]
        line = fn.line_of(open_brace)
        lam = FunctionInfo(
            f"{fn.qualname}::<lambda@{line}>", fn.cls,
            f"<lambda@{line}>", fn.path, "", lam_body, line,
            [], False, dict(fn.param_types))
        lam.deferred = True
        analysis.lambda_funcs.append(lam)
        lams.append(lam)
        excised.append((open_brace, close))
    if not excised:
        return body, []
    chars = list(body)
    for start, end in excised:
        for i in range(start + 1, end):
            if chars[i] != "\n":
                chars[i] = " "
    return "".join(chars), lams
