"""slint — whole-program static lock analyzer for StreamLake.

Where tools/lint.py checks single files token-by-token, slint parses all of
src/ into a program model — every ranked mutex, every function, every call
site — and proves lock-hierarchy properties over ALL statically possible
paths, not just the schedules the runtime checker (src/common/mutex.cc)
happens to observe in one test run.

Checks (see DESIGN.md, "Static lock analysis"):
  S1  The static lock graph (every lock that can be held when another is
      acquired, interprocedurally) is acyclic and every edge steps to a
      strictly lower rank. Same-name edges (striped arrays' documented
      ascending idiom) are admitted and left to the runtime checker.
  S2  No blocking call — ThreadPool::Submit / ThreadPool::Wait, condition
      waits on a foreign mutex, real-time sleeps, thread joins, or device
      I/O that reaches the PlogStore io_delay_hook — is TRANSITIVELY
      reachable while any lock is held. Replaces lint.py's retired
      intraprocedural R5.
  S3  Every access to a GUARDED_BY field happens in a function that holds
      (or REQUIRES, or AssertHeld()s) the guarding mutex. Cross-checks the
      clang annotations across the .cc helpers clang cannot see across TUs.
  S4  The runtime-observed lock graph is a subgraph of the static graph:
      slint emits lock_graph.dot, tests/lock_order_test.cc loads it and
      asserts observed edges are a subset (and `slint --check-observed`
      checks a runtime-dumped DOT from this side).

Findings are suppressible only through tools/slint_suppressions.txt, one
justified line per entry; unused suppressions are themselves errors.

Run from the repo root:  python3 tools/slint
"""

from .parsing import Program, parse_program  # noqa: F401
from .analysis import Analysis  # noqa: F401
from .checks import run_checks, write_dot, parse_dot, load_suppressions  # noqa: F401
