"""The four slint checks, DOT emission/parsing, and the suppression file.

Findings carry a (check, key) pair; a suppression line in
tools/slint_suppressions.txt must name exactly that pair plus a
justification. Keys:

  S1  "from->to"            (lock names of the offending static edge)
  S2  "Qual::Name:kind"     (function qualname : blocking-root kind)
  S3  "Qual::Name:field"    (function qualname : guarded field)
  S4  "from->to"            (observed edge absent from the static graph)
"""

import re


class Finding:
    def __init__(self, check, key, message, path=None, line=None):
        self.check = check
        self.key = key
        self.message = message
        self.path = path
        self.line = line

    def location(self):
        if self.path is None:
            return ""
        return f"{self.path}:{self.line}: " if self.line else f"{self.path}: "

    def __str__(self):
        return f"{self.location()}[{self.check} {self.key}] {self.message}"


# ---------------------------------------------------------------------------
# Suppressions.
# ---------------------------------------------------------------------------

_SUPP_LINE = re.compile(r"^(S[1-4])\s+(\S+)\s+--\s+(.+)$")


def load_suppressions(text):
    """[(check, key, justification, lineno)] from the suppression file text.
    Raises ValueError on a malformed or unjustified line."""
    out = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SUPP_LINE.match(line)
        if not m or not m.group(3).strip():
            raise ValueError(
                f"suppressions line {lineno}: expected "
                f"'S<n> <key> -- <justification>', got: {line}")
        out.append((m.group(1), m.group(2), m.group(3).strip(), lineno))
    return out


def apply_suppressions(findings, supps):
    """(unsuppressed_findings, unused_suppression_findings)."""
    used = set()
    remaining = []
    for f in findings:
        hit = None
        for i, (check, key, _, _) in enumerate(supps):
            if check == f.check and key == f.key:
                hit = i
                break
        if hit is None:
            remaining.append(f)
        else:
            used.add(hit)
    unused = [
        Finding("SUPP", f"{check}:{key}",
                f"unused suppression (line {lineno}): no {check} finding "
                f"with key {key} — delete it so it cannot mask a future "
                "regression")
        for i, (check, key, _, lineno) in enumerate(supps) if i not in used]
    return remaining, unused


# ---------------------------------------------------------------------------
# S1: static lock graph is rank-descending and acyclic.
# ---------------------------------------------------------------------------

def check_s1(program, analysis, edges):
    findings = []
    for (frm, to), (path, line) in sorted(edges.items()):
        if frm == to:
            # Same-name nesting is the striped ascending idiom; stripe
            # order is a runtime property the static pass cannot see, so
            # it stays with the runtime checker (and R6's token check).
            continue
        fi, ti = program.mutexes.get(frm), program.mutexes.get(to)
        if fi is None or ti is None or fi.rank is None or ti.rank is None:
            continue
        if ti.rank >= fi.rank:
            findings.append(Finding(
                "S1", f"{frm}->{to}",
                f"acquires \"{to}\" (rank {ti.rank}, {ti.rank_token}) while "
                f"\"{frm}\" (rank {fi.rank}, {fi.rank_token}) can be held — "
                "acquisition order must be strictly rank-descending",
                path, line))
    # Acyclicity over the whole edge set (catches cycles even among
    # suppressed rank violations).
    graph = {}
    for frm, to in edges:
        if frm != to:
            graph.setdefault(frm, []).append(to)
    for node in graph.values():
        node.sort()
    color, cycle = {}, []

    def dfs(n, stack):
        color[n] = 1
        stack.append(n)
        for nxt in graph.get(n, []):
            if color.get(nxt, 0) == 1:
                cycle.append(stack[stack.index(nxt):] + [nxt])
                continue
            if color.get(nxt, 0) == 0:
                dfs(nxt, stack)
        stack.pop()
        color[n] = 2

    for n in sorted(graph):
        if color.get(n, 0) == 0:
            dfs(n, [])
    for cyc in cycle:
        findings.append(Finding(
            "S1", "->".join(cyc),
            "static lock graph cycle: " + " -> ".join(
                f'"{n}"' for n in cyc)))
    return findings


# ---------------------------------------------------------------------------
# S2: no blocking call transitively reachable while a lock is held.
# ---------------------------------------------------------------------------

_BLOCK_DESC = {
    "sleep": "a real-time sleep",
    "join": "a thread join",
    "pool-wait": "ThreadPool::Wait (drains the whole queue)",
    "submit": "ThreadPool::Submit (takes the pool lock, can wake workers)",
    "condvar": "a condition wait",
    "device-io": "device I/O (reaches the io_delay_hook fault point)",
}


def _condvar_exempt(kind, detail, held):
    """Waiting on a condvar with only its own mutex held is the one legal
    way to block while holding a lock."""
    return kind == "condvar" and set(held) <= {detail}


def check_s2(analysis):
    findings = []
    seen = set()
    for fn in analysis.all_functions:
        # Direct blocking primitives under a held lock.
        for kind, detail, pos, held in fn.summary.blocking:
            if not held or _condvar_exempt(kind, detail, held):
                continue
            key = f"{fn.qualname}:{kind}"
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                "S2", key,
                f"{fn.qualname} performs {_BLOCK_DESC[kind]} ({detail}) "
                f"while holding {sorted(held)}",
                fn.path, fn.line_of(pos)))
        # Blocking roots reachable through calls made while holding locks.
        for call in fn.summary.calls:
            if not call.held:
                continue
            for target in call.targets + call.lambdas:
                for (kind, detail), chain in sorted(
                        analysis.blocking_closure(target).items()):
                    if _condvar_exempt(kind, detail, call.held):
                        continue
                    key = f"{fn.qualname}:{kind}"
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(Finding(
                        "S2", key,
                        f"{fn.qualname} holds {sorted(call.held)} across a "
                        f"call to {target.qualname}, which reaches "
                        f"{_BLOCK_DESC[kind]} ({detail}); path: "
                        + " -> ".join(chain),
                        fn.path, fn.line_of(call.pos)))
    return findings


# ---------------------------------------------------------------------------
# S3: GUARDED_BY fields only touched with the guard held.
# ---------------------------------------------------------------------------

def check_s3(analysis):
    findings = []
    seen = set()
    for fn in analysis.all_functions:
        for field, guard, pos, held_ok in fn.summary.guarded_uses:
            if held_ok:
                continue
            key = f"{fn.qualname}:{field}"
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                "S3", key,
                f"{fn.qualname} accesses \"{field}\" (GUARDED_BY "
                f"\"{guard}\") without holding the guard — add a guard "
                "scope, a REQUIRES() on the declaration, or AssertHeld()",
                fn.path, fn.line_of(pos)))
    return findings


# ---------------------------------------------------------------------------
# S4: runtime-observed graph ⊆ static graph.
# ---------------------------------------------------------------------------

def check_s4(program, edges, observed_text):
    nodes, obs_edges = parse_dot(observed_text)
    known = set(program.mutexes)
    findings = []
    for frm, to in sorted(obs_edges):
        if frm not in known or to not in known:
            continue  # test-local locks are outside the static universe
        if frm != to and (frm, to) not in edges:
            findings.append(Finding(
                "S4", f"{frm}->{to}",
                f"runtime observed edge \"{frm}\" -> \"{to}\" is absent "
                "from the static lock graph — the analyzer failed to model "
                "a real acquisition path; fix the parser or the model, "
                "do not suppress without a parser issue reference"))
    return findings


# ---------------------------------------------------------------------------
# DOT emission / parsing (shared grammar with LockOrderGraph::WriteDot).
# ---------------------------------------------------------------------------

_DOT_NODE = re.compile(r'^\s*"((?:[^"\\]|\\.)*)"\s*(?:\[[^\]]*\])?\s*;')
_DOT_EDGE = re.compile(
    r'^\s*"((?:[^"\\]|\\.)*)"\s*->\s*"((?:[^"\\]|\\.)*)"\s*(?:\[[^\]]*\])?'
    r'\s*;')


def write_dot(program, edges):
    """The static lock graph in the trivially-parseable DOT dialect that
    LockOrderGraph::WriteDot also emits. Every mutex in the DB appears as a
    node (even if isolated) so subset checks know the full universe."""
    lines = ["digraph lock_order {"]
    for name in sorted(program.mutexes):
        info = program.mutexes[name]
        rank = info.rank if info.rank is not None else -1
        striped = " striped=1" if info.striped else ""
        lines.append(f'  "{name}" [lockrank={rank}{striped}];')
    for frm, to in sorted(edges):
        lines.append(f'  "{frm}" -> "{to}";')
    lines.append("}")
    return "\n".join(lines) + "\n"


def parse_dot(text):
    """(node_names, edge_set) from our DOT dialect (one item per line)."""
    nodes, edges = set(), set()
    for line in text.splitlines():
        em = _DOT_EDGE.match(line)
        if em:
            edges.add((em.group(1), em.group(2)))
            nodes.add(em.group(1))
            nodes.add(em.group(2))
            continue
        nm = _DOT_NODE.match(line)
        if nm:
            nodes.add(nm.group(1))
    return nodes, edges


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def run_checks(program, analysis, observed_text=None):
    """All findings, most fundamental first. `observed_text` is the runtime
    DOT dump for S4 (skipped when None)."""
    edges = analysis.static_edges()
    findings = check_s1(program, analysis, edges)
    findings += check_s2(analysis)
    findings += check_s3(analysis)
    if observed_text is not None:
        findings += check_s4(program, edges, observed_text)
    return findings, edges
