"""The slint checks (S1-S7), DOT emission/parsing, and the suppression file.

Findings carry a (check, key) pair; a suppression line in
tools/slint_suppressions.txt must name exactly that pair plus a
justification (a key ending in `*` suppresses every key with that prefix —
for per-class S5 exemptions). Keys:

  S1  "from->to"            (lock names of the offending static edge)
  S2  "Qual::Name:kind"     (function qualname : blocking-root kind)
  S3  "Qual::Name:field"    (function qualname : guarded field)
  S4  "from->to"            (observed edge absent from the static graph)
  S5  "Class:field"         (unguarded mutable member of a shared class)
  S6  "Qual::Name:torn"     (error return leaves mutations un-undone)
  S7  "Qual::Name:publish"  (fallible call after the visibility flip)
"""

import json
import re

from .analysis import (_DELETE_KIND, _MUTATION_NAMES,
                       fallible_ret)


class Finding:
    def __init__(self, check, key, message, path=None, line=None):
        self.check = check
        self.key = key
        self.message = message
        self.path = path
        self.line = line

    def location(self):
        if self.path is None:
            return ""
        return f"{self.path}:{self.line}: " if self.line else f"{self.path}: "

    def __str__(self):
        return f"{self.location()}[{self.check} {self.key}] {self.message}"


# ---------------------------------------------------------------------------
# Suppressions.
# ---------------------------------------------------------------------------

_SUPP_LINE = re.compile(r"^(S[1-7])\s+(\S+)\s+--\s+(.+)$")


def load_suppressions(text):
    """[(check, key, justification, lineno)] from the suppression file text.
    Raises ValueError on a malformed or unjustified line."""
    out = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SUPP_LINE.match(line)
        if not m or not m.group(3).strip():
            raise ValueError(
                f"suppressions line {lineno}: expected "
                f"'S<n> <key> -- <justification>', got: {line}")
        out.append((m.group(1), m.group(2), m.group(3).strip(), lineno))
    return out


def _supp_matches(supp_key, finding_key):
    if supp_key.endswith("*"):
        return finding_key.startswith(supp_key[:-1])
    return supp_key == finding_key


def apply_suppressions(findings, supps):
    """(unsuppressed_findings, unused_suppression_findings)."""
    used = set()
    remaining = []
    for f in findings:
        hit = None
        for i, (check, key, _, _) in enumerate(supps):
            if check == f.check and _supp_matches(key, f.key):
                hit = i
                break
        if hit is None:
            remaining.append(f)
        else:
            used.add(hit)
    unused = [
        Finding("SUPP", f"{check}:{key}",
                f"unused suppression (line {lineno}): no {check} finding "
                f"with key {key} — delete it so it cannot mask a future "
                "regression")
        for i, (check, key, _, lineno) in enumerate(supps) if i not in used]
    return remaining, unused


# ---------------------------------------------------------------------------
# S1: static lock graph is rank-descending and acyclic.
# ---------------------------------------------------------------------------

def check_s1(program, analysis, edges):
    findings = []
    for (frm, to), (path, line) in sorted(edges.items()):
        if frm == to:
            # Same-name nesting is the striped ascending idiom; stripe
            # order is a runtime property the static pass cannot see, so
            # it stays with the runtime checker (and R6's token check).
            continue
        fi, ti = program.mutexes.get(frm), program.mutexes.get(to)
        if fi is None or ti is None or fi.rank is None or ti.rank is None:
            continue
        if ti.rank >= fi.rank:
            findings.append(Finding(
                "S1", f"{frm}->{to}",
                f"acquires \"{to}\" (rank {ti.rank}, {ti.rank_token}) while "
                f"\"{frm}\" (rank {fi.rank}, {fi.rank_token}) can be held — "
                "acquisition order must be strictly rank-descending",
                path, line))
    # Acyclicity over the whole edge set (catches cycles even among
    # suppressed rank violations).
    graph = {}
    for frm, to in edges:
        if frm != to:
            graph.setdefault(frm, []).append(to)
    for node in graph.values():
        node.sort()
    color, cycle = {}, []

    def dfs(n, stack):
        color[n] = 1
        stack.append(n)
        for nxt in graph.get(n, []):
            if color.get(nxt, 0) == 1:
                cycle.append(stack[stack.index(nxt):] + [nxt])
                continue
            if color.get(nxt, 0) == 0:
                dfs(nxt, stack)
        stack.pop()
        color[n] = 2

    for n in sorted(graph):
        if color.get(n, 0) == 0:
            dfs(n, [])
    for cyc in cycle:
        findings.append(Finding(
            "S1", "->".join(cyc),
            "static lock graph cycle: " + " -> ".join(
                f'"{n}"' for n in cyc)))
    return findings


# ---------------------------------------------------------------------------
# S2: no blocking call transitively reachable while a lock is held.
# ---------------------------------------------------------------------------

_BLOCK_DESC = {
    "sleep": "a real-time sleep",
    "join": "a thread join",
    "pool-wait": "ThreadPool::Wait (drains the whole queue)",
    "submit": "ThreadPool::Submit (takes the pool lock, can wake workers)",
    "condvar": "a condition wait",
    "device-io": "device I/O (reaches the io_delay_hook fault point)",
}


def _condvar_exempt(kind, detail, held):
    """Waiting on a condvar with only its own mutex held is the one legal
    way to block while holding a lock."""
    return kind == "condvar" and set(held) <= {detail}


def check_s2(analysis):
    findings = []
    seen = set()
    for fn in analysis.all_functions:
        # Direct blocking primitives under a held lock.
        for kind, detail, pos, held in fn.summary.blocking:
            if not held or _condvar_exempt(kind, detail, held):
                continue
            key = f"{fn.qualname}:{kind}"
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                "S2", key,
                f"{fn.qualname} performs {_BLOCK_DESC[kind]} ({detail}) "
                f"while holding {sorted(held)}",
                fn.path, fn.line_of(pos)))
        # Blocking roots reachable through calls made while holding locks.
        for call in fn.summary.calls:
            if not call.held:
                continue
            for target in call.targets + call.lambdas:
                for (kind, detail), chain in sorted(
                        analysis.blocking_closure(target).items()):
                    if _condvar_exempt(kind, detail, call.held):
                        continue
                    key = f"{fn.qualname}:{kind}"
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(Finding(
                        "S2", key,
                        f"{fn.qualname} holds {sorted(call.held)} across a "
                        f"call to {target.qualname}, which reaches "
                        f"{_BLOCK_DESC[kind]} ({detail}); path: "
                        + " -> ".join(chain),
                        fn.path, fn.line_of(call.pos)))
    return findings


# ---------------------------------------------------------------------------
# S3: GUARDED_BY fields only touched with the guard held.
# ---------------------------------------------------------------------------

def check_s3(analysis):
    findings = []
    seen = set()
    for fn in analysis.all_functions:
        for field, guard, pos, held_ok in fn.summary.guarded_uses:
            if held_ok:
                continue
            key = f"{fn.qualname}:{field}"
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                "S3", key,
                f"{fn.qualname} accesses \"{field}\" (GUARDED_BY "
                f"\"{guard}\") without holding the guard — add a guard "
                "scope, a REQUIRES() on the declaration, or AssertHeld()",
                fn.path, fn.line_of(pos)))
    return findings


# ---------------------------------------------------------------------------
# S4: runtime-observed graph ⊆ static graph.
# ---------------------------------------------------------------------------

def check_s4(program, edges, observed_text):
    nodes, obs_edges = parse_dot(observed_text)
    known = set(program.mutexes)
    findings = []
    for frm, to in sorted(obs_edges):
        if frm not in known or to not in known:
            continue  # test-local locks are outside the static universe
        if frm != to and (frm, to) not in edges:
            findings.append(Finding(
                "S4", f"{frm}->{to}",
                f"runtime observed edge \"{frm}\" -> \"{to}\" is absent "
                "from the static lock graph — the analyzer failed to model "
                "a real acquisition path; fix the parser or the model, "
                "do not suppress without a parser issue reference"))
    return findings


# ---------------------------------------------------------------------------
# S5: guard-completeness — every mutable member of a thread-shared class is
# GUARDED_BY-annotated, atomic, or const-after-construction.
# ---------------------------------------------------------------------------

# Member types that ARE the synchronization / execution machinery, not data.
_S5_EXEMPT_TYPES = frozenset((
    "Mutex", "SharedMutex", "CondVar", "ThreadPool", "thread"))

_MUTATOR_METHODS = (
    "push_back|emplace_back|emplace|emplace_front|pop_back|push_front|"
    "pop_front|push|pop|clear|erase|insert|resize|assign|swap|splice|reset")


def _write_sites(field):
    """Regex matching a WRITE of member `field`: assignment, compound
    assignment, inc/dec, or a container-mutator method call."""
    v = re.escape(field)
    return re.compile(
        r"(?:\+\+|--)\s*" + v + r"\b"
        r"|\b" + v + r"\s*(?:\+\+|--)"
        r"|\b" + v + r"\s*(?:\[[^\]]*\]\s*)?(?:[-+*/|&^]|<<|>>)?=(?!=)"
        r"|\b" + v + r"\s*(?:\.|->)\s*(?:" + _MUTATOR_METHODS + r")\s*\(")


def _is_member_write(body, m):
    """False when the matched write goes through a non-this receiver
    (`c.field = ...`, `plog->field = ...`): that is a write to SOME OTHER
    object — a local being built in a factory, a request struct — not to
    this instance's member."""
    pre = re.sub(r"(?:\+\+|--)\s*$", "", body[:m.start()])
    recv = re.search(r"(\w+|\]|\))\s*(?:\.|->)\s*$", pre)
    return recv is None or recv.group(1) == "this"


def check_s5(program, analysis):
    """For each thread-shared class (owns a lock/condvar/atomic, or its
    methods are reachable from a deferred Submit lambda), every mutable
    member must be annotated, atomic, or const-after-construction
    (written only by the constructor)."""
    findings = []
    shared = analysis.escaped_classes()
    methods = {}  # class -> [FunctionInfo] incl. excised lambdas
    for fn in analysis.all_functions:
        if fn.cls:
            methods.setdefault(fn.cls, []).append(fn)
    for cname in sorted(shared):
        ci = program.classes.get(cname)
        if ci is None:
            continue
        reason = shared[cname]
        for field in sorted(ci.members):
            t = ci.members[field]
            if field in ci.annotated or field in ci.const_members:
                continue
            if t in _S5_EXEMPT_TYPES or "atomic" in t:
                continue
            pat = _write_sites(field)
            site = None
            for fn in methods.get(cname, []):
                if fn.name.lstrip("~") == cname:
                    continue  # ctor/dtor run before/after sharing
                if field in fn.param_types:
                    continue  # a parameter shadows the member name
                for m in pat.finditer(fn.body):
                    if _is_member_write(fn.body, m):
                        site = (fn, m.start())
                        break
                if site:
                    break
            if site is None:
                continue  # const-after-construction
            fn, pos = site
            findings.append(Finding(
                "S5", f"{cname}:{field}",
                f"\"{cname}::{field}\" ({t}) is written by {fn.qualname} "
                f"but is neither GUARDED_BY-annotated, atomic, nor "
                f"const-after-construction; the class is thread-shared "
                f"({reason}) — annotate the member or justify-suppress",
                fn.path, fn.line_of(pos)))
    return findings


# ---------------------------------------------------------------------------
# S6: rollback/torn-state — every early error return after an externally
# visible mutation must reach an undo of the mutations made so far.
# ---------------------------------------------------------------------------

def _mutation_kind(name):
    """'delete' for idempotent delete-kind mutations, else 'write'."""
    return "delete" if _DELETE_KIND.match(name) else "write"


_TERMINAL_RETURN = re.compile(r"\breturn\b[^;{}]*$")


def _terminal(body, pos):
    """True if the mutation at `pos` sits inside a `return` statement
    (`return objects_->Write(...)`). Such a mutation ends its path: no
    later code runs after it, so it cannot leave state torn relative to
    a lexically-later error return (which belongs to a different path),
    and its own failure is exactly the status handed to the caller."""
    return _TERMINAL_RETURN.search(body, max(0, pos - 120), pos) is not None


def _mutation_events(analysis, fn):
    """[(eff_pos, pos, desc, chain, in_loop, kind)] durable mutations in
    `fn`, direct and via calls (interprocedural, with witness chains). A
    mutation inside a loop takes the loop start as its effective position:
    a later iteration can fail after an earlier iteration already
    mutated."""
    events = {}
    for desc, pos in analysis.effective_mutations(fn):
        if _terminal(fn.body, pos):
            continue
        name = desc.rsplit("->", 1)[-1]
        events[pos] = (pos, desc, None, _mutation_kind(name))
    for call in fn.summary.calls:
        if call.pos in events or call.discarded or \
                _terminal(fn.body, call.pos):
            continue
        for t in call.targets:
            closure = analysis.mutation_closure(t)
            if closure:
                desc, chain = next(iter(sorted(closure.items())))
                name = call.raw.split("::")[-1]
                events[call.pos] = (call.pos, f"{call.raw}() -> {desc}",
                                    chain, _mutation_kind(name))
                break
    out = []
    for pos, (p, desc, chain, kind) in sorted(events.items()):
        eff = p
        in_loop = False
        for start, end in fn.summary.loops:
            if start <= p < end:
                eff = min(eff, start)
                in_loop = True
        out.append((eff, p, desc, chain, in_loop, kind))
    return out


def _undo_sites(analysis, fn):
    """[(desc, pos)] undo operations in `fn`: the summary's own undo idioms
    (MarkGarbage / discarded deletes) plus two interprocedural forms —

    * a *discarded mutating call* (`ReleaseFragment(f).LogIgnored(...)`):
      explicitly best-effort compensation on an error path;
    * a call to a *pure undo helper*: a callee with no effective mutations
      of its own whose body consists of undo idioms (a rollback routine
      factored out of the commit protocol).
    """
    undos = list(fn.summary.undos)
    for call in fn.summary.calls:
        if not call.targets:
            continue
        if call.discarded:
            if any(analysis.mutation_closure(t) for t in call.targets):
                undos.append((call.raw, call.pos))
            continue
        if not any(analysis.effective_mutations(t) for t in call.targets) \
                and any(t.summary.undos for t in call.targets):
            undos.append((call.raw, call.pos))
    return undos


def check_s6(analysis):
    """Status/Result-returning functions performing >= 2 durable mutations:
    every early error return lexically after mutation k must have an undo
    (MarkGarbage/Rollback/discarded-Delete/erase idioms) between the first
    mutation and the return — otherwise the path leaves torn state."""
    findings = []
    for fn in analysis.all_functions:
        if not fallible_ret(fn):
            continue
        muts = _mutation_events(analysis, fn)
        # A function whose durable mutations are ALL delete-kind is a GC /
        # teardown protocol: a torn run leaves re-drivable garbage, and
        # re-running the delete is the rollback.
        if muts and all(m[5] == "delete" for m in muts):
            continue
        # Loop mutations count double: two iterations are two mutations.
        weight = sum(2 if in_loop else 1 for _, _, _, _, in_loop, _ in muts)
        if weight < 2:
            continue
        undos = _undo_sites(analysis, fn)
        torn = []
        for r in fn.summary.error_returns:
            pre = [m for m in muts if m[0] < r and m[1] != r]
            if not pre:
                continue
            first = min(m[1] for m in pre)
            if any(first <= upos < r or
                   _same_loop(fn.summary.loops, upos, r)
                   for _, upos in undos):
                continue
            torn.append((r, pre))
        if not torn:
            continue
        r, pre = torn[0]
        _, mpos, desc, chain, _, _ = pre[0]
        msg = (f"{fn.qualname} returns an error at line {fn.line_of(r)} "
               f"after {len(pre)} un-undone mutation(s) — first: {desc} "
               f"at line {fn.line_of(mpos)}")
        if chain:
            msg += "; mutation path: " + " -> ".join(chain)
        if len(torn) > 1:
            msg += f" ({len(torn)} torn error paths in total)"
        msg += (". Add rollback (MarkGarbage / best-effort Delete) before "
                "the return, or justify-suppress if partial state is "
                "benign/idempotent")
        findings.append(Finding("S6", f"{fn.qualname}:torn", msg,
                                fn.path, fn.line_of(r)))
    return findings


def _same_loop(loops, a, b):
    """True if positions a and b share a loop body (an undo in the same
    loop as the error return runs on the prior iterations' state)."""
    return any(s <= a < e and s <= b < e for s, e in loops)


# ---------------------------------------------------------------------------
# S7: publish-last — the operation that makes commit state visible to
# readers must be the lexically-last fallible operation.
# ---------------------------------------------------------------------------

def check_s7(analysis):
    findings = []
    for fn in analysis.all_functions:
        pubs = fn.summary.publishes
        if not pubs:
            continue
        muts = _mutation_events(analysis, fn)
        first_pub = min(pos for _, pos in pubs)
        # Only commit protocols: at least one durable mutation precedes
        # the publish (a bare map/catalog write is not a commit sequence).
        if not any(eff < first_pub for eff, _, _, _, _, _ in muts):
            continue
        undo_pos = {upos for _, upos in _undo_sites(analysis, fn)}
        for pdesc, ppos in pubs:
            offender = None
            for call in fn.summary.calls:
                if call.pos <= ppos:
                    continue
                name = call.raw.split("::")[-1]
                fallible = name in _MUTATION_NAMES or any(
                    fallible_ret(t) for t in call.targets)
                if not fallible:
                    continue
                if call.discarded or call.pos in undo_pos:
                    continue  # best-effort cleanup cannot tear the commit
                if offender is None or call.pos < offender[1]:
                    offender = (call.raw, call.pos)
            for desc, mpos in analysis.effective_mutations(fn):
                if mpos > ppos and (offender is None or mpos < offender[1]):
                    offender = (desc, mpos)
            if offender is None:
                continue
            oname, opos = offender
            findings.append(Finding(
                "S7", f"{fn.qualname}:publish",
                f"{fn.qualname} publishes ({pdesc}) at line "
                f"{fn.line_of(ppos)} but then performs fallible operation "
                f"{oname} at line {fn.line_of(opos)} — a failure after the "
                "visibility flip leaves readers seeing a commit whose "
                "protocol then errored; make the publish last, absorb the "
                "failure (.LogIgnored), or justify-suppress",
                fn.path, fn.line_of(opos)))
            break  # one finding per function
    return findings


# ---------------------------------------------------------------------------
# JSON findings export (CI artifact next to lock_graph.dot).
# ---------------------------------------------------------------------------

def findings_json(findings, remaining, unused, supps, stats):
    """Machine-readable report: every finding with its suppression state,
    plus unused-suppression errors and run statistics."""
    remaining_ids = {id(f) for f in remaining}
    supp_just = {}
    for check, key, just, _ in supps:
        supp_just[(check, key)] = just
    items = []
    for f in findings:
        just = None
        if id(f) not in remaining_ids:
            for (check, key), j in supp_just.items():
                if check == f.check and _supp_matches(key, f.key):
                    just = j
                    break
        items.append({
            "check": f.check, "key": f.key, "message": f.message,
            "path": f.path, "line": f.line,
            "suppressed": id(f) not in remaining_ids,
            "justification": just,
        })
    return json.dumps({
        "stats": stats,
        "findings": items,
        "unused_suppressions": [
            {"key": u.key, "message": u.message} for u in unused],
    }, indent=2) + "\n"


# ---------------------------------------------------------------------------
# DOT emission / parsing (shared grammar with LockOrderGraph::WriteDot).
# ---------------------------------------------------------------------------

_DOT_NODE = re.compile(r'^\s*"((?:[^"\\]|\\.)*)"\s*(?:\[[^\]]*\])?\s*;')
_DOT_EDGE = re.compile(
    r'^\s*"((?:[^"\\]|\\.)*)"\s*->\s*"((?:[^"\\]|\\.)*)"\s*(?:\[[^\]]*\])?'
    r'\s*;')


def write_dot(program, edges):
    """The static lock graph in the trivially-parseable DOT dialect that
    LockOrderGraph::WriteDot also emits. Every mutex in the DB appears as a
    node (even if isolated) so subset checks know the full universe."""
    lines = ["digraph lock_order {"]
    for name in sorted(program.mutexes):
        info = program.mutexes[name]
        rank = info.rank if info.rank is not None else -1
        striped = " striped=1" if info.striped else ""
        lines.append(f'  "{name}" [lockrank={rank}{striped}];')
    for frm, to in sorted(edges):
        lines.append(f'  "{frm}" -> "{to}";')
    lines.append("}")
    return "\n".join(lines) + "\n"


def parse_dot(text):
    """(node_names, edge_set) from our DOT dialect (one item per line)."""
    nodes, edges = set(), set()
    for line in text.splitlines():
        em = _DOT_EDGE.match(line)
        if em:
            edges.add((em.group(1), em.group(2)))
            nodes.add(em.group(1))
            nodes.add(em.group(2))
            continue
        nm = _DOT_NODE.match(line)
        if nm:
            nodes.add(nm.group(1))
    return nodes, edges


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def run_checks(program, analysis, observed_text=None):
    """All findings, most fundamental first. `observed_text` is the runtime
    DOT dump for S4 (skipped when None)."""
    edges = analysis.static_edges()
    findings = check_s1(program, analysis, edges)
    findings += check_s2(analysis)
    findings += check_s3(analysis)
    if observed_text is not None:
        findings += check_s4(program, edges, observed_text)
    findings += check_s5(program, analysis)
    findings += check_s6(analysis)
    findings += check_s7(analysis)
    return findings, edges
