"""Entry point so `python3 tools/slint` works from the repo root."""

import os
import sys

if __package__ in (None, ""):
    # Executed as a directory: put tools/ on the path and re-import as a
    # package so relative imports work.
    sys.path.insert(0, os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    from slint.cli import main
else:
    from .cli import main

if __name__ == "__main__":
    sys.exit(main())
