"""Command-line driver: python3 tools/slint [options].

Exit status is 0 iff there are no unsuppressed findings and no unused
suppressions (and no hard parse failures)."""

import argparse
import os
import sys

from .parsing import parse_program, load_tree
from .analysis import Analysis
from . import checks as C


def _default_root():
    # tools/slint/cli.py -> repo root is two levels up from tools/.
    return os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="slint",
        description="whole-program static correctness analyzer "
                    "(checks S1-S7)")
    ap.add_argument("--root", default=_default_root(),
                    help="repository root (default: inferred from tools/)")
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="parse files on N processes (0 = one per CPU; "
                         "default 1)")
    ap.add_argument("--no-cache", action="store_true",
                    help="disable the content-hash parse cache under "
                         "build/slint_cache/")
    ap.add_argument("--json", metavar="PATH",
                    help="write a machine-readable findings report to PATH")
    ap.add_argument("--dot", metavar="PATH",
                    help="write the static lock graph as DOT to PATH")
    ap.add_argument("--dot-only", action="store_true",
                    help="emit the DOT and exit 0 without reporting "
                         "findings (build-step mode)")
    ap.add_argument("--check-observed", metavar="PATH",
                    help="also run S4 against a runtime-dumped DOT "
                         "(from STREAMLAKE_LOCK_GRAPH_DOT)")
    ap.add_argument("--ambiguities", action="store_true",
                    help="print the call/lock attribution ambiguity report")
    ap.add_argument("--suppressions", metavar="PATH",
                    help="suppression file (default: "
                         "tools/slint_suppressions.txt under --root)")
    args = ap.parse_args(argv)

    sources = load_tree(args.root)
    if not sources:
        print(f"slint: no C++ sources under {args.root}/src",
              file=sys.stderr)
        return 2
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    cache_dir = None if args.no_cache else \
        os.path.join(args.root, "build", "slint_cache")
    program = parse_program(sources, jobs=jobs, cache_dir=cache_dir)
    if not program.ranks:
        print("slint: could not read the LockRank enum from "
              "src/common/mutex.h", file=sys.stderr)
        return 2
    analysis = Analysis(program)

    observed = None
    if args.check_observed:
        with open(args.check_observed, encoding="utf-8") as f:
            observed = f.read()

    findings, edges = C.run_checks(program, analysis, observed)

    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as f:
            f.write(C.write_dot(program, edges))
    if args.dot_only:
        print(f"slint: wrote {len(edges)} static edges over "
              f"{len(program.mutexes)} locks to {args.dot}")
        return 0

    supp_path = args.suppressions or os.path.join(
        args.root, "tools", "slint_suppressions.txt")
    supps = []
    if os.path.exists(supp_path):
        with open(supp_path, encoding="utf-8") as f:
            try:
                supps = C.load_suppressions(f.read())
            except ValueError as e:
                print(f"slint: {supp_path}: {e}", file=sys.stderr)
                return 2
    remaining, unused = C.apply_suppressions(findings, supps)

    if args.json:
        stats = {
            "functions": len(program.functions),
            "lambdas": len(analysis.lambda_funcs),
            "locks": len(program.mutexes),
            "static_edges": len(edges),
            "shared_classes": len(analysis.escaped_classes()),
        }
        with open(args.json, "w", encoding="utf-8") as f:
            f.write(C.findings_json(findings, remaining, unused, supps,
                                    stats))

    if args.ambiguities or remaining:
        for path, line, text in analysis.ambiguities:
            print(f"note: {path}:{line}: {text}")
        for gap in program.parse_gaps:
            print(f"note: parse gap: {gap}")
    for f in remaining + unused:
        print(f)

    n_supp = len(findings) - len(remaining)
    print(f"slint: {len(program.functions)} functions, "
          f"{len(analysis.lambda_funcs)} lambdas, "
          f"{len(program.mutexes)} locks, {len(edges)} static edges; "
          f"{len(remaining)} findings "
          f"({n_supp} suppressed, {len(unused)} unused suppressions)")
    return 1 if (remaining or unused) else 0
