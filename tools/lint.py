#!/usr/bin/env python3
"""StreamLake static lint: correctness conventions the compiler can't enforce.

Rules
  R1  [[nodiscard]] must stay on Status (src/common/status.h) and Result<T>
      (src/common/result.h) so dropped error returns warn everywhere.
  R2  Naked standard locking primitives (std::mutex, std::shared_mutex,
      std::lock_guard, std::unique_lock, std::shared_lock, std::scoped_lock,
      std::condition_variable) are banned outside src/common/mutex.h.
      Use the annotated Mutex / SharedMutex / MutexLock / CondVar wrappers,
      which Clang's -Wthread-safety analysis can see through.
  R3  Include hygiene:
      a. <mutex>, <shared_mutex>, <condition_variable> may only be included
         by src/common/mutex.h.
      b. Any file naming a wrapper type (Mutex, MutexLock, CondVar,
         GUARDED_BY, ...) must include "common/mutex.h" directly or via its
         own header (include-what-you-use for the locking layer).
      c. No parent-relative includes (#include "../...").
      d. Headers under src/ carry a STREAMLAKE_*_H_ include guard.

Run from the repo root:  python3 tools/lint.py
Registered as the `lint` ctest, so tier-1 verify runs it automatically.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCAN_DIRS = ("src", "tests", "bench", "examples")
MUTEX_HEADER = os.path.join("src", "common", "mutex.h")

BANNED_PRIMITIVES = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|"
    r"unique_lock|shared_lock|scoped_lock|condition_variable(_any)?)\b")
BANNED_INCLUDES = re.compile(
    r'#\s*include\s*<(mutex|shared_mutex|condition_variable)>')
WRAPPER_USE = re.compile(
    r"\b(MutexLock|WriterMutexLock|ReaderMutexLock|CondVar|GUARDED_BY|"
    r"PT_GUARDED_BY|REQUIRES|EXCLUDES|ACQUIRE|RELEASE|SCOPED_CAPABILITY)\b")
RELATIVE_INCLUDE = re.compile(r'#\s*include\s*"\.\./')
LOCAL_INCLUDE = re.compile(r'#\s*include\s*"([^"]+)"')


def strip_comments(text):
    """Remove // and /* */ comments and string literals so banned tokens in
    prose or messages don't trip the lint."""
    text = re.sub(r'"(\\.|[^"\\])*"', '""', text)
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    return text


def source_files():
    for d in SCAN_DIRS:
        for root, _, names in os.walk(os.path.join(REPO, d)):
            for name in sorted(names):
                if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                    yield os.path.relpath(os.path.join(root, name), REPO)


def direct_includes(path):
    with open(os.path.join(REPO, path), encoding="utf-8") as f:
        return set(LOCAL_INCLUDE.findall(f.read()))


def check_nodiscard(errors):
    expectations = [
        (os.path.join("src", "common", "status.h"),
         r"class\s+\[\[nodiscard\]\]\s+Status\b", "Status"),
        (os.path.join("src", "common", "result.h"),
         r"class\s+\[\[nodiscard\]\]\s+Result\b", "Result<T>"),
    ]
    for path, pattern, what in expectations:
        with open(os.path.join(REPO, path), encoding="utf-8") as f:
            if not re.search(pattern, f.read()):
                errors.append(
                    f"{path}: R1: {what} lost its [[nodiscard]] attribute")


def sibling_header(path):
    base, ext = os.path.splitext(path)
    if ext in (".cc", ".cpp"):
        h = base + ".h"
        if os.path.exists(os.path.join(REPO, h)):
            return os.path.relpath(h, "src") if h.startswith("src" + os.sep) \
                else h
    return None


def main():
    errors = []
    check_nodiscard(errors)

    for path in source_files():
        is_mutex_header = path == MUTEX_HEADER
        with open(os.path.join(REPO, path), encoding="utf-8") as f:
            raw = f.read()
        code = strip_comments(raw)

        # Token rules scan comment-stripped code; include rules scan raw
        # lines (stripping also blanks string literals, hiding "..." paths).
        for lineno, line in enumerate(code.split("\n"), 1):
            if not is_mutex_header:
                m = BANNED_PRIMITIVES.search(line)
                if m:
                    errors.append(
                        f"{path}:{lineno}: R2: naked std::{m.group(1)}; use "
                        "the annotated wrappers from common/mutex.h")
        for lineno, line in enumerate(raw.split("\n"), 1):
            if not is_mutex_header:
                m = BANNED_INCLUDES.search(line)
                if m:
                    errors.append(
                        f"{path}:{lineno}: R3a: #include <{m.group(1)}> is "
                        "reserved for common/mutex.h")
            if RELATIVE_INCLUDE.search(line):
                errors.append(
                    f"{path}:{lineno}: R3c: parent-relative include; use a "
                    "src/-rooted path")

        if not is_mutex_header and WRAPPER_USE.search(code):
            includes = direct_includes(path)
            header = sibling_header(path)
            if "common/mutex.h" not in includes and (
                    header is None or "common/mutex.h" not in
                    direct_includes(os.path.join("src", header) if
                                    os.path.exists(os.path.join(
                                        REPO, "src", header)) else header)):
                errors.append(
                    f"{path}: R3b: uses locking wrappers without including "
                    '"common/mutex.h" (directly or via its own header)')

        if path.startswith("src" + os.sep) and path.endswith(".h"):
            if not re.search(r"#ifndef STREAMLAKE_\w+_H_", raw):
                errors.append(
                    f"{path}: R3d: missing STREAMLAKE_*_H_ include guard")

    if errors:
        print(f"lint: {len(errors)} violation(s)")
        for e in errors:
            print("  " + e)
        return 1
    print("lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
