#!/usr/bin/env python3
"""StreamLake static lint: correctness conventions the compiler can't enforce.

Rules
  R1  [[nodiscard]] must stay on Status (src/common/status.h) and Result<T>
      (src/common/result.h) so dropped error returns warn everywhere.
  R2  Naked standard locking primitives (std::mutex, std::shared_mutex,
      std::lock_guard, std::unique_lock, std::shared_lock, std::scoped_lock,
      std::condition_variable) are banned outside src/common/mutex.{h,cc}.
      Use the annotated Mutex / SharedMutex / MutexLock / CondVar wrappers,
      which Clang's -Wthread-safety analysis can see through.
  R3  Include hygiene:
      a. <mutex>, <shared_mutex>, <condition_variable> may only be included
         by src/common/mutex.{h,cc}.
      b. Any file naming a wrapper type (Mutex, MutexLock, CondVar,
         GUARDED_BY, ...) must include "common/mutex.h" directly or via its
         own header (include-what-you-use for the locking layer).
      c. No parent-relative includes (#include "../...").
      d. Headers under src/ carry a STREAMLAKE_*_H_ include guard.
  R4  Every Mutex / SharedMutex member declared under src/ names its
      LockRank in the declaration, keeping the lock hierarchy total (see
      DESIGN.md, "Lock hierarchy").
  R5  No blocking calls inside a MutexLock / WriterMutexLock /
      ReaderMutexLock scope: real-time sleeps (std::this_thread::sleep_*,
      sleep/usleep/nanosleep), thread .join(), argument-less .Wait() /
      ->Wait() (ThreadPool-style barrier waits; CondVar::Wait(&mu) takes
      the mutex argument and is exempt), and SimClock sleep-style helpers
      (SleepFor/SleepUntil) should never run under a module lock.
      For src/ this rule is RETIRED in favour of the whole-program
      analyzer (tools/slint, check S2), which also sees blocking calls
      reached transitively through callees; lint keeps the cheap
      intraprocedural scan only for tests/, bench/ and examples/, which
      slint does not analyze.
  R6  No ad-hoc instrumentation counters under src/ outside
      src/common/metrics.{h,cc}: members named *_counter_ and
      pointer-plumbed `counters->` stat structs are banned. Observability
      goes through MetricsRegistry (common/metrics.h) under a stable
      dotted name so it shows up in snapshots and the CI bench gate
      (DESIGN.md, "Observability").
  R7  Every `.IgnoreError()` call under src/ carries an adjacent
      `// ignore-ok: <reason>` comment (same line or the line above),
      mirroring the slint suppression grammar: silently dropping a Status
      needs a written justification just like suppressing a finding.
      Prefer `.LogIgnored("reason")`, which logs a warning and bumps
      common.status.ignored — it needs no comment because it carries its
      reason in code.

Run from the repo root:  python3 tools/lint.py
Registered as the `lint` ctest, so tier-1 verify runs it automatically;
tools/lint_test.py (`lint_selftest` ctest) exercises these rules on
synthetic sources.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCAN_DIRS = ("src", "tests", "bench", "examples")
# The wrapper implementation itself is the one place allowed to use the
# standard primitives and their headers (R2/R3a).
MUTEX_FILES = (
    os.path.join("src", "common", "mutex.h"),
    os.path.join("src", "common", "mutex.cc"),
)
# The metrics layer itself is the one place allowed to look like a counter
# implementation (R6).
METRICS_FILES = (
    os.path.join("src", "common", "metrics.h"),
    os.path.join("src", "common", "metrics.cc"),
)

BANNED_PRIMITIVES = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|"
    r"unique_lock|shared_lock|scoped_lock|condition_variable(_any)?)\b")
BANNED_INCLUDES = re.compile(
    r'#\s*include\s*<(mutex|shared_mutex|condition_variable)>')
WRAPPER_USE = re.compile(
    r"\b(MutexLock|WriterMutexLock|ReaderMutexLock|CondVar|GUARDED_BY|"
    r"PT_GUARDED_BY|REQUIRES|EXCLUDES|ACQUIRE|RELEASE|SCOPED_CAPABILITY)\b")
RELATIVE_INCLUDE = re.compile(r'#\s*include\s*"\.\./')
LOCAL_INCLUDE = re.compile(r'#\s*include\s*"([^"]+)"')

# R4: a Mutex/SharedMutex variable declaration (not a pointer/reference
# parameter, which matches `Mutex*` / `Mutex&` and is skipped by \s+\w).
MUTEX_DECL = re.compile(r"\b(Mutex|SharedMutex)\s+(\w+)")

# R6: ad-hoc counter idioms that bypass the metrics registry.
AD_HOC_COUNTER = re.compile(r"\b\w+_counter_\b|\bcounters\s*->")

# R7: the call form only (`.IgnoreError()`), so the declaration in
# status.h (`void IgnoreError() const`) is exempt by construction.
IGNORE_CALL = re.compile(r"\.\s*IgnoreError\s*\(\s*\)")
IGNORE_OK = re.compile(r"//\s*ignore-ok:\s*\S")

# R5: lock-scope openers and the blocking calls banned inside them.
LOCK_SCOPE = re.compile(
    r"\b(MutexLock|WriterMutexLock|ReaderMutexLock)\s+\w+\s*[({]")
BLOCKING_CALL = re.compile(
    r"(std::this_thread::sleep_(for|until)\b"
    r"|\b(::)?(sleep|usleep|nanosleep)\s*\("
    r"|\.join\s*\(\s*\)"
    r"|(\.|->)Wait\s*\(\s*\)"
    r"|(\.|->)Sleep(For|Until)\s*\()")


def strip_comments(text):
    """Blank out comments, string literals (including raw strings), and
    character literals so banned tokens in prose or messages don't trip the
    lint. Newlines are preserved, so line numbers in the result match the
    original text — unlike a regex pass, which raw strings like
    R"(// not a comment)" and escaped quotes would derail."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":  # line comment
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":  # block comment
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif c == "R" and nxt == '"':  # raw string literal R"delim(...)delim"
            j = text.find("(", i + 2)
            if j == -1:
                out.append(c)
                i += 1
                continue
            delim = text[i + 2:j]
            end = text.find(")" + delim + '"', j + 1)
            if end == -1:
                out.append(c)
                i += 1
                continue
            out.append('""')
            out.append("\n" * text.count("\n", i, end))
            i = end + len(delim) + 2
        elif c == '"':  # ordinary string literal, honouring \" escapes
            out.append('""')
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":  # unterminated; don't eat the file
                    break
                i += 1
            i += 1
        elif c == "'":  # character literal, honouring \' escapes
            out.append("''")
            i += 1
            while i < n and text[i] != "'":
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    break
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def lineno_at(text, pos):
    return text.count("\n", 0, pos) + 1


def check_rank_declared(path, code, errors):
    """R4: every Mutex/SharedMutex member under src/ carries a LockRank
    initializer. Scans to the end of the declaration statement (the next
    ';'), so multi-line brace initializers are handled."""
    for m in MUTEX_DECL.finditer(code):
        stmt_end = code.find(";", m.end())
        stmt = code[m.start():stmt_end if stmt_end != -1 else len(code)]
        if "LockRank::" not in stmt:
            errors.append(
                f"{path}:{lineno_at(code, m.start())}: R4: {m.group(1)} "
                f"'{m.group(2)}' declared without a LockRank; every lock "
                "names its place in the hierarchy (DESIGN.md)")


def check_blocking_under_lock(path, code, errors):
    """R5: flag blocking calls between a scoped-lock declaration and the
    close of its enclosing compound statement (tracked by brace depth).

    Intraprocedural by construction, so only applied OUTSIDE src/: for
    src/ the interprocedural slint S2 check supersedes it (a sleep two
    frames below the lock is invisible here but not there)."""
    regions = []  # (start_pos, end_pos) of live lock scopes
    for m in LOCK_SCOPE.finditer(code):
        depth = 0
        end = len(code)
        for i in range(m.end(), len(code)):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth < 0:
                    end = i
                    break
        regions.append((m.end(), end))
    for m in BLOCKING_CALL.finditer(code):
        if any(start <= m.start() < end for start, end in regions):
            errors.append(
                f"{path}:{lineno_at(code, m.start())}: R5: blocking call "
                f"'{m.group(0).strip()}' inside a scoped-lock region; "
                "release the lock before sleeping, joining, or waiting")


def lint_text(path, raw):
    """All single-file rules, on in-memory text (self-test entry point)."""
    errors = []
    is_mutex_file = path in MUTEX_FILES
    code = strip_comments(raw)

    # Token rules scan comment-stripped code; include rules scan raw
    # lines (stripping also blanks string literals, hiding "..." paths).
    for lineno, line in enumerate(code.split("\n"), 1):
        if not is_mutex_file:
            m = BANNED_PRIMITIVES.search(line)
            if m:
                errors.append(
                    f"{path}:{lineno}: R2: naked std::{m.group(1)}; use "
                    "the annotated wrappers from common/mutex.h")
    for lineno, line in enumerate(raw.split("\n"), 1):
        if not is_mutex_file:
            m = BANNED_INCLUDES.search(line)
            if m:
                errors.append(
                    f"{path}:{lineno}: R3a: #include <{m.group(1)}> is "
                    "reserved for common/mutex.h")
        if RELATIVE_INCLUDE.search(line):
            errors.append(
                f"{path}:{lineno}: R3c: parent-relative include; use a "
                "src/-rooted path")

    if path.startswith("src" + os.sep) and path.endswith(".h"):
        if not re.search(r"#ifndef STREAMLAKE_\w+_H_", raw):
            errors.append(
                f"{path}: R3d: missing STREAMLAKE_*_H_ include guard")

    if path.startswith("src" + os.sep) and not is_mutex_file:
        check_rank_declared(path, code, errors)

    if path.startswith("src" + os.sep) and path not in METRICS_FILES:
        for lineno, line in enumerate(code.split("\n"), 1):
            m = AD_HOC_COUNTER.search(line)
            if m:
                errors.append(
                    f"{path}:{lineno}: R6: ad-hoc counter "
                    f"'{m.group(0).strip()}'; report through "
                    "MetricsRegistry (common/metrics.h) instead")

    if path.startswith("src" + os.sep):
        # R7 scans stripped code for the call (so prose mentions don't
        # trip it) but raw lines for the justification comment.
        raw_lines = raw.split("\n")
        for m in IGNORE_CALL.finditer(code):
            lineno = lineno_at(code, m.start())
            adjacent = raw_lines[max(0, lineno - 2):lineno]
            if not any(IGNORE_OK.search(line) for line in adjacent):
                errors.append(
                    f"{path}:{lineno}: R7: .IgnoreError() without an "
                    "adjacent '// ignore-ok: <reason>' comment; justify "
                    "the drop or use .LogIgnored(\"reason\")")

    if not path.startswith("src" + os.sep):
        check_blocking_under_lock(path, code, errors)
    return errors


def source_files():
    for d in SCAN_DIRS:
        for root, _, names in os.walk(os.path.join(REPO, d)):
            for name in sorted(names):
                if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                    yield os.path.relpath(os.path.join(root, name), REPO)


def direct_includes(path):
    with open(os.path.join(REPO, path), encoding="utf-8") as f:
        return set(LOCAL_INCLUDE.findall(f.read()))


def check_nodiscard(errors):
    expectations = [
        (os.path.join("src", "common", "status.h"),
         r"class\s+\[\[nodiscard\]\]\s+Status\b", "Status"),
        (os.path.join("src", "common", "result.h"),
         r"class\s+\[\[nodiscard\]\]\s+Result\b", "Result<T>"),
    ]
    for path, pattern, what in expectations:
        with open(os.path.join(REPO, path), encoding="utf-8") as f:
            if not re.search(pattern, f.read()):
                errors.append(
                    f"{path}: R1: {what} lost its [[nodiscard]] attribute")


def sibling_header(path):
    base, ext = os.path.splitext(path)
    if ext in (".cc", ".cpp"):
        h = base + ".h"
        if os.path.exists(os.path.join(REPO, h)):
            return os.path.relpath(h, "src") if h.startswith("src" + os.sep) \
                else h
    return None


def main():
    errors = []
    check_nodiscard(errors)

    for path in source_files():
        with open(os.path.join(REPO, path), encoding="utf-8") as f:
            raw = f.read()
        errors.extend(lint_text(path, raw))

        # R3b needs the filesystem (sibling-header lookup), so it stays out
        # of lint_text.
        if path not in MUTEX_FILES and WRAPPER_USE.search(strip_comments(raw)):
            includes = direct_includes(path)
            header = sibling_header(path)
            if "common/mutex.h" not in includes and (
                    header is None or "common/mutex.h" not in
                    direct_includes(os.path.join("src", header) if
                                    os.path.exists(os.path.join(
                                        REPO, "src", header)) else header)):
                errors.append(
                    f"{path}: R3b: uses locking wrappers without including "
                    '"common/mutex.h" (directly or via its own header)')

    if errors:
        print(f"lint: {len(errors)} violation(s)")
        for e in errors:
            print("  " + e)
        return 1
    print("lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
