#!/usr/bin/env python3
"""Self-test for tools/lint.py, run as the `lint_selftest` ctest.

Feeds synthetic C++ sources through lint_text()/strip_comments() and checks
each rule fires (and doesn't fire) where intended. Uses unittest from the
stdlib so it runs anywhere lint.py does.
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint  # noqa: E402


def src(name="src/x/mod.h"):
    return os.path.join(*name.split("/"))


GUARD = "#ifndef STREAMLAKE_X_MOD_H_\n"


class StripCommentsTest(unittest.TestCase):
    def test_line_and_block_comments_removed(self):
        out = lint.strip_comments("a; // std::mutex\n/* std::mutex */ b;\n")
        self.assertNotIn("std::mutex", out)
        self.assertIn("a;", out)
        self.assertIn("b;", out)

    def test_string_literals_blanked(self):
        out = lint.strip_comments('Log("use std::mutex here");\n')
        self.assertNotIn("std::mutex", out)
        self.assertIn("Log", out)

    def test_escaped_quote_does_not_leak_string(self):
        # With naive regex stripping, the \" ends the literal early and the
        # rest of the line (std::mutex) leaks into "code".
        out = lint.strip_comments('Log("escaped \\" quote std::mutex");\n')
        self.assertNotIn("std::mutex", out)

    def test_raw_string_literal_blanked(self):
        text = 'auto s = R"(std::mutex // not a comment)"; int x;\n'
        out = lint.strip_comments(text)
        self.assertNotIn("std::mutex", out)
        self.assertIn("int x;", out)

    def test_raw_string_with_custom_delimiter(self):
        text = 'auto s = R"foo(contains )" inside std::mutex)foo"; y;\n'
        out = lint.strip_comments(text)
        self.assertNotIn("std::mutex", out)
        self.assertIn("y;", out)

    def test_comment_after_raw_string_still_stripped(self):
        out = lint.strip_comments('auto s = R"(x)";  // std::mutex\n')
        self.assertNotIn("std::mutex", out)

    def test_char_literal_quote_does_not_derail(self):
        out = lint.strip_comments("char c = '\"'; std::mutex m;\n")
        self.assertIn("std::mutex", out)  # real code survives stripping

    def test_newlines_preserved_for_line_numbers(self):
        text = "a;\n/* two\nline comment */\nstd::mutex m;\n"
        out = lint.strip_comments(text)
        self.assertEqual(text.count("\n"), out.count("\n"))
        line = out.split("\n").index("std::mutex m;") + 1
        self.assertEqual(line, 4)


class RuleTest(unittest.TestCase):
    def errors(self, text, path=None):
        return lint.lint_text(path or src(), GUARD + text)

    def assert_rule(self, rule, text, path=None):
        errs = self.errors(text, path)
        self.assertTrue(any(f": {rule}: " in e for e in errs),
                        f"{rule} did not fire; got {errs}")

    def assert_clean(self, text, path=None):
        self.assertEqual(self.errors(text, path), [])

    # R2 / R3a ------------------------------------------------------------
    def test_r2_naked_std_mutex(self):
        self.assert_rule("R2", "std::mutex m;\n")

    def test_r2_exempts_mutex_files(self):
        for path in lint.MUTEX_FILES:
            errs = lint.lint_text(
                path, "#ifndef STREAMLAKE_COMMON_MUTEX_H_\nstd::mutex m;\n")
            self.assertFalse(any(": R2: " in e for e in errs), errs)

    def test_r2_ignores_comments_and_strings(self):
        self.assert_clean("// std::mutex\nconst char* s = \"std::mutex\";\n")

    def test_r3a_reserved_include(self):
        self.assert_rule("R3a", "#include <mutex>\n")

    # R3c / R3d -----------------------------------------------------------
    def test_r3c_parent_relative_include(self):
        self.assert_rule("R3c", '#include "../common/mutex.h"\n')

    def test_r3d_missing_guard(self):
        errs = lint.lint_text(src(), "int x;\n")
        self.assertTrue(any(": R3d: " in e for e in errs), errs)

    # R4 ------------------------------------------------------------------
    def test_r4_member_without_rank(self):
        self.assert_rule("R4", "class C {\n  Mutex mu_;\n};\n")

    def test_r4_shared_mutex_without_rank(self):
        self.assert_rule("R4", "class C {\n  SharedMutex mu_;\n};\n")

    def test_r4_rank_on_declaration_is_clean(self):
        self.assert_clean(
            'class C {\n'
            '  Mutex mu_{LockRank::kKvStore, "kv.store"};\n};\n')

    def test_r4_multiline_initializer_is_clean(self):
        self.assert_clean(
            "class C {\n  mutable Mutex mu_{\n"
            '      LockRank::kKvStore, "kv.store"};\n};\n')

    def test_r4_skips_pointer_and_reference(self):
        self.assert_clean("void f(Mutex* mu, Mutex& other);\n")

    def test_r4_only_applies_under_src(self):
        errs = lint.lint_text(os.path.join("tests", "t.cc"),
                              "Mutex mu_;\n")
        self.assertFalse(any(": R4: " in e for e in errs), errs)

    # R5 (tests/bench/examples only; src/ is slint S2's job) --------------
    TEST_CC = os.path.join("tests", "t.cc")

    def test_r5_sleep_under_lock(self):
        self.assert_rule(
            "R5",
            "void F() {\n  MutexLock lock(&mu_);\n"
            "  std::this_thread::sleep_for(1ms);\n}\n",
            path=self.TEST_CC)

    def test_r5_join_under_reader_lock(self):
        self.assert_rule(
            "R5",
            "void F() {\n  ReaderMutexLock lock(&mu_);\n  t.join();\n}\n",
            path=self.TEST_CC)

    def test_r5_argless_wait_under_lock(self):
        self.assert_rule(
            "R5",
            "void F() {\n  WriterMutexLock lock(&mu_);\n  pool->Wait();\n}\n",
            path=self.TEST_CC)

    def test_r5_condvar_wait_with_mutex_arg_is_exempt(self):
        self.assert_clean(
            "void F() {\n  MutexLock lock(&mu_);\n"
            "  while (q_.empty()) cv_.Wait(&mu_);\n}\n",
            path=self.TEST_CC)

    def test_r5_sleep_after_scope_closes_is_clean(self):
        self.assert_clean(
            "void F() {\n  {\n    MutexLock lock(&mu_);\n    n_++;\n  }\n"
            "  std::this_thread::sleep_for(1ms);\n}\n",
            path=self.TEST_CC)

    def test_r5_retired_under_src_in_favour_of_slint_s2(self):
        # Under src/ the interprocedural analyzer (tools/slint, check S2)
        # owns this rule; lint must not double-report.
        errs = lint.lint_text(
            src("src/x/mod.cc"),
            "void F() {\n  MutexLock lock(&mu_);\n"
            "  std::this_thread::sleep_for(1ms);\n}\n")
        self.assertFalse(any(": R5: " in e for e in errs), errs)

    # R6 ------------------------------------------------------------------
    def test_r6_counter_member(self):
        self.assert_rule("R6", "class C {\n  uint64_t ops_counter_ = 0;\n};\n")

    def test_r6_pointer_plumbed_counters_struct(self):
        self.assert_rule("R6", "void F(Stats* counters) {\n"
                               "  counters->reads += 1;\n}\n")

    def test_r6_exempts_metrics_files(self):
        for path in lint.METRICS_FILES:
            errs = lint.lint_text(
                path, "#ifndef STREAMLAKE_COMMON_METRICS_H_\n"
                      "uint64_t shadow_counter_ = 0;\n")
            self.assertFalse(any(": R6: " in e for e in errs), errs)

    def test_r6_only_applies_under_src(self):
        errs = lint.lint_text(os.path.join("tests", "t.cc"),
                              "uint64_t ops_counter_ = 0;\n")
        self.assertFalse(any(": R6: " in e for e in errs), errs)

    def test_r6_ignores_comments_and_registry_idiom(self):
        self.assert_clean(
            "// the old ops_counter_ member is gone\n"
            "static Counter* ops =\n"
            '    MetricsRegistry::Global().GetCounter("kv.get.ops");\n')

    # R7 ------------------------------------------------------------------
    def test_r7_ignore_error_without_comment(self):
        self.assert_rule("R7", "void F(Status s) {\n  s.IgnoreError();\n}\n")

    def test_r7_same_line_comment_is_clean(self):
        self.assert_clean(
            "void F(Status s) {\n"
            "  s.IgnoreError();  // ignore-ok: shutdown path, store is gone\n"
            "}\n")

    def test_r7_comment_on_line_above_is_clean(self):
        self.assert_clean(
            "void F(Status s) {\n"
            "  // ignore-ok: best-effort cache warmup\n"
            "  s.IgnoreError();\n"
            "}\n")

    def test_r7_bare_ignore_ok_marker_is_not_enough(self):
        # The marker must carry a reason, not just the tag.
        self.assert_rule(
            "R7", "void F(Status s) {\n  s.IgnoreError();  // ignore-ok:\n}\n")

    def test_r7_log_ignored_is_clean(self):
        self.assert_clean(
            'void F(Status s) {\n  s.LogIgnored("gc release");\n}\n')

    def test_r7_declaration_and_prose_are_clean(self):
        self.assert_clean(
            "// callers that truly cannot act may call IgnoreError()\n"
            "void IgnoreError() const {}\n")

    def test_r7_only_applies_under_src(self):
        errs = lint.lint_text(os.path.join("tests", "t.cc"),
                              "void F(Status s) {\n  s.IgnoreError();\n}\n")
        self.assertFalse(any(": R7: " in e for e in errs), errs)


class RepoTest(unittest.TestCase):
    def test_whole_repo_is_clean(self):
        # The shipped tree must satisfy its own lint (same check as the
        # `lint` ctest, via the public entry point).
        self.assertEqual(lint.main(), 0)


if __name__ == "__main__":
    unittest.main()
