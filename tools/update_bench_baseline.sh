#!/usr/bin/env bash
# Rebuild the release preset, run the CI-gated benches, and rewrite
# bench/baseline.json from the measured values (directions and tolerances
# are preserved). Run from the repo root after an intentional performance
# change, then commit the baseline diff alongside the change:
#
#   tools/update_bench_baseline.sh
#
# Only deterministic simulated-clock metrics are tracked (see DESIGN.md,
# "Observability"), so the refreshed values are machine-independent.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset release
cmake --build --preset release -j "$(nproc)"

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT
build-release/bench/bench_fig15_metadata "--json_out=$out/BENCH_fig15_metadata.json"
build-release/bench/bench_fig14_throughput "--json_out=$out/BENCH_fig14_throughput.json"
build-release/bench/bench_micro "--json_out=$out/BENCH_micro.json" \
    --benchmark_min_time=0.01 >/dev/null

python3 tools/bench_compare.py --baseline bench/baseline.json --update \
    "$out"/BENCH_*.json
