#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy) over every translation unit, driven
# by the compilation database CMake exports (CMAKE_EXPORT_COMPILE_COMMANDS
# is ON globally; any configured preset's build dir works).
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#   build-dir   directory containing compile_commands.json (default: build,
#               configured with the default preset if missing)
#
# Exits non-zero on any finding (WarningsAsErrors: '*') or if clang-tidy
# is not installed.

set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found on PATH." >&2
  echo "  install it (e.g. apt-get install clang-tidy) or, for the other" >&2
  echo "  checks only, use scripts/check.sh --no-tidy" >&2
  exit 2
fi

build_dir="${1:-build}"
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "==> no $build_dir/compile_commands.json; configuring default preset"
  cmake --preset default >/dev/null
fi

jobs=$(nproc 2>/dev/null || echo 4)
mapfile -t sources < <(find src tests bench examples \
                            -name '*.cc' -o -name '*.cpp' | sort)
if [[ ${#sources[@]} -eq 0 ]]; then
  echo "run_clang_tidy: no sources found (run from the repo root)" >&2
  exit 2
fi

echo "==> clang-tidy (${#sources[@]} files, $jobs jobs)"
printf '%s\0' "${sources[@]}" |
  xargs -0 -n 1 -P "$jobs" clang-tidy -p "$build_dir" --quiet
echo "==> clang-tidy clean"
