# Empty compiler generated dependencies file for bench_fig15_metadata.
# This may be replaced when dependencies are built.
