file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mor.dir/bench_ablation_mor.cc.o"
  "CMakeFiles/bench_ablation_mor.dir/bench_ablation_mor.cc.o.d"
  "bench_ablation_mor"
  "bench_ablation_mor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
