# Empty compiler generated dependencies file for bench_ablation_mor.
# This may be replaced when dependencies are built.
