file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_compaction.dir/bench_fig16_compaction.cc.o"
  "CMakeFiles/bench_fig16_compaction.dir/bench_fig16_compaction.cc.o.d"
  "bench_fig16_compaction"
  "bench_fig16_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
