# Empty dependencies file for bench_fig16_compaction.
# This may be replaced when dependencies are built.
