file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_partitioning.dir/bench_fig16_partitioning.cc.o"
  "CMakeFiles/bench_fig16_partitioning.dir/bench_fig16_partitioning.cc.o.d"
  "bench_fig16_partitioning"
  "bench_fig16_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
