file(REMOVE_RECURSE
  "CMakeFiles/lakebrain_test.dir/lakebrain_test.cc.o"
  "CMakeFiles/lakebrain_test.dir/lakebrain_test.cc.o.d"
  "lakebrain_test"
  "lakebrain_test.pdb"
  "lakebrain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakebrain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
