# Empty compiler generated dependencies file for lakebrain_test.
# This may be replaced when dependencies are built.
