# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/format_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/streaming_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/convert_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/lakebrain_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/access_test[1]_include.cmake")
include("/root/repo/build/tests/resilience_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
