# Empty dependencies file for lakebrain_demo.
# This may be replaced when dependencies are built.
