file(REMOVE_RECURSE
  "CMakeFiles/lakebrain_demo.dir/lakebrain_demo.cpp.o"
  "CMakeFiles/lakebrain_demo.dir/lakebrain_demo.cpp.o.d"
  "lakebrain_demo"
  "lakebrain_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakebrain_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
