file(REMOVE_RECURSE
  "CMakeFiles/dau_pipeline.dir/dau_pipeline.cpp.o"
  "CMakeFiles/dau_pipeline.dir/dau_pipeline.cpp.o.d"
  "dau_pipeline"
  "dau_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dau_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
