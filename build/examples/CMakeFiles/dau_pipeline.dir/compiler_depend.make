# Empty compiler generated dependencies file for dau_pipeline.
# This may be replaced when dependencies are built.
