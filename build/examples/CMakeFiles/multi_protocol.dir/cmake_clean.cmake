file(REMOVE_RECURSE
  "CMakeFiles/multi_protocol.dir/multi_protocol.cpp.o"
  "CMakeFiles/multi_protocol.dir/multi_protocol.cpp.o.d"
  "multi_protocol"
  "multi_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
