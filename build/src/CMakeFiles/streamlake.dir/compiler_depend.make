# Empty compiler generated dependencies file for streamlake.
# This may be replaced when dependencies are built.
