
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/access/access_control.cc" "src/CMakeFiles/streamlake.dir/access/access_control.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/access/access_control.cc.o.d"
  "/root/repo/src/access/block_service.cc" "src/CMakeFiles/streamlake.dir/access/block_service.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/access/block_service.cc.o.d"
  "/root/repo/src/access/nas_service.cc" "src/CMakeFiles/streamlake.dir/access/nas_service.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/access/nas_service.cc.o.d"
  "/root/repo/src/access/s3_gateway.cc" "src/CMakeFiles/streamlake.dir/access/s3_gateway.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/access/s3_gateway.cc.o.d"
  "/root/repo/src/baselines/mini_hdfs.cc" "src/CMakeFiles/streamlake.dir/baselines/mini_hdfs.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/baselines/mini_hdfs.cc.o.d"
  "/root/repo/src/baselines/mini_kafka.cc" "src/CMakeFiles/streamlake.dir/baselines/mini_kafka.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/baselines/mini_kafka.cc.o.d"
  "/root/repo/src/codec/compression.cc" "src/CMakeFiles/streamlake.dir/codec/compression.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/codec/compression.cc.o.d"
  "/root/repo/src/codec/encoding.cc" "src/CMakeFiles/streamlake.dir/codec/encoding.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/codec/encoding.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/streamlake.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/common/hash.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/streamlake.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/streamlake.dir/common/random.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/streamlake.dir/common/status.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/common/status.cc.o.d"
  "/root/repo/src/common/threadpool.cc" "src/CMakeFiles/streamlake.dir/common/threadpool.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/common/threadpool.cc.o.d"
  "/root/repo/src/convert/converter.cc" "src/CMakeFiles/streamlake.dir/convert/converter.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/convert/converter.cc.o.d"
  "/root/repo/src/core/streamlake.cc" "src/CMakeFiles/streamlake.dir/core/streamlake.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/core/streamlake.cc.o.d"
  "/root/repo/src/format/lakefile.cc" "src/CMakeFiles/streamlake.dir/format/lakefile.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/format/lakefile.cc.o.d"
  "/root/repo/src/format/row_codec.cc" "src/CMakeFiles/streamlake.dir/format/row_codec.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/format/row_codec.cc.o.d"
  "/root/repo/src/format/schema.cc" "src/CMakeFiles/streamlake.dir/format/schema.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/format/schema.cc.o.d"
  "/root/repo/src/format/types.cc" "src/CMakeFiles/streamlake.dir/format/types.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/format/types.cc.o.d"
  "/root/repo/src/kv/kv_store.cc" "src/CMakeFiles/streamlake.dir/kv/kv_store.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/kv/kv_store.cc.o.d"
  "/root/repo/src/kv/write_batch.cc" "src/CMakeFiles/streamlake.dir/kv/write_batch.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/kv/write_batch.cc.o.d"
  "/root/repo/src/lakebrain/compaction.cc" "src/CMakeFiles/streamlake.dir/lakebrain/compaction.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/lakebrain/compaction.cc.o.d"
  "/root/repo/src/lakebrain/dqn.cc" "src/CMakeFiles/streamlake.dir/lakebrain/dqn.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/lakebrain/dqn.cc.o.d"
  "/root/repo/src/lakebrain/mlp.cc" "src/CMakeFiles/streamlake.dir/lakebrain/mlp.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/lakebrain/mlp.cc.o.d"
  "/root/repo/src/lakebrain/partition_advisor.cc" "src/CMakeFiles/streamlake.dir/lakebrain/partition_advisor.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/lakebrain/partition_advisor.cc.o.d"
  "/root/repo/src/lakebrain/qdtree.cc" "src/CMakeFiles/streamlake.dir/lakebrain/qdtree.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/lakebrain/qdtree.cc.o.d"
  "/root/repo/src/lakebrain/spn.cc" "src/CMakeFiles/streamlake.dir/lakebrain/spn.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/lakebrain/spn.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/CMakeFiles/streamlake.dir/query/executor.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/query/executor.cc.o.d"
  "/root/repo/src/query/predicate.cc" "src/CMakeFiles/streamlake.dir/query/predicate.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/query/predicate.cc.o.d"
  "/root/repo/src/query/sql_parser.cc" "src/CMakeFiles/streamlake.dir/query/sql_parser.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/query/sql_parser.cc.o.d"
  "/root/repo/src/sim/device_model.cc" "src/CMakeFiles/streamlake.dir/sim/device_model.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/sim/device_model.cc.o.d"
  "/root/repo/src/sim/network_model.cc" "src/CMakeFiles/streamlake.dir/sim/network_model.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/sim/network_model.cc.o.d"
  "/root/repo/src/sql/engine.cc" "src/CMakeFiles/streamlake.dir/sql/engine.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/sql/engine.cc.o.d"
  "/root/repo/src/storage/block_device.cc" "src/CMakeFiles/streamlake.dir/storage/block_device.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/storage/block_device.cc.o.d"
  "/root/repo/src/storage/erasure_coding.cc" "src/CMakeFiles/streamlake.dir/storage/erasure_coding.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/storage/erasure_coding.cc.o.d"
  "/root/repo/src/storage/gf256.cc" "src/CMakeFiles/streamlake.dir/storage/gf256.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/storage/gf256.cc.o.d"
  "/root/repo/src/storage/object_store.cc" "src/CMakeFiles/streamlake.dir/storage/object_store.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/storage/object_store.cc.o.d"
  "/root/repo/src/storage/plog.cc" "src/CMakeFiles/streamlake.dir/storage/plog.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/storage/plog.cc.o.d"
  "/root/repo/src/storage/plog_store.cc" "src/CMakeFiles/streamlake.dir/storage/plog_store.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/storage/plog_store.cc.o.d"
  "/root/repo/src/storage/repair.cc" "src/CMakeFiles/streamlake.dir/storage/repair.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/storage/repair.cc.o.d"
  "/root/repo/src/storage/replication.cc" "src/CMakeFiles/streamlake.dir/storage/replication.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/storage/replication.cc.o.d"
  "/root/repo/src/storage/storage_pool.cc" "src/CMakeFiles/streamlake.dir/storage/storage_pool.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/storage/storage_pool.cc.o.d"
  "/root/repo/src/storage/tiering.cc" "src/CMakeFiles/streamlake.dir/storage/tiering.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/storage/tiering.cc.o.d"
  "/root/repo/src/stream/stream_c_api.cc" "src/CMakeFiles/streamlake.dir/stream/stream_c_api.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/stream/stream_c_api.cc.o.d"
  "/root/repo/src/stream/stream_object.cc" "src/CMakeFiles/streamlake.dir/stream/stream_object.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/stream/stream_object.cc.o.d"
  "/root/repo/src/stream/stream_record.cc" "src/CMakeFiles/streamlake.dir/stream/stream_record.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/stream/stream_record.cc.o.d"
  "/root/repo/src/streaming/archive.cc" "src/CMakeFiles/streamlake.dir/streaming/archive.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/streaming/archive.cc.o.d"
  "/root/repo/src/streaming/consumer.cc" "src/CMakeFiles/streamlake.dir/streaming/consumer.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/streaming/consumer.cc.o.d"
  "/root/repo/src/streaming/dispatcher.cc" "src/CMakeFiles/streamlake.dir/streaming/dispatcher.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/streaming/dispatcher.cc.o.d"
  "/root/repo/src/streaming/producer.cc" "src/CMakeFiles/streamlake.dir/streaming/producer.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/streaming/producer.cc.o.d"
  "/root/repo/src/streaming/stream_worker.cc" "src/CMakeFiles/streamlake.dir/streaming/stream_worker.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/streaming/stream_worker.cc.o.d"
  "/root/repo/src/streaming/topic_config.cc" "src/CMakeFiles/streamlake.dir/streaming/topic_config.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/streaming/topic_config.cc.o.d"
  "/root/repo/src/streaming/txn_manager.cc" "src/CMakeFiles/streamlake.dir/streaming/txn_manager.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/streaming/txn_manager.cc.o.d"
  "/root/repo/src/table/lakehouse.cc" "src/CMakeFiles/streamlake.dir/table/lakehouse.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/table/lakehouse.cc.o.d"
  "/root/repo/src/table/metadata.cc" "src/CMakeFiles/streamlake.dir/table/metadata.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/table/metadata.cc.o.d"
  "/root/repo/src/table/metadata_store.cc" "src/CMakeFiles/streamlake.dir/table/metadata_store.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/table/metadata_store.cc.o.d"
  "/root/repo/src/table/table.cc" "src/CMakeFiles/streamlake.dir/table/table.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/table/table.cc.o.d"
  "/root/repo/src/workload/dpi_log.cc" "src/CMakeFiles/streamlake.dir/workload/dpi_log.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/workload/dpi_log.cc.o.d"
  "/root/repo/src/workload/openmessaging.cc" "src/CMakeFiles/streamlake.dir/workload/openmessaging.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/workload/openmessaging.cc.o.d"
  "/root/repo/src/workload/tpch.cc" "src/CMakeFiles/streamlake.dir/workload/tpch.cc.o" "gcc" "src/CMakeFiles/streamlake.dir/workload/tpch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
