file(REMOVE_RECURSE
  "libstreamlake.a"
)
