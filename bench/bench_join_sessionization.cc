// Join sessionization: DPI logs joined with a user dimension through the
// plan-tree query path, over a stalled-I/O store with 1/2/4/8 query
// threads.
//
// The query is the paper's Fig. 13 shape extended with a dimension join:
//   SELECT u.tier, COUNT(*) AS sessions, SUM(l.bytes) AS bytes
//   FROM logs l JOIN users u ON l.user_id = u.user_id
//   WHERE l.start_time BETWEEN ... GROUP BY u.tier ORDER BY u.tier
// Both the probe scan (logs) and the build scan (users) fan out over the
// shared scan pool, so the per-file device dwells overlap and aggregate
// throughput scales with the thread count even on one core (the threads
// sleep, not compute, in parallel).
//
// Gated metrics: `speedup_8t` is a wall-clock ratio (8-thread / 1-thread
// aggregate throughput) — dimensionless and machine-stable, the
// documented exception to the no-wall-clock-gates rule, with a loose 50%
// tolerance. `rows_scanned` / `rows_matched` / `build_rows` /
// `probe_rows` are deterministic completeness checks (exact), and
// `join_identical` (== 1) asserts a parallel run's full result set is
// byte-identical to a serial, cache-less run's.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "common/metrics.h"
#include "common/threadpool.h"
#include "query/sql_parser.h"
#include "table/block_cache.h"
#include "table/lakehouse.h"

using namespace streamlake;

namespace {

constexpr int kQueriesPerThread = 8;
constexpr int kProvinces = 4;
constexpr int kRowsPerProvince = 1024;  // 4 files of 256 rows each
constexpr int kUsers = 64;
constexpr auto kReadDwell = std::chrono::microseconds(200);

constexpr const char* kSessionizationSql =
    "SELECT u.tier, COUNT(*) AS sessions, SUM(l.bytes) AS bytes "
    "FROM logs l JOIN users u ON l.user_id = u.user_id "
    "WHERE l.start_time BETWEEN 1100 AND 1800 "
    "GROUP BY u.tier ORDER BY u.tier";

format::Schema LogsSchema() {
  return format::Schema{{"url", format::DataType::kString},
                        {"start_time", format::DataType::kInt64},
                        {"province", format::DataType::kString},
                        {"user_id", format::DataType::kInt64},
                        {"bytes", format::DataType::kInt64}};
}

format::Schema UsersSchema() {
  return format::Schema{{"user_id", format::DataType::kInt64},
                        {"name", format::DataType::kString},
                        {"tier", format::DataType::kString}};
}

// A lakehouse with the fact and dimension tables over a PLog store whose
// reads stall, a scan pool of `scan_threads` workers (0 = serial) and an
// optional block cache.
struct JoinFixture {
  sim::SimClock clock;
  storage::StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
  sim::NetworkModel compute_link{sim::NetworkProfile::Rdma(), &clock};
  kv::KvStore object_index;
  kv::KvStore meta_cache;
  std::unique_ptr<ThreadPool> scan_pool;
  std::unique_ptr<table::DecodedBlockCache> cache;
  std::unique_ptr<storage::PlogStore> plogs;
  std::unique_ptr<storage::ObjectStore> objects;
  std::unique_ptr<table::MetadataStore> meta;
  std::unique_ptr<table::LakehouseService> lakehouse;

  JoinFixture(int scan_threads, uint64_t cache_bytes) {
    pool.AddCluster(3, 2, 512 << 20);
    storage::PlogStoreConfig config;
    config.num_shards = 64;
    config.num_stripes = 64;
    config.plog.capacity = 32 << 20;
    config.plog.stripe_unit = 4096;
    config.plog.redundancy = storage::RedundancyConfig::Replication(3);
    config.io_read_delay_hook = [](uint32_t) {
      std::this_thread::sleep_for(kReadDwell);
    };
    if (scan_threads > 0) {
      scan_pool = std::make_unique<ThreadPool>(scan_threads, "bench.scan");
    }
    if (cache_bytes > 0) {
      cache = std::make_unique<table::DecodedBlockCache>(cache_bytes);
    }
    plogs = std::make_unique<storage::PlogStore>(&pool, config, &clock);
    objects = std::make_unique<storage::ObjectStore>(plogs.get(),
                                                     &object_index);
    meta = std::make_unique<table::MetadataStore>(
        objects.get(), &meta_cache, table::MetadataMode::kAccelerated);
    table::TableOptions options;
    options.max_rows_per_file = 256;
    options.file_options.rows_per_group = 128;
    lakehouse = std::make_unique<table::LakehouseService>(
        meta.get(), objects.get(), &clock, &compute_link, options,
        scan_pool.get(), cache.get());

    auto logs = lakehouse->CreateTable(
        "logs", LogsSchema(), table::PartitionSpec::Identity("province"));
    SL_CHECK_OK(logs.status());
    std::vector<format::Row> rows;
    rows.reserve(kProvinces * kRowsPerProvince);
    for (int p = 0; p < kProvinces; ++p) {
      for (int i = 0; i < kRowsPerProvince; ++i) {
        format::Row row;
        row.fields = {format::Value("http://site/" + std::to_string(i % 7)),
                      format::Value(int64_t{1000} + i),
                      format::Value("prov-" + std::to_string(p)),
                      format::Value(int64_t{i % kUsers}),
                      format::Value(int64_t{64} + i % 100)};
        rows.push_back(std::move(row));
      }
    }
    SL_CHECK_OK((*logs)->Insert(rows));

    auto users = lakehouse->CreateTable("users", UsersSchema(),
                                        table::PartitionSpec::None());
    SL_CHECK_OK(users.status());
    rows.clear();
    for (int u = 0; u < kUsers; ++u) {
      format::Row row;
      row.fields = {format::Value(int64_t{u}),
                    format::Value("user-" + std::to_string(u)),
                    format::Value(u % 3 == 0   ? std::string("gold")
                                  : u % 3 == 1 ? std::string("silver")
                                               : std::string("bronze"))};
      rows.push_back(std::move(row));
    }
    SL_CHECK_OK((*users)->Insert(rows));
  }

  query::QueryResult Run(const query::SqlStatement& statement) {
    auto result = lakehouse->Query(statement);
    SL_CHECK_OK(result.status());
    return *result;
  }
};

// Aggregate join queries/sec with `threads` query threads over a fixture
// whose scan pool has `threads` workers and no cache (every query
// re-scans both sides).
double RunOnePoint(int threads, const query::SqlStatement& statement,
                   std::atomic<uint64_t>* rows_scanned) {
  JoinFixture f(threads, /*cache_bytes=*/0);
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> queriers;
  queriers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    queriers.emplace_back([&f, &statement, rows_scanned] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        query::QueryResult result = f.Run(statement);
        rows_scanned->fetch_add(result.rows_scanned,
                                std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : queriers) t.join();
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return threads * kQueriesPerThread / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("join_sessionization", &argc, argv);
  auto parsed = query::ParseSql(kSessionizationSql);
  SL_CHECK_OK(parsed.status());

  std::printf("Join sessionization: logs (%d rows, %d files) JOIN users "
              "(%d rows), %d queries/thread, %lldus device dwell/read\n\n",
              kProvinces * kRowsPerProvince,
              kProvinces * kRowsPerProvince / 256, kUsers, kQueriesPerThread,
              static_cast<long long>(kReadDwell.count()));
  std::printf("%8s | %16s | %8s\n", "threads", "queries/sec", "speedup");

  std::atomic<uint64_t> rows_scanned_total{0};
  double base = 0;
  double last = 0;
  for (int threads : {1, 2, 4, 8}) {
    double tput = RunOnePoint(threads, *parsed, &rows_scanned_total);
    if (threads == 1) base = tput;
    last = tput;
    std::printf("%8d | %16.1f | %7.2fx\n", threads, tput, tput / base);
    report.Add("t" + std::to_string(threads) + ".queries_per_sec", tput);
  }
  report.Add("speedup_8t", last / base);

  // Determinism section: a parallel, cached run must return the same
  // bytes as a serial, cache-less run — twice (cold + warm).
  JoinFixture serial(/*scan_threads=*/0, /*cache_bytes=*/0);
  JoinFixture parallel(/*scan_threads=*/8, /*cache_bytes=*/64ULL << 20);
  Counter* build_rows =
      MetricsRegistry::Global().GetCounter("query.join.build_rows");
  Counter* probe_rows =
      MetricsRegistry::Global().GetCounter("query.join.probe_rows");
  uint64_t build_before = build_rows->Value();
  uint64_t probe_before = probe_rows->Value();
  query::QueryResult expect = serial.Run(*parsed);
  uint64_t one_build = build_rows->Value() - build_before;
  uint64_t one_probe = probe_rows->Value() - probe_before;
  bool identical = true;
  for (int round = 0; round < 2; ++round) {
    query::QueryResult got = parallel.Run(*parsed);
    identical = identical && got.rows == expect.rows &&
                got.column_names == expect.column_names &&
                got.rows_scanned == expect.rows_scanned &&
                got.rows_matched == expect.rows_matched;
  }
  std::printf("\nper query: %llu rows scanned, %llu matched, "
              "%llu build rows, %llu probe rows, identical=%d\n",
              static_cast<unsigned long long>(expect.rows_scanned),
              static_cast<unsigned long long>(expect.rows_matched),
              static_cast<unsigned long long>(one_build),
              static_cast<unsigned long long>(one_probe), identical);
  report.Add("join_identical", identical ? 1.0 : 0.0);
  report.Add("rows_scanned", static_cast<double>(expect.rows_scanned));
  report.Add("rows_matched", static_cast<double>(expect.rows_matched));
  report.Add("build_rows", static_cast<double>(one_build));
  report.Add("probe_rows", static_cast<double>(one_probe));
  return report.WriteIfRequested() ? 0 : 1;
}
