// Late-materialization columnar scan: decode cost of a selective
// 2-of-16-column query vs decoding everything.
//
// The table is 16 columns wide: a dictionary-encoded `tag`, an int64 `ts`,
// and 14 wide string payload columns the query never touches. Row groups
// alternate their tag content — even groups hold {"t-1","t-5"}, odd groups
// hold {"t-3"} — so the probe literal "t-3" sits inside every group's
// [min, max] (stats cannot prune) but is absent from every even group's
// dictionary: the scan must discover that in code space, without decoding
// a single payload column.
//
// All metrics are deterministic (fixed data, serial scan, simulated
// clock), so the CI baseline gates them at zero tolerance:
//   * bytes_decoded / columns_decoded / rows_materialized /
//     dict_code_prunes of the selective query,
//   * decode_ratio = selective bytes_decoded / decode-all bytes_decoded
//     (the late-materialization headline: must stay well under 0.2),
//   * warm_bytes_read == 0 and warm_bytes_decoded == 0 (a repeat query
//     through the per-column block cache touches neither storage nor the
//     decoder), and
//   * identical == 1 (cached and uncached runs agree byte-for-byte).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_report.h"
#include "table/block_cache.h"
#include "table/lakehouse.h"

using namespace streamlake;

namespace {

constexpr size_t kPayloadColumns = 14;
constexpr size_t kRows = 4096;
constexpr size_t kRowsPerGroup = 128;

format::Schema WideSchema() {
  std::vector<format::Field> fields = {{"tag", format::DataType::kString},
                                       {"ts", format::DataType::kInt64}};
  for (size_t c = 0; c < kPayloadColumns; ++c) {
    fields.push_back({"p" + std::to_string(c), format::DataType::kString});
  }
  return format::Schema{fields};
}

struct Fixture {
  sim::SimClock clock;
  storage::StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
  sim::NetworkModel compute_link{sim::NetworkProfile::Rdma(), &clock};
  kv::KvStore object_index;
  kv::KvStore meta_cache;
  std::unique_ptr<table::DecodedBlockCache> cache;
  std::unique_ptr<storage::PlogStore> plogs;
  std::unique_ptr<storage::ObjectStore> objects;
  std::unique_ptr<table::MetadataStore> meta;
  std::unique_ptr<table::LakehouseService> lakehouse;
  table::Table* table = nullptr;

  explicit Fixture(uint64_t cache_bytes) {
    pool.AddCluster(3, 2, 512 << 20);
    storage::PlogStoreConfig config;
    config.num_shards = 16;
    config.plog.capacity = 64 << 20;
    config.plog.stripe_unit = 4096;
    config.plog.redundancy = storage::RedundancyConfig::Replication(3);
    plogs = std::make_unique<storage::PlogStore>(&pool, config, &clock);
    objects = std::make_unique<storage::ObjectStore>(plogs.get(),
                                                     &object_index);
    meta = std::make_unique<table::MetadataStore>(
        objects.get(), &meta_cache, table::MetadataMode::kAccelerated);
    if (cache_bytes > 0) {
      cache = std::make_unique<table::DecodedBlockCache>(cache_bytes);
    }
    table::TableOptions options;
    options.max_rows_per_file = 512;  // 8 files x 4 row groups
    options.file_options.rows_per_group = kRowsPerGroup;
    lakehouse = std::make_unique<table::LakehouseService>(
        meta.get(), objects.get(), &clock, &compute_link, options,
        /*scan_pool=*/nullptr, cache.get());
    auto created = lakehouse->CreateTable("wide", WideSchema(),
                                          table::PartitionSpec::None());
    SL_CHECK_OK(created.status());
    table = *created;

    std::vector<format::Row> rows;
    rows.reserve(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      bool even_group = (i / kRowsPerGroup) % 2 == 0;
      format::Row row;
      row.fields.reserve(2 + kPayloadColumns);
      // Even groups: 2-entry dictionary {t-1, t-5}; odd groups: {t-3}.
      row.fields.push_back(format::Value(
          even_group ? (i % 2 ? std::string("t-1") : std::string("t-5"))
                     : std::string("t-3")));
      row.fields.push_back(format::Value(static_cast<int64_t>(i)));
      for (size_t c = 0; c < kPayloadColumns; ++c) {
        // Wide, high-NDV payload: plain-encoded, expensive to decode.
        row.fields.push_back(format::Value("payload-" + std::to_string(c) +
                                           "-" + std::to_string(i) +
                                           std::string(24, 'x')));
      }
      rows.push_back(std::move(row));
    }
    SL_CHECK_OK(table->Insert(rows));
  }
};

query::QuerySpec SelectiveSpec() {
  query::QuerySpec spec;  // 2 of 16 columns: tag (predicate) + ts (output)
  spec.where.Add(
      query::Predicate::Eq("tag", format::Value(std::string("t-3"))));
  spec.projection = {"ts"};
  spec.order_by = "ts";
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("columnar_scan", &argc, argv);
  std::printf("Late-materialization scan: %zu rows x %zu columns, "
              "SELECT ts WHERE tag = 't-3' (2 columns touched)\n\n",
              kRows, 2 + kPayloadColumns);

  // Uncached fixture: the decode-all baseline, then the selective scan.
  Fixture plain(/*cache_bytes=*/0);
  table::SelectMetrics all_m, sel_m;
  query::QuerySpec star;  // SELECT *: decodes every chunk
  auto all = plain.table->Select(star, {}, &all_m);
  SL_CHECK_OK(all.status());
  auto sel = plain.table->Select(SelectiveSpec(), {}, &sel_m);
  SL_CHECK_OK(sel.status());

  double ratio = all_m.bytes_decoded > 0
                     ? static_cast<double>(sel_m.bytes_decoded) /
                           static_cast<double>(all_m.bytes_decoded)
                     : 1.0;
  std::printf("%-24s | %12s | %12s\n", "", "decode-all", "selective");
  std::printf("%-24s | %12llu | %12llu\n", "bytes_decoded",
              static_cast<unsigned long long>(all_m.bytes_decoded),
              static_cast<unsigned long long>(sel_m.bytes_decoded));
  std::printf("%-24s | %12llu | %12llu\n", "columns_decoded",
              static_cast<unsigned long long>(all_m.columns_decoded),
              static_cast<unsigned long long>(sel_m.columns_decoded));
  std::printf("%-24s | %12llu | %12llu\n", "rows_materialized",
              static_cast<unsigned long long>(all_m.rows_materialized),
              static_cast<unsigned long long>(sel_m.rows_materialized));
  std::printf("%-24s | %12s | %12llu\n", "dict_code_prunes", "-",
              static_cast<unsigned long long>(sel_m.dict_code_prunes));
  std::printf("\ndecode_ratio = %.4f (late materialization target: < 0.2)\n",
              ratio);

  // Cached fixture: cold populates the per-column cache, warm must touch
  // neither storage nor the decoder, and results stay byte-identical.
  Fixture cached(/*cache_bytes=*/64ULL << 20);
  table::SelectMetrics cold_m, warm_m;
  auto cold = cached.table->Select(SelectiveSpec(), {}, &cold_m);
  SL_CHECK_OK(cold.status());
  auto warm = cached.table->Select(SelectiveSpec(), {}, &warm_m);
  SL_CHECK_OK(warm.status());
  bool identical = cold->rows == sel->rows && warm->rows == sel->rows &&
                   cold->column_names == sel->column_names;
  std::printf("warm repeat: bytes_read=%llu bytes_decoded=%llu "
              "identical=%d\n",
              static_cast<unsigned long long>(warm_m.data_bytes_read),
              static_cast<unsigned long long>(warm_m.bytes_decoded),
              identical);

  report.Add("bytes_decoded", static_cast<double>(sel_m.bytes_decoded));
  report.Add("columns_decoded", static_cast<double>(sel_m.columns_decoded));
  report.Add("rows_materialized",
             static_cast<double>(sel_m.rows_materialized));
  report.Add("dict_code_prunes", static_cast<double>(sel_m.dict_code_prunes));
  report.Add("decode_all_bytes", static_cast<double>(all_m.bytes_decoded));
  report.Add("decode_ratio", ratio);
  report.Add("warm_bytes_read", static_cast<double>(warm_m.data_bytes_read));
  report.Add("warm_bytes_decoded", static_cast<double>(warm_m.bytes_decoded));
  report.Add("identical", identical ? 1.0 : 0.0);
  return report.WriteIfRequested() ? 0 : 1;
}
