// Reproduces Fig. 14(b): achieved throughput vs offered rate, Set-1 vs
// Set-2. "As the messages to process increase from 50000 per second to
// 1.5 million per second, the system throughput increases linearly. Set-1
// and Set-2 achieve almost the same throughputs, indicating that it does
// not improve the throughput to add persistent memory as a cache."
//
// Throughput is produce-path capacity: achieved = min(offered, capacity),
// where capacity comes from the measured simulated service time of the
// append path (the PMEM cache only accelerates reads, so both sets
// saturate at the same point).

#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "core/streamlake.h"

using namespace streamlake;

namespace {

double MeasureProduceServiceNs(bool with_pmem) {
  core::StreamLakeOptions options;
  options.with_pmem_cache = with_pmem;
  core::StreamLake lake(options);
  stream::StreamObjectOptions object_options;
  object_options.use_scm_cache = with_pmem;
  uint64_t id = *lake.stream_objects().CreateObject(object_options);
  auto* object = lake.stream_objects().GetObject(id);

  constexpr int kProbe = 8192;
  uint64_t t0 = lake.clock().NowNanos();
  for (int i = 0; i < kProbe; ++i) {
    lake.data_bus().ChargeTransfer(1024);
    std::vector<stream::StreamRecord> batch(1);
    batch[0].key = "k";
    batch[0].value = Bytes(1024, 'm');
    SL_CHECK_OK(object->Append(std::move(batch)));
  }
  SL_CHECK_OK(object->Flush());
  return static_cast<double>(lake.clock().NowNanos() - t0) / kProbe;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("fig14_throughput", &argc, argv);
  double set1_service = MeasureProduceServiceNs(false);
  double set2_service = MeasureProduceServiceNs(true);
  // The stream service spreads load across workers/streams; the testbed
  // has 3 nodes x 10 cores. Model the cluster as 8 concurrent stream
  // pipelines (matches bench_fig14_latency).
  constexpr double kParallelism = 8.0;
  double cap1 = kParallelism * 1e9 / set1_service;
  double cap2 = kParallelism * 1e9 / set2_service;

  std::printf("Fig. 14(b): throughput vs offered rate (1 KB messages)\n\n");
  std::printf("capacity: Set-1 %.0f msg/s, Set-2 %.0f msg/s (ratio %.3f)\n\n",
              cap1, cap2, cap2 / cap1);
  std::printf("%14s %18s %18s\n", "offered (msg/s)", "Set-1 (msg/s)",
              "Set-2 (msg/s)");
  std::vector<double> rates = {50e3,  100e3, 200e3, 400e3,
                               800e3, 1.2e6, 1.5e6};
  for (double rate : rates) {
    std::printf("%14.0f %18.0f %18.0f\n", rate, std::min(rate, cap1),
                std::min(rate, cap2));
  }
  report.Add("set1.service_ns", set1_service);
  report.Add("set2.service_ns", set2_service);
  report.Add("set1.capacity_msg_per_sec", cap1);
  report.Add("set2.capacity_msg_per_sec", cap2);
  report.Add("capacity_ratio", cap2 / cap1);
  return report.WriteIfRequested() ? 0 : 1;
}
