// Reproduces Fig. 16(a) and the block-utilization claim of Section VII-E:
// a TPC-H-based ingestion test bed where a compaction strategy runs while
// data streams into the lake, comparing
//   * None               — never compact (the baseline queries run against),
//   * Default-compaction — the static 30-second-interval strategy,
//   * Auto-compaction    — LakeBrain's DQN agent (trained first, like the
//                          paper's 3.5 h / 5000-query training phase).
// Reported per data volume: query-performance improvement over the
// no-compaction baseline. A second sweep varies ingestion speed and
// reports average block utilization ("approximately 50% higher ... on
// average during system operation").

#include <cstdio>
#include <set>
#include <vector>

#include "core/streamlake.h"
#include "lakebrain/compaction.h"
#include "workload/tpch.h"

using namespace streamlake;

namespace {

constexpr uint64_t kBlockSize = 64 << 10;
constexpr uint64_t kTargetFileBytes = 512 << 10;
constexpr int kIngestBatchRows = 120;
// Rows arrive with shipdates inside one month so the day-partitioned
// table has a bounded set of hot partitions.
constexpr int64_t kWindowStart = workload::TpchLineitemGenerator::kShipDateMin;

// Streaming ingestion is time-ordered: most records of a batch land in
// the current ("hot") day partition, late records in the previous
// ("warm") day. Cold partitions can be compacted without racing
// ingestion; compacting hot/warm ones conflicts.
format::Row ClampToWindow(format::Row row, int hot_day, Random* rng) {
  int day = rng->OneIn(10) ? (hot_day + 29) % 30 : hot_day;
  row.fields[5] = format::Value(kWindowStart +
                                static_cast<int64_t>(day) * 86400);
  return row;
}

enum class Strategy { kNone, kDefault, kAuto };

struct EnvResult {
  double avg_query_ms = 0;
  double avg_utilization = 0;
  uint64_t compactions = 0;
  uint64_t conflicts = 0;
};

EnvResult RunEnvironment(Strategy strategy, uint64_t total_rows,
                         double rows_per_sec,
                         lakebrain::AutoCompactionAgent* agent,
                         uint64_t seed, int decision_every = 5) {
  core::StreamLakeOptions lake_options;
  lake_options.ssd_capacity_per_disk = 8ULL << 30;
  lake_options.table_options.target_file_bytes = kTargetFileBytes;
  core::StreamLake lake(lake_options);
  auto created = lake.lakehouse().CreateTable(
      "lineitem", workload::TpchLineitemGenerator::Schema(),
      table::PartitionSpec::Day("l_shipdate"));
  if (!created.ok()) std::exit(1);
  table::Table* table = *created;
  lakebrain::DefaultCompactor default_compactor(table, 30.0);

  workload::TpchOptions gen_options;
  gen_options.seed = seed;
  workload::TpchLineitemGenerator gen(gen_options);
  workload::TpchQueryGenerator queries(seed * 31 + 7);
  Random rng(seed);

  EnvResult result;
  uint64_t ingested = 0;
  uint64_t query_count = 0;
  uint64_t util_samples = 0;
  uint64_t batch_index = 0;
  double total_query_ns = 0;
  double next_query_at = 5.0;  // simulated seconds

  while (ingested < total_rows) {
    // Ingest one batch and advance simulated time at the ingestion rate.
    // The hot day advances every 20 batches (time-ordered arrival).
    int hot_day = static_cast<int>(ingested / (kIngestBatchRows * 20)) % 30;
    std::string hot_partition =
        "day=" + std::to_string((kWindowStart + hot_day * 86400) / 86400);
    std::vector<format::Row> batch;
    for (int i = 0; i < kIngestBatchRows; ++i) {
      batch.push_back(ClampToWindow(gen.NextRow(), hot_day, &rng));
    }
    uint64_t plan_snapshot = (*table->Info()).current_snapshot_id;
    if (!table->Insert(batch).ok()) std::exit(1);
    ingested += batch.size();
    lake.clock().AdvanceTo(lake.clock().NowNanos() +
                           static_cast<uint64_t>(kIngestBatchRows /
                                                 rows_per_sec * 1e9));

    // Strategy acts. Both strategies plan against the pre-ingest
    // snapshot: ingestion racing into the same partition conflicts, as
    // in production. The auto agent evaluates every few batches; the
    // default strategy ticks on its 30-second interval.
    ++batch_index;
    if (strategy == Strategy::kDefault) {
      auto run = default_compactor.MaybeRun(lake.clock().NowSeconds(),
                                            plan_snapshot);
      if (run.ok()) {
        result.compactions += run->partitions_compacted;
        result.conflicts += run->conflicts;
      }
    } else if (strategy == Strategy::kAuto &&
               batch_index % decision_every == 0) {
      auto files = *table->LiveFiles();
      std::set<std::string> partitions;
      for (const auto& f : files) partitions.insert(f.partition);
      lakebrain::GlobalFeatures global;
      global.target_file_bytes = kTargetFileBytes;
      global.ingestion_files_per_sec = rows_per_sec / kIngestBatchRows;
      global.concurrent_queries = 1;
      std::string warm_partition =
          "day=" + std::to_string(
                       (kWindowStart + ((hot_day + 29) % 30) * 86400) / 86400);
      for (const std::string& partition : partitions) {
        double access = partition == hot_partition ? 1.0
                        : partition == warm_partition ? 0.5
                                                      : 0.05;
        auto decision =
            agent->Step(table, partition, global, access, plan_snapshot);
        if (!decision.ok()) std::exit(1);
        if (decision->succeeded) ++result.compactions;
        if (decision->conflicted) ++result.conflicts;
      }
    }

    // Utilization sampled continuously "during system operation".
    {
      std::vector<uint64_t> sizes;
      // Materialize before iterating: a range-for over *temporary-Result
      // dangles (the Result dies before the loop body runs).
      auto live = table->LiveFiles();
      SL_CHECK_OK(live);
      for (const auto& f : *live) sizes.push_back(f.file_bytes);
      result.avg_utilization += lakebrain::BlockUtilization(sizes, kBlockSize);
      ++util_samples;
    }
    // Periodic analytics over the growing table.
    if (lake.clock().NowSeconds() >= next_query_at) {
      next_query_at += 5.0;
      query::QuerySpec spec = queries.NextQuery();
      table::SelectMetrics metrics;
      auto r = table->Select(spec, {}, &metrics);
      if (r.ok()) {
        total_query_ns += metrics.elapsed_ns;
        ++query_count;
      }
    }
  }
  if (query_count > 0) result.avg_query_ms = total_query_ns / query_count / 1e6;
  if (util_samples > 0) result.avg_utilization /= util_samples;
  return result;
}

}  // namespace

int main() {
  // ---- Train the RL agent (the paper's 3.5 h training phase) ----
  lakebrain::AutoCompactionAgent::Options agent_options;
  agent_options.block_size = kBlockSize;
  agent_options.training = true;
  agent_options.dqn.epsilon_decay_steps = 3000;
  lakebrain::AutoCompactionAgent agent(agent_options);
  std::printf("training the auto-compaction DQN");
  std::fflush(stdout);
  for (int episode = 0; episode < 6; ++episode) {
    RunEnvironment(Strategy::kAuto, 24000,
                   /*rows_per_sec=*/150 * (episode + 1), &agent,
                   /*seed=*/100 + episode, /*decision_every=*/1);
    std::printf(".");
    std::fflush(stdout);
  }
  agent.set_training(false);
  std::printf(" done (%llu transitions)\n\n",
              static_cast<unsigned long long>(agent.agent().replay_size()));

  // ---- Fig. 16(a): query improvement vs data volume ----
  std::printf("Fig. 16(a): query performance improvement over the "
              "no-compaction baseline\n");
  std::printf("(data volumes 24..90 GB scaled to rows)\n\n");
  std::printf("%12s %14s %16s %16s %12s\n", "rows", "none (ms)",
              "default (+%)", "auto (+%)", "auto wins");
  for (uint64_t rows : {8000, 16000, 24000, 32000}) {
    EnvResult none = RunEnvironment(Strategy::kNone, rows, 400, nullptr, 7);
    EnvResult def = RunEnvironment(Strategy::kDefault, rows, 400, nullptr, 7);
    EnvResult autoc = RunEnvironment(Strategy::kAuto, rows, 400, &agent, 7);
    double def_gain = 100.0 * (none.avg_query_ms - def.avg_query_ms) /
                      none.avg_query_ms;
    double auto_gain = 100.0 * (none.avg_query_ms - autoc.avg_query_ms) /
                       none.avg_query_ms;
    std::printf("%12llu %14.2f %15.1f%% %15.1f%% %12s\n",
                static_cast<unsigned long long>(rows), none.avg_query_ms,
                def_gain, auto_gain, auto_gain >= def_gain ? "yes" : "no");
  }

  // ---- Block utilization vs ingestion speed ----
  std::printf("\nBlock utilization vs ingestion speed (auto vs default)\n\n");
  std::printf("%16s %12s %12s %14s %18s\n", "rows/sec", "default", "auto",
              "auto/default", "auto conflicts");
  for (double rate : {100.0, 200.0, 400.0, 800.0}) {
    EnvResult def = RunEnvironment(Strategy::kDefault, 16000, rate, nullptr, 9);
    EnvResult autoc = RunEnvironment(Strategy::kAuto, 16000, rate, &agent, 9);
    std::printf("%16.0f %12.3f %12.3f %13.2fx %18llu\n", rate,
                def.avg_utilization, autoc.avg_utilization,
                autoc.avg_utilization / def.avg_utilization,
                static_cast<unsigned long long>(autoc.conflicts));
  }
  return 0;
}
