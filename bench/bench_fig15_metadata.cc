// Reproduces Fig. 15(a): metadata operation time vs number of partitions,
// with and without metadata acceleration.
//
// The paper's production layout puts each hour's files into one partition
// and runs 100 DAU-style queries over 960..9600 partitions (489k..4.4M
// files). We scale partition counts down 10x and create one commit per
// partition (hourly ingestion), then measure the metadata phase of 100
// queries: catalog + snapshot + commits. Without acceleration each commit
// is a small object-store read (linear, steep); with the KV cache the
// lookups stay on SCM ("the lookup cost is constant instead of linear" in
// per-partition terms).

#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "core/streamlake.h"
#include "workload/dpi_log.h"

using namespace streamlake;

namespace {

struct Point {
  uint64_t partitions;
  double metadata_ms;   // avg per query
  uint64_t small_ios;   // object-store metadata reads per query
};

Point RunOnePoint(uint64_t partitions, table::MetadataMode mode) {
  core::StreamLakeOptions options;
  options.metadata_mode = mode;
  options.ssd_capacity_per_disk = 8ULL << 30;
  core::StreamLake lake(options);

  format::Schema schema{{"hour", format::DataType::kInt64},
                        {"url", format::DataType::kString},
                        {"count", format::DataType::kInt64}};
  auto created = lake.lakehouse().CreateTable(
      "hours", schema, table::PartitionSpec::Identity("hour"));
  if (!created.ok()) std::exit(1);
  table::Table* table = *created;

  // Hourly ingestion: one commit per hour-partition.
  for (uint64_t h = 0; h < partitions; ++h) {
    format::Row row;
    row.fields = {format::Value(static_cast<int64_t>(h)),
                  format::Value(std::string("http://app.example.com")),
                  format::Value(int64_t{1})};
    if (!table->Insert({row}).ok()) std::exit(1);
  }
  // The MetaFresher has flushed by query time in steady state.
  SL_CHECK_OK(lake.lakehouse().FlushMetadata());

  // 100 queries "akin to those in Fig. 13, using WHERE clause conditions
  // to utilize metadata for data filtering". Metadata time = the catalog/
  // snapshot/commit phase, isolated by querying an empty hour range (all
  // data files prune away; only metadata is touched).
  constexpr int kQueries = 100;
  uint64_t t0 = lake.clock().NowNanos();
  table::SelectMetrics metrics{};
  uint64_t small_ios = 0;
  for (int q = 0; q < kQueries; ++q) {
    query::QuerySpec spec;
    spec.where.Add(query::Predicate::Ge(
        "hour", format::Value(static_cast<int64_t>(partitions + q))));
    spec.aggregates = {query::AggregateSpec::CountStar()};
    auto result = table->Select(spec, {}, &metrics);
    if (!result.ok()) std::exit(1);
    small_ios += metrics.metadata.small_ios;
  }
  Point point;
  point.partitions = partitions;
  point.metadata_ms = (lake.clock().NowNanos() - t0) / 1e6 / kQueries;
  point.small_ios = small_ios / kQueries;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("fig15_metadata", &argc, argv);
  std::printf("Fig. 15(a): metadata operation time vs partitions "
              "(100 queries, partition counts scaled 1/10)\n\n");
  std::printf("%12s | %20s %12s | %20s %12s\n", "partitions",
              "no-accel (ms/query)", "small I/Os", "accel (ms/query)",
              "small I/Os");
  for (uint64_t partitions : {96, 192, 384, 768, 960}) {
    Point file_based = RunOnePoint(partitions,
                                   table::MetadataMode::kFileBased);
    Point accel = RunOnePoint(partitions, table::MetadataMode::kAccelerated);
    std::printf("%12llu | %20.2f %12llu | %20.2f %12llu\n",
                static_cast<unsigned long long>(partitions),
                file_based.metadata_ms,
                static_cast<unsigned long long>(file_based.small_ios),
                accel.metadata_ms,
                static_cast<unsigned long long>(accel.small_ios));
    std::string p = "p" + std::to_string(partitions);
    report.Add("no_accel." + p + ".metadata_ms", file_based.metadata_ms);
    report.Add("no_accel." + p + ".small_ios",
               static_cast<double>(file_based.small_ios));
    report.Add("accel." + p + ".metadata_ms", accel.metadata_ms);
    report.Add("accel." + p + ".small_ios",
               static_cast<double>(accel.small_ios));
  }
  return report.WriteIfRequested() ? 0 : 1;
}
