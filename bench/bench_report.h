// Machine-readable benchmark output for the CI regression gate.
//
// Each bench main constructs a BenchReport before parsing its own flags,
// Add()s the headline numbers it already prints, and calls
// WriteIfRequested() before exiting. When the binary is invoked with
// --json_out=PATH the report is written there as
//
//   {"bench": "<name>",
//    "metrics": {"<metric>": <value>, ...},
//    "registry": { ...MetricsRegistry JSON snapshot... }}
//
// (conventionally PATH is BENCH_<name>.json). Without the flag nothing is
// written, so interactive runs keep their plain-text output only. The
// constructor strips --json_out from argv so flag parsers downstream
// (e.g. google-benchmark's Initialize in bench_micro) never see it.
// tools/bench_compare.py consumes these files.

#ifndef STREAMLAKE_BENCH_BENCH_REPORT_H_
#define STREAMLAKE_BENCH_BENCH_REPORT_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"

namespace streamlake::bench {

class BenchReport {
 public:
  BenchReport(std::string name, int* argc, char** argv)
      : name_(std::move(name)) {
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      std::string arg = argv[i];
      const std::string prefix = "--json_out=";
      if (arg.rfind(prefix, 0) == 0) {
        path_ = arg.substr(prefix.size());
      } else {
        argv[out++] = argv[i];
      }
    }
    *argc = out;
  }

  void Add(const std::string& metric, double value) {
    metrics_.emplace_back(metric, value);
  }

  /// Returns false only when a requested write failed (missing directory,
  /// permissions); benches treat that as a fatal setup error.
  bool WriteIfRequested() const {
    if (path_.empty()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_report: cannot open %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\"bench\": \"%s\", \"metrics\": {", name_.c_str());
    for (size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "%s\"%s\": %.17g", i == 0 ? "" : ", ",
                   metrics_[i].first.c_str(), metrics_[i].second);
    }
    std::fprintf(f, "}, \"registry\": %s}\n",
                 MetricsRegistry::Global().JsonReport().c_str());
    std::fclose(f);
    return true;
  }

  bool requested() const { return !path_.empty(); }

 private:
  std::string name_;
  std::string path_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace streamlake::bench

#endif  // STREAMLAKE_BENCH_BENCH_REPORT_H_
