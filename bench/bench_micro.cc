// Google-benchmark microbenchmarks of StreamLake's building blocks:
// checksums, compression, encodings, erasure coding, KV, PLog appends,
// stream-object appends, and LakeFile scans. These back the cost-model
// calibration and catch performance regressions in the hot paths.

#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "codec/compression.h"
#include "codec/encoding.h"
#include "common/hash.h"
#include "common/mutex.h"
#include "common/random.h"
#include "format/lakefile.h"
#include "kv/kv_store.h"
#include "storage/erasure_coding.h"
#include "storage/plog_store.h"
#include "stream/stream_object.h"
#include "workload/dpi_log.h"

namespace streamlake {
namespace {

Bytes RandomBytes(size_t n, uint64_t seed = 1) {
  Random rng(seed);
  Bytes out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(rng.Uniform(256));
  }
  return out;
}

void BM_Crc32c(benchmark::State& state) {
  Bytes data = RandomBytes(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(ByteView(data)));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Crc32c)->Arg(1024)->Arg(64 << 10);

void BM_Hash64(benchmark::State& state) {
  Bytes data = RandomBytes(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hash64(ByteView(data)));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Hash64)->Arg(16)->Arg(1024);

void BM_LzCompressLogs(benchmark::State& state) {
  // Log-like repetitive text.
  std::string s;
  while (s.size() < static_cast<size_t>(state.range(0))) {
    s += "ts=1656806400 level=INFO module=dpi msg=packet accepted ";
  }
  Bytes data = ToBytes(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        codec::Compress(codec::Compression::kLz, ByteView(data)));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_LzCompressLogs)->Arg(64 << 10);

void BM_ReedSolomonEncode(benchmark::State& state) {
  storage::ReedSolomon rs(8, static_cast<int>(state.range(0)));
  Bytes data = RandomBytes(256 << 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Encode(ByteView(data)));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_ReedSolomonEncode)->Arg(1)->Arg(2)->Arg(4);

void BM_ReedSolomonDecodeWithLoss(benchmark::State& state) {
  storage::ReedSolomon rs(8, 2);
  Bytes data = RandomBytes(256 << 10);
  std::vector<Bytes> shards = rs.Encode(ByteView(data));
  std::vector<std::optional<Bytes>> in(shards.begin(), shards.end());
  in[0] = std::nullopt;
  in[5] = std::nullopt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Decode(in, data.size()));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_ReedSolomonDecodeWithLoss);

void BM_Int64Encoding(benchmark::State& state) {
  std::vector<int64_t> values;
  for (int i = 0; i < 8192; ++i) values.push_back(1656806400 + i * 3);
  auto encoding = static_cast<codec::Encoding>(state.range(0));
  for (auto _ : state) {
    Bytes out;
    codec::EncodeInt64s(values, encoding, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_Int64Encoding)
    ->Arg(static_cast<int>(codec::Encoding::kPlain))
    ->Arg(static_cast<int>(codec::Encoding::kDelta))
    ->Arg(static_cast<int>(codec::Encoding::kRle));

void BM_KvPut(benchmark::State& state) {
  kv::KvStore store;
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.Put("key-" + std::to_string(i++ % 100000), "value"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KvPut);

void BM_KvGet(benchmark::State& state) {
  kv::KvStore store;
  for (int i = 0; i < 10000; ++i) {
    SL_CHECK_OK(store.Put("key-" + std::to_string(i), "value-" + std::to_string(i)));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Get("key-" + std::to_string(i++ % 10000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KvGet);

struct PlogBench {
  sim::SimClock clock;
  storage::StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
  std::unique_ptr<storage::PlogStore> store;

  explicit PlogBench(storage::RedundancyConfig redundancy) {
    pool.AddCluster(6, 2, 8ULL << 30);
    storage::PlogStoreConfig config;
    config.num_shards = 8;
    config.plog.capacity = 256ULL << 20;
    config.plog.redundancy = redundancy;
    store = std::make_unique<storage::PlogStore>(&pool, config, &clock);
  }
};

void BM_PlogAppendReplication(benchmark::State& state) {
  PlogBench bench(storage::RedundancyConfig::Replication(3));
  Bytes record = RandomBytes(state.range(0));
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.store->Append(i++ % 8, ByteView(record)));
  }
  state.SetBytesProcessed(state.iterations() * record.size());
}
BENCHMARK(BM_PlogAppendReplication)->Arg(1024)->Arg(256 << 10);

void BM_PlogAppendErasureCoded(benchmark::State& state) {
  PlogBench bench(storage::RedundancyConfig::ErasureCoding(4, 2));
  Bytes record = RandomBytes(state.range(0));
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.store->Append(i++ % 8, ByteView(record)));
  }
  state.SetBytesProcessed(state.iterations() * record.size());
}
BENCHMARK(BM_PlogAppendErasureCoded)->Arg(1024)->Arg(256 << 10);

void BM_StreamObjectAppend(benchmark::State& state) {
  PlogBench bench(storage::RedundancyConfig::Replication(3));
  kv::KvStore index;
  stream::StreamObjectManager manager(bench.store.get(), &index, &bench.clock);
  uint64_t id = *manager.CreateObject({});
  stream::StreamObject* object = manager.GetObject(id);
  for (auto _ : state) {
    std::vector<stream::StreamRecord> batch(1);
    batch[0].key = "key";
    batch[0].value = Bytes(1024, 'v');
    benchmark::DoNotOptimize(object->Append(std::move(batch)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamObjectAppend);

void BM_LakeFileWriteScan(benchmark::State& state) {
  workload::DpiLogGenerator gen;
  std::vector<format::Row> rows = gen.NextBatch(4096);
  for (auto _ : state) {
    format::LakeFileWriter writer(workload::DpiLogGenerator::Schema());
    SL_CHECK_OK(writer.AppendBatch(rows));
    auto file = writer.Finish();
    auto reader = format::LakeFileReader::Open(std::move(*file));
    benchmark::DoNotOptimize(reader->ReadAll());
  }
  state.SetItemsProcessed(state.iterations() * rows.size());
}
BENCHMARK(BM_LakeFileWriteScan);

// Uncontended lock/unlock round trip. The interesting comparison is the
// default preset (lock-order checking on) against the release preset
// (checking compiled out): release must match a bare std::mutex, i.e. the
// ranked wrapper costs nothing when the checker is off.
void BM_MutexLockUnlock(benchmark::State& state) {
  Mutex mu{LockRank::kKvStore, "bench.mutex"};
  for (auto _ : state) {
    MutexLock lock(&mu);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutexLockUnlock);

// Nested pair in legal descending order: the checker's worst case (every
// inner acquisition checks the held stack and records a graph edge).
void BM_MutexNestedPair(benchmark::State& state) {
  Mutex outer{LockRank::kLakehouse, "bench.outer"};
  Mutex inner{LockRank::kKvStore, "bench.inner"};
  for (auto _ : state) {
    MutexLock lo(&outer);
    MutexLock li(&inner);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutexNestedPair);

void BM_SharedMutexReadLock(benchmark::State& state) {
  SharedMutex mu{LockRank::kKvStore, "bench.shared"};
  for (auto _ : state) {
    ReaderMutexLock lock(&mu);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedMutexReadLock);

}  // namespace
}  // namespace streamlake

// BENCHMARK_MAIN() expanded by hand so --json_out can be peeled off before
// google-benchmark's flag parser rejects it. The written report carries only
// the registry snapshot (side effect of the KV/PLog/stream benchmarks above);
// wall-clock timings stay in google-benchmark's own --benchmark_format=json
// output, which is machine-noise and deliberately not CI-gated.
int main(int argc, char** argv) {
  streamlake::bench::BenchReport report("micro", &argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return report.WriteIfRequested() ? 0 : 1;
}
