// Cluster-scale admission fairness: 10^5 logical clients, Zipf-skewed
// across 20 tenants, drive an open-loop produce / Select / S3 / convert
// mix through the access layer for 2 simulated seconds, with one tenant's
// clients misbehaving at 100x their fair rate.
//
// Three sections:
//   overload  — per-tenant isolation on, tenant 4 hot at 100x. The claim
//               under test: the hot tenant is clipped to its own quota
//               (sheds most of its flood) while every cold tenant keeps
//               its proportional admitted share (fairness within 2x) and
//               a bounded p99.
//   baseline  — identical traffic, nobody hot: the reference for how much
//               the overload is allowed to move cold-tenant p99
//               (cold_p99_overload_ratio).
//   no_isolation — ablation: per-tenant buckets off, one shared cluster
//               bucket. The hot tenant's flood now drains the shared
//               capacity and cold tenants shed heavily — the contrast
//               that shows isolation, not spare capacity, is what
//               protects them. Reported, not gated.
//
// Admission decisions are a pure function of each tenant's pregenerated
// arrival sequence (open loop, explicit event times, single driver
// thread), so every op counter below is bit-deterministic and gated at
// zero tolerance; latency percentiles ride the simulated clock and get
// the default tolerance.

#include <cstdio>

#include "bench_report.h"
#include "workload/cluster_driver.h"

using namespace streamlake;

namespace {

workload::ClusterConfig TrafficShape() {
  workload::ClusterConfig config;
  config.logical_clients = 100000;
  config.tenants = 20;
  config.tenant_zipf_theta = 0.75;
  config.ops_per_client_per_sec = 0.3;
  config.duration_sec = 2.0;
  config.driver_threads = 1;  // bit-deterministic event order
  config.seed = 42;
  return config;
}

access::AdmissionConfig Quotas() {
  access::AdmissionConfig admission;
  admission.enabled = true;
  admission.gate_access_layer = false;  // the driver meters at its door
  // Sized above the largest cold tenant's offered rate (~12k ops/s), so
  // a well-behaved tenant never sheds; the 100x hot tenant (~150k ops/s
  // offered) is clipped to this.
  admission.default_quota.ops_per_sec = 16000;
  admission.default_quota.burst_ops = 200;
  admission.default_quota.bytes_per_sec = 64.0 * (1 << 20);
  admission.default_quota.burst_bytes = 4 << 20;
  admission.max_queue_depth = 64;  // 4 ms of virtual queue at 16k ops/s
  admission.max_tracked_tenants = 8;
  return admission;
}

struct SectionResult {
  workload::ClusterResult cluster;
};

SectionResult RunSection(const char* label, int hot_tenant,
                         bool isolation) {
  core::StreamLakeOptions options;
  options.admission = Quotas();
  options.admission.per_tenant_isolation = isolation;
  if (!isolation) {
    // Shared capacity only, provisioned like a real deployment: ~40% of
    // headroom over the whole cluster's well-behaved offered load
    // (~29k ops/s). First come first served, so the 100x flood competes
    // with everyone for the same tokens.
    options.admission.cluster_ops_per_sec = 40000;
    options.admission.cluster_burst_ops = 400;
    options.admission.cluster_bytes_per_sec = 160.0 * (1 << 20);
    options.admission.cluster_burst_bytes = 8 << 20;
  }
  core::StreamLake lake(options);

  workload::ClusterConfig config = TrafficShape();
  config.hot_tenant = hot_tenant;
  config.hot_multiplier = 100.0;
  workload::ClusterDriver driver(&lake, config);
  Status setup = driver.Setup();
  if (!setup.ok()) {
    std::fprintf(stderr, "%s setup: %s\n", label, setup.ToString().c_str());
    std::exit(1);
  }
  auto result = driver.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "%s run: %s\n", label,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  std::printf(
      "%-12s offered=%llu admitted=%llu throttled=%llu shed=%llu "
      "failed=%llu fairness=[%.3f, %.3f] starved=%u cold_p99=%.3fms "
      "hot_p99=%.3fms\n",
      label, static_cast<unsigned long long>(result->offered),
      static_cast<unsigned long long>(result->admitted),
      static_cast<unsigned long long>(result->throttled),
      static_cast<unsigned long long>(result->shed),
      static_cast<unsigned long long>(result->failed),
      result->fairness_min, result->fairness_max, result->starved_tenants,
      result->cold_p99_ns / 1e6, result->hot_p99_ns / 1e6);
  return SectionResult{std::move(*result)};
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("cluster_scale", &argc, argv);

  SectionResult overload = RunSection("overload", /*hot_tenant=*/4,
                                      /*isolation=*/true);
  SectionResult baseline = RunSection("baseline", /*hot_tenant=*/-1,
                                      /*isolation=*/true);
  SectionResult no_iso = RunSection("no_isolation", /*hot_tenant=*/4,
                                    /*isolation=*/false);

  const workload::ClusterResult& o = overload.cluster;
  // Deterministic op counters (gated at zero tolerance).
  report.Add("offered_ops", static_cast<double>(o.offered));
  report.Add("admitted_ops", static_cast<double>(o.admitted));
  report.Add("shed_ops", static_cast<double>(o.shed));
  report.Add("throttled_ops", static_cast<double>(o.throttled));
  report.Add("failed_ops", static_cast<double>(o.failed));
  report.Add("starved_tenants", static_cast<double>(o.starved_tenants));
  // The fairness claim: every cold tenant's admitted share within 2x of
  // its offered share even while tenant 4 floods at 100x.
  report.Add("fairness_min", o.fairness_min);
  report.Add("fairness_max", o.fairness_max);
  // The hot tenant must actually have been clipped for the run to mean
  // anything.
  uint64_t hot_shed = 0, hot_admitted = 0;
  for (const auto& t : o.tenants) {
    if (t.hot) {
      hot_shed = t.shed;
      hot_admitted = t.admitted;
    }
  }
  report.Add("hot_shed_ops", static_cast<double>(hot_shed));
  report.Add("hot_admitted_ops", static_cast<double>(hot_admitted));
  // Tail-latency bound: overload may not move cold tenants' worst p99
  // beyond the baselined ratio over the no-hot run.
  report.Add("cold_p99_ms", o.cold_p99_ns / 1e6);
  report.Add("baseline_cold_p99_ms", baseline.cluster.cold_p99_ns / 1e6);
  double p99_ratio =
      baseline.cluster.cold_p99_ns == 0
          ? 0
          : static_cast<double>(o.cold_p99_ns) /
                static_cast<double>(baseline.cluster.cold_p99_ns);
  report.Add("cold_p99_overload_ratio", p99_ratio);
  // Ablation (reported, not gated): without isolation the same flood
  // drains the shared capacity and cold tenants lose most of their
  // admitted ops — the contrast showing isolation, not spare capacity,
  // is what protects them. cold_admit_ratio = cold admitted / offered:
  // ~1.0 with isolation, far below without.
  auto cold_admit_ratio = [](const workload::ClusterResult& r) {
    uint64_t offered = 0, admitted = 0;
    for (const auto& t : r.tenants) {
      if (t.hot) continue;
      offered += t.offered;
      admitted += t.admitted;
    }
    return offered == 0 ? 0.0
                        : static_cast<double>(admitted) /
                              static_cast<double>(offered);
  };
  report.Add("cold_admit_ratio", cold_admit_ratio(o));
  report.Add("noiso_cold_admit_ratio", cold_admit_ratio(no_iso.cluster));
  report.Add("noiso_cold_shed_ops",
             static_cast<double>([&] {
               uint64_t shed = 0;
               for (const auto& t : no_iso.cluster.tenants) {
                 if (!t.hot) shed += t.shed;
               }
               return shed;
             }()));

  if (!report.WriteIfRequested()) return 1;
  return 0;
}
