// Reproduces Fig. 15(b): query time vs compute-engine memory, with and
// without metadata acceleration. "When the memory is 1GB, the method
// without acceleration runs out of memory (OOM). Our solution is more
// efficient and stable because the metadata acceleration partially
// complements the allocated memory for the compute engine."
//
// The file-based catalog must hold every commit's metadata in compute
// memory at once; acceleration streams commits from the storage-side KV
// cache. Memory budgets are scaled with the (scaled) metadata volume.

#include <cstdio>
#include <vector>

#include "core/streamlake.h"

using namespace streamlake;

namespace {

constexpr int kPartitions = 800;

core::StreamLake* BuildLake(table::MetadataMode mode) {
  core::StreamLakeOptions options;
  options.metadata_mode = mode;
  options.ssd_capacity_per_disk = 8ULL << 30;
  auto* lake = new core::StreamLake(options);
  format::Schema schema{{"hour", format::DataType::kInt64},
                        {"v", format::DataType::kInt64}};
  auto created = lake->lakehouse().CreateTable(
      "t", schema, table::PartitionSpec::Identity("hour"));
  if (!created.ok()) std::exit(1);
  for (int h = 0; h < kPartitions; ++h) {
    format::Row row;
    row.fields = {format::Value(static_cast<int64_t>(h)),
                  format::Value(static_cast<int64_t>(h * 7))};
    if (!(*created)->Insert({row}).ok()) std::exit(1);
  }
  SL_CHECK_OK(lake->lakehouse().FlushMetadata());
  return lake;
}

}  // namespace

int main() {
  std::printf("Fig. 15(b): query time vs allocated compute memory\n");
  std::printf("(%d hourly commits; budgets scaled with metadata volume)\n\n",
              kPartitions);
  std::unique_ptr<core::StreamLake> file_lake(
      BuildLake(table::MetadataMode::kFileBased));
  std::unique_ptr<core::StreamLake> accel_lake(
      BuildLake(table::MetadataMode::kAccelerated));
  auto file_table = *file_lake->lakehouse().GetTable("t");
  auto accel_table = *accel_lake->lakehouse().GetTable("t");

  // Calibrate budgets to the measured metadata working set so the scaled
  // "1 GB" sits just below the file-based footprint, like the paper's
  // production layout did.
  query::QuerySpec probe;
  probe.aggregates = {query::AggregateSpec::CountStar()};
  table::SelectMetrics probe_metrics;
  if (!file_table->Select(probe, {}, &probe_metrics).ok()) return 1;
  uint64_t footprint = probe_metrics.peak_memory_bytes;
  std::printf("file-based metadata working set: %.1f KB (scaled '1.1 GB')\n\n",
              footprint / 1024.0);
  std::printf("%14s %22s %22s\n", "memory", "no-accel (ms/query)",
              "accel (ms/query)");
  std::vector<std::pair<std::string, uint64_t>> budgets = {
      {"0.5 GB", footprint * 5 / 11},
      {"1 GB", footprint * 10 / 11},
      {"2 GB", footprint * 20 / 11},
      {"4 GB", footprint * 40 / 11},
      {"8 GB", footprint * 80 / 11},
  };

  for (const auto& [label, budget] : budgets) {
    auto run = [&](table::Table* table, core::StreamLake* lake) {
      query::QuerySpec spec;
      spec.where.Add(query::Predicate::Lt("hour", format::Value(int64_t{8})));
      spec.aggregates = {query::AggregateSpec::CountStar()};
      table::SelectOptions options;
      options.memory_budget_bytes = budget;
      constexpr int kQueries = 20;
      uint64_t t0 = lake->clock().NowNanos();
      for (int q = 0; q < kQueries; ++q) {
        auto result = table->Select(spec, options);
        if (!result.ok()) {
          return std::string(result.status().IsOutOfMemory() ? "OOM"
                                                             : "error");
        }
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f",
                    (lake->clock().NowNanos() - t0) / 1e6 / kQueries);
      return std::string(buf);
    };
    std::string file_result = run(file_table, file_lake.get());
    std::string accel_result = run(accel_table, accel_lake.get());
    std::printf("%14s %22s %22s\n", label.c_str(), file_result.c_str(),
                accel_result.c_str());
  }
  return 0;
}
