// Reproduces Table I: StreamLake vs HDFS + Kafka over the Fig. 12 ETL
// pipeline, sweeping the input size. The paper runs 10M..1B packets of
// 1.2 KB on a 3-node cluster; we scale the packet counts down 1000x and
// compare the same three rows:
//   * storage usage after the pipeline (GB -> MB here),
//   * message processing throughput (messages/second),
//   * batch processing time (simulated seconds).
//
// Run: ./build/bench/bench_table1 [scale_divisor]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baselines/mini_hdfs.h"
#include "baselines/mini_kafka.h"
#include "core/streamlake.h"
#include "format/row_codec.h"
#include "workload/dpi_log.h"

using namespace streamlake;

namespace {

struct Row {
  uint64_t packets;
  double s_storage_mb, hk_storage_mb;
  double s_msgs_per_sec, k_msgs_per_sec;
  double s_batch_sec, h_batch_sec;
};

// One ETL job's logical work: parse + tag rows (normalization/labeling).
void TouchRows(std::vector<format::Row>* rows) {
  for (format::Row& row : *rows) {
    int64_t& bytes = std::get<int64_t>(row.fields[4]);
    bytes = bytes < 64 ? 64 : bytes;  // "validated accuracy and quality"
  }
}

Row RunOnePoint(uint64_t packets) {
  Row out{};
  out.packets = packets;
  const format::Schema schema = workload::DpiLogGenerator::Schema();

  // ---------------- StreamLake ----------------
  {
    core::StreamLakeOptions options;
    options.ssd_capacity_per_disk = 16ULL << 30;
    // Production deployments protect data with erasure coding (the TCO
    // lever of Section I); EC(4,1) tolerates one node loss like the paper.
    options.plog.plog.redundancy = storage::RedundancyConfig::ErasureCoding(4, 1);
    core::StreamLake lake(options);

    streaming::TopicConfig config;
    config.stream_num = 3;
    config.convert_2_table.enabled = true;
    config.convert_2_table.table_schema = schema;
    config.convert_2_table.table_path = "dpi";
    config.convert_2_table.partition_spec =
        table::PartitionSpec::Identity("province");
    config.convert_2_table.split_offset = 1;
    config.convert_2_table.delete_msg = true;  // one copy for both modes
    SL_CHECK_OK(lake.dispatcher().CreateTopic("collect", config));

    // Message streaming: measure real-time produce throughput.
    workload::DpiLogGenerator gen;
    auto producer = lake.NewProducer();
    auto wall_start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < packets; ++i) {
      auto status = producer.Send("collect", gen.NextMessage());
      if (!status.ok()) {
        std::fprintf(stderr, "streamlake produce: %s\n",
                     status.status().ToString().c_str());
        std::exit(1);
      }
    }
    double wall_sec = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();
    out.s_msgs_per_sec = packets / wall_sec;

    // Batch: conversion (normalize+label run on the single copy via
    // time-travel re-reads instead of fresh copies) + the DAU query.
    double batch_start = lake.clock().NowSeconds();
    auto converted = lake.converter().Run("collect");
    if (!converted.ok()) {
      std::fprintf(stderr, "convert: %s\n",
                   converted.status().ToString().c_str());
      std::exit(1);
    }
    auto table = lake.lakehouse().GetTable("dpi");
    // Normalization + labeling as lakehouse updates (only changed rows
    // are written).
    SL_CHECK_OK((*table)->Update(
        query::Conjunction{query::Predicate::Lt("bytes",
                                                format::Value(int64_t{80}))},
        "bytes", format::Value(int64_t{80})));
    query::QuerySpec dau;
    dau.where.Add(query::Predicate::Eq(
        "url",
        format::Value(std::string(workload::DpiLogGenerator::FinAppUrl()))));
    dau.group_by = {"province"};
    dau.aggregates = {query::AggregateSpec::CountStar("DAU")};
    auto result = (*table)->Select(dau);
    if (!result.ok()) {
      std::fprintf(stderr, "select: %s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    SL_CHECK_OK(lake.RunBackgroundWork());
    out.s_batch_sec = lake.clock().NowSeconds() - batch_start;
    out.s_storage_mb = lake.plogs().TotalLivePhysicalBytes() / 1048576.0;
  }

  // ---------------- HDFS + Kafka ----------------
  {
    sim::SimClock clock;
    storage::StoragePool pool("pool", sim::MediaType::kNvmeSsd, &clock);
    pool.AddCluster(3, 4, 64ULL << 30);
    baselines::MiniKafka kafka(&pool);
    baselines::MiniHdfs hdfs(&pool);
    SL_CHECK_OK(kafka.CreateTopic("collect", 3));

    workload::DpiLogGenerator gen;
    std::vector<format::Row> rows;
    rows.reserve(packets);
    auto wall_start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < packets; ++i) {
      streaming::Message msg = gen.NextMessage();
      auto status = kafka.Produce("collect", msg);
      if (!status.ok()) {
        std::fprintf(stderr, "kafka produce: %s\n",
                     status.status().ToString().c_str());
        std::exit(1);
      }
      rows.push_back(*format::DecodeRow(schema, ByteView(msg.value)));
    }
    double wall_sec = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();
    out.k_msgs_per_sec = packets / wall_sec;

    // Batch: "a new copy of all data is written to HDFS and Kafka after
    // each job" — collection output, normalization output, labeling
    // output, then the query reads the final copy fully.
    double batch_start = clock.NowSeconds();
    for (int stage = 0; stage < 3; ++stage) {
      TouchRows(&rows);
      Bytes blob;
      for (const format::Row& row : rows) {
        format::EncodeRow(schema, row, &blob);
      }
      SL_CHECK_OK(hdfs.WriteFile("/etl/stage-" + std::to_string(stage), ByteView(blob)));
    }
    auto final_copy = hdfs.ReadFile("/etl/stage-2");
    if (!final_copy.ok()) std::exit(1);
    Decoder dec{ByteView(*final_copy)};
    std::map<std::string, int64_t> dau;
    while (dec.Remaining() > 0) {
      auto row = format::DecodeRow(schema, &dec);
      if (!row.ok()) break;
      if (std::get<std::string>(row->fields[0]) ==
          workload::DpiLogGenerator::FinAppUrl()) {
        dau[std::get<std::string>(row->fields[2])]++;
      }
    }
    out.h_batch_sec = clock.NowSeconds() - batch_start;
    out.hk_storage_mb =
        (kafka.TotalPhysicalBytes() + hdfs.TotalPhysicalBytes()) / 1048576.0;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Default sweep: the paper's packet counts divided by 2000 (sized so
  // the simulated cluster's page store fits in laptop RAM).
  uint64_t divisor = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  std::vector<uint64_t> sweep = {10'000'000 / divisor, 50'000'000 / divisor,
                                 100'000'000 / divisor, 500'000'000 / divisor,
                                 1'000'000'000 / divisor};
  std::printf("Table I (packets scaled 1/%llu; storage in MB, batch time in "
              "simulated seconds)\n\n",
              static_cast<unsigned long long>(divisor));
  std::printf("%-28s", "#-Data Packet");
  std::vector<Row> results;
  for (uint64_t packets : sweep) {
    std::printf(" %12llu", static_cast<unsigned long long>(packets));
    results.push_back(RunOnePoint(packets));
  }
  std::printf("\n");
  auto print_row = [&](const char* label, auto getter, const char* fmt) {
    std::printf("%-28s", label);
    for (const Row& r : results) std::printf(fmt, getter(r));
    std::printf("\n");
  };
  print_row("Storage  StreamLake (MB)", [](const Row& r) { return r.s_storage_mb; }, " %12.1f");
  print_row("Usage    HDFS+Kafka (MB)", [](const Row& r) { return r.hk_storage_mb; }, " %12.1f");
  print_row("         Ratio (HK/S)", [](const Row& r) { return r.hk_storage_mb / r.s_storage_mb; }, " %12.2f");
  print_row("Message  StreamLake (msg/s)", [](const Row& r) { return r.s_msgs_per_sec; }, " %12.0f");
  print_row("Process  Kafka (msg/s)", [](const Row& r) { return r.k_msgs_per_sec; }, " %12.0f");
  print_row("         Ratio (K/S)", [](const Row& r) { return r.k_msgs_per_sec / r.s_msgs_per_sec; }, " %12.2f");
  print_row("Batch    StreamLake (s)", [](const Row& r) { return r.s_batch_sec; }, " %12.2f");
  print_row("Process  HDFS (s)", [](const Row& r) { return r.h_batch_sec; }, " %12.2f");
  print_row("         Ratio (H/S)", [](const Row& r) { return r.h_batch_sec / r.s_batch_sec; }, " %12.2f");
  return 0;
}
