// Reproduces Fig. 16(b, c): predicate-aware partitioning on TPC-H
// lineitem across scale factors, comparing
//   * Full — no partitioning (the whole table scans for every query),
//   * Day  — partition by day(l_shipdate) (the manual practice),
//   * Ours — LakeBrain's QD-tree built from the pushdown-predicate
//            workload with SPN-estimated cardinalities (trained on a 3%
//            sample of SF 2, like the paper).
// Reported: bytes skipped (fraction of table bytes a query avoids) and
// average query runtime on the real storage path.

#include <cstdio>
#include <vector>

#include "core/streamlake.h"
#include "lakebrain/qdtree.h"
#include "workload/tpch.h"

using namespace streamlake;

namespace {

/// Schema extended with the leaf id the QD-tree assigns ("Ours" routes
/// rows to partitions by leaf).
format::Schema ExtendedSchema() {
  format::Schema base = workload::TpchLineitemGenerator::Schema();
  std::vector<format::Field> fields = base.fields();
  fields.push_back({"pid", format::DataType::kInt64});
  return format::Schema(fields);
}

struct StrategyResult {
  double skipped_fraction = 0;
  double avg_query_ms = 0;
};

StrategyResult Evaluate(const std::vector<format::Row>& rows,
                        const table::PartitionSpec& spec,
                        const lakebrain::QdTree* tree,
                        const std::vector<query::QuerySpec>& eval_queries) {
  core::StreamLakeOptions options;
  options.ssd_capacity_per_disk = 16ULL << 30;
  core::StreamLake lake(options);
  table::TableOptions table_options;
  table_options.max_rows_per_file = 4096;
  auto created = lake.lakehouse().CreateTable("lineitem", ExtendedSchema(),
                                              spec, &table_options);
  if (!created.ok()) std::exit(1);
  table::Table* table = *created;

  std::vector<format::Row> extended;
  extended.reserve(rows.size());
  for (const format::Row& row : rows) {
    format::Row r = row;
    int64_t pid = tree != nullptr ? tree->AssignRow(row) : 0;
    r.fields.emplace_back(pid);
    extended.push_back(std::move(r));
  }
  if (!table->Insert(extended).ok()) std::exit(1);

  StrategyResult result;
  double total_skip = 0;
  double total_ns = 0;
  for (const query::QuerySpec& spec_q : eval_queries) {
    table::SelectMetrics metrics;
    auto r = table->Select(spec_q, {}, &metrics);
    if (!r.ok()) std::exit(1);
    uint64_t total = metrics.data_bytes_read + metrics.data_bytes_skipped;
    total_skip += total == 0 ? 0
                             : static_cast<double>(metrics.data_bytes_skipped) /
                                   total;
    total_ns += metrics.elapsed_ns;
  }
  result.skipped_fraction = total_skip / eval_queries.size();
  result.avg_query_ms = total_ns / eval_queries.size() / 1e6;
  return result;
}

}  // namespace

int main() {
  // Train the SPN on a 3% sample of SF 2 ("we train a probabilistic model
  // on 3% randomly sampled data from the lineitem table in a dataset of
  // scale factor 2").
  workload::TpchOptions sf2;
  sf2.scale_factor = 2;
  workload::TpchLineitemGenerator sample_gen(sf2);
  std::vector<format::Row> sf2_rows = sample_gen.GenerateAll();
  std::vector<format::Row> sample;
  Random sampler(5);
  for (const format::Row& row : sf2_rows) {
    if (sampler.NextDouble() < 0.03) sample.push_back(row);
  }
  format::Schema schema = workload::TpchLineitemGenerator::Schema();
  auto spn = lakebrain::SumProductNetwork::Train(schema, sample);
  if (!spn.ok()) {
    std::fprintf(stderr, "SPN training failed\n");
    return 1;
  }
  std::printf("SPN trained on %zu sampled rows (%zu nodes)\n", sample.size(),
              spn->num_nodes());

  // Build the query tree from the pushdown-predicate workload.
  workload::TpchQueryGenerator train_queries(41);
  std::vector<query::Conjunction> train_workload;
  for (const auto& spec : train_queries.Generate(80)) {
    train_workload.push_back(spec.where);
  }
  workload::TpchQueryGenerator eval_gen(42);
  std::vector<query::QuerySpec> eval_queries = eval_gen.Generate(60);

  std::printf("\nFig. 16(b,c): bytes skipped / query runtime, lineitem\n\n");
  std::printf("%4s %8s | %10s %10s %10s | %12s %12s %12s\n", "SF", "rows",
              "Full skip", "Day skip", "Ours skip", "Full ms", "Day ms",
              "Ours ms");
  for (double sf : {2.0, 5.0, 10.0, 100.0}) {
    workload::TpchOptions options;
    options.scale_factor = sf;
    options.rows_per_sf = sf <= 10 ? 12000 : 6000;  // cap SF100 for RAM
    workload::TpchLineitemGenerator gen(options);
    std::vector<format::Row> rows = gen.GenerateAll();

    lakebrain::QdTreeOptions tree_options;
    tree_options.min_partition_rows = rows.size() / 256 + 1;
    tree_options.max_leaves = 48;
    auto tree = lakebrain::QdTree::Build(schema, train_workload, *spn,
                                         rows.size(), tree_options);
    if (!tree.ok()) {
      std::fprintf(stderr, "qdtree build failed\n");
      return 1;
    }

    // "Day" at the paper's scale means ~2.4k rows per partition; at our
    // 1/500 row counts the equivalent granularity is the 30-day bucket.
    StrategyResult full = Evaluate(rows, table::PartitionSpec::None(),
                                   nullptr, eval_queries);
    StrategyResult day = Evaluate(rows,
                                  table::PartitionSpec::Month("l_shipdate"),
                                  nullptr, eval_queries);
    StrategyResult ours = Evaluate(rows, table::PartitionSpec::Identity("pid"),
                                   &*tree, eval_queries);
    std::printf("%4.0f %8zu | %9.1f%% %9.1f%% %9.1f%% | %12.2f %12.2f %12.2f\n",
                sf, rows.size(), 100 * full.skipped_fraction,
                100 * day.skipped_fraction, 100 * ours.skipped_fraction,
                full.avg_query_ms, day.avg_query_ms, ours.avg_query_ms);
  }
  return 0;
}
