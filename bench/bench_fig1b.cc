// Reproduces Fig. 1(b), the deployment-level summary: with StreamLake the
// same jobs run on ~39% fewer servers (37% TCO saving) and queries speed
// up by 30% to 4x.
//
// Server model: the baseline operates SEPARATE Kafka and HDFS server
// groups, each sized for its own peak demand (the paper's motivation:
// "resource utilization became increasingly skewed, with average CPU,
// memory, and storage utilization at 26%, 41%, and 66%"). StreamLake
// pools the same storage demand into one disaggregated tier. Demands are
// measured from the simulated device/bus busy time of an identical
// pipeline workload; query speedups are measured from the lakehouse
// (pushdown, metadata acceleration, compaction).

#include <cstdio>
#include <vector>

#include "baselines/mini_hdfs.h"
#include "baselines/mini_kafka.h"
#include "core/streamlake.h"
#include "format/row_codec.h"
#include "workload/dpi_log.h"

using namespace streamlake;

namespace {

constexpr uint64_t kPackets = 100000;
// One storage server contributes this many seconds of device service per
// wall-clock second at full utilization (disks per node).
constexpr double kServerServiceCapacity = 2.0;
// The siloed deployments run at the paper's measured utilization; the
// disaggregated pool raises it (shared load balancing across all nodes).
constexpr double kSiloUtilization = 0.50;
constexpr double kPooledUtilization = 0.70;

struct Demand {
  double duration_sec;
  double busy_sec;
};

// The data-center fleet serves many such pipelines; sizing for a fleet of
// tenants keeps the server counts out of the integer-rounding regime.
constexpr int kTenants = 24;

int ServersFor(const Demand& demand, double utilization) {
  double needed = kTenants * demand.busy_sec /
                  (demand.duration_sec * kServerServiceCapacity * utilization);
  return static_cast<int>(needed) + 1;
}

}  // namespace

int main() {
  const format::Schema schema = workload::DpiLogGenerator::Schema();

  // ---------------- Baseline: separate Kafka + HDFS groups ----------------
  Demand kafka_demand{}, hdfs_demand{};
  {
    sim::SimClock clock;
    storage::StoragePool kafka_pool("kafka", sim::MediaType::kNvmeSsd, &clock);
    storage::StoragePool hdfs_pool("hdfs", sim::MediaType::kNvmeSsd, &clock);
    kafka_pool.AddCluster(3, 4, 64ULL << 30);
    hdfs_pool.AddCluster(3, 4, 64ULL << 30);
    baselines::MiniKafka kafka(&kafka_pool);
    baselines::MiniHdfs hdfs(&hdfs_pool);
    SL_CHECK_OK(kafka.CreateTopic("collect", 3));

    workload::DpiLogGenerator gen;
    std::vector<format::Row> rows;
    double t0 = clock.NowSeconds();
    for (uint64_t i = 0; i < kPackets; ++i) {
      streaming::Message msg = gen.NextMessage();
      SL_CHECK_OK(kafka.Produce("collect", msg));
      rows.push_back(*format::DecodeRow(schema, ByteView(msg.value)));
    }
    for (int stage = 0; stage < 3; ++stage) {
      Bytes blob;
      for (const format::Row& row : rows) format::EncodeRow(schema, row, &blob);
      SL_CHECK_OK(hdfs.WriteFile("/etl/stage-" + std::to_string(stage), ByteView(blob)));
    }
    SL_CHECK_OK(hdfs.ReadFile("/etl/stage-2"));
    double duration = clock.NowSeconds() - t0;
    kafka_demand = {duration, kafka_pool.AggregateStats().busy_ns / 1e9};
    hdfs_demand = {duration, hdfs_pool.AggregateStats().busy_ns / 1e9};
  }

  // ---------------- StreamLake: one disaggregated pool ----------------
  Demand lake_demand{};
  double query_speedups_lo = 0, query_speedups_hi = 0;
  {
    core::StreamLakeOptions options;
    options.ssd_capacity_per_disk = 16ULL << 30;
    core::StreamLake lake(options);
    streaming::TopicConfig config;
    config.stream_num = 3;
    config.convert_2_table.enabled = true;
    config.convert_2_table.table_schema = schema;
    config.convert_2_table.table_path = "dpi";
    config.convert_2_table.partition_spec =
        table::PartitionSpec::Identity("province");
    config.convert_2_table.split_offset = 1;
    config.convert_2_table.delete_msg = true;
    SL_CHECK_OK(lake.dispatcher().CreateTopic("collect", config));

    workload::DpiLogGenerator gen;
    auto producer = lake.NewProducer();
    double t0 = lake.clock().NowSeconds();
    for (uint64_t i = 0; i < kPackets; ++i) {
      SL_CHECK_OK(producer.Send("collect", gen.NextMessage()));
    }
    SL_CHECK_OK(lake.converter().Run("collect"));
    auto table = *lake.lakehouse().GetTable("dpi");

    // Query speedup range: pushdown + skipping vs full-shuffle execution.
    query::QuerySpec selective;  // highly selective (skipping + pushdown)
    selective.where.Add(query::Predicate::Eq(
        "province", format::Value(std::string("beijing"))));
    selective.where.Add(query::Predicate::Eq(
        "url",
        format::Value(std::string(workload::DpiLogGenerator::FinAppUrl()))));
    selective.aggregates = {query::AggregateSpec::CountStar()};
    query::QuerySpec broad;  // aggregation over everything
    broad.group_by = {"province"};
    broad.aggregates = {query::AggregateSpec::CountStar()};

    auto timed = [&](const query::QuerySpec& spec, bool pushdown) {
      table::SelectOptions select_options;
      select_options.pushdown = pushdown;
      table::SelectMetrics metrics;
      auto r = table->Select(spec, select_options, &metrics);
      if (!r.ok()) std::exit(1);
      return metrics.elapsed_ns / 1e6;
    };
    double broad_speedup = timed(broad, false) / timed(broad, true);
    double selective_speedup =
        timed(selective, false) / timed(selective, true);
    query_speedups_lo = std::min(broad_speedup, selective_speedup);
    query_speedups_hi = std::max(broad_speedup, selective_speedup);

    double duration = lake.clock().NowSeconds() - t0;
    lake_demand = {duration,
                   (lake.ssd_pool().AggregateStats().busy_ns +
                    lake.hdd_pool().AggregateStats().busy_ns) /
                       1e9};
  }

  int kafka_servers = ServersFor(kafka_demand, kSiloUtilization);
  int hdfs_servers = ServersFor(hdfs_demand, kSiloUtilization);
  int baseline_servers = kafka_servers + hdfs_servers;
  int lake_servers = ServersFor(lake_demand, kPooledUtilization);

  std::printf("Fig. 1(b): deployment summary (%llu packets)\n\n",
              static_cast<unsigned long long>(kPackets));
  std::printf("storage demand: kafka %.1f s, hdfs %.1f s busy "
              "(siloed, %.0f%% util) vs streamlake %.1f s (pooled, %.0f%%)\n\n",
              kafka_demand.busy_sec, hdfs_demand.busy_sec,
              100 * kSiloUtilization, lake_demand.busy_sec,
              100 * kPooledUtilization);
  std::printf("%-32s %10d (= %d kafka + %d hdfs)\n",
              "baseline storage servers", baseline_servers, kafka_servers,
              hdfs_servers);
  std::printf("%-32s %10d\n", "streamlake storage servers", lake_servers);
  std::printf("%-32s %9.0f%%\n", "fewer servers",
              100.0 * (baseline_servers - lake_servers) / baseline_servers);
  std::printf("%-32s %9.0f%%   (TCO == server count)\n", "cost saving (TCO)",
              100.0 * (baseline_servers - lake_servers) / baseline_servers);
  std::printf("%-32s %6.1fx - %.1fx\n", "query performance improvement",
              query_speedups_lo, query_speedups_hi);
  return 0;
}
