// Reproduces Fig. 14(d): space consumption (multiple of the original data
// size) of the three redundancy strategies at fault tolerance 1..4:
//   * Replication  — FT+1 full copies,
//   * EC           — Reed-Solomon k data + FT parity shards,
//   * EC+Col-store — convert to columnar format first, then erasure-code.
// "StreamLake provides the options (EC and EC+Col-store) ... which can
// save three to five times of storage cost compared to Replication."

#include <cstdio>

#include "format/lakefile.h"
#include "format/row_codec.h"
#include "storage/plog_store.h"
#include "workload/tpch.h"

using namespace streamlake;

namespace {

constexpr int kEcDataShards = 8;
constexpr uint64_t kRecords = 200000;

/// Store `payload` under the given redundancy; return physical/original.
double MeasureStrategy(storage::RedundancyConfig redundancy,
                       const Bytes& payload, uint64_t original_size) {
  sim::SimClock clock;
  storage::StoragePool pool("pool", sim::MediaType::kNvmeSsd, &clock);
  pool.AddCluster(/*nodes=*/kEcDataShards + 4, 1, 4ULL << 30);
  storage::PlogStoreConfig config;
  config.num_shards = 4;
  config.plog.capacity = 64ULL << 20;
  config.plog.stripe_unit = 64 << 10;
  config.plog.redundancy = redundancy;
  storage::PlogStore store(&pool, config, &clock);

  // Write in 1 MB chunks like the archive service would.
  for (size_t pos = 0; pos < payload.size(); pos += 1 << 20) {
    size_t len = std::min<size_t>(1 << 20, payload.size() - pos);
    auto addr = store.Append(pos % config.num_shards,
                             ByteView(payload.data() + pos, len));
    if (!addr.ok()) {
      std::fprintf(stderr, "append failed: %s\n",
                   addr.status().ToString().c_str());
      std::exit(1);
    }
  }
  SL_CHECK_OK(store.FlushAll());
  return static_cast<double>(pool.AggregateStats().bytes_written) /
         original_size;
}

}  // namespace

int main() {
  // The original data: row-format telemetry records (what a stream
  // stores). Structured fields like production logs, so the columnar
  // conversion has realistic encodings to exploit.
  workload::TpchOptions gen_options;
  gen_options.rows_per_sf = kRecords;
  workload::TpchLineitemGenerator gen(gen_options);
  format::Schema schema = workload::TpchLineitemGenerator::Schema();
  std::vector<format::Row> rows = gen.GenerateAll();
  Bytes row_format;
  for (const format::Row& row : rows) {
    format::EncodeRow(schema, row, &row_format);
  }
  // Columnar conversion for EC+Col-store.
  format::LakeFileWriter writer(schema);
  SL_CHECK_OK(writer.AppendBatch(rows));
  Bytes columnar = *writer.Finish();
  const uint64_t original = row_format.size();

  std::printf("Fig. 14(d): space consumption vs fault tolerance\n");
  std::printf("original data: %.1f MB row-format (%.1f MB as columnar, "
              "%.2fx)\n\n",
              original / 1048576.0, columnar.size() / 1048576.0,
              static_cast<double>(original) / columnar.size());
  std::printf("%4s %14s %10s %16s %14s\n", "FT", "Replication", "EC",
              "EC+Col-store", "Repl/EC+Col");
  for (int ft = 1; ft <= 4; ++ft) {
    double replication = MeasureStrategy(
        storage::RedundancyConfig::Replication(ft + 1), row_format, original);
    double ec = MeasureStrategy(
        storage::RedundancyConfig::ErasureCoding(kEcDataShards, ft),
        row_format, original);
    double ec_col = MeasureStrategy(
        storage::RedundancyConfig::ErasureCoding(kEcDataShards, ft), columnar,
        original);
    std::printf("%4d %13.2fx %9.2fx %15.2fx %13.1fx\n", ft, replication, ec,
                ec_col, replication / ec_col);
  }
  return 0;
}
