// Shard-parallel write-path scaling: aggregate PlogStore append
// throughput with 1/2/4/8 producer threads on disjoint shards.
//
// Each append runs the config's io_delay_hook while its stripe lock is
// held — a real 100us sleep standing in for device dwell time. Under the
// old store-wide mutex those dwells serialized, so adding threads bought
// nothing; with striped locking threads on different stripes overlap
// their dwells and aggregate throughput scales with the thread count
// even on a single core (the threads sleep, not compute, in parallel).
//
// Metrics are wall-clock ratios, not absolute rates: `speedup_8t`
// (8-thread / 1-thread aggregate throughput) is dimensionless and stable
// across machines, so the CI baseline can gate on it (fails below 2x).
// The absolute per-point rates are reported for plots but not tracked.
// `registry.storage.plog.append_ops` doubles as a deterministic
// completeness check: every configured append must have landed.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "storage/plog_store.h"

using namespace streamlake;

namespace {

constexpr int kAppendsPerThread = 150;
constexpr int kShardsPerThread = 8;
constexpr auto kDeviceDwell = std::chrono::microseconds(100);

// Aggregate appends/sec with `threads` producers on disjoint stripes.
double RunOnePoint(int threads) {
  sim::SimClock clock;
  storage::StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
  pool.AddCluster(3, 2, 256 << 20);
  storage::PlogStoreConfig config;
  config.num_shards = 64;
  config.num_stripes = 64;  // shard i <-> stripe i: zero cross-thread sharing
  config.plog.capacity = 4 << 20;
  config.plog.stripe_unit = 4096;
  config.plog.redundancy = storage::RedundancyConfig::Replication(3);
  config.io_delay_hook = [](uint32_t) {
    std::this_thread::sleep_for(kDeviceDwell);
  };
  storage::PlogStore store(&pool, config, &clock);

  const std::string payload(512, 'x');
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  producers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    producers.emplace_back([&store, &payload, t] {
      for (int i = 0; i < kAppendsPerThread; ++i) {
        uint32_t shard =
            static_cast<uint32_t>(t * kShardsPerThread + i % kShardsPerThread);
        auto addr = store.Append(shard, ByteView(payload));
        SL_CHECK_OK(addr.status());
      }
    });
  }
  for (auto& t : producers) t.join();
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return threads * kAppendsPerThread / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("shard_scaling", &argc, argv);
  std::printf("Shard-parallel append scaling: %d appends/thread, "
              "%lldus simulated device dwell per append\n\n",
              kAppendsPerThread,
              static_cast<long long>(kDeviceDwell.count()));
  std::printf("%8s | %16s | %8s\n", "threads", "appends/sec", "speedup");

  double base = 0;
  double last = 0;
  for (int threads : {1, 2, 4, 8}) {
    double tput = RunOnePoint(threads);
    if (threads == 1) base = tput;
    last = tput;
    std::printf("%8d | %16.0f | %7.2fx\n", threads, tput, tput / base);
    report.Add("t" + std::to_string(threads) + ".appends_per_sec", tput);
  }
  report.Add("speedup_8t", last / base);
  return report.WriteIfRequested() ? 0 : 1;
}
