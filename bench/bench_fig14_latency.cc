// Reproduces Fig. 14(a): end-to-end message latency vs offered rate for
// hardware Set-1 (no persistent memory) and Set-2 (16 GB PMEM cache).
//
// Method: measure simulated service times of the produce path and of the
// consume path at the fetch batch size each rate induces (consumers poll
// at a fixed frequency, so higher rates amortize per-fetch overhead over
// more messages — which is exactly why the PMEM cache "reduces the
// latency especially when the workload is 200k messages per second or
// less": at high rates the per-op saving is amortized away). Latency then
// follows from an M/D/1 queue over the cluster's parallel pipelines.
//
// Also prints the I/O-aggregation ablation (Section V-A: "this function
// can be disabled for latency-sensitive scenarios").

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "core/streamlake.h"

using namespace streamlake;

namespace {

constexpr double kPipelines = 8.0;     // parallel stream pipelines (3 nodes)
constexpr double kPollHz = 1000.0;     // consumer poll frequency
constexpr size_t kMessageBytes = 1024;  // OpenMessaging 1 KB messages

struct ServiceModel {
  double produce_ns_per_msg;
  // Consume cost at batch size B: fixed_ns / B + per_msg_ns.
  double consume_fixed_ns;
  double consume_per_msg_ns;
};

ServiceModel Measure(bool with_pmem, bool io_aggregation) {
  core::StreamLakeOptions options;
  options.with_pmem_cache = with_pmem;
  core::StreamLake lake(options);
  stream::StreamObjectOptions object_options;
  object_options.io_aggregation = io_aggregation;
  object_options.use_scm_cache = with_pmem;
  uint64_t id = *lake.stream_objects().CreateObject(object_options);
  auto* object = lake.stream_objects().GetObject(id);

  constexpr int kProbe = 8192;
  uint64_t t0 = lake.clock().NowNanos();
  for (int i = 0; i < kProbe; ++i) {
    lake.data_bus().ChargeTransfer(kMessageBytes);
    std::vector<stream::StreamRecord> batch(1);
    batch[0].key = "k";
    batch[0].value = Bytes(kMessageBytes, 'm');
    SL_CHECK_OK(object->Append(std::move(batch)));
  }
  SL_CHECK_OK(object->Flush());
  ServiceModel model;
  model.produce_ns_per_msg =
      static_cast<double>(lake.clock().NowNanos() - t0) / kProbe;

  // Consume cost at two batch sizes to fit fixed + per-message terms.
  auto consume_ns = [&](size_t batch_size) {
    uint64_t start = lake.clock().NowNanos();
    uint64_t offset = 0;
    int fetches = 0;
    while (offset < kProbe / 2) {
      auto fetched = object->Read(offset, batch_size);
      if (!fetched.ok() || fetched->empty()) break;
      lake.data_bus().ChargeTransfer(fetched->size() * kMessageBytes);
      offset += fetched->size();
      ++fetches;
    }
    return static_cast<double>(lake.clock().NowNanos() - start) / fetches;
  };
  double small = consume_ns(8);    // fixed*1 + 8*per
  double large = consume_ns(512);  // fixed*1 + 512*per
  model.consume_per_msg_ns = std::max(0.0, (large - small) / (512 - 8));
  model.consume_fixed_ns = std::max(0.0, small - 8 * model.consume_per_msg_ns);
  return model;
}

double LatencyUs(const ServiceModel& model, double rate) {
  double batch = std::max(1.0, rate / kPollHz);
  double service_ns = model.produce_ns_per_msg +
                      model.consume_fixed_ns / batch +
                      model.consume_per_msg_ns;
  double s = service_ns * 1e-9;
  double rho = rate * s / kPipelines;
  if (rho >= 1.0) return -1.0;
  return (s + rho * s / (2.0 * (1.0 - rho))) * 1e6;
}

void PrintSweep(const char* title, const ServiceModel& set1,
                const ServiceModel& set2) {
  std::printf("%s\n", title);
  std::printf("%14s %16s %16s %10s\n", "rate (msg/s)", "Set-1 avg (us)",
              "Set-2 avg (us)", "gain");
  std::vector<double> rates = {50e3, 100e3, 200e3, 400e3, 800e3, 1.5e6};
  for (double rate : rates) {
    double l1 = LatencyUs(set1, rate);
    double l2 = LatencyUs(set2, rate);
    if (l1 < 0 || l2 < 0) {
      std::printf("%14.0f %16s %16s\n", rate, l1 < 0 ? "saturated" : "-",
                  l2 < 0 ? "saturated" : "-");
      continue;
    }
    std::printf("%14.0f %16.1f %16.1f %9.1f%%\n", rate, l1, l2,
                100.0 * (l1 - l2) / l1);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("fig14_latency", &argc, argv);
  std::printf("Fig. 14(a): message latency vs offered rate (1 KB messages)\n\n");
  ServiceModel set1 = Measure(/*with_pmem=*/false, /*aggregation=*/true);
  ServiceModel set2 = Measure(/*with_pmem=*/true, /*aggregation=*/true);
  std::printf("produce %.2f/%.2f us; consume fixed %.2f/%.2f us, per-msg "
              "%.2f/%.2f us (Set-1/Set-2)\n\n",
              set1.produce_ns_per_msg / 1000, set2.produce_ns_per_msg / 1000,
              set1.consume_fixed_ns / 1000, set2.consume_fixed_ns / 1000,
              set1.consume_per_msg_ns / 1000, set2.consume_per_msg_ns / 1000);
  PrintSweep("With I/O aggregation (default):", set1, set2);

  ServiceModel set1_noagg = Measure(false, /*aggregation=*/false);
  ServiceModel set2_noagg = Measure(true, /*aggregation=*/false);
  PrintSweep("Ablation, I/O aggregation disabled (latency-sensitive mode):",
             set1_noagg, set2_noagg);
  report.Add("set1.produce_ns_per_msg", set1.produce_ns_per_msg);
  report.Add("set2.produce_ns_per_msg", set2.produce_ns_per_msg);
  report.Add("set1.consume_fixed_ns", set1.consume_fixed_ns);
  report.Add("set2.consume_fixed_ns", set2.consume_fixed_ns);
  report.Add("set1.latency_us_at_100k", LatencyUs(set1, 100e3));
  report.Add("set2.latency_us_at_100k", LatencyUs(set2, 100e3));
  return report.WriteIfRequested() ? 0 : 1;
}
