// Ablation: copy-on-write vs merge-on-read deletes (Section VI-A motivates
// auto-compaction with the "low query performance on merge-on-read
// tables" that accumulation of deltas causes).
//
// Sweeps the number of DELETE statements applied to a fixed table and
// reports, for both delete modes:
//   * total simulated delete time (MOR wins: no file rewrites),
//   * query time after the deletes (COW wins: no masking work),
//   * query time after compaction (MOR recovers: deletes applied
//     physically) — the LakeBrain story in one table.

#include <cstdio>
#include <vector>

#include "core/streamlake.h"
#include "workload/tpch.h"

using namespace streamlake;

namespace {

struct ModeResult {
  double delete_time_ms = 0;
  double query_after_deletes_ms = 0;
  double query_after_compaction_ms = 0;
  int64_t final_count = 0;
};

ModeResult Run(table::DeleteMode mode, int num_deletes) {
  core::StreamLakeOptions lake_options;
  lake_options.ssd_capacity_per_disk = 8ULL << 30;
  lake_options.table_options.delete_mode = mode;
  // Ingestion-sized files so compaction has small files to merge.
  lake_options.table_options.max_rows_per_file = 8192;
  core::StreamLake lake(lake_options);
  auto created = lake.lakehouse().CreateTable(
      "lineitem", workload::TpchLineitemGenerator::Schema(),
      table::PartitionSpec::None());
  if (!created.ok()) std::exit(1);
  table::Table* table = *created;

  workload::TpchOptions gen_options;
  gen_options.rows_per_sf = 40000;
  workload::TpchLineitemGenerator gen(gen_options);
  if (!table->Insert(gen.GenerateAll()).ok()) std::exit(1);

  // Deletes carve disjoint quantity slivers (each ~2% of rows).
  uint64_t t0 = lake.clock().NowNanos();
  for (int d = 0; d < num_deletes; ++d) {
    query::Conjunction where{
        query::Predicate::Eq("l_quantity",
                             format::Value(static_cast<int64_t>(1 + d)))};
    auto deleted = table->Delete(where);
    if (!deleted.ok()) std::exit(1);
  }
  ModeResult result;
  result.delete_time_ms = (lake.clock().NowNanos() - t0) / 1e6;

  query::QuerySpec count;
  count.aggregates = {query::AggregateSpec::CountStar()};
  auto run_query = [&]() {
    table::SelectMetrics metrics;
    auto r = table->Select(count, {}, &metrics);
    if (!r.ok()) std::exit(1);
    result.final_count = std::get<int64_t>(r->rows[0].fields[0]);
    return metrics.elapsed_ns / 1e6;
  };
  result.query_after_deletes_ms = run_query();

  if (!table->CompactPartition("").ok()) std::exit(1);
  result.query_after_compaction_ms = run_query();
  return result;
}

}  // namespace

int main() {
  std::printf("Ablation: copy-on-write vs merge-on-read deletes "
              "(40k-row lineitem)\n\n");
  std::printf("%9s | %12s %12s %15s | %12s %12s %15s | %10s\n", "#deletes",
              "COW del ms", "COW qry ms", "COW qry+compact", "MOR del ms",
              "MOR qry ms", "MOR qry+compact", "rows agree");
  for (int deletes : {1, 4, 16, 40}) {
    ModeResult cow = Run(table::DeleteMode::kCopyOnWrite, deletes);
    ModeResult mor = Run(table::DeleteMode::kMergeOnRead, deletes);
    std::printf("%9d | %12.1f %12.2f %15.2f | %12.1f %12.2f %15.2f | %10s\n",
                deletes, cow.delete_time_ms, cow.query_after_deletes_ms,
                cow.query_after_compaction_ms, mor.delete_time_ms,
                mor.query_after_deletes_ms, mor.query_after_compaction_ms,
                cow.final_count == mor.final_count ? "yes" : "NO");
  }
  return 0;
}
