// Reproduces Fig. 14(c): partition scaling time. "The service gracefully
// scales from 1000 to 10000 partitions in less than 10 seconds", because
// scaling only rewires dispatcher metadata — no data migration.
//
// We create a topic with 1000 streams, publish data, then grow to 10000
// partitions, reporting (a) the simulated metadata-update time and (b)
// that zero bytes of stream data moved.

#include <cstdio>
#include <vector>

#include "core/streamlake.h"

using namespace streamlake;

int main() {
  core::StreamLakeOptions options;
  core::StreamLake lake(options);

  streaming::TopicConfig config;
  config.stream_num = 1000;
  if (!lake.dispatcher().CreateTopic("scale", config).ok()) {
    std::fprintf(stderr, "create topic failed\n");
    return 1;
  }
  auto producer = lake.NewProducer();
  for (int i = 0; i < 5000; ++i) {
    SL_CHECK_OK(producer.Send("scale", streaming::Message("k" + std::to_string(i), "v")));
  }
  std::printf("Fig. 14(c): partition scaling (metadata-only)\n\n");
  std::printf("%22s %16s %16s %14s\n", "partitions", "scale time (s)",
              "data moved (B)", "worker moves");

  sim::DeviceStats before_io = lake.ssd_pool().AggregateStats();
  std::vector<uint32_t> targets = {2000, 4000, 6000, 8000, 10000};
  uint32_t current = 1000;
  for (uint32_t target : targets) {
    uint64_t t0 = lake.clock().NowNanos();
    if (!lake.dispatcher().AddStreams("scale", target - current).ok()) {
      std::fprintf(stderr, "scaling failed\n");
      return 1;
    }
    uint64_t elapsed = lake.clock().NowNanos() - t0;
    sim::DeviceStats after_io = lake.ssd_pool().AggregateStats();
    std::printf("%10u -> %8u %16.3f %16llu %14s\n", current, target,
                elapsed / 1e9,
                static_cast<unsigned long long>(after_io.bytes_written -
                                                before_io.bytes_written),
                "metadata-only");
    before_io = after_io;
    current = target;
  }

  // Worker scaling is equally metadata-only.
  uint64_t t0 = lake.clock().NowNanos();
  SL_CHECK_OK(lake.dispatcher().ResizeWorkers(24));
  std::printf("\nworkers 3 -> 24 rebalanced %u streams in %.3f simulated s\n",
              *lake.dispatcher().NumStreams("scale"),
              (lake.clock().NowNanos() - t0) / 1e9);

  // Messages remain consumable across the resize.
  auto consumer = lake.NewConsumer("g");
  SL_CHECK_OK(consumer.Subscribe("scale"));
  auto polled = consumer.Poll(10000);
  std::printf("post-scale consumption: %zu messages intact\n",
              polled.ok() ? polled->size() : 0);
  return 0;
}
