// Parallel read-path scaling: aggregate Table::Select throughput with
// 1/2/4/8 query threads over a stalled-I/O store, plus the decoded-block
// cache's repeat-query effect.
//
// Every PLog read runs the config's io_read_delay_hook while its stripe
// lock is held — a real 200us sleep standing in for device dwell time.
// The serial read path paid those dwells one file after another; the scan
// pool fans the post-pruning file list out as per-file jobs, so dwells on
// different files overlap and aggregate throughput scales with the thread
// count even on a single core (the threads sleep, not compute, in
// parallel). Each point gives the scan pool as many workers as there are
// query threads and disables the cache so every query re-reads.
//
// Metrics are wall-clock ratios, not absolute rates: `speedup_8t`
// (8-thread / 1-thread aggregate throughput) is dimensionless and stable
// across machines, so the CI baseline can gate on it (fails below 2x).
// `rows_scanned` is a deterministic completeness check; the cache section
// reports `block_cache_hits` (> 0), `warm_bytes_read` (== 0: the repeat
// query does no storage I/O) and `cache_identical` (== 1: cached results
// are byte-identical to a cache-disabled run).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "common/threadpool.h"
#include "table/block_cache.h"
#include "table/lakehouse.h"

using namespace streamlake;

namespace {

constexpr int kQueriesPerThread = 10;
constexpr int kProvinces = 4;
constexpr int kRowsPerProvince = 1024;  // 4 files of 256 rows each
constexpr auto kReadDwell = std::chrono::microseconds(200);

format::Schema DpiSchema() {
  return format::Schema{{"url", format::DataType::kString},
                        {"start_time", format::DataType::kInt64},
                        {"province", format::DataType::kString},
                        {"bytes", format::DataType::kInt64}};
}

// A lakehouse over a PLog store whose reads stall, with a scan pool of
// `scan_threads` workers (0 = serial) and an optional block cache.
struct ScanFixture {
  sim::SimClock clock;
  storage::StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
  sim::NetworkModel compute_link{sim::NetworkProfile::Rdma(), &clock};
  kv::KvStore object_index;
  kv::KvStore meta_cache;
  std::unique_ptr<ThreadPool> scan_pool;
  std::unique_ptr<table::DecodedBlockCache> cache;
  std::unique_ptr<storage::PlogStore> plogs;
  std::unique_ptr<storage::ObjectStore> objects;
  std::unique_ptr<table::MetadataStore> meta;
  std::unique_ptr<table::LakehouseService> lakehouse;
  table::Table* table = nullptr;

  ScanFixture(int scan_threads, uint64_t cache_bytes) {
    pool.AddCluster(3, 2, 512 << 20);
    storage::PlogStoreConfig config;
    config.num_shards = 64;
    config.num_stripes = 64;
    config.plog.capacity = 32 << 20;
    config.plog.stripe_unit = 4096;
    config.plog.redundancy = storage::RedundancyConfig::Replication(3);
    config.io_read_delay_hook = [](uint32_t) {
      std::this_thread::sleep_for(kReadDwell);
    };
    if (scan_threads > 0) {
      scan_pool = std::make_unique<ThreadPool>(scan_threads, "bench.scan");
    }
    if (cache_bytes > 0) {
      cache = std::make_unique<table::DecodedBlockCache>(cache_bytes);
    }
    plogs = std::make_unique<storage::PlogStore>(&pool, config, &clock);
    objects = std::make_unique<storage::ObjectStore>(plogs.get(),
                                                     &object_index);
    // Accelerated metadata keeps the catalog off the stalled read path:
    // the dwell charges data-file reads only, like a real SCM-cached
    // metadata engine over HDD data.
    meta = std::make_unique<table::MetadataStore>(
        objects.get(), &meta_cache, table::MetadataMode::kAccelerated);
    table::TableOptions options;
    options.max_rows_per_file = 256;
    options.file_options.rows_per_group = 128;
    lakehouse = std::make_unique<table::LakehouseService>(
        meta.get(), objects.get(), &clock, &compute_link, options,
        scan_pool.get(), cache.get());
    auto created = lakehouse->CreateTable(
        "dpi", DpiSchema(), table::PartitionSpec::Identity("province"));
    SL_CHECK_OK(created.status());
    table = *created;

    std::vector<format::Row> rows;
    rows.reserve(kProvinces * kRowsPerProvince);
    for (int p = 0; p < kProvinces; ++p) {
      for (int i = 0; i < kRowsPerProvince; ++i) {
        format::Row row;
        row.fields = {format::Value("http://site/" + std::to_string(i % 7)),
                      format::Value(int64_t{1000} + i),
                      format::Value("prov-" + std::to_string(p)),
                      format::Value(int64_t{64} + i % 100)};
        rows.push_back(std::move(row));
      }
    }
    SL_CHECK_OK(table->Insert(rows));
  }
};

query::QuerySpec DauSpec() {
  query::QuerySpec spec;
  spec.group_by = {"province"};
  spec.aggregates = {query::AggregateSpec::CountStar(),
                     query::AggregateSpec::Sum("bytes")};
  return spec;
}

// Aggregate queries/sec with `threads` query threads over a fixture whose
// scan pool has `threads` workers and no cache (every query re-reads).
double RunOnePoint(int threads, std::atomic<uint64_t>* rows_scanned) {
  ScanFixture f(threads, /*cache_bytes=*/0);
  query::QuerySpec spec = DauSpec();
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> queriers;
  queriers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    queriers.emplace_back([&f, &spec, rows_scanned] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        auto result = f.table->Select(spec);
        SL_CHECK_OK(result.status());
        rows_scanned->fetch_add(result->rows_scanned,
                                std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : queriers) t.join();
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return threads * kQueriesPerThread / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("scan_scaling", &argc, argv);
  std::printf("Parallel Select scaling: %d queries/thread over %d files, "
              "%lldus simulated device dwell per file read\n\n",
              kQueriesPerThread, kProvinces * kRowsPerProvince / 256,
              static_cast<long long>(kReadDwell.count()));
  std::printf("%8s | %16s | %8s\n", "threads", "queries/sec", "speedup");

  std::atomic<uint64_t> rows_scanned{0};
  double base = 0;
  double last = 0;
  for (int threads : {1, 2, 4, 8}) {
    double tput = RunOnePoint(threads, &rows_scanned);
    if (threads == 1) base = tput;
    last = tput;
    std::printf("%8d | %16.1f | %7.2fx\n", threads, tput, tput / base);
    report.Add("t" + std::to_string(threads) + ".queries_per_sec", tput);
  }
  report.Add("speedup_8t", last / base);

  // Repeat-query section: with the decoded-block cache attached, the
  // second identical query serves footers and rows from memory — zero
  // storage bytes — and returns byte-identical results to an uncached run.
  ScanFixture cached(/*scan_threads=*/4, /*cache_bytes=*/64ULL << 20);
  ScanFixture uncached(/*scan_threads=*/4, /*cache_bytes=*/0);
  query::QuerySpec spec = DauSpec();
  table::SelectMetrics cold_metrics, warm_metrics;
  auto cold = cached.table->Select(spec, {}, &cold_metrics);
  SL_CHECK_OK(cold.status());
  auto warm = cached.table->Select(spec, {}, &warm_metrics);
  SL_CHECK_OK(warm.status());
  auto plain = uncached.table->Select(spec);
  SL_CHECK_OK(plain.status());
  rows_scanned += cold->rows_scanned + warm->rows_scanned +
                  plain->rows_scanned;
  table::DecodedBlockCache::Stats stats = cached.cache->GetStats();
  bool identical = warm->rows == plain->rows && cold->rows == plain->rows &&
                   warm->column_names == plain->column_names;
  std::printf("\nblock cache: cold read %llu bytes, warm read %llu bytes, "
              "%llu hits, identical=%d\n",
              static_cast<unsigned long long>(cold_metrics.data_bytes_read),
              static_cast<unsigned long long>(warm_metrics.data_bytes_read),
              static_cast<unsigned long long>(stats.hits), identical);
  report.Add("block_cache_hits", static_cast<double>(stats.hits));
  report.Add("warm_bytes_read",
             static_cast<double>(warm_metrics.data_bytes_read));
  report.Add("cache_identical", identical ? 1.0 : 0.0);
  report.Add("rows_scanned", static_cast<double>(rows_scanned.load()));
  return report.WriteIfRequested() ? 0 : 1;
}
