// Parallel read path: the fan-out Select must return byte-identical
// results to the serial path, and the decoded-block cache must serve
// repeat and time-travel reads while commits, compaction, snapshot GC,
// and PLog migration invalidate exactly the entries they obsolete.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/threadpool.h"
#include "core/streamlake.h"
#include "table/block_cache.h"
#include "table/lakehouse.h"

namespace streamlake::table {
namespace {

format::Schema DpiSchema() {
  return format::Schema{{"url", format::DataType::kString},
                        {"start_time", format::DataType::kInt64},
                        {"province", format::DataType::kString},
                        {"bytes", format::DataType::kInt64}};
}

format::Row DpiRow(const std::string& url, int64_t t,
                   const std::string& province, int64_t bytes = 100) {
  format::Row row;
  row.fields = {format::Value(url), format::Value(t), format::Value(province),
                format::Value(bytes)};
  return row;
}

// Small files (64 rows, 32-row groups) so a modest insert spreads over
// many files and row groups — the shapes the fan-out and cache act on.
struct ScanFixture {
  sim::SimClock clock;
  storage::StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
  sim::NetworkModel compute_link{sim::NetworkProfile::Rdma(), &clock};
  kv::KvStore object_index;
  kv::KvStore meta_cache;
  std::unique_ptr<ThreadPool> scan_pool;
  std::unique_ptr<DecodedBlockCache> cache;
  std::unique_ptr<storage::PlogStore> plogs;
  std::unique_ptr<storage::ObjectStore> objects;
  std::unique_ptr<MetadataStore> meta;
  std::unique_ptr<LakehouseService> lakehouse;

  explicit ScanFixture(int scan_threads, uint64_t cache_bytes,
                       DeleteMode delete_mode = DeleteMode::kCopyOnWrite) {
    pool.AddCluster(3, 2, 512 << 20);
    storage::PlogStoreConfig config;
    config.num_shards = 16;
    config.plog.capacity = 32 << 20;
    config.plog.stripe_unit = 4096;
    config.plog.redundancy = storage::RedundancyConfig::Replication(3);
    plogs = std::make_unique<storage::PlogStore>(&pool, config, &clock);
    objects = std::make_unique<storage::ObjectStore>(plogs.get(),
                                                     &object_index);
    meta = std::make_unique<MetadataStore>(objects.get(), &meta_cache,
                                           MetadataMode::kAccelerated);
    if (scan_threads > 0) {
      scan_pool = std::make_unique<ThreadPool>(scan_threads, "test.scan");
    }
    if (cache_bytes > 0) {
      cache = std::make_unique<DecodedBlockCache>(cache_bytes);
    }
    TableOptions options;
    options.max_rows_per_file = 64;
    options.file_options.rows_per_group = 32;
    options.delete_mode = delete_mode;
    lakehouse = std::make_unique<LakehouseService>(
        meta.get(), objects.get(), &clock, &compute_link, options,
        scan_pool.get(), cache.get());
  }

  Table* CreateAndFill(int rows_per_province = 256) {
    auto table = lakehouse->CreateTable("dpi", DpiSchema(),
                                        PartitionSpec::Identity("province"));
    EXPECT_TRUE(table.ok()) << table.status().ToString();
    std::vector<format::Row> rows;
    for (const char* province : {"beijing", "hubei", "guangdong"}) {
      for (int i = 0; i < rows_per_province; ++i) {
        rows.push_back(DpiRow("http://site/" + std::to_string(i % 5), i,
                              province, 10 + i % 90));
      }
    }
    EXPECT_TRUE((*table)->Insert(rows).ok());
    return *table;
  }
};

std::vector<query::QuerySpec> ProbeQueries() {
  std::vector<query::QuerySpec> specs;
  {  // Grouped aggregates across every file.
    query::QuerySpec spec;
    spec.group_by = {"province"};
    spec.aggregates = {query::AggregateSpec::CountStar("c"),
                       query::AggregateSpec::Sum("bytes", "s"),
                       query::AggregateSpec::Min("start_time", "lo"),
                       query::AggregateSpec::Max("start_time", "hi"),
                       query::AggregateSpec::Avg("bytes", "avg")};
    spec.order_by = "province";
    specs.push_back(spec);
  }
  {  // Plain projection with ORDER BY + LIMIT over a filter.
    query::QuerySpec spec;
    spec.where.Add(query::Predicate::Lt("start_time", int64_t{40}));
    spec.projection = {"province", "start_time", "bytes"};
    spec.order_by = "start_time";
    spec.limit = 50;
    specs.push_back(spec);
  }
  {  // Global aggregate, no grouping, with a partition-pruning filter.
    query::QuerySpec spec;
    spec.where.Add(query::Predicate::Eq("province", format::Value(std::string("hubei"))));
    spec.aggregates = {query::AggregateSpec::CountStar("c")};
    specs.push_back(spec);
  }
  return specs;
}

TEST(ScanParallelTest, ParallelSelectMatchesSerialByteIdentical) {
  ScanFixture serial(/*scan_threads=*/0, /*cache_bytes=*/0);
  ScanFixture parallel(/*scan_threads=*/4, /*cache_bytes=*/64ULL << 20);
  Table* st = serial.CreateAndFill();
  Table* pt = parallel.CreateAndFill();

  for (const query::QuerySpec& spec : ProbeQueries()) {
    auto expect = st->Select(spec);
    ASSERT_TRUE(expect.ok()) << expect.status().ToString();
    // Twice: once cold (populating the cache), once warm (served from it).
    for (int round = 0; round < 2; ++round) {
      auto got = pt->Select(spec);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got->column_names, expect->column_names);
      EXPECT_EQ(got->rows, expect->rows) << "round " << round;
      EXPECT_EQ(got->rows_scanned, expect->rows_scanned);
      EXPECT_EQ(got->rows_matched, expect->rows_matched);
    }
  }
}

TEST(ScanParallelTest, RepeatSelectIsServedFromCache) {
  ScanFixture f(/*scan_threads=*/4, /*cache_bytes=*/64ULL << 20);
  Table* table = f.CreateAndFill();
  query::QuerySpec spec = ProbeQueries()[0];

  SelectMetrics cold, warm;
  auto first = table->Select(spec, {}, &cold);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(cold.data_bytes_read, 0u);

  auto second = table->Select(spec, {}, &warm);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(warm.data_bytes_read, 0u)
      << "repeat query should not touch storage";
  EXPECT_EQ(second->rows, first->rows);

  DecodedBlockCache::Stats stats = f.cache->GetStats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.bytes_cached, 0u);
  // Same fan-out both times: the cache changes I/O, never the plan.
  EXPECT_EQ(warm.files_scanned, cold.files_scanned);
  EXPECT_EQ(warm.row_groups_scanned, cold.row_groups_scanned);
}

TEST(ScanParallelTest, CommitInvalidatesRewrittenFiles) {
  ScanFixture f(/*scan_threads=*/4, /*cache_bytes=*/64ULL << 20);
  Table* table = f.CreateAndFill();
  query::QuerySpec spec = ProbeQueries()[0];
  ASSERT_TRUE(table->Select(spec).ok());  // populate

  auto before = table->LiveFiles();
  ASSERT_TRUE(before.ok());
  for (const DataFileMeta& file : *before) {
    EXPECT_TRUE(f.cache->ContainsFile(file.path));
  }

  // UPDATE rewrites every touched file; the commit must drop the replaced
  // files' cache entries.
  auto updated = table->Update(
      query::Conjunction{query::Predicate::Eq("province", format::Value(std::string("hubei")))}, "bytes",
      format::Value(int64_t{7}));
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  ASSERT_GT(*updated, 0u);

  auto after = table->LiveFiles();
  ASSERT_TRUE(after.ok());
  std::set<std::string> live;
  for (const DataFileMeta& file : *after) live.insert(file.path);
  for (const DataFileMeta& file : *before) {
    if (!live.count(file.path)) {
      EXPECT_FALSE(f.cache->ContainsFile(file.path))
          << "replaced file still cached: " << file.path;
    }
  }
  EXPECT_GT(f.cache->GetStats().invalidated_entries, 0u);

  // The post-commit query sees the new values (served correctly even with
  // the surviving files' entries still cached).
  query::QuerySpec check;
  check.where.Add(query::Predicate::Eq("province", format::Value(std::string("hubei"))));
  check.where.Add(query::Predicate::Eq("bytes", int64_t{7}));
  check.aggregates = {query::AggregateSpec::CountStar("c")};
  auto result = table->Select(check);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<int64_t>(result->rows[0].fields[0]),
            static_cast<int64_t>(*updated));
}

TEST(ScanParallelTest, CompactionInvalidatesMergedFiles) {
  ScanFixture f(/*scan_threads=*/4, /*cache_bytes=*/64ULL << 20);
  auto table = f.lakehouse->CreateTable("dpi", DpiSchema(),
                                        PartitionSpec::Identity("province"));
  ASSERT_TRUE(table.ok());
  // Many small inserts -> many small files in one partition.
  for (int batch = 0; batch < 6; ++batch) {
    std::vector<format::Row> rows;
    for (int i = 0; i < 8; ++i) {
      rows.push_back(DpiRow("http://a", batch * 8 + i, "beijing"));
    }
    ASSERT_TRUE((*table)->Insert(rows).ok());
  }
  query::QuerySpec spec;
  spec.aggregates = {query::AggregateSpec::CountStar("c")};
  auto before = (*table)->Select(spec);
  ASSERT_TRUE(before.ok());

  auto files = (*table)->LiveFiles();
  ASSERT_TRUE(files.ok());
  auto compacted = (*table)->CompactPartition("beijing");
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  ASSERT_LT(compacted->files_after, compacted->files_before);
  for (const DataFileMeta& file : *files) {
    EXPECT_FALSE(f.cache->ContainsFile(file.path))
        << "merged-away file still cached: " << file.path;
  }

  auto after = (*table)->Select(spec);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows, before->rows);
}

TEST(ScanParallelTest, TimeTravelSharesTheCacheSafely) {
  // Merge-on-read deletes: cached rows are pre-masking, so the head query
  // (masked) and the time-travel query (unmasked) can both hit the same
  // entries and still disagree exactly where they should.
  ScanFixture f(/*scan_threads=*/4, /*cache_bytes=*/64ULL << 20,
                DeleteMode::kMergeOnRead);
  Table* table = f.CreateAndFill();
  auto info = table->Info();
  ASSERT_TRUE(info.ok());
  uint64_t snap_before_delete = info->current_snapshot_id;

  auto deleted = table->Delete(
      query::Conjunction{query::Predicate::Lt("start_time", int64_t{100})});
  ASSERT_TRUE(deleted.ok());
  ASSERT_GT(*deleted, 0u);

  query::QuerySpec spec;
  spec.group_by = {"province"};
  spec.aggregates = {query::AggregateSpec::CountStar("c")};
  spec.order_by = "province";

  SelectOptions head;
  SelectOptions travel;
  travel.snapshot_id = snap_before_delete;
  // Two rounds: the second is served from entries the first (and the
  // other view) populated.
  query::QueryResult head_first, travel_first;
  for (int round = 0; round < 2; ++round) {
    auto masked = table->Select(spec, head);
    ASSERT_TRUE(masked.ok());
    auto unmasked = table->Select(spec, travel);
    ASSERT_TRUE(unmasked.ok());
    for (size_t r = 0; r < masked->rows.size(); ++r) {
      EXPECT_EQ(std::get<int64_t>(masked->rows[r].fields[1]), 156)
          << "head must mask the 100 deleted rows per province";
      EXPECT_EQ(std::get<int64_t>(unmasked->rows[r].fields[1]), 256)
          << "time travel must see the pre-delete rows";
    }
    if (round == 0) {
      head_first = *masked;
      travel_first = *unmasked;
    } else {
      EXPECT_EQ(masked->rows, head_first.rows);
      EXPECT_EQ(unmasked->rows, travel_first.rows);
    }
  }
  EXPECT_GT(f.cache->GetStats().hits, 0u);
}

TEST(ScanParallelTest, SnapshotExpiryInvalidatesCollectedFiles) {
  ScanFixture f(/*scan_threads=*/4, /*cache_bytes=*/64ULL << 20);
  Table* table = f.CreateAndFill(/*rows_per_province=*/64);
  query::QuerySpec spec = ProbeQueries()[0];
  ASSERT_TRUE(table->Select(spec).ok());
  auto old_files = table->LiveFiles();
  ASSERT_TRUE(old_files.ok());

  f.clock.Advance(100 * sim::kSecond);
  auto updated = table->Update(query::Conjunction{}, "bytes",
                               format::Value(int64_t{1}));
  ASSERT_TRUE(updated.ok());
  // Re-populate cache entries for the old files via a time-travel read.
  SelectOptions travel;
  travel.as_of_timestamp = 0;
  ASSERT_TRUE(table->Select(spec, travel).ok());

  // Expiring the pre-update snapshot physically deletes the replaced
  // files; their cache entries must go too.
  ASSERT_TRUE(
      table->ExpireSnapshots(static_cast<int64_t>(f.clock.NowSeconds())).ok());
  for (const DataFileMeta& file : *old_files) {
    EXPECT_FALSE(f.cache->ContainsFile(file.path))
        << "expired file still cached: " << file.path;
  }
  // Head reads still work.
  ASSERT_TRUE(table->Select(spec).ok());
}

TEST(ScanParallelTest, CacheEvictsUnderByteBudget) {
  // A cache too small for the table must evict rather than grow.
  ScanFixture f(/*scan_threads=*/4, /*cache_bytes=*/16 << 10);
  Table* table = f.CreateAndFill();
  query::QuerySpec spec = ProbeQueries()[0];
  auto first = table->Select(spec);
  ASSERT_TRUE(first.ok());
  auto second = table->Select(spec);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->rows, first->rows);
  DecodedBlockCache::Stats stats = f.cache->GetStats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_cached, 16u << 10);
}

TEST(ScanParallelTest, PlogMigrationInvalidatesWholeCache) {
  core::StreamLakeOptions options;  // default tiering: cold after 1h
  core::StreamLake lake(options);
  ASSERT_NE(lake.block_cache(), nullptr);
  auto table = lake.lakehouse().CreateTable(
      "dpi", DpiSchema(), PartitionSpec::Identity("province"));
  ASSERT_TRUE(table.ok());
  std::vector<format::Row> rows;
  for (int i = 0; i < 300; ++i) {
    rows.push_back(DpiRow("http://a", i, i % 2 ? "beijing" : "hubei"));
  }
  ASSERT_TRUE((*table)->Insert(rows).ok());

  query::QuerySpec spec;
  spec.group_by = {"province"};
  spec.aggregates = {query::AggregateSpec::CountStar("c")};
  spec.order_by = "province";
  auto before = (*table)->Select(spec);
  ASSERT_TRUE(before.ok());
  ASSERT_GT(lake.block_cache()->GetStats().entries, 0u);

  // Everything goes cold; tiering seals + migrates the data PLogs, which
  // must flush the decoded blocks wholesale.
  lake.clock().Advance(2 * 3600 * sim::kSecond);
  ASSERT_TRUE(lake.RunBackgroundWork().ok());
  EXPECT_EQ(lake.block_cache()->GetStats().entries, 0u);

  // Reads repopulate from the cold tier and still agree.
  auto after = (*table)->Select(spec);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows, before->rows);
  EXPECT_GT(lake.block_cache()->GetStats().entries, 0u);
}

TEST(ScanParallelTest, DropTableHardPurgesCacheEntries) {
  ScanFixture f(/*scan_threads=*/4, /*cache_bytes=*/64ULL << 20);
  Table* table = f.CreateAndFill(/*rows_per_province=*/64);
  ASSERT_TRUE(table->Select(ProbeQueries()[0]).ok());
  auto files = table->LiveFiles();
  ASSERT_TRUE(files.ok());
  ASSERT_TRUE(f.lakehouse->DropTableHard("dpi").ok());
  for (const DataFileMeta& file : *files) {
    EXPECT_FALSE(f.cache->ContainsFile(file.path));
  }
}

TEST(ScanParallelTest, PoolWithoutCacheAndCacheWithoutPool) {
  // The two features are independent; each must work alone.
  ScanFixture pool_only(/*scan_threads=*/4, /*cache_bytes=*/0);
  ScanFixture cache_only(/*scan_threads=*/0, /*cache_bytes=*/64ULL << 20);
  ScanFixture neither(/*scan_threads=*/0, /*cache_bytes=*/0);
  Table* a = pool_only.CreateAndFill();
  Table* b = cache_only.CreateAndFill();
  Table* c = neither.CreateAndFill();
  for (const query::QuerySpec& spec : ProbeQueries()) {
    auto ra = a->Select(spec);
    auto rb = b->Select(spec);
    auto rc = c->Select(spec);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    ASSERT_TRUE(rc.ok());
    EXPECT_EQ(ra->rows, rc->rows);
    EXPECT_EQ(rb->rows, rc->rows);
  }
  SelectMetrics warm;
  ASSERT_TRUE(b->Select(ProbeQueries()[0], {}, &warm).ok());
  EXPECT_EQ(warm.data_bytes_read, 0u);
}

TEST(ScanParallelTest, OutOfMemoryStillFailsWithPoolAndCache) {
  ScanFixture f(/*scan_threads=*/4, /*cache_bytes=*/64ULL << 20);
  Table* table = f.CreateAndFill();
  query::QuerySpec spec;
  spec.aggregates = {query::AggregateSpec::CountStar("c")};
  SelectOptions options;
  options.pushdown = false;
  options.memory_budget_bytes = 1;  // nothing fits
  auto result = table->Select(spec, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsOutOfMemory()) << result.status().ToString();
}

}  // namespace
}  // namespace streamlake::table
