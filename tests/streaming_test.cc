#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/metrics.h"
#include "streaming/archive.h"
#include "streaming/consumer.h"
#include "streaming/dispatcher.h"
#include "streaming/producer.h"
#include "streaming/txn_manager.h"

namespace streamlake::streaming {
namespace {

struct ServiceFixture {
  sim::SimClock clock;
  storage::StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
  sim::NetworkModel bus{sim::NetworkProfile::Rdma(), &clock};
  kv::KvStore index;
  kv::KvStore meta;
  std::unique_ptr<storage::PlogStore> plogs;
  std::unique_ptr<stream::StreamObjectManager> objects;
  std::unique_ptr<StreamDispatcher> dispatcher;

  explicit ServiceFixture(uint32_t workers = 3) {
    pool.AddCluster(3, 2, 256 << 20);
    storage::PlogStoreConfig config;
    config.num_shards = 16;
    config.plog.capacity = 16 << 20;
    config.plog.stripe_unit = 4096;
    config.plog.redundancy = storage::RedundancyConfig::Replication(3);
    plogs = std::make_unique<storage::PlogStore>(&pool, config, &clock);
    objects = std::make_unique<stream::StreamObjectManager>(
        plogs.get(), &index, &clock, nullptr, 0);
    dispatcher = std::make_unique<StreamDispatcher>(objects.get(), &meta,
                                                    &bus, &clock, workers);
  }
};

TEST(DispatcherTest, CreateTopicDistributesStreams) {
  ServiceFixture f(3);
  TopicConfig config;
  config.stream_num = 6;
  ASSERT_TRUE(f.dispatcher->CreateTopic("logs", config).ok());
  EXPECT_TRUE(f.dispatcher->HasTopic("logs"));
  EXPECT_EQ(*f.dispatcher->NumStreams("logs"), 6u);
  // Round-robin: each of 3 workers handles 2 streams.
  for (uint32_t w = 0; w < 3; ++w) {
    EXPECT_EQ(f.dispatcher->worker(w)->num_streams(), 2u);
  }
  EXPECT_TRUE(f.dispatcher->CreateTopic("logs", config).IsAlreadyExists());

  TopicConfig empty;
  empty.stream_num = 0;
  EXPECT_TRUE(f.dispatcher->CreateTopic("bad", empty).IsInvalidArgument());
}

TEST(DispatcherTest, RoutingIsStableForKeys) {
  ServiceFixture f;
  TopicConfig config;
  config.stream_num = 4;
  ASSERT_TRUE(f.dispatcher->CreateTopic("t", config).ok());
  auto r1 = f.dispatcher->RouteProduce("t", "user-123");
  auto r2 = f.dispatcher->RouteProduce("t", "user-123");
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->stream_index, r2->stream_index);
  EXPECT_TRUE(f.dispatcher->RouteProduce("missing", "k").status().IsNotFound());
}

TEST(DispatcherTest, EmptyKeysSpreadRoundRobin) {
  ServiceFixture f;
  TopicConfig config;
  config.stream_num = 4;
  ASSERT_TRUE(f.dispatcher->CreateTopic("t", config).ok());
  std::set<uint32_t> hit;
  for (int i = 0; i < 4; ++i) {
    auto route = f.dispatcher->RouteProduce("t", "");
    ASSERT_TRUE(route.ok());
    hit.insert(route->stream_index);
  }
  EXPECT_EQ(hit.size(), 4u);
}

TEST(DispatcherTest, DeleteTopicDestroysStreamObjects) {
  ServiceFixture f;
  TopicConfig config;
  config.stream_num = 3;
  ASSERT_TRUE(f.dispatcher->CreateTopic("t", config).ok());
  EXPECT_EQ(f.objects->num_objects(), 3u);
  ASSERT_TRUE(f.dispatcher->DeleteTopic("t").ok());
  EXPECT_EQ(f.objects->num_objects(), 0u);
  EXPECT_FALSE(f.dispatcher->HasTopic("t"));
  EXPECT_TRUE(f.dispatcher->DeleteTopic("t").IsNotFound());
}

TEST(DispatcherTest, ResizeWorkersRebalancesWithoutDataMigration) {
  ServiceFixture f(2);
  TopicConfig config;
  config.stream_num = 8;
  ASSERT_TRUE(f.dispatcher->CreateTopic("t", config).ok());

  Producer producer(f.dispatcher.get());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(producer.Send("t", Message("k" + std::to_string(i), "v")).ok());
  }
  uint64_t storage_writes_before = f.pool.AggregateStats().write_ops;

  ASSERT_TRUE(f.dispatcher->ResizeWorkers(8).ok());
  EXPECT_EQ(f.dispatcher->num_workers(), 8u);
  for (uint32_t w = 0; w < 8; ++w) {
    EXPECT_EQ(f.dispatcher->worker(w)->num_streams(), 1u);
  }
  // Scaling must not touch stream data: zero new pool writes beyond the
  // KV metadata (which lives off-pool here).
  EXPECT_EQ(f.pool.AggregateStats().write_ops, storage_writes_before);

  // Shrink back; consumers still see all data.
  ASSERT_TRUE(f.dispatcher->ResizeWorkers(2).ok());
  Consumer consumer(f.dispatcher.get(), &f.meta, "g");
  ASSERT_TRUE(consumer.Subscribe("t").ok());
  auto polled = consumer.Poll(1000);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->size(), 100u);

  EXPECT_TRUE(f.dispatcher->ResizeWorkers(0).IsInvalidArgument());
}

TEST(DispatcherTest, DeadWorkerStreamsFailOver) {
  ServiceFixture f(3);
  TopicConfig config;
  config.stream_num = 6;
  ASSERT_TRUE(f.dispatcher->CreateTopic("t", config).ok());
  Producer producer(f.dispatcher.get());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(producer.Send("t", Message("k" + std::to_string(i), "v")).ok());
  }

  // Workers 1 and 2 keep heartbeating; worker 0 goes silent.
  f.clock.Advance(30 * sim::kSecond);
  f.dispatcher->Heartbeat(1);
  f.dispatcher->Heartbeat(2);
  auto sweep = f.dispatcher->SweepDeadWorkers(10 * sim::kSecond);
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  EXPECT_EQ(sweep->dead_workers, 1u);
  EXPECT_EQ(sweep->streams_reassigned, 2u);  // worker 0 held 2 of 6 streams
  EXPECT_EQ(f.dispatcher->worker(0)->num_streams(), 0u);

  // All data remains consumable through the surviving workers — no
  // migration happened, only the topology changed.
  Consumer consumer(f.dispatcher.get(), &f.meta, "g");
  ASSERT_TRUE(consumer.Subscribe("t").ok());
  auto polled = consumer.Poll(1000);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->size(), 60u);

  // A healthy fleet sweeps clean.
  f.dispatcher->Heartbeat(0);
  f.dispatcher->Heartbeat(1);
  f.dispatcher->Heartbeat(2);
  auto healthy = f.dispatcher->SweepDeadWorkers(10 * sim::kSecond);
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy->dead_workers, 0u);

  // Every worker dead is an error, not a silent data loss.
  f.clock.Advance(60 * sim::kSecond);
  EXPECT_TRUE(f.dispatcher->SweepDeadWorkers(10 * sim::kSecond)
                  .status()
                  .IsResourceExhausted());
}

TEST(DispatcherTest, AddStreamsScalesPartitions) {
  ServiceFixture f;
  TopicConfig config;
  config.stream_num = 4;
  ASSERT_TRUE(f.dispatcher->CreateTopic("t", config).ok());
  ASSERT_TRUE(f.dispatcher->AddStreams("t", 12).ok());
  EXPECT_EQ(*f.dispatcher->NumStreams("t"), 16u);
  EXPECT_EQ(f.dispatcher->GetTopicConfig("t")->stream_num, 16u);
}

TEST(ProducerConsumerTest, EndToEndDelivery) {
  ServiceFixture f;
  TopicConfig config;
  config.stream_num = 3;
  ASSERT_TRUE(f.dispatcher->CreateTopic("topic_streamlake_test", config).ok());

  Producer producer(f.dispatcher.get());
  Message msg("greeting", "Hello world");
  ASSERT_TRUE(producer.Send("topic_streamlake_test", msg).ok());

  Consumer consumer(f.dispatcher.get(), &f.meta, "app");
  ASSERT_TRUE(consumer.Subscribe("topic_streamlake_test").ok());
  auto polled = consumer.Poll();
  ASSERT_TRUE(polled.ok());
  ASSERT_EQ(polled->size(), 1u);
  EXPECT_EQ((*polled)[0].message.value, "Hello world");

  // Nothing new: empty poll.
  auto again = consumer.Poll();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->empty());
}

TEST(ProducerConsumerTest, PerKeyOrderPreserved) {
  ServiceFixture f;
  TopicConfig config;
  config.stream_num = 4;
  ASSERT_TRUE(f.dispatcher->CreateTopic("t", config).ok());
  Producer producer(f.dispatcher.get());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        producer.Send("t", Message("user-7", "m" + std::to_string(i))).ok());
  }
  Consumer consumer(f.dispatcher.get(), &f.meta, "g");
  ASSERT_TRUE(consumer.Subscribe("t").ok());
  auto polled = consumer.Poll(1000);
  ASSERT_TRUE(polled.ok());
  ASSERT_EQ(polled->size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ((*polled)[i].message.value, "m" + std::to_string(i));
  }
}

TEST(ProducerConsumerTest, SendBatchGroupsByStreamObject) {
  ServiceFixture f;
  TopicConfig config;
  config.stream_num = 4;
  ASSERT_TRUE(f.dispatcher->CreateTopic("t", config).ok());
  Producer producer(f.dispatcher.get());

  Counter* group_appends =
      MetricsRegistry::Global().GetCounter("stream.object.group_appends");
  uint64_t groups_before = group_appends->Value();

  // Keys spread over all 4 streams; the batch must regroup them into one
  // AppendBatch per stream object, preserving per-key order.
  std::vector<Message> batch;
  for (int i = 0; i < 60; ++i) {
    batch.emplace_back("user-" + std::to_string(i % 8),
                       "m" + std::to_string(i));
  }
  ASSERT_TRUE(producer.SendBatch("t", batch).ok());
  // One group append per routed stream object, not one per message.
  uint64_t groups = group_appends->Value() - groups_before;
  EXPECT_GE(groups, 1u);
  EXPECT_LE(groups, 4u);

  Consumer consumer(f.dispatcher.get(), &f.meta, "g");
  ASSERT_TRUE(consumer.Subscribe("t").ok());
  auto polled = consumer.Poll(1000);
  ASSERT_TRUE(polled.ok());
  ASSERT_EQ(polled->size(), 60u);
  // Per key, values arrive in send order.
  std::map<std::string, int> last_index;
  for (const auto& record : *polled) {
    int index = std::stoi(record.message.value.substr(1));
    auto [it, inserted] = last_index.try_emplace(record.message.key, index);
    if (!inserted) {
      EXPECT_LT(it->second, index) << "key " << record.message.key;
      it->second = index;
    }
  }
}

TEST(ProducerConsumerTest, SendBatchInterleavesWithSend) {
  ServiceFixture f;
  TopicConfig config;
  config.stream_num = 2;
  ASSERT_TRUE(f.dispatcher->CreateTopic("t", config).ok());
  Producer producer(f.dispatcher.get());

  // Single-key traffic alternating between the two paths shares one
  // producer-sequence counter, so nothing is dropped as a duplicate.
  ASSERT_TRUE(producer.Send("t", Message("k", "m0")).ok());
  ASSERT_TRUE(
      producer.SendBatch("t", {Message("k", "m1"), Message("k", "m2")}).ok());
  ASSERT_TRUE(producer.Send("t", Message("k", "m3")).ok());

  Consumer consumer(f.dispatcher.get(), &f.meta, "g");
  ASSERT_TRUE(consumer.Subscribe("t").ok());
  auto polled = consumer.Poll(100);
  ASSERT_TRUE(polled.ok());
  ASSERT_EQ(polled->size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ((*polled)[i].message.value, "m" + std::to_string(i));
  }
}

TEST(ProducerConsumerTest, ResendIsDeduplicated) {
  ServiceFixture f;
  TopicConfig config;
  config.stream_num = 2;
  ASSERT_TRUE(f.dispatcher->CreateTopic("t", config).ok());
  Producer producer(f.dispatcher.get());
  ASSERT_TRUE(producer.Send("t", Message("k", "once")).ok());
  ASSERT_TRUE(producer.ResendLast().ok());
  ASSERT_TRUE(producer.ResendLast().ok());

  Consumer consumer(f.dispatcher.get(), &f.meta, "g");
  ASSERT_TRUE(consumer.Subscribe("t").ok());
  auto polled = consumer.Poll();
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->size(), 1u);

  Producer empty(f.dispatcher.get());
  EXPECT_TRUE(empty.ResendLast().status().IsInvalidArgument());
}

TEST(ProducerConsumerTest, CommittedOffsetsSurviveRestart) {
  ServiceFixture f;
  TopicConfig config;
  config.stream_num = 2;
  ASSERT_TRUE(f.dispatcher->CreateTopic("t", config).ok());
  Producer producer(f.dispatcher.get());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(producer.Send("t", Message("k", "v" + std::to_string(i))).ok());
  }
  {
    Consumer consumer(f.dispatcher.get(), &f.meta, "group-a");
    ASSERT_TRUE(consumer.Subscribe("t").ok());
    auto polled = consumer.Poll(4);
    ASSERT_TRUE(polled.ok());
    EXPECT_EQ(polled->size(), 4u);
    ASSERT_TRUE(consumer.CommitOffsets().ok());
  }
  // "Restarted" consumer in the same group resumes past the 4 committed.
  Consumer resumed(f.dispatcher.get(), &f.meta, "group-a");
  ASSERT_TRUE(resumed.Subscribe("t").ok());
  auto polled = resumed.Poll(100);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->size(), 6u);

  // A different group starts from scratch.
  Consumer fresh(f.dispatcher.get(), &f.meta, "group-b");
  ASSERT_TRUE(fresh.Subscribe("t").ok());
  auto all = fresh.Poll(100);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 10u);
}

TEST(ProducerConsumerTest, SeekToTimestampSkipsOldMessages) {
  ServiceFixture f;
  TopicConfig config;
  config.stream_num = 2;
  ASSERT_TRUE(f.dispatcher->CreateTopic("t", config).ok());
  Producer producer(f.dispatcher.get());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(producer
                    .Send("t", Message("k" + std::to_string(i),
                                       "v" + std::to_string(i), 1000 + i))
                    .ok());
  }
  Consumer consumer(f.dispatcher.get(), &f.meta, "g");
  ASSERT_TRUE(consumer.Subscribe("t").ok());
  ASSERT_TRUE(consumer.SeekToTimestamp("t", 1030).ok());
  auto polled = consumer.Poll(1000);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->size(), 10u);  // only messages with ts >= 1030
  for (const auto& consumed : *polled) {
    EXPECT_GE(consumed.message.timestamp, 1030);
  }
  EXPECT_TRUE(consumer.SeekToTimestamp("unknown", 0).IsInvalidArgument());
}

TEST(TxnTest, CommittedTransactionIsAtomicallyVisible) {
  ServiceFixture f;
  TopicConfig config;
  config.stream_num = 2;
  ASSERT_TRUE(f.dispatcher->CreateTopic("t", config).ok());

  TransactionManager txns(f.dispatcher.get(), &f.meta);
  auto txn = txns.Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(txns.Send(*txn, "t", Message("a", "1")).ok());
  ASSERT_TRUE(txns.Send(*txn, "t", Message("b", "2")).ok());

  // Before commit: invisible.
  Consumer consumer(f.dispatcher.get(), &f.meta, "g");
  ASSERT_TRUE(consumer.Subscribe("t").ok());
  EXPECT_TRUE(consumer.Poll()->empty());
  EXPECT_EQ(*txns.GetState(*txn), TxnState::kOpen);

  ASSERT_TRUE(txns.Commit(*txn).ok());
  EXPECT_EQ(*txns.GetState(*txn), TxnState::kCommitted);
  auto polled = consumer.Poll();
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->size(), 2u);

  // Committed transactions cannot be re-committed or aborted.
  EXPECT_TRUE(txns.Commit(*txn).IsInvalidArgument());
  EXPECT_TRUE(txns.Abort(*txn).IsInvalidArgument());
}

TEST(TxnTest, AbortDropsEverything) {
  ServiceFixture f;
  TopicConfig config;
  config.stream_num = 1;
  ASSERT_TRUE(f.dispatcher->CreateTopic("t", config).ok());
  TransactionManager txns(f.dispatcher.get(), &f.meta);
  auto txn = txns.Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(txns.Send(*txn, "t", Message("a", "1")).ok());
  ASSERT_TRUE(txns.Abort(*txn).ok());
  EXPECT_EQ(*txns.GetState(*txn), TxnState::kAborted);
  EXPECT_TRUE(txns.Send(*txn, "t", Message("b", "2")).IsInvalidArgument());

  Consumer consumer(f.dispatcher.get(), &f.meta, "g");
  ASSERT_TRUE(consumer.Subscribe("t").ok());
  EXPECT_TRUE(consumer.Poll()->empty());
}

TEST(TxnTest, PrepareFailureAbortsBeforePublishing) {
  ServiceFixture f;
  TopicConfig config;
  config.stream_num = 1;
  ASSERT_TRUE(f.dispatcher->CreateTopic("t", config).ok());
  TransactionManager txns(f.dispatcher.get(), &f.meta);
  auto txn = txns.Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(txns.Send(*txn, "t", Message("a", "good")).ok());
  ASSERT_TRUE(txns.Send(*txn, "nonexistent-topic", Message("b", "bad")).ok());
  EXPECT_TRUE(txns.Commit(*txn).IsAborted());
  EXPECT_EQ(*txns.GetState(*txn), TxnState::kAborted);

  // Atomicity: the good message must not have leaked out.
  Consumer consumer(f.dispatcher.get(), &f.meta, "g");
  ASSERT_TRUE(consumer.Subscribe("t").ok());
  EXPECT_TRUE(consumer.Poll()->empty());
}

TEST(ArchiveTest, RowToColumnarArchiveShrinksData) {
  ServiceFixture f;
  kv::KvStore archive_index;
  storage::ObjectStore archive_store(f.plogs.get(), &archive_index);

  TopicConfig config;
  config.stream_num = 2;
  config.archive.enabled = true;
  config.archive.archive_size_mb = 0;  // trigger immediately
  config.archive.row_2_col = true;
  ASSERT_TRUE(f.dispatcher->CreateTopic("t", config).ok());

  Producer producer(f.dispatcher.get());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(producer
                    .Send("t", Message("sensor-" + std::to_string(i % 5),
                                       std::string(200, 'z'), 1000 + i))
                    .ok());
  }
  ArchiveService archive(f.dispatcher.get(), &archive_store, &f.meta);
  auto stats = archive.Run("t");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->archived_records, 500u);
  EXPECT_EQ(stats->files_written, 2u);  // one per stream
  EXPECT_LT(stats->archived_bytes, stats->source_bytes / 2);

  // Second run: nothing new to archive.
  auto again = archive.Run("t");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->archived_records, 0u);

  auto files = archive_store.List("/archive/t/");
  EXPECT_EQ(files.size(), 2u);
}

TEST(ArchiveTest, RowFormatArchiveWhenColStoreDisabled) {
  ServiceFixture f;
  kv::KvStore archive_index;
  storage::ObjectStore archive_store(f.plogs.get(), &archive_index);
  TopicConfig config;
  config.stream_num = 1;
  config.archive.enabled = true;
  config.archive.archive_size_mb = 0;
  config.archive.row_2_col = false;  // keep rows as rows
  ASSERT_TRUE(f.dispatcher->CreateTopic("t", config).ok());
  Producer producer(f.dispatcher.get());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(producer.Send("t", Message("k", std::string(100, 'r'))).ok());
  }
  ArchiveService archive(f.dispatcher.get(), &archive_store, &f.meta);
  auto stats = archive.Run("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->archived_records, 100u);
  auto files = archive_store.List("/archive/t/");
  ASSERT_EQ(files.size(), 1u);
  EXPECT_TRUE(files[0].ends_with(".rows"));
  // Row format carries the payload essentially verbatim (no columnar
  // compression win).
  EXPECT_GT(stats->archived_bytes, stats->source_bytes / 2);
}

TEST(ArchiveTest, DisabledTopicNotArchivedUnlessForced) {
  ServiceFixture f;
  kv::KvStore archive_index;
  storage::ObjectStore archive_store(f.plogs.get(), &archive_index);
  TopicConfig config;
  config.stream_num = 1;
  config.archive.enabled = false;
  ASSERT_TRUE(f.dispatcher->CreateTopic("t", config).ok());
  Producer producer(f.dispatcher.get());
  ASSERT_TRUE(producer.Send("t", Message("k", "v")).ok());

  ArchiveService archive(f.dispatcher.get(), &archive_store, &f.meta);
  auto stats = archive.Run("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->archived_records, 0u);

  auto forced = archive.Run("t", /*force=*/true);
  ASSERT_TRUE(forced.ok());
  EXPECT_EQ(forced->archived_records, 1u);
}

}  // namespace
}  // namespace streamlake::streaming
