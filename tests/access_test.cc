#include <gtest/gtest.h>

#include "access/access_control.h"
#include "access/block_service.h"
#include "access/nas_service.h"
#include "access/s3_gateway.h"
#include "common/random.h"

namespace streamlake::access {
namespace {

struct AccessFixture {
  sim::SimClock clock;
  storage::StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
  sim::NetworkModel network{sim::NetworkProfile::Tcp(), &clock};
  kv::KvStore index;
  std::unique_ptr<storage::PlogStore> plogs;
  std::unique_ptr<storage::ObjectStore> objects;
  AccessController acl;

  AccessFixture() {
    pool.AddCluster(3, 2, 256 << 20);
    storage::PlogStoreConfig config;
    config.num_shards = 8;
    config.plog.capacity = 16 << 20;
    config.plog.redundancy = storage::RedundancyConfig::Replication(3);
    plogs = std::make_unique<storage::PlogStore>(&pool, config, &clock);
    objects = std::make_unique<storage::ObjectStore>(plogs.get(), &index);
  }
};

// ---------------- AccessController ----------------

TEST(AccessControlTest, AuthenticateAndAuthorize) {
  AccessController acl;
  std::string token = acl.CreatePrincipal("alice");
  auto who = acl.Authenticate(token);
  ASSERT_TRUE(who.ok());
  EXPECT_EQ(*who, "alice");
  EXPECT_TRUE(acl.Authenticate("tok-bogus").status().IsInvalidArgument());

  // No grants yet.
  EXPECT_FALSE(acl.Authorize("alice", "/data/x", Permission::kRead));
  ASSERT_TRUE(acl.Grant("alice", "/data/", Permission::kRead).ok());
  EXPECT_TRUE(acl.Authorize("alice", "/data/x", Permission::kRead));
  EXPECT_FALSE(acl.Authorize("alice", "/data/x", Permission::kWrite));
  EXPECT_FALSE(acl.Authorize("alice", "/other/x", Permission::kRead));

  // Admin implies everything under the prefix.
  ASSERT_TRUE(acl.Grant("alice", "/admin/", Permission::kAdmin).ok());
  EXPECT_TRUE(acl.Authorize("alice", "/admin/sub", Permission::kWrite));

  // CheckRequest combines both steps.
  EXPECT_TRUE(acl.CheckRequest(token, "/data/x", Permission::kRead).ok());
  EXPECT_TRUE(acl.CheckRequest(token, "/data/x", Permission::kWrite)
                  .IsInvalidArgument());
}

TEST(AccessControlTest, RevokeGrantAndPrincipal) {
  AccessController acl;
  std::string token = acl.CreatePrincipal("bob");
  ASSERT_TRUE(acl.Grant("bob", "/d/", Permission::kRead).ok());
  ASSERT_TRUE(acl.Grant("bob", "/d/", Permission::kWrite).ok());
  ASSERT_TRUE(acl.Revoke("bob", "/d/", Permission::kWrite).ok());
  EXPECT_TRUE(acl.Authorize("bob", "/d/x", Permission::kRead));
  EXPECT_FALSE(acl.Authorize("bob", "/d/x", Permission::kWrite));
  EXPECT_TRUE(acl.Revoke("bob", "/nope/", Permission::kRead).IsNotFound());

  ASSERT_TRUE(acl.RevokePrincipal("bob").ok());
  EXPECT_TRUE(acl.Authenticate(token).status().IsInvalidArgument());
  EXPECT_TRUE(acl.Grant("bob", "/d/", Permission::kRead).IsNotFound());
}

TEST(AccessControlTest, GrantToUnknownPrincipalFails) {
  AccessController acl;
  EXPECT_TRUE(acl.Grant("ghost", "/", Permission::kRead).IsNotFound());
}

// ---------------- S3 gateway ----------------

TEST(S3GatewayTest, BucketLifecycleWithAuth) {
  AccessFixture f;
  S3Gateway s3(f.objects.get(), &f.acl, &f.network);
  std::string admin = f.acl.CreatePrincipal("admin");
  ASSERT_TRUE(f.acl.Grant("admin", "/s3/", Permission::kAdmin).ok());

  ASSERT_TRUE(s3.CreateBucket(admin, "logs").ok());
  EXPECT_TRUE(s3.CreateBucket(admin, "logs").IsAlreadyExists());
  EXPECT_TRUE(s3.PutObject(admin, "missing", "k", ByteView("v")).IsNotFound());

  ASSERT_TRUE(s3.PutObject(admin, "logs", "2022/07/03.log",
                           ByteView("log line")).ok());
  auto data = s3.GetObject(admin, "logs", "2022/07/03.log");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(BytesToString(*data), "log line");
  EXPECT_EQ(*s3.HeadObject(admin, "logs", "2022/07/03.log"), 8u);

  ASSERT_TRUE(s3.PutObject(admin, "logs", "2022/07/04.log", ByteView("x")).ok());
  auto keys = s3.ListObjects(admin, "logs", "2022/07/");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), 2u);

  ASSERT_TRUE(s3.DeleteObject(admin, "logs", "2022/07/03.log").ok());
  EXPECT_TRUE(s3.GetObject(admin, "logs", "2022/07/03.log").status()
                  .IsNotFound());
}

TEST(S3GatewayTest, UnauthorizedRequestsRejected) {
  AccessFixture f;
  S3Gateway s3(f.objects.get(), &f.acl, &f.network);
  std::string admin = f.acl.CreatePrincipal("admin");
  ASSERT_TRUE(f.acl.Grant("admin", "/s3/", Permission::kAdmin).ok());
  ASSERT_TRUE(s3.CreateBucket(admin, "secure").ok());
  ASSERT_TRUE(s3.PutObject(admin, "secure", "secret", ByteView("42")).ok());

  // Reader can read but not write.
  std::string reader = f.acl.CreatePrincipal("reader");
  ASSERT_TRUE(f.acl.Grant("reader", "/s3/secure/", Permission::kRead).ok());
  EXPECT_TRUE(s3.GetObject(reader, "secure", "secret").ok());
  EXPECT_TRUE(s3.PutObject(reader, "secure", "secret", ByteView("evil"))
                  .IsInvalidArgument());
  // Stranger can do nothing; bogus tokens fail authentication.
  std::string stranger = f.acl.CreatePrincipal("stranger");
  EXPECT_TRUE(s3.GetObject(stranger, "secure", "secret").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(s3.GetObject("tok-fake", "secure", "secret").status()
                  .IsInvalidArgument());
}

// ---------------- Block service ----------------

TEST(BlockServiceTest, ThinProvisionedVolume) {
  AccessFixture f;
  BlockService blocks(&f.pool, &f.acl, /*chunk_bytes=*/1 << 20);
  std::string token = f.acl.CreatePrincipal("vm");
  ASSERT_TRUE(f.acl.Grant("vm", "/block/", Permission::kAdmin).ok());

  auto lun = blocks.CreateVolume(token, 64ULL << 20);
  ASSERT_TRUE(lun.ok());
  // Thin: nothing allocated yet.
  EXPECT_EQ(*blocks.AllocatedBytes(token, *lun), 0u);

  // Unwritten regions read back as zeros.
  auto zeros = blocks.Read(token, *lun, 10 << 20, 4096);
  ASSERT_TRUE(zeros.ok());
  EXPECT_EQ(*zeros, Bytes(4096, 0));

  Random rng(3);
  Bytes data;
  for (int i = 0; i < 100000; ++i) {
    data.push_back(static_cast<uint8_t>(rng.Uniform(256)));
  }
  // Write crossing a chunk boundary.
  uint64_t offset = (1 << 20) - 5000;
  ASSERT_TRUE(blocks.Write(token, *lun, offset, ByteView(data)).ok());
  auto read = blocks.Read(token, *lun, offset, data.size());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  // Two 1 MB chunks x 2 replicas allocated.
  EXPECT_EQ(*blocks.AllocatedBytes(token, *lun), 4ULL << 20);

  EXPECT_TRUE(blocks.Write(token, *lun, 64ULL << 20, ByteView("x"))
                  .IsInvalidArgument());
  ASSERT_TRUE(blocks.DeleteVolume(token, *lun).ok());
  EXPECT_TRUE(blocks.Read(token, *lun, 0, 1).status().IsNotFound());
  EXPECT_EQ(f.pool.AllocatedBytes(), 0u);
}

TEST(BlockServiceTest, ReplicaSurvivesNodeFailure) {
  AccessFixture f;
  BlockService blocks(&f.pool, &f.acl, 1 << 20, /*replication=*/2);
  std::string token = f.acl.CreatePrincipal("vm");
  ASSERT_TRUE(f.acl.Grant("vm", "/block/", Permission::kAdmin).ok());
  auto lun = blocks.CreateVolume(token, 8 << 20);
  ASSERT_TRUE(lun.ok());
  ASSERT_TRUE(blocks.Write(token, *lun, 0, ByteView("persistent")).ok());
  f.pool.SetNodeFailed(0, true);
  auto read = blocks.Read(token, *lun, 0, 10);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(BytesToString(*read), "persistent");
}

// ---------------- NAS service ----------------

TEST(NasServiceTest, FileLifecycle) {
  AccessFixture f;
  NasService nas(f.objects.get(), &f.acl, &f.clock);
  std::string token = f.acl.CreatePrincipal("app");
  ASSERT_TRUE(f.acl.Grant("app", "/nas/", Permission::kAdmin).ok());

  ASSERT_TRUE(nas.MakeDirectory(token, "/exports").ok());
  EXPECT_TRUE(nas.MakeDirectory(token, "/exports").IsAlreadyExists());

  auto handle = nas.Open(token, "/exports/report.csv", /*for_write=*/true);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(nas.WriteAt(*handle, 0, ByteView("a,b,c\n")).ok());
  ASSERT_TRUE(nas.WriteAt(*handle, 6, ByteView("1,2,3\n")).ok());
  ASSERT_TRUE(nas.Close(*handle).ok());
  EXPECT_EQ(nas.open_handles(), 0u);

  auto reader = nas.Open(token, "/exports/report.csv", /*for_write=*/false);
  ASSERT_TRUE(reader.ok());
  auto contents = nas.ReadAt(*reader, 0, 100);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(BytesToString(*contents), "a,b,c\n1,2,3\n");
  // Writes through a read-only handle fail.
  EXPECT_TRUE(nas.WriteAt(*reader, 0, ByteView("x")).IsInvalidArgument());
  ASSERT_TRUE(nas.Close(*reader).ok());
  EXPECT_TRUE(nas.Close(*reader).IsInvalidArgument());  // stale handle

  auto attrs = nas.GetAttributes(token, "/exports/report.csv");
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->size, 12u);
  EXPECT_FALSE(attrs->is_directory);
  EXPECT_TRUE(nas.GetAttributes(token, "/exports")->is_directory);

  auto listing = nas.ReadDirectory(token, "/exports");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 1u);
  EXPECT_EQ((*listing)[0], "report.csv");

  ASSERT_TRUE(nas.Remove(token, "/exports/report.csv").ok());
  EXPECT_TRUE(nas.Open(token, "/exports/report.csv", false).status()
                  .IsNotFound());
}

TEST(NasServiceTest, OpenMissingForReadFails) {
  AccessFixture f;
  NasService nas(f.objects.get(), &f.acl, &f.clock);
  std::string token = f.acl.CreatePrincipal("app");
  ASSERT_TRUE(f.acl.Grant("app", "/nas/", Permission::kAdmin).ok());
  EXPECT_TRUE(nas.Open(token, "/missing", false).status().IsNotFound());
  // Unauthorized principal cannot even probe.
  std::string other = f.acl.CreatePrincipal("other");
  EXPECT_TRUE(nas.Open(other, "/missing", false).status().IsInvalidArgument());
}

}  // namespace
}  // namespace streamlake::access
