// The plan-tree query path: parser extensions (joins, subqueries, !=,
// BETWEEN, positioned errors), planner lowering, and the hash-join
// pipeline — golden results against hand-computed joins, parallel ==
// serial byte-identity, and multi-table snapshot pinning.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/threadpool.h"
#include "query/plan.h"
#include "query/row_less.h"
#include "query/sql_parser.h"
#include "table/block_cache.h"
#include "table/lakehouse.h"
#include "table/plan_runner.h"

namespace streamlake::table {
namespace {

format::Schema LogsSchema() {
  return format::Schema{{"url", format::DataType::kString},
                        {"start_time", format::DataType::kInt64},
                        {"province", format::DataType::kString},
                        {"user_id", format::DataType::kInt64},
                        {"bytes", format::DataType::kInt64}};
}

format::Schema UsersSchema() {
  return format::Schema{{"user_id", format::DataType::kInt64},
                        {"name", format::DataType::kString},
                        {"tier", format::DataType::kString}};
}

struct UserRow {
  int64_t user_id;
  std::string name;
  std::string tier;
};

struct LogRow {
  std::string url;
  int64_t start_time;
  std::string province;
  int64_t user_id;
  int64_t bytes;
};

// The fixture's deterministic data, mirrored in plain structs so tests
// can hand-compute expected join results with ordinary loops.
std::vector<LogRow> MakeLogs(int rows_per_province = 32) {
  std::vector<LogRow> logs;
  int province_index = 0;
  for (const char* province : {"beijing", "hubei"}) {
    for (int i = 0; i < rows_per_province; ++i) {
      logs.push_back({"http://site/" + std::to_string(i % 5),
                      province_index * 1000 + i, province, i % 8, 10 + i});
    }
    ++province_index;
  }
  return logs;
}

std::vector<UserRow> MakeUsers() {
  std::vector<UserRow> users;
  for (int64_t id = 0; id < 6; ++id) {
    users.push_back({id, "user" + std::to_string(id),
                     id % 2 ? "gold" : "silver"});
  }
  // A duplicate build key: user 0 appears twice (tests bucket
  // multiplicity in the inner join).
  users.push_back({0, "dup0", "gold"});
  return users;
}

// Small files (64 rows, 32-row groups) so the logs table spreads over
// several files and the probe scan fans out.
struct JoinFixture {
  sim::SimClock clock;
  storage::StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
  sim::NetworkModel compute_link{sim::NetworkProfile::Rdma(), &clock};
  kv::KvStore object_index;
  kv::KvStore meta_cache;
  std::unique_ptr<ThreadPool> scan_pool;
  std::unique_ptr<DecodedBlockCache> cache;
  std::unique_ptr<storage::PlogStore> plogs;
  std::unique_ptr<storage::ObjectStore> objects;
  std::unique_ptr<MetadataStore> meta;
  std::unique_ptr<LakehouseService> lakehouse;

  explicit JoinFixture(int scan_threads = 4,
                       uint64_t cache_bytes = 64ULL << 20) {
    pool.AddCluster(3, 2, 512 << 20);
    storage::PlogStoreConfig config;
    config.num_shards = 16;
    config.plog.capacity = 32 << 20;
    config.plog.stripe_unit = 4096;
    config.plog.redundancy = storage::RedundancyConfig::Replication(3);
    plogs = std::make_unique<storage::PlogStore>(&pool, config, &clock);
    objects = std::make_unique<storage::ObjectStore>(plogs.get(),
                                                     &object_index);
    meta = std::make_unique<MetadataStore>(objects.get(), &meta_cache,
                                           MetadataMode::kAccelerated);
    if (scan_threads > 0) {
      scan_pool = std::make_unique<ThreadPool>(scan_threads, "test.scan");
    }
    if (cache_bytes > 0) {
      cache = std::make_unique<DecodedBlockCache>(cache_bytes);
    }
    TableOptions options;
    options.max_rows_per_file = 64;
    options.file_options.rows_per_group = 32;
    lakehouse = std::make_unique<LakehouseService>(
        meta.get(), objects.get(), &clock, &compute_link, options,
        scan_pool.get(), cache.get());
  }

  void CreateAndFill(int rows_per_province = 32) {
    auto logs_table = lakehouse->CreateTable(
        "logs", LogsSchema(), PartitionSpec::Identity("province"));
    ASSERT_TRUE(logs_table.ok()) << logs_table.status().ToString();
    std::vector<format::Row> rows;
    for (const LogRow& log : MakeLogs(rows_per_province)) {
      format::Row row;
      row.fields = {format::Value(log.url), format::Value(log.start_time),
                    format::Value(log.province), format::Value(log.user_id),
                    format::Value(log.bytes)};
      rows.push_back(std::move(row));
    }
    ASSERT_TRUE((*logs_table)->Insert(rows).ok());

    auto users_table =
        lakehouse->CreateTable("users", UsersSchema(), PartitionSpec::None());
    ASSERT_TRUE(users_table.ok()) << users_table.status().ToString();
    rows.clear();
    for (const UserRow& user : MakeUsers()) {
      format::Row row;
      row.fields = {format::Value(user.user_id), format::Value(user.name),
                    format::Value(user.tier)};
      rows.push_back(std::move(row));
    }
    ASSERT_TRUE((*users_table)->Insert(rows).ok());
  }

  Result<query::QueryResult> Sql(const std::string& sql,
                                 const SelectOptions& options = {},
                                 SelectMetrics* metrics = nullptr) {
    SL_ASSIGN_OR_RETURN(query::SqlStatement parsed, query::ParseSql(sql));
    return lakehouse->Query(parsed, options, metrics);
  }
};

// ---------------------------------------------------------------------
// Parser round-trips.

TEST(JoinParserTest, NotEqualsBothSpellings) {
  for (const char* sql : {"SELECT * FROM t WHERE a != 3",
                          "SELECT * FROM t WHERE a <> 3"}) {
    auto parsed = query::ParseSql(sql);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    const auto& preds = parsed->select.where.predicates();
    ASSERT_EQ(preds.size(), 1u);
    EXPECT_EQ(preds[0].column, "a");
    EXPECT_EQ(preds[0].op, query::CompareOp::kNe);
    EXPECT_EQ(std::get<int64_t>(preds[0].literal), 3);
  }
}

TEST(JoinParserTest, BetweenDesugarsToRangePair) {
  auto parsed =
      query::ParseSql("SELECT * FROM t WHERE a BETWEEN 2 AND 9 AND b = 1");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& preds = parsed->select.where.predicates();
  ASSERT_EQ(preds.size(), 3u);
  EXPECT_EQ(preds[0].column, "a");
  EXPECT_EQ(preds[0].op, query::CompareOp::kGe);
  EXPECT_EQ(std::get<int64_t>(preds[0].literal), 2);
  EXPECT_EQ(preds[1].column, "a");
  EXPECT_EQ(preds[1].op, query::CompareOp::kLe);
  EXPECT_EQ(std::get<int64_t>(preds[1].literal), 9);
  EXPECT_EQ(preds[2].column, "b");
  EXPECT_EQ(preds[2].op, query::CompareOp::kEq);
}

TEST(JoinParserTest, ErrorsReportTokenPosition) {
  auto bad = query::ParseSql("SELECT * FORM t");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("'FORM'"), std::string::npos)
      << bad.status().ToString();
  EXPECT_NE(bad.status().ToString().find("at position"), std::string::npos)
      << bad.status().ToString();

  auto truncated = query::ParseSql("SELECT * FROM");
  ASSERT_FALSE(truncated.ok());
  EXPECT_NE(truncated.status().ToString().find("position"), std::string::npos)
      << truncated.status().ToString();

  // The bare-! lex error keeps its historical shape, now with a position.
  auto bang = query::ParseSql("SELECT * FROM t WHERE a !! 3");
  ASSERT_FALSE(bang.ok());
  EXPECT_TRUE(bang.status().IsInvalidArgument());
}

TEST(JoinParserTest, InnerJoinClause) {
  auto parsed = query::ParseSql(
      "SELECT l.url, u.name FROM logs l "
      "INNER JOIN users u ON l.user_id = u.user_id "
      "WHERE l.bytes > 10");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->table, "logs");
  EXPECT_EQ(parsed->table_alias, "l");
  ASSERT_EQ(parsed->joins.size(), 1u);
  const query::JoinSpec& join = parsed->joins[0];
  EXPECT_EQ(join.kind, query::JoinSpec::Kind::kInner);
  EXPECT_EQ(join.table, "users");
  EXPECT_EQ(join.alias, "u");
  EXPECT_EQ(join.left_key, "l.user_id");
  EXPECT_EQ(join.right_key, "u.user_id");
  EXPECT_EQ(parsed->select.projection,
            (std::vector<std::string>{"l.url", "u.name"}));
}

TEST(JoinParserTest, InSubqueryBecomesSemiJoin) {
  auto parsed = query::ParseSql(
      "SELECT * FROM logs WHERE user_id IN "
      "(SELECT user_id FROM users WHERE tier = 'gold')");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->joins.size(), 1u);
  const query::JoinSpec& join = parsed->joins[0];
  EXPECT_EQ(join.kind, query::JoinSpec::Kind::kSemi);
  EXPECT_EQ(join.table, "users");
  EXPECT_EQ(join.left_key, "user_id");
  ASSERT_EQ(join.where.predicates().size(), 1u);
  EXPECT_EQ(join.where.predicates()[0].column, "tier");
  // The subquery filter must not leak into the outer WHERE.
  EXPECT_TRUE(parsed->select.where.empty());
}

TEST(JoinParserTest, ExistsBecomesSemiJoinWithCorrelation) {
  auto parsed = query::ParseSql(
      "SELECT * FROM logs l WHERE EXISTS "
      "(SELECT * FROM users u WHERE u.user_id = l.user_id "
      "AND u.tier = 'silver')");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->joins.size(), 1u);
  const query::JoinSpec& join = parsed->joins[0];
  EXPECT_EQ(join.kind, query::JoinSpec::Kind::kSemi);
  EXPECT_EQ(join.table, "users");
  EXPECT_EQ(join.alias, "u");
  ASSERT_EQ(join.where.predicates().size(), 1u);
  EXPECT_EQ(join.where.predicates()[0].column, "u.tier");
}

TEST(JoinParserTest, RejectsUnsupportedSubqueryShapes) {
  auto correlated = query::ParseSql(
      "SELECT * FROM logs l WHERE user_id IN "
      "(SELECT user_id FROM users WHERE user_id = l.user_id)");
  ASSERT_FALSE(correlated.ok());
  EXPECT_NE(correlated.status().ToString().find("correlated IN"),
            std::string::npos)
      << correlated.status().ToString();

  auto uncorrelated_exists = query::ParseSql(
      "SELECT * FROM logs WHERE EXISTS "
      "(SELECT * FROM users u WHERE u.tier = 'gold')");
  ASSERT_FALSE(uncorrelated_exists.ok());
  EXPECT_NE(
      uncorrelated_exists.status().ToString().find("correlation predicate"),
      std::string::npos)
      << uncorrelated_exists.status().ToString();

  auto in_delete = query::ParseSql(
      "DELETE FROM logs WHERE user_id IN (SELECT user_id FROM users)");
  ASSERT_FALSE(in_delete.ok());
  EXPECT_NE(in_delete.status().ToString().find(
                "only supported in SELECT statements"),
            std::string::npos)
      << in_delete.status().ToString();
}

// ---------------------------------------------------------------------
// Shared row comparator.

TEST(RowLessTest, LexicographicWithShortPrefixFirst) {
  query::RowLess less;
  std::vector<format::Value> a{format::Value(int64_t{1}),
                               format::Value(std::string("b"))};
  std::vector<format::Value> b{format::Value(int64_t{1}),
                               format::Value(std::string("c"))};
  std::vector<format::Value> prefix{format::Value(int64_t{1})};
  EXPECT_TRUE(less(a, b));
  EXPECT_FALSE(less(b, a));
  EXPECT_FALSE(less(a, a));
  EXPECT_TRUE(less(prefix, a));
  EXPECT_FALSE(less(a, prefix));

  query::ValueLess vless;
  EXPECT_TRUE(vless(format::Value(int64_t{1}), format::Value(int64_t{2})));
  EXPECT_FALSE(vless(format::Value(int64_t{2}), format::Value(int64_t{1})));
}

// ---------------------------------------------------------------------
// End-to-end joins.

TEST(JoinTest, InnerJoinGoldenRows) {
  JoinFixture f;
  f.CreateAndFill();

  auto result = f.Sql(
      "SELECT l.start_time, l.user_id, u.name FROM logs l "
      "JOIN users u ON l.user_id = u.user_id "
      "ORDER BY l.start_time");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->column_names,
            (std::vector<std::string>{"l.start_time", "l.user_id", "u.name"}));

  // Hand-compute: probe rows in start_time order (unique, so the sort is
  // total); per probe row, matching users in insertion order (the build
  // bucket preserves it).
  std::vector<LogRow> logs = MakeLogs();
  std::vector<UserRow> users = MakeUsers();
  std::vector<std::vector<format::Value>> expected;
  for (const LogRow& log : logs) {  // already sorted by start_time
    for (const UserRow& user : users) {
      if (user.user_id != log.user_id) continue;
      expected.push_back({format::Value(log.start_time),
                          format::Value(log.user_id),
                          format::Value(user.name)});
    }
  }
  ASSERT_EQ(result->rows.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result->rows[i].fields, expected[i]) << "row " << i;
  }
  // Scan-level counters span both tables of the query.
  EXPECT_EQ(result->rows_scanned, logs.size() + users.size());
  EXPECT_EQ(result->rows_matched, logs.size() + users.size());
}

TEST(JoinTest, EmptyBuildSideYieldsNoRows) {
  JoinFixture f;
  f.CreateAndFill();
  auto result = f.Sql(
      "SELECT l.url, u.name FROM logs l "
      "JOIN users u ON l.user_id = u.user_id "
      "WHERE u.tier = 'platinum'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->rows.empty());
}

TEST(JoinTest, JoinKeyTypeMismatchIsRejected) {
  JoinFixture f;
  f.CreateAndFill();
  auto result =
      f.Sql("SELECT * FROM logs l JOIN users u ON l.url = u.user_id");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("join key type mismatch"),
            std::string::npos)
      << result.status().ToString();
}

TEST(JoinTest, SemiJoinsViaInAndExists) {
  JoinFixture f;
  f.CreateAndFill();

  // Gold users: odd ids {1, 3, 5} plus the duplicate of id 0. The semi
  // join emits each probe row at most once despite the duplicate.
  auto in_result = f.Sql(
      "SELECT COUNT(*) AS c FROM logs WHERE user_id IN "
      "(SELECT user_id FROM users WHERE tier = 'gold')");
  ASSERT_TRUE(in_result.ok()) << in_result.status().ToString();
  int64_t expected_gold = 0;
  for (const LogRow& log : MakeLogs()) {
    if (log.user_id == 0 || log.user_id == 1 || log.user_id == 3 ||
        log.user_id == 5) {
      ++expected_gold;
    }
  }
  ASSERT_EQ(in_result->rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(in_result->rows[0].fields[0]), expected_gold);

  auto exists_result = f.Sql(
      "SELECT COUNT(*) AS c FROM logs l WHERE EXISTS "
      "(SELECT * FROM users u WHERE u.user_id = l.user_id "
      "AND u.tier = 'silver')");
  ASSERT_TRUE(exists_result.ok()) << exists_result.status().ToString();
  int64_t expected_silver = 0;
  for (const LogRow& log : MakeLogs()) {
    if (log.user_id == 0 || log.user_id == 2 || log.user_id == 4) {
      ++expected_silver;
    }
  }
  ASSERT_EQ(exists_result->rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(exists_result->rows[0].fields[0]),
            expected_silver);
}

TEST(JoinTest, AggregateOverJoin) {
  JoinFixture f;
  f.CreateAndFill();
  auto result = f.Sql(
      "SELECT u.tier, COUNT(*) AS c, SUM(l.bytes) AS s FROM logs l "
      "JOIN users u ON l.user_id = u.user_id "
      "GROUP BY u.tier ORDER BY u.tier");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->column_names,
            (std::vector<std::string>{"u.tier", "c", "s"}));

  std::map<std::string, std::pair<int64_t, double>> expected;
  for (const LogRow& log : MakeLogs()) {
    for (const UserRow& user : MakeUsers()) {
      if (user.user_id != log.user_id) continue;
      expected[user.tier].first += 1;
      expected[user.tier].second += static_cast<double>(log.bytes);
    }
  }
  ASSERT_EQ(result->rows.size(), expected.size());
  size_t i = 0;
  for (const auto& [tier, agg] : expected) {  // map iterates sorted = ORDER BY
    EXPECT_EQ(std::get<std::string>(result->rows[i].fields[0]), tier);
    EXPECT_EQ(std::get<int64_t>(result->rows[i].fields[1]), agg.first);
    EXPECT_DOUBLE_EQ(std::get<double>(result->rows[i].fields[2]), agg.second);
    ++i;
  }
}

TEST(JoinTest, ParallelJoinMatchesSerialByteIdentical) {
  JoinFixture serial(/*scan_threads=*/0, /*cache_bytes=*/0);
  JoinFixture parallel(/*scan_threads=*/4, /*cache_bytes=*/64ULL << 20);
  serial.CreateAndFill(/*rows_per_province=*/256);
  parallel.CreateAndFill(/*rows_per_province=*/256);

  const char* queries[] = {
      "SELECT l.start_time, l.url, u.name, u.tier FROM logs l "
      "JOIN users u ON l.user_id = u.user_id "
      "WHERE l.bytes BETWEEN 20 AND 200 ORDER BY l.start_time",
      "SELECT u.tier, COUNT(*) AS c, SUM(l.bytes) AS s, AVG(l.bytes) AS a "
      "FROM logs l JOIN users u ON l.user_id = u.user_id "
      "WHERE l.province != 'hubei' GROUP BY u.tier ORDER BY u.tier",
      "SELECT COUNT(*) AS c FROM logs WHERE user_id IN "
      "(SELECT user_id FROM users WHERE tier <> 'gold')",
      "SELECT l.province, COUNT(*) AS c FROM logs l "
      "JOIN users u ON l.user_id = u.user_id "
      "GROUP BY l.province ORDER BY c DESC LIMIT 1",
  };
  for (const char* sql : queries) {
    auto expect = serial.Sql(sql);
    ASSERT_TRUE(expect.ok()) << sql << ": " << expect.status().ToString();
    // Twice: once cold (populating the cache), once warm (served from it).
    for (int round = 0; round < 2; ++round) {
      auto got = parallel.Sql(sql);
      ASSERT_TRUE(got.ok()) << sql << ": " << got.status().ToString();
      EXPECT_EQ(got->column_names, expect->column_names) << sql;
      EXPECT_EQ(got->rows, expect->rows) << sql << " round " << round;
      EXPECT_EQ(got->rows_scanned, expect->rows_scanned) << sql;
      EXPECT_EQ(got->rows_matched, expect->rows_matched) << sql;
    }
  }
}

TEST(JoinTest, MultiTableSnapshotPinning) {
  JoinFixture f;
  f.CreateAndFill();
  auto t0 = static_cast<int64_t>(f.clock.NowSeconds());
  f.clock.Advance(10 * sim::kSecond);

  // Later commits to BOTH tables: a new log row for user 1 and a brand-new
  // user 7 that would match the previously-unmatched user_id 7 rows.
  auto logs_table = f.lakehouse->GetTable("logs");
  ASSERT_TRUE(logs_table.ok());
  format::Row log_row;
  log_row.fields = {format::Value(std::string("http://late")),
                    format::Value(int64_t{9999}),
                    format::Value(std::string("beijing")),
                    format::Value(int64_t{1}), format::Value(int64_t{1})};
  ASSERT_TRUE((*logs_table)->Insert({log_row}).ok());
  auto users_table = f.lakehouse->GetTable("users");
  ASSERT_TRUE(users_table.ok());
  format::Row user_row;
  user_row.fields = {format::Value(int64_t{7}),
                     format::Value(std::string("user7")),
                     format::Value(std::string("gold"))};
  ASSERT_TRUE((*users_table)->Insert({user_row}).ok());

  const char* sql =
      "SELECT COUNT(*) AS c FROM logs l JOIN users u "
      "ON l.user_id = u.user_id";
  auto head = f.Sql(sql);
  ASSERT_TRUE(head.ok()) << head.status().ToString();

  SelectOptions travel;
  travel.as_of_timestamp = t0;
  auto pinned = f.Sql(sql, travel);
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();

  int64_t expected_t0 = 0;
  for (const LogRow& log : MakeLogs()) {
    for (const UserRow& user : MakeUsers()) {
      if (user.user_id == log.user_id) ++expected_t0;
    }
  }
  EXPECT_EQ(std::get<int64_t>(pinned->rows[0].fields[0]), expected_t0);
  // Head sees both late commits: +2 matches for the user-1 row (dup key
  // absent for id 1 — exactly 1 match) and +4 rows now matching user 7.
  EXPECT_GT(std::get<int64_t>(head->rows[0].fields[0]), expected_t0);

  // Snapshot ids are per-table; combining one with a join must fail.
  SelectOptions by_id;
  by_id.snapshot_id = 1;
  auto rejected = f.Sql(sql, by_id);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsInvalidArgument())
      << rejected.status().ToString();
}

TEST(JoinTest, QualifiedSingleTableSelect) {
  JoinFixture f;
  f.CreateAndFill();
  auto result = f.Sql(
      "SELECT l.province, COUNT(*) AS c FROM logs l "
      "WHERE l.province = 'beijing' GROUP BY l.province");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Single-table plans collapse into Table::Select: unqualified output.
  EXPECT_EQ(result->column_names, (std::vector<std::string>{"province", "c"}));
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(result->rows[0].fields[1]), 32);
}

TEST(JoinTest, DirectPlanWithFilterNodeAndToString) {
  JoinFixture f;
  f.CreateAndFill();
  auto logs_table = f.lakehouse->GetTable("logs");
  ASSERT_TRUE(logs_table.ok());
  auto info = (*logs_table)->Info();
  ASSERT_TRUE(info.ok());

  // Hand-built plan: Project(url) -> Filter(province = beijing) -> Scan.
  auto scan = std::make_unique<query::ScanNode>();
  scan->table = "logs";
  scan->alias = "logs";
  scan->table_index = 0;
  scan->output_schema = info->schema;
  auto filter = std::make_unique<query::FilterNode>();
  filter->filter.Add(query::Predicate::Eq(
      "province", format::Value(std::string("beijing"))));
  filter->output_schema = info->schema;
  filter->children.push_back(std::move(scan));
  auto project = std::make_unique<query::ProjectNode>();
  project->columns = {"url"};
  project->output_schema = format::Schema{{"url", format::DataType::kString}};
  project->children.push_back(std::move(filter));

  std::string rendered = query::PlanToString(*project);
  EXPECT_NE(rendered.find("Project(url)"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("Filter("), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("Scan(logs"), std::string::npos) << rendered;

  PlanRunner runner({{*logs_table, 0}}, SelectOptions{});
  auto result = runner.Run(*project);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->column_names, (std::vector<std::string>{"url"}));
  EXPECT_EQ(result->rows.size(), 32u);

  // The same query through SQL agrees.
  auto via_sql =
      f.Sql("SELECT url FROM logs WHERE province = 'beijing'");
  ASSERT_TRUE(via_sql.ok());
  EXPECT_EQ(result->rows, via_sql->rows);
}

}  // namespace
}  // namespace streamlake::table
