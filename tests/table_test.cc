#include <gtest/gtest.h>

#include "common/random.h"
#include "table/lakehouse.h"

namespace streamlake::table {
namespace {

format::Schema DpiSchema() {
  return format::Schema{{"url", format::DataType::kString},
                        {"start_time", format::DataType::kInt64},
                        {"province", format::DataType::kString},
                        {"bytes", format::DataType::kInt64}};
}

format::Row DpiRow(const std::string& url, int64_t t,
                   const std::string& province, int64_t bytes = 100) {
  format::Row row;
  row.fields = {format::Value(url), format::Value(t), format::Value(province),
                format::Value(bytes)};
  return row;
}

struct LakehouseFixture {
  sim::SimClock clock;
  storage::StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
  sim::NetworkModel compute_link{sim::NetworkProfile::Rdma(), &clock};
  kv::KvStore object_index;
  kv::KvStore meta_cache;
  std::unique_ptr<storage::PlogStore> plogs;
  std::unique_ptr<storage::ObjectStore> objects;
  std::unique_ptr<MetadataStore> meta;
  std::unique_ptr<LakehouseService> lakehouse;

  explicit LakehouseFixture(MetadataMode mode = MetadataMode::kAccelerated) {
    pool.AddCluster(3, 2, 512 << 20);
    storage::PlogStoreConfig config;
    config.num_shards = 16;
    config.plog.capacity = 32 << 20;
    config.plog.stripe_unit = 4096;
    config.plog.redundancy = storage::RedundancyConfig::Replication(3);
    plogs = std::make_unique<storage::PlogStore>(&pool, config, &clock);
    objects = std::make_unique<storage::ObjectStore>(plogs.get(),
                                                     &object_index);
    meta = std::make_unique<MetadataStore>(objects.get(), &meta_cache, mode);
    lakehouse = std::make_unique<LakehouseService>(meta.get(), objects.get(),
                                                   &clock, &compute_link);
  }

  Table* CreateDpiTable(const std::string& name = "dpi",
                        PartitionSpec spec = PartitionSpec::Identity(
                            "province")) {
    auto table = lakehouse->CreateTable(name, DpiSchema(), spec);
    EXPECT_TRUE(table.ok()) << table.status().ToString();
    return *table;
  }
};

class TableModeTest : public ::testing::TestWithParam<MetadataMode> {};

TEST_P(TableModeTest, CreateInsertSelect) {
  LakehouseFixture f(GetParam());
  Table* table = f.CreateDpiTable();
  std::vector<format::Row> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back(DpiRow("http://a", 1000 + i, i % 2 ? "beijing" : "hubei"));
  }
  ASSERT_TRUE(table->Insert(rows).ok());

  query::QuerySpec spec;
  spec.group_by = {"province"};
  spec.aggregates = {query::AggregateSpec::CountStar()};
  auto result = table->Select(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(std::get<int64_t>(result->rows[0].fields[1]), 50);
  EXPECT_EQ(std::get<int64_t>(result->rows[1].fields[1]), 50);
}

TEST_P(TableModeTest, DeleteAndUpdate) {
  LakehouseFixture f(GetParam());
  Table* table = f.CreateDpiTable();
  std::vector<format::Row> rows;
  for (int i = 0; i < 60; ++i) {
    rows.push_back(DpiRow("http://a", i, i % 3 == 0 ? "beijing" : "hubei"));
  }
  ASSERT_TRUE(table->Insert(rows).ok());

  // Metadata-only delete: predicate fully covers the 'beijing' partition.
  auto deleted = table->Delete(query::Conjunction{query::Predicate::Eq(
      "province", format::Value(std::string("beijing")))});
  ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
  EXPECT_EQ(*deleted, 20u);

  // Rewrite delete: predicate on a non-partition column.
  deleted = table->Delete(query::Conjunction{
      query::Predicate::Lt("start_time", format::Value(int64_t{10}))});
  ASSERT_TRUE(deleted.ok());
  EXPECT_GT(*deleted, 0u);

  // Update survivors.
  // Remaining rows with start_time >= 50: i in {50,52,53,55,56,58,59}.
  auto updated = table->Update(
      query::Conjunction{query::Predicate::Ge("start_time",
                                              format::Value(int64_t{50}))},
      "url", format::Value(std::string("http://updated")));
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(*updated, 7u);

  query::QuerySpec verify;
  verify.where.Add(query::Predicate::Eq(
      "url", format::Value(std::string("http://updated"))));
  verify.aggregates = {query::AggregateSpec::CountStar()};
  auto count = table->Select(verify);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(std::get<int64_t>(count->rows[0].fields[0]), 7);
}

INSTANTIATE_TEST_SUITE_P(Modes, TableModeTest,
                         ::testing::Values(MetadataMode::kFileBased,
                                           MetadataMode::kAccelerated));

TEST(TableTest, CreateTableValidation) {
  LakehouseFixture f;
  EXPECT_TRUE(f.lakehouse->CreateTable("t", format::Schema{},
                                       PartitionSpec::None())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(f.lakehouse->CreateTable("t", DpiSchema(),
                                       PartitionSpec::Identity("missing"))
                  .status()
                  .IsInvalidArgument());
  ASSERT_TRUE(f.lakehouse->CreateTable("t", DpiSchema(),
                                       PartitionSpec::None()).ok());
  EXPECT_TRUE(f.lakehouse->CreateTable("t", DpiSchema(),
                                       PartitionSpec::None())
                  .status()
                  .IsAlreadyExists());
  EXPECT_TRUE(f.lakehouse->GetTable("nope").status().IsNotFound());
}

TEST(TableTest, InsertValidatesSchema) {
  LakehouseFixture f;
  Table* table = f.CreateDpiTable();
  format::Row bad;
  bad.fields = {format::Value(std::string("u"))};
  EXPECT_TRUE(table->Insert({bad}).IsInvalidArgument());
}

TEST(TableTest, SnapshotIsolationForConcurrentReader) {
  LakehouseFixture f;
  Table* table = f.CreateDpiTable();
  ASSERT_TRUE(table->Insert({DpiRow("u", 1, "beijing")}).ok());
  auto info = table->Info();
  ASSERT_TRUE(info.ok());
  uint64_t snap1 = info->current_snapshot_id;

  ASSERT_TRUE(table->Insert({DpiRow("u", 2, "beijing")}).ok());

  // Reader pinned at snap1 sees exactly one row regardless of the insert.
  query::QuerySpec spec;
  spec.aggregates = {query::AggregateSpec::CountStar()};
  SelectOptions at_snap1;
  at_snap1.snapshot_id = snap1;
  auto old_view = table->Select(spec, at_snap1);
  ASSERT_TRUE(old_view.ok());
  EXPECT_EQ(std::get<int64_t>(old_view->rows[0].fields[0]), 1);
  auto head_view = table->Select(spec);
  ASSERT_TRUE(head_view.ok());
  EXPECT_EQ(std::get<int64_t>(head_view->rows[0].fields[0]), 2);
}

TEST(TableTest, TimeTravelByTimestamp) {
  LakehouseFixture f;
  Table* table = f.CreateDpiTable();
  ASSERT_TRUE(table->Insert({DpiRow("u", 1, "beijing")}).ok());
  int64_t t1 = static_cast<int64_t>(f.clock.NowSeconds());
  f.clock.Advance(100 * sim::kSecond);
  ASSERT_TRUE(table->Insert({DpiRow("u", 2, "beijing")}).ok());

  query::QuerySpec spec;
  spec.aggregates = {query::AggregateSpec::CountStar()};
  SelectOptions travel;
  travel.as_of_timestamp = t1;
  auto past = table->Select(spec, travel);
  ASSERT_TRUE(past.ok()) << past.status().ToString();
  EXPECT_EQ(std::get<int64_t>(past->rows[0].fields[0]), 1);

  SelectOptions too_early;
  too_early.as_of_timestamp = 0;
  f.clock.Advance(sim::kSecond);
  // Before the first snapshot: NotFound (clock started at 0, first commit
  // has timestamp 0 -> as_of 0 finds it; use -2... adjust: query a table
  // created later).
  Table* empty = f.CreateDpiTable("later");
  SelectOptions head;
  auto none = empty->Select(spec, head);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(std::get<int64_t>(none->rows[0].fields[0]), 0);
}

TEST(TableTest, PartitionPruningSkipsFiles) {
  LakehouseFixture f;
  Table* table = f.CreateDpiTable();
  std::vector<format::Row> rows;
  for (int i = 0; i < 300; ++i) {
    std::string province = "p" + std::to_string(i % 3);
    rows.push_back(DpiRow("u", i, province));
  }
  ASSERT_TRUE(table->Insert(rows).ok());  // three partitions, one file each

  query::QuerySpec spec;
  spec.where.Add(query::Predicate::Eq("province",
                                      format::Value(std::string("p1"))));
  spec.aggregates = {query::AggregateSpec::CountStar()};
  SelectMetrics metrics;
  auto result = table->Select(spec, {}, &metrics);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<int64_t>(result->rows[0].fields[0]), 100);
  EXPECT_EQ(metrics.files_scanned, 1u);
  EXPECT_EQ(metrics.files_skipped, 2u);
  EXPECT_GT(metrics.data_bytes_skipped, 0u);
}

TEST(TableTest, FileStatsPruneNonPartitionColumns) {
  LakehouseFixture f;
  TableOptions options;
  options.max_rows_per_file = 100;
  auto created = f.lakehouse->CreateTable("t", DpiSchema(),
                                          PartitionSpec::None(), &options);
  ASSERT_TRUE(created.ok());
  Table* table = *created;
  // Ten files with disjoint time ranges.
  for (int file = 0; file < 10; ++file) {
    std::vector<format::Row> rows;
    for (int i = 0; i < 100; ++i) {
      rows.push_back(DpiRow("u", file * 1000 + i, "bj"));
    }
    ASSERT_TRUE(table->Insert(rows).ok());
  }
  query::QuerySpec spec;
  spec.where.Add(query::Predicate::Ge("start_time",
                                      format::Value(int64_t{5000})));
  spec.where.Add(query::Predicate::Lt("start_time",
                                      format::Value(int64_t{6000})));
  spec.aggregates = {query::AggregateSpec::CountStar()};
  SelectMetrics metrics;
  auto result = table->Select(spec, {}, &metrics);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<int64_t>(result->rows[0].fields[0]), 100);
  EXPECT_EQ(metrics.files_scanned, 1u);
  EXPECT_EQ(metrics.files_skipped, 9u);
}

TEST(TableTest, PushdownReducesComputeTraffic) {
  LakehouseFixture f;
  Table* table = f.CreateDpiTable();
  std::vector<format::Row> rows;
  for (int i = 0; i < 2000; ++i) {
    rows.push_back(DpiRow("http://" + std::to_string(i), i, "beijing"));
  }
  ASSERT_TRUE(table->Insert(rows).ok());

  query::QuerySpec spec;
  spec.where.Add(query::Predicate::Lt("start_time", format::Value(int64_t{10})));
  spec.aggregates = {query::AggregateSpec::CountStar()};

  SelectMetrics with_pd, without_pd;
  SelectOptions pd_on;
  pd_on.pushdown = true;
  SelectOptions pd_off;
  pd_off.pushdown = false;
  ASSERT_TRUE(table->Select(spec, pd_on, &with_pd).ok());
  ASSERT_TRUE(table->Select(spec, pd_off, &without_pd).ok());
  EXPECT_LT(with_pd.bytes_to_compute * 10, without_pd.bytes_to_compute);
}

TEST(TableTest, MemoryBudgetOomWithoutAcceleration) {
  // Many small commits -> large metadata footprint. File-based mode holds
  // it all in compute memory and OOMs under a small budget (Fig. 15b);
  // accelerated mode streams and survives.
  for (MetadataMode mode :
       {MetadataMode::kFileBased, MetadataMode::kAccelerated}) {
    LakehouseFixture f(mode);
    Table* table = f.CreateDpiTable("t");
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(table->Insert({DpiRow("u", i, "p" + std::to_string(i))}).ok());
    }
    query::QuerySpec spec;
    spec.aggregates = {query::AggregateSpec::CountStar()};
    SelectOptions tight;
    tight.memory_budget_bytes = 4096;
    auto result = table->Select(spec, tight);
    if (mode == MetadataMode::kFileBased) {
      EXPECT_TRUE(result.status().IsOutOfMemory());
    } else {
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(std::get<int64_t>(result->rows[0].fields[0]), 200);
    }
  }
}

TEST(TableTest, AccelerationReducesSmallMetadataIos) {
  // Fig. 15(a): without acceleration every commit is a small file read.
  auto run = [](MetadataMode mode) {
    LakehouseFixture f(mode);
    Table* table = f.CreateDpiTable("t");
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(table->Insert({DpiRow("u", i, "beijing")}).ok());
    }
    if (mode == MetadataMode::kAccelerated) {
      EXPECT_TRUE(f.lakehouse->FlushMetadata().ok());
    }
    query::QuerySpec spec;
    spec.aggregates = {query::AggregateSpec::CountStar()};
    SelectMetrics metrics;
    EXPECT_TRUE(table->Select(spec, {}, &metrics).ok());
    return metrics.metadata.small_ios;
  };
  EXPECT_GT(run(MetadataMode::kFileBased), 50u);
  EXPECT_EQ(run(MetadataMode::kAccelerated), 0u);
}

TEST(TableTest, MetaFresherFlushesCacheToFiles) {
  LakehouseFixture f(MetadataMode::kAccelerated);
  Table* table = f.CreateDpiTable();
  ASSERT_TRUE(table->Insert({DpiRow("u", 1, "beijing")}).ok());
  EXPECT_GT(f.meta->pending_flushes(), 0u);
  auto info = table->Info();
  ASSERT_TRUE(info.ok());
  // Nothing persisted yet.
  EXPECT_TRUE(f.objects->List(info->path + "/metadata/commit-").empty());
  auto flushed = f.lakehouse->FlushMetadata();
  ASSERT_TRUE(flushed.ok());
  EXPECT_GT(*flushed, 0u);
  EXPECT_EQ(f.meta->pending_flushes(), 0u);
  EXPECT_FALSE(f.objects->List(info->path + "/metadata/commit-").empty());
}

TEST(TableTest, CompactionMergesSmallFiles) {
  LakehouseFixture f;
  TableOptions options;
  options.target_file_bytes = 1 << 20;
  auto created = f.lakehouse->CreateTable("t", DpiSchema(),
                                          PartitionSpec::Identity("province"),
                                          &options);
  ASSERT_TRUE(created.ok());
  Table* table = *created;
  // 20 tiny ingestion batches -> 20 small files in one partition.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(table->Insert({DpiRow("u", i, "beijing"),
                               DpiRow("u", i + 1000, "beijing")}).ok());
  }
  auto files = table->LiveFiles();
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->size(), 20u);

  auto result = table->CompactPartition("beijing");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->files_before, 20u);
  EXPECT_EQ(result->files_after, 1u);

  files = table->LiveFiles();
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->size(), 1u);
  // All rows intact.
  query::QuerySpec spec;
  spec.aggregates = {query::AggregateSpec::CountStar()};
  auto count = table->Select(spec);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(std::get<int64_t>(count->rows[0].fields[0]), 40);
}

TEST(TableTest, CompactionConflictsWithConcurrentIngestion) {
  LakehouseFixture f;
  Table* table = f.CreateDpiTable();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(table->Insert({DpiRow("u", i, "beijing")}).ok());
  }
  auto info = table->Info();
  ASSERT_TRUE(info.ok());
  uint64_t planned_base = info->current_snapshot_id;

  // Ingestion lands in the same partition after the compaction planned.
  ASSERT_TRUE(table->Insert({DpiRow("u", 99, "beijing")}).ok());
  auto result = table->CompactPartition("beijing", planned_base);
  EXPECT_TRUE(result.status().IsConflict());

  // A different partition's ingestion does NOT conflict.
  info = table->Info();
  planned_base = info->current_snapshot_id;
  ASSERT_TRUE(table->Insert({DpiRow("u", 1, "hubei")}).ok());
  auto ok_result = table->CompactPartition("beijing", planned_base);
  EXPECT_TRUE(ok_result.ok()) << ok_result.status().ToString();
}

TEST(TableTest, DropSoftRestoreAndHard) {
  LakehouseFixture f;
  Table* table = f.CreateDpiTable();
  ASSERT_TRUE(table->Insert({DpiRow("u", 1, "beijing")}).ok());
  auto info = table->Info();
  ASSERT_TRUE(info.ok());
  std::string path = info->path;

  ASSERT_TRUE(f.lakehouse->DropTableSoft("dpi").ok());
  EXPECT_TRUE(f.lakehouse->GetTable("dpi").status().IsNotFound());
  // Data retained for restoration.
  EXPECT_FALSE(f.objects->List(path + "/data/").empty());

  auto restored = f.lakehouse->RestoreTable("dpi");
  ASSERT_TRUE(restored.ok());
  query::QuerySpec spec;
  spec.aggregates = {query::AggregateSpec::CountStar()};
  auto count = (*restored)->Select(spec);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(std::get<int64_t>(count->rows[0].fields[0]), 1);

  ASSERT_TRUE(f.lakehouse->DropTableHard("dpi").ok());
  EXPECT_TRUE(f.lakehouse->GetTable("dpi").status().IsNotFound());
  EXPECT_TRUE(f.objects->List(path + "/").empty());
  EXPECT_TRUE(f.lakehouse->RestoreTable("dpi").status().IsNotFound());
}

struct MorFixture : LakehouseFixture {
  Table* table = nullptr;
  MorFixture() {
    TableOptions options;
    options.delete_mode = DeleteMode::kMergeOnRead;
    options.target_file_bytes = 1 << 20;
    auto created = lakehouse->CreateTable(
        "mor", DpiSchema(), PartitionSpec::Identity("province"), &options);
    EXPECT_TRUE(created.ok());
    table = *created;
  }

  int64_t Count() {
    query::QuerySpec spec;
    spec.aggregates = {query::AggregateSpec::CountStar()};
    auto result = table->Select(spec);
    return result.ok() ? std::get<int64_t>(result->rows[0].fields[0]) : -1;
  }
};

TEST(MergeOnReadTest, DeleteMasksRowsWithoutRewritingFiles) {
  MorFixture f;
  std::vector<format::Row> rows;
  for (int i = 0; i < 100; ++i) rows.push_back(DpiRow("u", i, "beijing"));
  ASSERT_TRUE(f.table->Insert(rows).ok());
  auto files_before = f.table->LiveFiles();
  ASSERT_TRUE(files_before.ok());

  auto deleted = f.table->Delete(query::Conjunction{
      query::Predicate::Lt("start_time", format::Value(int64_t{30}))});
  ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
  EXPECT_EQ(*deleted, 30u);
  EXPECT_EQ(f.Count(), 70);

  // The point of merge-on-read: the data files did NOT change.
  auto files_after = f.table->LiveFiles();
  ASSERT_TRUE(files_after.ok());
  ASSERT_EQ(files_after->size(), files_before->size());
  for (size_t i = 0; i < files_after->size(); ++i) {
    EXPECT_EQ((*files_after)[i].path, (*files_before)[i].path);
  }
}

TEST(MergeOnReadTest, LaterInsertsAreNotMaskedByEarlierDeletes) {
  MorFixture f;
  ASSERT_TRUE(f.table->Insert({DpiRow("u", 5, "beijing")}).ok());
  auto deleted = f.table->Delete(query::Conjunction{
      query::Predicate::Eq("start_time", format::Value(int64_t{5}))});
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 1u);
  EXPECT_EQ(f.Count(), 0);
  // Re-insert the same logical row AFTER the delete: it must be visible.
  ASSERT_TRUE(f.table->Insert({DpiRow("u", 5, "beijing")}).ok());
  EXPECT_EQ(f.Count(), 1);
}

TEST(MergeOnReadTest, StackedDeletesAndAccurateCounts) {
  MorFixture f;
  std::vector<format::Row> rows;
  for (int i = 0; i < 50; ++i) rows.push_back(DpiRow("u", i, "hubei"));
  ASSERT_TRUE(f.table->Insert(rows).ok());
  ASSERT_TRUE(f.table
                  ->Delete(query::Conjunction{query::Predicate::Lt(
                      "start_time", format::Value(int64_t{20}))})
                  .ok());
  // Overlapping second delete must count only newly-masked rows.
  auto second = f.table->Delete(query::Conjunction{
      query::Predicate::Lt("start_time", format::Value(int64_t{30}))});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 10u);
  EXPECT_EQ(f.Count(), 20);
}

TEST(MergeOnReadTest, CompactionAppliesDeletesPhysically) {
  MorFixture f;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(f.table->Insert({DpiRow("u", i, "beijing")}).ok());
  }
  ASSERT_TRUE(f.table
                  ->Delete(query::Conjunction{query::Predicate::Lt(
                      "start_time", format::Value(int64_t{4}))})
                  .ok());
  EXPECT_EQ(f.Count(), 6);

  auto result = f.table->CompactPartition("beijing");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->files_before, 10u);
  EXPECT_EQ(f.Count(), 6);  // still 6 after physical apply

  // The compacted file's rows are NOT re-masked by the old predicate
  // even though they match it... verify by checking row count directly.
  auto files = f.table->LiveFiles();
  ASSERT_TRUE(files.ok());
  uint64_t physical_rows = 0;
  for (const auto& file : *files) physical_rows += file.record_count;
  EXPECT_EQ(physical_rows, 6u);  // masked rows physically gone
}

TEST(MergeOnReadTest, UpdateDoesNotResurrectMaskedRows) {
  MorFixture f;
  std::vector<format::Row> rows;
  for (int i = 0; i < 10; ++i) rows.push_back(DpiRow("u", i, "beijing"));
  ASSERT_TRUE(f.table->Insert(rows).ok());
  ASSERT_TRUE(f.table
                  ->Delete(query::Conjunction{query::Predicate::Lt(
                      "start_time", format::Value(int64_t{5}))})
                  .ok());
  // Update rewrites files; the masked rows must stay gone.
  auto updated = f.table->Update(
      query::Conjunction{query::Predicate::Ge("start_time",
                                              format::Value(int64_t{0}))},
      "url", format::Value(std::string("http://new")));
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(*updated, 5u);  // only the 5 visible rows
  EXPECT_EQ(f.Count(), 5);
}

TEST(MergeOnReadTest, TimeTravelSeesPreDeleteState) {
  MorFixture f;
  ASSERT_TRUE(f.table->Insert({DpiRow("u", 1, "beijing")}).ok());
  auto info = f.table->Info();
  uint64_t pre_delete = info->current_snapshot_id;
  ASSERT_TRUE(f.table
                  ->Delete(query::Conjunction{query::Predicate::Eq(
                      "start_time", format::Value(int64_t{1}))})
                  .ok());
  EXPECT_EQ(f.Count(), 0);
  query::QuerySpec spec;
  spec.aggregates = {query::AggregateSpec::CountStar()};
  SelectOptions pinned;
  pinned.snapshot_id = pre_delete;
  auto old_view = f.table->Select(spec, pinned);
  ASSERT_TRUE(old_view.ok());
  EXPECT_EQ(std::get<int64_t>(old_view->rows[0].fields[0]), 1);
}

TEST(MergeOnReadTest, ManifestRewriteKeepsMasking) {
  MorFixture f;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(f.table->Insert({DpiRow("u", i, "beijing")}).ok());
  }
  ASSERT_TRUE(f.table
                  ->Delete(query::Conjunction{query::Predicate::Lt(
                      "start_time", format::Value(int64_t{8}))})
                  .ok());
  EXPECT_EQ(f.Count(), 12);
  auto squashed = f.table->RewriteManifest();
  ASSERT_TRUE(squashed.ok());
  EXPECT_GT(*squashed, 1u);
  EXPECT_EQ(f.Count(), 12);  // masking survives the squash
}

TEST(TableTest, RewriteManifestSquashesCommitChain) {
  LakehouseFixture f;
  Table* table = f.CreateDpiTable();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(table->Insert({DpiRow("u", i, "beijing")}).ok());
  }
  auto info = table->Info();
  ASSERT_TRUE(info.ok());
  uint64_t pre_squash_snapshot = info->current_snapshot_id;

  MetadataCounters start = MetadataCounters::Capture();
  ASSERT_TRUE(table->LiveFiles().ok());
  MetadataCounters before = MetadataCounters::Capture() - start;
  EXPECT_GT(before.reads, 30u);  // replays every commit

  auto squashed = table->RewriteManifest();
  ASSERT_TRUE(squashed.ok()) << squashed.status().ToString();
  EXPECT_EQ(*squashed, 30u);

  start = MetadataCounters::Capture();
  auto files = table->LiveFiles();
  MetadataCounters after = MetadataCounters::Capture() - start;
  ASSERT_TRUE(files.ok());
  EXPECT_LT(after.reads, 5u);  // one snapshot + one consolidated commit
  EXPECT_EQ(files->size(), 30u);

  // Contents identical; time travel to the pre-squash snapshot still works.
  query::QuerySpec spec;
  spec.aggregates = {query::AggregateSpec::CountStar()};
  auto count = table->Select(spec);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(std::get<int64_t>(count->rows[0].fields[0]), 30);
  SelectOptions pinned;
  pinned.snapshot_id = pre_squash_snapshot;
  auto old_count = table->Select(spec, pinned);
  ASSERT_TRUE(old_count.ok());
  EXPECT_EQ(std::get<int64_t>(old_count->rows[0].fields[0]), 30);

  // Idempotent: a single-commit manifest has nothing to squash.
  auto again = table->RewriteManifest();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

TEST(TableTest, ExpireSnapshotsBoundsTimeTravel) {
  LakehouseFixture f;
  Table* table = f.CreateDpiTable();
  ASSERT_TRUE(table->Insert({DpiRow("u", 1, "beijing")}).ok());
  f.clock.Advance(100 * sim::kSecond);
  ASSERT_TRUE(table->Insert({DpiRow("u", 2, "beijing")}).ok());
  f.clock.Advance(100 * sim::kSecond);
  ASSERT_TRUE(table->Insert({DpiRow("u", 3, "beijing")}).ok());

  auto info = table->Info();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->snapshot_log.size(), 3u);

  ASSERT_TRUE(table->ExpireSnapshots(50).ok());
  info = table->Info();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->snapshot_log.size(), 2u);

  // Head still works.
  query::QuerySpec spec;
  spec.aggregates = {query::AggregateSpec::CountStar()};
  auto count = table->Select(spec);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(std::get<int64_t>(count->rows[0].fields[0]), 3);

  // Travel to the expired snapshot is gone.
  SelectOptions travel;
  travel.as_of_timestamp = 50;
  EXPECT_FALSE(table->Select(spec, travel).ok());

  // A stale pinned snapshot id fails cleanly, not silently.
  SelectOptions stale;
  stale.snapshot_id = 1;
  EXPECT_FALSE(table->Select(spec, stale).ok());
}

// Property: every historical snapshot keeps returning exactly the count
// it had when it was the head, no matter what happens afterwards.
TEST(TableProperty, TimeTravelIsImmutableHistory) {
  LakehouseFixture f;
  Table* table = f.CreateDpiTable();
  Random rng(2026);
  int64_t live_rows = 0;
  std::vector<std::pair<uint64_t, int64_t>> history;  // snapshot -> count
  for (int round = 0; round < 25; ++round) {
    switch (rng.Uniform(3)) {
      case 0: {  // insert
        std::vector<format::Row> rows;
        size_t n = 1 + rng.Uniform(20);
        for (size_t i = 0; i < n; ++i) {
          rows.push_back(DpiRow("u", static_cast<int64_t>(rng.Uniform(1000)),
                                rng.OneIn(2) ? "beijing" : "hubei"));
        }
        ASSERT_TRUE(table->Insert(rows).ok());
        live_rows += n;
        break;
      }
      case 1: {  // delete a random time range
        int64_t cut = static_cast<int64_t>(rng.Uniform(1000));
        auto deleted = table->Delete(query::Conjunction{
            query::Predicate::Lt("start_time", format::Value(cut))});
        ASSERT_TRUE(deleted.ok());
        live_rows -= static_cast<int64_t>(*deleted);
        break;
      }
      case 2: {  // occasionally compact or squash the manifest
        if (rng.OneIn(2)) {
          auto r = table->CompactPartition("beijing");
          ASSERT_TRUE(r.ok() || r.status().IsConflict());
        } else {
          ASSERT_TRUE(table->RewriteManifest().ok());
        }
        break;
      }
    }
    auto info = table->Info();
    ASSERT_TRUE(info.ok());
    if (info->current_snapshot_id != 0) {
      history.emplace_back(info->current_snapshot_id, live_rows);
    }
    // EVERY recorded snapshot still answers with its historical count.
    query::QuerySpec spec;
    spec.aggregates = {query::AggregateSpec::CountStar()};
    for (const auto& [snapshot_id, expected] : history) {
      SelectOptions pinned;
      pinned.snapshot_id = snapshot_id;
      auto count = table->Select(spec, pinned);
      ASSERT_TRUE(count.ok()) << count.status().ToString();
      EXPECT_EQ(std::get<int64_t>(count->rows[0].fields[0]), expected)
          << "round " << round << " snapshot " << snapshot_id;
    }
  }
}

// Property: interleaved inserts/deletes tracked against a reference model.
TEST(TableProperty, MatchesReferenceModel) {
  LakehouseFixture f;
  Table* table = f.CreateDpiTable();
  Random rng(77);
  std::multiset<int64_t> model;  // start_time values live in the table
  for (int round = 0; round < 15; ++round) {
    if (rng.OneIn(3) && !model.empty()) {
      int64_t cut = *std::next(model.begin(), rng.Uniform(model.size()));
      auto deleted = table->Delete(query::Conjunction{
          query::Predicate::Lt("start_time", format::Value(cut))});
      ASSERT_TRUE(deleted.ok());
      size_t expected = 0;
      for (auto it = model.begin(); it != model.end();) {
        if (*it < cut) {
          it = model.erase(it);
          ++expected;
        } else {
          ++it;
        }
      }
      EXPECT_EQ(*deleted, expected) << "round " << round;
    } else {
      std::vector<format::Row> rows;
      size_t n = 1 + rng.Uniform(30);
      for (size_t i = 0; i < n; ++i) {
        int64_t t = static_cast<int64_t>(rng.Uniform(10000));
        model.insert(t);
        rows.push_back(DpiRow("u", t, rng.OneIn(2) ? "beijing" : "hubei"));
      }
      ASSERT_TRUE(table->Insert(rows).ok());
    }
    query::QuerySpec spec;
    spec.aggregates = {query::AggregateSpec::CountStar()};
    auto count = table->Select(spec);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(std::get<int64_t>(count->rows[0].fields[0]),
              static_cast<int64_t>(model.size()))
        << "round " << round;
  }
}

}  // namespace
}  // namespace streamlake::table
