#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

#include "common/random.h"
#include "kv/kv_store.h"
#include "sim/clock.h"
#include "sim/device_model.h"

namespace streamlake::kv {
namespace {

TEST(WriteBatchTest, EncodeDecodeRoundTrip) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Delete("b");
  batch.Put("key with spaces", std::string(1000, 'x'));
  Bytes encoded;
  batch.EncodeTo(&encoded);

  WriteBatch decoded;
  size_t consumed = decoded.DecodeFrom(ByteView(encoded));
  EXPECT_EQ(consumed, encoded.size());
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded.ops()[0].key, "a");
  EXPECT_EQ(decoded.ops()[0].value, "1");
  EXPECT_TRUE(decoded.ops()[1].is_delete);
  EXPECT_EQ(decoded.ops()[1].key, "b");
  EXPECT_EQ(decoded.ops()[2].value, std::string(1000, 'x'));
}

TEST(WriteBatchTest, DecodeRejectsCorruption) {
  WriteBatch batch;
  batch.Put("k", "v");
  Bytes encoded;
  batch.EncodeTo(&encoded);
  encoded[encoded.size() - 1] ^= 0xFF;  // flip a payload bit -> CRC mismatch
  WriteBatch decoded;
  EXPECT_EQ(decoded.DecodeFrom(ByteView(encoded)), 0u);
}

TEST(KvStoreTest, PutGetDelete) {
  KvStore store;
  ASSERT_TRUE(store.Put("k1", "v1").ok());
  auto got = store.Get("k1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v1");
  ASSERT_TRUE(store.Delete("k1").ok());
  EXPECT_TRUE(store.Get("k1").status().IsNotFound());
  EXPECT_TRUE(store.Get("never").status().IsNotFound());
}

TEST(KvStoreTest, OverwriteKeepsLatest) {
  KvStore store;
  ASSERT_TRUE(store.Put("k", "old").ok());
  ASSERT_TRUE(store.Put("k", "new").ok());
  EXPECT_EQ(*store.Get("k"), "new");
}

TEST(KvStoreTest, BatchIsAtomicAndSingleSequence) {
  KvStore store;
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("c");
  ASSERT_TRUE(store.Write(batch).ok());
  EXPECT_EQ(store.LatestSequence(), 1u);  // one sequence for the whole batch
  EXPECT_EQ(*store.Get("a"), "1");
  EXPECT_EQ(*store.Get("b"), "2");
}

TEST(KvStoreTest, SnapshotIsolatesReaders) {
  KvStore store;
  ASSERT_TRUE(store.Put("k", "v1").ok());
  Snapshot snap = store.GetSnapshot();
  ASSERT_TRUE(store.Put("k", "v2").ok());
  ASSERT_TRUE(store.Put("new", "x").ok());

  EXPECT_EQ(*store.Get("k", snap), "v1");
  EXPECT_TRUE(store.Get("new", snap).status().IsNotFound());
  EXPECT_EQ(*store.Get("k"), "v2");
}

TEST(KvStoreTest, SnapshotSeesThroughLaterDelete) {
  KvStore store;
  ASSERT_TRUE(store.Put("k", "v").ok());
  Snapshot snap = store.GetSnapshot();
  ASSERT_TRUE(store.Delete("k").ok());
  EXPECT_EQ(*store.Get("k", snap), "v");
  EXPECT_TRUE(store.Get("k").status().IsNotFound());
}

TEST(KvStoreTest, ScanOrderedRange) {
  KvStore store;
  for (std::string k : {"b", "a", "d", "c", "e"}) {
    ASSERT_TRUE(store.Put(k, "v" + k).ok());
  }
  ASSERT_TRUE(store.Delete("c").ok());
  auto rows = store.Scan("a", "e");
  ASSERT_EQ(rows.size(), 3u);  // a, b, d (c deleted, e excluded)
  EXPECT_EQ(rows[0].first, "a");
  EXPECT_EQ(rows[1].first, "b");
  EXPECT_EQ(rows[2].first, "d");

  auto all = store.Scan("", "");
  EXPECT_EQ(all.size(), 4u);

  auto limited = store.Scan("", "", 2);
  EXPECT_EQ(limited.size(), 2u);
}

TEST(KvStoreTest, ScanLimitAcrossManyStripes) {
  // A small limit over many striped keys must return exactly the
  // first-`limit` keys in global order — the merge buffer is pruned to
  // O(limit) between stripes, which must never drop a key that belongs
  // in the answer.
  KvStore store;
  constexpr int kKeys = 500;
  for (int i = 0; i < kKeys; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE(store.Put(key, std::to_string(i)).ok());
  }
  Snapshot snap = store.GetSnapshot();
  // More keys after the snapshot: they must stay invisible to it.
  ASSERT_TRUE(store.Put("k0000a", "late").ok());

  for (size_t limit : {1u, 7u, 64u, 499u}) {
    auto rows = store.Scan("", "", snap, limit);
    ASSERT_EQ(rows.size(), limit);
    for (size_t i = 0; i < limit; ++i) {
      char want[16];
      std::snprintf(want, sizeof(want), "k%04zu", i);
      EXPECT_EQ(rows[i].first, want) << "limit " << limit;
      EXPECT_EQ(rows[i].second, std::to_string(i));
    }
  }
  // Limit larger than the live set returns everything, still ordered.
  auto all = store.Scan("", "", snap, 10000);
  ASSERT_EQ(all.size(), static_cast<size_t>(kKeys));
  EXPECT_EQ(all.front().first, "k0000");
  EXPECT_EQ(all.back().first, "k0499");
}

TEST(KvStoreTest, ScanWithSnapshot) {
  KvStore store;
  ASSERT_TRUE(store.Put("p/1", "a").ok());
  ASSERT_TRUE(store.Put("p/2", "b").ok());
  Snapshot snap = store.GetSnapshot();
  ASSERT_TRUE(store.Put("p/3", "c").ok());
  ASSERT_TRUE(store.Delete("p/1").ok());

  auto rows = store.Scan("p/", "p0", snap);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, "p/1");
  EXPECT_EQ(rows[1].first, "p/2");
}

TEST(KvStoreTest, LiveKeyCount) {
  KvStore store;
  ASSERT_TRUE(store.Put("a", "1").ok());
  ASSERT_TRUE(store.Put("b", "2").ok());
  ASSERT_TRUE(store.Delete("a").ok());
  EXPECT_EQ(store.LiveKeyCount(), 1u);
}

TEST(KvStoreTest, ReleaseVersionsKeepsVisibleVersion) {
  KvStore store;
  ASSERT_TRUE(store.Put("k", "v1").ok());  // seq 1
  ASSERT_TRUE(store.Put("k", "v2").ok());  // seq 2
  ASSERT_TRUE(store.Put("k", "v3").ok());  // seq 3
  store.ReleaseVersionsBefore(3);
  // Version at seq >= 3 plus the visible-at-3 version remain.
  EXPECT_EQ(*store.Get("k"), "v3");
  EXPECT_EQ(*store.Get("k", Snapshot{3}), "v3");
}

TEST(KvStoreTest, ReleaseVersionsCollectsDeadKeys) {
  KvStore store;
  ASSERT_TRUE(store.Put("gone", "v").ok());
  ASSERT_TRUE(store.Delete("gone").ok());  // seq 2
  ASSERT_TRUE(store.Put("kept", "v").ok());
  store.ReleaseVersionsBefore(10);
  EXPECT_TRUE(store.Get("gone").status().IsNotFound());
  EXPECT_EQ(store.LiveKeyCount(), 1u);
}

TEST(KvStoreTest, WalRecoveryRebuildsState) {
  KvStore store;
  ASSERT_TRUE(store.Put("a", "1").ok());
  WriteBatch batch;
  batch.Put("b", "2");
  batch.Delete("a");
  ASSERT_TRUE(store.Write(batch).ok());

  KvStore recovered;
  auto applied = recovered.Recover(ByteView(store.WalContents()));
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 2u);
  EXPECT_TRUE(recovered.Get("a").status().IsNotFound());
  EXPECT_EQ(*recovered.Get("b"), "2");
}

TEST(KvStoreTest, WalRecoveryStopsAtTornTail) {
  KvStore store;
  ASSERT_TRUE(store.Put("a", "1").ok());
  ASSERT_TRUE(store.Put("b", "2").ok());
  Bytes wal = store.WalContents();
  wal.resize(wal.size() - 3);  // simulate a crash mid-write

  KvStore recovered;
  auto applied = recovered.Recover(ByteView(wal));
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 1u);
  EXPECT_EQ(*recovered.Get("a"), "1");
  EXPECT_TRUE(recovered.Get("b").status().IsNotFound());
}

TEST(KvStoreTest, RecoverRequiresEmptyStore) {
  KvStore store;
  ASSERT_TRUE(store.Put("a", "1").ok());
  EXPECT_TRUE(
      store.Recover(ByteView(store.WalContents())).status().IsInvalidArgument());
}

TEST(KvStoreTest, WalDeviceIsCharged) {
  sim::SimClock clock;
  sim::DeviceModel ssd(sim::DeviceProfile::NvmeSsd(), &clock);
  KvOptions options;
  options.wal_device = &ssd;
  KvStore store(options);
  ASSERT_TRUE(store.Put("k", std::string(4096, 'x')).ok());
  EXPECT_EQ(ssd.stats().write_ops, 1u);
  EXPECT_GT(ssd.stats().bytes_written, 4096u);
  EXPECT_GT(clock.NowNanos(), 0u);
}

TEST(KvStoreTest, ConcurrentWritersDoNotLoseUpdates) {
  KvStore store;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(store
                        .Put("t" + std::to_string(t) + "/" + std::to_string(i),
                             "v")
                        .ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.LiveKeyCount(), kThreads * kPerThread);
  EXPECT_EQ(store.LatestSequence(), kThreads * kPerThread);
}

// Property: a randomized interleaving of puts/deletes matches a reference
// std::map, both at head and via a snapshot taken mid-way.
TEST(KvStoreProperty, MatchesReferenceModel) {
  Random rng(2024);
  KvStore store;
  std::map<std::string, std::string> model;
  std::map<std::string, std::string> model_at_snap;
  Snapshot snap{};
  constexpr int kOps = 3000;
  for (int i = 0; i < kOps; ++i) {
    std::string key = "k" + std::to_string(rng.Uniform(100));
    if (rng.OneIn(4)) {
      ASSERT_TRUE(store.Delete(key).ok());
      model.erase(key);
    } else {
      std::string value = rng.NextString(8);
      ASSERT_TRUE(store.Put(key, value).ok());
      model[key] = value;
    }
    if (i == kOps / 2) {
      snap = store.GetSnapshot();
      model_at_snap = model;
    }
  }
  auto rows = store.Scan("", "");
  ASSERT_EQ(rows.size(), model.size());
  size_t idx = 0;
  for (const auto& [k, v] : model) {
    EXPECT_EQ(rows[idx].first, k);
    EXPECT_EQ(rows[idx].second, v);
    ++idx;
  }
  auto snap_rows = store.Scan("", "", snap);
  ASSERT_EQ(snap_rows.size(), model_at_snap.size());
  idx = 0;
  for (const auto& [k, v] : model_at_snap) {
    EXPECT_EQ(snap_rows[idx].first, k);
    EXPECT_EQ(snap_rows[idx].second, v);
    ++idx;
  }
}

}  // namespace
}  // namespace streamlake::kv
