#include <gtest/gtest.h>

#include "core/streamlake.h"
#include "format/row_codec.h"
#include "workload/dpi_log.h"
#include "workload/openmessaging.h"
#include "workload/tpch.h"

namespace streamlake::workload {
namespace {

TEST(DpiLogTest, RowsMatchSchemaAndAreDeterministic) {
  DpiLogGenerator a, b;
  format::Schema schema = DpiLogGenerator::Schema();
  for (int i = 0; i < 100; ++i) {
    format::Row row = a.NextRow();
    EXPECT_TRUE(schema.ValidateRow(row).ok());
    EXPECT_EQ(row, b.NextRow());
  }
}

TEST(DpiLogTest, PacketSizeNearTarget) {
  DpiLogOptions options;
  options.packet_bytes = 1200;
  DpiLogGenerator gen(options);
  format::Schema schema = DpiLogGenerator::Schema();
  size_t total = 0;
  constexpr int kSamples = 200;
  for (int i = 0; i < kSamples; ++i) {
    Bytes encoded;
    format::EncodeRow(schema, gen.NextRow(), &encoded);
    total += encoded.size();
  }
  double avg = static_cast<double>(total) / kSamples;
  EXPECT_NEAR(avg, 1200.0, 120.0);  // within 10% of the paper's 1.2 KB
}

TEST(DpiLogTest, TimeAdvancesMonotonically) {
  DpiLogGenerator gen;
  int64_t prev = 0;
  for (int i = 0; i < 1000; ++i) {
    int64_t t = std::get<int64_t>(gen.NextRow().fields[1]);
    EXPECT_GE(t, prev);
    prev = t;
  }
  EXPECT_GT(prev, gen.options().start_time);
}

TEST(DpiLogTest, UrlPopularityIsSkewed) {
  DpiLogGenerator gen;
  int fin_app = 0;
  constexpr int kSamples = 5000;
  for (int i = 0; i < kSamples; ++i) {
    if (std::get<std::string>(gen.NextRow().fields[0]) ==
        DpiLogGenerator::FinAppUrl()) {
      ++fin_app;
    }
  }
  // Rank-0 URL under Zipf must be far above uniform (1/200).
  EXPECT_GT(fin_app, kSamples / 100);
}

TEST(DpiLogTest, MessagesDecodeAsRows) {
  DpiLogGenerator gen;
  streaming::Message msg = gen.NextMessage();
  auto row = format::DecodeRow(DpiLogGenerator::Schema(),
                               ByteView(msg.value));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(std::get<std::string>(row->fields[2]), msg.key);
}

TEST(TpchTest, LineitemMatchesSchemaAndDomains) {
  TpchLineitemGenerator gen;
  format::Schema schema = TpchLineitemGenerator::Schema();
  for (int i = 0; i < 500; ++i) {
    format::Row row = gen.NextRow();
    ASSERT_TRUE(schema.ValidateRow(row).ok());
    int64_t quantity = std::get<int64_t>(row.fields[2]);
    EXPECT_GE(quantity, 1);
    EXPECT_LE(quantity, 50);
    double discount = std::get<double>(row.fields[4]);
    EXPECT_GE(discount, 0.0);
    EXPECT_LE(discount, 0.10001);
    int64_t ship = std::get<int64_t>(row.fields[5]);
    EXPECT_GE(ship, TpchLineitemGenerator::kShipDateMin);
    EXPECT_LT(ship, TpchLineitemGenerator::kShipDateMax);
    int64_t receipt = std::get<int64_t>(row.fields[6]);
    EXPECT_GT(receipt, ship);
  }
}

TEST(TpchTest, ScaleFactorControlsRowCount) {
  TpchOptions options;
  options.scale_factor = 2;
  options.rows_per_sf = 1000;
  TpchLineitemGenerator gen(options);
  EXPECT_EQ(gen.total_rows(), 2000u);
  EXPECT_EQ(gen.GenerateAll().size(), 2000u);
}

TEST(TpchTest, QueryWorkloadIsSelective) {
  TpchOptions options;
  options.rows_per_sf = 5000;
  TpchLineitemGenerator gen(options);
  std::vector<format::Row> rows = gen.GenerateAll();
  format::Schema schema = TpchLineitemGenerator::Schema();

  TpchQueryGenerator queries(3);
  int nonempty = 0;
  int selective = 0;
  constexpr int kQueries = 50;
  for (int q = 0; q < kQueries; ++q) {
    query::QuerySpec spec = queries.NextQuery();
    size_t matched = 0;
    for (const format::Row& row : rows) {
      if (spec.where.Matches(schema, row)) ++matched;
    }
    if (matched > 0) ++nonempty;
    if (matched < rows.size() / 2) ++selective;
  }
  EXPECT_GT(nonempty, kQueries / 3);   // not degenerate
  EXPECT_GT(selective, kQueries / 2);  // predicates actually filter
}

TEST(OmbDriverTest, PacedRunMeasuresThroughputAndLatency) {
  core::StreamLake lake;
  kv::KvStore offsets;
  OmbDriver driver(&lake.dispatcher(), &offsets, &lake.clock());
  OmbConfig config;
  config.partitions = 4;
  config.total_messages = 5000;
  config.target_rate = 50000;
  auto result = driver.Run(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->messages_produced, 5000u);
  EXPECT_EQ(result->messages_consumed, 5000u);
  // Pacing dominates: achieved throughput ~= offered rate.
  EXPECT_NEAR(result->produce_throughput, 50000, 50000 * 0.2);
  EXPECT_GT(result->end_to_end_p50_us, 0);
  EXPECT_GE(result->end_to_end_p99_us, result->end_to_end_p50_us);
  EXPECT_GE(result->end_to_end_max_us, result->end_to_end_p99_us);
}

TEST(OmbDriverTest, HigherRateDoesNotLoseMessages) {
  core::StreamLake lake;
  kv::KvStore offsets;
  OmbDriver driver(&lake.dispatcher(), &offsets, &lake.clock());
  OmbConfig config;
  config.partitions = 8;
  config.total_messages = 8000;
  config.target_rate = 2e6;  // far past single-pipeline capacity
  auto result = driver.Run(config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->messages_consumed, 8000u);
  // Saturated: achieved throughput below offered.
  EXPECT_LT(result->produce_throughput, 2e6);
}

}  // namespace
}  // namespace streamlake::workload
