#include <gtest/gtest.h>

#include "convert/converter.h"
#include "streaming/consumer.h"
#include "streaming/producer.h"
#include "workload/dpi_log.h"

namespace streamlake::convert {
namespace {

struct ConvertFixture {
  sim::SimClock clock;
  storage::StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
  sim::NetworkModel bus{sim::NetworkProfile::Rdma(), &clock};
  sim::NetworkModel compute_link{sim::NetworkProfile::Rdma(), &clock};
  kv::KvStore index;
  kv::KvStore meta;
  kv::KvStore meta_cache;
  std::unique_ptr<storage::PlogStore> plogs;
  std::unique_ptr<stream::StreamObjectManager> objects;
  std::unique_ptr<streaming::StreamDispatcher> dispatcher;
  std::unique_ptr<storage::ObjectStore> object_store;
  std::unique_ptr<table::MetadataStore> metadata;
  std::unique_ptr<table::LakehouseService> lakehouse;
  std::unique_ptr<ConversionService> converter;

  ConvertFixture() {
    pool.AddCluster(3, 2, 512 << 20);
    storage::PlogStoreConfig config;
    config.num_shards = 16;
    config.plog.capacity = 32 << 20;
    config.plog.stripe_unit = 4096;
    config.plog.redundancy = storage::RedundancyConfig::Replication(3);
    plogs = std::make_unique<storage::PlogStore>(&pool, config, &clock);
    objects = std::make_unique<stream::StreamObjectManager>(plogs.get(),
                                                            &index, &clock);
    dispatcher = std::make_unique<streaming::StreamDispatcher>(
        objects.get(), &meta, &bus, &clock, 3);
    object_store = std::make_unique<storage::ObjectStore>(plogs.get(), &index);
    metadata = std::make_unique<table::MetadataStore>(
        object_store.get(), &meta_cache, table::MetadataMode::kAccelerated);
    lakehouse = std::make_unique<table::LakehouseService>(
        metadata.get(), object_store.get(), &clock, &compute_link);
    converter = std::make_unique<ConversionService>(
        dispatcher.get(), objects.get(), lakehouse.get(), &meta, &clock);
  }

  streaming::TopicConfig DpiTopicConfig(uint64_t split_offset,
                                        uint64_t split_time_sec,
                                        bool delete_msg = false) {
    streaming::TopicConfig config;
    config.stream_num = 2;
    config.convert_2_table.enabled = true;
    config.convert_2_table.table_schema = workload::DpiLogGenerator::Schema();
    config.convert_2_table.table_path = "dpi_logs";
    config.convert_2_table.partition_spec =
        table::PartitionSpec::Identity("province");
    config.convert_2_table.split_offset = split_offset;
    config.convert_2_table.split_time_sec = split_time_sec;
    config.convert_2_table.delete_msg = delete_msg;
    return config;
  }

  void Publish(const std::string& topic, int n) {
    workload::DpiLogGenerator gen;
    streaming::Producer producer(dispatcher.get());
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(producer.Send(topic, gen.NextMessage()).ok());
    }
  }
};

TEST(ConvertTest, CountTriggerConvertsToTable) {
  ConvertFixture f;
  ASSERT_TRUE(f.dispatcher->CreateTopic(
      "t", f.DpiTopicConfig(/*split_offset=*/100, /*split_time=*/999999)).ok());
  f.Publish("t", 50);

  // Below the count threshold and within the time window: no conversion.
  auto stats = f.converter->Run("t");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats->triggered);

  f.Publish("t", 60);  // now 110 unconverted
  stats = f.converter->Run("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->triggered);
  EXPECT_EQ(stats->converted_records, 110u);
  EXPECT_EQ(stats->parse_errors, 0u);

  auto table = f.lakehouse->GetTable("dpi_logs");
  ASSERT_TRUE(table.ok());
  query::QuerySpec spec;
  spec.aggregates = {query::AggregateSpec::CountStar()};
  auto count = (*table)->Select(spec);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(std::get<int64_t>(count->rows[0].fields[0]), 110);
}

TEST(ConvertTest, TimeTriggerFires) {
  ConvertFixture f;
  ASSERT_TRUE(f.dispatcher->CreateTopic(
      "t", f.DpiTopicConfig(/*split_offset=*/1000000, /*split_time=*/3600)).ok());
  f.Publish("t", 10);
  auto stats = f.converter->Run("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->triggered);  // fresh topic, below both triggers

  f.clock.Advance(3601 * sim::kSecond);
  stats = f.converter->Run("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->triggered);
  EXPECT_EQ(stats->converted_records, 10u);
}

TEST(ConvertTest, IncrementalConversionsDoNotDuplicate) {
  ConvertFixture f;
  ASSERT_TRUE(f.dispatcher->CreateTopic(
      "t", f.DpiTopicConfig(1, 999999)).ok());
  f.Publish("t", 30);
  ASSERT_TRUE(f.converter->Run("t").ok());
  f.Publish("t", 20);
  auto stats = f.converter->Run("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->converted_records, 20u);  // only the new tail

  auto table = f.lakehouse->GetTable("dpi_logs");
  ASSERT_TRUE(table.ok());
  query::QuerySpec spec;
  spec.aggregates = {query::AggregateSpec::CountStar()};
  auto count = (*table)->Select(spec);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(std::get<int64_t>(count->rows[0].fields[0]), 50);
}

TEST(ConvertTest, DeleteMsgTrimsStreamCopy) {
  ConvertFixture f;
  ASSERT_TRUE(f.dispatcher->CreateTopic(
      "t", f.DpiTopicConfig(1, 999999, /*delete_msg=*/true)).ok());
  f.Publish("t", 40);
  auto stats = f.converter->Run("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->converted_records, 40u);
  EXPECT_EQ(stats->trimmed_records, 40u);

  // Stream copy is gone: reading from 0 fails, frontier preserved.
  for (uint32_t s = 0; s < 2; ++s) {
    auto id = f.dispatcher->StreamObjectId("t", s);
    ASSERT_TRUE(id.ok());
    stream::StreamObject* object = f.objects->GetObject(*id);
    if (object->frontier() == 0) continue;
    EXPECT_TRUE(object->Read(0, 1).status().IsNotFound());
    EXPECT_EQ(object->trimmed_until(), object->frontier());
  }
  // Table copy remains queryable.
  auto table = f.lakehouse->GetTable("dpi_logs");
  ASSERT_TRUE(table.ok());
  query::QuerySpec spec;
  spec.aggregates = {query::AggregateSpec::CountStar()};
  auto count = (*table)->Select(spec);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(std::get<int64_t>(count->rows[0].fields[0]), 40);
}

TEST(ConvertTest, PlaybackTableToStream) {
  ConvertFixture f;
  ASSERT_TRUE(f.dispatcher->CreateTopic(
      "source", f.DpiTopicConfig(1, 999999)).ok());
  f.Publish("source", 25);
  ASSERT_TRUE(f.converter->Run("source").ok());

  streaming::TopicConfig replay_config;
  replay_config.stream_num = 2;
  ASSERT_TRUE(f.dispatcher->CreateTopic("replay", replay_config).ok());
  auto produced = f.converter->PlaybackToStream("dpi_logs", "replay");
  ASSERT_TRUE(produced.ok()) << produced.status().ToString();
  EXPECT_EQ(*produced, 25u);

  streaming::Consumer consumer(f.dispatcher.get(), &f.meta, "g");
  ASSERT_TRUE(consumer.Subscribe("replay").ok());
  auto polled = consumer.Poll(1000);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->size(), 25u);
  // Messages decode back into schema rows.
  auto row = format::DecodeRow(workload::DpiLogGenerator::Schema(),
                               ByteView((*polled)[0].message.value));
  EXPECT_TRUE(row.ok());
}

TEST(ConvertTest, MalformedMessagesCountedNotFatal) {
  ConvertFixture f;
  ASSERT_TRUE(f.dispatcher->CreateTopic("t", f.DpiTopicConfig(1, 999999)).ok());
  f.Publish("t", 5);
  // A rogue producer writes junk that doesn't decode as the table schema.
  streaming::Producer rogue(f.dispatcher.get());
  ASSERT_TRUE(rogue.Send("t", streaming::Message("k", "not-a-row")).ok());
  ASSERT_TRUE(rogue.Send("t", streaming::Message("k", "\x01\x02")).ok());

  auto stats = f.converter->Run("t");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->converted_records, 5u);
  EXPECT_EQ(stats->parse_errors, 2u);

  auto table = f.lakehouse->GetTable("dpi_logs");
  ASSERT_TRUE(table.ok());
  query::QuerySpec spec;
  spec.aggregates = {query::AggregateSpec::CountStar()};
  auto count = (*table)->Select(spec);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(std::get<int64_t>(count->rows[0].fields[0]), 5);
}

TEST(ConvertTest, DisabledTopicOnlyConvertsWhenForced) {
  ConvertFixture f;
  streaming::TopicConfig config = f.DpiTopicConfig(1, 1);
  config.convert_2_table.enabled = false;
  ASSERT_TRUE(f.dispatcher->CreateTopic("t", config).ok());
  f.Publish("t", 5);
  auto stats = f.converter->Run("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->triggered);
  auto forced = f.converter->Run("t", /*force=*/true);
  ASSERT_TRUE(forced.ok());
  EXPECT_EQ(forced->converted_records, 5u);
}

}  // namespace
}  // namespace streamlake::convert
