// Multi-threaded stress tests for the concurrent core. Designed to run
// under ThreadSanitizer (cmake --preset tsan): each test drives real
// parallelism through the annotated Mutex wrappers, so a dropped guard or
// missed wakeup regresses into a TSan report or a hang here.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/threadpool.h"
#include "kv/kv_store.h"
#include "storage/plog_store.h"
#include "streaming/consumer.h"
#include "streaming/dispatcher.h"
#include "streaming/producer.h"

namespace streamlake {
namespace {

TEST(ThreadPoolConcurrencyTest, ParallelSubmitFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 200;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kTasksEach; ++i) {
        pool.Submit([&] { executed.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.Wait();
  EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolConcurrencyTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  constexpr int kTasks = 500;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&] { executed.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Shutdown();  // must drain the queue before joining
  }
  EXPECT_EQ(executed.load(), kTasks);
}

TEST(ThreadPoolConcurrencyTest, WaitSeesTasksSubmittedByTasks) {
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&, i] {
      executed.fetch_add(1, std::memory_order_relaxed);
      if (i % 5 == 0) {
        pool.Submit(
            [&] { executed.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(executed.load(), 50 + 10);
  pool.Shutdown();
}

struct StreamingFixture {
  sim::SimClock clock;
  storage::StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
  sim::NetworkModel bus{sim::NetworkProfile::Rdma(), &clock};
  kv::KvStore index;
  kv::KvStore meta;
  std::unique_ptr<storage::PlogStore> plogs;
  std::unique_ptr<stream::StreamObjectManager> objects;
  std::unique_ptr<streaming::StreamDispatcher> dispatcher;

  explicit StreamingFixture(uint32_t workers = 3) {
    pool.AddCluster(3, 2, 256 << 20);
    storage::PlogStoreConfig config;
    config.num_shards = 16;
    config.plog.capacity = 16 << 20;
    config.plog.stripe_unit = 4096;
    config.plog.redundancy = storage::RedundancyConfig::Replication(3);
    plogs = std::make_unique<storage::PlogStore>(&pool, config, &clock);
    objects = std::make_unique<stream::StreamObjectManager>(
        plogs.get(), &index, &clock, nullptr, 0);
    dispatcher = std::make_unique<streaming::StreamDispatcher>(
        objects.get(), &meta, &bus, &clock, workers);
  }
};

TEST(StreamingConcurrencyTest, ConcurrentProduceAndConsume) {
  StreamingFixture f(3);
  streaming::TopicConfig config;
  config.stream_num = 4;
  ASSERT_TRUE(f.dispatcher->CreateTopic("events", config).ok());

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::atomic<int> produced{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      streaming::Producer producer(f.dispatcher.get());
      for (int i = 0; i < kPerProducer; ++i) {
        std::string key = "p" + std::to_string(p) + "-k" + std::to_string(i);
        auto offset = producer.Send(
            "events", streaming::Message(key, std::to_string(i)));
        ASSERT_TRUE(offset.ok()) << offset.status().ToString();
        produced.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // One consumer polls while the producers are still appending; the rest
  // of the backlog drains after the join.
  streaming::Consumer consumer(f.dispatcher.get(), &f.meta, "group");
  ASSERT_TRUE(consumer.Subscribe("events").ok());
  size_t consumed = 0;
  auto drain = [&] {
    auto polled = consumer.Poll(128);
    ASSERT_TRUE(polled.ok()) << polled.status().ToString();
    consumed += polled->size();
  };
  while (produced.load(std::memory_order_relaxed) <
         kProducers * kPerProducer) {
    drain();
  }
  for (auto& t : producers) t.join();
  while (consumed < static_cast<size_t>(kProducers * kPerProducer)) {
    size_t before = consumed;
    drain();
    ASSERT_GT(consumed, before) << "consumer stopped making progress";
  }
  EXPECT_EQ(consumed, static_cast<size_t>(kProducers * kPerProducer));
}

TEST(StreamingConcurrencyTest, ResizeWorkersDuringProduce) {
  StreamingFixture f(2);
  streaming::TopicConfig config;
  config.stream_num = 8;
  ASSERT_TRUE(f.dispatcher->CreateTopic("scale", config).ok());

  std::atomic<bool> stop{false};
  std::thread resizer([&] {
    // Grow and shrink the fleet while producers hold routed worker
    // pointers; shrunk-away workers must stay alive (retired, not freed).
    for (uint32_t round = 0; round < 20; ++round) {
      ASSERT_TRUE(f.dispatcher->ResizeWorkers(2 + round % 6).ok());
    }
    stop.store(true, std::memory_order_release);
  });

  constexpr int kProducers = 3;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      streaming::Producer producer(f.dispatcher.get());
      int i = 0;
      while (!stop.load(std::memory_order_acquire) || i < 100) {
        std::string key = "p" + std::to_string(p) + "-" + std::to_string(i);
        auto offset = producer.Send("scale", streaming::Message(key, "v"));
        ASSERT_TRUE(offset.ok()) << offset.status().ToString();
        ++i;
      }
    });
  }
  resizer.join();
  for (auto& t : producers) t.join();
}

TEST(StorageConcurrencyTest, ParallelPlogWritesToSameShard) {
  sim::SimClock clock;
  storage::StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
  pool.AddCluster(3, 2, 256 << 20);
  storage::PlogStoreConfig config;
  config.num_shards = 4;
  config.plog.capacity = 64 << 20;
  config.plog.stripe_unit = 4096;
  config.plog.redundancy = storage::RedundancyConfig::Replication(3);
  storage::PlogStore plogs(&pool, config, &clock);

  constexpr int kWriters = 8;
  constexpr int kAppendsEach = 100;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kAppendsEach; ++i) {
        std::string payload =
            "w" + std::to_string(w) + "-r" + std::to_string(i);
        auto addr = plogs.Append(/*shard=*/0, ByteView(payload));
        ASSERT_TRUE(addr.ok()) << addr.status().ToString();
        // Read-back through the same shard races appends from peers.
        auto data = plogs.Read(*addr);
        ASSERT_TRUE(data.ok()) << data.status().ToString();
        EXPECT_EQ(BytesToString(*data), payload);
      }
    });
  }
  for (auto& t : writers) t.join();
}

TEST(KvConcurrencyTest, ParallelReadersAndWriters) {
  kv::KvStore store;
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kOpsEach = 300;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kOpsEach; ++i) {
        std::string key = "k" + std::to_string(i % 50);
        ASSERT_TRUE(
            store.Put(key, "w" + std::to_string(w) + "-" + std::to_string(i))
                .ok());
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsEach; ++i) {
        auto value = store.Get("k" + std::to_string(i % 50));
        if (value.ok()) {
          EXPECT_FALSE(value->empty());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
}

// ---------------- CondVar timed waits ----------------

struct TimedWaitState {
  Mutex mu{LockRank::kKvStore, "test.condvar"};
  CondVar cv;
  bool ready GUARDED_BY(mu) = false;
};

TEST(CondVarTimedWaitTest, TimesOutWhenNeverSignalled) {
  TimedWaitState state;
  MutexLock lock(&state.mu);
  bool signalled =
      state.cv.WaitFor(&state.mu, std::chrono::milliseconds(5));
  EXPECT_FALSE(signalled);
  // The mutex is reacquired after a timeout: guarded writes stay legal
  // and the lock is still on this thread's held stack.
  state.ready = true;
  EXPECT_EQ(lock_order::HeldByCurrentThread(),
            SL_LOCK_ORDER_CHECK ? 1u : 0u);
}

TEST(CondVarTimedWaitTest, WakesOnNotifyBeforeDeadline) {
  TimedWaitState state;
  std::thread signaller([&] {
    MutexLock lock(&state.mu);
    state.ready = true;
    state.cv.NotifyOne();
  });
  bool observed = false;
  {
    MutexLock lock(&state.mu);
    // Predicate loop: WaitFor can wake spuriously or before the
    // signaller has run; keep waiting with a generous deadline.
    while (!state.ready) {
      if (!state.cv.WaitFor(&state.mu, std::chrono::seconds(5))) break;
    }
    observed = state.ready;
  }
  signaller.join();
  EXPECT_TRUE(observed);
}

TEST(CondVarTimedWaitTest, ManyWaitersAllWakeOrTimeOut) {
  TimedWaitState state;
  constexpr int kWaiters = 8;
  std::atomic<int> done{0};
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&state.mu);
      while (!state.ready) {
        if (!state.cv.WaitFor(&state.mu, std::chrono::seconds(5))) break;
      }
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  {
    MutexLock lock(&state.mu);
    state.ready = true;
  }
  state.cv.NotifyAll();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(done.load(), kWaiters);
}

// ---------------- SharedMutex reader/writer interleavings ----------------

struct SharedCounterState {
  SharedMutex mu{LockRank::kKvStore, "test.shared_counter"};
  // Two counters kept equal under the writer lock: a reader that ever
  // observes them unequal has seen a torn update (reader overlapped a
  // writer), and a lost increment means writers overlapped each other.
  int64_t a GUARDED_BY(mu) = 0;
  int64_t b GUARDED_BY(mu) = 0;
};

TEST(SharedMutexInterleavingTest, ReadersNeverObserveTornWrites) {
  SharedCounterState state;
  constexpr int kWriters = 3;
  constexpr int kReaders = 5;
  constexpr int kOpsEach = 2000;
  std::atomic<int64_t> torn{0};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsEach; ++i) {
        WriterMutexLock lock(&state.mu);
        ++state.a;
        ++state.b;
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsEach; ++i) {
        ReaderMutexLock lock(&state.mu);
        if (state.a != state.b) torn.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(torn.load(), 0);
  WriterMutexLock lock(&state.mu);
  EXPECT_EQ(state.a, kWriters * kOpsEach);
  EXPECT_EQ(state.b, kWriters * kOpsEach);
}

TEST(SharedMutexInterleavingTest, ReadersOverlapEachOther) {
  // Shared acquisitions must not exclude each other: every reader enters
  // the shared section and stays there until it has seen a peer inside
  // too (bounded by a deadline so a regression fails rather than hangs).
  // If LockShared degraded to exclusive locking, at most one reader could
  // be inside at a time and no thread would ever observe a peer.
  SharedCounterState state;
  constexpr int kReaders = 4;
  std::atomic<int> inside{0};
  std::atomic<bool> all_in{false};
  std::atomic<int> saw_all{0};
  std::vector<std::thread> threads;
  threads.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      ReaderMutexLock lock(&state.mu);
      inside.fetch_add(1);
      // Rendezvous: stay inside until every reader has been seen inside
      // simultaneously (sticky flag, so late observers exit promptly).
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::seconds(5);
      while (!all_in.load() &&
             std::chrono::steady_clock::now() < deadline) {
        if (inside.load() == kReaders) all_in.store(true);
        std::this_thread::yield();
      }
      if (all_in.load()) saw_all.fetch_add(1);
      inside.fetch_sub(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(saw_all.load(), kReaders);
}

TEST(SharedMutexInterleavingTest, NestedReaderAcquisitionFollowsRanks) {
  // A reader chain across two ranks (table access over the KV band) is
  // legal and, under the checker, lands in the lock-order graph.
  SharedMutex outer{LockRank::kTableAccess, "test.shared.outer"};
  SharedCounterState state;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        ReaderMutexLock ro(&outer);
        ReaderMutexLock ri(&state.mu);
        EXPECT_EQ(state.a, state.b);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(lock_order::HeldByCurrentThread(), 0u);
}

}  // namespace
}  // namespace streamlake
