#include <gtest/gtest.h>

#include "common/random.h"
#include "format/lakefile.h"
#include "format/row_codec.h"
#include "format/schema.h"
#include "format/types.h"

namespace streamlake::format {
namespace {

Schema DpiSchema() {
  return Schema{{"url", DataType::kString},
                {"start_time", DataType::kInt64},
                {"province", DataType::kString},
                {"bytes", DataType::kInt64},
                {"roaming", DataType::kBool},
                {"score", DataType::kDouble}};
}

Row MakeDpiRow(Random* rng, int64_t t) {
  static const std::vector<std::string> kProvinces = {
      "beijing", "shanghai", "guangdong", "sichuan", "hubei"};
  Row row;
  row.fields = {Value(std::string("http://app") +
                      std::to_string(rng->Uniform(10)) + ".com"),
                Value(t),
                Value(kProvinces[rng->Uniform(kProvinces.size())]),
                Value(static_cast<int64_t>(rng->Uniform(4096))),
                Value(rng->OneIn(10)),
                Value(rng->NextDouble())};
  return row;
}

TEST(ValueTest, TypeOfAndCompare) {
  EXPECT_EQ(TypeOf(Value(true)), DataType::kBool);
  EXPECT_EQ(TypeOf(Value(int64_t{5})), DataType::kInt64);
  EXPECT_EQ(TypeOf(Value(1.5)), DataType::kDouble);
  EXPECT_EQ(TypeOf(Value(std::string("x"))), DataType::kString);

  EXPECT_LT(CompareValues(Value(int64_t{1}), Value(int64_t{2})), 0);
  EXPECT_GT(CompareValues(Value(std::string("b")), Value(std::string("a"))), 0);
  EXPECT_EQ(CompareValues(Value(1.5), Value(1.5)), 0);
}

TEST(ValueTest, EncodeDecodeAllTypes) {
  std::vector<Value> values = {Value(true), Value(int64_t{-42}), Value(2.75),
                               Value(std::string("hello"))};
  Bytes buf;
  for (const Value& v : values) EncodeValue(&buf, v);
  Decoder dec{ByteView(buf)};
  for (const Value& expected : values) {
    auto got = DecodeValue(&dec);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(CompareValues(*got, expected), 0);
  }
}

TEST(SchemaTest, FieldLookupAndValidate) {
  Schema schema = DpiSchema();
  EXPECT_EQ(schema.num_fields(), 6u);
  EXPECT_EQ(schema.FieldIndex("province"), 2);
  EXPECT_EQ(schema.FieldIndex("missing"), -1);

  Random rng(1);
  Row good = MakeDpiRow(&rng, 100);
  EXPECT_TRUE(schema.ValidateRow(good).ok());

  Row short_row;
  short_row.fields = {Value(std::string("u"))};
  EXPECT_TRUE(schema.ValidateRow(short_row).IsInvalidArgument());

  Row wrong_type = good;
  wrong_type.fields[1] = Value(std::string("not an int"));
  EXPECT_TRUE(schema.ValidateRow(wrong_type).IsInvalidArgument());
}

TEST(SchemaTest, EncodeDecodeRoundTrip) {
  Schema schema = DpiSchema();
  Bytes buf;
  schema.EncodeTo(&buf);
  Decoder dec{ByteView(buf)};
  auto decoded = Schema::DecodeFrom(&dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, schema);
}

TEST(RowCodecTest, RoundTrip) {
  Schema schema = DpiSchema();
  Random rng(2);
  for (int i = 0; i < 50; ++i) {
    Row row = MakeDpiRow(&rng, 1656806400 + i);
    Bytes buf;
    EncodeRow(schema, row, &buf);
    auto decoded = DecodeRow(schema, ByteView(buf));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, row);
  }
}

TEST(RowCodecTest, DecodeRejectsTruncation) {
  Schema schema = DpiSchema();
  Random rng(3);
  Row row = MakeDpiRow(&rng, 1);
  Bytes buf;
  EncodeRow(schema, row, &buf);
  buf.resize(buf.size() / 2);
  EXPECT_FALSE(DecodeRow(schema, ByteView(buf)).ok());
}

TEST(LakeFileTest, WriteReadSingleGroup) {
  Schema schema = DpiSchema();
  LakeFileWriter writer(schema);
  Random rng(4);
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) rows.push_back(MakeDpiRow(&rng, 1000 + i));
  ASSERT_TRUE(writer.AppendBatch(rows).ok());
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());

  auto reader = LakeFileReader::Open(std::move(*file));
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->num_row_groups(), 1u);
  EXPECT_EQ(reader->num_rows(), 100u);
  EXPECT_EQ(reader->schema(), schema);

  auto all = reader->ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) EXPECT_EQ((*all)[i], rows[i]);
}

TEST(LakeFileTest, MultipleRowGroupsAndStats) {
  Schema schema = DpiSchema();
  LakeFileOptions options;
  options.rows_per_group = 64;
  LakeFileWriter writer(schema, options);
  Random rng(5);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(writer.Append(MakeDpiRow(&rng, 5000 + i)).ok());
  }
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());
  auto reader = LakeFileReader::Open(std::move(*file));
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->num_row_groups(), 5u);  // ceil(300/64)
  EXPECT_EQ(reader->num_rows(), 300u);

  // start_time stats per group should be tight and monotone across groups.
  int time_col = schema.FieldIndex("start_time");
  for (size_t g = 0; g < reader->num_row_groups(); ++g) {
    const ColumnStats& stats = reader->row_group(g).columns[time_col].stats;
    ASSERT_TRUE(stats.min.has_value());
    ASSERT_TRUE(stats.max.has_value());
    int64_t lo = std::get<int64_t>(*stats.min);
    int64_t hi = std::get<int64_t>(*stats.max);
    EXPECT_EQ(lo, 5000 + static_cast<int64_t>(g) * 64);
    EXPECT_EQ(hi, std::min<int64_t>(5000 + 299, lo + 63));
  }
}

TEST(LakeFileTest, StatsEnableRowGroupSkipping) {
  // Count how many groups a [t0, t1) predicate can skip using stats only.
  Schema schema{{"t", DataType::kInt64}};
  LakeFileOptions options;
  options.rows_per_group = 100;
  LakeFileWriter writer(schema, options);
  for (int64_t i = 0; i < 1000; ++i) {
    Row row;
    row.fields = {Value(i)};
    ASSERT_TRUE(writer.Append(row).ok());
  }
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());
  auto reader = LakeFileReader::Open(std::move(*file));
  ASSERT_TRUE(reader.ok());
  int skipped = 0;
  for (size_t g = 0; g < reader->num_row_groups(); ++g) {
    const ColumnStats& stats = reader->row_group(g).columns[0].stats;
    int64_t lo = std::get<int64_t>(*stats.min);
    int64_t hi = std::get<int64_t>(*stats.max);
    if (hi < 500 || lo >= 600) ++skipped;  // predicate: 500 <= t < 600
  }
  EXPECT_EQ(skipped, 9);  // only one of ten groups overlaps
}

TEST(LakeFileTest, ReadSingleColumn) {
  Schema schema = DpiSchema();
  LakeFileWriter writer(schema);
  Random rng(6);
  std::vector<Row> rows;
  for (int i = 0; i < 50; ++i) rows.push_back(MakeDpiRow(&rng, i));
  ASSERT_TRUE(writer.AppendBatch(rows).ok());
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());
  auto reader = LakeFileReader::Open(std::move(*file));
  ASSERT_TRUE(reader.ok());

  auto col = reader->ReadColumn(0, 1);  // start_time
  ASSERT_TRUE(col.ok());
  const auto& times = std::get<std::vector<int64_t>>(*col);
  ASSERT_EQ(times.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(times[i], i);

  EXPECT_TRUE(reader->ReadColumn(0, 99).status().IsInvalidArgument());
  EXPECT_TRUE(reader->ReadColumn(9, 0).status().IsInvalidArgument());
}

TEST(LakeFileTest, ColumnarBeatsRowFormatOnSize) {
  // The row_2_col archive claim: columnar + compression is much smaller.
  Schema schema = DpiSchema();
  Random rng(7);
  std::vector<Row> rows;
  for (int i = 0; i < 5000; ++i) rows.push_back(MakeDpiRow(&rng, 100000 + i));

  Bytes row_format;
  for (const Row& r : rows) EncodeRow(schema, r, &row_format);

  LakeFileWriter writer(schema);
  ASSERT_TRUE(writer.AppendBatch(rows).ok());
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());
  EXPECT_LT(file->size() * 2, row_format.size());
}

TEST(LakeFileTest, OpenRejectsCorruptFile) {
  Schema schema{{"x", DataType::kInt64}};
  LakeFileWriter writer(schema);
  Row row;
  row.fields = {Value(int64_t{1})};
  ASSERT_TRUE(writer.Append(row).ok());
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());

  Bytes bad_magic = *file;
  bad_magic[0] = 'X';
  EXPECT_TRUE(LakeFileReader::Open(bad_magic).status().IsCorruption());

  Bytes tiny = {1, 2, 3};
  EXPECT_TRUE(LakeFileReader::Open(tiny).status().IsCorruption());
}

TEST(LakeFileTest, ChunkCrcDetectsPayloadCorruption) {
  Schema schema{{"s", DataType::kString}};
  LakeFileWriter writer(schema);
  for (int i = 0; i < 100; ++i) {
    Row row;
    row.fields = {Value(std::string("value-") + std::to_string(i))};
    ASSERT_TRUE(writer.Append(row).ok());
  }
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());
  // Flip a byte inside the first chunk (just past the 4-byte magic + header).
  Bytes corrupted = *file;
  corrupted[20] ^= 0xFF;
  auto reader = LakeFileReader::Open(std::move(corrupted));
  ASSERT_TRUE(reader.ok());  // footer still parses
  EXPECT_TRUE(reader->ReadColumn(0, 0).status().IsCorruption());
}

TEST(LakeFileTest, WriterCannotBeReusedAfterFinish) {
  Schema schema{{"x", DataType::kInt64}};
  LakeFileWriter writer(schema);
  Row row;
  row.fields = {Value(int64_t{1})};
  ASSERT_TRUE(writer.Append(row).ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_TRUE(writer.Append(row).IsInvalidArgument());
  EXPECT_TRUE(writer.Finish().status().IsInvalidArgument());
}

TEST(LakeFileTest, EmptyFileRoundTrips) {
  Schema schema{{"x", DataType::kInt64}};
  LakeFileWriter writer(schema);
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());
  auto reader = LakeFileReader::Open(std::move(*file));
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->num_row_groups(), 0u);
  EXPECT_EQ(reader->num_rows(), 0u);
  auto all = reader->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all->empty());
}

// Parameterized sweep: every (compression, rows_per_group) combination
// round-trips and keeps correct stats.
class LakeFileParam
    : public ::testing::TestWithParam<std::pair<codec::Compression, size_t>> {
};

TEST_P(LakeFileParam, RoundTripWithStats) {
  auto [compression, rows_per_group] = GetParam();
  Schema schema = DpiSchema();
  LakeFileOptions options;
  options.compression = compression;
  options.rows_per_group = rows_per_group;
  LakeFileWriter writer(schema, options);
  Random rng(static_cast<uint64_t>(rows_per_group) * 31 +
             static_cast<uint64_t>(compression));
  std::vector<Row> rows;
  for (int i = 0; i < 333; ++i) rows.push_back(MakeDpiRow(&rng, 7000 + i));
  ASSERT_TRUE(writer.AppendBatch(rows).ok());
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());
  auto reader = LakeFileReader::Open(std::move(*file));
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->num_rows(), 333u);
  EXPECT_EQ(reader->num_row_groups(),
            (333 + rows_per_group - 1) / rows_per_group);
  auto all = reader->ReadAll();
  ASSERT_TRUE(all.ok());
  for (size_t i = 0; i < rows.size(); ++i) ASSERT_EQ((*all)[i], rows[i]);
  // Per-group stats stay tight regardless of layout.
  int time_col = schema.FieldIndex("start_time");
  for (size_t g = 0; g < reader->num_row_groups(); ++g) {
    const ColumnStats& stats = reader->row_group(g).columns[time_col].stats;
    ASSERT_TRUE(stats.min.has_value());
    EXPECT_EQ(std::get<int64_t>(*stats.min),
              7000 + static_cast<int64_t>(g * rows_per_group));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, LakeFileParam,
    ::testing::Values(
        std::make_pair(codec::Compression::kNone, size_t{1}),
        std::make_pair(codec::Compression::kNone, size_t{64}),
        std::make_pair(codec::Compression::kNone, size_t{8192}),
        std::make_pair(codec::Compression::kLz, size_t{1}),
        std::make_pair(codec::Compression::kLz, size_t{64}),
        std::make_pair(codec::Compression::kLz, size_t{8192})));

// Property test: random schemas and rows round-trip through LakeFile.
TEST(LakeFileProperty, RandomTablesRoundTrip) {
  Random rng(2025);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Field> fields;
    size_t num_fields = 1 + rng.Uniform(6);
    for (size_t f = 0; f < num_fields; ++f) {
      fields.push_back(Field{"c" + std::to_string(f),
                             static_cast<DataType>(rng.Uniform(4))});
    }
    Schema schema(fields);
    LakeFileOptions options;
    options.rows_per_group = 1 + rng.Uniform(100);
    LakeFileWriter writer(schema, options);
    size_t num_rows = rng.Uniform(500);
    std::vector<Row> rows;
    for (size_t i = 0; i < num_rows; ++i) {
      Row row;
      for (const Field& f : schema.fields()) {
        switch (f.type) {
          case DataType::kBool:
            row.fields.emplace_back(rng.OneIn(2));
            break;
          case DataType::kInt64:
            row.fields.emplace_back(static_cast<int64_t>(rng.Next()));
            break;
          case DataType::kDouble:
            row.fields.emplace_back(rng.NextDouble());
            break;
          case DataType::kString:
            row.fields.emplace_back(rng.NextString(rng.Uniform(30)));
            break;
        }
      }
      rows.push_back(std::move(row));
    }
    ASSERT_TRUE(writer.AppendBatch(rows).ok());
    auto file = writer.Finish();
    ASSERT_TRUE(file.ok());
    auto reader = LakeFileReader::Open(std::move(*file));
    ASSERT_TRUE(reader.ok()) << "trial " << trial;
    auto all = reader->ReadAll();
    ASSERT_TRUE(all.ok()) << "trial " << trial;
    ASSERT_EQ(all->size(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ((*all)[i], rows[i]) << "trial " << trial << " row " << i;
    }
  }
}

}  // namespace
}  // namespace streamlake::format
