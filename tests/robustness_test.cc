// Robustness: decoders must reject arbitrary corrupt input with an error,
// never crash or mis-read, and concurrent use of the lakehouse must stay
// consistent. These are fuzz-style property tests with deterministic
// seeds.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "core/streamlake.h"
#include "format/lakefile.h"
#include "format/row_codec.h"
#include "kv/write_batch.h"
#include "stream/stream_record.h"
#include "table/metadata.h"

namespace streamlake {
namespace {

Bytes RandomBytes(Random* rng, size_t max_len) {
  Bytes out;
  size_t n = rng->Uniform(max_len);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<uint8_t>(rng->Uniform(256)));
  }
  return out;
}

/// Flip, truncate, or splice a valid encoding.
Bytes Mutate(const Bytes& valid, Random* rng) {
  Bytes out = valid;
  switch (rng->Uniform(3)) {
    case 0:  // bit flips
      for (int i = 0; i < 4 && !out.empty(); ++i) {
        out[rng->Uniform(out.size())] ^= 1 << rng->Uniform(8);
      }
      break;
    case 1:  // truncation
      if (!out.empty()) out.resize(rng->Uniform(out.size()));
      break;
    case 2: {  // splice random garbage
      Bytes garbage = RandomBytes(rng, 64);
      size_t at = out.empty() ? 0 : rng->Uniform(out.size());
      out.insert(out.begin() + at, garbage.begin(), garbage.end());
      break;
    }
  }
  return out;
}

TEST(FuzzTest, LakeFileOpenNeverCrashes) {
  Random rng(1234);
  format::Schema schema{{"a", format::DataType::kInt64},
                        {"b", format::DataType::kString}};
  format::LakeFileWriter writer(schema);
  for (int i = 0; i < 200; ++i) {
    format::Row row;
    row.fields = {format::Value(static_cast<int64_t>(i)),
                  format::Value(rng.NextString(10))};
    ASSERT_TRUE(writer.Append(row).ok());
  }
  Bytes valid = *writer.Finish();

  for (int trial = 0; trial < 300; ++trial) {
    Bytes input = trial % 3 == 0 ? RandomBytes(&rng, 2000) : Mutate(valid, &rng);
    auto reader = format::LakeFileReader::Open(input);
    if (!reader.ok()) continue;  // rejected: fine
    // Footer happened to parse; reads must still fail cleanly or succeed.
    for (size_t g = 0; g < reader->num_row_groups(); ++g) {
      auto rows = reader->ReadRowGroup(g);
      (void)rows;  // either outcome acceptable; must not crash
    }
  }
}

TEST(FuzzTest, SliceAndRowDecodersNeverCrash) {
  Random rng(77);
  format::Schema schema{{"x", format::DataType::kDouble},
                        {"y", format::DataType::kString},
                        {"z", format::DataType::kBool}};
  for (int trial = 0; trial < 500; ++trial) {
    Bytes garbage = RandomBytes(&rng, 400);
    (void)stream::DecodeSlice(ByteView(garbage));
    (void)format::DecodeRow(schema, ByteView(garbage));
    kv::WriteBatch batch;
    (void)batch.DecodeFrom(ByteView(garbage));
    (void)table::CommitFile::DecodeFrom(ByteView(garbage));
    (void)table::SnapshotMeta::DecodeFrom(ByteView(garbage));
    (void)table::TableInfo::DecodeFrom(ByteView(garbage));
  }
}

TEST(FuzzTest, MutatedCommitsRoundTripOrReject) {
  Random rng(99);
  table::CommitFile commit;
  commit.commit_seq = 42;
  commit.timestamp = 1656806400;
  for (int i = 0; i < 5; ++i) {
    table::DataFileMeta meta;
    meta.path = "/t/data/f-" + std::to_string(i);
    meta.partition = "p" + std::to_string(i % 2);
    meta.record_count = 100 + i;
    meta.file_bytes = 5000 + i;
    meta.column_stats["c"] = format::ColumnStats{
        format::Value(static_cast<int64_t>(i)),
        format::Value(static_cast<int64_t>(i + 10))};
    commit.added.push_back(meta);
  }
  Bytes valid;
  commit.EncodeTo(&valid);
  // Valid input round-trips.
  auto decoded = table::CommitFile::DecodeFrom(ByteView(valid));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->added.size(), 5u);
  // Mutations either decode to *something* or error; never crash.
  for (int trial = 0; trial < 300; ++trial) {
    Bytes mutated = Mutate(valid, &rng);
    (void)table::CommitFile::DecodeFrom(ByteView(mutated));
  }
}

TEST(ConcurrencyTest, ParallelInsertersAndReaders) {
  core::StreamLake lake;
  auto created = lake.lakehouse().CreateTable(
      "t",
      format::Schema{{"k", format::DataType::kInt64},
                     {"p", format::DataType::kString}},
      table::PartitionSpec::Identity("p"));
  ASSERT_TRUE(created.ok());
  table::Table* table = *created;

  constexpr int kWriters = 4;
  constexpr int kBatches = 25;
  constexpr int kRowsPerBatch = 20;
  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};

  std::thread reader([&] {
    // Concurrent reads must always see a consistent snapshot: the count
    // is a multiple of the batch size (commits are atomic).
    while (!stop.load()) {
      query::QuerySpec spec;
      spec.aggregates = {query::AggregateSpec::CountStar()};
      auto result = table->Select(spec);
      if (!result.ok()) {
        ++reader_errors;
        continue;
      }
      int64_t count = std::get<int64_t>(result->rows[0].fields[0]);
      if (count % kRowsPerBatch != 0) ++reader_errors;
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int b = 0; b < kBatches; ++b) {
        std::vector<format::Row> rows;
        for (int i = 0; i < kRowsPerBatch; ++i) {
          format::Row row;
          row.fields = {format::Value(static_cast<int64_t>(w * 10000 + b)),
                        format::Value("p" + std::to_string(w))};
          rows.push_back(std::move(row));
        }
        ASSERT_TRUE(table->Insert(rows).ok());
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(reader_errors.load(), 0);
  query::QuerySpec spec;
  spec.aggregates = {query::AggregateSpec::CountStar()};
  auto final_count = table->Select(spec);
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(std::get<int64_t>(final_count->rows[0].fields[0]),
            kWriters * kBatches * kRowsPerBatch);
}

TEST(ConcurrencyTest, ParallelProducersOneConsumerSeesEverything) {
  core::StreamLake lake;
  streaming::TopicConfig config;
  config.stream_num = 4;
  ASSERT_TRUE(lake.dispatcher().CreateTopic("t", config).ok());

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      auto producer = lake.NewProducer();
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(producer
                        .Send("t", streaming::Message(
                                       "key-" + std::to_string(p),
                                       std::to_string(p * 100000 + i)))
                        .ok());
      }
    });
  }
  for (auto& t : producers) t.join();

  auto consumer = lake.NewConsumer("g");
  ASSERT_TRUE(consumer.Subscribe("t").ok());
  auto polled = consumer.Poll(kProducers * kPerProducer + 100);
  ASSERT_TRUE(polled.ok());
  ASSERT_EQ(polled->size(), kProducers * kPerProducer);
  // Per-key order is preserved despite concurrency.
  std::map<std::string, int64_t> last_seen;
  for (const auto& consumed : *polled) {
    int64_t v = std::stoll(consumed.message.value);
    auto it = last_seen.find(consumed.message.key);
    if (it != last_seen.end()) {
      EXPECT_GT(v, it->second);
    }
    last_seen[consumed.message.key] = v;
  }
}

}  // namespace
}  // namespace streamlake
