#include <gtest/gtest.h>

#include "core/streamlake.h"
#include "query/sql_parser.h"
#include "sql/engine.h"

namespace streamlake {
namespace {

using query::ParseSql;
using query::SqlStatement;

// ---------------- parser ----------------

TEST(SqlParserTest, Fig13DauQuery) {
  auto parsed = ParseSql(
      "Select COUNT(*) as DAU "
      "From TB_DPI_LOG_HOURS "
      "Where url = 'http://streamlake_fin_app.com' "
      "and start_time >= 1656806400 --July 3rd, 2022\n"
      "and start_time < 1656892800 --July 4th, 2022\n"
      "Group By province");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->kind, SqlStatement::Kind::kSelect);
  EXPECT_EQ(parsed->table, "TB_DPI_LOG_HOURS");
  ASSERT_EQ(parsed->select.aggregates.size(), 1u);
  EXPECT_EQ(parsed->select.aggregates[0].alias, "DAU");
  EXPECT_EQ(parsed->select.group_by,
            (std::vector<std::string>{"province"}));
  ASSERT_EQ(parsed->select.where.predicates().size(), 3u);
  EXPECT_EQ(parsed->select.where.predicates()[0].column, "url");
  EXPECT_EQ(parsed->select.where.predicates()[1].op, query::CompareOp::kGe);
  EXPECT_EQ(std::get<int64_t>(parsed->select.where.predicates()[2].literal),
            1656892800);
}

TEST(SqlParserTest, SelectVariants) {
  auto star = ParseSql("SELECT * FROM t");
  ASSERT_TRUE(star.ok());
  EXPECT_TRUE(star->select.projection.empty());
  EXPECT_TRUE(star->select.aggregates.empty());

  auto projection = ParseSql("SELECT a, b FROM t WHERE c IN ('x', 'y')");
  ASSERT_TRUE(projection.ok());
  EXPECT_EQ(projection->select.projection,
            (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(projection->select.where.predicates().size(), 1u);
  EXPECT_EQ(projection->select.where.predicates()[0].in_list.size(), 2u);

  auto aggs = ParseSql(
      "SELECT province, COUNT(*), SUM(bytes), AVG(bytes) AS mean "
      "FROM t GROUP BY province ORDER BY mean DESC LIMIT 10");
  ASSERT_TRUE(aggs.ok()) << aggs.status().ToString();
  EXPECT_EQ(aggs->select.aggregates.size(), 3u);
  EXPECT_EQ(aggs->select.aggregates[2].alias, "mean");
  EXPECT_EQ(aggs->select.order_by, "mean");
  EXPECT_TRUE(aggs->select.order_descending);
  EXPECT_EQ(aggs->select.limit, 10u);

  auto doubles = ParseSql("SELECT * FROM t WHERE d <= 0.05 AND b = TRUE");
  ASSERT_TRUE(doubles.ok());
  EXPECT_DOUBLE_EQ(
      std::get<double>(doubles->select.where.predicates()[0].literal), 0.05);
  EXPECT_EQ(std::get<bool>(doubles->select.where.predicates()[1].literal),
            true);
}

TEST(SqlParserTest, InsertDeleteUpdate) {
  auto insert = ParseSql(
      "INSERT INTO orders VALUES (1, 'created', 100), (2, 'shipped', 200)");
  ASSERT_TRUE(insert.ok());
  EXPECT_EQ(insert->kind, SqlStatement::Kind::kInsert);
  ASSERT_EQ(insert->insert_rows.size(), 2u);
  EXPECT_EQ(std::get<std::string>(insert->insert_rows[1][1]), "shipped");

  auto del = ParseSql("DELETE FROM orders WHERE order_id = 1");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->kind, SqlStatement::Kind::kDelete);
  EXPECT_EQ(del->where.predicates().size(), 1u);

  auto update = ParseSql(
      "UPDATE orders SET status = 'done' WHERE order_id >= 5");
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->kind, SqlStatement::Kind::kUpdate);
  EXPECT_EQ(update->set_column, "status");
  EXPECT_EQ(std::get<std::string>(update->set_value), "done");
}

TEST(SqlParserTest, ErrorsAreDiagnosed) {
  EXPECT_TRUE(ParseSql("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSql("DROP TABLE t").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSql("SELECT FROM t").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSql("SELECT * FROM t WHERE a !! 3").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseSql("SELECT * FROM t WHERE a = 'unterminated").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseSql("SELECT SUM(*) FROM t").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSql("SELECT a, COUNT(*) FROM t GROUP BY b").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseSql("SELECT * FROM t LIMIT ten").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseSql("SELECT * FROM t garbage").status()
                  .IsInvalidArgument());
}

// ---------------- engine ----------------

struct SqlFixture {
  core::StreamLake lake;
  std::unique_ptr<sql::Engine> engine;

  SqlFixture() {
    auto created = lake.lakehouse().CreateTable(
        "TB_DPI_LOG_HOURS",
        format::Schema{{"url", format::DataType::kString},
                       {"start_time", format::DataType::kInt64},
                       {"province", format::DataType::kString},
                       {"bytes", format::DataType::kInt64}},
        table::PartitionSpec::Identity("province"));
    EXPECT_TRUE(created.ok());
    engine = std::make_unique<sql::Engine>(&lake.lakehouse());
  }
};

TEST(SqlEngineTest, EndToEndDau) {
  SqlFixture f;
  // Load via SQL.
  for (int i = 0; i < 40; ++i) {
    std::string url = i % 2 ? "'http://streamlake_fin_app.com'" : "'http://x'";
    std::string province = i % 4 ? "'beijing'" : "'hubei'";
    auto inserted = f.engine->Execute(
        "INSERT INTO TB_DPI_LOG_HOURS VALUES (" + url + ", " +
        std::to_string(1656806400 + i) + ", " + province + ", 100)");
    ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  }
  // The Fig. 13 query verbatim.
  auto dau = f.engine->Execute(
      "SELECT COUNT(*) AS DAU FROM TB_DPI_LOG_HOURS "
      "WHERE url = 'http://streamlake_fin_app.com' "
      "AND start_time >= 1656806400 AND start_time < 1656892800 "
      "GROUP BY province");
  ASSERT_TRUE(dau.ok()) << dau.status().ToString();
  EXPECT_EQ(dau->column_names,
            (std::vector<std::string>{"province", "DAU"}));
  int64_t total = 0;
  for (const format::Row& row : dau->rows) {
    total += std::get<int64_t>(row.fields[1]);
  }
  EXPECT_EQ(total, 20);

  // UPDATE + DELETE through SQL.
  auto updated = f.engine->Execute(
      "UPDATE TB_DPI_LOG_HOURS SET bytes = 999 WHERE start_time < 1656806410");
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(std::get<int64_t>(updated->rows[0].fields[0]), 10);

  auto deleted = f.engine->Execute(
      "DELETE FROM TB_DPI_LOG_HOURS WHERE province = 'hubei'");
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(std::get<int64_t>(deleted->rows[0].fields[0]), 10);

  auto remaining = f.engine->Execute(
      "SELECT COUNT(*) FROM TB_DPI_LOG_HOURS");
  ASSERT_TRUE(remaining.ok());
  EXPECT_EQ(std::get<int64_t>(remaining->rows[0].fields[0]), 30);
}

TEST(SqlEngineTest, SelectWithOrderLimitAndMetrics) {
  SqlFixture f;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(f.engine
                    ->Execute("INSERT INTO TB_DPI_LOG_HOURS VALUES ('u', " +
                              std::to_string(i) + ", 'p" +
                              std::to_string(i % 3) + "', " +
                              std::to_string(i * 10) + ")")
                    .ok());
  }
  table::SelectMetrics metrics;
  auto top = f.engine->Execute(
      "SELECT province, SUM(bytes) AS total FROM TB_DPI_LOG_HOURS "
      "GROUP BY province ORDER BY total DESC LIMIT 2",
      &metrics);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  ASSERT_EQ(top->rows.size(), 2u);
  EXPECT_GE(std::get<double>(top->rows[0].fields[1]),
            std::get<double>(top->rows[1].fields[1]));
  EXPECT_GT(metrics.files_scanned, 0u);

  EXPECT_TRUE(f.engine->Execute("SELECT * FROM missing_table").status()
                  .IsNotFound());
}

}  // namespace
}  // namespace streamlake
