#include <gtest/gtest.h>

#include <cmath>

#include "lakebrain/compaction.h"
#include "table/lakehouse.h"
#include "lakebrain/dqn.h"
#include "lakebrain/mlp.h"
#include "lakebrain/partition_advisor.h"
#include "lakebrain/qdtree.h"
#include "lakebrain/spn.h"
#include "workload/tpch.h"

namespace streamlake::lakebrain {
namespace {

// ---------------- MLP ----------------

TEST(MlpTest, LearnsLinearFunction) {
  // y = 2x0 - 3x1 + 1, trained head 0.
  Mlp mlp({2, 16, 1}, 5);
  Random rng(6);
  for (int step = 0; step < 8000; ++step) {
    double x0 = rng.NextDouble() * 2 - 1;
    double x1 = rng.NextDouble() * 2 - 1;
    double y = 2 * x0 - 3 * x1 + 1;
    mlp.TrainStep({x0, x1}, 0, y, 0.01);
  }
  double total_error = 0;
  for (int i = 0; i < 100; ++i) {
    double x0 = rng.NextDouble() * 2 - 1;
    double x1 = rng.NextDouble() * 2 - 1;
    double y = 2 * x0 - 3 * x1 + 1;
    total_error += std::fabs(mlp.Forward({x0, x1})[0] - y);
  }
  EXPECT_LT(total_error / 100, 0.3);
}

TEST(MlpTest, CopyFromSynchronizesOutputs) {
  Mlp a({3, 8, 2}, 1);
  Mlp b({3, 8, 2}, 2);
  std::vector<double> x = {0.1, -0.5, 0.7};
  EXPECT_NE(a.Forward(x)[0], b.Forward(x)[0]);
  b.CopyFrom(a);
  EXPECT_EQ(a.Forward(x)[0], b.Forward(x)[0]);
  EXPECT_EQ(a.Forward(x)[1], b.Forward(x)[1]);
}

// ---------------- DQN ----------------

TEST(DqnTest, EpsilonDecays) {
  DqnOptions options;
  options.epsilon_decay_steps = 100;
  DqnAgent agent(options);
  EXPECT_DOUBLE_EQ(agent.epsilon(), 1.0);
  std::vector<double> state(options.state_dim, 0.0);
  for (int i = 0; i < 200; ++i) agent.SelectAction(state);
  EXPECT_NEAR(agent.epsilon(), options.epsilon_end, 1e-9);
}

TEST(DqnTest, LearnsTrivialBanditPolicy) {
  // Two-state contextual bandit: in state [1,0] action 1 pays, in state
  // [0,1] action 0 pays. The agent must learn the mapping.
  DqnOptions options;
  options.state_dim = 2;
  options.num_actions = 2;
  options.hidden = {16};
  options.epsilon_decay_steps = 1500;
  options.gamma = 0.0;  // bandit
  options.learning_rate = 5e-3;
  DqnAgent agent(options);
  Random rng(9);
  for (int step = 0; step < 4000; ++step) {
    bool flip = rng.OneIn(2);
    std::vector<double> state = flip ? std::vector<double>{1, 0}
                                     : std::vector<double>{0, 1};
    int action = agent.SelectAction(state);
    double reward = (flip ? action == 1 : action == 0) ? 1.0 : -1.0;
    agent.Observe(state, action, reward, state, true);
    agent.TrainStep();
  }
  EXPECT_EQ(agent.GreedyAction({1, 0}), 1);
  EXPECT_EQ(agent.GreedyAction({0, 1}), 0);
}

// ---------------- Block utilization ----------------

TEST(BlockUtilizationTest, Formula) {
  // Files 512KB each with 1MB blocks: each uses half a block.
  std::vector<uint64_t> halves(4, 512 * 1024);
  EXPECT_DOUBLE_EQ(BlockUtilization(halves, 1 << 20), 0.5);
  // Exact multiples: full utilization.
  std::vector<uint64_t> exact = {1 << 20, 2 << 20};
  EXPECT_DOUBLE_EQ(BlockUtilization(exact, 1 << 20), 1.0);
  // Empty set: defined as fully utilized.
  EXPECT_DOUBLE_EQ(BlockUtilization({}, 1 << 20), 1.0);
}

TEST(BlockUtilizationTest, MergingSmallFilesImproves) {
  std::vector<uint64_t> small(16, 100 * 1024);  // 16 x 100KB, 1MB blocks
  double before = BlockUtilization(small, 1 << 20);
  std::vector<uint64_t> merged = {16 * 100 * 1024};
  double after = BlockUtilization(merged, 1 << 20);
  EXPECT_GT(after, before * 3);
}

TEST(CompactionFeaturesTest, ExpectedImprovementPositiveForSmallFiles) {
  std::vector<table::DataFileMeta> files;
  for (int i = 0; i < 10; ++i) {
    table::DataFileMeta meta;
    meta.partition = "p";
    meta.file_bytes = 50 * 1024;
    files.push_back(meta);
  }
  double improvement = AutoCompactionAgent::ExpectedImprovement(
      files, "p", 1 << 20, 4 << 20);
  EXPECT_GT(improvement, 0.3);
  // One big file: nothing to merge.
  std::vector<table::DataFileMeta> big(1);
  big[0].partition = "p";
  big[0].file_bytes = 8 << 20;
  EXPECT_NEAR(AutoCompactionAgent::ExpectedImprovement(big, "p", 1 << 20,
                                                       4 << 20),
              0.0, 1e-9);
}

// ---------------- Auto-compaction end-to-end ----------------

struct CompactionFixture {
  sim::SimClock clock;
  storage::StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
  sim::NetworkModel compute_link{sim::NetworkProfile::Rdma(), &clock};
  kv::KvStore object_index;
  kv::KvStore meta_cache;
  std::unique_ptr<storage::PlogStore> plogs;
  std::unique_ptr<storage::ObjectStore> objects;
  std::unique_ptr<table::MetadataStore> meta;
  std::unique_ptr<table::LakehouseService> lakehouse;
  table::Table* table = nullptr;

  CompactionFixture() {
    pool.AddCluster(3, 2, 1ULL << 30);
    storage::PlogStoreConfig config;
    config.num_shards = 16;
    config.plog.capacity = 64 << 20;
    config.plog.redundancy = storage::RedundancyConfig::Replication(3);
    plogs = std::make_unique<storage::PlogStore>(&pool, config, &clock);
    objects = std::make_unique<storage::ObjectStore>(plogs.get(),
                                                     &object_index);
    meta = std::make_unique<table::MetadataStore>(
        objects.get(), &meta_cache, table::MetadataMode::kAccelerated);
    lakehouse = std::make_unique<table::LakehouseService>(
        meta.get(), objects.get(), &clock, &compute_link);
    auto created = lakehouse->CreateTable(
        "t",
        format::Schema{{"k", format::DataType::kInt64},
                       {"p", format::DataType::kString}},
        table::PartitionSpec::Identity("p"));
    EXPECT_TRUE(created.ok());
    table = *created;
  }

  void IngestSmallFiles(const std::string& partition, int n) {
    for (int i = 0; i < n; ++i) {
      format::Row row;
      row.fields = {format::Value(static_cast<int64_t>(i)),
                    format::Value(partition)};
      ASSERT_TRUE(table->Insert({row}).ok());
    }
  }
};

TEST(AutoCompactionTest, CompactActionImprovesUtilizationAndRewards) {
  CompactionFixture f;
  f.IngestSmallFiles("hot", 12);

  AutoCompactionAgent::Options options;
  options.block_size = 4096;
  options.training = false;  // deterministic greedy for this test
  AutoCompactionAgent agent(options);

  GlobalFeatures global;
  global.target_file_bytes = 1 << 20;
  // Force the compact action by stepping until the greedy policy picks it
  // or probing both actions: drive directly through the table instead.
  auto files = f.table->LiveFiles();
  ASSERT_TRUE(files.ok());
  double before = ComputePartitionFeatures(*files, "hot", 4096, 0)
                      .partition_utilization;
  auto result = f.table->CompactPartition("hot");
  ASSERT_TRUE(result.ok());
  files = f.table->LiveFiles();
  ASSERT_TRUE(files.ok());
  double after = ComputePartitionFeatures(*files, "hot", 4096, 0)
                     .partition_utilization;
  EXPECT_GT(after, before);
}

TEST(AutoCompactionTest, StepReportsConflictRewardPerPaper) {
  CompactionFixture f;
  f.IngestSmallFiles("hot", 8);

  AutoCompactionAgent::Options options;
  options.block_size = 4096;
  options.training = true;
  options.dqn.epsilon_start = 1.0;  // always explore; both actions occur
  options.dqn.epsilon_end = 1.0;
  AutoCompactionAgent agent(options);

  GlobalFeatures global;
  global.target_file_bytes = 1 << 20;
  bool saw_conflict = false;
  bool saw_success = false;
  for (int round = 0; round < 40 && !(saw_conflict && saw_success); ++round) {
    auto info = f.table->Info();
    ASSERT_TRUE(info.ok());
    uint64_t stale_base = info->current_snapshot_id;
    bool racing = round % 2 == 0;
    if (racing) f.IngestSmallFiles("hot", 1);  // lands after the plan
    auto decision = agent.Step(f.table, "hot", global, 1.0,
                               racing ? stale_base : 0);
    ASSERT_TRUE(decision.ok()) << decision.status().ToString();
    if (decision->attempted && decision->conflicted) {
      saw_conflict = true;
      EXPECT_LT(decision->reward, 0);  // -(1 - expected improvement)
    }
    if (decision->attempted && decision->succeeded) {
      saw_success = true;
      EXPECT_GT(decision->utilization_after,
                decision->utilization_before - 1e-9);
    }
    if (f.table->LiveFiles()->size() < 4) f.IngestSmallFiles("hot", 6);
  }
  EXPECT_TRUE(saw_conflict);
  EXPECT_TRUE(saw_success);
  EXPECT_GT(agent.agent().replay_size(), 0u);
}

TEST(DefaultCompactorTest, RunsOnInterval) {
  CompactionFixture f;
  f.IngestSmallFiles("p1", 6);
  DefaultCompactor compactor(f.table, /*interval_seconds=*/30);

  auto first = compactor.MaybeRun(f.clock.NowSeconds());
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->ran);
  EXPECT_EQ(first->partitions_compacted, 1u);

  // Within the interval: no run.
  auto again = compactor.MaybeRun(f.clock.NowSeconds() + 10);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->ran);

  f.IngestSmallFiles("p1", 6);
  auto later = compactor.MaybeRun(f.clock.NowSeconds() + 31);
  ASSERT_TRUE(later.ok());
  EXPECT_TRUE(later->ran);
  EXPECT_EQ(later->partitions_compacted, 1u);
}

// ---------------- SPN ----------------

TEST(SpnTest, EstimatesSimpleSelectivities) {
  workload::TpchOptions options;
  options.rows_per_sf = 4000;
  workload::TpchLineitemGenerator gen(options);
  std::vector<format::Row> rows = gen.GenerateAll();
  format::Schema schema = workload::TpchLineitemGenerator::Schema();

  auto spn = SumProductNetwork::Train(schema, rows);
  ASSERT_TRUE(spn.ok());
  EXPECT_GT(spn->num_nodes(), 1u);

  // Quantity uniform in [1,50]: P(q <= 25) ~ 0.5.
  query::Conjunction half{query::Predicate::Le("l_quantity",
                                               format::Value(int64_t{25}))};
  EXPECT_NEAR(spn->EstimateSelectivity(half), 0.5, 0.08);

  // Whole domain ~ 1; empty range ~ 0.
  query::Conjunction all{query::Predicate::Le("l_quantity",
                                              format::Value(int64_t{50}))};
  EXPECT_GT(spn->EstimateSelectivity(all), 0.95);
  query::Conjunction none{query::Predicate::Gt("l_quantity",
                                               format::Value(int64_t{50}))};
  EXPECT_LT(spn->EstimateSelectivity(none), 0.02);
}

TEST(SpnTest, ConjunctionsOfIndependentColumnsMultiply) {
  workload::TpchOptions options;
  options.rows_per_sf = 4000;
  workload::TpchLineitemGenerator gen(options);
  std::vector<format::Row> rows = gen.GenerateAll();
  format::Schema schema = workload::TpchLineitemGenerator::Schema();
  auto spn = SumProductNetwork::Train(schema, rows);
  ASSERT_TRUE(spn.ok());

  query::Conjunction combo{
      query::Predicate::Le("l_quantity", format::Value(int64_t{25})),
      query::Predicate::Le("l_discount", format::Value(0.05))};
  // True joint ~ 0.5 * 6/11 = 0.27.
  double truth = 0;
  for (const format::Row& row : rows) {
    if (combo.Matches(schema, row)) truth += 1;
  }
  truth /= rows.size();
  EXPECT_NEAR(spn->EstimateSelectivity(combo), truth, 0.08);
}

TEST(SpnTest, CapturesCorrelatedColumns) {
  // receiptdate = shipdate + [1,30] days: strongly correlated. A naive
  // independence assumption would misestimate P(ship > X AND receipt < X).
  workload::TpchOptions options;
  options.rows_per_sf = 4000;
  workload::TpchLineitemGenerator gen(options);
  std::vector<format::Row> rows = gen.GenerateAll();
  format::Schema schema = workload::TpchLineitemGenerator::Schema();
  auto spn = SumProductNetwork::Train(schema, rows);
  ASSERT_TRUE(spn.ok());

  int64_t mid = (workload::TpchLineitemGenerator::kShipDateMin +
                 workload::TpchLineitemGenerator::kShipDateMax) /
                2;
  query::Conjunction impossible{
      query::Predicate::Gt("l_shipdate", format::Value(mid)),
      query::Predicate::Lt("l_receiptdate", format::Value(mid))};
  // Truth is 0 (receipt always after ship). Independence would give
  // ~0.25; the SPN must stay well below that.
  EXPECT_LT(spn->EstimateSelectivity(impossible), 0.1);
}

TEST(SpnTest, WorkloadAccuracySweep) {
  workload::TpchOptions options;
  options.rows_per_sf = 5000;
  workload::TpchLineitemGenerator gen(options);
  std::vector<format::Row> rows = gen.GenerateAll();
  format::Schema schema = workload::TpchLineitemGenerator::Schema();
  // Train on a 20% sample (paper trains on 3% of a bigger table).
  std::vector<format::Row> sample;
  for (size_t i = 0; i < rows.size(); i += 5) sample.push_back(rows[i]);
  auto spn = SumProductNetwork::Train(schema, sample);
  ASSERT_TRUE(spn.ok());

  workload::TpchQueryGenerator queries(21);
  double total_abs_error = 0;
  constexpr int kQueries = 30;
  for (int q = 0; q < kQueries; ++q) {
    query::QuerySpec spec = queries.NextQuery();
    double truth = 0;
    for (const format::Row& row : rows) {
      if (spec.where.Matches(schema, row)) truth += 1;
    }
    truth /= rows.size();
    total_abs_error += std::fabs(spn->EstimateSelectivity(spec.where) - truth);
  }
  EXPECT_LT(total_abs_error / kQueries, 0.08);
}

TEST(SpnTest, RejectsEmptySample) {
  EXPECT_FALSE(SumProductNetwork::Train(
                   format::Schema{{"x", format::DataType::kInt64}}, {})
                   .ok());
}

TEST(SpnTest, FooterPriorsSmoothZeroEstimates) {
  // A value absent from the sample resolves to selectivity 0. With footer
  // priors (ndv / null fraction), the estimate floors at 1/ndv instead —
  // capped so it never exceeds the sample's resolution.
  format::Schema schema{{"x", format::DataType::kInt64}};
  std::vector<format::Row> sample;
  for (int64_t i = 0; i < 200; ++i) {
    format::Row row;
    row.fields = {format::Value(i % 10)};  // values 0..9; 777 never appears
    sample.push_back(row);
  }
  query::Conjunction rare{
      query::Predicate::Eq("x", format::Value(int64_t{777}))};

  auto plain = SumProductNetwork::Train(schema, sample);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->EstimateSelectivity(rare), 0.0);

  SpnOptions with_priors;
  with_priors.priors = {{/*ndv=*/1000, /*null_fraction=*/0.25}};
  auto smoothed = SumProductNetwork::Train(schema, sample, with_priors);
  ASSERT_TRUE(smoothed.ok());
  double sel = smoothed->EstimateSelectivity(rare);
  EXPECT_GT(sel, 0.0);
  EXPECT_LE(sel, 1.0 / 1000 + 1e-12);

  // IS NULL: the sample has no NULLs, so only the prior can answer.
  query::Conjunction isnull{query::Predicate::IsNull("x")};
  EXPECT_EQ(plain->EstimateSelectivity(isnull), 0.0);
  double null_sel = smoothed->EstimateSelectivity(isnull);
  EXPECT_GT(null_sel, 0.0);

  // Non-zero sample estimates are untouched by priors.
  query::Conjunction common{
      query::Predicate::Eq("x", format::Value(int64_t{3}))};
  EXPECT_NEAR(smoothed->EstimateSelectivity(common),
              plain->EstimateSelectivity(common), 1e-12);
}

// ---------------- QD-tree ----------------

TEST(QdTreeTest, ContradictionLogic) {
  using query::Predicate;
  std::vector<std::pair<Predicate, bool>> constraints = {
      {Predicate::Lt("t", format::Value(int64_t{100})), true}};
  // Query wants t >= 100: contradiction.
  EXPECT_TRUE(ConstraintsContradict(
      constraints,
      query::Conjunction{Predicate::Ge("t", format::Value(int64_t{100}))}));
  // Query wants t >= 50: overlaps.
  EXPECT_FALSE(ConstraintsContradict(
      constraints,
      query::Conjunction{Predicate::Ge("t", format::Value(int64_t{50}))}));
  // Negated branch: NOT(t < 100) == t >= 100 contradicts t < 100... as a
  // query via Lt:
  std::vector<std::pair<Predicate, bool>> negated = {
      {Predicate::Lt("t", format::Value(int64_t{100})), false}};
  EXPECT_TRUE(ConstraintsContradict(
      negated,
      query::Conjunction{Predicate::Lt("t", format::Value(int64_t{100}))}));
  // Eq vs IN without the value.
  std::vector<std::pair<Predicate, bool>> in_set = {
      {Predicate::In("m", {format::Value(std::string("AIR"))}), true}};
  EXPECT_TRUE(ConstraintsContradict(
      in_set,
      query::Conjunction{Predicate::Eq("m", format::Value(std::string("RAIL")))}));
}

TEST(QdTreeTest, PartitionsRoutesAndSkips) {
  workload::TpchOptions options;
  options.rows_per_sf = 6000;
  workload::TpchLineitemGenerator gen(options);
  std::vector<format::Row> rows = gen.GenerateAll();
  format::Schema schema = workload::TpchLineitemGenerator::Schema();
  auto spn = SumProductNetwork::Train(schema, rows);
  ASSERT_TRUE(spn.ok());

  workload::TpchQueryGenerator queries(31);
  std::vector<query::Conjunction> workload;
  std::vector<query::QuerySpec> specs = queries.Generate(60);
  for (const auto& spec : specs) workload.push_back(spec.where);

  QdTreeOptions tree_options;
  tree_options.min_partition_rows = 200;
  tree_options.max_leaves = 16;
  auto tree = QdTree::Build(schema, workload, *spn, rows.size(), tree_options);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_GT(tree->num_leaves(), 2u);
  EXPECT_LE(tree->num_leaves(), 16u);

  // Every row routes to a valid leaf.
  std::vector<uint64_t> counts(tree->num_leaves(), 0);
  for (const format::Row& row : rows) {
    int leaf = tree->AssignRow(row);
    ASSERT_GE(leaf, 0);
    ASSERT_LT(leaf, static_cast<int>(tree->num_leaves()));
    counts[leaf]++;
  }

  // Soundness: a leaf not in MatchingLeaves never holds a matching row,
  // and the tree skips a meaningful share of rows across the workload.
  uint64_t total_scanned = 0, total_rows = 0;
  for (const auto& where : workload) {
    std::vector<int> matching = tree->MatchingLeaves(where);
    std::set<int> matching_set(matching.begin(), matching.end());
    for (const format::Row& row : rows) {
      if (where.Matches(schema, row)) {
        ASSERT_TRUE(matching_set.count(tree->AssignRow(row)))
            << "row matched query but its leaf was skipped";
      }
    }
    for (int leaf : matching) total_scanned += counts[leaf];
    total_rows += rows.size();
  }
  EXPECT_LT(total_scanned, total_rows * 9 / 10);  // >10% skipped on average
}

TEST(PartitionAdvisorTest, AdviseAndRepartitionImproveSkipping) {
  CompactionFixture f;  // reuse the lakehouse fixture
  auto created = f.lakehouse->CreateTable(
      "lineitem", workload::TpchLineitemGenerator::Schema(),
      table::PartitionSpec::None());
  ASSERT_TRUE(created.ok());
  table::Table* source = *created;
  workload::TpchOptions gen_options;
  gen_options.rows_per_sf = 20000;
  workload::TpchLineitemGenerator gen(gen_options);
  ASSERT_TRUE(source->Insert(gen.GenerateAll()).ok());

  workload::TpchQueryGenerator queries(13);
  std::vector<query::Conjunction> workload;
  std::vector<query::QuerySpec> eval = queries.Generate(30);
  for (const auto& spec : eval) workload.push_back(spec.where);

  PartitionAdvisor::Options options;
  options.sample_fraction = 0.05;
  options.tree.min_partition_rows = 500;
  options.tree.max_leaves = 24;
  PartitionAdvisor advisor(options);
  auto plan = advisor.Advise(source, workload);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GT(plan->tree.num_leaves(), 2u);
  EXPECT_EQ(plan->table_rows, 20000u);

  auto stats = advisor.Repartition(f.lakehouse.get(), source, "lineitem_v2",
                                   *plan);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_moved, 20000u);
  EXPECT_GT(stats->partitions, 2u);

  // Identical answers, materially better skipping.
  auto target = f.lakehouse->GetTable("lineitem_v2");
  ASSERT_TRUE(target.ok());
  uint64_t source_skipped = 0, target_skipped = 0;
  uint64_t source_total = 0, target_total = 0;
  for (const query::QuerySpec& spec : eval) {
    table::SelectMetrics source_metrics, target_metrics;
    auto source_result = source->Select(spec, {}, &source_metrics);
    auto target_result = (*target)->Select(spec, {}, &target_metrics);
    ASSERT_TRUE(source_result.ok() && target_result.ok());
    ASSERT_EQ(source_result->rows.size(), target_result->rows.size());
    if (!source_result->rows.empty()) {
      EXPECT_EQ(std::get<int64_t>(source_result->rows[0].fields[0]),
                std::get<int64_t>(target_result->rows[0].fields[0]));
    }
    source_skipped += source_metrics.data_bytes_skipped;
    source_total += source_metrics.data_bytes_skipped +
                    source_metrics.data_bytes_read;
    target_skipped += target_metrics.data_bytes_skipped;
    target_total += target_metrics.data_bytes_skipped +
                    target_metrics.data_bytes_read;
  }
  double source_frac =
      source_total == 0 ? 0 : static_cast<double>(source_skipped) / source_total;
  double target_frac =
      target_total == 0 ? 0 : static_cast<double>(target_skipped) / target_total;
  EXPECT_GT(target_frac, source_frac + 0.2);  // >=20pp more bytes skipped
}

TEST(PartitionAdvisorTest, EmptyTableRejected) {
  CompactionFixture f;
  auto created = f.lakehouse->CreateTable(
      "empty", workload::TpchLineitemGenerator::Schema(),
      table::PartitionSpec::None());
  ASSERT_TRUE(created.ok());
  PartitionAdvisor advisor;
  EXPECT_TRUE(advisor.Advise(*created, {}).status().IsInvalidArgument());
}

TEST(QdTreeTest, NoWorkloadMeansOneLeaf) {
  format::Schema schema = workload::TpchLineitemGenerator::Schema();
  workload::TpchOptions options;
  options.rows_per_sf = 500;
  workload::TpchLineitemGenerator gen(options);
  auto rows = gen.GenerateAll();
  auto spn = SumProductNetwork::Train(schema, rows);
  ASSERT_TRUE(spn.ok());
  auto tree = QdTree::Build(schema, {}, *spn, rows.size());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_leaves(), 1u);
  EXPECT_EQ(tree->AssignRow(rows[0]), 0);
}

}  // namespace
}  // namespace streamlake::lakebrain
