#include <gtest/gtest.h>

#include "baselines/mini_hdfs.h"
#include "baselines/mini_kafka.h"
#include "common/random.h"

namespace streamlake::baselines {
namespace {

struct BaselineFixture {
  sim::SimClock clock;
  storage::StoragePool pool{"hdd", sim::MediaType::kSasHdd, &clock};
  BaselineFixture() { pool.AddCluster(3, 2, 2ULL << 30); }
};

TEST(MiniHdfsTest, WriteReadDeleteList) {
  BaselineFixture f;
  MiniHdfs hdfs(&f.pool);
  Bytes data = ToBytes("normalized records batch 1");
  ASSERT_TRUE(hdfs.WriteFile("/etl/stage1/part-0", ByteView(data)).ok());
  ASSERT_TRUE(hdfs.WriteFile("/etl/stage1/part-1", ByteView(data)).ok());
  ASSERT_TRUE(hdfs.WriteFile("/etl/stage2/part-0", ByteView(data)).ok());

  auto read = hdfs.ReadFile("/etl/stage1/part-0");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  EXPECT_EQ(*hdfs.FileSize("/etl/stage1/part-0"), data.size());
  EXPECT_EQ(hdfs.List("/etl/stage1/").size(), 2u);
  EXPECT_EQ(hdfs.List("/etl/").size(), 3u);

  ASSERT_TRUE(hdfs.DeleteFile("/etl/stage1/part-0").ok());
  EXPECT_FALSE(hdfs.Exists("/etl/stage1/part-0"));
  EXPECT_TRUE(hdfs.ReadFile("/etl/stage1/part-0").status().IsNotFound());
  EXPECT_TRUE(hdfs.DeleteFile("/etl/stage1/part-0").IsNotFound());
}

TEST(MiniHdfsTest, TripleReplicationCostsThreeX) {
  BaselineFixture f;
  MiniHdfs hdfs(&f.pool);
  Bytes data(1 << 20, 'd');
  ASSERT_TRUE(hdfs.WriteFile("/f", ByteView(data)).ok());
  EXPECT_EQ(hdfs.TotalLogicalBytes(), data.size());
  EXPECT_EQ(hdfs.TotalPhysicalBytes(), 3 * data.size());
  EXPECT_EQ(f.pool.AggregateStats().bytes_written, 3 * data.size());
}

TEST(MiniHdfsTest, MultiBlockFilesAndNodeFailure) {
  BaselineFixture f;
  MiniHdfs::Options options;
  options.block_size = 1 << 20;
  MiniHdfs hdfs(&f.pool, options);
  Random rng(1);
  Bytes data;
  for (int i = 0; i < (3 << 20) + 12345; ++i) {
    data.push_back(static_cast<uint8_t>(rng.Uniform(256)));
  }
  ASSERT_TRUE(hdfs.WriteFile("/big", ByteView(data)).ok());
  // Replication tolerates 2 node losses.
  f.pool.SetNodeFailed(0, true);
  f.pool.SetNodeFailed(1, true);
  auto read = hdfs.ReadFile("/big");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  f.pool.SetNodeFailed(2, true);
  EXPECT_FALSE(hdfs.ReadFile("/big").ok());
}

TEST(MiniHdfsTest, OverwriteFreesOldBlocks) {
  BaselineFixture f;
  MiniHdfs hdfs(&f.pool);
  ASSERT_TRUE(hdfs.WriteFile("/f", ByteView(Bytes(1 << 20, 'a'))).ok());
  uint64_t after_first = f.pool.AllocatedBytes();
  ASSERT_TRUE(hdfs.WriteFile("/f", ByteView(Bytes(1 << 20, 'b'))).ok());
  EXPECT_EQ(f.pool.AllocatedBytes(), after_first);
  EXPECT_EQ(hdfs.TotalLogicalBytes(), 1u << 20);
}

TEST(MiniKafkaTest, ProduceFetchOrdered) {
  BaselineFixture f;
  MiniKafka kafka(&f.pool);
  ASSERT_TRUE(kafka.CreateTopic("t", 2).ok());
  EXPECT_TRUE(kafka.CreateTopic("t", 2).IsAlreadyExists());
  EXPECT_TRUE(kafka.CreateTopic("bad", 0).IsInvalidArgument());

  for (int i = 0; i < 20; ++i) {
    auto result = kafka.Produce(
        "t", streaming::Message("key-A", "m" + std::to_string(i)));
    ASSERT_TRUE(result.ok());
  }
  // All keyed messages land in one partition, in order.
  uint32_t p = 0;
  auto end0 = kafka.EndOffset("t", 0);
  ASSERT_TRUE(end0.ok());
  if (*end0 == 0) p = 1;
  auto fetched = kafka.Fetch("t", p, 0, 100);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched->size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ((*fetched)[i].value, "m" + std::to_string(i));
  }
  // Fetch from the middle.
  auto tail = kafka.Fetch("t", p, 15, 100);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->size(), 5u);
}

TEST(MiniKafkaTest, SegmentsRollAndRemainReadable) {
  BaselineFixture f;
  MiniKafka::Options options;
  options.segment_bytes = 4096;
  MiniKafka kafka(&f.pool, options);
  ASSERT_TRUE(kafka.CreateTopic("t", 1).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        kafka.Produce("t", streaming::Message("k", std::string(200, 'v'))).ok());
  }
  auto all = kafka.Fetch("t", 0, 0, 1000);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 100u);
  EXPECT_EQ(*kafka.EndOffset("t", 0), 100u);
}

TEST(MiniKafkaTest, ReplicationTriplesStorage) {
  BaselineFixture f;
  MiniKafka kafka(&f.pool);
  ASSERT_TRUE(kafka.CreateTopic("t", 1).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        kafka.Produce("t", streaming::Message("k", std::string(1000, 'x'))).ok());
  }
  ASSERT_TRUE(kafka.Flush().ok());  // force page-cache writeback
  EXPECT_EQ(kafka.TotalPhysicalBytes(), 3 * kafka.TotalLogicalBytes());
  EXPECT_EQ(f.pool.AggregateStats().bytes_written,
            kafka.TotalPhysicalBytes());
}

TEST(MiniKafkaTest, PageCacheServesActiveSegment) {
  BaselineFixture f;
  MiniKafka kafka(&f.pool);
  ASSERT_TRUE(kafka.CreateTopic("t", 1).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(kafka.Produce("t", streaming::Message("k", "v")).ok());
  }
  uint64_t reads_before = f.pool.AggregateStats().read_ops;
  auto fetched = kafka.Fetch("t", 0, 0, 100);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->size(), 10u);
  // Active segment fetch never touched the disks.
  EXPECT_EQ(f.pool.AggregateStats().read_ops, reads_before);
}

TEST(MiniKafkaTest, DeleteTopicFreesSpace) {
  BaselineFixture f;
  MiniKafka kafka(&f.pool);
  ASSERT_TRUE(kafka.CreateTopic("t", 2).ok());
  ASSERT_TRUE(kafka.Produce("t", streaming::Message("k", "v")).ok());
  EXPECT_GT(f.pool.AllocatedBytes(), 0u);
  ASSERT_TRUE(kafka.DeleteTopic("t").ok());
  EXPECT_EQ(f.pool.AllocatedBytes(), 0u);
  EXPECT_TRUE(kafka.Produce("t", streaming::Message("k", "v")).status()
                  .IsNotFound());
}

}  // namespace
}  // namespace streamlake::baselines
