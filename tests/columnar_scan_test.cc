// Late-materialization columnar scans: extended footer stats round-trip,
// predicate evaluation on dictionary codes vs decode-then-filter, the
// selection vector composed with merge-on-read deletes, and the per-column
// decoded-block cache keying.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/threadpool.h"
#include "format/lakefile.h"
#include "table/block_cache.h"
#include "table/lakehouse.h"

namespace streamlake::table {
namespace {

format::Schema WideSchema() {
  return format::Schema{{"id", format::DataType::kInt64},
                        {"tag", format::DataType::kString},
                        {"score", format::DataType::kDouble},
                        {"flag", format::DataType::kBool}};
}

struct ColumnarFixture {
  sim::SimClock clock;
  storage::StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
  sim::NetworkModel compute_link{sim::NetworkProfile::Rdma(), &clock};
  kv::KvStore object_index;
  kv::KvStore meta_cache;
  std::unique_ptr<ThreadPool> scan_pool;
  std::unique_ptr<DecodedBlockCache> cache;
  std::unique_ptr<storage::PlogStore> plogs;
  std::unique_ptr<storage::ObjectStore> objects;
  std::unique_ptr<MetadataStore> meta;
  std::unique_ptr<LakehouseService> lakehouse;

  explicit ColumnarFixture(int scan_threads = 0, uint64_t cache_bytes = 0,
                           DeleteMode delete_mode = DeleteMode::kCopyOnWrite) {
    pool.AddCluster(3, 2, 512 << 20);
    storage::PlogStoreConfig config;
    config.num_shards = 16;
    config.plog.capacity = 32 << 20;
    config.plog.stripe_unit = 4096;
    config.plog.redundancy = storage::RedundancyConfig::Replication(3);
    plogs = std::make_unique<storage::PlogStore>(&pool, config, &clock);
    objects = std::make_unique<storage::ObjectStore>(plogs.get(),
                                                     &object_index);
    meta = std::make_unique<MetadataStore>(objects.get(), &meta_cache,
                                           MetadataMode::kAccelerated);
    if (scan_threads > 0) {
      scan_pool = std::make_unique<ThreadPool>(scan_threads, "test.scan");
    }
    if (cache_bytes > 0) {
      cache = std::make_unique<DecodedBlockCache>(cache_bytes);
    }
    TableOptions options;
    options.max_rows_per_file = 128;
    options.file_options.rows_per_group = 64;
    options.delete_mode = delete_mode;
    lakehouse = std::make_unique<LakehouseService>(
        meta.get(), objects.get(), &clock, &compute_link, options,
        scan_pool.get(), cache.get());
  }
};

/// Randomized rows exercising all encoding choosers: `tag` repeats few
/// distinct values (dictionary), `id` is mostly sorted (delta) or constant
/// runs (RLE), `score`/`flag` stay plain/bit-packed.
std::vector<format::Row> RandomRows(size_t n, uint64_t seed,
                                    size_t distinct_tags) {
  Random rng(seed);
  std::vector<format::Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    format::Row row;
    row.fields = {
        format::Value(static_cast<int64_t>(i / 7)),  // long runs -> RLE
        format::Value("t-" + std::to_string(rng.Uniform(distinct_tags))),
        format::Value(static_cast<double>(rng.Uniform(1000)) / 10.0),
        format::Value(rng.Uniform(2) == 0)};
    rows.push_back(std::move(row));
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Extended footer statistics round-trip through the file format.

TEST(ColumnarScanTest, FooterStatsRoundTrip) {
  format::Schema schema{{"s", format::DataType::kString},
                        {"v", format::DataType::kInt64}};
  format::LakeFileOptions options;
  options.rows_per_group = 8;
  format::LakeFileWriter writer(schema, options);
  // One full group: 2 NULLs in "s", 3 distinct non-NULL strings with a
  // known total width; "v" has one NULL and 4 distinct values.
  const std::vector<std::pair<format::Value, format::Value>> cells = {
      {format::Value(std::string("aa")), format::Value(int64_t{1})},
      {format::Value(std::string("bbbb")), format::Value(int64_t{2})},
      {format::Value(std::monostate{}), format::Value(int64_t{2})},
      {format::Value(std::string("aa")), format::Value(int64_t{3})},
      {format::Value(std::string("cccccc")), format::Value(int64_t{4})},
      {format::Value(std::monostate{}), format::Value(std::monostate{})},
      {format::Value(std::string("aa")), format::Value(int64_t{1})},
      {format::Value(std::string("bbbb")), format::Value(int64_t{2})},
  };
  for (const auto& [s, v] : cells) {
    format::Row row;
    row.fields = {s, v};
    ASSERT_TRUE(writer.Append(row).ok());
  }
  auto bytes = writer.Finish();
  ASSERT_TRUE(bytes.ok());
  auto reader = format::LakeFileReader::Open(*bytes);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(reader->num_row_groups(), 1u);

  const format::ColumnStats& s = reader->row_group(0).columns[0].stats;
  EXPECT_TRUE(s.has_extended);
  EXPECT_EQ(s.null_count, 2u);
  EXPECT_EQ(s.ndv, 3u);  // aa, bbbb, cccccc
  // 6 non-NULL strings: aa(2)*3 + bbbb(4)*2 + cccccc(6) = 20 bytes / 6.
  EXPECT_DOUBLE_EQ(s.avg_width, 20.0 / 6.0);
  ASSERT_TRUE(s.min.has_value());
  EXPECT_EQ(std::get<std::string>(*s.min), "aa");
  EXPECT_EQ(std::get<std::string>(*s.max), "cccccc");

  const format::ColumnStats& v = reader->row_group(0).columns[1].stats;
  EXPECT_TRUE(v.has_extended);
  EXPECT_EQ(v.null_count, 1u);
  EXPECT_EQ(v.ndv, 4u);
  EXPECT_DOUBLE_EQ(v.avg_width, 8.0);
  EXPECT_EQ(std::get<int64_t>(*v.min), 1);
  EXPECT_EQ(std::get<int64_t>(*v.max), 4);
}

TEST(ColumnarScanTest, FooterStatsAllNullChunk) {
  format::Schema schema{{"s", format::DataType::kString}};
  format::LakeFileWriter writer(schema);
  for (int i = 0; i < 5; ++i) {
    format::Row row;
    row.fields = {format::Value(std::monostate{})};
    ASSERT_TRUE(writer.Append(row).ok());
  }
  auto bytes = writer.Finish();
  ASSERT_TRUE(bytes.ok());
  auto reader = format::LakeFileReader::Open(*bytes);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(reader->num_row_groups(), 1u);
  const format::ColumnStats& s = reader->row_group(0).columns[0].stats;
  EXPECT_TRUE(s.has_extended);
  EXPECT_EQ(s.null_count, 5u);
  EXPECT_EQ(s.ndv, 0u);
  EXPECT_DOUBLE_EQ(s.avg_width, 0.0);
  EXPECT_FALSE(s.min.has_value());
  EXPECT_FALSE(s.max.has_value());

  // The all-NULL chunk round-trips its rows too.
  auto rows = reader->ReadAll();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 5u);
  for (const format::Row& row : *rows) {
    EXPECT_TRUE(format::IsNull(row.fields[0]));
  }
}

TEST(ColumnarScanTest, FooterStatsEmptyFile) {
  format::LakeFileWriter writer(WideSchema());
  auto bytes = writer.Finish();
  ASSERT_TRUE(bytes.ok());
  auto reader = format::LakeFileReader::Open(*bytes);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->num_row_groups(), 0u);
  EXPECT_EQ(reader->num_rows(), 0u);
}

// ---------------------------------------------------------------------------
// Predicate-on-codes must agree with decode-then-filter, on randomized data
// covering dictionary, RLE, delta, and plain chunks.

TEST(ColumnarScanTest, PredicateOnCodesMatchesDecodeThenFilter) {
  ColumnarFixture f;
  auto table = f.lakehouse->CreateTable("wide", WideSchema(),
                                        PartitionSpec::None());
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Insert(RandomRows(1000, /*seed=*/7,
                                          /*distinct_tags=*/6)).ok());

  std::vector<query::QuerySpec> specs;
  {  // Equality on the dictionary column.
    query::QuerySpec spec;
    spec.where.Add(query::Predicate::Eq("tag", format::Value(std::string("t-3"))));
    spec.order_by = "id";
    specs.push_back(spec);
  }
  {  // IN on the dictionary column + range on the RLE column.
    query::QuerySpec spec;
    spec.where.Add(query::Predicate::In(
        "tag", {format::Value(std::string("t-0")),
                format::Value(std::string("t-5"))}));
    spec.where.Add(query::Predicate::Lt("id", format::Value(int64_t{100})));
    spec.order_by = "id";
    specs.push_back(spec);
  }
  {  // Ne + a plain-column predicate (no code-space shortcut possible).
    query::QuerySpec spec;
    spec.where.Add(query::Predicate::Ne("tag", format::Value(std::string("t-1"))));
    spec.where.Add(query::Predicate::Ge("score", format::Value(50.0)));
    spec.order_by = "id";
    specs.push_back(spec);
  }
  {  // Equality on a value INSIDE every group's [min, max] ("t-2" < "t-2x"
     // < "t-3") but absent from every dictionary: min/max stats cannot
     // prune, the code-space check must — and still count visible rows.
    query::QuerySpec spec;
    spec.where.Add(query::Predicate::Eq("tag", format::Value(std::string("t-2x"))));
    specs.push_back(spec);
  }

  for (size_t i = 0; i < specs.size(); ++i) {
    SelectOptions pushdown;  // default: predicate-on-codes path
    SelectOptions shipped;
    shipped.pushdown = false;  // decode whole files, filter in the engine
    SelectMetrics pm;
    auto fast = (*table)->Select(specs[i], pushdown, &pm);
    auto slow = (*table)->Select(specs[i], shipped);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    ASSERT_TRUE(slow.ok()) << slow.status().ToString();
    EXPECT_EQ(fast->rows, slow->rows) << "spec " << i;
    if (i == 3) {
      EXPECT_TRUE(fast->rows.empty());
      EXPECT_EQ(fast->rows_scanned, 1000u)
          << "code-space prune must still count the groups' visible rows";
      EXPECT_GT(pm.dict_code_prunes, 0u)
          << "absent literal must short-circuit in code space";
    }
  }
}

TEST(ColumnarScanTest, NarrowSelectDecodesOnlyRequiredColumns) {
  ColumnarFixture f;
  auto table = f.lakehouse->CreateTable("wide", WideSchema(),
                                        PartitionSpec::None());
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Insert(RandomRows(1000, /*seed=*/11,
                                          /*distinct_tags=*/6)).ok());

  query::QuerySpec narrow;  // touches tag (predicate) + id (projection)
  narrow.where.Add(query::Predicate::Eq("tag", format::Value(std::string("t-2"))));
  narrow.projection = {"id"};
  query::QuerySpec star;  // decodes everything
  star.where.Add(query::Predicate::Eq("tag", format::Value(std::string("t-2"))));

  SelectMetrics nm, sm;
  auto nr = (*table)->Select(narrow, {}, &nm);
  auto sr = (*table)->Select(star, {}, &sm);
  ASSERT_TRUE(nr.ok());
  ASSERT_TRUE(sr.ok());
  EXPECT_EQ(nr->rows.size(), sr->rows.size());
  EXPECT_LT(nm.columns_decoded, sm.columns_decoded);
  EXPECT_LT(nm.bytes_decoded, sm.bytes_decoded);
  EXPECT_EQ(nm.rows_materialized, nr->rows.size());
  // The narrow result's id values match the star result's id column.
  for (size_t r = 0; r < nr->rows.size(); ++r) {
    EXPECT_EQ(nr->rows[r].fields[0], sr->rows[r].fields[0]);
  }
}

// ---------------------------------------------------------------------------
// The selection vector composes with merge-on-read delete masks: a deleted
// row must neither match nor be counted as visible.

TEST(ColumnarScanTest, SelectionVectorComposesWithMergeOnReadDeletes) {
  ColumnarFixture with_mor(/*scan_threads=*/0, /*cache_bytes=*/0,
                           DeleteMode::kMergeOnRead);
  auto table = with_mor.lakehouse->CreateTable("wide", WideSchema(),
                                               PartitionSpec::None());
  ASSERT_TRUE(table.ok());
  std::vector<format::Row> rows = RandomRows(600, /*seed=*/3,
                                             /*distinct_tags=*/4);
  ASSERT_TRUE((*table)->Insert(rows).ok());

  // Merge-on-read delete of one dictionary value.
  auto deleted = (*table)->Delete(query::Conjunction{query::Predicate::Eq(
      "tag", format::Value(std::string("t-1")))});
  ASSERT_TRUE(deleted.ok());
  ASSERT_GT(*deleted, 0u);

  // Reference: filter the original rows in plain C++.
  uint64_t expect_match = 0;
  for (const format::Row& row : rows) {
    const std::string& tag = std::get<std::string>(row.fields[1]);
    if (tag == "t-1") continue;  // masked
    if (std::get<int64_t>(row.fields[0]) < 20) ++expect_match;
  }

  query::QuerySpec spec;
  spec.where.Add(query::Predicate::Lt("id", format::Value(int64_t{20})));
  spec.order_by = "id";
  auto got = (*table)->Select(spec);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->rows.size(), expect_match);
  for (const format::Row& row : got->rows) {
    EXPECT_NE(std::get<std::string>(row.fields[1]), "t-1");
  }

  // And composed with a dictionary-code predicate on the same column the
  // delete masks.
  query::QuerySpec dict_spec;
  dict_spec.where.Add(query::Predicate::In(
      "tag", {format::Value(std::string("t-0")),
              format::Value(std::string("t-1"))}));
  auto only_t0 = (*table)->Select(dict_spec);
  ASSERT_TRUE(only_t0.ok());
  for (const format::Row& row : only_t0->rows) {
    EXPECT_EQ(std::get<std::string>(row.fields[1]), "t-0")
        << "deleted t-1 rows must stay masked under code-space filtering";
  }
}

// ---------------------------------------------------------------------------
// Per-column cache keying: a narrow query caches only the columns it
// touches; invalidation still drops every column of a replaced file.

TEST(ColumnarScanTest, CacheIsKeyedPerColumn) {
  ColumnarFixture f(/*scan_threads=*/0, /*cache_bytes=*/64ULL << 20);
  auto table = f.lakehouse->CreateTable("wide", WideSchema(),
                                        PartitionSpec::None());
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Insert(RandomRows(256, /*seed=*/5,
                                          /*distinct_tags=*/4)).ok());

  query::QuerySpec narrow;
  narrow.where.Add(query::Predicate::Ge("id", format::Value(int64_t{0})));
  narrow.projection = {"id"};
  ASSERT_TRUE((*table)->Select(narrow).ok());

  auto files = (*table)->LiveFiles();
  ASSERT_TRUE(files.ok());
  ASSERT_FALSE(files->empty());
  const format::Schema schema = WideSchema();
  int id_col = schema.FieldIndex("id");
  int score_col = schema.FieldIndex("score");
  for (const DataFileMeta& file : *files) {
    EXPECT_NE(f.cache->GetColumn(file.path, 0, id_col), nullptr)
        << "required column must be cached: " << file.path;
    EXPECT_EQ(f.cache->GetColumn(file.path, 0, score_col), nullptr)
        << "untouched column must NOT be cached: " << file.path;
  }

  // A repeat of the narrow query is a pure cache hit...
  SelectMetrics warm;
  ASSERT_TRUE((*table)->Select(narrow, {}, &warm).ok());
  EXPECT_EQ(warm.data_bytes_read, 0u);
  EXPECT_EQ(warm.bytes_decoded, 0u);
  EXPECT_EQ(warm.columns_decoded, 0u);
  // ...while widening to another column decodes only the new chunks.
  query::QuerySpec wider = narrow;
  wider.projection = {"id", "score"};
  SelectMetrics widen;
  ASSERT_TRUE((*table)->Select(wider, {}, &widen).ok());
  EXPECT_GT(widen.columns_decoded, 0u);
  for (const DataFileMeta& file : *files) {
    EXPECT_NE(f.cache->GetColumn(file.path, 0, score_col), nullptr);
  }

  // Rewrite (UPDATE) replaces the files: every per-column entry must go.
  ASSERT_TRUE((*table)
                  ->Update(query::Conjunction{}, "flag", format::Value(true))
                  .ok());
  for (const DataFileMeta& file : *files) {
    EXPECT_FALSE(f.cache->ContainsFile(file.path))
        << "replaced file keeps cached columns: " << file.path;
  }
}

// ---------------------------------------------------------------------------
// The parallel path stays byte-identical under late materialization.

TEST(ColumnarScanTest, ParallelNarrowScanMatchesSerial) {
  ColumnarFixture serial(/*scan_threads=*/0, /*cache_bytes=*/0);
  ColumnarFixture parallel(/*scan_threads=*/4, /*cache_bytes=*/64ULL << 20);
  for (ColumnarFixture* f : {&serial, &parallel}) {
    auto table = f->lakehouse->CreateTable("wide", WideSchema(),
                                           PartitionSpec::None());
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*table)->Insert(RandomRows(800, /*seed=*/19,
                                            /*distinct_tags=*/5)).ok());
  }
  auto st = serial.lakehouse->GetTable("wide");
  auto pt = parallel.lakehouse->GetTable("wide");
  ASSERT_TRUE(st.ok());
  ASSERT_TRUE(pt.ok());

  query::QuerySpec spec;
  spec.where.Add(query::Predicate::In(
      "tag", {format::Value(std::string("t-0")),
              format::Value(std::string("t-4"))}));
  spec.projection = {"id", "tag"};
  spec.order_by = "id";
  auto expect = (*st)->Select(spec);
  ASSERT_TRUE(expect.ok());
  for (int round = 0; round < 2; ++round) {
    auto got = (*pt)->Select(spec);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->rows, expect->rows) << "round " << round;
    EXPECT_EQ(got->rows_scanned, expect->rows_scanned);
    EXPECT_EQ(got->rows_matched, expect->rows_matched);
  }
}

}  // namespace
}  // namespace streamlake::table
