#include "common/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace streamlake {
namespace {

// The registry is process-global; every test uses names scoped under
// "test.metrics." and resets values (registrations persist by design).
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::Global().ResetForTest(); }
};

TEST_F(MetricsTest, CounterStartsAtZeroAndAccumulates) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.metrics.counter");
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
}

TEST_F(MetricsTest, SameNameReturnsSamePointer) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  EXPECT_EQ(registry.GetCounter("test.metrics.same"),
            registry.GetCounter("test.metrics.same"));
  EXPECT_EQ(registry.GetGauge("test.metrics.same_gauge"),
            registry.GetGauge("test.metrics.same_gauge"));
  EXPECT_EQ(registry.GetHistogram("test.metrics.same_hist"),
            registry.GetHistogram("test.metrics.same_hist"));
}

TEST_F(MetricsTest, GaugeMovesBothWays) {
  Gauge* g = MetricsRegistry::Global().GetGauge("test.metrics.gauge");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 7);
  g->Add(5);
  EXPECT_EQ(g->Value(), 12);
}

TEST_F(MetricsTest, CounterValueForUnregisteredNameIsZero) {
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("test.metrics.never"), 0u);
}

using MetricsDeathTest = MetricsTest;

TEST_F(MetricsDeathTest, NameRegisteredAsTwoKindsAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MetricsRegistry::Global().GetCounter("test.metrics.kind_conflict");
  EXPECT_DEATH(
      MetricsRegistry::Global().GetGauge("test.metrics.kind_conflict"),
      "kind_conflict");
}

TEST_F(MetricsTest, HistogramSmallValuesAreExact) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.metrics.exact");
  for (uint64_t v = 0; v < 16; ++v) h->Record(v);
  EXPECT_EQ(h->Count(), 16u);
  EXPECT_EQ(h->Sum(), 120u);
  EXPECT_EQ(h->Min(), 0u);
  EXPECT_EQ(h->Max(), 15u);
  // Below 16 every value has its own bucket, so quantiles are exact.
  EXPECT_EQ(h->ValueAtQuantile(0.0), 0u);
  EXPECT_EQ(h->ValueAtQuantile(1.0), 15u);
}

TEST_F(MetricsTest, HistogramPercentilesWithinRelativeError) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.metrics.pctl");
  for (uint64_t v = 1; v <= 1000; ++v) h->Record(v);
  // Log-linear bucketing with 16 sub-buckets per octave bounds relative
  // error by ~1/16; allow 10%.
  for (auto [q, expected] : {std::pair<double, double>{0.5, 500.0},
                             {0.9, 900.0},
                             {0.99, 990.0}}) {
    double got = static_cast<double>(h->ValueAtQuantile(q));
    EXPECT_NEAR(got, expected, expected * 0.10) << "q=" << q;
  }
}

TEST_F(MetricsTest, HistogramLargeValuesKeepMinMaxExact) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.metrics.large");
  h->Record(1ULL << 40);
  h->Record((1ULL << 40) + 12345);
  h->Record(1ULL << 20);
  EXPECT_EQ(h->Min(), 1ULL << 20);
  EXPECT_EQ(h->Max(), (1ULL << 40) + 12345);
  // Quantiles are clamped into [Min, Max] even at bucket edges.
  EXPECT_GE(h->ValueAtQuantile(0.0), h->Min());
  EXPECT_LE(h->ValueAtQuantile(1.0), h->Max());
}

TEST_F(MetricsTest, ConcurrentIncrementsLoseNothing) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* c = registry.GetCounter("test.metrics.mt_counter");
  Histogram* h = registry.GetHistogram("test.metrics.mt_hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Registration from inside threads races with other registrations
      // and with Snapshot(); the registry mutex must make it safe.
      Gauge* g = registry.GetGauge("test.metrics.mt_gauge");
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        g->Add(1);
        h->Record(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  // Concurrent snapshots while writers run: must not crash or deadlock,
  // and counts must be monotonic between consecutive snapshots.
  uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    MetricsSnapshot snap = registry.Snapshot();
    uint64_t now = snap.counters["test.metrics.mt_counter"];
    EXPECT_GE(now, last);
    last = now;
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(registry.GetGauge("test.metrics.mt_gauge")->Value(),
            int64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->Count(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->Min(), 0u);
  EXPECT_EQ(h->Max(), uint64_t{kThreads} * kPerThread - 1);
}

TEST_F(MetricsTest, SnapshotContainsAllRegisteredMetrics) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.metrics.snap_counter")->Increment(7);
  registry.GetGauge("test.metrics.snap_gauge")->Set(-3);
  Histogram* h = registry.GetHistogram("test.metrics.snap_hist");
  h->Record(5);
  h->Record(9);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("test.metrics.snap_counter"), 7u);
  EXPECT_EQ(snap.gauges.at("test.metrics.snap_gauge"), -3);
  const HistogramSnapshot& hs = snap.histograms.at("test.metrics.snap_hist");
  EXPECT_EQ(hs.count, 2u);
  EXPECT_EQ(hs.sum, 14u);
  EXPECT_EQ(hs.min, 5u);
  EXPECT_EQ(hs.max, 9u);
}

TEST_F(MetricsTest, ResetForTestZeroesValuesButKeepsPointers) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* c = registry.GetCounter("test.metrics.reset");
  c->Increment(100);
  registry.ResetForTest();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(registry.GetCounter("test.metrics.reset"), c);
}

TEST_F(MetricsTest, ReportsContainMetricNamesAndValues) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.metrics.report_counter")->Increment(13);
  registry.GetHistogram("test.metrics.report_hist")->Record(4);
  std::string text = registry.TextReport();
  EXPECT_NE(text.find("test.metrics.report_counter"), std::string::npos);
  EXPECT_NE(text.find("13"), std::string::npos);
  std::string json = registry.JsonReport();
  EXPECT_NE(json.find("\"test.metrics.report_counter\": 13"),
            std::string::npos);
  EXPECT_NE(json.find("\"test.metrics.report_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

}  // namespace
}  // namespace streamlake
