#include <gtest/gtest.h>

#include "common/random.h"
#include "common/threadpool.h"
#include "stream/stream_c_api.h"
#include "stream/stream_object.h"

namespace streamlake::stream {
namespace {

struct StreamFixture {
  sim::SimClock clock;
  storage::StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
  sim::DeviceModel pmem{sim::DeviceProfile::Pmem(), &clock};
  kv::KvStore index;
  std::unique_ptr<storage::PlogStore> plogs;
  // Declared before manager: in-flight batches must outlive no pool.
  std::unique_ptr<ThreadPool> io_pool;
  std::unique_ptr<StreamObjectManager> manager;

  explicit StreamFixture(bool with_pmem = false, int io_threads = 0) {
    pool.AddCluster(3, 2, 64 << 20);
    storage::PlogStoreConfig config;
    config.num_shards = 8;
    config.plog.capacity = 8 << 20;
    config.plog.stripe_unit = 4096;
    config.plog.redundancy = storage::RedundancyConfig::Replication(3);
    plogs = std::make_unique<storage::PlogStore>(&pool, config, &clock);
    if (io_threads > 0) {
      io_pool = std::make_unique<ThreadPool>(io_threads, "test.stream_io");
    }
    manager = std::make_unique<StreamObjectManager>(
        plogs.get(), &index, &clock, with_pmem ? &pmem : nullptr, 64,
        io_pool.get());
  }

  StreamObject* NewObject(StreamObjectOptions options = {}) {
    auto id = manager->CreateObject(options);
    EXPECT_TRUE(id.ok());
    return manager->GetObject(*id);
  }
};

StreamRecord MakeRecord(const std::string& key, const std::string& value,
                        uint64_t producer = 0, uint64_t seq = 0) {
  StreamRecord r;
  r.key = key;
  r.value = ToBytes(value);
  r.timestamp = 1656806400;
  r.producer_id = producer;
  r.producer_seq = seq;
  return r;
}

TEST(StreamRecordTest, SliceRoundTrip) {
  std::vector<StreamRecord> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back(MakeRecord("k" + std::to_string(i),
                                 "value-" + std::to_string(i), 7, i + 1));
  }
  Bytes encoded;
  EncodeSlice(&encoded, records);
  auto decoded = DecodeSlice(ByteView(encoded));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, records);
}

TEST(StreamObjectTest, AppendReadOrdered) {
  StreamFixture f;
  StreamObject* object = f.NewObject();
  std::vector<StreamRecord> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(MakeRecord("k", "msg-" + std::to_string(i)));
  }
  auto offset = object->Append(batch);
  ASSERT_TRUE(offset.ok());
  EXPECT_EQ(*offset, 0u);
  EXPECT_EQ(object->frontier(), 10u);

  auto read = object->Read(0, 100);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(BytesToString((*read)[i].value), "msg-" + std::to_string(i));
  }

  // Second append returns the next offset; strict order preserved.
  auto offset2 = object->Append({MakeRecord("k", "msg-10")});
  ASSERT_TRUE(offset2.ok());
  EXPECT_EQ(*offset2, 10u);
  auto tail = object->Read(10, 10);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->size(), 1u);
}

TEST(StreamObjectTest, ReadAtFrontierReturnsEmpty) {
  StreamFixture f;
  StreamObject* object = f.NewObject();
  auto read = object->Read(0, 10);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
  EXPECT_TRUE(object->Read(1, 10).status().IsInvalidArgument());
}

TEST(StreamObjectTest, SlicesPersistAt256Records) {
  StreamFixture f;
  StreamObject* object = f.NewObject();
  std::vector<StreamRecord> batch;
  for (int i = 0; i < 600; ++i) {
    batch.push_back(MakeRecord("k", std::string(100, 'v')));
  }
  ASSERT_TRUE(object->Append(batch).ok());
  // 600 records -> two full slices persisted (512), 88 buffered.
  EXPECT_EQ(object->persisted(), 512u);
  EXPECT_EQ(object->frontier(), 600u);
  ASSERT_TRUE(object->Flush().ok());
  EXPECT_EQ(object->persisted(), 600u);

  // Everything readable, spanning persisted slices and former tail.
  auto read = object->Read(500, 100);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 100u);
}

// ---------------- AppendBatch (group appends) ----------------

TEST(StreamObjectTest, AppendBatchPersistsWholeTailInParallel) {
  StreamFixture f(/*with_pmem=*/false, /*io_threads=*/4);
  StreamObjectOptions options;
  options.records_per_slice = 16;
  StreamObject* object = f.NewObject(options);

  std::vector<StreamRecord> batch;
  for (int i = 0; i < 100; ++i) {
    batch.push_back(MakeRecord("k", "msg-" + std::to_string(i)));
  }
  auto offset = object->AppendBatch(std::move(batch));
  ASSERT_TRUE(offset.ok()) << offset.status().ToString();
  EXPECT_EQ(*offset, 0u);
  // Unlike Append, a group append persists the partial final slice too:
  // 6 full slices of 16 plus one of 4, nothing left buffered.
  EXPECT_EQ(object->frontier(), 100u);
  EXPECT_EQ(object->persisted(), 100u);

  auto read = object->Read(0, 200);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(BytesToString((*read)[i].value), "msg-" + std::to_string(i));
  }

  // The next batch lands at the current frontier.
  auto next = object->AppendBatch({MakeRecord("k", "tail")});
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 100u);
  EXPECT_EQ(object->persisted(), 101u);
}

TEST(StreamObjectTest, AppendBatchFlushesPreviouslyBufferedRecords) {
  // No I/O pool: the inline fallback path must behave identically.
  StreamFixture f;
  StreamObjectOptions options;
  options.records_per_slice = 16;
  StreamObject* object = f.NewObject(options);

  // Ten records buffer below the slice threshold...
  std::vector<StreamRecord> head;
  for (int i = 0; i < 10; ++i) {
    head.push_back(MakeRecord("k", "buf-" + std::to_string(i)));
  }
  ASSERT_TRUE(object->Append(std::move(head)).ok());
  EXPECT_EQ(object->persisted(), 0u);

  // ...and the group append sweeps them out with its own records.
  std::vector<StreamRecord> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(MakeRecord("k", "grp-" + std::to_string(i)));
  }
  auto offset = object->AppendBatch(std::move(batch));
  ASSERT_TRUE(offset.ok());
  EXPECT_EQ(*offset, 10u);
  EXPECT_EQ(object->persisted(), 20u);
  EXPECT_EQ(object->frontier(), 20u);

  auto read = object->Read(8, 4);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 4u);
  EXPECT_EQ(BytesToString((*read)[1].value), "buf-9");
  EXPECT_EQ(BytesToString((*read)[2].value), "grp-0");
}

TEST(StreamObjectTest, AppendBatchDropsProducerDuplicates) {
  StreamFixture f(/*with_pmem=*/false, /*io_threads=*/2);
  StreamObject* object = f.NewObject();
  ASSERT_TRUE(object
                  ->AppendBatch({MakeRecord("k", "v1", 42, 1),
                                 MakeRecord("k", "v2", 42, 2)})
                  .ok());
  // Retry overlaps the already-accepted tail of the previous batch.
  ASSERT_TRUE(object
                  ->AppendBatch({MakeRecord("k", "v2-dup", 42, 2),
                                 MakeRecord("k", "v3", 42, 3)})
                  .ok());
  EXPECT_EQ(object->frontier(), 3u);
  auto read = object->Read(0, 10);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 3u);
  EXPECT_EQ(BytesToString((*read)[2].value), "v3");
}

TEST(StreamObjectTest, AppendBatchInterleavesWithAppendAndFlush) {
  StreamFixture f(/*with_pmem=*/false, /*io_threads=*/2);
  StreamObjectOptions options;
  options.records_per_slice = 16;
  StreamObject* object = f.NewObject(options);

  ASSERT_TRUE(object->Append({MakeRecord("k", "a0")}).ok());
  std::vector<StreamRecord> batch;
  for (int i = 0; i < 40; ++i) {
    batch.push_back(MakeRecord("k", "b" + std::to_string(i)));
  }
  ASSERT_TRUE(object->AppendBatch(std::move(batch)).ok());
  ASSERT_TRUE(object->Append({MakeRecord("k", "a1")}).ok());
  ASSERT_TRUE(object->Flush().ok());
  EXPECT_EQ(object->frontier(), 42u);
  EXPECT_EQ(object->persisted(), 42u);

  auto read = object->Read(0, 64);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 42u);
  EXPECT_EQ(BytesToString((*read)[0].value), "a0");
  EXPECT_EQ(BytesToString((*read)[1].value), "b0");
  EXPECT_EQ(BytesToString((*read)[41].value), "a1");
}

TEST(StreamObjectTest, IoAggregationReducesStorageOps) {
  StreamFixture f_agg;
  StreamFixture f_direct;
  StreamObjectOptions agg;
  agg.io_aggregation = true;
  StreamObjectOptions direct;
  direct.io_aggregation = false;

  auto run = [](StreamFixture& f, StreamObjectOptions options) {
    StreamObject* object = f.NewObject(options);
    for (int i = 0; i < 256; ++i) {
      EXPECT_TRUE(object->Append({MakeRecord("k", std::string(100, 'x'))}).ok());
    }
    EXPECT_TRUE(object->Flush().ok());
    return f.pool.AggregateStats().write_ops;
  };
  uint64_t agg_ops = run(f_agg, agg);
  uint64_t direct_ops = run(f_direct, direct);
  // One aggregated slice write (x3 replicas) vs 256 per-record writes.
  EXPECT_LT(agg_ops * 50, direct_ops);
}

TEST(StreamObjectTest, IdempotentProducerDropsDuplicates) {
  StreamFixture f;
  StreamObject* object = f.NewObject();
  ASSERT_TRUE(object->Append({MakeRecord("k", "v1", 42, 1)}).ok());
  ASSERT_TRUE(object->Append({MakeRecord("k", "v2", 42, 2)}).ok());
  // Network retry: same producer and sequence.
  ASSERT_TRUE(object->Append({MakeRecord("k", "v2-dup", 42, 2)}).ok());
  ASSERT_TRUE(object->Append({MakeRecord("k", "v1-dup", 42, 1)}).ok());
  EXPECT_EQ(object->frontier(), 2u);
  // A different producer with the same sequences is not a duplicate.
  ASSERT_TRUE(object->Append({MakeRecord("k", "other", 43, 1)}).ok());
  EXPECT_EQ(object->frontier(), 3u);
}

TEST(StreamObjectTest, QuotaEnforcedPerSimSecond) {
  StreamFixture f;
  StreamObjectOptions options;
  options.io_quota_records_per_sec = 100;
  StreamObject* object = f.NewObject(options);
  std::vector<StreamRecord> batch;
  for (int i = 0; i < 100; ++i) batch.push_back(MakeRecord("k", "v"));
  ASSERT_TRUE(object->Append(batch).ok());
  EXPECT_TRUE(object->Append({MakeRecord("k", "v")}).status()
                  .IsQuotaExceeded());
  // A simulated second later the bucket refills.
  f.clock.Advance(sim::kSecond);
  EXPECT_TRUE(object->Append({MakeRecord("k", "v")}).ok());
}

TEST(StreamObjectTest, ScmCacheServesRepeatedReads) {
  StreamFixture f(/*with_pmem=*/true);
  StreamObjectOptions options;
  options.use_scm_cache = true;
  StreamObject* object = f.NewObject(options);
  std::vector<StreamRecord> batch;
  for (int i = 0; i < 512; ++i) {
    batch.push_back(MakeRecord("k", std::string(200, 'c')));
  }
  ASSERT_TRUE(object->Append(batch).ok());

  // First read warms the cache (slices were cached at persist time too).
  ASSERT_TRUE(object->Read(0, 512).ok());
  uint64_t ssd_reads_before = f.pool.AggregateStats().read_ops;
  ASSERT_TRUE(object->Read(0, 512).ok());
  uint64_t ssd_reads_after = f.pool.AggregateStats().read_ops;
  EXPECT_EQ(ssd_reads_before, ssd_reads_after);  // served from SCM
  EXPECT_GT(f.manager->cache()->hits(), 0u);
}

TEST(StreamObjectTest, FindOffsetByTimestamp) {
  StreamFixture f;
  StreamObjectOptions options;
  options.records_per_slice = 16;
  StreamObject* object = f.NewObject(options);
  // 100 records with timestamps 1000, 1010, 1020, ...
  std::vector<StreamRecord> batch;
  for (int i = 0; i < 100; ++i) {
    StreamRecord r = MakeRecord("k", "v" + std::to_string(i));
    r.timestamp = 1000 + i * 10;
    batch.push_back(std::move(r));
  }
  ASSERT_TRUE(object->Append(batch).ok());

  // Exact hit, between-records hit, before-everything, after-everything.
  EXPECT_EQ(*object->FindOffsetByTimestamp(1000), 0u);
  EXPECT_EQ(*object->FindOffsetByTimestamp(1500), 50u);
  EXPECT_EQ(*object->FindOffsetByTimestamp(1505), 51u);
  EXPECT_EQ(*object->FindOffsetByTimestamp(0), 0u);
  EXPECT_EQ(*object->FindOffsetByTimestamp(99999), 100u);  // frontier

  // Offsets in the buffered (unpersisted) tail resolve too.
  EXPECT_EQ(object->persisted(), 96u);  // 6 slices of 16
  EXPECT_EQ(*object->FindOffsetByTimestamp(1000 + 97 * 10), 97u);

  // The found offset is consumable.
  auto read = object->Read(*object->FindOffsetByTimestamp(1500), 1);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ((*read)[0].timestamp, 1500);
}

TEST(StreamObjectTest, DestroyMarksGarbageAndRejectsUse) {
  StreamFixture f;
  auto id = f.manager->CreateObject({});
  ASSERT_TRUE(id.ok());
  StreamObject* object = f.manager->GetObject(*id);
  std::vector<StreamRecord> batch;
  for (int i = 0; i < 300; ++i) batch.push_back(MakeRecord("k", "v"));
  ASSERT_TRUE(object->Append(batch).ok());
  ASSERT_TRUE(f.manager->DestroyObject(*id).ok());
  EXPECT_EQ(f.manager->GetObject(*id), nullptr);
  EXPECT_TRUE(f.manager->DestroyObject(*id).IsNotFound());
}

TEST(StreamObjectTest, SurvivesNodeFailure) {
  StreamFixture f;
  StreamObject* object = f.NewObject();
  std::vector<StreamRecord> batch;
  for (int i = 0; i < 256; ++i) {
    batch.push_back(MakeRecord("k", "payload-" + std::to_string(i)));
  }
  ASSERT_TRUE(object->Append(batch).ok());
  f.pool.SetNodeFailed(0, true);
  auto read = object->Read(0, 256);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 256u);
}

// Property: random interleavings of appends and reads always return the
// exact record sequence.
TEST(StreamObjectProperty, ReadMatchesAppendedSequence) {
  StreamFixture f;
  Random rng(99);
  StreamObjectOptions options;
  options.records_per_slice = 16;  // force frequent slice boundaries
  StreamObject* object = f.NewObject(options);
  std::vector<std::string> expected;
  for (int round = 0; round < 50; ++round) {
    std::vector<StreamRecord> batch;
    size_t n = 1 + rng.Uniform(40);
    for (size_t i = 0; i < n; ++i) {
      std::string v = "r" + std::to_string(expected.size());
      expected.push_back(v);
      batch.push_back(MakeRecord(rng.NextString(4), v));
    }
    ASSERT_TRUE(object->Append(batch).ok());
    // Random read-back of an arbitrary window.
    uint64_t start = rng.Uniform(expected.size());
    size_t want = 1 + rng.Uniform(30);
    auto read = object->Read(start, want);
    ASSERT_TRUE(read.ok());
    size_t expect_count = std::min<size_t>(want, expected.size() - start);
    ASSERT_EQ(read->size(), expect_count);
    for (size_t i = 0; i < expect_count; ++i) {
      EXPECT_EQ(BytesToString((*read)[i].value), expected[start + i]);
    }
  }
}

// Parameterized sweep: strict ordering and exact read-back hold across
// aggregation modes, slice sizes, and redundancy schemes.
struct StreamParamCase {
  bool io_aggregation;
  size_t records_per_slice;
  bool erasure_coded;
};

class StreamObjectParam : public ::testing::TestWithParam<StreamParamCase> {};

TEST_P(StreamObjectParam, OrderingAndReadbackInvariant) {
  const StreamParamCase& param = GetParam();
  StreamFixture f;
  StreamObjectOptions options;
  options.io_aggregation = param.io_aggregation;
  options.records_per_slice = param.records_per_slice;
  options.redundancy = param.erasure_coded
                           ? storage::RedundancyConfig::ErasureCoding(2, 1)
                           : storage::RedundancyConfig::Replication(3);
  StreamObject* object = f.NewObject(options);
  Random rng(17);
  std::vector<std::string> expected;
  for (int round = 0; round < 12; ++round) {
    std::vector<StreamRecord> batch;
    size_t n = 1 + rng.Uniform(70);
    for (size_t i = 0; i < n; ++i) {
      std::string value = "m" + std::to_string(expected.size());
      expected.push_back(value);
      batch.push_back(MakeRecord("k", value));
    }
    auto offset = object->Append(std::move(batch));
    ASSERT_TRUE(offset.ok());
  }
  ASSERT_TRUE(object->Flush().ok());
  auto read = object->Read(0, expected.size() + 10);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(BytesToString((*read)[i].value), expected[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, StreamObjectParam,
    ::testing::Values(StreamParamCase{true, 256, false},
                      StreamParamCase{true, 8, false},
                      StreamParamCase{false, 256, false},
                      StreamParamCase{true, 256, true},
                      StreamParamCase{true, 8, true},
                      StreamParamCase{false, 256, true}));

// ---------------- Fig. 3 C API ----------------

TEST(StreamCApiTest, FullLifecycle) {
  StreamFixture f;
  SetServerStreamManager(f.manager.get());

  CREATE_OPTIONS_S options;
  options.redundancy_mode = 0;
  options.replicas = 3;
  object_id_t id = 0;
  ASSERT_EQ(CreateServerStreamObject(&options, &id), 0);
  ASSERT_NE(id, 0u);

  IO_CONTENT_S io;
  io.records = {MakeRecord("k", "hello world", 1, 1),
                MakeRecord("k", "second", 1, 2)};
  uint64_t offset = 99;
  ASSERT_EQ(AppendServerStreamObject(&id, &io, &offset), 0);
  EXPECT_EQ(offset, 0u);

  READ_CTRL_S ctrl;
  ctrl.max_records = 10;
  IO_CONTENT_S out;
  ASSERT_EQ(ReadServerStreamObject(&id, 0, &ctrl, &out), 0);
  ASSERT_EQ(out.records.size(), 2u);
  EXPECT_EQ(BytesToString(out.records[0].value), "hello world");

  ASSERT_EQ(DestroyServerStreamObject(&id), 0);
  EXPECT_EQ(AppendServerStreamObject(&id, &io, &offset),
            -static_cast<int32_t>(StatusCode::kNotFound));
  SetServerStreamManager(nullptr);
}

TEST(StreamCApiTest, NullArgumentsRejected) {
  EXPECT_EQ(CreateServerStreamObject(nullptr, nullptr),
            -static_cast<int32_t>(StatusCode::kInvalidArgument));
  EXPECT_EQ(DestroyServerStreamObject(nullptr),
            -static_cast<int32_t>(StatusCode::kInvalidArgument));
}

}  // namespace
}  // namespace streamlake::stream
