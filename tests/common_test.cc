#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/bytes.h"
#include "common/coding.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/threadpool.h"

namespace streamlake {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk full");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.ToString(), "IOError: disk full");
}

TEST(StatusTest, AllFactoryPredicatesMatch) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Conflict("x").IsConflict());
  EXPECT_TRUE(Status::QuotaExceeded("x").IsQuotaExceeded());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::OutOfMemory("x").IsOutOfMemory());
}

TEST(StatusTest, ReturnNotOkMacro) {
  auto fails = []() -> Status {
    SL_RETURN_NOT_OK(Status::NotFound("missing"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsNotFound());
  auto passes = []() -> Status {
    SL_RETURN_NOT_OK(Status::OK());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_TRUE(passes().IsAlreadyExists());
}

TEST(StatusTest, LogIgnoredCountsErrorsOnly) {
  Counter* ignored =
      MetricsRegistry::Global().GetCounter("common.status.ignored");
  uint64_t before = ignored->Value();
  Status::OK().LogIgnored("noop");  // ok() is silent and uncounted
  EXPECT_EQ(ignored->Value(), before);
  Status::IOError("disk full").LogIgnored("test drop");
  EXPECT_EQ(ignored->Value(), before + 1);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(std::move(r).ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::IOError("io");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    SL_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(*outer(false), 10);
  EXPECT_TRUE(outer(true).status().IsIOError());
}

TEST(BytesTest, ViewEqualityAndConversion) {
  Bytes b = ToBytes("hello");
  ByteView v(b);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v.ToString(), "hello");
  EXPECT_EQ(v, ByteView(std::string_view("hello")));
  EXPECT_EQ(v.subview(1, 3).ToString(), "ell");
}

TEST(CodingTest, FixedRoundTrip) {
  Bytes b;
  PutFixed32(&b, 0xDEADBEEF);
  PutFixed64(&b, 0x0123456789ABCDEFULL);
  Decoder dec{ByteView(b)};
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(dec.GetFixed32(&v32));
  ASSERT_TRUE(dec.GetFixed64(&v64));
  EXPECT_EQ(v32, 0xDEADBEEF);
  EXPECT_EQ(v64, 0x0123456789ABCDEFULL);
  EXPECT_EQ(dec.Remaining(), 0u);
}

TEST(CodingTest, VarintRoundTripSweep) {
  Bytes b;
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                  (1ULL << 32), ~0ULL};
  for (uint64_t v : values) PutVarint64(&b, v);
  Decoder dec{ByteView(b)};
  for (uint64_t expected : values) {
    uint64_t got;
    ASSERT_TRUE(dec.GetVarint(&got));
    EXPECT_EQ(got, expected);
  }
}

TEST(CodingTest, ZigZagRoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-123456789},
                    INT64_MIN, INT64_MAX}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  Bytes b;
  PutLengthPrefixed(&b, std::string_view("key"));
  PutLengthPrefixed(&b, std::string_view(""));
  PutLengthPrefixed(&b, std::string_view("value with spaces"));
  Decoder dec{ByteView(b)};
  std::string s;
  ASSERT_TRUE(dec.GetString(&s));
  EXPECT_EQ(s, "key");
  ASSERT_TRUE(dec.GetString(&s));
  EXPECT_EQ(s, "");
  ASSERT_TRUE(dec.GetString(&s));
  EXPECT_EQ(s, "value with spaces");
}

TEST(CodingTest, DecoderRejectsTruncatedInput) {
  Bytes b;
  PutLengthPrefixed(&b, std::string_view("abcdef"));
  b.resize(b.size() - 2);  // chop the tail
  Decoder dec{ByteView(b)};
  ByteView out;
  EXPECT_FALSE(dec.GetBytes(&out));

  Bytes varint(10, 0xFF);  // overlong varint never terminates
  Decoder dec2{ByteView(varint)};
  uint64_t v;
  EXPECT_FALSE(dec2.GetVarint(&v));
}

TEST(HashTest, DeterministicAndSeedSensitive) {
  EXPECT_EQ(Hash64("streamlake"), Hash64("streamlake"));
  EXPECT_NE(Hash64("streamlake"), Hash64("streamlakf"));
  EXPECT_NE(Hash64("streamlake", 1), Hash64("streamlake", 2));
}

TEST(HashTest, ShardsSpreadUniformly) {
  // The DHT relies on Hash64 spreading keys across 4096 shards.
  constexpr int kShards = 4096;
  constexpr int kKeys = 200000;
  std::vector<int> counts(kShards, 0);
  for (int i = 0; i < kKeys; ++i) {
    counts[Hash64("key-" + std::to_string(i)) % kShards]++;
  }
  int nonzero = 0;
  int max_count = 0;
  for (int c : counts) {
    if (c > 0) ++nonzero;
    max_count = std::max(max_count, c);
  }
  EXPECT_GT(nonzero, kShards * 95 / 100);
  // Expected ~49 keys per shard; a factor-3 cap catches bad mixing.
  EXPECT_LT(max_count, 3 * kKeys / kShards);
}

TEST(HashTest, Crc32cKnownVector) {
  // Standard test vector: CRC-32C("123456789") = 0xE3069283.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
}

TEST(HashTest, Crc32cDetectsBitFlip) {
  Bytes data = ToBytes("some payload for a plog record");
  uint32_t before = Crc32c(ByteView(data));
  data[5] ^= 0x01;
  EXPECT_NE(Crc32c(ByteView(data)), before);
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformInRange) {
  Random r(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.Uniform(10);
    EXPECT_LT(v, 10u);
    int64_t w = r.UniformRange(-5, 5);
    EXPECT_GE(w, -5);
    EXPECT_LE(w, 5);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, ZipfIsSkewedTowardLowRanks) {
  Random r(3);
  constexpr int kDraws = 20000;
  int low = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (r.Zipf(1000) < 100) ++low;  // top 10% of ranks
  }
  // Under uniform sampling we'd expect ~10%; Zipf should concentrate far more.
  EXPECT_GT(low, kDraws / 3);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ShutdownDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Shutdown();
  }
  EXPECT_EQ(counter.load(), 50);
}

using ThreadPoolDeathTest = ::testing::Test;

TEST(ThreadPoolDeathTest, SubmitAfterShutdownAborts) {
  ThreadPool pool(1, "test.doomed_pool");
  pool.Shutdown();
  // The task would silently never run; that is a caller lifetime bug, so
  // Submit must fail loudly with a report naming the pool.
  EXPECT_DEATH(pool.Submit([] {}),
               "ThreadPool misuse.*test\\.doomed_pool");
}

}  // namespace
}  // namespace streamlake
