// Lock-hierarchy checker tests: deliberate rank inversions must abort the
// process (death tests), legal descending acquisition must not, and the
// lock-order graph observed while driving representative end-to-end
// workloads through every subsystem layer must be acyclic.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "access/access_control.h"
#include "access/block_service.h"
#include "access/nas_service.h"
#include "common/mutex.h"
#include "core/streamlake.h"
#include "workload/dpi_log.h"

namespace streamlake {
namespace {

#if SL_LOCK_ORDER_CHECK

// Death tests fork the whole binary; keep the parent single-threaded at
// fork time ("threadsafe" re-executes the child from scratch, which also
// keeps these valid under TSan).
class LockOrderDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(LockOrderDeathTest, RankInversionAborts) {
  Mutex low{LockRank::kKvStore, "test.low"};
  Mutex high{LockRank::kLakehouse, "test.high"};
  EXPECT_DEATH(
      {
        MutexLock inner(&low);
        MutexLock outer(&high);  // ascending rank while holding low: ABBA
      },
      "lock-order violation");
}

TEST_F(LockOrderDeathTest, EqualRankAborts) {
  // Two instances of the same rank may never nest: with no defined order
  // between siblings, opposite nesting in another thread would deadlock.
  Mutex a{LockRank::kKvStore, "test.a"};
  Mutex b{LockRank::kKvStore, "test.b"};
  EXPECT_DEATH(
      {
        MutexLock la(&a);
        MutexLock lb(&b);
      },
      "lock-order violation");
}

TEST_F(LockOrderDeathTest, StripedDescendingStripeAborts) {
  // Striped locks of one rank order by stripe index; descending is the
  // mirror-image ABBA of another thread ascending.
  Mutex s0{LockRank::kKvStore, "test.stripe", /*stripe=*/0};
  Mutex s1{LockRank::kKvStore, "test.stripe", /*stripe=*/1};
  EXPECT_DEATH(
      {
        MutexLock outer(&s1);
        MutexLock inner(&s0);
      },
      "lock-order violation");
}

TEST_F(LockOrderDeathTest, StripedVsUnstripedEqualRankAborts) {
  // The ascending-stripe exception requires BOTH locks to be striped;
  // an unstriped sibling still may never nest with a striped one.
  Mutex striped{LockRank::kKvStore, "test.striped", /*stripe=*/3};
  Mutex plain{LockRank::kKvStore, "test.plain"};
  EXPECT_DEATH(
      {
        MutexLock outer(&plain);
        MutexLock inner(&striped);
      },
      "lock-order violation");
}

TEST_F(LockOrderDeathTest, RecursiveAcquireAborts) {
  // std::mutex would deadlock silently; the checker turns it into a
  // diagnosed crash (self-edge is an equal-rank acquisition).
  Mutex mu{LockRank::kKvStore, "test.recursive"};
  EXPECT_DEATH(
      {
        MutexLock outer(&mu);
        mu.Lock();
      },
      "lock-order violation");
}

TEST_F(LockOrderDeathTest, SharedAcquisitionChecksRankToo) {
  // A reader blocked behind a pending writer closes an ABBA cycle exactly
  // like an exclusive acquisition would.
  SharedMutex low{LockRank::kKvStore, "test.shared.low"};
  Mutex high{LockRank::kTableCommit, "test.high"};
  EXPECT_DEATH(
      {
        ReaderMutexLock reader(&low);
        MutexLock writer(&high);
      },
      "lock-order violation");
}

TEST_F(LockOrderDeathTest, ReleasingUnheldLockAborts) {
  Mutex mu{LockRank::kKvStore, "test.unheld"};
  EXPECT_DEATH(mu.Unlock(), "does not hold");
}

TEST_F(LockOrderDeathTest, AssertHeldAbortsWhenNotHeld) {
  Mutex mu{LockRank::kKvStore, "test.assert"};
  EXPECT_DEATH(mu.AssertHeld(), "not held");
}

TEST(LockOrderTest, DescendingAcquisitionIsLegal) {
  Mutex outer{LockRank::kLakehouse, "test.outer"};
  Mutex inner{LockRank::kKvStore, "test.inner"};
  {
    MutexLock lo(&outer);
    MutexLock li(&inner);
    EXPECT_EQ(lock_order::HeldByCurrentThread(), 2u);
  }
  EXPECT_EQ(lock_order::HeldByCurrentThread(), 0u);
}

TEST(LockOrderTest, StripedAscendingAcquisitionIsLegal) {
  // Multi-stripe operations (KvStore batch commit, PlogStore sweeps that
  // chain) take same-rank stripe locks in ascending stripe order; the
  // checker admits exactly that order.
  Mutex s0{LockRank::kKvStore, "test.asc.stripe", /*stripe=*/0};
  Mutex s2{LockRank::kKvStore, "test.asc.stripe", /*stripe=*/2};
  Mutex s5{LockRank::kKvStore, "test.asc.stripe", /*stripe=*/5};
  {
    MutexLock l0(&s0);
    MutexLock l2(&s2);  // gaps are fine: only relative order matters
    MutexLock l5(&s5);
    EXPECT_EQ(lock_order::HeldByCurrentThread(), 3u);
  }
  EXPECT_EQ(lock_order::HeldByCurrentThread(), 0u);
}

TEST(LockOrderTest, StripedStepsRecordNoGraphEdge) {
  // Same-rank stripe steps share one class-level name; recording them
  // would self-loop the graph. Only strictly descending rank steps land.
  lock_order::ResetGraphForTest();
  Mutex s0{LockRank::kKvStore, "test.noedge.stripe", /*stripe=*/0};
  Mutex s1{LockRank::kKvStore, "test.noedge.stripe", /*stripe=*/1};
  {
    MutexLock l0(&s0);
    MutexLock l1(&s1);
  }
  for (const auto& e : lock_order::GraphEdges()) {
    EXPECT_NE(e.from, "test.noedge.stripe");
  }
  std::string cycle;
  EXPECT_TRUE(lock_order::GraphIsAcyclic(&cycle)) << cycle;
}

TEST(LockOrderTest, TryLockIsExemptFromRankOrder) {
  // A try-acquisition fails instead of blocking, so it cannot complete a
  // deadlock cycle; taking one "out of order" is legal by design.
  Mutex low{LockRank::kKvStore, "test.try.low"};
  Mutex high{LockRank::kLakehouse, "test.try.high"};
  MutexLock hold_low(&low);
  ASSERT_TRUE(high.TryLock());
  EXPECT_EQ(lock_order::HeldByCurrentThread(), 2u);
  high.Unlock();
}

TEST(LockOrderTest, AssertHeldPassesWhileHolding) {
  Mutex mu{LockRank::kKvStore, "test.assert.ok"};
  MutexLock lock(&mu);
  mu.AssertHeld();
}

TEST(LockOrderTest, HeldStackIsPerThread) {
  Mutex outer{LockRank::kLakehouse, "test.per_thread"};
  size_t other_thread_held = 99;
  std::atomic<bool> sampled{false};
  std::thread t;
  {
    MutexLock lock(&outer);
    EXPECT_EQ(lock_order::HeldByCurrentThread(), 1u);
    t = std::thread([&] {
      other_thread_held = lock_order::HeldByCurrentThread();
      sampled.store(true);
    });
    // Hold the lock until the other thread has sampled its own (empty)
    // stack; join only after releasing (lint R5: no joins under a lock).
    while (!sampled.load()) std::this_thread::yield();
  }
  t.join();
  EXPECT_EQ(other_thread_held, 0u);
  EXPECT_EQ(lock_order::HeldByCurrentThread(), 0u);
}

TEST(LockOrderTest, NestedAcquisitionRecordsGraphEdge) {
  lock_order::ResetGraphForTest();
  Mutex outer{LockRank::kLakehouse, "test.edge.outer"};
  Mutex inner{LockRank::kKvStore, "test.edge.inner"};
  {
    MutexLock lo(&outer);
    MutexLock li(&inner);
  }
  bool found = false;
  for (const auto& e : lock_order::GraphEdges()) {
    if (e.from == "test.edge.outer" && e.to == "test.edge.inner") found = true;
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// End-to-end workloads: drive every layer (streaming txn path, conversion,
// lakehouse query, tiering/background work, access gateways), then assert
// the observed lock-order graph is a DAG and every edge points down-rank.
// ---------------------------------------------------------------------------

// Shared by the acyclicity test and the observed-vs-static subset test:
// both need the same representative coverage, reset the graph themselves,
// and assert different properties of what was observed.
void DriveEndToEndWorkloads() {
  {
    // Stream -> table reunion flow, the deepest lock chain in the system:
    // txn_manager -> dispatcher -> worker -> object manager -> stream
    // object -> {plog_store -> plog -> pool -> device, kv index}.
    core::StreamLakeOptions options;
    options.tiering_policy.cold_after_ns = 10 * sim::kSecond;
    options.plog.plog.capacity = 1 << 20;
    core::StreamLake lake(options);

    streaming::TopicConfig config;
    config.stream_num = 3;
    config.convert_2_table.enabled = true;
    config.convert_2_table.table_schema = workload::DpiLogGenerator::Schema();
    config.convert_2_table.table_path = "dpi";
    config.convert_2_table.partition_spec =
        table::PartitionSpec::Identity("province");
    config.convert_2_table.split_offset = 1;
    config.convert_2_table.delete_msg = true;
    ASSERT_TRUE(lake.dispatcher().CreateTopic("logs", config).ok());

    workload::DpiLogGenerator gen;
    auto producer = lake.NewProducer();
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(producer.Send("logs", gen.NextMessage()).ok());
    }

    auto txns = lake.NewTransactionManager();
    auto txn = txns.Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(txns.Send(*txn, "logs", gen.NextMessage()).ok());
    ASSERT_TRUE(txns.Commit(*txn).ok());

    auto consumer = lake.NewConsumer("g");
    ASSERT_TRUE(consumer.Subscribe("logs").ok());
    ASSERT_TRUE(consumer.Poll().ok());

    auto converted = lake.converter().Run("logs");
    ASSERT_TRUE(converted.ok()) << converted.status().ToString();

    auto table = lake.lakehouse().GetTable("dpi");
    ASSERT_TRUE(table.ok());
    query::QuerySpec spec;
    spec.group_by = {"province"};
    spec.aggregates = {query::AggregateSpec::CountStar("c")};
    // Twice: the cold run exercises the scan-pool fan-out (barrier +
    // block-cache fill edges), the warm run the cache-hit path.
    ASSERT_TRUE((*table)->Select(spec).ok());
    ASSERT_TRUE((*table)->Select(spec).ok());
    // Compaction invalidates decoded blocks under the commit lock —
    // the commit_mu -> block_cache edge must point down-rank.
    auto files = (*table)->LiveFiles();
    ASSERT_TRUE(files.ok());
    ASSERT_FALSE(files->empty());
    ASSERT_TRUE((*table)->CompactPartition(files->front().partition).ok());

    lake.clock().Advance(3600 * sim::kSecond);
    ASSERT_TRUE(lake.RunBackgroundWork().ok());
  }

  {
    // Access gateways over the storage band: nas -> object store -> kv /
    // plog chain, block -> acl + pool -> device.
    sim::SimClock clock;
    storage::StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
    pool.AddCluster(3, 2, 256 << 20);
    kv::KvStore index;
    storage::PlogStoreConfig config;
    config.plog.capacity = 16 << 20;
    storage::PlogStore plogs(&pool, config, &clock);
    storage::ObjectStore objects(&plogs, &index);
    access::AccessController acl;
    std::string token = acl.CreatePrincipal("root");
    ASSERT_TRUE(acl.Grant("root", "/", access::Permission::kAdmin).ok());

    access::BlockService block(&pool, &acl);
    auto lun = block.CreateVolume(token, 64 << 20);
    ASSERT_TRUE(lun.ok());
    ASSERT_TRUE(block.Write(token, *lun, 0, Bytes(8192, 'b')).ok());
    ASSERT_TRUE(block.Read(token, *lun, 0, 8192).ok());

    access::NasService nas(&objects, &acl, &clock);
    ASSERT_TRUE(nas.MakeDirectory(token, "/dir").ok());
    auto handle = nas.Open(token, "/dir/f", /*for_write=*/true);
    ASSERT_TRUE(handle.ok());
    ASSERT_TRUE(nas.WriteAt(*handle, 0, Bytes(4096, 'n')).ok());
    ASSERT_TRUE(nas.Close(*handle).ok());
  }
}

TEST(LockOrderGraphTest, EndToEndWorkloadsObserveAcyclicGraph) {
  lock_order::ResetGraphForTest();
  DriveEndToEndWorkloads();

  auto edges = lock_order::GraphEdges();
  EXPECT_FALSE(edges.empty())
      << "workloads exercised no nested acquisitions; the graph assertion "
         "is vacuous";

  // Every observed edge must point strictly down-rank (this is what the
  // runtime rule enforces; if it ever regresses, catch it here too)...
  for (const auto& e : edges) {
    EXPECT_LT(static_cast<unsigned>(e.to_rank),
              static_cast<unsigned>(e.from_rank))
        << e.from << " -> " << e.to;
  }

  // ...and therefore the graph as a whole must be acyclic.
  std::string cycle;
  EXPECT_TRUE(lock_order::GraphIsAcyclic(&cycle)) << "cycle: " << cycle;
}

// ---------------------------------------------------------------------------
// DOT export and the static/runtime cross-check (slint S4).
// ---------------------------------------------------------------------------

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Pulls the quoted names out of one line of our DOT dialect: two names on
// an edge line, one on a node line.
std::vector<std::string> QuotedNames(const std::string& line) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (true) {
    size_t open = line.find('"', pos);
    if (open == std::string::npos) break;
    size_t close = line.find('"', open + 1);
    if (close == std::string::npos) break;
    out.push_back(line.substr(open + 1, close - open - 1));
    pos = close + 1;
  }
  return out;
}

TEST(LockOrderGraphTest, WriteDotEmitsStableParseableGraph) {
  lock_order::ResetGraphForTest();
  Mutex outer{LockRank::kLakehouse, "test.dot.outer"};
  Mutex inner{LockRank::kKvStore, "test.dot.inner"};
  {
    MutexLock lo(&outer);
    MutexLock li(&inner);
  }
  const std::string path = ::testing::TempDir() + "lock_graph_test.dot";
  ASSERT_TRUE(lock_order::WriteDot(path));
  const std::string text = ReadFileOrEmpty(path);
  EXPECT_NE(text.find("digraph lock_order {"), std::string::npos) << text;
  // Nodes carry the rank (kLakehouse=46, kKvStore=30), edges the pair.
  EXPECT_NE(text.find("\"test.dot.outer\" [lockrank=46];"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"test.dot.inner\" [lockrank=30];"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"test.dot.outer\" -> \"test.dot.inner\";"),
            std::string::npos)
      << text;

  // Stable ordering: a second dump of the same graph is byte-identical.
  const std::string path2 = ::testing::TempDir() + "lock_graph_test2.dot";
  ASSERT_TRUE(lock_order::WriteDot(path2));
  EXPECT_EQ(text, ReadFileOrEmpty(path2));
}

// Records one test.hook.* edge, then exits so the atexit dump hook runs
// (the scoped unlocks deliberately never do). A named function because
// the brace-initializer commas would split EXPECT_EXIT's macro arguments.
[[noreturn]] void AcquireHookEdgeAndExit() {
  Mutex outer{LockRank::kLakehouse, "test.hook.outer"};
  Mutex inner{LockRank::kKvStore, "test.hook.inner"};
  MutexLock lo(&outer);
  MutexLock li(&inner);
  std::exit(0);
}

TEST_F(LockOrderDeathTest, ExitHookDumpsGraphWhenEnvSet) {
  // The STREAMLAKE_LOCK_GRAPH_DOT registrar runs at static-init time, so
  // it must be exercised in a child process that STARTS with the variable
  // set; the threadsafe death-test re-execution provides exactly that.
  const std::string path = ::testing::TempDir() + "lock_graph_exit_hook.dot";
  std::remove(path.c_str());
  ::setenv("STREAMLAKE_LOCK_GRAPH_DOT", path.c_str(), /*overwrite=*/1);
  EXPECT_EXIT(AcquireHookEdgeAndExit(), ::testing::ExitedWithCode(0), "");
  ::unsetenv("STREAMLAKE_LOCK_GRAPH_DOT");
  const std::string text = ReadFileOrEmpty(path);
  EXPECT_NE(text.find("\"test.hook.outer\" -> \"test.hook.inner\";"),
            std::string::npos)
      << "exit hook did not dump the observed graph; got: " << text;
}

// slint check S4, runtime side: every edge the runtime checker observes
// between production locks must exist in the statically derived graph. If
// this fails, the static analyzer failed to model a real acquisition path
// (a parser gap) — fix tools/slint, do not weaken this test.
TEST(LockOrderGraphTest, ObservedGraphIsSubgraphOfStatic) {
  const char* static_path = std::getenv("STREAMLAKE_STATIC_LOCK_GRAPH");
  if (static_path == nullptr) {
    GTEST_SKIP() << "STREAMLAKE_STATIC_LOCK_GRAPH not set (ctest sets it "
                    "to the slint-generated lock_graph.dot)";
  }
  const std::string text = ReadFileOrEmpty(static_path);
  ASSERT_FALSE(text.empty()) << "unreadable static graph: " << static_path;

  std::set<std::string> static_nodes;
  std::set<std::pair<std::string, std::string>> static_edges;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    auto names = QuotedNames(line);
    if (names.size() == 2 && line.find("->") != std::string::npos) {
      static_edges.emplace(names[0], names[1]);
    } else if (names.size() == 1) {
      static_nodes.insert(names[0]);
    }
  }
  ASSERT_FALSE(static_nodes.empty()) << "no nodes parsed from " << text;

  lock_order::ResetGraphForTest();
  DriveEndToEndWorkloads();

  size_t checked = 0;
  for (const auto& e : lock_order::GraphEdges()) {
    // Locks constructed by tests (names "test.*") are outside the static
    // universe; everything the analyzer knows appears as a node.
    if (static_nodes.count(e.from) == 0 || static_nodes.count(e.to) == 0) {
      continue;
    }
    ++checked;
    EXPECT_TRUE(static_edges.count({e.from, e.to}) == 1)
        << "observed edge missing from static graph: " << e.from << " -> "
        << e.to;
  }
  EXPECT_GT(checked, 0u)
      << "no observed edges fell inside the static universe; the subset "
         "assertion is vacuous";
}

#else  // !SL_LOCK_ORDER_CHECK

TEST(LockOrderTest, CheckingCompiledOut) {
  // Release configuration: the checker must cost nothing and the graph API
  // must degrade to trivially-true answers.
  Mutex mu{LockRank::kKvStore, "test.release"};
  {
    MutexLock lock(&mu);
    EXPECT_EQ(lock_order::HeldByCurrentThread(), 0u);
  }
  EXPECT_TRUE(lock_order::GraphEdges().empty());
  std::string cycle = "unchanged?";
  EXPECT_TRUE(lock_order::GraphIsAcyclic(&cycle));
  EXPECT_TRUE(cycle.empty());
  // WriteDot still works: it emits the (empty) digraph shell.
  const std::string path = ::testing::TempDir() + "lock_graph_release.dot";
  EXPECT_TRUE(lock_order::WriteDot(path));
}

#endif  // SL_LOCK_ORDER_CHECK

}  // namespace
}  // namespace streamlake
