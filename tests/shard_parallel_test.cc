// Shard-parallel write-path stress: many threads hammer disjoint and
// overlapping shards of the striped PlogStore and KvStore while
// store-wide operations (FlushAll, Scan, stats) sweep the stripes.
// Designed for the TSan preset (cmake --preset tsan); carries the
// `stress` ctest label. Also asserts that the lock-order graph observed
// under full stripe contention stays acyclic — the striped sub-rank rule
// must not introduce a cycle through the class-level lock names.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "kv/kv_store.h"
#include "storage/plog_store.h"

namespace streamlake {
namespace {

TEST(ShardParallelTest, PlogStoreStripedMixedWorkload) {
  sim::SimClock clock;
  storage::StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
  pool.AddCluster(3, 2, 256 << 20);
  storage::PlogStoreConfig config;
  config.num_shards = 32;
  config.num_stripes = 8;  // 4 shards per stripe: intra-stripe contention
  config.plog.capacity = 1 << 20;
  config.plog.stripe_unit = 4096;
  config.plog.redundancy = storage::RedundancyConfig::Replication(3);
  storage::PlogStore store(&pool, config, &clock);

  constexpr int kThreads = 8;
  constexpr int kOpsEach = 150;
  std::atomic<bool> stop{false};
  std::atomic<int> flushes{0};

  // One sweeper runs store-wide operations concurrently with the
  // per-shard traffic: they lock stripes one at a time, never
  // stop-the-world, so they must neither deadlock nor starve.
  std::thread sweeper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(store.FlushAll().ok());
      flushes.fetch_add(1, std::memory_order_relaxed);
      (void)store.TotalLiveBytes();
      (void)store.TotalPlogs();
      store.ForEachPlog([](uint32_t, uint32_t, storage::Plog*) {});
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<std::pair<storage::PlogAddress, std::string>> mine;
      for (int i = 0; i < kOpsEach; ++i) {
        // Mix of a thread-private shard (disjoint: never contends) and a
        // shared shard (all threads: max intra-stripe contention).
        uint32_t shard = (i % 3 == 0) ? 0u
                                      : static_cast<uint32_t>(
                                            t * 4 % config.num_shards);
        std::string payload =
            "t" + std::to_string(t) + "-i" + std::to_string(i);
        auto addr = store.Append(shard, ByteView(payload));
        ASSERT_TRUE(addr.ok()) << addr.status().ToString();
        mine.emplace_back(*addr, payload);
        // Read back a random earlier record of this thread.
        const auto& [raddr, rpayload] = mine[i % mine.size()];
        auto read = store.Read(raddr);
        ASSERT_TRUE(read.ok()) << read.status().ToString();
        EXPECT_EQ(BytesToString(*read), rpayload);
        // Retire every fourth record.
        if (i % 4 == 3) {
          const auto& [gaddr, gpayload] = mine[mine.size() - 2];
          ASSERT_TRUE(store.MarkGarbage(gaddr, gpayload.size()).ok());
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  stop.store(true, std::memory_order_release);
  sweeper.join();

  EXPECT_GT(flushes.load(), 0);
  EXPECT_EQ(store.num_stripes(), 8u);

#if SL_LOCK_ORDER_CHECK
  std::string cycle;
  EXPECT_TRUE(lock_order::GraphIsAcyclic(&cycle)) << cycle;
#endif
}

TEST(ShardParallelTest, KvStoreStripedWritersReadersAndScans) {
  kv::KvOptions options;
  options.num_stripes = 8;
  kv::KvStore store(options);

  constexpr int kWriters = 4;
  constexpr int kOpsEach = 200;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kOpsEach; ++i) {
        // Multi-key batches span stripes: commit takes several stripe
        // locks in ascending order, racing the other writers' batches.
        kv::WriteBatch batch;
        batch.Put("shared/" + std::to_string(i % 17), std::to_string(w));
        batch.Put("w" + std::to_string(w) + "/" + std::to_string(i),
                  std::string(32, 'v'));
        if (i % 5 == 4) {
          batch.Delete("w" + std::to_string(w) + "/" +
                       std::to_string(i - 4));
        }
        ASSERT_TRUE(store.Write(batch).ok());
      }
    });
  }
  // Snapshot scanner: merged cross-stripe range reads while writes land.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto snap = store.GetSnapshot();
      auto rows = store.Scan("shared/", "shared0", snap, 64);
      // Scan output must be sorted despite per-stripe collection.
      for (size_t i = 1; i < rows.size(); ++i) {
        ASSERT_LT(rows[i - 1].first, rows[i].first);
      }
      std::this_thread::yield();
    }
  });
  // Point reader on the hot shared keys.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (int i = 0; i < 17; ++i) {
        auto value = store.Get("shared/" + std::to_string(i));
        if (value.ok()) {
          EXPECT_FALSE(value->empty());
        }
      }
      std::this_thread::yield();
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  // Every writer's surviving keys are all visible at the end.
  for (int w = 0; w < kWriters; ++w) {
    int live = 0;
    for (int i = 0; i < kOpsEach; ++i) {
      if (store.Get("w" + std::to_string(w) + "/" + std::to_string(i)).ok()) {
        ++live;
      }
    }
    EXPECT_EQ(live, kOpsEach - kOpsEach / 5);
  }

#if SL_LOCK_ORDER_CHECK
  std::string cycle;
  EXPECT_TRUE(lock_order::GraphIsAcyclic(&cycle)) << cycle;
#endif
}

// Batches whose sequences interleave across stripes must recover to the
// exact same state: the per-stripe WALs are merged by sequence.
TEST(ShardParallelTest, ConcurrentBatchesRecoverExactly) {
  kv::KvOptions options;
  options.num_stripes = 4;
  kv::KvStore store(options);

  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 100; ++i) {
        kv::WriteBatch batch;
        batch.Put("a/" + std::to_string(w) + "-" + std::to_string(i), "x");
        batch.Put("b/" + std::to_string(w) + "-" + std::to_string(i), "y");
        ASSERT_TRUE(store.Write(batch).ok());
      }
    });
  }
  for (auto& t : writers) t.join();

  kv::KvOptions replay_options;
  replay_options.num_stripes = 4;
  kv::KvStore replayed(replay_options);
  Bytes wal = store.WalContents();
  auto applied = replayed.Recover(ByteView(wal));
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(replayed.LiveKeyCount(), store.LiveKeyCount());
  EXPECT_EQ(replayed.LatestSequence(), store.LatestSequence());
  auto rows = store.Scan("a/", "c", store.GetSnapshot());
  for (const auto& [key, value] : rows) {
    auto got = replayed.Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value);
  }
}

}  // namespace
}  // namespace streamlake
