#include <gtest/gtest.h>

#include <thread>

#include "access/admission.h"
#include "common/token_bucket.h"
#include "core/streamlake.h"
#include "sim/clock.h"
#include "workload/cluster_driver.h"

namespace streamlake {
namespace {

using access::AdmissionConfig;
using access::AdmissionController;
using access::TenantQuota;

// ---------------------------------------------------------------------------
// TokenBucket

TEST(TokenBucketTest, ZeroCapacityNeverAdmits) {
  TokenBucket bucket(/*rate_per_sec=*/0, /*burst=*/0);
  EXPECT_FALSE(bucket.TryConsume(0, 1));
  EXPECT_EQ(bucket.NanosUntilAvailable(0, 1), TokenBucket::kNever);
  EXPECT_EQ(bucket.Reserve(0, 1, /*max_wait_ns=*/sim::kSecond),
            TokenBucket::kNever);
  // Even far in the future: no rate means no refill.
  EXPECT_FALSE(bucket.TryConsume(100 * sim::kSecond, 1));
}

TEST(TokenBucketTest, BurstThenDrainThenRefillOnVirtualTime) {
  TokenBucket bucket(/*rate_per_sec=*/100, /*burst=*/10);
  // The full burst is available immediately...
  EXPECT_TRUE(bucket.TryConsume(0, 10));
  // ...and once drained, nothing more at the same instant.
  EXPECT_FALSE(bucket.TryConsume(0, 1));
  EXPECT_EQ(bucket.NanosUntilAvailable(0, 1), sim::kSecond / 100);
  // 50 virtual ms = 5 tokens at 100/s.
  uint64_t t = sim::kSecond / 20;
  EXPECT_TRUE(bucket.TryConsume(t, 5));
  EXPECT_FALSE(bucket.TryConsume(t, 1));
  // Refill caps at burst no matter how long the idle gap.
  t += 100 * sim::kSecond;
  EXPECT_NEAR(bucket.TokensAt(t), 10, 1e-9);
  EXPECT_TRUE(bucket.TryConsume(t, 10));
  EXPECT_FALSE(bucket.TryConsume(t, 1));
}

TEST(TokenBucketTest, ReserveRunsIntoDebtAndSheds) {
  TokenBucket bucket(/*rate_per_sec=*/1000, /*burst=*/4);
  // First reservation is covered: no wait.
  EXPECT_EQ(bucket.Reserve(0, 4, /*max_wait_ns=*/sim::kSecond), 0u);
  // Next goes 2 into debt: 2 tokens at 1000/s = 2 ms of virtual queue.
  EXPECT_EQ(bucket.Reserve(0, 2, sim::kSecond), 2 * sim::kSecond / 1000);
  // A reservation whose wait would blow the ceiling is refused whole...
  double before = bucket.TokensAt(0);
  EXPECT_EQ(bucket.Reserve(0, 1000, sim::kSecond), TokenBucket::kNever);
  // ...consuming nothing (the shed path must not eat quota).
  EXPECT_NEAR(bucket.TokensAt(0), before, 1e-9);
  // More than the bucket can ever hold is kNever regardless of ceiling.
  EXPECT_EQ(bucket.NanosUntilAvailable(0, 5), TokenBucket::kNever);
}

TEST(TokenBucketTest, RefundClampsAtBurst) {
  TokenBucket bucket(/*rate_per_sec=*/10, /*burst=*/5);
  EXPECT_TRUE(bucket.TryConsume(0, 3));
  bucket.Refund(100);
  EXPECT_NEAR(bucket.TokensAt(0), 5, 1e-9);
}

// ---------------------------------------------------------------------------
// AdmissionController

AdmissionConfig SmallQuota() {
  AdmissionConfig config;
  config.enabled = true;
  config.default_quota.ops_per_sec = 10;
  config.default_quota.burst_ops = 2;
  config.max_queue_depth = 4;  // 400 ms of virtual queue at 10 ops/s
  return config;
}

TEST(AdmissionControllerTest, DisabledConfigAdmitsEverything) {
  sim::SimClock clock;
  AdmissionConfig config;  // enabled = false
  AdmissionController admission(config, &clock);
  for (int i = 0; i < 1000; ++i) {
    auto ticket = admission.Admit("anyone", AdmitOp::kProduce, 1, 1 << 20);
    ASSERT_TRUE(ticket.ok());
    EXPECT_EQ(ticket->wait_ns, 0u);
  }
  // Disabled also means no accounting.
  EXPECT_EQ(admission.GetStats("anyone").offered_ops, 0u);
}

TEST(AdmissionControllerTest, QueueFullShedsWithResourceExhausted) {
  sim::SimClock clock;
  AdmissionController admission(SmallQuota(), &clock);
  // Burst (2) + queue (4) admit; everything past that sheds immediately —
  // never hangs, never consumes quota.
  int admitted = 0, shed = 0;
  Status last_shed = Status::OK();
  for (int i = 0; i < 10; ++i) {
    auto ticket = admission.AdmitAt("acme", AdmitOp::kProduce, 1, 0, 0);
    if (ticket.ok()) {
      ++admitted;
    } else {
      ++shed;
      last_shed = ticket.status();
    }
  }
  EXPECT_EQ(admitted, 6);
  EXPECT_EQ(shed, 4);
  EXPECT_TRUE(last_shed.IsResourceExhausted()) << last_shed.ToString();
  auto stats = admission.GetStats("acme");
  EXPECT_EQ(stats.offered_ops, 10u);
  EXPECT_EQ(stats.admitted_ops, 6u);
  EXPECT_EQ(stats.shed_ops, 4u);
  // 2 rode the burst; 4 were queued with a positive virtual wait.
  EXPECT_EQ(stats.throttled_ops, 4u);
  // The shed requests consumed nothing: once the queue drains (400 ms of
  // refill), new arrivals admit again.
  auto later = admission.AdmitAt("acme", AdmitOp::kProduce, 1, 0,
                                 sim::kSecond);
  EXPECT_TRUE(later.ok());
}

TEST(AdmissionControllerTest, ThrottledTicketCarriesVirtualWait) {
  sim::SimClock clock;
  AdmissionController admission(SmallQuota(), &clock);
  ASSERT_TRUE(admission.AdmitAt("t", AdmitOp::kProduce, 2, 0, 0).ok());
  auto queued = admission.AdmitAt("t", AdmitOp::kProduce, 1, 0, 0);
  ASSERT_TRUE(queued.ok());
  // 1 token of debt at 10 ops/s = 100 ms of virtual queue.
  EXPECT_EQ(queued->wait_ns, sim::kSecond / 10);
}

TEST(AdmissionControllerTest, PerTenantIsolationKeepsNeighborsApart) {
  sim::SimClock clock;
  AdmissionController admission(SmallQuota(), &clock);
  // Flood tenant "hog" until it sheds.
  for (int i = 0; i < 50; ++i) {
    admission.AdmitAt("hog", AdmitOp::kProduce, 1, 0, 0).status().IgnoreError();  // ignore-ok: flooding on purpose; the shed outcome is asserted via stats below
  }
  EXPECT_GT(admission.GetStats("hog").shed_ops, 0u);
  // "quiet" still has its full burst.
  auto ticket = admission.AdmitAt("quiet", AdmitOp::kProduce, 1, 0, 0);
  ASSERT_TRUE(ticket.ok());
  EXPECT_EQ(ticket->wait_ns, 0u);
}

TEST(AdmissionControllerTest, OversizedRequestShedsInsteadOfHanging) {
  sim::SimClock clock;
  AdmissionController admission(SmallQuota(), &clock);
  // Cost above the burst can never be backed by refill: AdmitBlocking
  // must shed immediately, not spin until the wall timeout.
  auto ticket = admission.AdmitBlocking("t", AdmitOp::kProduce, 100, 0);
  ASSERT_FALSE(ticket.ok());
  EXPECT_TRUE(ticket.status().IsResourceExhausted());
}

TEST(AdmissionControllerTest, BlockingWallTimeoutFiresOnStuckClock) {
  sim::SimClock clock;
  AdmissionConfig config = SmallQuota();
  config.max_blocking_wall_ms = 50;
  AdmissionController admission(config, &clock);
  // Drain the burst; with the virtual clock never advancing the throttle
  // window cannot pass, so the wall-clock safety valve must fire.
  ASSERT_TRUE(admission.AdmitBlocking("t", AdmitOp::kProduce, 2, 0).ok());
  auto stuck = admission.AdmitBlocking("t", AdmitOp::kProduce, 1, 0);
  ASSERT_FALSE(stuck.ok());
  EXPECT_TRUE(stuck.status().IsTimeout()) << stuck.status().ToString();
}

TEST(AdmissionControllerTest, BlockedCallerResumesAfterThrottleWindow) {
  sim::SimClock clock;
  AdmissionController admission(SmallQuota(), &clock);
  ASSERT_TRUE(admission.AdmitBlocking("t", AdmitOp::kProduce, 2, 0).ok());
  // A backpressured caller parks on the gate; advancing the virtual clock
  // past the refill window and polling releases it.
  Status blocked_status = Status::OK();
  std::thread blocked([&] {
    auto ticket = admission.AdmitBlocking("t", AdmitOp::kProduce, 1, 0);
    blocked_status = ticket.status();
  });
  clock.Advance(sim::kSecond);  // 10 tokens at 10 ops/s
  admission.Poll();
  blocked.join();
  EXPECT_TRUE(blocked_status.ok()) << blocked_status.ToString();
  EXPECT_EQ(admission.GetStats("t").admitted_ops, 3u);
}

TEST(AdmissionControllerTest, TrackedTenantCapBoundsMetricNamespace) {
  sim::SimClock clock;
  AdmissionConfig config = SmallQuota();
  config.max_tracked_tenants = 2;
  AdmissionController admission(config, &clock);
  ASSERT_TRUE(admission.Admit("cap_a", AdmitOp::kProduce, 1, 0).ok());
  ASSERT_TRUE(admission.Admit("cap_b", AdmitOp::kProduce, 1, 0).ok());
  ASSERT_TRUE(admission.Admit("cap_c", AdmitOp::kProduce, 1, 0).ok());
  std::string registry = MetricsRegistry::Global().JsonReport();
  EXPECT_NE(registry.find("tenant.cap_a.admitted_ops"), std::string::npos);
  EXPECT_NE(registry.find("tenant.cap_b.admitted_ops"), std::string::npos);
  // The third tenant stays out of the registry...
  EXPECT_EQ(registry.find("tenant.cap_c.admitted_ops"), std::string::npos);
  // ...but its exact stats are still kept.
  EXPECT_EQ(admission.GetStats("cap_c").admitted_ops, 1u);
}

TEST(AdmissionControllerTest, ClusterBucketCapsAggregateLoad) {
  sim::SimClock clock;
  AdmissionConfig config;
  config.enabled = true;
  config.per_tenant_isolation = false;
  config.cluster_ops_per_sec = 10;
  config.cluster_burst_ops = 2;
  config.max_queue_depth = 4;
  AdmissionController admission(config, &clock);
  // Different tenants draw from the one shared bucket.
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    std::string tenant = "t" + std::to_string(i % 3);
    if (admission.AdmitAt(tenant, AdmitOp::kProduce, 1, 0, 0).ok()) {
      ++admitted;
    }
  }
  EXPECT_EQ(admitted, 6);  // burst 2 + queue 4, across all tenants
}

// ---------------------------------------------------------------------------
// Producer backpressure through the facade

TEST(AdmissionIntegrationTest, BackpressuredProducerResumesAfterWindow) {
  core::StreamLakeOptions options;
  options.admission.enabled = true;
  options.admission.default_quota.ops_per_sec = 10;
  options.admission.default_quota.burst_ops = 2;
  core::StreamLake lake(options);
  streaming::TopicConfig topic;
  topic.stream_num = 1;
  ASSERT_TRUE(lake.dispatcher().CreateTopic("t", topic).ok());

  auto producer = lake.NewProducer("acme");
  ASSERT_TRUE(producer.Send("t", streaming::Message("k", "v")).ok());
  ASSERT_TRUE(producer.Send("t", streaming::Message("k", "v")).ok());
  // The third send exceeds the burst: it parks on the gate until the
  // throttle window passes on the virtual clock.
  Status third = Status::OK();
  std::thread sender([&] {
    third = producer.Send("t", streaming::Message("k", "v")).status();
  });
  lake.clock().Advance(sim::kSecond);
  lake.admission()->Poll();
  sender.join();
  EXPECT_TRUE(third.ok()) << third.ToString();
  auto stats = lake.admission()->GetStats("acme");
  EXPECT_EQ(stats.admitted_ops, 3u);
  EXPECT_EQ(stats.shed_ops, 0u);
}

TEST(AdmissionIntegrationTest, S3GatewayShedsOverQuotaTenant) {
  core::StreamLakeOptions options;
  options.admission.enabled = true;
  options.admission.default_quota.ops_per_sec = 0;  // no refill:
  options.admission.default_quota.burst_ops = 3;    // 3 ops, ever
  core::StreamLake lake(options);
  std::string token = lake.acl().CreatePrincipal("s3user");
  ASSERT_TRUE(lake.acl()
                  .Grant("s3user", "/s3/b/", access::Permission::kWrite)
                  .ok());
  ASSERT_TRUE(lake.acl()
                  .Grant("s3user", "/s3/b/", access::Permission::kRead)
                  .ok());
  ASSERT_TRUE(lake.s3().CreateBucket(token, "b").ok());
  ASSERT_TRUE(lake.s3().PutObject(token, "b", "k0", ByteView("x")).ok());
  ASSERT_TRUE(lake.s3().PutObject(token, "b", "k1", ByteView("x")).ok());
  ASSERT_TRUE(lake.s3().GetObject(token, "b", "k0").ok());
  // Quota spent: both reads and writes shed now.
  EXPECT_TRUE(lake.s3()
                  .PutObject(token, "b", "k2", ByteView("x"))
                  .IsResourceExhausted());
  EXPECT_TRUE(lake.s3()
                  .GetObject(token, "b", "k0")
                  .status()
                  .IsResourceExhausted());
  EXPECT_GE(lake.admission()->GetStats("s3user").shed_ops, 2u);
}

TEST(AdmissionIntegrationTest, BlockServiceShedsOverQuotaTenant) {
  core::StreamLakeOptions options;
  options.admission.enabled = true;
  options.admission.default_quota.ops_per_sec = 0;
  options.admission.default_quota.burst_ops = 2;
  core::StreamLake lake(options);
  std::string token = lake.acl().CreatePrincipal("blkuser");
  ASSERT_TRUE(lake.acl()
                  .Grant("blkuser", "/block/", access::Permission::kAdmin)
                  .ok());
  auto lun = lake.blocks().CreateVolume(token, 8 << 20);
  ASSERT_TRUE(lun.ok());
  Bytes data(4096, 7);
  ASSERT_TRUE(lake.blocks().Write(token, *lun, 0, ByteView(data)).ok());
  ASSERT_TRUE(lake.blocks().Read(token, *lun, 0, 4096).ok());
  EXPECT_TRUE(lake.blocks()
                  .Write(token, *lun, 0, ByteView(data))
                  .IsResourceExhausted());
  EXPECT_TRUE(lake.blocks()
                  .Read(token, *lun, 0, 4096)
                  .status()
                  .IsResourceExhausted());
}

// ---------------------------------------------------------------------------
// ClusterDriver

workload::ClusterConfig SmokeTraffic() {
  workload::ClusterConfig config;
  config.logical_clients = 2000;
  config.tenants = 4;
  config.ops_per_client_per_sec = 0.5;
  config.duration_sec = 0.5;
  config.hot_tenant = 1;
  config.hot_multiplier = 50;
  config.driver_threads = 1;
  config.seed = 7;
  return config;
}

core::StreamLakeOptions DriverLakeOptions() {
  core::StreamLakeOptions options;
  options.admission.enabled = true;
  options.admission.gate_access_layer = false;  // the driver meters itself
  // Sized above the largest cold tenant's offered rate so only the hot
  // tenant is clipped.
  options.admission.default_quota.ops_per_sec = 800;
  options.admission.default_quota.burst_ops = 100;
  return options;
}

TEST(ClusterDriverTest, RefusesDoubleMetering) {
  core::StreamLakeOptions options = DriverLakeOptions();
  options.admission.gate_access_layer = true;
  core::StreamLake lake(options);
  workload::ClusterDriver driver(&lake, SmokeTraffic());
  ASSERT_TRUE(driver.Setup().ok());
  EXPECT_TRUE(driver.Run().status().IsInvalidArgument());
}

workload::ClusterResult RunSmoke(workload::ClusterConfig config) {
  core::StreamLake lake(DriverLakeOptions());
  workload::ClusterDriver driver(&lake, config);
  EXPECT_TRUE(driver.Setup().ok());
  auto result = driver.Run();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

TEST(ClusterDriverTest, HotTenantClippedColdTenantsKeepFairShare) {
  workload::ClusterResult result = RunSmoke(SmokeTraffic());
  EXPECT_GT(result.offered, 0u);
  EXPECT_EQ(result.offered, result.admitted + result.shed);
  EXPECT_EQ(result.failed, 0u);
  // The hot tenant actually got clipped...
  uint64_t hot_shed = 0;
  for (const auto& t : result.tenants) {
    if (t.hot) hot_shed = t.shed;
  }
  EXPECT_GT(hot_shed, 0u);
  // ...while every cold tenant kept its proportional share.
  EXPECT_GE(result.fairness_min, 0.5);
  EXPECT_EQ(result.starved_tenants, 0u);
}

TEST(ClusterDriverTest, RunsAreBitDeterministic) {
  workload::ClusterResult a = RunSmoke(SmokeTraffic());
  workload::ClusterResult b = RunSmoke(SmokeTraffic());
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.throttled, b.throttled);
  EXPECT_EQ(a.fairness_min, b.fairness_min);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].offered, b.tenants[i].offered);
    EXPECT_EQ(a.tenants[i].admitted, b.tenants[i].admitted);
    EXPECT_EQ(a.tenants[i].shed, b.tenants[i].shed);
  }
}

TEST(ClusterDriverTest, PerTenantCountersInvariantUnderThreading) {
  // Tenants present the same (time, op, cost) sequence to their own
  // buckets regardless of which thread drives them, so per-tenant
  // admission counters match between 1 and 4 driver threads (no shared
  // cluster bucket in DriverLakeOptions).
  workload::ClusterConfig config = SmokeTraffic();
  workload::ClusterResult serial = RunSmoke(config);
  config.driver_threads = 4;
  workload::ClusterResult threaded = RunSmoke(config);
  ASSERT_EQ(serial.tenants.size(), threaded.tenants.size());
  for (size_t i = 0; i < serial.tenants.size(); ++i) {
    EXPECT_EQ(serial.tenants[i].offered, threaded.tenants[i].offered);
    EXPECT_EQ(serial.tenants[i].admitted, threaded.tenants[i].admitted);
    EXPECT_EQ(serial.tenants[i].shed, threaded.tenants[i].shed);
  }
}

}  // namespace
}  // namespace streamlake
