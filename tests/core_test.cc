#include <gtest/gtest.h>

#include "core/streamlake.h"
#include "workload/dpi_log.h"

namespace streamlake::core {
namespace {

TEST(StreamLakeTest, EndToEndStreamToQueryPipeline) {
  // The whole Fig. 12 flow inside one system: produce log messages,
  // convert to a table, query with pushdown, all on one data copy.
  StreamLake lake;

  streaming::TopicConfig config;
  config.stream_num = 3;
  config.convert_2_table.enabled = true;
  config.convert_2_table.table_schema = workload::DpiLogGenerator::Schema();
  config.convert_2_table.table_path = "dpi";
  config.convert_2_table.partition_spec =
      table::PartitionSpec::Identity("province");
  config.convert_2_table.split_offset = 1;
  config.convert_2_table.delete_msg = true;
  ASSERT_TRUE(lake.dispatcher().CreateTopic("logs", config).ok());

  workload::DpiLogGenerator gen;
  auto producer = lake.NewProducer();
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(producer.Send("logs", gen.NextMessage()).ok());
  }

  auto converted = lake.converter().Run("logs");
  ASSERT_TRUE(converted.ok()) << converted.status().ToString();
  EXPECT_EQ(converted->converted_records, 300u);
  EXPECT_EQ(converted->trimmed_records, 300u);  // single copy retained

  auto table = lake.lakehouse().GetTable("dpi");
  ASSERT_TRUE(table.ok());
  query::QuerySpec dau;
  dau.where.Add(query::Predicate::Eq(
      "url", format::Value(std::string(workload::DpiLogGenerator::FinAppUrl()))));
  dau.group_by = {"province"};
  dau.aggregates = {query::AggregateSpec::CountStar("DAU")};
  auto result = (*table)->Select(dau);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->rows.size(), 0u);

  ASSERT_TRUE(lake.RunBackgroundWork().ok());
  EXPECT_GT(lake.PhysicalBytesAllocated(), 0u);
}

TEST(StreamLakeTest, ConsumerSeesLiveMessages) {
  StreamLake lake;
  streaming::TopicConfig config;
  config.stream_num = 2;
  ASSERT_TRUE(lake.dispatcher().CreateTopic("t", config).ok());
  auto producer = lake.NewProducer();
  ASSERT_TRUE(producer.Send("t", streaming::Message("k", "hello")).ok());
  auto consumer = lake.NewConsumer("g");
  ASSERT_TRUE(consumer.Subscribe("t").ok());
  auto polled = consumer.Poll();
  ASSERT_TRUE(polled.ok());
  ASSERT_EQ(polled->size(), 1u);
  EXPECT_EQ((*polled)[0].message.value, "hello");
}

TEST(StreamLakeTest, TransactionsThroughFacade) {
  StreamLake lake;
  streaming::TopicConfig config;
  config.stream_num = 1;
  ASSERT_TRUE(lake.dispatcher().CreateTopic("t", config).ok());
  auto txns = lake.NewTransactionManager();
  auto txn = txns.Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(txns.Send(*txn, "t", streaming::Message("k", "v")).ok());
  ASSERT_TRUE(txns.Commit(*txn).ok());
  auto consumer = lake.NewConsumer("g");
  ASSERT_TRUE(consumer.Subscribe("t").ok());
  EXPECT_EQ(consumer.Poll()->size(), 1u);
}

TEST(StreamLakeTest, TieringMovesColdDataToHdd) {
  StreamLakeOptions options;
  options.tiering_policy.cold_after_ns = 10 * sim::kSecond;
  options.plog.plog.capacity = 1 << 20;  // small plogs seal quickly
  StreamLake lake(options);

  streaming::TopicConfig config;
  config.stream_num = 1;
  ASSERT_TRUE(lake.dispatcher().CreateTopic("t", config).ok());
  auto producer = lake.NewProducer();
  for (int i = 0; i < 800; ++i) {
    ASSERT_TRUE(
        producer.Send("t", streaming::Message("k", std::string(2000, 'x'))).ok());
  }
  auto id = lake.dispatcher().StreamObjectId("t", 0);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(lake.stream_objects().GetObject(*id)->Flush().ok());

  EXPECT_EQ(lake.hdd_pool().AllocatedBytes(), 0u);
  lake.clock().Advance(3600 * sim::kSecond);
  ASSERT_TRUE(lake.RunBackgroundWork().ok());
  EXPECT_GT(lake.hdd_pool().AllocatedBytes(), 0u);

  // Cold data still readable end-to-end.
  auto consumer = lake.NewConsumer("g");
  ASSERT_TRUE(consumer.Subscribe("t").ok());
  auto polled = consumer.Poll(10000);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->size(), 800u);
}

TEST(StreamLakeTest, ClusterReportReflectsActivity) {
  StreamLake lake;
  streaming::TopicConfig config;
  config.stream_num = 2;
  ASSERT_TRUE(lake.dispatcher().CreateTopic("t", config).ok());
  auto producer = lake.NewProducer();
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(producer.Send("t", streaming::Message("k", "v")).ok());
  }
  ASSERT_TRUE(lake.lakehouse()
                  .CreateTable("tbl",
                               format::Schema{{"x", format::DataType::kInt64}},
                               table::PartitionSpec::None())
                  .ok());

  StreamLake::ClusterReport report = lake.Report();
  EXPECT_GT(report.ssd_capacity, 0u);
  EXPECT_GT(report.ssd_allocated, 0u);
  EXPECT_GT(report.plogs, 0u);
  EXPECT_GT(report.plog_live_bytes, 0u);
  EXPECT_EQ(report.stream_workers, 3u);
  EXPECT_EQ(report.stream_objects, 2u);
  EXPECT_EQ(report.tables, 1u);
  EXPECT_GT(report.bus_io.messages, 0u);
  std::string rendered = report.ToString();
  EXPECT_NE(rendered.find("workers: 3"), std::string::npos);
  EXPECT_NE(rendered.find("tables: 1"), std::string::npos);
}

TEST(StreamLakeTest, PmemCacheConfigurable) {
  StreamLakeOptions set2;
  set2.with_pmem_cache = true;
  StreamLake lake(set2);
  streaming::TopicConfig config;
  config.stream_num = 1;
  config.scm_cache = true;
  ASSERT_TRUE(lake.dispatcher().CreateTopic("t", config).ok());
  auto producer = lake.NewProducer();
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(producer.Send("t", streaming::Message("k", "v")).ok());
  }
  auto consumer = lake.NewConsumer("g");
  ASSERT_TRUE(consumer.Subscribe("t").ok());
  ASSERT_TRUE(consumer.Poll(1000).ok());
  EXPECT_GT(lake.stream_objects().cache()->hits() +
                lake.stream_objects().cache()->misses(),
            0u);
}

}  // namespace
}  // namespace streamlake::core
