#include <gtest/gtest.h>

#include "streaming/consumer.h"
#include "streaming/dispatcher.h"
#include "streaming/producer.h"
#include "streaming/topic_config.h"
#include "table/lakehouse.h"
#include "workload/dpi_log.h"

namespace streamlake {
namespace {

// The durable substrate survives a "crash": the PLog store, the KV index,
// and the service metadata KV. The data-service layer (stream object
// manager, dispatcher) restarts on top and recovers from them.
struct CrashFixture {
  sim::SimClock clock;
  storage::StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
  sim::NetworkModel bus{sim::NetworkProfile::Rdma(), &clock};
  kv::KvStore index;
  kv::KvStore meta;
  std::unique_ptr<storage::PlogStore> plogs;
  std::unique_ptr<stream::StreamObjectManager> objects;
  std::unique_ptr<streaming::StreamDispatcher> dispatcher;

  CrashFixture() {
    pool.AddCluster(3, 2, 256 << 20);
    storage::PlogStoreConfig config;
    config.num_shards = 8;
    config.plog.capacity = 16 << 20;
    config.plog.redundancy = storage::RedundancyConfig::Replication(3);
    plogs = std::make_unique<storage::PlogStore>(&pool, config, &clock);
    Boot();
  }

  void Boot() {
    objects = std::make_unique<stream::StreamObjectManager>(plogs.get(),
                                                            &index, &clock);
    dispatcher = std::make_unique<streaming::StreamDispatcher>(
        objects.get(), &meta, &bus, &clock, 3);
  }

  /// Kill the data service layer and restart it from durable state.
  void CrashAndRecover() {
    dispatcher.reset();
    objects.reset();
    Boot();
    auto recovered_objects = objects->RecoverAll();
    ASSERT_TRUE(recovered_objects.ok()) << recovered_objects.status().ToString();
    auto recovered_topics = dispatcher->Recover();
    ASSERT_TRUE(recovered_topics.ok()) << recovered_topics.status().ToString();
  }
};

TEST(RecoveryTest, StreamObjectSurvivesRestart) {
  CrashFixture f;
  stream::StreamObjectOptions options;
  options.records_per_slice = 16;
  auto id = f.objects->CreateObject(options);
  ASSERT_TRUE(id.ok());
  auto* object = f.objects->GetObject(*id);
  std::vector<stream::StreamRecord> batch;
  for (int i = 0; i < 100; ++i) {
    stream::StreamRecord record;
    record.key = "k";
    record.value = ToBytes("msg-" + std::to_string(i));
    batch.push_back(std::move(record));
  }
  ASSERT_TRUE(object->Append(batch).ok());
  ASSERT_TRUE(object->Flush().ok());
  uint64_t frontier_before = object->frontier();

  f.CrashAndRecover();

  auto* recovered = f.objects->GetObject(*id);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->frontier(), frontier_before);
  auto read = recovered->Read(0, 200);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(BytesToString((*read)[i].value), "msg-" + std::to_string(i));
  }
  // Appends continue where the log left off.
  stream::StreamRecord more;
  more.key = "k";
  more.value = ToBytes("after-crash");
  auto offset = recovered->Append({more});
  ASSERT_TRUE(offset.ok());
  EXPECT_EQ(*offset, frontier_before);
}

TEST(RecoveryTest, UnflushedTailIsLostButRedeliverable) {
  CrashFixture f;
  auto id = f.objects->CreateObject({});
  ASSERT_TRUE(id.ok());
  auto* object = f.objects->GetObject(*id);
  std::vector<stream::StreamRecord> batch(10);
  for (int i = 0; i < 10; ++i) {
    batch[i].key = "k";
    batch[i].value = ToBytes("v");
    batch[i].producer_id = 7;
    batch[i].producer_seq = i + 1;
  }
  ASSERT_TRUE(object->Append(batch).ok());
  // Not flushed: the 10 records sit in the worker-side slice buffer.
  f.CrashAndRecover();
  auto* recovered = f.objects->GetObject(*id);
  EXPECT_EQ(recovered->frontier(), 0u);
  // Producer retry redelivers; records land exactly once.
  ASSERT_TRUE(recovered->Append(batch).ok());
  ASSERT_TRUE(recovered->Append(batch).ok());  // second retry: duplicates
  EXPECT_EQ(recovered->frontier(), 10u);
}

TEST(RecoveryTest, TrimmedObjectRecoversTrimPoint) {
  CrashFixture f;
  stream::StreamObjectOptions options;
  options.records_per_slice = 8;
  auto id = f.objects->CreateObject(options);
  ASSERT_TRUE(id.ok());
  auto* object = f.objects->GetObject(*id);
  std::vector<stream::StreamRecord> batch(32);
  for (auto& r : batch) {
    r.key = "k";
    r.value = ToBytes("v");
  }
  ASSERT_TRUE(object->Append(batch).ok());
  ASSERT_TRUE(object->TrimTo(16).ok());

  f.CrashAndRecover();
  auto* recovered = f.objects->GetObject(*id);
  EXPECT_EQ(recovered->frontier(), 32u);
  EXPECT_EQ(recovered->trimmed_until(), 16u);
  EXPECT_TRUE(recovered->Read(0, 1).status().IsNotFound());
  auto tail = recovered->Read(16, 100);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->size(), 16u);
}

TEST(RecoveryTest, TopicConfigRoundTrip) {
  streaming::TopicConfig config;
  config.stream_num = 7;
  config.quota = 1000000;
  config.scm_cache = true;
  config.convert_2_table.enabled = true;
  config.convert_2_table.table_schema = workload::DpiLogGenerator::Schema();
  config.convert_2_table.table_path = "dpi";
  config.convert_2_table.partition_spec =
      table::PartitionSpec::Identity("province");
  config.convert_2_table.split_offset = 12345;
  config.convert_2_table.split_time_sec = 60;
  config.convert_2_table.delete_msg = true;
  config.archive.enabled = true;
  config.archive.external_archive_url = "s3://backup";
  config.archive.archive_size_mb = 99;
  config.archive.row_2_col = false;

  Bytes encoded;
  config.EncodeTo(&encoded);
  auto decoded = streaming::TopicConfig::DecodeFrom(ByteView(encoded));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->stream_num, 7u);
  EXPECT_EQ(decoded->quota, 1000000u);
  EXPECT_TRUE(decoded->scm_cache);
  EXPECT_TRUE(decoded->convert_2_table.enabled);
  EXPECT_EQ(decoded->convert_2_table.table_path, "dpi");
  EXPECT_EQ(decoded->convert_2_table.table_schema,
            workload::DpiLogGenerator::Schema());
  EXPECT_EQ(decoded->convert_2_table.partition_spec.column, "province");
  EXPECT_EQ(decoded->convert_2_table.split_offset, 12345u);
  EXPECT_TRUE(decoded->convert_2_table.delete_msg);
  EXPECT_TRUE(decoded->archive.enabled);
  EXPECT_EQ(decoded->archive.external_archive_url, "s3://backup");
  EXPECT_EQ(decoded->archive.archive_size_mb, 99u);
  EXPECT_FALSE(decoded->archive.row_2_col);
}

TEST(RecoveryTest, DispatcherRestoresTopicsAndConsumersResume) {
  CrashFixture f;
  streaming::TopicConfig config;
  config.stream_num = 4;
  ASSERT_TRUE(f.dispatcher->CreateTopic("events", config).ok());
  streaming::Producer producer(f.dispatcher.get());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        producer.Send("events", streaming::Message("k" + std::to_string(i),
                                                   "v" + std::to_string(i)))
            .ok());
  }
  // Flush every stream so the crash loses nothing.
  for (uint32_t s = 0; s < 4; ++s) {
    auto id = f.dispatcher->StreamObjectId("events", s);
    ASSERT_TRUE(f.objects->GetObject(*id)->Flush().ok());
  }
  // A consumer reads half and commits.
  streaming::Consumer consumer(f.dispatcher.get(), &f.meta, "g");
  ASSERT_TRUE(consumer.Subscribe("events").ok());
  auto first_half = consumer.Poll(100);
  ASSERT_TRUE(first_half.ok());
  EXPECT_EQ(first_half->size(), 100u);
  ASSERT_TRUE(consumer.CommitOffsets().ok());

  f.CrashAndRecover();

  EXPECT_TRUE(f.dispatcher->HasTopic("events"));
  EXPECT_EQ(*f.dispatcher->NumStreams("events"), 4u);
  // Producers and consumers pick up where they left off.
  streaming::Producer new_producer(f.dispatcher.get());
  ASSERT_TRUE(new_producer.Send("events", streaming::Message("k", "post")).ok());
  streaming::Consumer resumed(f.dispatcher.get(), &f.meta, "g");
  ASSERT_TRUE(resumed.Subscribe("events").ok());
  auto rest = resumed.Poll(1000);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest->size(), 101u);  // remaining 100 + the post-crash message
}

TEST(RecoveryTest, LakehouseSurvivesRestartViaScmWalReplay) {
  // The metadata acceleration cache lives in the SCM-resident KV engine;
  // after a crash its WAL replays and the lakehouse resumes — even for
  // metadata the MetaFresher had not flushed to files yet.
  CrashFixture f;
  storage::ObjectStore objects(f.plogs.get(), &f.index);
  kv::KvStore cache_v1;
  table::MetadataStore meta_v1(&objects, &cache_v1,
                               table::MetadataMode::kAccelerated);
  sim::NetworkModel compute(sim::NetworkProfile::Rdma(), &f.clock);
  table::LakehouseService lakehouse_v1(&meta_v1, &objects, &f.clock, &compute);

  auto created = lakehouse_v1.CreateTable(
      "t",
      format::Schema{{"x", format::DataType::kInt64}},
      table::PartitionSpec::None());
  ASSERT_TRUE(created.ok());
  for (int i = 0; i < 5; ++i) {
    format::Row row;
    row.fields = {format::Value(static_cast<int64_t>(i))};
    ASSERT_TRUE((*created)->Insert({row}).ok());
  }
  EXPECT_GT(meta_v1.pending_flushes(), 0u);  // MetaFresher hasn't run

  // Crash: the cache process dies; its WAL (on SCM) survives.
  Bytes wal = cache_v1.WalContents();
  kv::KvStore cache_v2;
  auto replayed = cache_v2.Recover(ByteView(wal));
  ASSERT_TRUE(replayed.ok());
  EXPECT_GT(*replayed, 0u);

  table::MetadataStore meta_v2(&objects, &cache_v2,
                               table::MetadataMode::kAccelerated);
  table::LakehouseService lakehouse_v2(&meta_v2, &objects, &f.clock, &compute);
  auto table = lakehouse_v2.GetTable("t");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  query::QuerySpec spec;
  spec.aggregates = {query::AggregateSpec::CountStar()};
  auto count = (*table)->Select(spec);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(std::get<int64_t>(count->rows[0].fields[0]), 5);

  // The restarted lakehouse keeps committing.
  format::Row row;
  row.fields = {format::Value(int64_t{99})};
  ASSERT_TRUE((*table)->Insert({row}).ok());
  count = (*table)->Select(spec);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(std::get<int64_t>(count->rows[0].fields[0]), 6);
}

TEST(RecoveryTest, RecoverRequiresEmptyServices) {
  CrashFixture f;
  streaming::TopicConfig config;
  config.stream_num = 1;
  ASSERT_TRUE(f.dispatcher->CreateTopic("t", config).ok());
  EXPECT_TRUE(f.objects->RecoverAll().status().IsInvalidArgument());
  EXPECT_TRUE(f.dispatcher->Recover().status().IsInvalidArgument());
}

}  // namespace
}  // namespace streamlake
