// Stress tier (ctest label `stress`, run nightly and under TSan): the
// cluster driver with 64 concurrent driver threads hammering one
// StreamLake through every admission-gated path at once. The default PR
// tier covers the logic; this tier exists to let TSan see the admission
// controller, token buckets, producers, gateways, and driver under real
// contention.

#include <gtest/gtest.h>

#include "core/streamlake.h"
#include "workload/cluster_driver.h"

namespace streamlake {
namespace {

TEST(ClusterStressTest, SixtyFourDriverThreadsStayConsistent) {
  core::StreamLakeOptions options;
  options.admission.enabled = true;
  options.admission.gate_access_layer = false;  // the driver meters itself
  options.admission.default_quota.ops_per_sec = 500;
  options.admission.default_quota.burst_ops = 64;
  core::StreamLake lake(options);

  workload::ClusterConfig config;
  config.logical_clients = 50000;
  config.tenants = 64;  // one tenant per driver thread
  config.ops_per_client_per_sec = 0.2;
  config.duration_sec = 0.5;
  config.hot_tenant = 3;
  config.hot_multiplier = 100;
  config.driver_threads = 64;
  config.seed = 11;

  workload::ClusterDriver driver(&lake, config);
  ASSERT_TRUE(driver.Setup().ok());
  auto result = driver.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Conservation: every offered op either ran or was shed, per tenant and
  // in total, no matter how the 64 threads interleaved.
  EXPECT_GT(result->offered, 0u);
  EXPECT_EQ(result->offered, result->admitted + result->shed);
  EXPECT_EQ(result->failed, 0u);
  uint64_t offered_sum = 0;
  for (const auto& t : result->tenants) {
    EXPECT_EQ(t.offered, t.admitted + t.shed) << t.tenant;
    offered_sum += t.offered;
  }
  EXPECT_EQ(offered_sum, result->offered);
  // The flood was clipped; nobody else starved.
  for (const auto& t : result->tenants) {
    if (t.hot) EXPECT_GT(t.shed, 0u);
  }
  EXPECT_EQ(result->starved_tenants, 0u);

  // The controller's own books agree with the driver's.
  uint64_t controller_offered = 0;
  for (const auto& [tenant, stats] : lake.admission()->AllStats()) {
    controller_offered += stats.offered_ops;
  }
  EXPECT_EQ(controller_offered, result->offered);
}

}  // namespace
}  // namespace streamlake
