#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/repair.h"
#include "storage/replication.h"

namespace streamlake::storage {
namespace {

struct RepairFixture {
  sim::SimClock clock;
  StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
  std::unique_ptr<PlogStore> plogs;

  explicit RepairFixture(RedundancyConfig redundancy, uint32_t nodes = 6) {
    pool.AddCluster(nodes, 2, 256 << 20);
    PlogStoreConfig config;
    config.num_shards = 4;
    config.plog.capacity = 4 << 20;
    config.plog.stripe_unit = 4096;
    config.plog.redundancy = redundancy;
    plogs = std::make_unique<PlogStore>(&pool, config, &clock);
  }
};

class RepairParam : public ::testing::TestWithParam<RedundancyConfig> {};

TEST_P(RepairParam, RebuildsAfterNodeFailureAndReplacement) {
  RepairFixture f(GetParam());
  Random rng(11);
  std::vector<std::pair<PlogAddress, Bytes>> records;
  for (int i = 0; i < 40; ++i) {
    Bytes payload;
    for (int b = 0; b < 5000; ++b) {
      payload.push_back(static_cast<uint8_t>(rng.Uniform(256)));
    }
    auto addr = f.plogs->Append(i % 4, ByteView(payload));
    ASSERT_TRUE(addr.ok());
    records.emplace_back(*addr, payload);
  }
  ASSERT_TRUE(f.plogs->FlushAll().ok());

  // Node 0 dies.
  f.pool.SetNodeFailed(0, true);
  RepairService repair(f.plogs.get());
  auto stats = repair.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->plogs_degraded, 0u);
  EXPECT_EQ(stats->plogs_repaired, stats->plogs_degraded);
  EXPECT_EQ(stats->plogs_unrecoverable, 0u);

  // Full redundancy restored: even a SECOND node loss is survivable for
  // FT >= 1 schemes (repair moved the lost copies to healthy nodes).
  if (GetParam().FaultTolerance() >= 1) {
    f.pool.SetNodeFailed(1, true);
    for (const auto& [addr, payload] : records) {
      auto read = f.plogs->Read(addr);
      ASSERT_TRUE(read.ok()) << read.status().ToString();
      EXPECT_EQ(*read, payload);
    }
    f.pool.SetNodeFailed(1, false);
  }

  // A second repair pass finds nothing degraded.
  auto again = repair.Run();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->plogs_degraded, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, RepairParam,
    ::testing::Values(RedundancyConfig::Replication(3),
                      RedundancyConfig::ErasureCoding(4, 2)));

TEST(RepairTest, UnrecoverableBeyondFaultTolerance) {
  RepairFixture f(RedundancyConfig::Replication(2), /*nodes=*/4);
  auto addr = f.plogs->Append(0, ByteView("fragile"));
  ASSERT_TRUE(addr.ok());
  // Find the two nodes holding the replicas and fail both.
  std::set<uint32_t> nodes;
  f.plogs->ForEachPlog([&](uint32_t, uint32_t, Plog*) {
    // Repair needs to see both extents failed; fail every node to be sure.
  });
  for (uint32_t n = 0; n < 4; ++n) f.pool.SetNodeFailed(n, true);
  RepairService repair(f.plogs.get());
  auto stats = repair.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->plogs_unrecoverable, 0u);
  EXPECT_EQ(stats->plogs_repaired, 0u);
}

struct ReplicationFixture {
  sim::SimClock clock;
  StoragePool primary_pool{"site-a", sim::MediaType::kNvmeSsd, &clock};
  StoragePool remote_pool{"site-b", sim::MediaType::kNvmeSsd, &clock};
  sim::NetworkModel wan{sim::NetworkProfile::Tcp(), &clock};
  kv::KvStore primary_index;
  kv::KvStore remote_index;
  kv::KvStore state;
  std::unique_ptr<PlogStore> primary_plogs;
  std::unique_ptr<PlogStore> remote_plogs;
  std::unique_ptr<ObjectStore> primary;
  std::unique_ptr<ObjectStore> remote;
  std::unique_ptr<RemoteReplicationService> service;

  ReplicationFixture() {
    primary_pool.AddCluster(3, 1, 256 << 20);
    remote_pool.AddCluster(3, 1, 256 << 20);
    PlogStoreConfig config;
    config.num_shards = 4;
    config.plog.capacity = 16 << 20;
    config.plog.redundancy = RedundancyConfig::Replication(3);
    primary_plogs = std::make_unique<PlogStore>(&primary_pool, config, &clock);
    remote_plogs = std::make_unique<PlogStore>(&remote_pool, config, &clock);
    primary = std::make_unique<ObjectStore>(primary_plogs.get(),
                                            &primary_index);
    remote = std::make_unique<ObjectStore>(remote_plogs.get(), &remote_index);
    service = std::make_unique<RemoteReplicationService>(
        primary.get(), remote.get(), &wan, &state);
  }
};

TEST(ReplicationTest, IncrementalMirrorAndPrune) {
  ReplicationFixture f;
  ASSERT_TRUE(f.primary->Write("/t/a", ByteView("alpha")).ok());
  ASSERT_TRUE(f.primary->Write("/t/b", ByteView("beta")).ok());

  auto first = f.service->Replicate("/t/");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->objects_shipped, 2u);
  EXPECT_EQ(BytesToString(*f.remote->Read("/t/a")), "alpha");

  // Second cycle with no changes ships nothing.
  auto second = f.service->Replicate("/t/");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->objects_shipped, 0u);
  EXPECT_EQ(second->objects_unchanged, 2u);

  // Change one, delete the other: incremental ship + prune.
  ASSERT_TRUE(f.primary->Write("/t/a", ByteView("alpha-v2")).ok());
  ASSERT_TRUE(f.primary->Delete("/t/b").ok());
  auto third = f.service->Replicate("/t/");
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->objects_shipped, 1u);
  EXPECT_EQ(third->objects_pruned, 1u);
  EXPECT_EQ(BytesToString(*f.remote->Read("/t/a")), "alpha-v2");
  EXPECT_TRUE(f.remote->Read("/t/b").status().IsNotFound());
}

TEST(ReplicationTest, DisasterRecoveryRestoresObject) {
  ReplicationFixture f;
  ASSERT_TRUE(f.primary->Write("/t/critical", ByteView("payload")).ok());
  ASSERT_TRUE(f.service->Replicate("/t/").ok());

  // Primary loses the object (e.g. operator error).
  ASSERT_TRUE(f.primary->Delete("/t/critical").ok());
  ASSERT_TRUE(f.service->RestoreObject("/t/critical").ok());
  EXPECT_EQ(BytesToString(*f.primary->Read("/t/critical")), "payload");

  EXPECT_TRUE(f.service->RestoreObject("/t/never").IsNotFound());
}

TEST(ReplicationTest, WanTrafficOnlyForChangedBytes) {
  ReplicationFixture f;
  Bytes big(1 << 20, 'z');
  ASSERT_TRUE(f.primary->Write("/t/big", ByteView(big)).ok());
  ASSERT_TRUE(f.service->Replicate("/t/").ok());
  uint64_t after_first = f.wan.stats().bytes;
  EXPECT_GE(after_first, big.size());
  // No changes: no WAN bytes.
  ASSERT_TRUE(f.service->Replicate("/t/").ok());
  EXPECT_EQ(f.wan.stats().bytes, after_first);
}

}  // namespace
}  // namespace streamlake::storage
