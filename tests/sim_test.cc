#include <gtest/gtest.h>

#include "sim/clock.h"
#include "sim/device_model.h"
#include "sim/network_model.h"

namespace streamlake::sim {
namespace {

TEST(SimClockTest, AdvanceAccumulates) {
  SimClock clock;
  EXPECT_EQ(clock.NowNanos(), 0u);
  clock.Advance(100);
  clock.Advance(50);
  EXPECT_EQ(clock.NowNanos(), 150u);
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 150e-9);
}

TEST(SimClockTest, AdvanceToNeverGoesBack) {
  SimClock clock;
  clock.AdvanceTo(1000);
  EXPECT_EQ(clock.NowNanos(), 1000u);
  clock.AdvanceTo(500);
  EXPECT_EQ(clock.NowNanos(), 1000u);
  clock.Reset();
  EXPECT_EQ(clock.NowNanos(), 0u);
}

TEST(DeviceModelTest, SsdFasterThanHddSlowerThanPmem) {
  SimClock clock;
  DeviceModel ssd(DeviceProfile::NvmeSsd(), &clock);
  DeviceModel hdd(DeviceProfile::SasHdd(), &clock);
  DeviceModel pmem(DeviceProfile::Pmem(), &clock);
  constexpr uint64_t kBytes = 4096;
  EXPECT_LT(pmem.ReadCostNanos(kBytes), ssd.ReadCostNanos(kBytes));
  EXPECT_LT(ssd.ReadCostNanos(kBytes), hdd.ReadCostNanos(kBytes));
}

TEST(DeviceModelTest, CostScalesWithSize) {
  SimClock clock;
  DeviceModel ssd(DeviceProfile::NvmeSsd(), &clock);
  // Doubling a large transfer roughly doubles the bandwidth term.
  uint64_t c1 = ssd.ReadCostNanos(100 << 20);
  uint64_t c2 = ssd.ReadCostNanos(200 << 20);
  EXPECT_GT(c2, c1 * 3 / 2);
  EXPECT_LT(c2, c1 * 5 / 2);
}

TEST(DeviceModelTest, ChargeAdvancesClockAndCounts) {
  SimClock clock;
  DeviceModel ssd(DeviceProfile::NvmeSsd(), &clock);
  uint64_t cost = ssd.ChargeWrite(8192);
  EXPECT_EQ(clock.NowNanos(), cost);
  ssd.ChargeRead(1024);
  DeviceStats stats = ssd.stats();
  EXPECT_EQ(stats.write_ops, 1u);
  EXPECT_EQ(stats.read_ops, 1u);
  EXPECT_EQ(stats.bytes_written, 8192u);
  EXPECT_EQ(stats.bytes_read, 1024u);
  EXPECT_EQ(stats.busy_ns, clock.NowNanos());
  ssd.ResetStats();
  EXPECT_EQ(ssd.stats().read_ops, 0u);
}

TEST(NetworkModelTest, RdmaCheaperPerMessageThanTcp) {
  SimClock clock;
  NetworkModel rdma(NetworkProfile::Rdma(), &clock);
  NetworkModel tcp(NetworkProfile::Tcp(), &clock);
  // Small messages are dominated by per-message overhead: RDMA wins big.
  EXPECT_LT(rdma.TransferCostNanos(1024) * 5, tcp.TransferCostNanos(1024));
  // Huge transfers converge: both are bandwidth-bound on the same wire.
  uint64_t big = 1ULL << 30;
  double ratio = static_cast<double>(tcp.TransferCostNanos(big)) /
                 static_cast<double>(rdma.TransferCostNanos(big));
  EXPECT_LT(ratio, 1.01);
}

TEST(NetworkModelTest, ChargeAccumulatesStats) {
  SimClock clock;
  NetworkModel net(NetworkProfile::Rdma(), &clock);
  net.ChargeTransfer(1000);
  net.ChargeTransfer(2000);
  NetworkStats stats = net.stats();
  EXPECT_EQ(stats.messages, 2u);
  EXPECT_EQ(stats.bytes, 3000u);
  EXPECT_EQ(stats.busy_ns, clock.NowNanos());
}

TEST(NetworkModelTest, ProfileFactories) {
  EXPECT_EQ(NetworkProfile::ForTransport(TransportType::kRdma).name, "rdma");
  EXPECT_EQ(NetworkProfile::ForTransport(TransportType::kTcp).name, "tcp");
  EXPECT_EQ(NetworkProfile::ForTransport(TransportType::kLocal).name, "local");
  EXPECT_EQ(DeviceProfile::ForMedia(MediaType::kSasHdd).name, "sas_hdd");
  EXPECT_EQ(DeviceProfile::ForMedia(MediaType::kDram).name, "dram");
}

TEST(SimIntegrationTest, IoAggregationAmortizesPerOpCost) {
  // The stream path's I/O aggregation claim: N small writes cost more than
  // one aggregated write of the same total size.
  SimClock clock;
  DeviceModel ssd(DeviceProfile::NvmeSsd(), &clock);
  uint64_t small_total = 0;
  for (int i = 0; i < 64; ++i) small_total += ssd.WriteCostNanos(1024);
  uint64_t aggregated = ssd.WriteCostNanos(64 * 1024);
  EXPECT_GT(small_total, 10 * aggregated);
}

}  // namespace
}  // namespace streamlake::sim
