// Read-path stress: concurrent fan-out Selects race Insert commits,
// compaction, and block-cache invalidation on one table. Designed for
// the TSan preset (cmake --preset tsan); carries the `stress` ctest
// label. A deliberately tiny cache keeps eviction churning under the
// same contention. Also asserts the lock-order graph observed under
// scan-pool + commit + invalidation traffic stays acyclic.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/threadpool.h"
#include "table/block_cache.h"
#include "table/lakehouse.h"

namespace streamlake::table {
namespace {

format::Schema DpiSchema() {
  return format::Schema{{"url", format::DataType::kString},
                        {"start_time", format::DataType::kInt64},
                        {"province", format::DataType::kString},
                        {"bytes", format::DataType::kInt64}};
}

TEST(ScanStressTest, ConcurrentSelectsRaceCommitsAndCompaction) {
  sim::SimClock clock;
  storage::StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
  pool.AddCluster(3, 2, 512 << 20);
  sim::NetworkModel compute_link{sim::NetworkProfile::Rdma(), &clock};
  kv::KvStore object_index;
  kv::KvStore meta_cache;
  storage::PlogStoreConfig config;
  config.num_shards = 16;
  config.plog.capacity = 32 << 20;
  config.plog.stripe_unit = 4096;
  config.plog.redundancy = storage::RedundancyConfig::Replication(3);
  storage::PlogStore plogs(&pool, config, &clock);
  storage::ObjectStore objects(&plogs, &object_index);
  MetadataStore meta(&objects, &meta_cache, MetadataMode::kAccelerated);
  ThreadPool scan_pool(4, "stress.scan");
  // Small enough that the working set does not fit: readers race
  // eviction as well as invalidation.
  DecodedBlockCache cache(64 << 10);
  TableOptions options;
  options.max_rows_per_file = 32;
  options.file_options.rows_per_group = 16;
  LakehouseService lakehouse(&meta, &objects, &clock, &compute_link, options,
                             &scan_pool, &cache);
  auto created = lakehouse.CreateTable("dpi", DpiSchema(),
                                       PartitionSpec::Identity("province"));
  ASSERT_TRUE(created.ok());
  Table* table = *created;

  constexpr int kInitialRows = 96;
  constexpr int kWriterBatches = 20;
  constexpr int kRowsPerBatch = 32;
  auto make_rows = [](int base, int count) {
    std::vector<format::Row> rows;
    rows.reserve(count);
    for (int i = 0; i < count; ++i) {
      format::Row row;
      row.fields = {format::Value("http://a/" + std::to_string(base + i)),
                    format::Value(int64_t{base + i}),
                    format::Value(std::string((base + i) % 2 ? "beijing"
                                                             : "hubei")),
                    format::Value(int64_t{64})};
      rows.push_back(std::move(row));
    }
    return rows;
  };
  ASSERT_TRUE(table->Insert(make_rows(0, kInitialRows)).ok());

  query::QuerySpec spec;
  spec.aggregates = {query::AggregateSpec::CountStar("c")};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};

  // Readers: COUNT(*) must always succeed and always land between the
  // initial and final row counts — every Select sees some committed
  // snapshot, never a torn one, even while the cache churns.
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto result = table->Select(spec);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        int64_t count = std::get<int64_t>(result->rows[0].fields[0]);
        EXPECT_GE(count, kInitialRows);
        EXPECT_LE(count, kInitialRows + kWriterBatches * kRowsPerBatch);
        EXPECT_EQ(count % kRowsPerBatch, 0);
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: append batches, occasionally compacting a partition.
  // Compaction may hit Conflict against its own later inserts under an
  // unlucky interleave — tolerated; Selects must still never fail.
  std::thread writer([&] {
    for (int b = 0; b < kWriterBatches; ++b) {
      ASSERT_TRUE(
          table->Insert(make_rows(kInitialRows + b * kRowsPerBatch,
                                  kRowsPerBatch))
              .ok());
      if (b % 5 == 4) {
        auto compacted =
            table->CompactPartition(b % 2 ? "beijing" : "hubei");
        if (!compacted.ok()) {
          EXPECT_TRUE(compacted.status().IsConflict())
              << compacted.status().ToString();
        }
      }
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_release);
  });

  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_GT(queries.load(), 0u);

  // Final count reflects every batch.
  auto final_count = table->Select(spec);
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(std::get<int64_t>(final_count->rows[0].fields[0]),
            kInitialRows + kWriterBatches * kRowsPerBatch);

  DecodedBlockCache::Stats stats = cache.GetStats();
  EXPECT_LE(stats.bytes_cached, 64u << 10);

#if SL_LOCK_ORDER_CHECK
  std::string cycle;
  EXPECT_TRUE(lock_order::GraphIsAcyclic(&cycle)) << cycle;
#endif
}

}  // namespace
}  // namespace streamlake::table
