#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "storage/erasure_coding.h"
#include "storage/gf256.h"
#include "storage/object_store.h"
#include "storage/plog_store.h"
#include "storage/tiering.h"

namespace streamlake::storage {
namespace {

// ---------------- GF(2^8) ----------------

TEST(Gf256Test, FieldAxioms) {
  Random rng(1);
  for (int i = 0; i < 2000; ++i) {
    uint8_t a = static_cast<uint8_t>(rng.Uniform(256));
    uint8_t b = static_cast<uint8_t>(rng.Uniform(256));
    uint8_t c = static_cast<uint8_t>(rng.Uniform(256));
    EXPECT_EQ(Gf256::Mul(a, b), Gf256::Mul(b, a));
    EXPECT_EQ(Gf256::Mul(a, Gf256::Mul(b, c)), Gf256::Mul(Gf256::Mul(a, b), c));
    EXPECT_EQ(Gf256::Mul(a, Gf256::Add(b, c)),
              Gf256::Add(Gf256::Mul(a, b), Gf256::Mul(a, c)));
    EXPECT_EQ(Gf256::Mul(a, 1), a);
    EXPECT_EQ(Gf256::Mul(a, 0), 0);
  }
}

TEST(Gf256Test, InverseIsExact) {
  for (int v = 1; v < 256; ++v) {
    uint8_t b = static_cast<uint8_t>(v);
    EXPECT_EQ(Gf256::Mul(b, Gf256::Inv(b)), 1) << v;
    EXPECT_EQ(Gf256::Div(b, b), 1) << v;
  }
}

TEST(Gf256Test, PowMatchesRepeatedMul) {
  for (uint8_t a : {2, 3, 7, 255}) {
    uint8_t acc = 1;
    for (unsigned n = 0; n < 20; ++n) {
      EXPECT_EQ(Gf256::Pow(a, n), acc);
      acc = Gf256::Mul(acc, a);
    }
  }
}

TEST(MatrixTest, InvertIdentityAndSingular) {
  std::vector<std::vector<uint8_t>> identity = {{1, 0}, {0, 1}};
  auto inv = InvertMatrix(identity);
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(*inv, identity);

  std::vector<std::vector<uint8_t>> singular = {{1, 1}, {1, 1}};
  EXPECT_FALSE(InvertMatrix(singular).ok());
}

// ---------------- Reed-Solomon ----------------

TEST(ReedSolomonTest, RoundTripNoLoss) {
  ReedSolomon rs(4, 2);
  Bytes payload = ToBytes("the quick brown fox jumps over the lazy dog");
  std::vector<Bytes> shards = rs.Encode(ByteView(payload));
  ASSERT_EQ(shards.size(), 6u);
  std::vector<std::optional<Bytes>> in(shards.begin(), shards.end());
  auto decoded = rs.Decode(in, payload.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, payload);
}

TEST(ReedSolomonTest, RecoversFromAnyTwoLosses) {
  ReedSolomon rs(4, 2);
  Random rng(2);
  Bytes payload;
  for (int i = 0; i < 1000; ++i) {
    payload.push_back(static_cast<uint8_t>(rng.Uniform(256)));
  }
  std::vector<Bytes> shards = rs.Encode(ByteView(payload));
  // Try every pair of lost shards.
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) {
      std::vector<std::optional<Bytes>> in(shards.begin(), shards.end());
      in[a] = std::nullopt;
      in[b] = std::nullopt;
      auto decoded = rs.Decode(in, payload.size());
      ASSERT_TRUE(decoded.ok()) << "lost " << a << "," << b;
      EXPECT_EQ(*decoded, payload) << "lost " << a << "," << b;
    }
  }
}

TEST(ReedSolomonTest, FailsBeyondParity) {
  ReedSolomon rs(4, 1);
  Bytes payload = ToBytes("data");
  std::vector<Bytes> shards = rs.Encode(ByteView(payload));
  std::vector<std::optional<Bytes>> in(shards.begin(), shards.end());
  in[0] = std::nullopt;
  in[1] = std::nullopt;  // two losses, one parity
  EXPECT_TRUE(rs.Decode(in, payload.size()).status().IsCorruption());
}

TEST(ReedSolomonTest, EmptyPayload) {
  ReedSolomon rs(3, 2);
  Bytes payload;
  std::vector<Bytes> shards = rs.Encode(ByteView(payload));
  std::vector<std::optional<Bytes>> in(shards.begin(), shards.end());
  in[0] = std::nullopt;
  auto decoded = rs.Decode(in, 0);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

class ReedSolomonParam
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ReedSolomonParam, RandomLossPatternsRoundTrip) {
  auto [k, m] = GetParam();
  ReedSolomon rs(k, m);
  Random rng(3 + k * 31 + m);
  for (int trial = 0; trial < 10; ++trial) {
    Bytes payload;
    size_t n = 1 + rng.Uniform(5000);
    for (size_t i = 0; i < n; ++i) {
      payload.push_back(static_cast<uint8_t>(rng.Uniform(256)));
    }
    std::vector<Bytes> shards = rs.Encode(ByteView(payload));
    std::vector<std::optional<Bytes>> in(shards.begin(), shards.end());
    // Lose exactly m random shards.
    int lost = 0;
    while (lost < m) {
      size_t idx = rng.Uniform(k + m);
      if (in[idx].has_value()) {
        in[idx] = std::nullopt;
        ++lost;
      }
    }
    auto decoded = rs.Decode(in, payload.size());
    ASSERT_TRUE(decoded.ok()) << "k=" << k << " m=" << m;
    EXPECT_EQ(*decoded, payload);
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, ReedSolomonParam,
                         ::testing::Values(std::make_pair(2, 1),
                                           std::make_pair(4, 2),
                                           std::make_pair(6, 3),
                                           std::make_pair(10, 4)));

// ---------------- BlockDevice / StoragePool ----------------

struct PoolFixture {
  sim::SimClock clock;
  StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
};

TEST(BlockDeviceTest, WriteReadAndFailure) {
  sim::SimClock clock;
  BlockDevice dev(0, 0, 1 << 20, sim::MediaType::kNvmeSsd, &clock);
  Bytes data = ToBytes("hello disk");
  ASSERT_TRUE(dev.Write(100, ByteView(data)).ok());
  auto read = dev.Read(100, data.size());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);

  EXPECT_TRUE(dev.Read(1 << 20, 1).status().IsInvalidArgument());
  EXPECT_TRUE(dev.Write((1 << 20) - 2, ByteView(data))
                  .IsResourceExhausted());

  dev.SetFailed(true);
  EXPECT_TRUE(dev.Read(100, 4).status().IsIOError());
  EXPECT_TRUE(dev.Write(0, ByteView(data)).IsIOError());
  dev.SetFailed(false);
  EXPECT_TRUE(dev.Read(100, 4).ok());
}

TEST(StoragePoolTest, DistinctNodePlacement) {
  PoolFixture f;
  f.pool.AddCluster(/*nodes=*/3, /*disks_per_node=*/2, 1 << 20);
  auto extents = f.pool.AllocateExtents(3, 1024, /*distinct_nodes=*/true);
  ASSERT_TRUE(extents.ok());
  std::set<uint32_t> nodes;
  for (const Extent& e : *extents) nodes.insert(e.device->node_id());
  EXPECT_EQ(nodes.size(), 3u);

  // 4 distinct nodes is impossible with 3 nodes.
  EXPECT_TRUE(f.pool.AllocateExtents(4, 1024, true).status()
                  .IsResourceExhausted());
  // ...but fine when only distinct disks are required.
  EXPECT_TRUE(f.pool.AllocateExtents(4, 1024, false).ok());
}

TEST(StoragePoolTest, FreeAndReuse) {
  PoolFixture f;
  f.pool.AddDevice(0, 4096);
  auto a = f.pool.AllocateExtents(1, 4096, false);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(f.pool.AllocatedBytes(), 4096u);
  // Full: next allocation fails.
  EXPECT_FALSE(f.pool.AllocateExtents(1, 4096, false).ok());
  f.pool.FreeExtent((*a)[0]);
  EXPECT_EQ(f.pool.AllocatedBytes(), 0u);
  EXPECT_TRUE(f.pool.AllocateExtents(1, 4096, false).ok());
}

TEST(StoragePoolTest, RoundRobinSpreadsLoad) {
  PoolFixture f;
  f.pool.AddCluster(4, 1, 1 << 20);
  std::map<uint32_t, int> per_device;
  for (int i = 0; i < 40; ++i) {
    auto e = f.pool.AllocateExtents(1, 1024, false);
    ASSERT_TRUE(e.ok());
    per_device[(*e)[0].device->id()]++;
  }
  for (const auto& [id, count] : per_device) EXPECT_EQ(count, 10);
}

// ---------------- Plog ----------------

PlogConfig SmallPlogConfig(RedundancyConfig redundancy,
                           uint64_t capacity = 1 << 20) {
  PlogConfig config;
  config.capacity = capacity;
  config.stripe_unit = 1024;
  config.redundancy = redundancy;
  return config;
}

TEST(PlogTest, ReplicationAppendRead) {
  PoolFixture f;
  f.pool.AddCluster(3, 1, 8 << 20);
  auto plog = Plog::Create(&f.pool, SmallPlogConfig(
      RedundancyConfig::Replication(3)));
  ASSERT_TRUE(plog.ok());
  auto off1 = (*plog)->Append(ByteView("first record"));
  auto off2 = (*plog)->Append(ByteView("second record"));
  ASSERT_TRUE(off1.ok() && off2.ok());
  EXPECT_EQ(*off1, 0u);
  EXPECT_GT(*off2, *off1);
  EXPECT_EQ((*plog)->record_count(), 2u);

  auto r1 = (*plog)->ReadRecord(*off1);
  auto r2 = (*plog)->ReadRecord(*off2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(BytesToString(*r1), "first record");
  EXPECT_EQ(BytesToString(*r2), "second record");
}

TEST(PlogTest, ReplicationSurvivesNodeFailures) {
  PoolFixture f;
  f.pool.AddCluster(3, 1, 8 << 20);
  auto plog = Plog::Create(&f.pool, SmallPlogConfig(
      RedundancyConfig::Replication(3)));
  ASSERT_TRUE(plog.ok());
  auto off = (*plog)->Append(ByteView("replicated"));
  ASSERT_TRUE(off.ok());

  // Fail 2 of 3 nodes: replication FT = 2.
  f.pool.SetNodeFailed(0, true);
  f.pool.SetNodeFailed(1, true);
  auto read = (*plog)->ReadRecord(*off);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(BytesToString(*read), "replicated");

  f.pool.SetNodeFailed(2, true);
  EXPECT_TRUE((*plog)->ReadRecord(*off).status().IsIOError());
}

TEST(PlogTest, ReplicationWriteAmplification) {
  PoolFixture f;
  f.pool.AddCluster(3, 1, 8 << 20);
  auto plog = Plog::Create(&f.pool, SmallPlogConfig(
      RedundancyConfig::Replication(3)));
  ASSERT_TRUE(plog.ok());
  Bytes payload(10000, 'x');
  ASSERT_TRUE((*plog)->Append(ByteView(payload)).ok());
  sim::DeviceStats stats = f.pool.AggregateStats();
  // 3 copies of (payload + 8-byte header).
  EXPECT_EQ(stats.bytes_written, 3u * (10000 + 8));
}

TEST(PlogTest, EcAppendReadAcrossStripes) {
  PoolFixture f;
  f.pool.AddCluster(6, 1, 8 << 20);
  auto plog = Plog::Create(&f.pool, SmallPlogConfig(
      RedundancyConfig::ErasureCoding(4, 2)));
  ASSERT_TRUE(plog.ok());
  // Stripe data size = 4 KiB; write records big enough to span stripes.
  Random rng(4);
  std::vector<std::pair<uint64_t, Bytes>> records;
  for (int i = 0; i < 20; ++i) {
    Bytes payload;
    size_t n = 100 + rng.Uniform(3000);
    for (size_t b = 0; b < n; ++b) {
      payload.push_back(static_cast<uint8_t>(rng.Uniform(256)));
    }
    auto off = (*plog)->Append(ByteView(payload));
    ASSERT_TRUE(off.ok());
    records.emplace_back(*off, payload);
  }
  for (const auto& [off, payload] : records) {
    auto read = (*plog)->ReadRecord(off);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_EQ(*read, payload);
  }
}

TEST(PlogTest, EcWriteAmplificationIsKPlusMOverK) {
  PoolFixture f;
  f.pool.AddCluster(6, 1, 8 << 20);
  auto plog = Plog::Create(&f.pool, SmallPlogConfig(
      RedundancyConfig::ErasureCoding(4, 2)));
  ASSERT_TRUE(plog.ok());
  Bytes payload(64 * 1024, 'x');
  ASSERT_TRUE((*plog)->Append(ByteView(payload)).ok());
  ASSERT_TRUE((*plog)->Flush().ok());
  sim::DeviceStats stats = f.pool.AggregateStats();
  double amplification =
      static_cast<double>(stats.bytes_written) / payload.size();
  EXPECT_NEAR(amplification, 1.5, 0.1);  // (4+2)/4
}

TEST(PlogTest, EcReconstructsAfterParityManyFailures) {
  PoolFixture f;
  f.pool.AddCluster(6, 1, 8 << 20);
  auto plog = Plog::Create(&f.pool, SmallPlogConfig(
      RedundancyConfig::ErasureCoding(4, 2)));
  ASSERT_TRUE(plog.ok());
  Random rng(5);
  Bytes payload;
  for (int i = 0; i < 10000; ++i) {
    payload.push_back(static_cast<uint8_t>(rng.Uniform(256)));
  }
  auto off = (*plog)->Append(ByteView(payload));
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE((*plog)->Flush().ok());

  f.pool.SetNodeFailed(0, true);
  f.pool.SetNodeFailed(3, true);  // two failures, m=2
  auto read = (*plog)->ReadRecord(*off);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, payload);

  f.pool.SetNodeFailed(1, true);  // third failure exceeds parity
  EXPECT_FALSE((*plog)->ReadRecord(*off).ok());
}

TEST(PlogTest, FlushPadsToStripeBoundary) {
  PoolFixture f;
  f.pool.AddCluster(6, 1, 8 << 20);
  auto plog = Plog::Create(&f.pool, SmallPlogConfig(
      RedundancyConfig::ErasureCoding(4, 2)));
  ASSERT_TRUE(plog.ok());
  auto off1 = (*plog)->Append(ByteView("tiny"));
  ASSERT_TRUE(off1.ok());
  ASSERT_TRUE((*plog)->Flush().ok());
  // Frontier advanced to the 4 KiB stripe boundary.
  EXPECT_EQ((*plog)->size(), 4096u);
  auto off2 = (*plog)->Append(ByteView("after flush"));
  ASSERT_TRUE(off2.ok());
  EXPECT_EQ(*off2, 4096u);
  EXPECT_EQ(BytesToString(*(*plog)->ReadRecord(*off1)), "tiny");
  EXPECT_EQ(BytesToString(*(*plog)->ReadRecord(*off2)), "after flush");
}

TEST(PlogTest, CapacityEnforcedAndSealRejectsAppends) {
  PoolFixture f;
  f.pool.AddCluster(3, 1, 8 << 20);
  auto plog = Plog::Create(&f.pool, SmallPlogConfig(
      RedundancyConfig::Replication(3), /*capacity=*/1024));
  ASSERT_TRUE(plog.ok());
  Bytes big(2000, 'x');
  EXPECT_TRUE((*plog)->Append(ByteView(big)).status().IsResourceExhausted());
  ASSERT_TRUE((*plog)->Append(ByteView("fits")).ok());
  ASSERT_TRUE((*plog)->Seal().ok());
  EXPECT_TRUE((*plog)->sealed());
  EXPECT_TRUE((*plog)->Append(ByteView("nope")).status().IsInvalidArgument());
}

TEST(PlogTest, MigratePreservesOffsets) {
  sim::SimClock clock;
  StoragePool ssd("ssd", sim::MediaType::kNvmeSsd, &clock);
  StoragePool hdd("hdd", sim::MediaType::kSasHdd, &clock);
  ssd.AddCluster(3, 1, 8 << 20);
  hdd.AddCluster(3, 1, 64 << 20);

  for (auto redundancy : {RedundancyConfig::Replication(3),
                          RedundancyConfig::ErasureCoding(2, 1)}) {
    auto plog = Plog::Create(&ssd, SmallPlogConfig(redundancy));
    ASSERT_TRUE(plog.ok());
    std::vector<std::pair<uint64_t, std::string>> records;
    for (int i = 0; i < 10; ++i) {
      std::string payload = "record-" + std::to_string(i);
      auto off = (*plog)->Append(ByteView(payload));
      ASSERT_TRUE(off.ok());
      records.emplace_back(*off, payload);
    }
    ASSERT_TRUE((*plog)->Seal().ok());
    uint64_t ssd_allocated = ssd.AllocatedBytes();
    ASSERT_TRUE((*plog)->MigrateTo(&hdd).ok());
    EXPECT_LT(ssd.AllocatedBytes(), ssd_allocated);  // extents freed
    EXPECT_EQ((*plog)->pool(), &hdd);
    for (const auto& [off, payload] : records) {
      auto read = (*plog)->ReadRecord(off);
      ASSERT_TRUE(read.ok());
      EXPECT_EQ(BytesToString(*read), payload);
    }
    ASSERT_TRUE((*plog)->Free().ok());
  }
}

// Property: random appends/reads interleaved with random single-node
// failures and recoveries never corrupt data (within fault tolerance).
TEST(PlogProperty, RandomFaultInjectionNeverCorrupts) {
  for (auto redundancy : {RedundancyConfig::Replication(3),
                          RedundancyConfig::ErasureCoding(4, 2)}) {
    sim::SimClock clock;
    StoragePool pool("ssd", sim::MediaType::kNvmeSsd, &clock);
    pool.AddCluster(6, 1, 64 << 20);
    auto plog = Plog::Create(&pool, SmallPlogConfig(redundancy, 8 << 20));
    ASSERT_TRUE(plog.ok());
    Random rng(555);
    std::vector<std::pair<uint64_t, Bytes>> records;
    int failed_node = -1;
    for (int step = 0; step < 300; ++step) {
      switch (rng.Uniform(4)) {
        case 0: {  // append (only when all nodes healthy, like a writer
                   // waiting out degraded mode)
          if (failed_node >= 0) break;
          Bytes payload;
          size_t n = 1 + rng.Uniform(2000);
          for (size_t i = 0; i < n; ++i) {
            payload.push_back(static_cast<uint8_t>(rng.Uniform(256)));
          }
          auto offset = (*plog)->Append(ByteView(payload));
          ASSERT_TRUE(offset.ok()) << offset.status().ToString();
          records.emplace_back(*offset, std::move(payload));
          break;
        }
        case 1: {  // fail one node (at most one at a time; FT >= 1)
          if (failed_node < 0) {
            failed_node = static_cast<int>(rng.Uniform(6));
            pool.SetNodeFailed(failed_node, true);
          }
          break;
        }
        case 2: {  // recover
          if (failed_node >= 0) {
            pool.SetNodeFailed(failed_node, false);
            failed_node = -1;
          }
          break;
        }
        case 3: {  // read a random record; must always be intact
          if (records.empty()) break;
          const auto& [offset, payload] =
              records[rng.Uniform(records.size())];
          auto read = (*plog)->ReadRecord(offset);
          ASSERT_TRUE(read.ok()) << read.status().ToString();
          EXPECT_EQ(*read, payload);
          break;
        }
      }
    }
  }
}

// ---------------- PlogStore ----------------

TEST(PlogStoreTest, AppendReadAndRollover) {
  PoolFixture f;
  f.pool.AddCluster(3, 2, 16 << 20);
  PlogStoreConfig config;
  config.num_shards = 4;
  config.plog = SmallPlogConfig(RedundancyConfig::Replication(3),
                                /*capacity=*/4096);
  PlogStore store(&f.pool, config, &f.clock);

  std::vector<std::pair<PlogAddress, std::string>> records;
  for (int i = 0; i < 200; ++i) {
    std::string payload(200, static_cast<char>('a' + i % 26));
    auto addr = store.Append(i % 4, ByteView(payload));
    ASSERT_TRUE(addr.ok()) << addr.status().ToString();
    records.emplace_back(*addr, payload);
  }
  // 50 records/shard * 208B >> 4096B per plog: rollover must have happened.
  EXPECT_GT(store.TotalPlogs(), 4u);
  for (const auto& [addr, payload] : records) {
    auto read = store.Read(addr);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(BytesToString(*read), payload);
  }
}

TEST(PlogStoreTest, KeyRoutingIsDeterministicAndSpread) {
  PoolFixture f;
  f.pool.AddCluster(3, 1, 16 << 20);
  PlogStoreConfig config;
  config.num_shards = 16;
  config.plog = SmallPlogConfig(RedundancyConfig::Replication(3));
  PlogStore store(&f.pool, config, &f.clock);
  std::set<uint32_t> shards;
  for (int i = 0; i < 200; ++i) {
    std::string key = "topic/" + std::to_string(i);
    uint32_t s = store.ShardOf(ByteView(key));
    EXPECT_EQ(s, store.ShardOf(ByteView(key)));
    shards.insert(s);
  }
  EXPECT_GT(shards.size(), 12u);  // most of 16 shards hit
}

TEST(PlogStoreTest, OversizedRecordRejected) {
  PoolFixture f;
  f.pool.AddCluster(3, 1, 16 << 20);
  PlogStoreConfig config;
  config.num_shards = 2;
  config.plog = SmallPlogConfig(RedundancyConfig::Replication(3),
                                /*capacity=*/1024);
  PlogStore store(&f.pool, config, &f.clock);
  Bytes big(4096, 'x');
  EXPECT_TRUE(store.Append(0, ByteView(big)).status().IsResourceExhausted());
}

// Regression for the old single-mutex write path: a shard stalled inside
// device I/O (the io_delay_hook stands in for a slow device) used to hold
// the store-wide lock, blocking every other shard. With striped locking,
// only the stalled shard's stripe is held.
TEST(PlogStoreTest, StalledShardDoesNotBlockOtherStripes) {
  PoolFixture f;
  f.pool.AddCluster(3, 2, 16 << 20);
  PlogStoreConfig config;
  config.num_shards = 4;
  config.num_stripes = 4;  // shard i maps 1:1 to stripe i
  config.plog = SmallPlogConfig(RedundancyConfig::Replication(3));
  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  config.io_delay_hook = [&](uint32_t shard) {
    if (shard != 0) return;
    parked.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  };
  PlogStore store(&f.pool, config, &f.clock);

  std::thread slow([&] {
    auto addr = store.Append(0, ByteView(std::string(64, 'a')));
    EXPECT_TRUE(addr.ok()) << addr.status().ToString();
  });
  while (!parked.load(std::memory_order_acquire)) std::this_thread::yield();

  // `slow` is parked inside Append holding stripe 0. Shard 1 lives on
  // stripe 1, so this append must complete while stripe 0 is still held;
  // under the old global lock it would deadlock (the hook never releases
  // until we set `release`, which only happens after this append).
  auto addr = store.Append(1, ByteView(std::string(64, 'b')));
  ASSERT_TRUE(addr.ok()) << addr.status().ToString();
  EXPECT_FALSE(release.load(std::memory_order_acquire));
  auto read = store.Read(*addr);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(BytesToString(*read), std::string(64, 'b'));

  release.store(true, std::memory_order_release);
  slow.join();
}

TEST(PlogStoreTest, GarbageCollectionFreesDeadSealedPlogs) {
  PoolFixture f;
  f.pool.AddCluster(3, 1, 16 << 20);
  PlogStoreConfig config;
  config.num_shards = 1;
  config.plog = SmallPlogConfig(RedundancyConfig::Replication(3),
                                /*capacity=*/1024);
  PlogStore store(&f.pool, config, &f.clock);

  // Fill and roll the first plog.
  std::vector<PlogAddress> addresses;
  for (int i = 0; i < 8; ++i) {
    auto addr = store.Append(0, ByteView(std::string(200, 'x')));
    ASSERT_TRUE(addr.ok());
    addresses.push_back(*addr);
  }
  uint64_t allocated_before = f.pool.AllocatedBytes();
  // Kill all records of plog 0.
  for (const PlogAddress& addr : addresses) {
    if (addr.plog_index == 0) {
      ASSERT_TRUE(store.MarkGarbage(addr, 200).ok());
    }
  }
  EXPECT_LT(f.pool.AllocatedBytes(), allocated_before);
}

// ---------------- ObjectStore ----------------

struct ObjectStoreFixture {
  sim::SimClock clock;
  StoragePool pool{"ssd", sim::MediaType::kNvmeSsd, &clock};
  kv::KvStore index;
  std::unique_ptr<PlogStore> plogs;
  std::unique_ptr<ObjectStore> objects;

  explicit ObjectStoreFixture(uint64_t fragment_bytes = 8 << 20) {
    pool.AddCluster(3, 2, 32 << 20);
    PlogStoreConfig config;
    config.num_shards = 8;
    config.plog.capacity = 4 << 20;
    config.plog.stripe_unit = 1024;
    config.plog.redundancy = RedundancyConfig::Replication(3);
    plogs = std::make_unique<PlogStore>(&pool, config, &clock);
    objects = std::make_unique<ObjectStore>(plogs.get(), &index,
                                            fragment_bytes);
  }
};

TEST(ObjectStoreTest, WriteReadDelete) {
  ObjectStoreFixture f;
  Bytes data = ToBytes("parquet file contents here");
  ASSERT_TRUE(f.objects->Write("/table/data/part-0.lake", ByteView(data)).ok());
  EXPECT_TRUE(f.objects->Exists("/table/data/part-0.lake"));
  auto read = f.objects->Read("/table/data/part-0.lake");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  EXPECT_EQ(*f.objects->Size("/table/data/part-0.lake"), data.size());

  ASSERT_TRUE(f.objects->Delete("/table/data/part-0.lake").ok());
  EXPECT_FALSE(f.objects->Exists("/table/data/part-0.lake"));
  EXPECT_TRUE(f.objects->Read("/table/data/part-0.lake").status().IsNotFound());
  EXPECT_TRUE(f.objects->Delete("/table/data/part-0.lake").IsNotFound());
}

TEST(ObjectStoreTest, OverwriteReplacesContents) {
  ObjectStoreFixture f;
  ASSERT_TRUE(f.objects->Write("/a", ByteView("v1")).ok());
  ASSERT_TRUE(f.objects->Write("/a", ByteView("version-two")).ok());
  EXPECT_EQ(BytesToString(*f.objects->Read("/a")), "version-two");
  EXPECT_EQ(f.objects->num_objects(), 1u);
}

TEST(ObjectStoreTest, LargeFileSplitsIntoFragments) {
  ObjectStoreFixture f(/*fragment_bytes=*/1024);
  Random rng(6);
  Bytes data;
  for (int i = 0; i < 10000; ++i) {
    data.push_back(static_cast<uint8_t>(rng.Uniform(256)));
  }
  ASSERT_TRUE(f.objects->Write("/big", ByteView(data)).ok());
  auto read = f.objects->Read("/big");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST(ObjectStoreTest, EmptyObject) {
  ObjectStoreFixture f;
  ASSERT_TRUE(f.objects->Write("/empty", ByteView()).ok());
  auto read = f.objects->Read("/empty");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
  EXPECT_EQ(*f.objects->Size("/empty"), 0u);
}

TEST(ObjectStoreTest, ListByPrefix) {
  ObjectStoreFixture f;
  for (std::string path : {"/t1/data/a", "/t1/data/b", "/t1/metadata/c",
                           "/t2/data/d"}) {
    ASSERT_TRUE(f.objects->Write(path, ByteView("x")).ok());
  }
  auto data_files = f.objects->List("/t1/data/");
  ASSERT_EQ(data_files.size(), 2u);
  EXPECT_EQ(data_files[0], "/t1/data/a");
  EXPECT_EQ(data_files[1], "/t1/data/b");
  EXPECT_EQ(f.objects->List("/t1/").size(), 3u);
  EXPECT_EQ(f.objects->List("/").size(), 4u);
  EXPECT_EQ(f.objects->num_objects(), 4u);
}

TEST(ObjectStoreTest, WormPrefixBlocksOverwriteAndDelete) {
  ObjectStoreFixture f;
  f.objects->SetWormPrefix("/archive/");
  ASSERT_TRUE(f.objects->Write("/archive/2022.log", ByteView("v1")).ok());
  // First write fine; overwrite and delete rejected.
  EXPECT_TRUE(f.objects->Write("/archive/2022.log", ByteView("v2"))
                  .IsInvalidArgument());
  EXPECT_TRUE(f.objects->Delete("/archive/2022.log").IsInvalidArgument());
  EXPECT_EQ(BytesToString(*f.objects->Read("/archive/2022.log")), "v1");
  // Outside the WORM prefix everything still works.
  ASSERT_TRUE(f.objects->Write("/scratch/x", ByteView("a")).ok());
  ASSERT_TRUE(f.objects->Write("/scratch/x", ByteView("b")).ok());
  ASSERT_TRUE(f.objects->Delete("/scratch/x").ok());
}

TEST(ObjectStoreTest, CloneSharesFragmentsUntilLastReference) {
  ObjectStoreFixture f;
  Bytes data(5000, 'c');
  ASSERT_TRUE(f.objects->Write("/orig", ByteView(data)).ok());
  uint64_t live_after_write = f.plogs->TotalLiveBytes();
  ASSERT_TRUE(f.objects->Clone("/orig", "/copy").ok());
  // Zero-copy: no new PLog data.
  EXPECT_EQ(f.plogs->TotalLiveBytes(), live_after_write);
  EXPECT_EQ(*f.objects->Read("/copy"), data);

  // Deleting the original keeps the clone readable (shared fragments).
  ASSERT_TRUE(f.objects->Delete("/orig").ok());
  EXPECT_EQ(*f.objects->Read("/copy"), data);
  EXPECT_EQ(f.plogs->TotalLiveBytes(), live_after_write);
  // Last reference gone: space reclaimed.
  ASSERT_TRUE(f.objects->Delete("/copy").ok());
  EXPECT_LT(f.plogs->TotalLiveBytes(), live_after_write);

  EXPECT_TRUE(f.objects->Clone("/missing", "/x").IsNotFound());
}

TEST(ObjectStoreTest, SnapshotPrefixClonesNamespace) {
  ObjectStoreFixture f;
  ASSERT_TRUE(f.objects->Write("/t/data/a", ByteView("1")).ok());
  ASSERT_TRUE(f.objects->Write("/t/data/b", ByteView("2")).ok());
  auto cloned = f.objects->SnapshotPrefix("/t/", "/snap-1/");
  ASSERT_TRUE(cloned.ok());
  EXPECT_EQ(*cloned, 2u);
  // The snapshot is independent of later changes.
  ASSERT_TRUE(f.objects->Write("/t/data/a", ByteView("1-modified")).ok());
  ASSERT_TRUE(f.objects->Delete("/t/data/b").ok());
  EXPECT_EQ(BytesToString(*f.objects->Read("/snap-1/data/a")), "1");
  EXPECT_EQ(BytesToString(*f.objects->Read("/snap-1/data/b")), "2");
}

// ---------------- Tiering ----------------

TEST(TieringTest, MigratesColdSealedPlogs) {
  sim::SimClock clock;
  StoragePool ssd("ssd", sim::MediaType::kNvmeSsd, &clock);
  StoragePool hdd("hdd", sim::MediaType::kSasHdd, &clock);
  ssd.AddCluster(3, 1, 16 << 20);
  hdd.AddCluster(3, 1, 64 << 20);

  PlogStoreConfig config;
  config.num_shards = 1;
  config.plog = PlogConfig{.capacity = 2048, .stripe_unit = 512,
                           .redundancy = RedundancyConfig::Replication(3)};
  PlogStore store(&ssd, config, &clock);
  std::vector<PlogAddress> addresses;
  for (int i = 0; i < 10; ++i) {
    auto addr = store.Append(0, ByteView(std::string(400, 'd')));
    ASSERT_TRUE(addr.ok());
    addresses.push_back(*addr);
  }
  ASSERT_GT(store.TotalPlogs(), 1u);

  TieringPolicy policy;
  policy.cold_after_ns = 100 * sim::kSecond;
  TieringService tiering(&store, &ssd, &hdd, &clock, policy);

  // Nothing is cold yet.
  auto stats = tiering.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->migrated_plogs, 0u);

  clock.Advance(3600 * sim::kSecond);
  stats = tiering.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->migrated_plogs, 0u);
  EXPECT_GT(hdd.AllocatedBytes(), 0u);

  // Data still readable after migration, now from the HDD tier.
  for (const PlogAddress& addr : addresses) {
    auto read = store.Read(addr);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->size(), 400u);
  }
}

}  // namespace
}  // namespace streamlake::storage
