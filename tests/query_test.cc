#include <gtest/gtest.h>

#include "query/executor.h"
#include "query/predicate.h"

namespace streamlake::query {
namespace {

format::Schema LogSchema() {
  return format::Schema{{"url", format::DataType::kString},
                        {"start_time", format::DataType::kInt64},
                        {"province", format::DataType::kString}};
}

format::Row LogRow(const std::string& url, int64_t t,
                   const std::string& province) {
  format::Row row;
  row.fields = {format::Value(url), format::Value(t), format::Value(province)};
  return row;
}

TEST(PredicateTest, AllOperators) {
  format::Value five{int64_t{5}};
  EXPECT_TRUE(Predicate::Le("x", five).Matches(format::Value(int64_t{5})));
  EXPECT_FALSE(Predicate::Lt("x", five).Matches(format::Value(int64_t{5})));
  EXPECT_TRUE(Predicate::Ge("x", five).Matches(format::Value(int64_t{5})));
  EXPECT_FALSE(Predicate::Gt("x", five).Matches(format::Value(int64_t{5})));
  EXPECT_TRUE(Predicate::Eq("x", five).Matches(format::Value(int64_t{5})));
  EXPECT_FALSE(Predicate::Eq("x", five).Matches(format::Value(int64_t{6})));
  Predicate in = Predicate::In(
      "x", {format::Value(int64_t{1}), format::Value(int64_t{3})});
  EXPECT_TRUE(in.Matches(format::Value(int64_t{3})));
  EXPECT_FALSE(in.Matches(format::Value(int64_t{2})));
}

TEST(PredicateTest, ConjunctionSemantics) {
  format::Schema schema = LogSchema();
  Conjunction where{
      Predicate::Eq("url", format::Value(std::string("http://a"))),
      Predicate::Ge("start_time", format::Value(int64_t{100})),
      Predicate::Lt("start_time", format::Value(int64_t{200}))};
  EXPECT_TRUE(where.Matches(schema, LogRow("http://a", 150, "bj")));
  EXPECT_FALSE(where.Matches(schema, LogRow("http://b", 150, "bj")));
  EXPECT_FALSE(where.Matches(schema, LogRow("http://a", 200, "bj")));
  EXPECT_TRUE(Conjunction().Matches(schema, LogRow("x", 1, "y")));
}

TEST(PredicateTest, RangePruning) {
  // Stats: start_time in [100, 200).
  format::ColumnStats stats;
  stats.min = format::Value(int64_t{100});
  stats.max = format::Value(int64_t{199});

  Conjunction overlapping{Predicate::Ge("start_time", format::Value(int64_t{150}))};
  EXPECT_TRUE(overlapping.MayMatchStats("start_time", stats));

  Conjunction below{Predicate::Lt("start_time", format::Value(int64_t{100}))};
  EXPECT_FALSE(below.MayMatchStats("start_time", stats));

  Conjunction above{Predicate::Gt("start_time", format::Value(int64_t{199}))};
  EXPECT_FALSE(above.MayMatchStats("start_time", stats));

  Conjunction eq_in{Predicate::Eq("start_time", format::Value(int64_t{150}))};
  EXPECT_TRUE(eq_in.MayMatchStats("start_time", stats));
  Conjunction eq_out{Predicate::Eq("start_time", format::Value(int64_t{500}))};
  EXPECT_FALSE(eq_out.MayMatchStats("start_time", stats));

  // Other columns don't prune.
  Conjunction other{Predicate::Eq("url", format::Value(std::string("z")))};
  EXPECT_TRUE(other.MayMatchStats("start_time", stats));

  // Missing stats: conservative.
  format::ColumnStats empty;
  EXPECT_TRUE(below.MayMatchStats("start_time", empty));
}

TEST(PredicateTest, InPruning) {
  format::ColumnStats stats;
  stats.min = format::Value(std::string("beijing"));
  stats.max = format::Value(std::string("hubei"));
  Conjunction in_hit{Predicate::In(
      "p", {format::Value(std::string("guangdong"))})};
  EXPECT_TRUE(in_hit.MayMatchStats("p", stats));
  Conjunction in_miss{Predicate::In(
      "p", {format::Value(std::string("shanghai"))})};
  EXPECT_FALSE(in_miss.MayMatchStats("p", stats));
}

TEST(ExecutorTest, DauQueryOfFig13) {
  // SELECT COUNT(*) AS DAU WHERE url = ... AND t in [a,b) GROUP BY province
  format::Schema schema = LogSchema();
  std::vector<format::Row> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back(LogRow(i % 2 ? "http://streamlake_fin_app.com" : "http://x",
                          1656806400 + i, i % 3 ? "beijing" : "shanghai"));
  }
  QuerySpec spec;
  spec.where.Add(Predicate::Eq(
      "url", format::Value(std::string("http://streamlake_fin_app.com"))));
  spec.where.Add(Predicate::Ge("start_time", format::Value(int64_t{1656806400})));
  spec.where.Add(Predicate::Lt("start_time",
                               format::Value(int64_t{1656806400 + 100})));
  spec.group_by = {"province"};
  spec.aggregates = {AggregateSpec::CountStar("DAU")};

  auto result = Execute(schema, rows, spec);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 2u);  // two provinces
  EXPECT_EQ(result->column_names[0], "province");
  EXPECT_EQ(result->column_names[1], "DAU");
  int64_t total = 0;
  for (const format::Row& row : result->rows) {
    total += std::get<int64_t>(row.fields[1]);
  }
  EXPECT_EQ(total, 50);  // half the rows match the url predicate
  EXPECT_EQ(result->rows_scanned, 100u);
  EXPECT_EQ(result->rows_matched, 50u);
}

TEST(ExecutorTest, SumMinMax) {
  format::Schema schema = LogSchema();
  std::vector<format::Row> rows = {LogRow("a", 10, "p"), LogRow("a", 30, "p"),
                                   LogRow("a", 20, "q")};
  QuerySpec spec;
  spec.aggregates = {AggregateSpec::Sum("start_time"),
                     AggregateSpec::Min("start_time"),
                     AggregateSpec::Max("start_time")};
  auto result = Execute(schema, rows, spec);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_DOUBLE_EQ(std::get<double>(result->rows[0].fields[0]), 60.0);
  EXPECT_EQ(std::get<int64_t>(result->rows[0].fields[1]), 10);
  EXPECT_EQ(std::get<int64_t>(result->rows[0].fields[2]), 30);
}

TEST(ExecutorTest, AvgAggregate) {
  format::Schema schema = LogSchema();
  std::vector<format::Row> rows = {LogRow("a", 10, "p"), LogRow("a", 30, "p"),
                                   LogRow("a", 20, "q")};
  QuerySpec spec;
  spec.group_by = {"province"};
  spec.aggregates = {AggregateSpec::Avg("start_time")};
  auto result = Execute(schema, rows, spec);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_DOUBLE_EQ(std::get<double>(result->rows[0].fields[1]), 20.0);  // p
  EXPECT_DOUBLE_EQ(std::get<double>(result->rows[1].fields[1]), 20.0);  // q

  // Global AVG over empty input is 0 by convention.
  QuerySpec empty;
  empty.aggregates = {AggregateSpec::Avg("start_time")};
  auto none = Execute(schema, {}, empty);
  ASSERT_TRUE(none.ok());
  EXPECT_DOUBLE_EQ(std::get<double>(none->rows[0].fields[0]), 0.0);
}

TEST(ExecutorTest, OrderByAndLimit) {
  format::Schema schema = LogSchema();
  std::vector<format::Row> rows;
  for (int i = 0; i < 20; ++i) {
    rows.push_back(LogRow("u", (i * 7) % 20, "p" + std::to_string(i % 4)));
  }
  // Top-3 provinces by count, descending (a leaderboard query).
  QuerySpec spec;
  spec.group_by = {"province"};
  spec.aggregates = {AggregateSpec::CountStar("n")};
  spec.order_by = "n";
  spec.order_descending = true;
  spec.limit = 3;
  auto result = Execute(schema, rows, spec);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 3u);
  for (size_t i = 1; i < result->rows.size(); ++i) {
    EXPECT_GE(std::get<int64_t>(result->rows[i - 1].fields[1]),
              std::get<int64_t>(result->rows[i].fields[1]));
  }

  // Plain rows sort too.
  QuerySpec plain;
  plain.projection = {"start_time"};
  plain.order_by = "start_time";
  plain.limit = 5;
  auto sorted = Execute(schema, rows, plain);
  ASSERT_TRUE(sorted.ok());
  ASSERT_EQ(sorted->rows.size(), 5u);
  for (size_t i = 1; i < sorted->rows.size(); ++i) {
    EXPECT_LE(std::get<int64_t>(sorted->rows[i - 1].fields[0]),
              std::get<int64_t>(sorted->rows[i].fields[0]));
  }

  QuerySpec bad;
  bad.order_by = "nope";
  EXPECT_TRUE(Execute(schema, rows, bad).status().IsInvalidArgument());
}

TEST(ExecutorTest, PlainSelectWithProjection) {
  format::Schema schema = LogSchema();
  std::vector<format::Row> rows = {LogRow("a", 1, "bj"), LogRow("b", 2, "sh")};
  QuerySpec spec;
  spec.projection = {"province", "start_time"};
  auto result = Execute(schema, rows, spec);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->column_names,
            (std::vector<std::string>{"province", "start_time"}));
  EXPECT_EQ(std::get<std::string>(result->rows[0].fields[0]), "bj");
  EXPECT_EQ(std::get<int64_t>(result->rows[1].fields[1]), 2);
}

TEST(ExecutorTest, UnknownColumnsRejected) {
  format::Schema schema = LogSchema();
  QuerySpec bad_group;
  bad_group.group_by = {"nope"};
  bad_group.aggregates = {AggregateSpec::CountStar()};
  EXPECT_TRUE(Execute(schema, {}, bad_group).status().IsInvalidArgument());

  QuerySpec bad_agg;
  bad_agg.aggregates = {AggregateSpec::Sum("nope")};
  EXPECT_TRUE(Execute(schema, {}, bad_agg).status().IsInvalidArgument());

  QuerySpec bad_proj;
  bad_proj.projection = {"nope"};
  EXPECT_TRUE(Execute(schema, {}, bad_proj).status().IsInvalidArgument());
}

TEST(ExecutorTest, IncrementalConsumeMatchesSingleShot) {
  format::Schema schema = LogSchema();
  std::vector<format::Row> all;
  for (int i = 0; i < 60; ++i) {
    all.push_back(LogRow("u", i, "p" + std::to_string(i % 4)));
  }
  QuerySpec spec;
  spec.group_by = {"province"};
  spec.aggregates = {AggregateSpec::CountStar()};

  Executor incremental(schema, spec);
  for (size_t i = 0; i < all.size(); i += 7) {
    std::vector<format::Row> chunk(
        all.begin() + i, all.begin() + std::min(i + 7, all.size()));
    ASSERT_TRUE(incremental.Consume(chunk).ok());
  }
  auto inc = incremental.Finalize();
  auto single = Execute(schema, all, spec);
  ASSERT_TRUE(inc.ok() && single.ok());
  ASSERT_EQ(inc->rows.size(), single->rows.size());
  for (size_t i = 0; i < inc->rows.size(); ++i) {
    EXPECT_EQ(inc->rows[i], single->rows[i]);
  }
}

}  // namespace
}  // namespace streamlake::query
