#include <gtest/gtest.h>

#include "codec/compression.h"
#include "codec/encoding.h"
#include "common/coding.h"
#include "common/random.h"

namespace streamlake::codec {
namespace {

class CompressionRoundTrip : public ::testing::TestWithParam<Compression> {};

TEST_P(CompressionRoundTrip, EmptyInput) {
  Bytes in;
  Bytes compressed = Compress(GetParam(), ByteView(in));
  auto out = Decompress(GetParam(), ByteView(compressed), 0);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->empty());
}

TEST_P(CompressionRoundTrip, RepetitiveText) {
  std::string s;
  for (int i = 0; i < 500; ++i) s += "the quick brown fox jumps ";
  Bytes in = ToBytes(s);
  Bytes compressed = Compress(GetParam(), ByteView(in));
  auto out = Decompress(GetParam(), ByteView(compressed), in.size());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, in);
}

TEST_P(CompressionRoundTrip, RandomBytes) {
  Random rng(11);
  Bytes in;
  for (int i = 0; i < 10000; ++i) {
    in.push_back(static_cast<uint8_t>(rng.Uniform(256)));
  }
  Bytes compressed = Compress(GetParam(), ByteView(in));
  auto out = Decompress(GetParam(), ByteView(compressed), in.size());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, in);
}

TEST_P(CompressionRoundTrip, LongRuns) {
  Bytes in(100000, 0x7A);
  Bytes compressed = Compress(GetParam(), ByteView(in));
  auto out = Decompress(GetParam(), ByteView(compressed), in.size());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, in);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CompressionRoundTrip,
                         ::testing::Values(Compression::kNone,
                                           Compression::kLz));

TEST(LzTest, CompressesRepetitiveDataWell) {
  std::string s;
  for (int i = 0; i < 1000; ++i) s += "province=guangdong|url=http://a.com|";
  Bytes in = ToBytes(s);
  Bytes compressed = Compress(Compression::kLz, ByteView(in));
  EXPECT_LT(compressed.size() * 5, in.size());  // at least 5x on logs
}

TEST(LzTest, DecompressRejectsCorruptStream) {
  Bytes in = ToBytes(std::string(4096, 'q') + "tail variation 123");
  Bytes compressed = Compress(Compression::kLz, ByteView(in));
  // Wrong expected size must be detected.
  EXPECT_TRUE(Decompress(Compression::kLz, ByteView(compressed), in.size() + 1)
                  .status()
                  .IsCorruption());
  // Truncated stream must be detected.
  Bytes truncated(compressed.begin(), compressed.begin() + compressed.size() / 2);
  EXPECT_FALSE(
      Decompress(Compression::kLz, ByteView(truncated), in.size()).ok());
}

TEST(Int64EncodingTest, PlainDeltaRleRoundTrip) {
  std::vector<int64_t> sorted;
  std::vector<int64_t> runs;
  std::vector<int64_t> random_vals;
  Random rng(5);
  for (int i = 0; i < 1000; ++i) {
    sorted.push_back(1656806400 + i * 3);
    runs.push_back(i / 100);
    random_vals.push_back(static_cast<int64_t>(rng.Next()) >> 8);
  }
  for (Encoding e : {Encoding::kPlain, Encoding::kDelta, Encoding::kRle}) {
    for (const auto& vals : {sorted, runs}) {
      Bytes buf;
      EncodeInt64s(vals, e, &buf);
      auto decoded = DecodeInt64s(ByteView(buf), e, vals.size());
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(*decoded, vals);
    }
  }
  Bytes buf;
  EncodeInt64s(random_vals, Encoding::kPlain, &buf);
  auto decoded = DecodeInt64s(ByteView(buf), Encoding::kPlain,
                              random_vals.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, random_vals);
}

TEST(Int64EncodingTest, ChooserPrefersDeltaForSorted) {
  std::vector<int64_t> sorted;
  for (int i = 0; i < 1000; ++i) sorted.push_back(i * 17);
  EXPECT_EQ(ChooseInt64Encoding(sorted), Encoding::kDelta);
}

TEST(Int64EncodingTest, ChooserPrefersRleForRuns) {
  std::vector<int64_t> runs(1000, 42);
  EXPECT_EQ(ChooseInt64Encoding(runs), Encoding::kRle);
}

TEST(Int64EncodingTest, ChooserPrefersPlainForRandom) {
  Random rng(6);
  std::vector<int64_t> random_vals;
  for (int i = 0; i < 1000; ++i) {
    random_vals.push_back(static_cast<int64_t>(rng.Next()));
  }
  EXPECT_EQ(ChooseInt64Encoding(random_vals), Encoding::kPlain);
}

TEST(Int64EncodingTest, DeltaBeatsPlainOnTimestamps) {
  std::vector<int64_t> ts;
  for (int i = 0; i < 10000; ++i) ts.push_back(1656806400LL * 1000 + i * 7);
  Bytes plain, delta;
  EncodeInt64s(ts, Encoding::kPlain, &plain);
  EncodeInt64s(ts, Encoding::kDelta, &delta);
  EXPECT_LT(delta.size() * 2, plain.size());
}

TEST(Int64EncodingTest, RleRejectsBadRuns) {
  Bytes buf;
  PutVarint64Signed(&buf, 7);
  PutVarint64(&buf, 100);  // run longer than requested count
  EXPECT_TRUE(DecodeInt64s(ByteView(buf), Encoding::kRle, 5)
                  .status()
                  .IsCorruption());
}

TEST(DoubleEncodingTest, RoundTrip) {
  std::vector<double> vals = {0.0, -1.5, 3.14159, 1e300, -1e-300};
  Bytes buf;
  EncodeDoubles(vals, &buf);
  auto decoded = DecodeDoubles(ByteView(buf), vals.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, vals);
}

TEST(StringEncodingTest, PlainAndDictRoundTrip) {
  std::vector<std::string> provinces;
  Random rng(7);
  const std::vector<std::string> kNames = {"beijing", "shanghai", "guangdong",
                                           "sichuan", "hubei"};
  for (int i = 0; i < 500; ++i) {
    provinces.push_back(kNames[rng.Uniform(kNames.size())]);
  }
  for (Encoding e : {Encoding::kPlain, Encoding::kDict}) {
    Bytes buf;
    EncodeStrings(provinces, e, &buf);
    auto decoded = DecodeStrings(ByteView(buf), e, provinces.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, provinces);
  }
}

TEST(StringEncodingTest, DictMuchSmallerForLowCardinality) {
  std::vector<std::string> vals(2000, "http://streamlake_fin_app.com");
  Bytes plain, dict;
  EncodeStrings(vals, Encoding::kPlain, &plain);
  EncodeStrings(vals, Encoding::kDict, &dict);
  EXPECT_LT(dict.size() * 10, plain.size());
  EXPECT_EQ(ChooseStringEncoding(vals), Encoding::kDict);
}

TEST(StringEncodingTest, ChooserPrefersPlainForHighCardinality) {
  Random rng(8);
  std::vector<std::string> vals;
  for (int i = 0; i < 200; ++i) vals.push_back(rng.NextString(12));
  EXPECT_EQ(ChooseStringEncoding(vals), Encoding::kPlain);
}

TEST(BoolEncodingTest, RoundTripOddCount) {
  std::vector<uint8_t> vals;
  Random rng(9);
  for (int i = 0; i < 77; ++i) vals.push_back(rng.OneIn(2) ? 1 : 0);
  Bytes buf;
  EncodeBools(vals, &buf);
  EXPECT_EQ(buf.size(), 10u);  // ceil(77/8)
  auto decoded = DecodeBools(ByteView(buf), vals.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, vals);
}

// Property test: random int64 columns round-trip under the chooser-selected
// encoding.
TEST(EncodingProperty, ChooserSelectedEncodingAlwaysRoundTrips) {
  Random rng(10);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<int64_t> vals;
    size_t n = 1 + rng.Uniform(2000);
    int mode = static_cast<int>(rng.Uniform(3));
    int64_t cur = static_cast<int64_t>(rng.Uniform(1000000));
    for (size_t i = 0; i < n; ++i) {
      if (mode == 0) {
        cur += static_cast<int64_t>(rng.Uniform(100));  // sorted-ish
      } else if (mode == 1) {
        if (rng.OneIn(50)) cur = static_cast<int64_t>(rng.Uniform(10));  // runs
      } else {
        cur = static_cast<int64_t>(rng.Next());  // random
      }
      vals.push_back(cur);
    }
    Encoding e = ChooseInt64Encoding(vals);
    Bytes buf;
    EncodeInt64s(vals, e, &buf);
    auto decoded = DecodeInt64s(ByteView(buf), e, vals.size());
    ASSERT_TRUE(decoded.ok()) << "trial " << trial;
    EXPECT_EQ(*decoded, vals) << "trial " << trial;
  }
}

}  // namespace
}  // namespace streamlake::codec
