#!/usr/bin/env bash
# One-command verify: static lint, clang-tidy, tier-1 build+tests, and both
# sanitizer tiers. Mirrors what CI runs; any failure fails the script, and a
# per-tier summary prints at the end either way.
#
# Usage: scripts/check.sh [--fast] [--no-tidy] [--no-slint]
#   --fast      lint + tidy + slint + tier-1 only (skip the sanitizer builds)
#   --no-tidy   skip clang-tidy (without this flag a missing clang-tidy
#               binary is an error, not a silent skip)
#   --no-slint  skip the whole-program static lock analyzer (tools/slint);
#               escape hatch for iterating on code the analyzer flags

set -uo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
fast=0
tidy=1
slint=1
for arg in "$@"; do
  case "$arg" in
    --fast) fast=1 ;;
    --no-tidy) tidy=0 ;;
    --no-slint) slint=0 ;;
    *) echo "usage: scripts/check.sh [--fast] [--no-tidy] [--no-slint]" >&2
       exit 2 ;;
  esac
done

declare -a summary=()
failed=0

record() {  # record <name> <exit-code>
  if [[ "$2" == 0 ]]; then
    summary+=("PASS  $1")
  else
    summary+=("FAIL  $1")
    failed=1
  fi
}

print_summary() {
  echo
  echo "==> summary"
  for line in "${summary[@]}"; do
    echo "  $line"
  done
}
trap print_summary EXIT

run_step() {  # run_step <name> <cmd...>
  local name="$1"
  shift
  echo "==> [$name]"
  "$@"
  record "$name" "$?"
}

run_tier() {
  local preset="$1"
  echo "==> [$preset] configure + build + test"
  cmake --preset "$preset" &&
    cmake --build --preset "$preset" -j "$jobs" &&
    ctest --preset "$preset" -j "$jobs"
  record "$preset" "$?"
}

run_step lint python3 tools/lint.py
run_step lint-selftest python3 tools/lint_test.py

if [[ "$slint" == 1 ]]; then
  run_step slint python3 tools/slint
  run_step slint-selftest python3 tools/slint_test.py
else
  summary+=("SKIP  slint (--no-slint)")
fi

if [[ "$tidy" == 1 ]]; then
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "error: clang-tidy not found on PATH." >&2
    echo "  Install it (e.g. apt-get install clang-tidy) or rerun with" >&2
    echo "  scripts/check.sh --no-tidy to run every other check." >&2
    record clang-tidy 1
    exit 1
  fi
  run_step clang-tidy tools/run_clang_tidy.sh
else
  summary+=("SKIP  clang-tidy (--no-tidy)")
fi

run_tier default

if [[ "$fast" == 0 ]]; then
  run_tier asan-ubsan
  run_tier tsan
fi

if [[ "$failed" == 0 ]]; then
  echo "==> all checks passed"
fi
exit "$failed"
