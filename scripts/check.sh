#!/usr/bin/env bash
# One-command verify: tier-1 build+tests, both sanitizer tiers, and the
# static lint. Mirrors what CI should run; any failure fails the script.
#
# Usage: scripts/check.sh [--fast]
#   --fast   tier-1 + lint only (skip the sanitizer builds)

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
fast=0
if [[ $# -gt 0 ]]; then
  case "$1" in
    --fast) fast=1 ;;
    *) echo "usage: scripts/check.sh [--fast]" >&2; exit 2 ;;
  esac
fi

run_tier() {
  local preset="$1"
  echo "==> [$preset] configure + build + test"
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs"
}

echo "==> lint"
python3 tools/lint.py

run_tier default

if [[ "$fast" == 0 ]]; then
  run_tier asan-ubsan
  run_tier tsan
fi

echo "==> all checks passed"
