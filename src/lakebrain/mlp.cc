#include "lakebrain/mlp.h"

#include <cmath>

#include "common/logging.h"

namespace streamlake::lakebrain {

Mlp::Mlp(std::vector<int> layer_sizes, uint64_t seed)
    : layer_sizes_(std::move(layer_sizes)) {
  SL_CHECK(layer_sizes_.size() >= 2);
  Random rng(seed);
  for (size_t l = 0; l + 1 < layer_sizes_.size(); ++l) {
    Layer layer;
    int in = layer_sizes_[l];
    int out = layer_sizes_[l + 1];
    double scale = std::sqrt(2.0 / in);  // He init for ReLU
    layer.weights.assign(out, std::vector<double>(in, 0.0));
    layer.biases.assign(out, 0.0);
    for (int o = 0; o < out; ++o) {
      for (int i = 0; i < in; ++i) {
        // Approximate normal via sum of uniforms.
        double u = 0;
        for (int k = 0; k < 4; ++k) u += rng.NextDouble() - 0.5;
        layer.weights[o][i] = u * scale;
      }
    }
    layers_.push_back(std::move(layer));
  }
}

std::vector<std::vector<double>> Mlp::ForwardAll(
    const std::vector<double>& input) const {
  std::vector<std::vector<double>> activations;
  activations.push_back(input);
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const std::vector<double>& prev = activations.back();
    std::vector<double> next(layer.biases);
    for (size_t o = 0; o < next.size(); ++o) {
      const std::vector<double>& w = layer.weights[o];
      double acc = next[o];
      for (size_t i = 0; i < prev.size(); ++i) acc += w[i] * prev[i];
      // ReLU on hidden layers, linear output.
      next[o] = (l + 1 < layers_.size() && acc < 0) ? 0.0 : acc;
    }
    activations.push_back(std::move(next));
  }
  return activations;
}

std::vector<double> Mlp::Forward(const std::vector<double>& input) const {
  SL_CHECK(static_cast<int>(input.size()) == input_size());
  return ForwardAll(input).back();
}

void Mlp::TrainStep(const std::vector<double>& input, int output_index,
                    double target, double learning_rate) {
  SL_CHECK(output_index >= 0 && output_index < output_size());
  std::vector<std::vector<double>> activations = ForwardAll(input);

  // delta for the output layer: only the trained head is non-zero.
  std::vector<double> delta(output_size(), 0.0);
  double error = activations.back()[output_index] - target;
  // Clip the TD error (Huber-style) for stability.
  if (error > 1.0) error = 1.0;
  if (error < -1.0) error = -1.0;
  delta[output_index] = error;

  for (int l = static_cast<int>(layers_.size()) - 1; l >= 0; --l) {
    Layer& layer = layers_[l];
    const std::vector<double>& prev = activations[l];
    const std::vector<double>& out = activations[l + 1];
    std::vector<double> prev_delta(prev.size(), 0.0);
    for (size_t o = 0; o < delta.size(); ++o) {
      double d = delta[o];
      if (d == 0.0) continue;
      // ReLU derivative for hidden layers (output layer is linear).
      if (l + 1 < static_cast<int>(layers_.size()) && out[o] <= 0.0) continue;
      for (size_t i = 0; i < prev.size(); ++i) {
        prev_delta[i] += layer.weights[o][i] * d;
        layer.weights[o][i] -= learning_rate * d * prev[i];
      }
      layer.biases[o] -= learning_rate * d;
    }
    delta = std::move(prev_delta);
  }
}

void Mlp::CopyFrom(const Mlp& other) {
  SL_CHECK(layer_sizes_ == other.layer_sizes_);
  layers_ = other.layers_;
}

}  // namespace streamlake::lakebrain
