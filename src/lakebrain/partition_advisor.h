#ifndef STREAMLAKE_LAKEBRAIN_PARTITION_ADVISOR_H_
#define STREAMLAKE_LAKEBRAIN_PARTITION_ADVISOR_H_

#include "lakebrain/qdtree.h"
#include "table/lakehouse.h"

namespace streamlake::lakebrain {

/// \brief End-to-end predicate-aware repartitioning (Section VI-B applied
/// to a live table): sample the table, train the SPN, build the QD-tree
/// from the observed query workload, and materialize a repartitioned copy
/// whose files follow the tree's leaves — so ordinary file-stats pruning
/// realizes the tree's skipping.
class PartitionAdvisor {
 public:
  struct Options {
    /// Fraction of rows sampled for SPN training (paper: 3%).
    double sample_fraction = 0.03;
    SpnOptions spn;
    QdTreeOptions tree;
    uint64_t seed = 97;
  };

  PartitionAdvisor();
  explicit PartitionAdvisor(Options options);

  struct Plan {
    SumProductNetwork estimator;
    QdTree tree;
    uint64_t table_rows = 0;
  };

  /// Learn a partitioning plan for `table` from `workload` (the pushdown
  /// predicate conjunctions of the observed queries).
  Result<Plan> Advise(table::Table* table,
                      const std::vector<query::Conjunction>& workload);

  struct RepartitionStats {
    uint64_t rows_moved = 0;
    size_t partitions = 0;
  };

  /// Materialize `plan` into a NEW table `target_name` (created in
  /// `lakehouse`) whose rows are grouped by the tree's leaves. The source
  /// table is left untouched (cut over readers when satisfied).
  Result<RepartitionStats> Repartition(table::LakehouseService* lakehouse,
                                       table::Table* source,
                                       const std::string& target_name,
                                       const Plan& plan);

 private:
  Options options_;
};

}  // namespace streamlake::lakebrain

#endif  // STREAMLAKE_LAKEBRAIN_PARTITION_ADVISOR_H_
