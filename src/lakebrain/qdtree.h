#ifndef STREAMLAKE_LAKEBRAIN_QDTREE_H_
#define STREAMLAKE_LAKEBRAIN_QDTREE_H_

#include <memory>
#include <vector>

#include "lakebrain/spn.h"

namespace streamlake::lakebrain {

struct QdTreeOptions {
  /// Don't split nodes estimated below this many rows.
  uint64_t min_partition_rows = 1000;
  size_t max_leaves = 64;
};

/// \brief Predicate-aware partitioner (Section VI-B): a query tree in the
/// QD-tree [28] style whose inner nodes are pushdown predicates
/// (attribute, operator, literal) and whose leaves are partitions.
///
/// Greedy construction: at each node, pick the workload predicate that
/// maximizes the expected number of skipped tuples across the workload,
/// with per-branch cardinalities supplied by the learned SPN estimator
/// instead of sampling/scanning ("we can use AI-driven cardinality
/// estimation methods to estimate the cardinality accurately and
/// efficiently").
class QdTree {
 public:
  /// `workload` is the set of pushdown predicate conjunctions W.
  static Result<QdTree> Build(const format::Schema& schema,
                              const std::vector<query::Conjunction>& workload,
                              const SumProductNetwork& estimator,
                              uint64_t total_rows,
                              QdTreeOptions options = QdTreeOptions());

  /// Leaf (partition) id of one row. Ids are dense in [0, num_leaves).
  int AssignRow(const format::Row& row) const;

  size_t num_leaves() const { return num_leaves_; }

  /// Leaves a query may have to read (others are skipped): leaf ids whose
  /// constraint path does not contradict `where`.
  std::vector<int> MatchingLeaves(const query::Conjunction& where) const;

  /// Estimated rows in each leaf (SPN-based; diagnostics).
  const std::vector<uint64_t>& leaf_cardinalities() const {
    return leaf_cards_;
  }

 private:
  struct Node {
    // Inner node: rows satisfying `cut` go left, the rest right.
    bool is_leaf = true;
    int leaf_id = -1;
    query::Predicate cut;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };

  QdTree() = default;

  format::Schema schema_;
  std::unique_ptr<Node> root_;
  size_t num_leaves_ = 0;
  std::vector<uint64_t> leaf_cards_;
};

/// Does `where` provably exclude every row satisfying the constraints
/// (positive/negated predicates along a tree path)? Exposed for tests.
bool ConstraintsContradict(
    const std::vector<std::pair<query::Predicate, bool>>& constraints,
    const query::Conjunction& where);

}  // namespace streamlake::lakebrain

#endif  // STREAMLAKE_LAKEBRAIN_QDTREE_H_
