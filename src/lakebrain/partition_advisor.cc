#include "lakebrain/partition_advisor.h"

#include "common/random.h"

namespace streamlake::lakebrain {

PartitionAdvisor::PartitionAdvisor() : PartitionAdvisor(Options()) {}

PartitionAdvisor::PartitionAdvisor(Options options) : options_(options) {}

Result<PartitionAdvisor::Plan> PartitionAdvisor::Advise(
    table::Table* table, const std::vector<query::Conjunction>& workload) {
  SL_ASSIGN_OR_RETURN(table::TableInfo info, table->Info());
  // Full scan (advisors run offline); sample for SPN training.
  query::QuerySpec all;
  SL_ASSIGN_OR_RETURN(query::QueryResult rows, table->Select(all));
  if (rows.rows.empty()) {
    return Status::InvalidArgument("cannot advise on an empty table");
  }
  Random rng(options_.seed);
  std::vector<format::Row> sample;
  for (const format::Row& row : rows.rows) {
    if (rng.NextDouble() < options_.sample_fraction) sample.push_back(row);
  }
  if (sample.size() < 16) {
    // Tiny tables: train on everything.
    sample = rows.rows;
  }
  SpnOptions spn_options = options_.spn;
  spn_options.seed = options_.seed;
  if (spn_options.priors.empty()) {
    // Best-effort: seed the SPN's zero-smoothing priors from the live
    // files' aggregated footer stats (ndv / null_count per column).
    auto footer_stats = table->AggregateFooterStats();
    if (footer_stats.ok()) {
      for (const table::ColumnFooterStats& s : *footer_stats) {
        ColumnPrior prior;
        prior.ndv = s.ndv;
        prior.null_fraction =
            s.rows > 0 ? static_cast<double>(s.null_count) / s.rows : 0.0;
        spn_options.priors.push_back(prior);
      }
    }
  }
  SL_ASSIGN_OR_RETURN(SumProductNetwork spn,
                      SumProductNetwork::Train(info.schema, sample,
                                               spn_options));
  SL_ASSIGN_OR_RETURN(QdTree tree,
                      QdTree::Build(info.schema, workload, spn,
                                    rows.rows.size(), options_.tree));
  return Plan{std::move(spn), std::move(tree), rows.rows.size()};
}

Result<PartitionAdvisor::RepartitionStats> PartitionAdvisor::Repartition(
    table::LakehouseService* lakehouse, table::Table* source,
    const std::string& target_name, const Plan& plan) {
  SL_ASSIGN_OR_RETURN(table::TableInfo info, source->Info());
  query::QuerySpec all;
  SL_ASSIGN_OR_RETURN(query::QueryResult rows, source->Select(all));

  // Group rows by QD-tree leaf.
  std::vector<std::vector<format::Row>> by_leaf(plan.tree.num_leaves());
  for (format::Row& row : rows.rows) {
    by_leaf[plan.tree.AssignRow(row)].push_back(std::move(row));
  }

  SL_ASSIGN_OR_RETURN(table::Table * target,
                      lakehouse->CreateTable(target_name, info.schema,
                                             table::PartitionSpec::None()));
  RepartitionStats stats;
  // One insert (= one commit, own files) per leaf: the files' column
  // stats become the leaf's predicate ranges, so normal file skipping
  // realizes the tree's pruning.
  for (std::vector<format::Row>& leaf_rows : by_leaf) {
    if (leaf_rows.empty()) continue;
    SL_RETURN_NOT_OK(target->Insert(leaf_rows));
    stats.rows_moved += leaf_rows.size();
    ++stats.partitions;
  }
  return stats;
}

}  // namespace streamlake::lakebrain
