#include "lakebrain/qdtree.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace streamlake::lakebrain {

namespace {

using SignedPredicate = std::pair<query::Predicate, bool>;

/// Negate a range predicate when possible (the "does not satisfy the cut"
/// branch); Eq/In negations are not representable as a single predicate.
bool NegateRange(const query::Predicate& p, query::Predicate* out) {
  switch (p.op) {
    case query::CompareOp::kLe:
      *out = query::Predicate::Gt(p.column, p.literal);
      return true;
    case query::CompareOp::kGe:
      *out = query::Predicate::Lt(p.column, p.literal);
      return true;
    case query::CompareOp::kLt:
      *out = query::Predicate::Ge(p.column, p.literal);
      return true;
    case query::CompareOp::kGt:
      *out = query::Predicate::Le(p.column, p.literal);
      return true;
    case query::CompareOp::kNe:
      *out = query::Predicate::Eq(p.column, p.literal);
      return true;
    case query::CompareOp::kEq:
    case query::CompareOp::kIn:
      return false;
  }
  return false;
}

/// Positive conjunction usable by the SPN: positive constraints verbatim,
/// negated range constraints flipped, unrepresentable negations dropped
/// (conservative overestimate).
query::Conjunction ToEstimable(const std::vector<SignedPredicate>& constraints) {
  query::Conjunction out;
  for (const auto& [predicate, positive] : constraints) {
    if (positive) {
      out.Add(predicate);
    } else {
      query::Predicate negated;
      if (NegateRange(predicate, &negated)) out.Add(negated);
    }
  }
  return out;
}

/// Per-column interval bound built from predicates.
struct Bound {
  std::optional<format::Value> lo;
  bool lo_strict = false;
  std::optional<format::Value> hi;
  bool hi_strict = false;
  bool impossible = false;

  void TightenLo(const format::Value& v, bool strict) {
    if (!lo || format::CompareValues(v, *lo) > 0 ||
        (format::CompareValues(v, *lo) == 0 && strict)) {
      lo = v;
      lo_strict = strict;
    }
  }
  void TightenHi(const format::Value& v, bool strict) {
    if (!hi || format::CompareValues(v, *hi) < 0 ||
        (format::CompareValues(v, *hi) == 0 && strict)) {
      hi = v;
      hi_strict = strict;
    }
  }
  bool Empty() const {
    if (impossible) return true;
    if (!lo || !hi) return false;
    int c = format::CompareValues(*lo, *hi);
    if (c > 0) return true;
    return c == 0 && (lo_strict || hi_strict);
  }
};

void ApplyPredicate(const query::Predicate& p, bool positive,
                    std::map<std::string, Bound>* bounds) {
  Bound& bound = (*bounds)[p.column];
  if (positive) {
    switch (p.op) {
      case query::CompareOp::kLe:
        bound.TightenHi(p.literal, false);
        return;
      case query::CompareOp::kLt:
        bound.TightenHi(p.literal, true);
        return;
      case query::CompareOp::kGe:
        bound.TightenLo(p.literal, false);
        return;
      case query::CompareOp::kGt:
        bound.TightenLo(p.literal, true);
        return;
      case query::CompareOp::kEq:
        bound.TightenLo(p.literal, false);
        bound.TightenHi(p.literal, false);
        return;
      case query::CompareOp::kIn: {
        if (p.in_list.empty()) {
          bound.impossible = true;
          return;
        }
        // Conservative interval hull of the IN set.
        const format::Value* mn = &p.in_list[0];
        const format::Value* mx = &p.in_list[0];
        for (const format::Value& v : p.in_list) {
          if (format::CompareValues(v, *mn) < 0) mn = &v;
          if (format::CompareValues(v, *mx) > 0) mx = &v;
        }
        bound.TightenLo(*mn, false);
        bound.TightenHi(*mx, false);
        return;
      }
      case query::CompareOp::kNe:
        // Excludes a single point: no interval bound to tighten.
        return;
    }
    return;
  }
  // Negated constraint: only range negations produce bounds.
  query::Predicate negated;
  if (NegateRange(p, &negated)) {
    ApplyPredicate(negated, true, bounds);
  }
}

}  // namespace

bool ConstraintsContradict(const std::vector<SignedPredicate>& constraints,
                           const query::Conjunction& where) {
  std::map<std::string, Bound> bounds;
  for (const auto& [predicate, positive] : constraints) {
    ApplyPredicate(predicate, positive, &bounds);
  }
  for (const query::Predicate& predicate : where.predicates()) {
    ApplyPredicate(predicate, true, &bounds);
  }
  // Exact Eq-vs-(constraint Eq / negated Eq / In) refinements.
  for (const query::Predicate& qp : where.predicates()) {
    if (qp.op != query::CompareOp::kEq) continue;
    for (const auto& [cp, positive] : constraints) {
      if (cp.column != qp.column) continue;
      if (!positive && cp.op == query::CompareOp::kEq &&
          format::CompareValues(cp.literal, qp.literal) == 0) {
        return true;  // constraint says != v, query says == v
      }
      if (positive && cp.op == query::CompareOp::kIn) {
        bool in = false;
        for (const format::Value& v : cp.in_list) {
          if (format::CompareValues(v, qp.literal) == 0) in = true;
        }
        if (!in) return true;
      }
    }
  }
  for (const auto& [column, bound] : bounds) {
    if (bound.Empty()) return true;
  }
  return false;
}

Result<QdTree> QdTree::Build(const format::Schema& schema,
                             const std::vector<query::Conjunction>& workload,
                             const SumProductNetwork& estimator,
                             uint64_t total_rows, QdTreeOptions options) {
  // Candidate cuts: every distinct predicate in the workload.
  std::vector<query::Predicate> candidates;
  std::set<std::string> seen;
  for (const query::Conjunction& q : workload) {
    for (const query::Predicate& p : q.predicates()) {
      if (schema.FieldIndex(p.column) < 0) {
        return Status::InvalidArgument("workload column not in schema: " +
                                       p.column);
      }
      if (seen.insert(p.ToString()).second) candidates.push_back(p);
    }
  }

  QdTree tree;
  tree.schema_ = schema;
  tree.root_ = std::make_unique<Node>();
  tree.num_leaves_ = 1;

  struct Frame {
    Node* node;
    std::vector<SignedPredicate> constraints;
    uint64_t card;
  };
  std::vector<Frame> frontier;
  frontier.push_back(Frame{tree.root_.get(), {}, total_rows});

  // Greedy best-first: repeatedly split the frontier node whose best cut
  // yields the largest workload-wide skipping gain.
  while (tree.num_leaves_ < options.max_leaves) {
    double best_gain = 0;
    size_t best_frame = SIZE_MAX;
    const query::Predicate* best_cut = nullptr;
    uint64_t best_left_card = 0, best_right_card = 0;
    std::vector<SignedPredicate> best_left_c, best_right_c;

    for (size_t f = 0; f < frontier.size(); ++f) {
      const Frame& frame = frontier[f];
      if (frame.card < 2 * options.min_partition_rows) continue;
      // Queries that already skip this node gain nothing from any cut.
      std::vector<const query::Conjunction*> active;
      for (const query::Conjunction& q : workload) {
        if (!ConstraintsContradict(frame.constraints, q)) active.push_back(&q);
      }
      if (active.empty()) continue;
      for (const query::Predicate& cut : candidates) {
        std::vector<SignedPredicate> left_c = frame.constraints;
        left_c.emplace_back(cut, true);
        std::vector<SignedPredicate> right_c = frame.constraints;
        right_c.emplace_back(cut, false);
        uint64_t left_card =
            estimator.EstimateCardinality(ToEstimable(left_c), total_rows);
        uint64_t right_card = frame.card > left_card
                                  ? frame.card - left_card
                                  : 0;
        if (left_card < options.min_partition_rows ||
            right_card < options.min_partition_rows) {
          continue;
        }
        double gain = 0;
        for (const query::Conjunction* q : active) {
          if (ConstraintsContradict(left_c, *q)) gain += left_card;
          if (ConstraintsContradict(right_c, *q)) gain += right_card;
        }
        if (gain > best_gain) {
          best_gain = gain;
          best_frame = f;
          best_cut = &cut;
          best_left_card = left_card;
          best_right_card = right_card;
          best_left_c = left_c;
          best_right_c = right_c;
        }
      }
    }
    if (best_frame == SIZE_MAX || best_gain <= 0) break;

    Frame frame = frontier[best_frame];
    frontier.erase(frontier.begin() + best_frame);
    frame.node->is_leaf = false;
    frame.node->cut = *best_cut;
    frame.node->left = std::make_unique<Node>();
    frame.node->right = std::make_unique<Node>();
    frontier.push_back(Frame{frame.node->left.get(), best_left_c,
                             best_left_card});
    frontier.push_back(Frame{frame.node->right.get(), best_right_c,
                             best_right_card});
    ++tree.num_leaves_;
  }

  // Assign dense leaf ids and record cardinalities (DFS order).
  tree.leaf_cards_.clear();
  std::function<void(Node*, std::vector<SignedPredicate>&)> number =
      [&](Node* node, std::vector<SignedPredicate>& constraints) {
        if (node->is_leaf) {
          node->leaf_id = static_cast<int>(tree.leaf_cards_.size());
          tree.leaf_cards_.push_back(estimator.EstimateCardinality(
              ToEstimable(constraints), total_rows));
          return;
        }
        constraints.emplace_back(node->cut, true);
        number(node->left.get(), constraints);
        constraints.back().second = false;
        number(node->right.get(), constraints);
        constraints.pop_back();
      };
  std::vector<SignedPredicate> constraints;
  number(tree.root_.get(), constraints);
  tree.num_leaves_ = tree.leaf_cards_.size();
  return tree;
}

int QdTree::AssignRow(const format::Row& row) const {
  const Node* node = root_.get();
  while (!node->is_leaf) {
    int col = schema_.FieldIndex(node->cut.column);
    bool satisfies = col >= 0 && node->cut.Matches(row.fields[col]);
    node = satisfies ? node->left.get() : node->right.get();
  }
  return node->leaf_id;
}

std::vector<int> QdTree::MatchingLeaves(const query::Conjunction& where) const {
  std::vector<int> leaves;
  std::vector<SignedPredicate> constraints;
  std::function<void(const Node*)> walk = [&](const Node* node) {
    if (ConstraintsContradict(constraints, where)) return;
    if (node->is_leaf) {
      leaves.push_back(node->leaf_id);
      return;
    }
    constraints.emplace_back(node->cut, true);
    walk(node->left.get());
    constraints.back().second = false;
    walk(node->right.get());
    constraints.pop_back();
  };
  walk(root_.get());
  return leaves;
}

}  // namespace streamlake::lakebrain
