#ifndef STREAMLAKE_LAKEBRAIN_DQN_H_
#define STREAMLAKE_LAKEBRAIN_DQN_H_

#include <deque>
#include <vector>

#include "lakebrain/mlp.h"

namespace streamlake::lakebrain {

struct DqnOptions {
  int state_dim = 8;
  int num_actions = 2;
  std::vector<int> hidden = {32, 32};
  double learning_rate = 1e-3;
  double gamma = 0.9;  // discount: compaction optimizes long-term reward
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  int epsilon_decay_steps = 2000;
  size_t replay_capacity = 20000;
  size_t batch_size = 32;
  int target_sync_interval = 250;
  uint64_t seed = 17;
};

/// \brief Deep Q-Network agent [44][45]: experience replay + target
/// network + epsilon-greedy exploration. LakeBrain's automatic compaction
/// policy network (Section VI-A).
class DqnAgent {
 public:
  explicit DqnAgent(DqnOptions options);

  /// Epsilon-greedy action for training.
  int SelectAction(const std::vector<double>& state);

  /// Greedy (inference) action.
  int GreedyAction(const std::vector<double>& state) const;

  /// Q-values of a state (diagnostics).
  std::vector<double> QValues(const std::vector<double>& state) const;

  /// Store one transition; `done` ends the episode bootstrap.
  void Observe(const std::vector<double>& state, int action, double reward,
               const std::vector<double>& next_state, bool done);

  /// One replay-batch gradient step (no-op until the buffer has a batch).
  void TrainStep();

  double epsilon() const;
  uint64_t steps() const { return steps_; }
  size_t replay_size() const { return replay_.size(); }

 private:
  struct Transition {
    std::vector<double> state;
    int action;
    double reward;
    std::vector<double> next_state;
    bool done;
  };

  DqnOptions options_;
  Mlp online_;
  Mlp target_;
  Random rng_;
  std::deque<Transition> replay_;
  uint64_t steps_ = 0;
  uint64_t train_steps_ = 0;
};

}  // namespace streamlake::lakebrain

#endif  // STREAMLAKE_LAKEBRAIN_DQN_H_
