#ifndef STREAMLAKE_LAKEBRAIN_COMPACTION_H_
#define STREAMLAKE_LAKEBRAIN_COMPACTION_H_

#include <map>
#include <string>

#include "lakebrain/dqn.h"
#include "table/table.h"

namespace streamlake::lakebrain {

/// Block utilization at one state (Section VI-A):
///   sum(f_i) / (K * sum(ceil(f_i / K)))
/// where f_i are file sizes and K the block size. Low utilization means
/// many blocks hold small-file tails.
double BlockUtilization(const std::vector<uint64_t>& file_sizes,
                        uint64_t block_size);

/// Features describing the entire storage system (one half of the DQN
/// state; Section VI-A lists "target file size, ingestion speed, query
/// patterns, global block utilization").
struct GlobalFeatures {
  double target_file_bytes = 4 * 1024 * 1024;
  double ingestion_files_per_sec = 0;
  double concurrent_queries = 0;
  double global_block_utilization = 1.0;
};

/// Per-partition features (the other half: "data access frequency, data
/// access ordering, block utilization of the partition").
struct PartitionFeatures {
  double file_count = 0;
  double small_file_count = 0;
  double access_frequency = 0;
  double partition_utilization = 1.0;
};

/// Concatenated, normalized DQN input.
std::vector<double> BuildStateVector(const GlobalFeatures& global,
                                     const PartitionFeatures& partition);

/// Compute partition features from live file metadata.
PartitionFeatures ComputePartitionFeatures(
    const std::vector<table::DataFileMeta>& files, const std::string& partition,
    uint64_t block_size, double access_frequency);

struct CompactionDecision {
  bool attempted = false;   // the agent chose to compact
  bool succeeded = false;
  bool conflicted = false;  // commit conflict with concurrent ingestion
  double reward = 0;
  double utilization_before = 0;
  double utilization_after = 0;
  uint64_t files_merged = 0;
};

/// \brief The RL auto-compaction agent of Fig. 10: per partition, decide
/// compact-or-not from system+partition state, execute binpack compaction
/// through the table, and learn from the observed reward.
class AutoCompactionAgent {
 public:
  struct Options {
    uint64_t block_size = 1 << 20;
    /// Fixed resource cost charged against a successful compaction's
    /// utilization gain ("compaction consumes a relatively large amount
    /// of computing resources").
    double compaction_cost = 0.05;
    bool training = true;
    DqnOptions dqn;
  };

  explicit AutoCompactionAgent(Options options);

  /// Evaluate `partition` and act. `base_snapshot_id` is the snapshot the
  /// compaction plan is built on — the environment passes a stale base to
  /// model planning/commit races (0 = current head, no race).
  Result<CompactionDecision> Step(table::Table* table,
                                  const std::string& partition,
                                  const GlobalFeatures& global,
                                  double access_frequency = 0,
                                  uint64_t base_snapshot_id = 0);

  /// Estimated utilization gain of binpacking the partition's small files.
  static double ExpectedImprovement(
      const std::vector<table::DataFileMeta>& files,
      const std::string& partition, uint64_t block_size,
      uint64_t target_file_bytes);

  void set_training(bool training) { options_.training = training; }
  DqnAgent& agent() { return agent_; }

 private:
  Options options_;
  DqnAgent agent_;
};

/// \brief The rule-based baseline ("Default-compaction"): compact every
/// partition on a fixed interval (the paper's static 30-second strategy).
class DefaultCompactor {
 public:
  DefaultCompactor(table::Table* table, double interval_seconds)
      : table_(table), interval_seconds_(interval_seconds) {}

  /// Compact all partitions if the interval has elapsed. Returns how many
  /// partitions were compacted (conflicts counted separately).
  /// `base_snapshot_id` is the snapshot the job planned on (0 = plan at
  /// run start); ingestion landing after the plan conflicts, the failure
  /// mode Section VI-A describes for static strategies.
  struct RunStats {
    uint64_t partitions_compacted = 0;
    uint64_t conflicts = 0;
    bool ran = false;
  };
  Result<RunStats> MaybeRun(double now_seconds, uint64_t base_snapshot_id = 0);

 private:
  table::Table* table_;
  double interval_seconds_;
  double last_run_seconds_ = -1e18;
};

}  // namespace streamlake::lakebrain

#endif  // STREAMLAKE_LAKEBRAIN_COMPACTION_H_
