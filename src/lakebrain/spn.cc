#include "lakebrain/spn.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>

#include "common/random.h"

namespace streamlake::lakebrain {

namespace {

/// Numeric projection of a value for correlation / clustering. Strings
/// hash to a stable pseudo-rank (adequate for independence testing).
double Numeric(const format::Value& v) {
  switch (format::TypeOf(v)) {
    case format::DataType::kBool:
      return std::get<bool>(v) ? 1.0 : 0.0;
    case format::DataType::kInt64:
      return static_cast<double>(std::get<int64_t>(v));
    case format::DataType::kDouble:
      return std::get<double>(v);
    case format::DataType::kString: {
      const std::string& s = std::get<std::string>(v);
      double acc = 0;
      for (size_t i = 0; i < s.size() && i < 8; ++i) {
        acc = acc * 0.3 + s[i];
      }
      return acc;
    }
  }
  return 0;
}

/// Prior selectivity of one predicate from observed column stats, for
/// smoothing a zero sample estimate. 0 = no usable prior (zero stands).
double PriorSelectivity(const query::Predicate& p, const ColumnPrior& prior) {
  switch (p.op) {
    case query::CompareOp::kEq:
      return prior.ndv > 0 ? 1.0 / static_cast<double>(prior.ndv) : 0.0;
    case query::CompareOp::kIn:
      return prior.ndv > 0
                 ? std::min(1.0, static_cast<double>(p.in_list.size()) /
                                     static_cast<double>(prior.ndv))
                 : 0.0;
    case query::CompareOp::kIsNull:
      return prior.null_fraction;
    case query::CompareOp::kIsNotNull:
      return 1.0 - prior.null_fraction;
    default:
      return 0.0;  // range predicates: footer stats carry no density shape
  }
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  const size_t n = a.size();
  if (n < 2) return 0;
  double ma = 0, mb = 0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0, va = 0, vb = 0;
  for (size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va == 0 || vb == 0) return 0;
  return cov / std::sqrt(va * vb);
}

}  // namespace

struct SumProductNetwork::Node {
  enum class Type { kSum, kProduct, kLeaf };
  Type type = Type::kLeaf;

  // Sum: weighted children over the same columns.
  std::vector<std::shared_ptr<Node>> children;
  std::vector<double> weights;

  // Product: children over disjoint column sets; Leaf: a single group.
  // Leaf payload: per-column retained samples.
  std::vector<int> columns;                        // leaf columns
  std::vector<std::vector<format::Value>> samples;  // parallel to columns

  double Evaluate(const format::Schema& schema, const query::Conjunction& where,
                  const std::vector<ColumnPrior>& priors) const {
    switch (type) {
      case Type::kSum: {
        double acc = 0;
        for (size_t c = 0; c < children.size(); ++c) {
          acc += weights[c] * children[c]->Evaluate(schema, where, priors);
        }
        return acc;
      }
      case Type::kProduct: {
        double acc = 1.0;
        for (const auto& child : children) {
          acc *= child->Evaluate(schema, where, priors);
        }
        return acc;
      }
      case Type::kLeaf: {
        // Joint evaluation over this leaf's columns: fraction of retained
        // samples satisfying every predicate on those columns.
        std::vector<const query::Predicate*> relevant;
        std::vector<int> pred_col;     // index into `columns`
        std::vector<int> pred_schema;  // schema column, for priors
        for (const query::Predicate& predicate : where.predicates()) {
          int schema_col = schema.FieldIndex(predicate.column);
          for (size_t c = 0; c < columns.size(); ++c) {
            if (columns[c] == schema_col) {
              relevant.push_back(&predicate);
              pred_col.push_back(static_cast<int>(c));
              pred_schema.push_back(schema_col);
            }
          }
        }
        if (relevant.empty()) return 1.0;
        size_t n = samples.empty() ? 0 : samples[0].size();
        if (n == 0) return 1.0;
        size_t matching = 0;
        for (size_t i = 0; i < n; ++i) {
          bool ok = true;
          for (size_t p = 0; p < relevant.size(); ++p) {
            if (!relevant[p]->Matches(samples[pred_col[p]][i])) {
              ok = false;
              break;
            }
          }
          if (ok) ++matching;
        }
        if (matching == 0 && !priors.empty()) {
          // The sample cannot distinguish "rare" from "absent". Smooth the
          // zero with footer-stat priors (product across predicates, under
          // the leaf's independence-within-group approximation), capped at
          // the resolution the sample can actually support.
          double floor = 1.0;
          for (size_t p = 0; p < relevant.size(); ++p) {
            size_t sc = static_cast<size_t>(pred_schema[p]);
            double sel = sc < priors.size()
                             ? PriorSelectivity(*relevant[p], priors[sc])
                             : 0.0;
            floor *= sel;
          }
          return std::min(floor, 1.0 / static_cast<double>(n + 1));
        }
        return static_cast<double>(matching) / n;
      }
    }
    return 1.0;
  }

  size_t CountNodes() const {
    size_t total = 1;
    for (const auto& child : children) total += child->CountNodes();
    return total;
  }
};

namespace {

using Node = SumProductNetwork::Node;

std::shared_ptr<Node> MakeLeaf(const std::vector<format::Row>& rows,
                               const std::vector<int>& columns,
                               const SpnOptions& options, Random* rng) {
  auto leaf = std::make_shared<Node>();
  leaf->type = Node::Type::kLeaf;
  leaf->columns = columns;
  leaf->samples.resize(columns.size());
  // Reservoir-sample row indices so joint structure is preserved.
  std::vector<size_t> picked;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (picked.size() < options.leaf_sample_cap) {
      picked.push_back(i);
    } else {
      size_t j = rng->Uniform(i + 1);
      if (j < picked.size()) picked[j] = i;
    }
  }
  for (size_t c = 0; c < columns.size(); ++c) {
    leaf->samples[c].reserve(picked.size());
    for (size_t i : picked) {
      leaf->samples[c].push_back(rows[i].fields[columns[c]]);
    }
  }
  return leaf;
}

std::shared_ptr<Node> Learn(const std::vector<format::Row>& rows,
                            const std::vector<int>& columns, int depth,
                            const SpnOptions& options, Random* rng);

/// 2-means over the rows' numeric projection of `columns`.
std::shared_ptr<Node> LearnSum(const std::vector<format::Row>& rows,
                               const std::vector<int>& columns, int depth,
                               const SpnOptions& options, Random* rng) {
  const size_t n = rows.size();
  // Normalize per-column to [0,1] for distance computations.
  std::vector<std::vector<double>> proj(n, std::vector<double>(columns.size()));
  for (size_t c = 0; c < columns.size(); ++c) {
    double lo = 1e300, hi = -1e300;
    for (size_t i = 0; i < n; ++i) {
      double v = Numeric(rows[i].fields[columns[c]]);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    double span = hi > lo ? hi - lo : 1.0;
    for (size_t i = 0; i < n; ++i) {
      proj[i][c] = (Numeric(rows[i].fields[columns[c]]) - lo) / span;
    }
  }
  std::vector<double> c0 = proj[rng->Uniform(n)];
  std::vector<double> c1 = proj[rng->Uniform(n)];
  std::vector<int> assign(n, 0);
  for (int iter = 0; iter < 8; ++iter) {
    for (size_t i = 0; i < n; ++i) {
      double d0 = 0, d1 = 0;
      for (size_t c = 0; c < columns.size(); ++c) {
        d0 += (proj[i][c] - c0[c]) * (proj[i][c] - c0[c]);
        d1 += (proj[i][c] - c1[c]) * (proj[i][c] - c1[c]);
      }
      assign[i] = d1 < d0 ? 1 : 0;
    }
    std::vector<double> s0(columns.size(), 0), s1(columns.size(), 0);
    size_t n0 = 0, n1 = 0;
    for (size_t i = 0; i < n; ++i) {
      auto& s = assign[i] ? s1 : s0;
      for (size_t c = 0; c < columns.size(); ++c) s[c] += proj[i][c];
      (assign[i] ? n1 : n0) += 1;
    }
    if (n0 == 0 || n1 == 0) break;
    for (size_t c = 0; c < columns.size(); ++c) {
      c0[c] = s0[c] / n0;
      c1[c] = s1[c] / n1;
    }
  }
  std::vector<format::Row> left, right;
  for (size_t i = 0; i < n; ++i) {
    (assign[i] ? right : left).push_back(rows[i]);
  }
  if (left.empty() || right.empty()) {
    return MakeLeaf(rows, columns, options, rng);  // degenerate cluster
  }
  auto node = std::make_shared<Node>();
  node->type = Node::Type::kSum;
  node->children.push_back(Learn(left, columns, depth + 1, options, rng));
  node->children.push_back(Learn(right, columns, depth + 1, options, rng));
  node->weights = {static_cast<double>(left.size()) / n,
                   static_cast<double>(right.size()) / n};
  return node;
}

std::shared_ptr<Node> Learn(const std::vector<format::Row>& rows,
                            const std::vector<int>& columns, int depth,
                            const SpnOptions& options, Random* rng) {
  if (rows.size() < options.min_instances || depth >= options.max_depth ||
      columns.size() == 1) {
    return MakeLeaf(rows, columns, options, rng);
  }

  // Independence test: group columns by |Pearson corr| > threshold.
  std::vector<std::vector<double>> proj(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    proj[c].reserve(rows.size());
    for (const format::Row& row : rows) {
      proj[c].push_back(Numeric(row.fields[columns[c]]));
    }
  }
  // Union-find over columns.
  std::vector<size_t> parent(columns.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    return parent[x] == x ? x : parent[x] = find(parent[x]);
  };
  for (size_t a = 0; a < columns.size(); ++a) {
    for (size_t b = a + 1; b < columns.size(); ++b) {
      if (std::fabs(PearsonCorrelation(proj[a], proj[b])) >
          options.correlation_threshold) {
        parent[find(a)] = find(b);
      }
    }
  }
  std::map<size_t, std::vector<int>> groups;
  for (size_t c = 0; c < columns.size(); ++c) {
    groups[find(c)].push_back(columns[c]);
  }

  if (groups.size() > 1) {
    auto node = std::make_shared<Node>();
    node->type = Node::Type::kProduct;
    for (auto& [root, group_columns] : groups) {
      node->children.push_back(
          Learn(rows, group_columns, depth + 1, options, rng));
    }
    return node;
  }
  // All columns dependent: split rows instead.
  return LearnSum(rows, columns, depth, options, rng);
}

}  // namespace

Result<SumProductNetwork> SumProductNetwork::Train(
    const format::Schema& schema, const std::vector<format::Row>& sample,
    SpnOptions options) {
  if (sample.empty()) {
    return Status::InvalidArgument("SPN needs a non-empty training sample");
  }
  for (const format::Row& row : sample) {
    SL_RETURN_NOT_OK(schema.ValidateRow(row));
  }
  std::vector<int> columns;
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    columns.push_back(static_cast<int>(c));
  }
  Random rng(options.seed);
  SumProductNetwork spn;
  spn.schema_ = schema;
  spn.priors_ = options.priors;
  spn.root_ = Learn(sample, columns, 0, options, &rng);
  return spn;
}

double SumProductNetwork::EstimateSelectivity(
    const query::Conjunction& where) const {
  if (root_ == nullptr) return 1.0;
  double p = root_->Evaluate(schema_, where, priors_);
  return std::clamp(p, 0.0, 1.0);
}

uint64_t SumProductNetwork::EstimateCardinality(
    const query::Conjunction& where, uint64_t total_rows) const {
  return static_cast<uint64_t>(EstimateSelectivity(where) * total_rows + 0.5);
}

size_t SumProductNetwork::num_nodes() const {
  return root_ == nullptr ? 0 : root_->CountNodes();
}

}  // namespace streamlake::lakebrain
