#include "lakebrain/compaction.h"

#include <cmath>
#include <set>

#include "common/metrics.h"

namespace streamlake::lakebrain {

double BlockUtilization(const std::vector<uint64_t>& file_sizes,
                        uint64_t block_size) {
  if (file_sizes.empty()) return 1.0;
  double used = 0;
  double allocated = 0;
  for (uint64_t f : file_sizes) {
    if (f == 0) continue;
    used += static_cast<double>(f);
    allocated += static_cast<double>(block_size) *
                 ((f + block_size - 1) / block_size);
  }
  return allocated == 0 ? 1.0 : used / allocated;
}

std::vector<double> BuildStateVector(const GlobalFeatures& global,
                                     const PartitionFeatures& partition) {
  // log1p-normalize counts/rates so the network sees O(1) inputs.
  auto squash = [](double v) { return std::log1p(std::max(0.0, v)); };
  return {
      squash(global.target_file_bytes / (1 << 20)),
      squash(global.ingestion_files_per_sec),
      squash(global.concurrent_queries),
      global.global_block_utilization,
      squash(partition.file_count),
      squash(partition.small_file_count),
      squash(partition.access_frequency),
      partition.partition_utilization,
  };
}

PartitionFeatures ComputePartitionFeatures(
    const std::vector<table::DataFileMeta>& files, const std::string& partition,
    uint64_t block_size, double access_frequency) {
  PartitionFeatures features;
  features.access_frequency = access_frequency;
  std::vector<uint64_t> sizes;
  for (const table::DataFileMeta& f : files) {
    if (f.partition != partition) continue;
    features.file_count += 1;
    if (f.file_bytes < block_size) features.small_file_count += 1;
    sizes.push_back(f.file_bytes);
  }
  features.partition_utilization = BlockUtilization(sizes, block_size);
  return features;
}

double AutoCompactionAgent::ExpectedImprovement(
    const std::vector<table::DataFileMeta>& files, const std::string& partition,
    uint64_t block_size, uint64_t target_file_bytes) {
  std::vector<uint64_t> before;
  uint64_t small_bytes = 0;
  std::vector<uint64_t> after;
  for (const table::DataFileMeta& f : files) {
    if (f.partition != partition) continue;
    before.push_back(f.file_bytes);
    if (f.file_bytes < target_file_bytes) {
      small_bytes += f.file_bytes;
    } else {
      after.push_back(f.file_bytes);
    }
  }
  // Binpack estimate: small files merge into ceil(total/target) files.
  while (small_bytes > 0) {
    uint64_t take = std::min<uint64_t>(small_bytes, target_file_bytes);
    after.push_back(take);
    small_bytes -= take;
  }
  return BlockUtilization(after, block_size) -
         BlockUtilization(before, block_size);
}

AutoCompactionAgent::AutoCompactionAgent(Options options)
    : options_(options), agent_(options.dqn) {}

Result<CompactionDecision> AutoCompactionAgent::Step(
    table::Table* table, const std::string& partition,
    const GlobalFeatures& global, double access_frequency,
    uint64_t base_snapshot_id) {
  SL_ASSIGN_OR_RETURN(auto files, table->LiveFiles());
  PartitionFeatures features = ComputePartitionFeatures(
      files, partition, options_.block_size, access_frequency);
  std::vector<double> state = BuildStateVector(global, features);

  static Counter* steps =
      MetricsRegistry::Global().GetCounter("lakebrain.compaction.steps");
  static Counter* attempts =
      MetricsRegistry::Global().GetCounter("lakebrain.compaction.attempts");
  static Counter* successes =
      MetricsRegistry::Global().GetCounter("lakebrain.compaction.successes");
  static Counter* conflicts =
      MetricsRegistry::Global().GetCounter("lakebrain.compaction.conflicts");
  static Counter* files_merged =
      MetricsRegistry::Global().GetCounter("lakebrain.compaction.files_merged");
  steps->Increment();

  int action = options_.training ? agent_.SelectAction(state)
                                 : agent_.GreedyAction(state);
  CompactionDecision decision;
  decision.utilization_before = features.partition_utilization;

  double expected = ExpectedImprovement(
      files, partition, options_.block_size,
      static_cast<uint64_t>(global.target_file_bytes));

  if (action == 1) {
    decision.attempted = true;
    attempts->Increment();
    auto result = table->CompactPartition(partition, base_snapshot_id);
    if (result.ok()) {
      decision.succeeded = true;
      successes->Increment();
      decision.files_merged = result->files_before;
      files_merged->Increment(result->files_before);
      SL_ASSIGN_OR_RETURN(auto new_files, table->LiveFiles());
      PartitionFeatures after = ComputePartitionFeatures(
          new_files, partition, options_.block_size, access_frequency);
      decision.utilization_after = after.partition_utilization;
      // Reward: the utilization improvement, minus the fixed cost of
      // running a compaction.
      decision.reward = (decision.utilization_after -
                         decision.utilization_before) -
                        options_.compaction_cost;
    } else if (result.status().IsConflict()) {
      decision.conflicted = true;
      conflicts->Increment();
      decision.utilization_after = decision.utilization_before;
      // "If it fails, the reward is the minus of (1 - the expected
      // improvement of the block utilization)."
      decision.reward = -(1.0 - expected);
    } else {
      return result.status();
    }
  } else {
    decision.utilization_after = decision.utilization_before;
    decision.reward = 0;
  }

  if (options_.training) {
    SL_ASSIGN_OR_RETURN(auto next_files, table->LiveFiles());
    PartitionFeatures next_features = ComputePartitionFeatures(
        next_files, partition, options_.block_size, access_frequency);
    std::vector<double> next_state = BuildStateVector(global, next_features);
    agent_.Observe(state, action, decision.reward, next_state, false);
    agent_.TrainStep();
  }
  return decision;
}

Result<DefaultCompactor::RunStats> DefaultCompactor::MaybeRun(
    double now_seconds, uint64_t base_snapshot_id) {
  RunStats stats;
  if (now_seconds - last_run_seconds_ < interval_seconds_) return stats;
  last_run_seconds_ = now_seconds;
  stats.ran = true;
  // The rule-based job plans once, then rewrites partition by partition;
  // ingestion landing after the plan conflicts.
  uint64_t base_snapshot = base_snapshot_id;
  if (base_snapshot == 0) {
    SL_ASSIGN_OR_RETURN(table::TableInfo info, table_->Info());
    base_snapshot = info.current_snapshot_id;
  }
  SL_ASSIGN_OR_RETURN(auto files, table_->LiveFiles());
  std::set<std::string> partitions;
  for (const table::DataFileMeta& f : files) partitions.insert(f.partition);
  for (const std::string& partition : partitions) {
    auto result = table_->CompactPartition(partition, base_snapshot);
    if (result.ok()) {
      if (result->files_before > result->files_after) {
        ++stats.partitions_compacted;
      }
    } else if (result.status().IsConflict()) {
      ++stats.conflicts;
    } else {
      return result.status();
    }
  }
  return stats;
}

}  // namespace streamlake::lakebrain
