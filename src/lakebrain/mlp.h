#ifndef STREAMLAKE_LAKEBRAIN_MLP_H_
#define STREAMLAKE_LAKEBRAIN_MLP_H_

#include <vector>

#include "common/random.h"

namespace streamlake::lakebrain {

/// \brief Small fully-connected network with ReLU hidden layers and a
/// linear output — the policy/value network of the DQN compaction agent
/// (Fig. 10). Implemented from scratch: forward, backprop, SGD.
class Mlp {
 public:
  /// `layer_sizes` = {input, hidden..., output}. He-initialized.
  Mlp(std::vector<int> layer_sizes, uint64_t seed);

  /// Forward pass; returns the output activations.
  std::vector<double> Forward(const std::vector<double>& input) const;

  /// One SGD step on loss 0.5 * (output[index] - target)^2 — the standard
  /// Q-learning update where only the taken action's head gets gradient.
  void TrainStep(const std::vector<double>& input, int output_index,
                 double target, double learning_rate);

  /// Copy all weights from `other` (target-network sync).
  void CopyFrom(const Mlp& other);

  int input_size() const { return layer_sizes_.front(); }
  int output_size() const { return layer_sizes_.back(); }

 private:
  struct Layer {
    // weights[out][in], biases[out]
    std::vector<std::vector<double>> weights;
    std::vector<double> biases;
  };

  /// Forward keeping every layer's activations for backprop.
  std::vector<std::vector<double>> ForwardAll(
      const std::vector<double>& input) const;

  std::vector<int> layer_sizes_;
  std::vector<Layer> layers_;
};

}  // namespace streamlake::lakebrain

#endif  // STREAMLAKE_LAKEBRAIN_MLP_H_
