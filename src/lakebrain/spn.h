#ifndef STREAMLAKE_LAKEBRAIN_SPN_H_
#define STREAMLAKE_LAKEBRAIN_SPN_H_

#include <memory>
#include <vector>

#include "format/schema.h"
#include "query/predicate.h"

namespace streamlake::lakebrain {

/// Observed per-column data characteristics (e.g. aggregated from live-file
/// footer stats via table::Table::AggregateFooterStats), used as smoothing
/// priors: when a leaf's retained sample resolves a predicate to zero,
/// equality/IN fall back to a 1/ndv floor and IS [NOT] NULL to the observed
/// NULL fraction, instead of a hard zero the sample cannot justify.
struct ColumnPrior {
  uint64_t ndv = 0;            // distinct non-NULL values; 0 = unknown
  double null_fraction = 0.0;  // fraction of NULL rows
};

struct SpnOptions {
  /// Stop structure learning below this many rows (leaf).
  size_t min_instances = 256;
  int max_depth = 10;
  /// |Pearson correlation| below which columns are treated as independent
  /// (product split).
  double correlation_threshold = 0.3;
  /// Samples retained per leaf column for selectivity evaluation.
  size_t leaf_sample_cap = 512;
  uint64_t seed = 23;
  /// Index parallels the schema; empty = no priors (zero stays zero).
  std::vector<ColumnPrior> priors;
};

/// \brief Sum-product network cardinality estimator [12] — LakeBrain's
/// learned estimator for predicate-aware partitioning (Section VI-B).
///
/// Structure learning follows the classic recipe: product nodes split
/// independent column groups (low pairwise correlation), sum nodes split
/// row clusters (2-means), and leaves keep per-column sample histograms.
/// Selectivity of a pushdown conjunction is evaluated bottom-up.
class SumProductNetwork {
 public:
  /// Learn from a sample of rows (the paper trains on 3% of lineitem).
  static Result<SumProductNetwork> Train(const format::Schema& schema,
                                         const std::vector<format::Row>& sample,
                                         SpnOptions options = SpnOptions());

  /// P(row satisfies `where`), in [0, 1].
  double EstimateSelectivity(const query::Conjunction& where) const;

  /// Selectivity scaled to a table size.
  uint64_t EstimateCardinality(const query::Conjunction& where,
                               uint64_t total_rows) const;

  size_t num_nodes() const;

  struct Node;  // public so the learner in spn.cc can build the tree

 private:
  SumProductNetwork() = default;

  format::Schema schema_;
  std::shared_ptr<Node> root_;
  std::vector<ColumnPrior> priors_;  // copied from SpnOptions at Train
};

}  // namespace streamlake::lakebrain

#endif  // STREAMLAKE_LAKEBRAIN_SPN_H_
