#include "lakebrain/dqn.h"

#include <algorithm>

namespace streamlake::lakebrain {

namespace {

std::vector<int> LayerSizes(const DqnOptions& options) {
  std::vector<int> sizes;
  sizes.push_back(options.state_dim);
  for (int h : options.hidden) sizes.push_back(h);
  sizes.push_back(options.num_actions);
  return sizes;
}

}  // namespace

DqnAgent::DqnAgent(DqnOptions options)
    : options_(options),
      online_(LayerSizes(options), options.seed),
      target_(LayerSizes(options), options.seed),
      rng_(options.seed ^ 0xD1CE) {
  target_.CopyFrom(online_);
}

double DqnAgent::epsilon() const {
  double progress = std::min<double>(
      1.0, static_cast<double>(steps_) / options_.epsilon_decay_steps);
  return options_.epsilon_start +
         progress * (options_.epsilon_end - options_.epsilon_start);
}

int DqnAgent::SelectAction(const std::vector<double>& state) {
  ++steps_;
  if (rng_.NextDouble() < epsilon()) {
    return static_cast<int>(rng_.Uniform(options_.num_actions));
  }
  return GreedyAction(state);
}

int DqnAgent::GreedyAction(const std::vector<double>& state) const {
  std::vector<double> q = online_.Forward(state);
  return static_cast<int>(std::max_element(q.begin(), q.end()) - q.begin());
}

std::vector<double> DqnAgent::QValues(const std::vector<double>& state) const {
  return online_.Forward(state);
}

void DqnAgent::Observe(const std::vector<double>& state, int action,
                       double reward, const std::vector<double>& next_state,
                       bool done) {
  replay_.push_back(Transition{state, action, reward, next_state, done});
  if (replay_.size() > options_.replay_capacity) replay_.pop_front();
}

void DqnAgent::TrainStep() {
  if (replay_.size() < options_.batch_size) return;
  for (size_t b = 0; b < options_.batch_size; ++b) {
    const Transition& t = replay_[rng_.Uniform(replay_.size())];
    double target = t.reward;
    if (!t.done) {
      std::vector<double> next_q = target_.Forward(t.next_state);
      target += options_.gamma *
                *std::max_element(next_q.begin(), next_q.end());
    }
    online_.TrainStep(t.state, t.action, target, options_.learning_rate);
  }
  if (++train_steps_ % options_.target_sync_interval == 0) {
    target_.CopyFrom(online_);
  }
}

}  // namespace streamlake::lakebrain
