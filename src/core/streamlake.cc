#include "core/streamlake.h"

#include <cstdio>

#include "sql/engine.h"
#include "table/block_cache.h"

namespace streamlake::core {

StreamLake::StreamLake(StreamLakeOptions options)
    : options_(options) {
  if (options_.with_pmem_cache) {
    pmem_ = std::make_unique<sim::DeviceModel>(sim::DeviceProfile::Pmem(),
                                               &clock_);
  }
  meta_engine_ = std::make_unique<sim::DeviceModel>(sim::DeviceProfile::Pmem(),
                                                    &clock_);
  kv::KvOptions meta_kv_options;
  meta_kv_options.wal_device = meta_engine_.get();
  meta_kv_options.read_device = meta_engine_.get();
  service_meta_ = std::make_unique<kv::KvStore>(meta_kv_options);
  metadata_cache_ = std::make_unique<kv::KvStore>(meta_kv_options);
  ssd_pool_ = std::make_unique<storage::StoragePool>(
      "ssd", sim::MediaType::kNvmeSsd, &clock_);
  ssd_pool_->AddCluster(options_.nodes, options_.ssd_disks_per_node,
                        options_.ssd_capacity_per_disk);
  hdd_pool_ = std::make_unique<storage::StoragePool>(
      "hdd", sim::MediaType::kSasHdd, &clock_);
  hdd_pool_->AddCluster(options_.nodes, options_.hdd_disks_per_node,
                        options_.hdd_capacity_per_disk);
  bus_ = std::make_unique<sim::NetworkModel>(
      sim::NetworkProfile::ForTransport(options_.bus_transport), &clock_);
  compute_link_ = std::make_unique<sim::NetworkModel>(
      sim::NetworkProfile::ForTransport(options_.bus_transport), &clock_);

  plogs_ = std::make_unique<storage::PlogStore>(ssd_pool_.get(), options_.plog,
                                                &clock_);
  // Fragments must fit in one PLog record (with framing headroom).
  objects_ = std::make_unique<storage::ObjectStore>(
      plogs_.get(), &index_kv_, options_.plog.plog.capacity / 2);
  if (options_.stream_io_threads > 0) {
    stream_io_pool_ = std::make_unique<ThreadPool>(
        static_cast<int>(options_.stream_io_threads), "core.stream_io");
  }
  stream_objects_ = std::make_unique<stream::StreamObjectManager>(
      plogs_.get(), &index_kv_, &clock_, pmem_.get(),
      options_.pmem_cache_slices, stream_io_pool_.get());
  dispatcher_ = std::make_unique<streaming::StreamDispatcher>(
      stream_objects_.get(), service_meta_.get(), bus_.get(), &clock_,
      options_.stream_workers);
  metadata_ = std::make_unique<table::MetadataStore>(
      objects_.get(), metadata_cache_.get(), options_.metadata_mode);
  if (options_.scan_threads > 0) {
    scan_pool_ = std::make_unique<ThreadPool>(
        static_cast<int>(options_.scan_threads), "core.table_scan");
  }
  if (options_.block_cache_bytes > 0) {
    block_cache_ =
        std::make_unique<table::DecodedBlockCache>(options_.block_cache_bytes);
  }
  lakehouse_ = std::make_unique<table::LakehouseService>(
      metadata_.get(), objects_.get(), &clock_, compute_link_.get(),
      options_.table_options, scan_pool_.get(), block_cache_.get());
  converter_ = std::make_unique<convert::ConversionService>(
      dispatcher_.get(), stream_objects_.get(), lakehouse_.get(),
      service_meta_.get(), &clock_);
  archive_ = std::make_unique<streaming::ArchiveService>(
      dispatcher_.get(), objects_.get(), service_meta_.get());
  tiering_ = std::make_unique<storage::TieringService>(
      plogs_.get(), ssd_pool_.get(), hdd_pool_.get(), &clock_,
      options_.tiering_policy);
  repair_ = std::make_unique<storage::RepairService>(plogs_.get());

  // Access layer: clients reach the protocol services over TCP (the data
  // bus stays RDMA-class); every entry point shares one ACL table and,
  // when enabled, one admission controller.
  front_net_ = std::make_unique<sim::NetworkModel>(
      sim::NetworkProfile::ForTransport(sim::TransportType::kTcp), &clock_);
  acl_ = std::make_unique<access::AccessController>();
  if (options_.admission.enabled) {
    admission_ = std::make_unique<access::AdmissionController>(
        options_.admission, &clock_);
  }
  AdmissionGate* gate =
      options_.admission.gate_access_layer ? admission_.get() : nullptr;
  s3_ = std::make_unique<access::S3Gateway>(objects_.get(), acl_.get(),
                                            front_net_.get(), gate);
  blocks_ = std::make_unique<access::BlockService>(
      ssd_pool_.get(), acl_.get(), /*chunk_bytes=*/4ULL << 20,
      /*replication=*/2, gate);
}

StreamLake::~StreamLake() = default;

uint64_t StreamLake::PhysicalBytesAllocated() const {
  return ssd_pool_->AllocatedBytes() + hdd_pool_->AllocatedBytes();
}

StreamLake::ClusterReport StreamLake::Report() const {
  ClusterReport report;
  report.sim_seconds = clock_.NowSeconds();
  report.ssd_capacity = ssd_pool_->TotalCapacity();
  report.ssd_allocated = ssd_pool_->AllocatedBytes();
  report.hdd_capacity = hdd_pool_->TotalCapacity();
  report.hdd_allocated = hdd_pool_->AllocatedBytes();
  report.plogs = plogs_->TotalPlogs();
  report.plog_live_bytes = plogs_->TotalLiveBytes();
  report.plog_logical_bytes = plogs_->TotalLogicalBytes();
  report.objects = objects_->num_objects();
  report.ssd_io = ssd_pool_->AggregateStats();
  report.hdd_io = hdd_pool_->AggregateStats();
  report.bus_io = bus_->stats();
  report.stream_workers = dispatcher_->num_workers();
  report.stream_objects = stream_objects_->num_objects();
  if (stream_objects_->cache() != nullptr) {
    report.scm_cache_hits = stream_objects_->cache()->hits();
    report.scm_cache_misses = stream_objects_->cache()->misses();
  }
  report.tables = metadata_->ListTables().size();
  report.pending_metadata_flushes = metadata_->pending_flushes();
  if (block_cache_ != nullptr) {
    table::DecodedBlockCache::Stats cache = block_cache_->GetStats();
    report.block_cache_hits = cache.hits;
    report.block_cache_misses = cache.misses;
  }
  if (admission_ != nullptr) {
    for (const auto& [tenant, stats] : admission_->AllStats()) {
      report.admission_admitted_ops += stats.admitted_ops;
      report.admission_throttled_ops += stats.throttled_ops;
      report.admission_shed_ops += stats.shed_ops;
    }
  }
  return report;
}

std::string StreamLake::ClusterReport::ToString() const {
  char buf[1024];
  double hit_rate = scm_cache_hits + scm_cache_misses == 0
                        ? 0.0
                        : 100.0 * scm_cache_hits /
                              (scm_cache_hits + scm_cache_misses);
  double block_hit_rate = block_cache_hits + block_cache_misses == 0
                              ? 0.0
                              : 100.0 * block_cache_hits /
                                    (block_cache_hits + block_cache_misses);
  std::snprintf(
      buf, sizeof(buf),
      "cluster @ %.1f sim-s\n"
      "  ssd: %.1f / %.1f GB allocated | io r=%llu w=%llu ops\n"
      "  hdd: %.1f / %.1f GB allocated | io r=%llu w=%llu ops\n"
      "  plogs: %llu (%.1f MB live of %.1f MB logical) | objects: %llu\n"
      "  bus: %llu msgs, %.1f MB\n"
      "  workers: %u | stream objects: %zu | scm hit rate: %.1f%%\n"
      "  tables: %zu | pending metadata flushes: %zu | block cache hit "
      "rate: %.1f%%\n"
      "  admission: %llu admitted (%llu throttled), %llu shed\n",
      sim_seconds, ssd_allocated / 1073741824.0, ssd_capacity / 1073741824.0,
      static_cast<unsigned long long>(ssd_io.read_ops),
      static_cast<unsigned long long>(ssd_io.write_ops),
      hdd_allocated / 1073741824.0, hdd_capacity / 1073741824.0,
      static_cast<unsigned long long>(hdd_io.read_ops),
      static_cast<unsigned long long>(hdd_io.write_ops),
      static_cast<unsigned long long>(plogs),
      plog_live_bytes / 1048576.0, plog_logical_bytes / 1048576.0,
      static_cast<unsigned long long>(objects),
      static_cast<unsigned long long>(bus_io.messages),
      bus_io.bytes / 1048576.0, stream_workers, stream_objects, hit_rate,
      tables, pending_metadata_flushes, block_hit_rate,
      static_cast<unsigned long long>(admission_admitted_ops),
      static_cast<unsigned long long>(admission_throttled_ops),
      static_cast<unsigned long long>(admission_shed_ops));
  return buf;
}

Result<query::QueryResult> StreamLake::Query(const std::string& sql,
                                             table::SelectMetrics* metrics) {
  sql::Engine engine(lakehouse_.get());
  return engine.Execute(sql, metrics);
}

Status StreamLake::RunBackgroundWork() {
  SL_ASSIGN_OR_RETURN([[maybe_unused]] size_t flushed,
                      metadata_->FlushPending());
  SL_ASSIGN_OR_RETURN(auto tiering_stats, tiering_->Run());
  // PLog migration rewrote data between tiers; cached decoded blocks keep
  // their logical content but would dodge the re-read cost accounting of
  // the new tier, so drop them wholesale (coarse but rare).
  if (block_cache_ != nullptr && tiering_stats.migrated_plogs > 0) {
    block_cache_->InvalidateAll();
  }
  SL_ASSIGN_OR_RETURN([[maybe_unused]] auto repair_stats, repair_->Run());
  return Status::OK();
}

}  // namespace streamlake::core
