#ifndef STREAMLAKE_CORE_STREAMLAKE_H_
#define STREAMLAKE_CORE_STREAMLAKE_H_

#include <memory>

#include "access/admission.h"
#include "access/block_service.h"
#include "access/s3_gateway.h"
#include "common/threadpool.h"
#include "convert/converter.h"
#include "storage/repair.h"
#include "storage/tiering.h"
#include "streaming/archive.h"
#include "streaming/consumer.h"
#include "streaming/producer.h"
#include "streaming/txn_manager.h"
#include "table/lakehouse.h"

namespace streamlake::core {

/// Cluster-level configuration of one StreamLake deployment (a simulated
/// OceanStor Pacific cluster plus the data-service layer).
struct StreamLakeOptions {
  // Cluster shape (the paper's testbed: 3 nodes).
  uint32_t nodes = 3;
  uint32_t ssd_disks_per_node = 2;
  uint32_t hdd_disks_per_node = 2;
  uint64_t ssd_capacity_per_disk = 2ULL << 30;
  uint64_t hdd_capacity_per_disk = 16ULL << 30;
  /// Hardware Set-2 of Section VII-C adds persistent memory as a cache.
  bool with_pmem_cache = false;
  size_t pmem_cache_slices = 4096;

  // Store layer.
  storage::PlogStoreConfig plog;
  sim::TransportType bus_transport = sim::TransportType::kRdma;

  // Data service layer.
  uint32_t stream_workers = 3;
  /// Worker threads of the shared stream I/O pool that fans out
  /// StreamObject::AppendBatch slice persists; 0 disables the pool
  /// (batches persist inline).
  uint32_t stream_io_threads = 4;
  table::MetadataMode metadata_mode = table::MetadataMode::kAccelerated;
  table::TableOptions table_options;
  /// Worker threads of the shared table-scan pool that fans out
  /// Table::Select file scans; 0 disables the pool (Selects scan
  /// serially).
  uint32_t scan_threads = 4;
  /// Byte budget of the decoded-block cache serving repeat Selects and
  /// time-travel reads; 0 disables the cache.
  uint64_t block_cache_bytes = 64ULL << 20;
  storage::TieringPolicy tiering_policy;

  /// Per-tenant admission control over the access layer (disabled by
  /// default: no accounting, no gates handed out).
  access::AdmissionConfig admission;

  StreamLakeOptions() {
    plog.num_shards = 128;  // scaled-down 4096 of the paper
    // Keep worst-case reservation (shards x width x capacity) well under
    // the pool size: 128 x 3 x 8 MB = 3 GB against 12 GB of SSD.
    plog.plog.capacity = 8ULL << 20;
    plog.plog.redundancy = storage::RedundancyConfig::Replication(3);
  }
};

/// \brief The StreamLake system facade: owns the simulated cluster and
/// every service of Fig. 2 (store layer, data service layer, access
/// helpers) wired together.
class StreamLake {
 public:
  explicit StreamLake(StreamLakeOptions options = StreamLakeOptions());
  ~StreamLake();

  StreamLake(const StreamLake&) = delete;
  StreamLake& operator=(const StreamLake&) = delete;

  // ---- store layer ----
  sim::SimClock& clock() { return clock_; }
  storage::StoragePool& ssd_pool() { return *ssd_pool_; }
  storage::StoragePool& hdd_pool() { return *hdd_pool_; }
  storage::PlogStore& plogs() { return *plogs_; }
  storage::ObjectStore& objects() { return *objects_; }
  sim::NetworkModel& data_bus() { return *bus_; }

  // ---- data service layer ----
  stream::StreamObjectManager& stream_objects() { return *stream_objects_; }
  streaming::StreamDispatcher& dispatcher() { return *dispatcher_; }
  table::LakehouseService& lakehouse() { return *lakehouse_; }
  table::MetadataStore& metadata() { return *metadata_; }
  /// Decoded-block cache shared by every table; nullptr when disabled.
  table::DecodedBlockCache* block_cache() { return block_cache_.get(); }
  convert::ConversionService& converter() { return *converter_; }
  streaming::ArchiveService& archive() { return *archive_; }
  storage::TieringService& tiering() { return *tiering_; }
  storage::RepairService& repair() { return *repair_; }

  // ---- access layer ----
  access::AccessController& acl() { return *acl_; }
  access::S3Gateway& s3() { return *s3_; }
  access::BlockService& blocks() { return *blocks_; }
  /// Client-facing network (S3/front traffic), distinct from the data bus.
  sim::NetworkModel& front_network() { return *front_net_; }
  /// The admission controller; nullptr when options.admission.enabled is
  /// false.
  access::AdmissionController* admission() { return admission_.get(); }

  streaming::Producer NewProducer() {
    return streaming::Producer(dispatcher_.get());
  }
  /// A producer gated through per-tenant admission as `tenant` (producer
  /// backpressure: over-quota sends block until their throttle window
  /// passes). No-op attachment when admission is disabled or the facade's
  /// in-path gates are off (admission.gate_access_layer = false).
  streaming::Producer NewProducer(const std::string& tenant) {
    streaming::Producer producer(dispatcher_.get());
    if (admission_ != nullptr && options_.admission.gate_access_layer) {
      producer.SetAdmission(admission_.get(), tenant, /*blocking=*/true);
    }
    return producer;
  }
  streaming::Consumer NewConsumer(const std::string& group) {
    return streaming::Consumer(dispatcher_.get(), service_meta_.get(), group);
  }
  streaming::TransactionManager NewTransactionManager() {
    return streaming::TransactionManager(dispatcher_.get(),
                                         service_meta_.get());
  }

  /// The SCM device behind the metadata KV engine (for benches).
  sim::DeviceModel* metadata_engine_device() { return meta_engine_.get(); }

  /// Physical bytes currently allocated across both pools (the storage
  /// usage metric of Table I).
  uint64_t PhysicalBytesAllocated() const;

  /// Operational snapshot of the whole deployment (what an admin console
  /// would render).
  struct ClusterReport {
    double sim_seconds = 0;
    // Store layer.
    uint64_t ssd_capacity = 0, ssd_allocated = 0;
    uint64_t hdd_capacity = 0, hdd_allocated = 0;
    uint64_t plogs = 0, plog_live_bytes = 0, plog_logical_bytes = 0;
    uint64_t objects = 0;
    sim::DeviceStats ssd_io, hdd_io;
    sim::NetworkStats bus_io;
    // Data service layer.
    uint32_t stream_workers = 0;
    size_t stream_objects = 0;
    uint64_t scm_cache_hits = 0, scm_cache_misses = 0;
    size_t tables = 0;
    size_t pending_metadata_flushes = 0;
    uint64_t block_cache_hits = 0, block_cache_misses = 0;
    // Access layer (zeros when admission is disabled).
    uint64_t admission_admitted_ops = 0;
    uint64_t admission_throttled_ops = 0;
    uint64_t admission_shed_ops = 0;

    /// Multi-line human-readable rendering.
    std::string ToString() const;
  };
  ClusterReport Report() const;

  /// Run one SQL statement against the lakehouse (parse, plan, execute).
  /// SELECT — including multi-table joins, which pin every table's
  /// snapshot before scanning — returns its result set; INSERT / DELETE /
  /// UPDATE return one "affected" row.
  Result<query::QueryResult> Query(const std::string& sql,
                                   table::SelectMetrics* metrics = nullptr);

  /// Run pending background work once: MetaFresher flush + tiering scan.
  Status RunBackgroundWork();

  const StreamLakeOptions& options() const { return options_; }

 private:
  StreamLakeOptions options_;
  sim::SimClock clock_;
  std::unique_ptr<sim::DeviceModel> pmem_;
  /// The distributed KV engine backing dispatcher topology and lakehouse
  /// metadata ("optimized for RDMA and Storage Class Memory"): its I/O is
  /// charged at SCM cost.
  std::unique_ptr<sim::DeviceModel> meta_engine_;
  std::unique_ptr<storage::StoragePool> ssd_pool_;
  std::unique_ptr<storage::StoragePool> hdd_pool_;
  std::unique_ptr<sim::NetworkModel> bus_;
  std::unique_ptr<sim::NetworkModel> compute_link_;
  kv::KvStore index_kv_;  // PLog/object indexes
  std::unique_ptr<kv::KvStore> service_meta_;    // dispatcher topology etc.
  std::unique_ptr<kv::KvStore> metadata_cache_;  // metadata acceleration
  std::unique_ptr<storage::PlogStore> plogs_;
  std::unique_ptr<storage::ObjectStore> objects_;
  // Declared before stream_objects_: objects may have batches in flight
  // on this pool, so it must outlive (destruct after) the manager.
  std::unique_ptr<ThreadPool> stream_io_pool_;
  std::unique_ptr<stream::StreamObjectManager> stream_objects_;
  std::unique_ptr<streaming::StreamDispatcher> dispatcher_;
  std::unique_ptr<table::MetadataStore> metadata_;
  // Declared before lakehouse_: tables may have scan jobs in flight on
  // this pool and blocks in this cache, so both must outlive (destruct
  // after) the service that owns the tables.
  std::unique_ptr<ThreadPool> scan_pool_;
  std::unique_ptr<table::DecodedBlockCache> block_cache_;
  std::unique_ptr<table::LakehouseService> lakehouse_;
  std::unique_ptr<convert::ConversionService> converter_;
  std::unique_ptr<streaming::ArchiveService> archive_;
  std::unique_ptr<storage::TieringService> tiering_;
  std::unique_ptr<storage::RepairService> repair_;
  // Access layer: front network, ACLs, admission gate, protocol services.
  std::unique_ptr<sim::NetworkModel> front_net_;
  std::unique_ptr<access::AccessController> acl_;
  std::unique_ptr<access::AdmissionController> admission_;
  std::unique_ptr<access::S3Gateway> s3_;
  std::unique_ptr<access::BlockService> blocks_;
};

}  // namespace streamlake::core

#endif  // STREAMLAKE_CORE_STREAMLAKE_H_
