#include "format/schema.h"

namespace streamlake::format {

int Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::ValidateRow(const Row& row) const {
  if (row.fields.size() != fields_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.fields.size()) + " fields, schema " +
        std::to_string(fields_.size()));
  }
  for (size_t i = 0; i < fields_.size(); ++i) {
    // NULL is a valid cell for any field type.
    if (IsNull(row.fields[i])) continue;
    if (TypeOf(row.fields[i]) != fields_[i].type) {
      return Status::InvalidArgument("field '" + fields_[i].name +
                                     "' type mismatch");
    }
  }
  return Status::OK();
}

void Schema::EncodeTo(Bytes* dst) const {
  PutVarint64(dst, fields_.size());
  for (const Field& f : fields_) {
    PutLengthPrefixed(dst, std::string_view(f.name));
    dst->push_back(static_cast<uint8_t>(f.type));
  }
}

Result<Schema> Schema::DecodeFrom(Decoder* dec) {
  uint64_t count;
  if (!dec->GetVarint(&count)) return Status::Corruption("schema: count");
  if (count > dec->Remaining()) {
    return Status::Corruption("schema: count bogus");
  }
  std::vector<Field> fields;
  fields.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Field f;
    if (!dec->GetString(&f.name)) return Status::Corruption("schema: name");
    if (dec->Remaining() < 1) return Status::Corruption("schema: type");
    f.type = static_cast<DataType>(*dec->position());
    dec->Skip(1);
    if (f.type > DataType::kString) {
      return Status::Corruption("schema: bad type tag");
    }
    fields.push_back(std::move(f));
  }
  return Schema(std::move(fields));
}

}  // namespace streamlake::format
