#include "format/lakefile.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace streamlake::format {

namespace {

constexpr char kMagic[4] = {'L', 'K', 'F', '1'};

void EncodeStats(Bytes* dst, const ColumnStats& stats) {
  if (stats.min.has_value() && stats.max.has_value()) {
    dst->push_back(1);
    EncodeValue(dst, *stats.min);
    EncodeValue(dst, *stats.max);
  } else {
    dst->push_back(0);
  }
}

Result<ColumnStats> DecodeStats(Decoder* dec) {
  ColumnStats stats;
  if (dec->Remaining() < 1) return Status::Corruption("stats flag");
  uint8_t flag = *dec->position();
  dec->Skip(1);
  if (flag == 1) {
    SL_ASSIGN_OR_RETURN(Value min, DecodeValue(dec));
    SL_ASSIGN_OR_RETURN(Value max, DecodeValue(dec));
    stats.min = std::move(min);
    stats.max = std::move(max);
  } else if (flag != 0) {
    return Status::Corruption("stats: bad flag");
  }
  return stats;
}

/// Encodes one column of `rows` into a chunk appended to `file`.
ChunkMeta WriteChunk(const Schema& schema, const std::vector<Row>& rows,
                     size_t col, const LakeFileOptions& options, Bytes* file) {
  ChunkMeta meta;
  meta.offset = file->size();

  Bytes raw;
  codec::Encoding encoding = codec::Encoding::kPlain;
  const DataType type = schema.field(col).type;
  switch (type) {
    case DataType::kBool: {
      std::vector<uint8_t> vals;
      vals.reserve(rows.size());
      for (const Row& r : rows) {
        vals.push_back(std::get<bool>(r.fields[col]) ? 1 : 0);
      }
      encoding = codec::Encoding::kBitPack;
      codec::EncodeBools(vals, &raw);
      break;
    }
    case DataType::kInt64: {
      std::vector<int64_t> vals;
      vals.reserve(rows.size());
      for (const Row& r : rows) vals.push_back(std::get<int64_t>(r.fields[col]));
      encoding = codec::ChooseInt64Encoding(vals);
      codec::EncodeInt64s(vals, encoding, &raw);
      if (options.enable_stats && !vals.empty()) {
        auto [mn, mx] = std::minmax_element(vals.begin(), vals.end());
        meta.stats.min = Value(*mn);
        meta.stats.max = Value(*mx);
      }
      break;
    }
    case DataType::kDouble: {
      std::vector<double> vals;
      vals.reserve(rows.size());
      for (const Row& r : rows) vals.push_back(std::get<double>(r.fields[col]));
      codec::EncodeDoubles(vals, &raw);
      if (options.enable_stats && !vals.empty()) {
        auto [mn, mx] = std::minmax_element(vals.begin(), vals.end());
        meta.stats.min = Value(*mn);
        meta.stats.max = Value(*mx);
      }
      break;
    }
    case DataType::kString: {
      std::vector<std::string> vals;
      vals.reserve(rows.size());
      for (const Row& r : rows) {
        vals.push_back(std::get<std::string>(r.fields[col]));
      }
      encoding = codec::ChooseStringEncoding(vals);
      codec::EncodeStrings(vals, encoding, &raw);
      if (options.enable_stats && !vals.empty()) {
        auto [mn, mx] = std::minmax_element(vals.begin(), vals.end());
        meta.stats.min = Value(*mn);
        meta.stats.max = Value(*mx);
      }
      break;
    }
  }

  Bytes compressed = codec::Compress(options.compression, ByteView(raw));
  codec::Compression codec_used = options.compression;
  if (compressed.size() >= raw.size()) {
    // Incompressible chunk: store raw to avoid negative savings.
    compressed = raw;
    codec_used = codec::Compression::kNone;
  }

  file->push_back(static_cast<uint8_t>(encoding));
  file->push_back(static_cast<uint8_t>(codec_used));
  PutVarint64(file, raw.size());
  PutVarint64(file, compressed.size());
  AppendBytes(file, ByteView(compressed));
  PutFixed32(file, Crc32c(ByteView(compressed)));

  meta.size = file->size() - meta.offset;
  return meta;
}

}  // namespace

LakeFileWriter::LakeFileWriter(Schema schema, LakeFileOptions options)
    : schema_(std::move(schema)), options_(options) {
  file_.insert(file_.end(), kMagic, kMagic + 4);
}

Status LakeFileWriter::Append(const Row& row) {
  if (finished_) return Status::InvalidArgument("writer already finished");
  SL_RETURN_NOT_OK(schema_.ValidateRow(row));
  pending_.push_back(row);
  ++rows_written_;
  if (pending_.size() >= options_.rows_per_group) {
    return FlushRowGroup();
  }
  return Status::OK();
}

Status LakeFileWriter::AppendBatch(const std::vector<Row>& rows) {
  for (const Row& row : rows) SL_RETURN_NOT_OK(Append(row));
  return Status::OK();
}

Status LakeFileWriter::FlushRowGroup() {
  if (pending_.empty()) return Status::OK();
  RowGroupMeta group;
  group.num_rows = pending_.size();
  for (size_t col = 0; col < schema_.num_fields(); ++col) {
    group.columns.push_back(
        WriteChunk(schema_, pending_, col, options_, &file_));
  }
  groups_.push_back(std::move(group));
  pending_.clear();
  return Status::OK();
}

Result<Bytes> LakeFileWriter::Finish() {
  if (finished_) return Status::InvalidArgument("writer already finished");
  SL_RETURN_NOT_OK(FlushRowGroup());
  finished_ = true;

  Bytes footer;
  schema_.EncodeTo(&footer);
  PutVarint64(&footer, groups_.size());
  for (const RowGroupMeta& group : groups_) {
    PutVarint64(&footer, group.num_rows);
    for (const ChunkMeta& chunk : group.columns) {
      PutVarint64(&footer, chunk.offset);
      PutVarint64(&footer, chunk.size);
      EncodeStats(&footer, chunk.stats);
    }
  }
  AppendBytes(&file_, ByteView(footer));
  PutFixed32(&file_, static_cast<uint32_t>(footer.size()));
  file_.insert(file_.end(), kMagic, kMagic + 4);
  return std::move(file_);
}

Result<LakeFileReader> LakeFileReader::Open(Bytes file) {
  if (file.size() < 12 ||
      std::memcmp(file.data(), kMagic, 4) != 0 ||
      std::memcmp(file.data() + file.size() - 4, kMagic, 4) != 0) {
    return Status::Corruption("lakefile: bad magic");
  }
  uint32_t footer_size = DecodeFixed32(file.data() + file.size() - 8);
  if (footer_size + 12 > file.size()) {
    return Status::Corruption("lakefile: bad footer size");
  }
  ByteView footer(file.data() + file.size() - 8 - footer_size, footer_size);
  Decoder dec(footer);
  SL_ASSIGN_OR_RETURN(Schema schema, Schema::DecodeFrom(&dec));
  uint64_t num_groups;
  if (!dec.GetVarint(&num_groups)) {
    return Status::Corruption("lakefile: group count");
  }
  if (num_groups > footer.size()) {
    return Status::Corruption("lakefile: group count bogus");
  }
  std::vector<RowGroupMeta> groups;
  groups.reserve(num_groups);
  for (uint64_t g = 0; g < num_groups; ++g) {
    RowGroupMeta group;
    if (!dec.GetVarint(&group.num_rows)) {
      return Status::Corruption("lakefile: group rows");
    }
    // Bools pack 8 per byte; more rows than 8x the file size is corrupt.
    if (group.num_rows > file.size() * 8) {
      return Status::Corruption("lakefile: row count bogus");
    }
    for (size_t col = 0; col < schema.num_fields(); ++col) {
      ChunkMeta chunk;
      if (!dec.GetVarint(&chunk.offset) || !dec.GetVarint(&chunk.size)) {
        return Status::Corruption("lakefile: chunk meta");
      }
      if (chunk.offset + chunk.size > file.size()) {
        return Status::Corruption("lakefile: chunk out of bounds");
      }
      SL_ASSIGN_OR_RETURN(chunk.stats, DecodeStats(&dec));
      group.columns.push_back(std::move(chunk));
    }
    groups.push_back(std::move(group));
  }

  LakeFileReader reader;
  reader.file_ = std::move(file);
  reader.schema_ = std::move(schema);
  reader.groups_ = std::move(groups);
  return reader;
}

uint64_t LakeFileReader::num_rows() const {
  uint64_t total = 0;
  for (const RowGroupMeta& g : groups_) total += g.num_rows;
  return total;
}

Result<ColumnData> LakeFileReader::ReadColumn(size_t group,
                                              size_t column) const {
  if (group >= groups_.size() || column >= schema_.num_fields()) {
    return Status::InvalidArgument("lakefile: group/column out of range");
  }
  const ChunkMeta& chunk = groups_[group].columns[column];
  const size_t num_rows = groups_[group].num_rows;
  Decoder dec(ByteView(file_.data() + chunk.offset, chunk.size));
  if (dec.Remaining() < 2) return Status::Corruption("chunk: header");
  auto encoding = static_cast<codec::Encoding>(*dec.position());
  dec.Skip(1);
  auto compression = static_cast<codec::Compression>(*dec.position());
  dec.Skip(1);
  uint64_t raw_len, data_len;
  if (!dec.GetVarint(&raw_len) || !dec.GetVarint(&data_len)) {
    return Status::Corruption("chunk: lengths");
  }
  if (dec.Remaining() < data_len + 4) return Status::Corruption("chunk: data");
  ByteView payload(dec.position(), data_len);
  dec.Skip(data_len);
  uint32_t expected_crc;
  if (!dec.GetFixed32(&expected_crc)) return Status::Corruption("chunk: crc");
  if (Crc32c(payload) != expected_crc) {
    return Status::Corruption("chunk: crc mismatch");
  }
  SL_ASSIGN_OR_RETURN(Bytes raw,
                      codec::Decompress(compression, payload, raw_len));

  switch (schema_.field(column).type) {
    case DataType::kBool: {
      SL_ASSIGN_OR_RETURN(auto vals, codec::DecodeBools(ByteView(raw), num_rows));
      return ColumnData(std::move(vals));
    }
    case DataType::kInt64: {
      SL_ASSIGN_OR_RETURN(
          auto vals, codec::DecodeInt64s(ByteView(raw), encoding, num_rows));
      return ColumnData(std::move(vals));
    }
    case DataType::kDouble: {
      SL_ASSIGN_OR_RETURN(auto vals,
                          codec::DecodeDoubles(ByteView(raw), num_rows));
      return ColumnData(std::move(vals));
    }
    case DataType::kString: {
      SL_ASSIGN_OR_RETURN(
          auto vals, codec::DecodeStrings(ByteView(raw), encoding, num_rows));
      return ColumnData(std::move(vals));
    }
  }
  return Status::Corruption("chunk: unknown column type");
}

Result<std::vector<Row>> LakeFileReader::ReadRowGroup(size_t group) const {
  if (group >= groups_.size()) {
    return Status::InvalidArgument("lakefile: group out of range");
  }
  const size_t num_rows = groups_[group].num_rows;
  std::vector<Row> rows(num_rows);
  for (Row& r : rows) r.fields.resize(schema_.num_fields());
  for (size_t col = 0; col < schema_.num_fields(); ++col) {
    SL_ASSIGN_OR_RETURN(ColumnData data, ReadColumn(group, col));
    switch (schema_.field(col).type) {
      case DataType::kBool: {
        const auto& vals = std::get<std::vector<uint8_t>>(data);
        for (size_t i = 0; i < num_rows; ++i) {
          rows[i].fields[col] = Value(vals[i] != 0);
        }
        break;
      }
      case DataType::kInt64: {
        const auto& vals = std::get<std::vector<int64_t>>(data);
        for (size_t i = 0; i < num_rows; ++i) rows[i].fields[col] = vals[i];
        break;
      }
      case DataType::kDouble: {
        const auto& vals = std::get<std::vector<double>>(data);
        for (size_t i = 0; i < num_rows; ++i) rows[i].fields[col] = vals[i];
        break;
      }
      case DataType::kString: {
        auto& vals = std::get<std::vector<std::string>>(data);
        for (size_t i = 0; i < num_rows; ++i) {
          rows[i].fields[col] = std::move(vals[i]);
        }
        break;
      }
    }
  }
  return rows;
}

Result<std::vector<Row>> LakeFileReader::ReadAll() const {
  std::vector<Row> all;
  all.reserve(num_rows());
  for (size_t g = 0; g < groups_.size(); ++g) {
    SL_ASSIGN_OR_RETURN(std::vector<Row> rows, ReadRowGroup(g));
    for (Row& r : rows) all.push_back(std::move(r));
  }
  return all;
}

}  // namespace streamlake::format
