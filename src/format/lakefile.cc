#include "format/lakefile.h"

#include <algorithm>
#include <set>

#include "common/hash.h"
#include "common/logging.h"

namespace streamlake::format {

namespace {

constexpr char kMagic[4] = {'L', 'K', 'F', '1'};

// Stats flag bits (persisted; append-only).
constexpr uint8_t kStatsMinMax = 1;
constexpr uint8_t kStatsExtended = 2;

void EncodeStats(Bytes* dst, const ColumnStats& stats) {
  uint8_t flag = 0;
  if (stats.min.has_value() && stats.max.has_value()) flag |= kStatsMinMax;
  if (stats.has_extended) flag |= kStatsExtended;
  dst->push_back(flag);
  if (flag & kStatsMinMax) {
    EncodeValue(dst, *stats.min);
    EncodeValue(dst, *stats.max);
  }
  if (flag & kStatsExtended) {
    PutVarint64(dst, stats.null_count);
    PutVarint64(dst, stats.ndv);
    uint64_t bits;
    std::memcpy(&bits, &stats.avg_width, 8);
    PutFixed64(dst, bits);
  }
}

Result<ColumnStats> DecodeStats(Decoder* dec) {
  ColumnStats stats;
  if (dec->Remaining() < 1) return Status::Corruption("stats flag");
  uint8_t flag = *dec->position();
  dec->Skip(1);
  if (flag > (kStatsMinMax | kStatsExtended)) {
    return Status::Corruption("stats: bad flag");
  }
  if (flag & kStatsMinMax) {
    SL_ASSIGN_OR_RETURN(Value min, DecodeValue(dec));
    SL_ASSIGN_OR_RETURN(Value max, DecodeValue(dec));
    stats.min = std::move(min);
    stats.max = std::move(max);
  }
  if (flag & kStatsExtended) {
    stats.has_extended = true;
    uint64_t bits;
    if (!dec->GetVarint(&stats.null_count) || !dec->GetVarint(&stats.ndv) ||
        !dec->GetFixed64(&bits)) {
      return Status::Corruption("stats: extended");
    }
    std::memcpy(&stats.avg_width, &bits, 8);
  }
  return stats;
}

/// Encodes one column of `rows` into a chunk appended to `file`.
///
/// The chunk's raw payload is `[null_count][null bitmap iff null_count > 0]
/// [encoded values]` where NULL rows carry the type's default in the value
/// stream. Stats (null count, exact NDV, average width, min/max over
/// non-NULLs) are computed first so the encoding choice can use the distinct
/// count instead of re-sampling.
ChunkMeta WriteChunk(const Schema& schema, const std::vector<Row>& rows,
                     size_t col, const LakeFileOptions& options, Bytes* file) {
  ChunkMeta meta;
  meta.offset = file->size();

  uint64_t null_count = 0;
  std::vector<uint8_t> nulls(rows.size(), 0);
  for (size_t i = 0; i < rows.size(); ++i) {
    if (IsNull(rows[i].fields[col])) {
      nulls[i] = 1;
      ++null_count;
    }
  }

  Bytes raw;
  PutVarint64(&raw, null_count);
  if (null_count > 0) codec::EncodeBools(nulls, &raw);

  uint64_t ndv = 0;
  double total_width = 0.0;
  codec::Encoding encoding = codec::Encoding::kPlain;
  const DataType type = schema.field(col).type;
  switch (type) {
    case DataType::kBool: {
      std::vector<uint8_t> vals;
      vals.reserve(rows.size());
      std::set<uint8_t> distinct;
      for (size_t i = 0; i < rows.size(); ++i) {
        uint8_t v = nulls[i] ? 0 : (std::get<bool>(rows[i].fields[col]) ? 1 : 0);
        vals.push_back(v);
        if (!nulls[i]) distinct.insert(v);
      }
      ndv = distinct.size();
      total_width = static_cast<double>(rows.size() - null_count);
      encoding = codec::Encoding::kBitPack;
      codec::EncodeBools(vals, &raw);
      break;
    }
    case DataType::kInt64: {
      std::vector<int64_t> vals;
      vals.reserve(rows.size());
      std::set<int64_t> distinct;
      std::optional<int64_t> mn, mx;
      for (size_t i = 0; i < rows.size(); ++i) {
        int64_t v = nulls[i] ? 0 : std::get<int64_t>(rows[i].fields[col]);
        vals.push_back(v);
        if (nulls[i]) continue;
        distinct.insert(v);
        mn = mn ? std::min(*mn, v) : v;
        mx = mx ? std::max(*mx, v) : v;
      }
      ndv = distinct.size();
      total_width = 8.0 * static_cast<double>(rows.size() - null_count);
      encoding = codec::ChooseInt64Encoding(vals, ndv);
      codec::EncodeInt64s(vals, encoding, &raw);
      if (options.enable_stats && mn.has_value()) {
        meta.stats.min = Value(*mn);
        meta.stats.max = Value(*mx);
      }
      break;
    }
    case DataType::kDouble: {
      std::vector<double> vals;
      vals.reserve(rows.size());
      std::set<double> distinct;
      std::optional<double> mn, mx;
      for (size_t i = 0; i < rows.size(); ++i) {
        double v = nulls[i] ? 0.0 : std::get<double>(rows[i].fields[col]);
        vals.push_back(v);
        if (nulls[i]) continue;
        distinct.insert(v);
        mn = mn ? std::min(*mn, v) : v;
        mx = mx ? std::max(*mx, v) : v;
      }
      ndv = distinct.size();
      total_width = 8.0 * static_cast<double>(rows.size() - null_count);
      codec::EncodeDoubles(vals, &raw);
      if (options.enable_stats && mn.has_value()) {
        meta.stats.min = Value(*mn);
        meta.stats.max = Value(*mx);
      }
      break;
    }
    case DataType::kString: {
      std::vector<std::string> vals;
      vals.reserve(rows.size());
      std::set<std::string_view> distinct;
      const std::string* mn = nullptr;
      const std::string* mx = nullptr;
      for (size_t i = 0; i < rows.size(); ++i) {
        vals.push_back(nulls[i] ? std::string()
                                : std::get<std::string>(rows[i].fields[col]));
      }
      for (size_t i = 0; i < rows.size(); ++i) {
        if (nulls[i]) continue;
        distinct.insert(vals[i]);
        total_width += static_cast<double>(vals[i].size());
        if (mn == nullptr || vals[i] < *mn) mn = &vals[i];
        if (mx == nullptr || vals[i] > *mx) mx = &vals[i];
      }
      ndv = distinct.size();
      encoding = codec::ChooseStringEncoding(vals, ndv);
      codec::EncodeStrings(vals, encoding, &raw);
      if (options.enable_stats && mn != nullptr) {
        meta.stats.min = Value(*mn);
        meta.stats.max = Value(*mx);
      }
      break;
    }
    case DataType::kNull:
      break;  // schemas never carry kNull fields
  }
  if (options.enable_stats) {
    meta.stats.has_extended = true;
    meta.stats.null_count = null_count;
    meta.stats.ndv = ndv;
    const uint64_t non_null = rows.size() - null_count;
    meta.stats.avg_width =
        non_null > 0 ? total_width / static_cast<double>(non_null) : 0.0;
  }

  Bytes compressed = codec::Compress(options.compression, ByteView(raw));
  codec::Compression codec_used = options.compression;
  if (compressed.size() >= raw.size()) {
    // Incompressible chunk: store raw to avoid negative savings.
    compressed = raw;
    codec_used = codec::Compression::kNone;
  }

  file->push_back(static_cast<uint8_t>(encoding));
  file->push_back(static_cast<uint8_t>(codec_used));
  PutVarint64(file, raw.size());
  PutVarint64(file, compressed.size());
  AppendBytes(file, ByteView(compressed));
  PutFixed32(file, Crc32c(ByteView(compressed)));

  meta.size = file->size() - meta.offset;
  return meta;
}

}  // namespace

LakeFileWriter::LakeFileWriter(Schema schema, LakeFileOptions options)
    : schema_(std::move(schema)), options_(options) {
  file_.insert(file_.end(), kMagic, kMagic + 4);
}

Status LakeFileWriter::Append(const Row& row) {
  if (finished_) return Status::InvalidArgument("writer already finished");
  SL_RETURN_NOT_OK(schema_.ValidateRow(row));
  pending_.push_back(row);
  ++rows_written_;
  if (pending_.size() >= options_.rows_per_group) {
    return FlushRowGroup();
  }
  return Status::OK();
}

Status LakeFileWriter::AppendBatch(const std::vector<Row>& rows) {
  for (const Row& row : rows) SL_RETURN_NOT_OK(Append(row));
  return Status::OK();
}

Status LakeFileWriter::FlushRowGroup() {
  if (pending_.empty()) return Status::OK();
  RowGroupMeta group;
  group.num_rows = pending_.size();
  for (size_t col = 0; col < schema_.num_fields(); ++col) {
    group.columns.push_back(
        WriteChunk(schema_, pending_, col, options_, &file_));
  }
  groups_.push_back(std::move(group));
  pending_.clear();
  return Status::OK();
}

Result<Bytes> LakeFileWriter::Finish() {
  if (finished_) return Status::InvalidArgument("writer already finished");
  SL_RETURN_NOT_OK(FlushRowGroup());
  finished_ = true;

  Bytes footer;
  schema_.EncodeTo(&footer);
  PutVarint64(&footer, groups_.size());
  for (const RowGroupMeta& group : groups_) {
    PutVarint64(&footer, group.num_rows);
    for (const ChunkMeta& chunk : group.columns) {
      PutVarint64(&footer, chunk.offset);
      PutVarint64(&footer, chunk.size);
      EncodeStats(&footer, chunk.stats);
    }
  }
  AppendBytes(&file_, ByteView(footer));
  PutFixed32(&file_, static_cast<uint32_t>(footer.size()));
  file_.insert(file_.end(), kMagic, kMagic + 4);
  return std::move(file_);
}

Result<LakeFileReader> LakeFileReader::Open(Bytes file) {
  if (file.size() < 12 ||
      std::memcmp(file.data(), kMagic, 4) != 0 ||
      std::memcmp(file.data() + file.size() - 4, kMagic, 4) != 0) {
    return Status::Corruption("lakefile: bad magic");
  }
  uint32_t footer_size = DecodeFixed32(file.data() + file.size() - 8);
  if (footer_size + 12 > file.size()) {
    return Status::Corruption("lakefile: bad footer size");
  }
  ByteView footer(file.data() + file.size() - 8 - footer_size, footer_size);
  Decoder dec(footer);
  SL_ASSIGN_OR_RETURN(Schema schema, Schema::DecodeFrom(&dec));
  uint64_t num_groups;
  if (!dec.GetVarint(&num_groups)) {
    return Status::Corruption("lakefile: group count");
  }
  if (num_groups > footer.size()) {
    return Status::Corruption("lakefile: group count bogus");
  }
  std::vector<RowGroupMeta> groups;
  groups.reserve(num_groups);
  for (uint64_t g = 0; g < num_groups; ++g) {
    RowGroupMeta group;
    if (!dec.GetVarint(&group.num_rows)) {
      return Status::Corruption("lakefile: group rows");
    }
    // Bools pack 8 per byte; more rows than 8x the file size is corrupt.
    if (group.num_rows > file.size() * 8) {
      return Status::Corruption("lakefile: row count bogus");
    }
    for (size_t col = 0; col < schema.num_fields(); ++col) {
      ChunkMeta chunk;
      if (!dec.GetVarint(&chunk.offset) || !dec.GetVarint(&chunk.size)) {
        return Status::Corruption("lakefile: chunk meta");
      }
      if (chunk.offset + chunk.size > file.size()) {
        return Status::Corruption("lakefile: chunk out of bounds");
      }
      SL_ASSIGN_OR_RETURN(chunk.stats, DecodeStats(&dec));
      group.columns.push_back(std::move(chunk));
    }
    groups.push_back(std::move(group));
  }

  LakeFileReader reader;
  reader.file_ = std::move(file);
  reader.schema_ = std::move(schema);
  reader.groups_ = std::move(groups);
  return reader;
}

uint64_t LakeFileReader::num_rows() const {
  uint64_t total = 0;
  for (const RowGroupMeta& g : groups_) total += g.num_rows;
  return total;
}

Value ColumnChunkData::ValueAt(size_t row) const {
  if (IsNullAt(row)) return Value(std::monostate{});
  const ColumnData& src = dict_view ? dict : values;
  const size_t idx = dict_view ? codes[row] : row;
  switch (type) {
    case DataType::kBool:
      return Value(std::get<std::vector<uint8_t>>(src)[idx] != 0);
    case DataType::kInt64:
      return Value(std::get<std::vector<int64_t>>(src)[idx]);
    case DataType::kDouble:
      return Value(std::get<std::vector<double>>(src)[idx]);
    case DataType::kString:
      return Value(std::get<std::vector<std::string>>(src)[idx]);
    case DataType::kNull:
      break;
  }
  return Value(std::monostate{});
}

Result<ColumnChunkData> LakeFileReader::ReadColumnChunk(size_t group,
                                                        size_t column) const {
  if (group >= groups_.size() || column >= schema_.num_fields()) {
    return Status::InvalidArgument("lakefile: group/column out of range");
  }
  const ChunkMeta& chunk = groups_[group].columns[column];
  const size_t num_rows = groups_[group].num_rows;
  Decoder dec(ByteView(file_.data() + chunk.offset, chunk.size));
  if (dec.Remaining() < 2) return Status::Corruption("chunk: header");
  auto encoding = static_cast<codec::Encoding>(*dec.position());
  dec.Skip(1);
  auto compression = static_cast<codec::Compression>(*dec.position());
  dec.Skip(1);
  uint64_t raw_len, data_len;
  if (!dec.GetVarint(&raw_len) || !dec.GetVarint(&data_len)) {
    return Status::Corruption("chunk: lengths");
  }
  if (dec.Remaining() < data_len + 4) return Status::Corruption("chunk: data");
  ByteView payload(dec.position(), data_len);
  dec.Skip(data_len);
  uint32_t expected_crc;
  if (!dec.GetFixed32(&expected_crc)) return Status::Corruption("chunk: crc");
  if (Crc32c(payload) != expected_crc) {
    return Status::Corruption("chunk: crc mismatch");
  }
  SL_ASSIGN_OR_RETURN(Bytes raw,
                      codec::Decompress(compression, payload, raw_len));

  ColumnChunkData out;
  out.type = schema_.field(column).type;
  out.num_rows = num_rows;
  out.raw_bytes = raw.size();

  Decoder body((ByteView(raw)));
  uint64_t null_count;
  if (!body.GetVarint(&null_count)) {
    return Status::Corruption("chunk: null count");
  }
  if (null_count > num_rows) {
    return Status::Corruption("chunk: null count bogus");
  }
  if (null_count > 0) {
    const size_t mask_bytes = (num_rows + 7) / 8;
    if (body.Remaining() < mask_bytes) {
      return Status::Corruption("chunk: null mask");
    }
    SL_ASSIGN_OR_RETURN(
        out.null_mask,
        codec::DecodeBools(ByteView(body.position(), mask_bytes), num_rows));
    body.Skip(mask_bytes);
  }
  ByteView vals(body.position(), body.Remaining());

  switch (out.type) {
    case DataType::kBool: {
      SL_ASSIGN_OR_RETURN(auto decoded, codec::DecodeBools(vals, num_rows));
      out.values = std::move(decoded);
      return out;
    }
    case DataType::kInt64: {
      if (encoding == codec::Encoding::kDict) {
        SL_ASSIGN_OR_RETURN(auto parts,
                            codec::DecodeInt64DictParts(vals, num_rows));
        out.dict_view = true;
        out.dict = std::move(parts.dict);
        out.codes = std::move(parts.codes);
        return out;
      }
      SL_ASSIGN_OR_RETURN(auto decoded,
                          codec::DecodeInt64s(vals, encoding, num_rows));
      out.values = std::move(decoded);
      return out;
    }
    case DataType::kDouble: {
      SL_ASSIGN_OR_RETURN(auto decoded, codec::DecodeDoubles(vals, num_rows));
      out.values = std::move(decoded);
      return out;
    }
    case DataType::kString: {
      if (encoding == codec::Encoding::kDict) {
        SL_ASSIGN_OR_RETURN(auto parts,
                            codec::DecodeStringDictParts(vals, num_rows));
        out.dict_view = true;
        out.dict = std::move(parts.dict);
        out.codes = std::move(parts.codes);
        return out;
      }
      SL_ASSIGN_OR_RETURN(auto decoded,
                          codec::DecodeStrings(vals, encoding, num_rows));
      out.values = std::move(decoded);
      return out;
    }
    case DataType::kNull:
      break;
  }
  return Status::Corruption("chunk: unknown column type");
}

Result<ColumnData> LakeFileReader::ReadColumn(size_t group,
                                              size_t column) const {
  SL_ASSIGN_OR_RETURN(ColumnChunkData chunk, ReadColumnChunk(group, column));
  if (!chunk.dict_view) return std::move(chunk.values);
  // Expand dictionary codes into plain values (NULL rows already carry the
  // dictionary entry their default code points at).
  switch (chunk.type) {
    case DataType::kBool: {
      std::vector<uint8_t> vals;
      vals.reserve(chunk.codes.size());
      const auto& dict = std::get<std::vector<uint8_t>>(chunk.dict);
      for (uint32_t c : chunk.codes) vals.push_back(dict[c]);
      return ColumnData(std::move(vals));
    }
    case DataType::kInt64: {
      std::vector<int64_t> vals;
      vals.reserve(chunk.codes.size());
      const auto& dict = std::get<std::vector<int64_t>>(chunk.dict);
      for (uint32_t c : chunk.codes) vals.push_back(dict[c]);
      return ColumnData(std::move(vals));
    }
    case DataType::kDouble: {
      std::vector<double> vals;
      vals.reserve(chunk.codes.size());
      const auto& dict = std::get<std::vector<double>>(chunk.dict);
      for (uint32_t c : chunk.codes) vals.push_back(dict[c]);
      return ColumnData(std::move(vals));
    }
    case DataType::kString: {
      std::vector<std::string> vals;
      vals.reserve(chunk.codes.size());
      const auto& dict = std::get<std::vector<std::string>>(chunk.dict);
      for (uint32_t c : chunk.codes) vals.push_back(dict[c]);
      return ColumnData(std::move(vals));
    }
    case DataType::kNull:
      break;
  }
  return Status::Corruption("chunk: unknown column type");
}

Result<std::vector<Row>> LakeFileReader::ReadRowGroup(size_t group) const {
  if (group >= groups_.size()) {
    return Status::InvalidArgument("lakefile: group out of range");
  }
  const size_t num_rows = groups_[group].num_rows;
  std::vector<Row> rows(num_rows);
  for (Row& r : rows) r.fields.resize(schema_.num_fields());
  for (size_t col = 0; col < schema_.num_fields(); ++col) {
    SL_ASSIGN_OR_RETURN(ColumnChunkData data, ReadColumnChunk(group, col));
    for (size_t i = 0; i < num_rows; ++i) {
      rows[i].fields[col] = data.ValueAt(i);
    }
  }
  return rows;
}

Result<std::vector<Row>> LakeFileReader::ReadAll() const {
  std::vector<Row> all;
  all.reserve(num_rows());
  for (size_t g = 0; g < groups_.size(); ++g) {
    SL_ASSIGN_OR_RETURN(std::vector<Row> rows, ReadRowGroup(g));
    for (Row& r : rows) all.push_back(std::move(r));
  }
  return all;
}

}  // namespace streamlake::format
