#include "format/types.h"

#include "common/logging.h"

namespace streamlake::format {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "bool";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kNull:
      return "null";
  }
  return "?";
}

DataType TypeOf(const Value& v) {
  return static_cast<DataType>(v.index());
}

int CompareValues(const Value& a, const Value& b) {
  if (IsNull(a) || IsNull(b)) {
    if (IsNull(a) && IsNull(b)) return 0;
    return IsNull(a) ? -1 : 1;
  }
  SL_CHECK(a.index() == b.index());
  switch (TypeOf(a)) {
    case DataType::kBool: {
      int x = std::get<bool>(a), y = std::get<bool>(b);
      return x - y;
    }
    case DataType::kInt64: {
      int64_t x = std::get<int64_t>(a), y = std::get<int64_t>(b);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kDouble: {
      double x = std::get<double>(a), y = std::get<double>(b);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kString: {
      return std::get<std::string>(a).compare(std::get<std::string>(b));
    }
    case DataType::kNull:
      return 0;  // unreachable: handled above
  }
  return 0;
}

std::string ValueToString(const Value& v) {
  switch (TypeOf(v)) {
    case DataType::kBool:
      return std::get<bool>(v) ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(std::get<int64_t>(v));
    case DataType::kDouble:
      return std::to_string(std::get<double>(v));
    case DataType::kString:
      return std::get<std::string>(v);
    case DataType::kNull:
      return "NULL";
  }
  return "";
}

void EncodeValue(Bytes* dst, const Value& v) {
  dst->push_back(static_cast<uint8_t>(TypeOf(v)));
  switch (TypeOf(v)) {
    case DataType::kBool:
      dst->push_back(std::get<bool>(v) ? 1 : 0);
      break;
    case DataType::kInt64:
      PutVarint64Signed(dst, std::get<int64_t>(v));
      break;
    case DataType::kDouble: {
      uint64_t bits;
      double d = std::get<double>(v);
      std::memcpy(&bits, &d, 8);
      PutFixed64(dst, bits);
      break;
    }
    case DataType::kString:
      PutLengthPrefixed(dst, std::string_view(std::get<std::string>(v)));
      break;
    case DataType::kNull:
      break;  // tag only, no payload
  }
}

Result<Value> DecodeValue(Decoder* dec) {
  if (dec->Remaining() < 1) return Status::Corruption("value: missing tag");
  uint8_t tag = *dec->position();
  dec->Skip(1);
  switch (static_cast<DataType>(tag)) {
    case DataType::kBool: {
      if (dec->Remaining() < 1) return Status::Corruption("value: bool");
      bool b = *dec->position() != 0;
      dec->Skip(1);
      return Value(b);
    }
    case DataType::kInt64: {
      int64_t v;
      if (!dec->GetVarintSigned(&v)) return Status::Corruption("value: int64");
      return Value(v);
    }
    case DataType::kDouble: {
      uint64_t bits;
      if (!dec->GetFixed64(&bits)) return Status::Corruption("value: double");
      double d;
      std::memcpy(&d, &bits, 8);
      return Value(d);
    }
    case DataType::kString: {
      std::string s;
      if (!dec->GetString(&s)) return Status::Corruption("value: string");
      return Value(std::move(s));
    }
    case DataType::kNull:
      return Value(std::monostate{});
  }
  return Status::Corruption("value: unknown type tag");
}

}  // namespace streamlake::format
