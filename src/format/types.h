#ifndef STREAMLAKE_FORMAT_TYPES_H_
#define STREAMLAKE_FORMAT_TYPES_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/coding.h"
#include "common/result.h"

namespace streamlake::format {

/// Column types supported by table objects. Timestamps are kInt64 seconds
/// (matching the paper's start_time predicates in Fig. 13). kNull is a
/// value-only tag: cells may be NULL, but a schema field never has type kNull.
enum class DataType : uint8_t {
  kBool = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
  kNull = 4,
};

const char* DataTypeName(DataType type);

/// One cell value. The variant alternatives parallel DataType; monostate is
/// SQL NULL.
using Value = std::variant<bool, int64_t, double, std::string, std::monostate>;

DataType TypeOf(const Value& v);

inline bool IsNull(const Value& v) {
  return std::holds_alternative<std::monostate>(v);
}

/// Three-way comparison for same-typed values: <0, 0, >0. NULL compares equal
/// to NULL and sorts before every non-NULL value. Comparing two different
/// non-NULL types is a programming error (checked).
int CompareValues(const Value& a, const Value& b);

std::string ValueToString(const Value& v);

/// Serialize one value (self-describing: type tag + payload).
void EncodeValue(Bytes* dst, const Value& v);
Result<Value> DecodeValue(Decoder* dec);

/// A row of a table; field order matches the table schema.
struct Row {
  std::vector<Value> fields;

  bool operator==(const Row& other) const { return fields == other.fields; }
};

}  // namespace streamlake::format

#endif  // STREAMLAKE_FORMAT_TYPES_H_
