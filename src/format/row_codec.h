#ifndef STREAMLAKE_FORMAT_ROW_CODEC_H_
#define STREAMLAKE_FORMAT_ROW_CODEC_H_

#include "format/schema.h"
#include "format/types.h"

namespace streamlake::format {

/// Row-oriented (un-typed-tagged) serialization against a known schema.
/// Used for stream message payloads and the row-format archive; the
/// columnar LakeFile is the analytical counterpart.
void EncodeRow(const Schema& schema, const Row& row, Bytes* dst);

Result<Row> DecodeRow(const Schema& schema, Decoder* dec);
Result<Row> DecodeRow(const Schema& schema, ByteView data);

}  // namespace streamlake::format

#endif  // STREAMLAKE_FORMAT_ROW_CODEC_H_
