#ifndef STREAMLAKE_FORMAT_LAKEFILE_H_
#define STREAMLAKE_FORMAT_LAKEFILE_H_

#include <optional>
#include <variant>
#include <vector>

#include "codec/compression.h"
#include "codec/encoding.h"
#include "format/schema.h"
#include "format/types.h"

namespace streamlake::format {

/// \brief LakeFile: StreamLake's columnar analytics format.
///
/// Plays the role Parquet plays in the paper (Section IV-B): rows are
/// organized into row groups; each column chunk is encoded (plain / RLE /
/// delta / dictionary / bit-packed), block-compressed, and CRC-protected;
/// the footer carries per-chunk min/max statistics so queries can skip
/// whole row groups ("footers contain statistics to support data skipping
/// within the file").
///
/// Layout:
///   [magic][chunk]...[chunk][footer][footer_size:4][magic]
///   chunk  = [encoding u8][compression u8][raw_len][data_len][data][crc:4]
///   footer = schema, row-group directory (offsets, row counts, stats)
struct LakeFileOptions {
  size_t rows_per_group = 8192;
  codec::Compression compression = codec::Compression::kLz;
  bool enable_stats = true;
};

/// Per-column statistics of one row group (min/max plus, when written by a
/// stats-enabled writer, null count / exact distinct count / average width).
struct ColumnStats {
  std::optional<Value> min;  // over non-NULL values
  std::optional<Value> max;
  bool has_extended = false;  // null_count/ndv/avg_width are populated
  uint64_t null_count = 0;
  uint64_t ndv = 0;       // exact distinct non-NULL values in the chunk
  double avg_width = 0.0;  // mean plain-encoded width of non-NULL values
};

struct ChunkMeta {
  uint64_t offset = 0;  // file offset of the chunk
  uint64_t size = 0;    // total bytes including chunk header and crc
  ColumnStats stats;
};

struct RowGroupMeta {
  uint64_t num_rows = 0;
  std::vector<ChunkMeta> columns;
};

/// Decoded values of one column chunk; alternative parallels DataType
/// (bools decode to uint8_t 0/1).
using ColumnData =
    std::variant<std::vector<uint8_t>, std::vector<int64_t>,
                 std::vector<double>, std::vector<std::string>>;

/// One column chunk in its cheapest scannable form. Dictionary chunks stay in
/// code space (`dict` + `codes`, `values` empty) so predicates can run on the
/// compressed representation; other encodings decode into `values`. NULL rows
/// carry the type's default in the value stream and are flagged in
/// `null_mask`.
struct ColumnChunkData {
  DataType type = DataType::kBool;
  uint64_t num_rows = 0;
  uint64_t raw_bytes = 0;  // uncompressed payload size == decode cost
  ColumnData values;
  bool dict_view = false;
  ColumnData dict;              // dictionary entries (dict_view only)
  std::vector<uint32_t> codes;  // per-row dictionary codes (dict_view only)
  std::vector<uint8_t> null_mask;  // 1 = NULL at row; empty when no NULLs

  bool IsNullAt(size_t row) const {
    return !null_mask.empty() && null_mask[row] != 0;
  }
  /// Materializes one cell (NULL-aware; indexes through the dictionary for
  /// dict views).
  Value ValueAt(size_t row) const;
};

/// Streaming writer; buffer rows, cut a row group every rows_per_group,
/// Finish() returns the complete file bytes.
class LakeFileWriter {
 public:
  LakeFileWriter(Schema schema, LakeFileOptions options = LakeFileOptions());

  Status Append(const Row& row);
  Status AppendBatch(const std::vector<Row>& rows);

  uint64_t rows_written() const { return rows_written_; }

  /// Flush pending rows and return the serialized file. The writer cannot
  /// be reused afterwards.
  Result<Bytes> Finish();

 private:
  Status FlushRowGroup();

  Schema schema_;
  LakeFileOptions options_;
  std::vector<Row> pending_;
  Bytes file_;
  std::vector<RowGroupMeta> groups_;
  uint64_t rows_written_ = 0;
  bool finished_ = false;
};

/// Random-access reader over an in-memory LakeFile.
class LakeFileReader {
 public:
  /// Parses the footer; chunk payloads are decoded lazily per column.
  static Result<LakeFileReader> Open(Bytes file);

  const Schema& schema() const { return schema_; }
  size_t num_row_groups() const { return groups_.size(); }
  uint64_t num_rows() const;
  const RowGroupMeta& row_group(size_t i) const { return groups_[i]; }

  /// Decode one column chunk of one row group (NULL rows become type
  /// defaults; use ReadColumnChunk for NULL-aware access).
  Result<ColumnData> ReadColumn(size_t group, size_t column) const;

  /// Decode one column chunk into its scannable form: dictionary chunks stay
  /// as dict + codes (compute-on-compressed), others as plain values.
  Result<ColumnChunkData> ReadColumnChunk(size_t group, size_t column) const;

  /// Materialize all rows of one row group (all columns).
  Result<std::vector<Row>> ReadRowGroup(size_t group) const;

  /// Materialize the whole file.
  Result<std::vector<Row>> ReadAll() const;

  size_t file_size() const { return file_.size(); }

 private:
  LakeFileReader() = default;

  Bytes file_;
  Schema schema_;
  std::vector<RowGroupMeta> groups_;
};

}  // namespace streamlake::format

#endif  // STREAMLAKE_FORMAT_LAKEFILE_H_
