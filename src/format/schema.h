#ifndef STREAMLAKE_FORMAT_SCHEMA_H_
#define STREAMLAKE_FORMAT_SCHEMA_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "format/types.h"

namespace streamlake::format {

struct Field {
  std::string name;
  DataType type;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered list of named, typed columns. Declared per topic
/// (`convert_2_table.table_schema`, Fig. 8) and stored in the table catalog.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Field> fields) : fields_(fields) {}
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column named `name`, or -1 when absent.
  int FieldIndex(std::string_view name) const;

  /// Verify `row` has this schema's arity and field types.
  Status ValidateRow(const Row& row) const;

  void EncodeTo(Bytes* dst) const;
  static Result<Schema> DecodeFrom(Decoder* dec);

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace streamlake::format

#endif  // STREAMLAKE_FORMAT_SCHEMA_H_
