#include "format/row_codec.h"

#include <cstring>

#include "common/logging.h"

namespace streamlake::format {

void EncodeRow(const Schema& schema, const Row& row, Bytes* dst) {
  SL_CHECK(row.fields.size() == schema.num_fields());
  for (size_t i = 0; i < row.fields.size(); ++i) {
    const Value& v = row.fields[i];
    SL_CHECK(TypeOf(v) == schema.field(i).type);
    switch (schema.field(i).type) {
      case DataType::kBool:
        dst->push_back(std::get<bool>(v) ? 1 : 0);
        break;
      case DataType::kInt64:
        PutVarint64Signed(dst, std::get<int64_t>(v));
        break;
      case DataType::kDouble: {
        uint64_t bits;
        double d = std::get<double>(v);
        std::memcpy(&bits, &d, 8);
        PutFixed64(dst, bits);
        break;
      }
      case DataType::kString:
        PutLengthPrefixed(dst, std::string_view(std::get<std::string>(v)));
        break;
    }
  }
}

Result<Row> DecodeRow(const Schema& schema, Decoder* dec) {
  Row row;
  row.fields.reserve(schema.num_fields());
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    switch (schema.field(i).type) {
      case DataType::kBool: {
        if (dec->Remaining() < 1) return Status::Corruption("row: bool");
        row.fields.emplace_back(*dec->position() != 0);
        dec->Skip(1);
        break;
      }
      case DataType::kInt64: {
        int64_t v;
        if (!dec->GetVarintSigned(&v)) return Status::Corruption("row: int64");
        row.fields.emplace_back(v);
        break;
      }
      case DataType::kDouble: {
        uint64_t bits;
        if (!dec->GetFixed64(&bits)) return Status::Corruption("row: double");
        double d;
        std::memcpy(&d, &bits, 8);
        row.fields.emplace_back(d);
        break;
      }
      case DataType::kString: {
        std::string s;
        if (!dec->GetString(&s)) return Status::Corruption("row: string");
        row.fields.emplace_back(std::move(s));
        break;
      }
    }
  }
  return row;
}

Result<Row> DecodeRow(const Schema& schema, ByteView data) {
  Decoder dec(data);
  return DecodeRow(schema, &dec);
}

}  // namespace streamlake::format
