#include "kv/write_batch.h"

#include "common/coding.h"
#include "common/hash.h"

namespace streamlake::kv {

namespace {
constexpr uint8_t kOpPut = 1;
constexpr uint8_t kOpDelete = 2;
}  // namespace

void WriteBatch::EncodeTo(Bytes* dst) const {
  Bytes body;
  PutVarint64(&body, ops_.size());
  for (const Op& op : ops_) {
    body.push_back(op.is_delete ? kOpDelete : kOpPut);
    PutLengthPrefixed(&body, std::string_view(op.key));
    if (!op.is_delete) PutLengthPrefixed(&body, std::string_view(op.value));
  }
  // Record framing: [len][crc][body]; the CRC makes torn or bit-rotted WAL
  // tails detectable during recovery.
  PutVarint64(dst, body.size());
  PutFixed32(dst, Crc32c(ByteView(body)));
  AppendBytes(dst, ByteView(body));
}

size_t WriteBatch::DecodeFrom(ByteView data) {
  ops_.clear();
  Decoder frame(data);
  uint64_t body_len;
  uint32_t expected_crc;
  if (!frame.GetVarint(&body_len)) return 0;
  if (!frame.GetFixed32(&expected_crc)) return 0;
  if (frame.Remaining() < body_len) return 0;
  ByteView body(frame.position(), static_cast<size_t>(body_len));
  if (Crc32c(body) != expected_crc) return 0;

  Decoder dec(body);
  uint64_t count;
  if (!dec.GetVarint(&count)) return 0;
  for (uint64_t i = 0; i < count; ++i) {
    if (dec.Remaining() < 1) return 0;
    uint8_t tag = *dec.position();
    if (!dec.Skip(1)) return 0;
    Op op;
    op.is_delete = (tag == kOpDelete);
    if (tag != kOpPut && tag != kOpDelete) return 0;
    if (!dec.GetString(&op.key)) return 0;
    if (!op.is_delete && !dec.GetString(&op.value)) return 0;
    ops_.push_back(std::move(op));
  }
  size_t header = data.size() - frame.Remaining();
  return header + static_cast<size_t>(body_len);
}

}  // namespace streamlake::kv
