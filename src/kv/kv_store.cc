#include "common/mutex.h"
#include "kv/kv_store.h"

#include <algorithm>

#include "common/hash.h"
#include "common/metrics.h"

namespace streamlake::kv {

KvStore::KvStore(KvOptions options) : options_(options) {
  size_t stripes = options_.num_stripes == 0 ? 1 : options_.num_stripes;
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>(static_cast<uint32_t>(i)));
  }
}

size_t KvStore::StripeOf(std::string_view key) const {
  return static_cast<size_t>(Hash64(ByteView(key)) % stripes_.size());
}

// Dynamic lock set (one writer lock per touched stripe, ascending index
// order): invisible to Clang's static analysis, validated at runtime by
// the ranked-mutex checker via the stripe sub-rank.
Status KvStore::Write(const WriteBatch& batch) NO_THREAD_SAFETY_ANALYSIS {
  if (batch.empty()) return Status::OK();
  static Counter* batches =
      MetricsRegistry::Global().GetCounter("kv.write.batches");
  static Counter* ops = MetricsRegistry::Global().GetCounter("kv.write.ops");
  static Counter* bytes =
      MetricsRegistry::Global().GetCounter("kv.write.bytes");
  static Counter* stripe_contention =
      MetricsRegistry::Global().GetCounter("kv.stripe_contention");
  Bytes record;
  batch.EncodeTo(&record);
  const size_t record_size = record.size();
  batches->Increment();
  ops->Increment(batch.ops().size());
  bytes->Increment(record_size);

  // Group the commit by stripe: sorted unique indices, acquired ascending
  // (the only order the lock-rank checker permits for same-rank stripes),
  // so two batches touching overlapping stripe sets can never ABBA.
  std::vector<size_t> touched;
  touched.reserve(batch.ops().size());
  for (const WriteBatch::Op& op : batch.ops()) {
    touched.push_back(StripeOf(op.key));
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  for (size_t si : touched) {
    if (stripes_[si]->mu.LockCounted()) stripe_contention->Increment();
  }
  // Sequence assignment happens while every touched stripe is writer-held
  // and ops are applied before release (see the Stripe invariant in the
  // header), so snapshots never observe a partial batch.
  const uint64_t seq = sequence_.fetch_add(1) + 1;
  for (const WriteBatch::Op& op : batch.ops()) {
    Stripe& stripe = *stripes_[StripeOf(op.key)];
    auto& versions = stripe.table[op.key];
    if (op.is_delete) {
      versions.push_back(Version{seq, std::nullopt});
    } else {
      versions.push_back(Version{seq, op.value});
    }
  }
  // The whole batch is one WAL record, segmented onto the lowest touched
  // stripe; WalContents() k-way merges segments back into commit order.
  stripes_[touched.front()]->wal.emplace_back(seq, std::move(record));
  for (auto it = touched.rbegin(); it != touched.rend(); ++it) {
    stripes_[*it]->mu.Unlock();
  }

  if (options_.wal_device != nullptr) {
    options_.wal_device->ChargeWrite(record_size);
  }
  return Status::OK();
}

Status KvStore::Put(std::string_view key, std::string_view value) {
  WriteBatch batch;
  batch.Put(std::string(key), std::string(value));
  return Write(batch);
}

Status KvStore::Delete(std::string_view key) {
  WriteBatch batch;
  batch.Delete(std::string(key));
  return Write(batch);
}

Result<std::string> KvStore::GetAtSequence(std::string_view key,
                                           uint64_t sequence) const {
  static Counter* gets = MetricsRegistry::Global().GetCounter("kv.get.ops");
  static Counter* hits = MetricsRegistry::Global().GetCounter("kv.get.hits");
  static Counter* misses =
      MetricsRegistry::Global().GetCounter("kv.get.misses");
  static Counter* stripe_contention =
      MetricsRegistry::Global().GetCounter("kv.stripe_contention");
  gets->Increment();
  if (options_.read_device != nullptr) {
    options_.read_device->ChargeRead(key.size() + 64);
  }
  const Stripe& stripe = *stripes_[StripeOf(key)];
  bool contended = false;
  ReaderMutexLock lock(&stripe.mu, &contended);
  if (contended) stripe_contention->Increment();
  auto it = stripe.table.find(key);
  if (it == stripe.table.end()) {
    misses->Increment();
    return Status::NotFound(std::string(key));
  }
  // Versions are appended in sequence order; find the last one <= sequence.
  const auto& versions = it->second;
  for (auto rit = versions.rbegin(); rit != versions.rend(); ++rit) {
    if (rit->sequence <= sequence) {
      if (!rit->value.has_value()) {
        misses->Increment();
        return Status::NotFound(std::string(key));
      }
      hits->Increment();
      return *rit->value;
    }
  }
  misses->Increment();
  return Status::NotFound(std::string(key));
}

Result<std::string> KvStore::Get(std::string_view key) const {
  return GetAtSequence(key, UINT64_MAX);
}

Result<std::string> KvStore::Get(std::string_view key,
                                 const Snapshot& snap) const {
  return GetAtSequence(key, snap.sequence);
}

std::vector<std::pair<std::string, std::string>> KvStore::Scan(
    std::string_view start, std::string_view end, size_t limit) const {
  // Pin a snapshot first so the per-stripe collection below is one
  // consistent cut even while writers commit between stripe visits.
  return Scan(start, end, GetSnapshot(), limit);
}

std::vector<std::pair<std::string, std::string>> KvStore::Scan(
    std::string_view start, std::string_view end, const Snapshot& snap,
    size_t limit) const {
  static Counter* scans = MetricsRegistry::Global().GetCounter("kv.scan.ops");
  static Counter* rows = MetricsRegistry::Global().GetCounter("kv.scan.rows");
  scans->Increment();
  // Collect up to `limit` visible rows from each stripe's ordered range,
  // then merge: every key lives in exactly one stripe, and any key in the
  // global first-`limit` is necessarily in its own stripe's first-`limit`.
  // With a real limit the merge buffer is pre-reserved and pruned back to
  // the `limit` smallest keys whenever it doubles, so a limited scan holds
  // O(limit) rows, not stripes x limit.
  std::vector<std::pair<std::string, std::string>> out;
  bool bounded = limit < SIZE_MAX / 2;
  if (bounded) out.reserve(std::min<size_t>(limit, 1024) * 2);
  auto prune_to_limit = [&] {
    if (out.size() <= limit) return;
    std::nth_element(out.begin(), out.begin() + limit, out.end());
    out.resize(limit);
  };
  for (const auto& stripe : stripes_) {
    ReaderMutexLock lock(&stripe->mu);
    size_t taken = 0;
    auto it = stripe->table.lower_bound(start);
    for (; it != stripe->table.end() && taken < limit; ++it) {
      if (!end.empty() && it->first >= end) break;
      const auto& versions = it->second;
      for (auto rit = versions.rbegin(); rit != versions.rend(); ++rit) {
        if (rit->sequence <= snap.sequence) {
          if (rit->value.has_value()) {
            out.emplace_back(it->first, *rit->value);
            ++taken;
          }
          break;
        }
      }
    }
    if (bounded && out.size() > 2 * limit) prune_to_limit();
  }
  std::sort(out.begin(), out.end());
  if (out.size() > limit) out.resize(limit);
  if (options_.read_device != nullptr) {
    size_t bytes = 0;
    for (const auto& [k, v] : out) bytes += k.size() + v.size();
    options_.read_device->ChargeRead(bytes + 64);
  }
  rows->Increment(out.size());
  return out;
}

size_t KvStore::LiveKeyCount() const {
  size_t count = 0;
  for (const auto& stripe : stripes_) {
    ReaderMutexLock lock(&stripe->mu);
    for (const auto& [key, versions] : stripe->table) {
      if (!versions.empty() && versions.back().value.has_value()) ++count;
    }
  }
  return count;
}

Snapshot KvStore::GetSnapshot() const {
  return Snapshot{sequence_.load(std::memory_order_acquire)};
}

uint64_t KvStore::LatestSequence() const {
  return sequence_.load(std::memory_order_acquire);
}

void KvStore::ReleaseVersionsBefore(uint64_t sequence) {
  for (const auto& stripe : stripes_) {
    WriterMutexLock lock(&stripe->mu);
    auto it = stripe->table.begin();
    while (it != stripe->table.end()) {
      auto& versions = it->second;
      // Keep the newest version with sequence < `sequence` (it is still
      // the visible version at `sequence`), drop everything older.
      size_t keep_from = 0;
      for (size_t i = 0; i < versions.size(); ++i) {
        if (versions[i].sequence < sequence) keep_from = i;
      }
      versions.erase(versions.begin(), versions.begin() + keep_from);
      // Fully-deleted keys whose only surviving version is an old
      // tombstone can be garbage-collected.
      if (versions.size() == 1 && !versions[0].value.has_value() &&
          versions[0].sequence < sequence) {
        it = stripe->table.erase(it);
      } else {
        ++it;
      }
    }
  }
}

Bytes KvStore::WalContents() const {
  // Each stripe holds a WAL segment of (sequence, record) pairs; merge by
  // global commit sequence so replay order equals commit order (the torn-
  // tail guarantee: truncation always clips the NEWEST commit).
  std::vector<std::pair<uint64_t, Bytes>> entries;
  for (const auto& stripe : stripes_) {
    ReaderMutexLock lock(&stripe->mu);
    entries.insert(entries.end(), stripe->wal.begin(), stripe->wal.end());
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  Bytes out;
  for (const auto& [seq, rec] : entries) {
    AppendBytes(&out, ByteView(rec));
  }
  return out;
}

Result<size_t> KvStore::Recover(ByteView wal) {
  for (const auto& stripe : stripes_) {
    ReaderMutexLock lock(&stripe->mu);
    if (!stripe->table.empty()) {
      return Status::InvalidArgument("Recover requires an empty store");
    }
  }
  size_t applied = 0;
  size_t offset = 0;
  while (offset < wal.size()) {
    WriteBatch batch;
    size_t consumed =
        batch.DecodeFrom(wal.subview(offset, wal.size() - offset));
    if (consumed == 0) break;  // torn tail; stop cleanly like a real WAL
    SL_RETURN_NOT_OK(Write(batch));
    offset += consumed;
    ++applied;
  }
  return applied;
}

}  // namespace streamlake::kv
