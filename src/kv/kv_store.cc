#include "common/mutex.h"
#include "kv/kv_store.h"

#include <algorithm>

#include "common/metrics.h"

namespace streamlake::kv {

KvStore::KvStore(KvOptions options) : options_(options) {}

Status KvStore::Write(const WriteBatch& batch) {
  if (batch.empty()) return Status::OK();
  static Counter* batches =
      MetricsRegistry::Global().GetCounter("kv.write.batches");
  static Counter* ops = MetricsRegistry::Global().GetCounter("kv.write.ops");
  static Counter* bytes =
      MetricsRegistry::Global().GetCounter("kv.write.bytes");
  Bytes record;
  batch.EncodeTo(&record);
  batches->Increment();
  ops->Increment(batch.ops().size());
  bytes->Increment(record.size());
  {
    WriterMutexLock lock(&mu_);
    uint64_t seq = ++sequence_;
    for (const WriteBatch::Op& op : batch.ops()) {
      auto& versions = table_[op.key];
      if (op.is_delete) {
        versions.push_back(Version{seq, std::nullopt});
      } else {
        versions.push_back(Version{seq, op.value});
      }
    }
    AppendBytes(&wal_, ByteView(record));
  }
  if (options_.wal_device != nullptr) {
    options_.wal_device->ChargeWrite(record.size());
  }
  return Status::OK();
}

Status KvStore::Put(std::string_view key, std::string_view value) {
  WriteBatch batch;
  batch.Put(std::string(key), std::string(value));
  return Write(batch);
}

Status KvStore::Delete(std::string_view key) {
  WriteBatch batch;
  batch.Delete(std::string(key));
  return Write(batch);
}

Result<std::string> KvStore::GetAtSequence(std::string_view key,
                                           uint64_t sequence) const {
  static Counter* gets = MetricsRegistry::Global().GetCounter("kv.get.ops");
  static Counter* hits = MetricsRegistry::Global().GetCounter("kv.get.hits");
  static Counter* misses =
      MetricsRegistry::Global().GetCounter("kv.get.misses");
  gets->Increment();
  if (options_.read_device != nullptr) {
    options_.read_device->ChargeRead(key.size() + 64);
  }
  ReaderMutexLock lock(&mu_);
  auto it = table_.find(key);
  if (it == table_.end()) {
    misses->Increment();
    return Status::NotFound(std::string(key));
  }
  // Versions are appended in sequence order; find the last one <= sequence.
  const auto& versions = it->second;
  for (auto rit = versions.rbegin(); rit != versions.rend(); ++rit) {
    if (rit->sequence <= sequence) {
      if (!rit->value.has_value()) {
        misses->Increment();
        return Status::NotFound(std::string(key));
      }
      hits->Increment();
      return *rit->value;
    }
  }
  misses->Increment();
  return Status::NotFound(std::string(key));
}

Result<std::string> KvStore::Get(std::string_view key) const {
  return GetAtSequence(key, UINT64_MAX);
}

Result<std::string> KvStore::Get(std::string_view key,
                                 const Snapshot& snap) const {
  return GetAtSequence(key, snap.sequence);
}

std::vector<std::pair<std::string, std::string>> KvStore::Scan(
    std::string_view start, std::string_view end, size_t limit) const {
  return Scan(start, end, Snapshot{UINT64_MAX}, limit);
}

std::vector<std::pair<std::string, std::string>> KvStore::Scan(
    std::string_view start, std::string_view end, const Snapshot& snap,
    size_t limit) const {
  static Counter* scans = MetricsRegistry::Global().GetCounter("kv.scan.ops");
  static Counter* rows = MetricsRegistry::Global().GetCounter("kv.scan.rows");
  scans->Increment();
  std::vector<std::pair<std::string, std::string>> out;
  ReaderMutexLock lock(&mu_);
  auto it = table_.lower_bound(start);
  for (; it != table_.end() && out.size() < limit; ++it) {
    if (!end.empty() && it->first >= end) break;
    const auto& versions = it->second;
    for (auto rit = versions.rbegin(); rit != versions.rend(); ++rit) {
      if (rit->sequence <= snap.sequence) {
        if (rit->value.has_value()) {
          out.emplace_back(it->first, *rit->value);
        }
        break;
      }
    }
  }
  if (options_.read_device != nullptr) {
    size_t bytes = 0;
    for (const auto& [k, v] : out) bytes += k.size() + v.size();
    options_.read_device->ChargeRead(bytes + 64);
  }
  rows->Increment(out.size());
  return out;
}

size_t KvStore::LiveKeyCount() const {
  ReaderMutexLock lock(&mu_);
  size_t count = 0;
  for (const auto& [key, versions] : table_) {
    if (!versions.empty() && versions.back().value.has_value()) ++count;
  }
  return count;
}

Snapshot KvStore::GetSnapshot() const {
  ReaderMutexLock lock(&mu_);
  return Snapshot{sequence_};
}

uint64_t KvStore::LatestSequence() const {
  ReaderMutexLock lock(&mu_);
  return sequence_;
}

void KvStore::ReleaseVersionsBefore(uint64_t sequence) {
  WriterMutexLock lock(&mu_);
  auto it = table_.begin();
  while (it != table_.end()) {
    auto& versions = it->second;
    // Keep the newest version with sequence < `sequence` (it is still the
    // visible version at `sequence`), drop everything older.
    size_t keep_from = 0;
    for (size_t i = 0; i < versions.size(); ++i) {
      if (versions[i].sequence < sequence) keep_from = i;
    }
    versions.erase(versions.begin(), versions.begin() + keep_from);
    // Fully-deleted keys whose only surviving version is an old tombstone
    // can be garbage-collected.
    if (versions.size() == 1 && !versions[0].value.has_value() &&
        versions[0].sequence < sequence) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

Bytes KvStore::WalContents() const {
  ReaderMutexLock lock(&mu_);
  return wal_;
}

Result<size_t> KvStore::Recover(ByteView wal) {
  {
    ReaderMutexLock lock(&mu_);
    if (!table_.empty()) {
      return Status::InvalidArgument("Recover requires an empty store");
    }
  }
  size_t applied = 0;
  size_t offset = 0;
  while (offset < wal.size()) {
    WriteBatch batch;
    size_t consumed =
        batch.DecodeFrom(wal.subview(offset, wal.size() - offset));
    if (consumed == 0) break;  // torn tail; stop cleanly like a real WAL
    SL_RETURN_NOT_OK(Write(batch));
    offset += consumed;
    ++applied;
  }
  return applied;
}

}  // namespace streamlake::kv
