#ifndef STREAMLAKE_KV_KV_STORE_H_
#define STREAMLAKE_KV_KV_STORE_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "kv/write_batch.h"
#include "sim/device_model.h"

namespace streamlake::kv {

/// A consistent point-in-time view of a KvStore (MVCC sequence number).
struct Snapshot {
  uint64_t sequence = 0;
};

struct KvOptions {
  /// Simulated device the write-ahead log is persisted to; nullptr keeps
  /// the store purely in memory (no durability cost charged).
  sim::DeviceModel* wal_device = nullptr;
  /// Device charged on point reads; models the SCM/RDMA-resident catalog
  /// engine of Section IV-B. nullptr charges nothing.
  sim::DeviceModel* read_device = nullptr;
  /// Lock-striped sub-stores the keyspace is hashed over. Point ops touch
  /// one stripe; Scan merges per-stripe ordered ranges; batch commits lock
  /// only the stripes they touch, in ascending index order. Clamped to
  /// >= 1.
  size_t num_stripes = 16;
};

/// \brief Embedded, ordered, multi-version key-value store.
///
/// This is the "fault-tolerant key-value store" used throughout StreamLake:
/// the PLog record index (Fig. 4), the stream dispatcher topology, the
/// lakehouse catalog, and the metadata-acceleration write cache. It offers:
///  * atomic WriteBatch commits with a monotonic sequence number,
///  * MVCC snapshots (readers never block writers),
///  * ordered range scans,
///  * a CRC-protected WAL encoding for crash recovery.
///
/// Thread-safe. Old versions are retained until ReleaseVersionsBefore().
class KvStore {
 public:
  explicit KvStore(KvOptions options = KvOptions());

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Apply `batch` atomically; all ops become visible at one new sequence.
  Status Write(const WriteBatch& batch);

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);

  /// Read the latest visible version of `key`.
  Result<std::string> Get(std::string_view key) const;
  /// Read `key` as of `snap`.
  Result<std::string> Get(std::string_view key, const Snapshot& snap) const;

  bool Contains(std::string_view key) const { return Get(key).ok(); }

  /// Ordered scan of live keys in [start, end); empty `end` means "to the
  /// last key". Pass a snapshot for a consistent historical view.
  std::vector<std::pair<std::string, std::string>> Scan(
      std::string_view start, std::string_view end,
      size_t limit = SIZE_MAX) const;
  std::vector<std::pair<std::string, std::string>> Scan(
      std::string_view start, std::string_view end, const Snapshot& snap,
      size_t limit = SIZE_MAX) const;

  /// Number of live (non-tombstone) keys at the latest sequence.
  size_t LiveKeyCount() const;

  Snapshot GetSnapshot() const;
  uint64_t LatestSequence() const;

  /// Drop versions that no snapshot at or after `sequence` can observe.
  void ReleaseVersionsBefore(uint64_t sequence);

  /// Serialized WAL of every batch committed so far, in commit order.
  /// Replay with Recover() to reconstruct the store after a crash.
  Bytes WalContents() const;

  /// Rebuild state by replaying a WAL byte stream. The store must be empty.
  /// Stops at the first corrupt record (torn tail) and reports how many
  /// batches were applied.
  Result<size_t> Recover(ByteView wal);

 private:
  struct Version {
    uint64_t sequence;
    std::optional<std::string> value;  // nullopt == tombstone
  };

  /// One lock-striped sub-store. Keys hash to a stripe (StripeOf); each
  /// stripe owns an ordered sub-map and a WAL segment of (sequence,
  /// encoded batch) pairs. All stripe mutexes share LockRank::kKvStore and
  /// carry their array index as the stripe sub-rank, so the runtime
  /// checker enforces that multi-stripe commits acquire in ascending
  /// stripe-index order.
  ///
  /// Snapshot-consistency invariant: Write assigns its sequence from the
  /// global atomic WHILE HOLDING every touched stripe's writer lock and
  /// applies all ops before releasing, so a reader whose snapshot S
  /// includes that sequence either sees the batch or blocks on the stripe
  /// lock until it is applied — never a partial batch.
  struct Stripe {
    explicit Stripe(uint32_t index)
        : mu(LockRank::kKvStore, "kv.store.stripe", index) {}
    mutable SharedMutex mu{LockRank::kKvStore, "kv.store.stripe"};
    std::map<std::string, std::vector<Version>, std::less<>> table
        GUARDED_BY(mu);
    std::vector<std::pair<uint64_t, Bytes>> wal GUARDED_BY(mu);
  };

  size_t StripeOf(std::string_view key) const;
  Result<std::string> GetAtSequence(std::string_view key,
                                    uint64_t sequence) const;

  KvOptions options_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  /// Global commit sequence; see the Stripe invariant above for why a
  /// plain atomic suffices.
  std::atomic<uint64_t> sequence_{0};
};

}  // namespace streamlake::kv

#endif  // STREAMLAKE_KV_KV_STORE_H_
