#ifndef STREAMLAKE_KV_WRITE_BATCH_H_
#define STREAMLAKE_KV_WRITE_BATCH_H_

#include <string>
#include <vector>

#include "common/bytes.h"

namespace streamlake::kv {

/// A group of mutations applied atomically to a KvStore: either all become
/// visible at one sequence number or none do. This is what makes the stream
/// dispatcher's topology updates and the lakehouse catalog updates safe.
class WriteBatch {
 public:
  struct Op {
    bool is_delete = false;
    std::string key;
    std::string value;  // empty for deletes
  };

  void Put(std::string key, std::string value) {
    ops_.push_back(Op{false, std::move(key), std::move(value)});
  }

  void Delete(std::string key) {
    ops_.push_back(Op{true, std::move(key), std::string()});
  }

  void Clear() { ops_.clear(); }
  bool empty() const { return ops_.empty(); }
  size_t size() const { return ops_.size(); }
  const std::vector<Op>& ops() const { return ops_; }

  /// Total payload bytes; used to charge the simulated WAL device.
  size_t ByteSize() const {
    size_t total = 0;
    for (const Op& op : ops_) total += op.key.size() + op.value.size() + 2;
    return total;
  }

  /// Appends a self-delimiting binary encoding of this batch to `dst`
  /// (the WAL record format). DecodeFrom is the inverse.
  void EncodeTo(Bytes* dst) const;

  /// Decodes one batch from `data`, returning bytes consumed or 0 on
  /// corruption.
  size_t DecodeFrom(ByteView data);

 private:
  std::vector<Op> ops_;
};

}  // namespace streamlake::kv

#endif  // STREAMLAKE_KV_WRITE_BATCH_H_
