#include "convert/converter.h"

#include "common/metrics.h"
#include "format/row_codec.h"
#include "streaming/producer.h"

namespace streamlake::convert {

std::string ConversionService::OffsetKey(const std::string& topic,
                                         uint32_t stream) const {
  return "convert/" + topic + "/" + std::to_string(stream);
}

std::string ConversionService::LastRunKey(const std::string& topic) const {
  return "convert/" + topic + "/last_run";
}

Result<ConversionService::RunStats> ConversionService::Run(
    const std::string& topic, bool force) {
  SL_ASSIGN_OR_RETURN(streaming::TopicConfig config,
                      dispatcher_->GetTopicConfig(topic));
  RunStats stats;
  const streaming::ConvertToTableConfig& convert = config.convert_2_table;
  if (!convert.enabled && !force) return stats;
  stats.table_name = convert.table_path;

  SL_ASSIGN_OR_RETURN(uint32_t streams, dispatcher_->NumStreams(topic));

  // Gather per-stream conversion frontiers and unconverted counts.
  std::vector<uint64_t> from(streams, 0);
  uint64_t unconverted = 0;
  for (uint32_t s = 0; s < streams; ++s) {
    auto committed = meta_->Get(OffsetKey(topic, s));
    if (committed.ok()) from[s] = std::stoull(*committed);
    SL_ASSIGN_OR_RETURN(uint64_t object_id, dispatcher_->StreamObjectId(topic, s));
    stream::StreamObject* object = objects_->GetObject(object_id);
    if (object == nullptr) return Status::NotFound("stream object gone");
    unconverted += object->frontier() - from[s];
  }

  // Trigger evaluation: message-count threshold or elapsed time.
  int64_t now = static_cast<int64_t>(clock_->NowSeconds());
  int64_t last_run = 0;
  auto last = meta_->Get(LastRunKey(topic));
  if (last.ok()) last_run = std::stoll(*last);
  bool count_trigger = unconverted >= convert.split_offset;
  bool time_trigger =
      unconverted > 0 &&
      now - last_run >= static_cast<int64_t>(convert.split_time_sec);
  if (!force && !count_trigger && !time_trigger) return stats;
  stats.triggered = true;
  static Counter* triggered_runs =
      MetricsRegistry::Global().GetCounter("convert.runs_triggered");
  triggered_runs->Increment();
  if (unconverted == 0) {
    SL_RETURN_NOT_OK(meta_->Put(LastRunKey(topic), std::to_string(now)));
    return stats;
  }

  // Resolve or create the target table.
  auto table_result = lakehouse_->GetTable(convert.table_path);
  table::Table* table = nullptr;
  if (table_result.ok()) {
    table = *table_result;
  } else if (table_result.status().IsNotFound()) {
    SL_ASSIGN_OR_RETURN(table, lakehouse_->CreateTable(convert.table_path,
                                                       convert.table_schema,
                                                       convert.partition_spec));
  } else {
    return table_result.status();
  }

  // Convert each stream's tail: decode message values as rows of the
  // topic's declared table schema.
  for (uint32_t s = 0; s < streams; ++s) {
    SL_ASSIGN_OR_RETURN(uint64_t object_id,
                        dispatcher_->StreamObjectId(topic, s));
    stream::StreamObject* object = objects_->GetObject(object_id);
    SL_ASSIGN_OR_RETURN(auto records, object->Read(from[s], SIZE_MAX));
    if (records.empty()) continue;
    std::vector<format::Row> rows;
    rows.reserve(records.size());
    for (const stream::StreamRecord& record : records) {
      auto row = format::DecodeRow(convert.table_schema,
                                   ByteView(record.value));
      if (!row.ok()) {
        ++stats.parse_errors;
        continue;
      }
      rows.push_back(std::move(*row));
    }
    if (!rows.empty()) {
      SL_RETURN_NOT_OK(table->Insert(rows));
    }
    stats.converted_records += rows.size();
    uint64_t new_offset = from[s] + records.size();
    SL_RETURN_NOT_OK(meta_->Put(OffsetKey(topic, s),
                                std::to_string(new_offset)));
    if (convert.delete_msg) {
      SL_RETURN_NOT_OK(object->Flush());
      SL_RETURN_NOT_OK(object->TrimTo(new_offset));
      stats.trimmed_records += records.size();
    }
  }
  SL_RETURN_NOT_OK(meta_->Put(LastRunKey(topic), std::to_string(now)));
  static Counter* converted =
      MetricsRegistry::Global().GetCounter("convert.converted_records");
  static Counter* parse_errors =
      MetricsRegistry::Global().GetCounter("convert.parse_errors");
  static Counter* trimmed =
      MetricsRegistry::Global().GetCounter("convert.trimmed_records");
  converted->Increment(stats.converted_records);
  parse_errors->Increment(stats.parse_errors);
  trimmed->Increment(stats.trimmed_records);
  return stats;
}

Result<uint64_t> ConversionService::PlaybackToStream(
    const std::string& table_name, const std::string& topic,
    int64_t as_of_timestamp) {
  SL_ASSIGN_OR_RETURN(table::Table * table, lakehouse_->GetTable(table_name));
  SL_ASSIGN_OR_RETURN(table::TableInfo info, table->Info());

  query::QuerySpec all;
  table::SelectOptions options;
  options.as_of_timestamp = as_of_timestamp;
  SL_ASSIGN_OR_RETURN(query::QueryResult result, table->Select(all, options));

  streaming::Producer producer(dispatcher_);
  uint64_t produced = 0;
  for (const format::Row& row : result.rows) {
    Bytes value;
    format::EncodeRow(info.schema, row, &value);
    streaming::Message message;
    message.value = BytesToString(value);
    // Key by partition value so playback preserves per-key ordering.
    auto partition = info.partition_spec.PartitionOf(info.schema, row);
    if (partition.ok()) message.key = *partition;
    SL_ASSIGN_OR_RETURN([[maybe_unused]] uint64_t offset,
                        producer.Send(topic, message));
    ++produced;
  }
  static Counter* playback =
      MetricsRegistry::Global().GetCounter("convert.playback_records");
  playback->Increment(produced);
  return produced;
}

}  // namespace streamlake::convert
