#ifndef STREAMLAKE_CONVERT_CONVERTER_H_
#define STREAMLAKE_CONVERT_CONVERTER_H_

#include <string>

#include "streaming/dispatcher.h"
#include "table/lakehouse.h"

namespace streamlake::convert {

/// \brief The stream-to-table background service (Section V-B).
///
/// "A background process will apply the table_schema to convert messages
/// to table object records periodically and save them in table_path. The
/// conversion is triggered by either an accumulation of 10^7 messages or
/// the passing of 36000 seconds." With delete_msg set, the converted
/// stream tail is trimmed so one copy serves both stream and batch
/// processing — the 75% storage saving of Table I.
///
/// The reverse conversion (table records back to stream messages, "data
/// playback") is PlaybackToStream().
class ConversionService {
 public:
  ConversionService(streaming::StreamDispatcher* dispatcher,
                    stream::StreamObjectManager* objects,
                    table::LakehouseService* lakehouse, kv::KvStore* meta,
                    sim::SimClock* clock)
      : dispatcher_(dispatcher),
        objects_(objects),
        lakehouse_(lakehouse),
        meta_(meta),
        clock_(clock) {}

  struct RunStats {
    bool triggered = false;
    uint64_t converted_records = 0;
    uint64_t parse_errors = 0;
    uint64_t trimmed_records = 0;
    std::string table_name;
  };

  /// One pass over `topic`: convert if a trigger fired (or `force`).
  /// Creates the target table on first conversion.
  Result<RunStats> Run(const std::string& topic, bool force = false);

  /// Reverse conversion: publish the rows of `table_name` (optionally as
  /// of a past timestamp) into `topic`. Returns messages produced.
  Result<uint64_t> PlaybackToStream(const std::string& table_name,
                                    const std::string& topic,
                                    int64_t as_of_timestamp = -1);

 private:
  std::string OffsetKey(const std::string& topic, uint32_t stream) const;
  std::string LastRunKey(const std::string& topic) const;

  streaming::StreamDispatcher* dispatcher_;
  stream::StreamObjectManager* objects_;
  table::LakehouseService* lakehouse_;
  kv::KvStore* meta_;
  sim::SimClock* clock_;
};

}  // namespace streamlake::convert

#endif  // STREAMLAKE_CONVERT_CONVERTER_H_
