#ifndef STREAMLAKE_WORKLOAD_OPENMESSAGING_H_
#define STREAMLAKE_WORKLOAD_OPENMESSAGING_H_

#include "streaming/consumer.h"
#include "streaming/producer.h"

namespace streamlake::workload {

/// Configuration of one OpenMessaging-style run ("messages are sent from
/// producers to consumers in a fixed size of 1 KB", Section VII-C).
struct OmbConfig {
  std::string topic = "omb";
  uint32_t partitions = 16;
  size_t message_bytes = 1024;
  /// Offered rate in messages per simulated second.
  double target_rate = 100000;
  uint64_t total_messages = 50000;
  size_t consume_batch = 512;
  /// Poll the consumer every this many produced messages.
  size_t poll_every = 256;
};

struct OmbResult {
  uint64_t messages_produced = 0;
  uint64_t messages_consumed = 0;
  double duration_sec = 0;            // simulated
  double produce_throughput = 0;      // msg / simulated second
  double end_to_end_p50_us = 0;       // send -> consume, simulated
  double end_to_end_p99_us = 0;
  double end_to_end_max_us = 0;
};

/// \brief Paced produce/consume driver measuring throughput and
/// end-to-end latency percentiles on the simulated clock — the workload
/// generator behind the Fig. 14 sweeps, exposed as a library so users can
/// benchmark their own deployments.
class OmbDriver {
 public:
  OmbDriver(streaming::StreamDispatcher* dispatcher, kv::KvStore* offsets,
            sim::SimClock* clock)
      : dispatcher_(dispatcher), offsets_(offsets), clock_(clock) {}

  /// Creates the topic (if absent) and runs one paced sweep.
  Result<OmbResult> Run(const OmbConfig& config);

 private:
  streaming::StreamDispatcher* dispatcher_;
  kv::KvStore* offsets_;
  sim::SimClock* clock_;
};

}  // namespace streamlake::workload

#endif  // STREAMLAKE_WORKLOAD_OPENMESSAGING_H_
