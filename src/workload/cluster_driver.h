#ifndef STREAMLAKE_WORKLOAD_CLUSTER_DRIVER_H_
#define STREAMLAKE_WORKLOAD_CLUSTER_DRIVER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/streamlake.h"

namespace streamlake::workload {

/// Shape of one cluster-scale simulation: how many logical clients, how
/// they skew across tenants, and what they do.
struct ClusterConfig {
  /// Logical clients, each an independent open-loop arrival process. The
  /// driver superposes them per tenant (a tenant with k clients offers a
  /// Poisson stream at k times the per-client rate), so 10^5-10^6 clients
  /// cost the same to drive as their aggregate event count.
  uint64_t logical_clients = 100000;
  uint32_t tenants = 20;
  /// Client -> tenant assignment skew (Zipf exponent in (0,1)): some
  /// tenants are naturally much larger than others, like production.
  double tenant_zipf_theta = 0.75;

  uint32_t topics_per_tenant = 2;
  /// Which of a tenant's topics a produce hits (Zipf exponent).
  double topic_zipf_theta = 0.8;
  uint32_t streams_per_topic = 2;

  /// Per-client offered rate; tenant rate = clients x this.
  double ops_per_client_per_sec = 0.3;
  /// Simulated duration of the run.
  double duration_sec = 2.0;

  /// Index of a tenant whose clients misbehave (offer hot_multiplier x
  /// their fair rate); -1 = nobody is hot.
  int hot_tenant = -1;
  double hot_multiplier = 100.0;

  /// Threads driving the tenant event loops. Tenants are partitioned
  /// across threads, so per-tenant admission counters are deterministic
  /// at any thread count (absent a shared cluster-wide bucket); full
  /// bit-determinism of global time-ordering needs 1.
  uint32_t driver_threads = 1;
  uint64_t seed = 42;

  uint32_t message_bytes = 128;
  /// Rows seeded into each tenant's table for Select traffic.
  uint32_t rows_per_tenant_table = 256;

  /// Operation mix (normalized over their sum).
  double produce_weight = 0.70;
  double select_weight = 0.15;
  double object_put_weight = 0.08;
  double object_get_weight = 0.05;
  double convert_weight = 0.02;
};

/// What one tenant experienced.
struct TenantOutcome {
  std::string tenant;
  uint64_t clients = 0;
  bool hot = false;
  uint64_t offered = 0;    // arrivals presented to admission
  uint64_t admitted = 0;   // executed (includes throttled)
  uint64_t throttled = 0;  // admitted with a positive queue wait
  uint64_t shed = 0;       // refused with kResourceExhausted
  uint64_t failed = 0;     // admitted but the operation itself errored
  uint64_t p50_ns = 0;     // end-to-end: queue wait + service time
  uint64_t p99_ns = 0;
  /// Shares are over cold tenants only; fairness = admitted share /
  /// offered share (1.0 = exactly proportional service).
  double offered_share = 0;
  double admitted_share = 0;
  double fairness = 0;
};

struct ClusterResult {
  std::vector<TenantOutcome> tenants;
  uint64_t offered = 0, admitted = 0, throttled = 0, shed = 0, failed = 0;
  /// Fairness extremes over cold tenants (hot tenant excluded).
  double fairness_min = 0;
  double fairness_max = 0;
  /// Cold tenants whose fairness fell below 0.5 ("within 2x of fair").
  uint32_t starved_tenants = 0;
  /// Worst p99 over cold tenants, and the hot tenant's own p99.
  uint64_t cold_p99_ns = 0;
  uint64_t hot_p99_ns = 0;
  double sim_seconds = 0;
};

/// \brief Open-loop cluster-scale traffic driver: simulates
/// ClusterConfig::logical_clients clients as superposed Poisson arrival
/// processes on the virtual clock, pushing a produce / Select / S3 /
/// conversion mix through the real service paths, with every arrival
/// judged by the admission controller at its own event time.
///
/// The driver meters at its own front door (AdmitAt with explicit event
/// times) so decisions are a pure function of each tenant's arrival
/// sequence; the facade's in-path gates must therefore be off
/// (admission.gate_access_layer = false) or Run() refuses to start.
class ClusterDriver {
 public:
  ClusterDriver(core::StreamLake* lake, const ClusterConfig& config)
      : lake_(lake), config_(config) {}

  /// Create per-tenant principals, buckets, topics, tables, and seed
  /// objects. Call once before Run.
  Status Setup();

  /// Drive the configured duration of traffic and aggregate outcomes.
  Result<ClusterResult> Run();

  static std::string TenantName(uint32_t tenant);

 private:
  enum class OpKind { kProduce, kSelect, kObjectPut, kObjectGet, kConvert };

  struct TenantRuntime {
    uint32_t index = 0;
    std::string name;
    std::string token;
    std::string bucket;
    uint64_t clients = 0;
    double rate_per_sec = 0;
    Random rng{1};
    uint64_t next_ns = 0;
    std::unique_ptr<streaming::Producer> producer;
    std::vector<uint64_t> latencies;
    TenantOutcome out;
  };

  /// Drive one thread's tenant subset in event-time order.
  void DriveTenants(const std::vector<TenantRuntime*>& tenants,
                    uint64_t end_ns);
  void RunOneEvent(TenantRuntime* t, uint64_t event_ns);
  Status ExecuteOp(TenantRuntime* t, OpKind op);
  OpKind PickOp(Random* rng) const;
  /// Next exponential interarrival gap for a tenant-aggregate rate.
  static uint64_t NextGapNs(Random* rng, double rate_per_sec);

  core::StreamLake* lake_;
  ClusterConfig config_;
  std::string payload_;  // shared message/object body
  std::vector<std::unique_ptr<TenantRuntime>> tenants_;
  bool setup_done_ = false;
};

}  // namespace streamlake::workload

#endif  // STREAMLAKE_WORKLOAD_CLUSTER_DRIVER_H_
