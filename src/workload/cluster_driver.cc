#include "workload/cluster_driver.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <queue>
#include <thread>

#include "query/executor.h"
#include "query/predicate.h"

namespace streamlake::workload {

namespace {

constexpr uint32_t kSeedObjects = 4;

uint64_t Percentile(std::vector<uint64_t>* values, double p) {
  if (values->empty()) return 0;
  size_t idx = static_cast<size_t>(
      static_cast<double>(values->size() - 1) * p);
  std::nth_element(values->begin(), values->begin() + idx, values->end());
  return (*values)[idx];
}

}  // namespace

std::string ClusterDriver::TenantName(uint32_t tenant) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "t%03u", tenant);
  return buf;
}

uint64_t ClusterDriver::NextGapNs(Random* rng, double rate_per_sec) {
  if (rate_per_sec <= 0) return ~0ULL / 2;
  // Exponential interarrival: the superposition of a tenant's Poisson
  // clients is itself Poisson at the aggregate rate.
  double u = rng->NextDouble();
  double gap_sec = -std::log(1.0 - u) / rate_per_sec;
  uint64_t gap_ns = static_cast<uint64_t>(gap_sec * 1e9);
  return gap_ns == 0 ? 1 : gap_ns;
}

ClusterDriver::OpKind ClusterDriver::PickOp(Random* rng) const {
  double total = config_.produce_weight + config_.select_weight +
                 config_.object_put_weight + config_.object_get_weight +
                 config_.convert_weight;
  double u = rng->NextDouble() * total;
  if ((u -= config_.produce_weight) < 0) return OpKind::kProduce;
  if ((u -= config_.select_weight) < 0) return OpKind::kSelect;
  if ((u -= config_.object_put_weight) < 0) return OpKind::kObjectPut;
  if ((u -= config_.object_get_weight) < 0) return OpKind::kObjectGet;
  return OpKind::kConvert;
}

Status ClusterDriver::Setup() {
  if (setup_done_) return Status::InvalidArgument("Setup called twice");
  if (config_.tenants == 0) return Status::InvalidArgument("no tenants");
  payload_.assign(config_.message_bytes, 'x');

  // Assign logical clients to tenants with Zipf skew. Only the counts
  // matter: a tenant's clients superpose into one Poisson process.
  std::vector<uint64_t> clients_per_tenant(config_.tenants, 0);
  Random assign_rng(config_.seed);
  for (uint64_t c = 0; c < config_.logical_clients; ++c) {
    clients_per_tenant[assign_rng.Zipf(config_.tenants,
                                       config_.tenant_zipf_theta)]++;
  }

  for (uint32_t i = 0; i < config_.tenants; ++i) {
    auto t = std::make_unique<TenantRuntime>();
    t->index = i;
    t->name = TenantName(i);
    t->bucket = "bkt-" + t->name;
    t->clients = clients_per_tenant[i];
    t->rate_per_sec = static_cast<double>(t->clients) *
                      config_.ops_per_client_per_sec;
    if (static_cast<int>(i) == config_.hot_tenant) {
      t->rate_per_sec *= config_.hot_multiplier;
      t->out.hot = true;
    }
    // Independent per-tenant stream so the (time, op, cost) sequence each
    // tenant presents to admission is identical at any thread count.
    t->rng = Random(config_.seed * 7919 + i * 104729 + 1);
    t->out.tenant = t->name;
    t->out.clients = t->clients;

    // Principal + bucket + seed objects for Get traffic.
    t->token = lake_->acl().CreatePrincipal(t->name);
    std::string prefix = "/s3/" + t->bucket + "/";
    SL_RETURN_NOT_OK(lake_->acl().Grant(t->name, prefix,
                                        access::Permission::kWrite));
    SL_RETURN_NOT_OK(lake_->acl().Grant(t->name, prefix,
                                        access::Permission::kRead));
    SL_RETURN_NOT_OK(lake_->s3().CreateBucket(t->token, t->bucket));
    for (uint32_t k = 0; k < kSeedObjects; ++k) {
      SL_RETURN_NOT_OK(lake_->s3().PutObject(t->token, t->bucket,
                                             "seed-" + std::to_string(k),
                                             ByteView(payload_)));
    }

    // Topics for produce + conversion traffic.
    streaming::TopicConfig topic_config;
    topic_config.stream_num = config_.streams_per_topic;
    for (uint32_t j = 0; j < config_.topics_per_tenant; ++j) {
      SL_RETURN_NOT_OK(lake_->dispatcher().CreateTopic(
          t->name + "-top" + std::to_string(j), topic_config));
    }
    t->producer =
        std::make_unique<streaming::Producer>(lake_->NewProducer());

    // A small table per tenant for Select traffic.
    SL_ASSIGN_OR_RETURN(table::Table * table,
                        lake_->lakehouse().CreateTable(
                            t->name + "-tbl",
                            format::Schema{{"x", format::DataType::kInt64}},
                            table::PartitionSpec::None()));
    std::vector<format::Row> rows;
    rows.reserve(config_.rows_per_tenant_table);
    for (uint32_t r = 0; r < config_.rows_per_tenant_table; ++r) {
      format::Row row;
      row.fields.emplace_back(static_cast<int64_t>(r));
      rows.push_back(std::move(row));
    }
    SL_RETURN_NOT_OK(table->Insert(rows));

    tenants_.push_back(std::move(t));
  }
  setup_done_ = true;
  return Status::OK();
}

Status ClusterDriver::ExecuteOp(TenantRuntime* t, OpKind op) {
  switch (op) {
    case OpKind::kProduce: {
      uint64_t topic = t->rng.Zipf(config_.topics_per_tenant,
                                   config_.topic_zipf_theta);
      std::string key = "k" + std::to_string(t->rng.Uniform(64));
      return t->producer
          ->Send(t->name + "-top" + std::to_string(topic),
                 streaming::Message(key, payload_))
          .status();
    }
    case OpKind::kSelect: {
      SL_ASSIGN_OR_RETURN(table::Table * table,
                          lake_->lakehouse().GetTable(t->name + "-tbl"));
      query::QuerySpec spec;
      spec.where.Add(query::Predicate::Ge(
          "x", static_cast<int64_t>(
                   t->rng.Uniform(config_.rows_per_tenant_table))));
      spec.limit = 8;
      return table->Select(spec).status();
    }
    case OpKind::kObjectPut:
      return lake_->s3().PutObject(
          t->token, t->bucket, "obj-" + std::to_string(t->rng.Uniform(16)),
          ByteView(payload_));
    case OpKind::kObjectGet:
      return lake_->s3()
          .GetObject(t->token, t->bucket,
                     "seed-" + std::to_string(t->rng.Uniform(kSeedObjects)))
          .status();
    case OpKind::kConvert:
      // Trigger evaluation only (no convert config on the topics): the
      // cost is the metadata probe, which is what background conversion
      // traffic looks like between splits.
      return lake_->converter().Run(t->name + "-top0", /*force=*/false)
          .status();
  }
  return Status::OK();
}

void ClusterDriver::RunOneEvent(TenantRuntime* t, uint64_t event_ns) {
  OpKind op = PickOp(&t->rng);
  static constexpr AdmitOp kAdmitOps[] = {
      AdmitOp::kProduce, AdmitOp::kSelect, AdmitOp::kObjectPut,
      AdmitOp::kObjectGet, AdmitOp::kConvert};
  uint64_t bytes = (op == OpKind::kProduce || op == OpKind::kObjectPut ||
                    op == OpKind::kObjectGet)
                       ? payload_.size()
                       : 0;
  t->out.offered++;
  uint64_t wait_ns = 0;
  access::AdmissionController* admission = lake_->admission();
  if (admission != nullptr) {
    auto ticket = admission->AdmitAt(
        t->name, kAdmitOps[static_cast<int>(op)], 1, bytes, event_ns);
    if (!ticket.ok()) {
      t->out.shed++;
      return;
    }
    wait_ns = ticket->wait_ns;
  }
  // Execute the admitted op on the real service path; the simulated clock
  // picks up its device/network cost.
  lake_->clock().AdvanceTo(event_ns);
  uint64_t start_ns = lake_->clock().NowNanos();
  Status status = ExecuteOp(t, op);
  uint64_t service_ns = lake_->clock().NowNanos() - start_ns;
  t->out.admitted++;
  if (wait_ns > 0) t->out.throttled++;
  if (!status.ok()) t->out.failed++;
  uint64_t latency_ns = wait_ns + service_ns;
  t->latencies.push_back(latency_ns);
  if (admission != nullptr) admission->RecordLatency(t->name, latency_ns);
}

void ClusterDriver::DriveTenants(const std::vector<TenantRuntime*>& tenants,
                                 uint64_t end_ns) {
  // Min-heap of (next event time, tenant index, tenant): the thread
  // replays its tenant subset's superposed arrivals in event-time order.
  // Ties break on the index, never on pointer values, so replays are
  // bit-identical run to run.
  using Entry = std::tuple<uint64_t, uint32_t, TenantRuntime*>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (TenantRuntime* t : tenants) {
    if (t->rate_per_sec <= 0) continue;
    if (t->next_ns < end_ns) heap.emplace(t->next_ns, t->index, t);
  }
  while (!heap.empty()) {
    auto [event_ns, index, t] = heap.top();
    heap.pop();
    RunOneEvent(t, event_ns);
    t->next_ns = event_ns + NextGapNs(&t->rng, t->rate_per_sec);
    if (t->next_ns < end_ns) heap.emplace(t->next_ns, t->index, t);
  }
}

Result<ClusterResult> ClusterDriver::Run() {
  if (!setup_done_) return Status::InvalidArgument("Run before Setup");
  access::AdmissionController* admission = lake_->admission();
  if (admission != nullptr && admission->config().gate_access_layer) {
    // The driver meters at its own door with explicit event times; the
    // facade's in-path gates would charge every request twice.
    return Status::InvalidArgument(
        "ClusterDriver needs admission.gate_access_layer = false");
  }

  uint64_t base_ns = lake_->clock().NowNanos();
  uint64_t end_ns =
      base_ns + static_cast<uint64_t>(config_.duration_sec * 1e9);
  for (auto& t : tenants_) {
    t->next_ns = base_ns + NextGapNs(&t->rng, t->rate_per_sec);
  }

  uint32_t threads = std::max<uint32_t>(1, config_.driver_threads);
  if (threads == 1) {
    std::vector<TenantRuntime*> all;
    for (auto& t : tenants_) all.push_back(t.get());
    DriveTenants(all, end_ns);
  } else {
    // Partition tenants across threads; each tenant is owned by exactly
    // one thread, so per-tenant state needs no locking.
    std::vector<std::vector<TenantRuntime*>> parts(threads);
    for (auto& t : tenants_) parts[t->index % threads].push_back(t.get());
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (uint32_t i = 0; i < threads; ++i) {
      workers.emplace_back(
          [this, &parts, i, end_ns] { DriveTenants(parts[i], end_ns); });
    }
    for (std::thread& w : workers) w.join();
  }
  lake_->clock().AdvanceTo(end_ns);

  // Aggregate: totals, per-tenant percentiles, cold-tenant fairness.
  ClusterResult result;
  result.sim_seconds = lake_->clock().NowSeconds();
  uint64_t cold_offered = 0, cold_admitted = 0;
  for (auto& t : tenants_) {
    t->out.p50_ns = Percentile(&t->latencies, 0.50);
    t->out.p99_ns = Percentile(&t->latencies, 0.99);
    result.offered += t->out.offered;
    result.admitted += t->out.admitted;
    result.throttled += t->out.throttled;
    result.shed += t->out.shed;
    result.failed += t->out.failed;
    if (!t->out.hot) {
      cold_offered += t->out.offered;
      cold_admitted += t->out.admitted;
    }
  }
  bool first_cold = true;
  for (auto& t : tenants_) {
    TenantOutcome& out = t->out;
    if (out.hot) {
      result.hot_p99_ns = out.p99_ns;
    } else if (out.offered > 0 && cold_offered > 0) {
      out.offered_share =
          static_cast<double>(out.offered) / static_cast<double>(cold_offered);
      out.admitted_share =
          cold_admitted == 0 ? 0
                             : static_cast<double>(out.admitted) /
                                   static_cast<double>(cold_admitted);
      out.fairness =
          out.offered_share == 0 ? 0 : out.admitted_share / out.offered_share;
      if (first_cold) {
        result.fairness_min = result.fairness_max = out.fairness;
        first_cold = false;
      } else {
        result.fairness_min = std::min(result.fairness_min, out.fairness);
        result.fairness_max = std::max(result.fairness_max, out.fairness);
      }
      if (out.fairness < 0.5) result.starved_tenants++;
      result.cold_p99_ns = std::max(result.cold_p99_ns, out.p99_ns);
    }
    result.tenants.push_back(out);
  }
  return result;
}

}  // namespace streamlake::workload
