#include "workload/dpi_log.h"

namespace streamlake::workload {

namespace {

const char* kProvinceNames[] = {
    "beijing",  "shanghai", "guangdong", "sichuan",  "hubei",    "zhejiang",
    "jiangsu",  "shandong", "henan",     "hebei",    "hunan",    "anhui",
    "fujian",   "jiangxi",  "liaoning",  "shaanxi",  "guangxi",  "yunnan",
    "guizhou",  "shanxi",   "chongqing", "jilin",    "tianjin",  "xinjiang",
    "heilongjiang", "gansu", "hainan",   "ningxia",  "qinghai",  "xizang",
    "neimenggu"};

}  // namespace

DpiLogGenerator::DpiLogGenerator(DpiLogOptions options)
    : options_(options),
      rng_(options.seed),
      current_time_(options.start_time) {
  for (int i = 0; i < options_.num_provinces; ++i) {
    provinces_.push_back(kProvinceNames[i % 31]);
  }
  urls_.push_back(FinAppUrl());
  for (int i = 1; i < options_.num_urls; ++i) {
    urls_.push_back("http://app-" + std::to_string(i) + ".example.com");
  }
  // Pad payload so the encoded record lands near packet_bytes. The other
  // fields encode to roughly 60-80 bytes. Payloads are slices of a random
  // corpus at a large prime stride: cheap to generate, and (like real
  // packet payloads) essentially incompressible.
  size_t overhead = 80;
  payload_len_ =
      options_.packet_bytes > overhead ? options_.packet_bytes - overhead : 1;
  corpus_.resize((1 << 20) + payload_len_);
  for (size_t i = 0; i < corpus_.size(); ++i) {
    corpus_[i] = static_cast<char>('!' + rng_.Uniform(94));
  }
}

format::Schema DpiLogGenerator::Schema() {
  return format::Schema{{"url", format::DataType::kString},
                        {"start_time", format::DataType::kInt64},
                        {"province", format::DataType::kString},
                        {"user_id", format::DataType::kInt64},
                        {"bytes", format::DataType::kInt64},
                        {"payload", format::DataType::kString}};
}

format::Row DpiLogGenerator::NextRow() {
  time_accum_ += options_.time_step_seconds;
  if (time_accum_ >= 1.0) {
    current_time_ += static_cast<int64_t>(time_accum_);
    time_accum_ -= static_cast<int64_t>(time_accum_);
  }
  size_t corpus_offset = (next_row_seq_++ * 104729) % (1 << 20);
  format::Row row;
  row.fields = {
      format::Value(urls_[rng_.Zipf(urls_.size())]),
      format::Value(current_time_),
      format::Value(provinces_[rng_.Zipf(provinces_.size(), 0.5)]),
      format::Value(static_cast<int64_t>(rng_.Uniform(options_.num_users))),
      format::Value(static_cast<int64_t>(64 + rng_.Uniform(1400))),
      format::Value(corpus_.substr(corpus_offset, payload_len_)),
  };
  return row;
}

std::vector<format::Row> DpiLogGenerator::NextBatch(size_t n) {
  std::vector<format::Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) rows.push_back(NextRow());
  return rows;
}

streaming::Message DpiLogGenerator::NextMessage() {
  format::Row row = NextRow();
  Bytes value;
  format::EncodeRow(Schema(), row, &value);
  streaming::Message message;
  message.key = std::get<std::string>(row.fields[2]);  // province
  message.value = BytesToString(value);
  message.timestamp = std::get<int64_t>(row.fields[1]);
  return message;
}

}  // namespace streamlake::workload
