#include "workload/openmessaging.h"

#include <algorithm>

namespace streamlake::workload {

Result<OmbResult> OmbDriver::Run(const OmbConfig& config) {
  if (!dispatcher_->HasTopic(config.topic)) {
    streaming::TopicConfig topic_config;
    topic_config.stream_num = config.partitions;
    SL_RETURN_NOT_OK(dispatcher_->CreateTopic(config.topic, topic_config));
  }
  streaming::Producer producer(dispatcher_);
  streaming::Consumer consumer(dispatcher_, offsets_, "omb-driver");
  SL_RETURN_NOT_OK(consumer.Subscribe(config.topic));

  const uint64_t start_ns = clock_->NowNanos();
  const double ns_per_message = 1e9 / config.target_rate;
  const std::string payload(config.message_bytes, 'm');

  OmbResult result;
  std::vector<double> latencies_us;
  latencies_us.reserve(config.total_messages);

  auto drain = [&]() -> Status {
    for (;;) {
      SL_ASSIGN_OR_RETURN(auto polled, consumer.Poll(config.consume_batch));
      if (polled.empty()) return Status::OK();
      uint64_t now = clock_->NowNanos();
      for (const streaming::ConsumedMessage& consumed : polled) {
        // Send time travels in the message timestamp (sim nanoseconds).
        latencies_us.push_back(
            (now - static_cast<uint64_t>(consumed.message.timestamp)) / 1e3);
        ++result.messages_consumed;
      }
      if (polled.size() < config.consume_batch) return Status::OK();
    }
  };

  for (uint64_t i = 0; i < config.total_messages; ++i) {
    // Pace arrivals at the offered rate.
    uint64_t arrival = start_ns + static_cast<uint64_t>(i * ns_per_message);
    clock_->AdvanceTo(arrival);
    streaming::Message message("key-" + std::to_string(i % 1024), payload);
    message.timestamp = static_cast<int64_t>(clock_->NowNanos());
    SL_ASSIGN_OR_RETURN([[maybe_unused]] uint64_t offset,
                        producer.Send(config.topic, message));
    ++result.messages_produced;
    if ((i + 1) % config.poll_every == 0) SL_RETURN_NOT_OK(drain());
  }
  SL_RETURN_NOT_OK(drain());

  result.duration_sec = (clock_->NowNanos() - start_ns) / 1e9;
  if (result.duration_sec > 0) {
    result.produce_throughput = result.messages_produced / result.duration_sec;
  }
  if (!latencies_us.empty()) {
    std::sort(latencies_us.begin(), latencies_us.end());
    result.end_to_end_p50_us = latencies_us[latencies_us.size() / 2];
    result.end_to_end_p99_us =
        latencies_us[latencies_us.size() * 99 / 100];
    result.end_to_end_max_us = latencies_us.back();
  }
  return result;
}

}  // namespace streamlake::workload
