#ifndef STREAMLAKE_WORKLOAD_DPI_LOG_H_
#define STREAMLAKE_WORKLOAD_DPI_LOG_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "format/row_codec.h"
#include "format/schema.h"
#include "streaming/message.h"

namespace streamlake::workload {

/// Synthetic China-Mobile-style DPI (deep packet inspection) log records —
/// the substitute for the production packets of Section VII ("each packet
/// has an average size of 1.2 KB"). URL and province popularity are
/// Zipf-skewed like real carrier traffic.
struct DpiLogOptions {
  uint64_t seed = 42;
  size_t packet_bytes = 1200;  // average encoded record size
  int num_provinces = 31;
  int num_urls = 200;
  int num_users = 100000;
  int64_t start_time = 1656806400;  // July 2nd, 2022 (paper's window)
  /// Seconds of event time advanced per generated record.
  double time_step_seconds = 0.01;
};

class DpiLogGenerator {
 public:
  explicit DpiLogGenerator(DpiLogOptions options = DpiLogOptions());

  /// url, start_time, province, user_id, bytes, payload.
  static format::Schema Schema();

  format::Row NextRow();
  std::vector<format::Row> NextBatch(size_t n);

  /// The row encoded as a stream message (value = row-codec bytes), as the
  /// collection job publishes it.
  streaming::Message NextMessage();

  /// The fixed URL the Fig. 13 DAU query filters on; generated with rank-0
  /// popularity so it matches a meaningful fraction of records.
  static const char* FinAppUrl() { return "http://streamlake_fin_app.com"; }

  int64_t current_time() const { return current_time_; }
  const DpiLogOptions& options() const { return options_; }

 private:
  DpiLogOptions options_;
  Random rng_;
  int64_t current_time_;
  double time_accum_ = 0;
  std::vector<std::string> provinces_;
  std::vector<std::string> urls_;
  std::string corpus_;
  size_t payload_len_ = 0;
  uint64_t next_row_seq_ = 0;
};

}  // namespace streamlake::workload

#endif  // STREAMLAKE_WORKLOAD_DPI_LOG_H_
