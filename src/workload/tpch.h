#ifndef STREAMLAKE_WORKLOAD_TPCH_H_
#define STREAMLAKE_WORKLOAD_TPCH_H_

#include <vector>

#include "common/random.h"
#include "format/schema.h"
#include "query/executor.h"

namespace streamlake::workload {

/// dbgen-like generator for the TPC-H lineitem table (the Fig. 16 test
/// bed), scaled down: `rows_per_sf` rows per scale factor instead of 6M.
struct TpchOptions {
  uint64_t seed = 7;
  double scale_factor = 1.0;
  uint64_t rows_per_sf = 60000;
};

class TpchLineitemGenerator {
 public:
  explicit TpchLineitemGenerator(TpchOptions options = TpchOptions());

  /// l_orderkey, l_partkey, l_quantity, l_extendedprice, l_discount,
  /// l_shipdate (epoch seconds), l_receiptdate, l_shipmode, l_returnflag.
  static format::Schema Schema();

  format::Row NextRow();
  std::vector<format::Row> NextBatch(size_t n);

  uint64_t total_rows() const {
    return static_cast<uint64_t>(options_.scale_factor * options_.rows_per_sf);
  }

  /// Generate the whole (scaled) table.
  std::vector<format::Row> GenerateAll();

  /// Ship dates span 1992-01-01 .. 1998-12-01 like TPC-H.
  static constexpr int64_t kShipDateMin = 694224000;   // 1992-01-01
  static constexpr int64_t kShipDateMax = 912470400;   // 1998-12-01

 private:
  TpchOptions options_;
  Random rng_;
  int64_t next_orderkey_ = 1;
};

/// Random predicate workloads over lineitem, following the generation
/// method of [47]: each query draws 1-3 pushdown predicates over shipdate
/// ranges, quantity ranges, discount ranges, and shipmode IN-lists.
class TpchQueryGenerator {
 public:
  explicit TpchQueryGenerator(uint64_t seed = 11) : rng_(seed) {}

  query::QuerySpec NextQuery();
  std::vector<query::QuerySpec> Generate(size_t n);

 private:
  Random rng_;
};

}  // namespace streamlake::workload

#endif  // STREAMLAKE_WORKLOAD_TPCH_H_
