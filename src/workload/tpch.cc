#include "workload/tpch.h"

namespace streamlake::workload {

namespace {

const char* kShipModes[] = {"AIR", "RAIL", "SHIP", "TRUCK",
                            "MAIL", "FOB",  "REG AIR"};
const char* kReturnFlags[] = {"A", "N", "R"};

}  // namespace

TpchLineitemGenerator::TpchLineitemGenerator(TpchOptions options)
    : options_(options), rng_(options.seed) {}

format::Schema TpchLineitemGenerator::Schema() {
  return format::Schema{{"l_orderkey", format::DataType::kInt64},
                        {"l_partkey", format::DataType::kInt64},
                        {"l_quantity", format::DataType::kInt64},
                        {"l_extendedprice", format::DataType::kDouble},
                        {"l_discount", format::DataType::kDouble},
                        {"l_shipdate", format::DataType::kInt64},
                        {"l_receiptdate", format::DataType::kInt64},
                        {"l_shipmode", format::DataType::kString},
                        {"l_returnflag", format::DataType::kString}};
}

format::Row TpchLineitemGenerator::NextRow() {
  // Orders carry 1-7 lineitems; keep a simple per-row order advance.
  if (rng_.OneIn(4)) ++next_orderkey_;
  int64_t quantity = 1 + static_cast<int64_t>(rng_.Uniform(50));
  double price = 900.0 + rng_.NextDouble() * 104000.0;
  double discount = 0.01 * static_cast<double>(rng_.Uniform(11));
  int64_t shipdate =
      kShipDateMin +
      static_cast<int64_t>(rng_.Uniform(kShipDateMax - kShipDateMin));
  // Receipt 1-30 days after ship.
  int64_t receipt = shipdate + 86400 * (1 + rng_.Uniform(30));
  format::Row row;
  row.fields = {
      format::Value(next_orderkey_),
      format::Value(static_cast<int64_t>(1 + rng_.Uniform(200000))),
      format::Value(quantity),
      format::Value(price),
      format::Value(discount),
      format::Value(shipdate),
      format::Value(receipt),
      format::Value(std::string(kShipModes[rng_.Uniform(7)])),
      format::Value(std::string(kReturnFlags[rng_.Uniform(3)])),
  };
  return row;
}

std::vector<format::Row> TpchLineitemGenerator::NextBatch(size_t n) {
  std::vector<format::Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) rows.push_back(NextRow());
  return rows;
}

std::vector<format::Row> TpchLineitemGenerator::GenerateAll() {
  return NextBatch(total_rows());
}

query::QuerySpec TpchQueryGenerator::NextQuery() {
  query::QuerySpec spec;
  spec.aggregates = {query::AggregateSpec::CountStar()};
  int num_predicates = 1 + static_cast<int>(rng_.Uniform(3));
  for (int p = 0; p < num_predicates; ++p) {
    switch (rng_.Uniform(4)) {
      case 0: {
        // Shipdate window of 1 week .. 1 year.
        int64_t span = 86400 * (7 + rng_.Uniform(358));
        int64_t lo = TpchLineitemGenerator::kShipDateMin +
                     rng_.Uniform(TpchLineitemGenerator::kShipDateMax -
                                  TpchLineitemGenerator::kShipDateMin - span);
        spec.where.Add(query::Predicate::Ge("l_shipdate", format::Value(lo)));
        spec.where.Add(
            query::Predicate::Lt("l_shipdate", format::Value(lo + span)));
        break;
      }
      case 1: {
        int64_t q = 1 + rng_.Uniform(50);
        spec.where.Add(rng_.OneIn(2)
                           ? query::Predicate::Le("l_quantity",
                                                  format::Value(q))
                           : query::Predicate::Gt("l_quantity",
                                                  format::Value(q)));
        break;
      }
      case 2: {
        double d = 0.01 * static_cast<double>(rng_.Uniform(11));
        spec.where.Add(query::Predicate::Le("l_discount", format::Value(d)));
        break;
      }
      case 3: {
        std::vector<format::Value> modes;
        size_t count = 1 + rng_.Uniform(3);
        for (size_t i = 0; i < count; ++i) {
          modes.emplace_back(
              std::string(kShipModes[rng_.Uniform(7)]));
        }
        spec.where.Add(query::Predicate::In("l_shipmode", std::move(modes)));
        break;
      }
    }
  }
  return spec;
}

std::vector<query::QuerySpec> TpchQueryGenerator::Generate(size_t n) {
  std::vector<query::QuerySpec> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) queries.push_back(NextQuery());
  return queries;
}

}  // namespace streamlake::workload
