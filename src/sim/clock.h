#ifndef STREAMLAKE_SIM_CLOCK_H_
#define STREAMLAKE_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace streamlake::sim {

/// Deterministic virtual clock measured in nanoseconds.
///
/// The paper's experiments ran on a 3-node OceanStor cluster; here every
/// device and network hop *charges* simulated time to this clock instead of
/// sleeping, so benches reproduce latency/throughput shapes in milliseconds
/// of wall time. Thread-safe: concurrent actors advance it atomically.
class SimClock {
 public:
  SimClock() : now_ns_(0) {}

  uint64_t NowNanos() const { return now_ns_.load(std::memory_order_relaxed); }
  double NowSeconds() const { return NowNanos() * 1e-9; }

  /// Advance the clock by `ns` and return the new time.
  uint64_t Advance(uint64_t ns) {
    return now_ns_.fetch_add(ns, std::memory_order_relaxed) + ns;
  }

  /// Move the clock forward to at least `ns` (no-op if already past).
  void AdvanceTo(uint64_t ns) {
    uint64_t cur = now_ns_.load(std::memory_order_relaxed);
    while (cur < ns &&
           !now_ns_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
    }
  }

  void Reset() { now_ns_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_ns_;
};

constexpr uint64_t kMicro = 1000ULL;
constexpr uint64_t kMilli = 1000ULL * 1000ULL;
constexpr uint64_t kSecond = 1000ULL * 1000ULL * 1000ULL;

}  // namespace streamlake::sim

#endif  // STREAMLAKE_SIM_CLOCK_H_
