#include "sim/device_model.h"

namespace streamlake::sim {

DeviceProfile DeviceProfile::Dram() {
  return DeviceProfile{
      .name = "dram",
      .read_latency_ns = 100,
      .write_latency_ns = 100,
      .read_bw_bytes_per_sec = 20ULL * 1000 * 1000 * 1000,
      .write_bw_bytes_per_sec = 20ULL * 1000 * 1000 * 1000,
  };
}

DeviceProfile DeviceProfile::Pmem() {
  return DeviceProfile{
      .name = "pmem",
      .read_latency_ns = 1 * kMicro,
      .write_latency_ns = 2 * kMicro,
      .read_bw_bytes_per_sec = 8ULL * 1000 * 1000 * 1000,
      .write_bw_bytes_per_sec = 4ULL * 1000 * 1000 * 1000,
  };
}

DeviceProfile DeviceProfile::NvmeSsd() {
  return DeviceProfile{
      .name = "nvme_ssd",
      .read_latency_ns = 80 * kMicro,
      .write_latency_ns = 30 * kMicro,
      .read_bw_bytes_per_sec = 3ULL * 1000 * 1000 * 1000,
      .write_bw_bytes_per_sec = 2ULL * 1000 * 1000 * 1000,
  };
}

DeviceProfile DeviceProfile::SasHdd() {
  return DeviceProfile{
      .name = "sas_hdd",
      .read_latency_ns = 8 * kMilli,
      .write_latency_ns = 8 * kMilli,
      .read_bw_bytes_per_sec = 200ULL * 1000 * 1000,
      .write_bw_bytes_per_sec = 180ULL * 1000 * 1000,
  };
}

DeviceProfile DeviceProfile::ForMedia(MediaType media) {
  switch (media) {
    case MediaType::kDram:
      return Dram();
    case MediaType::kPmem:
      return Pmem();
    case MediaType::kNvmeSsd:
      return NvmeSsd();
    case MediaType::kSasHdd:
      return SasHdd();
  }
  return NvmeSsd();
}

uint64_t DeviceModel::ChargeRead(uint64_t bytes) {
  uint64_t cost = ReadCostNanos(bytes);
  clock_->Advance(cost);
  read_ops_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  busy_ns_.fetch_add(cost, std::memory_order_relaxed);
  return cost;
}

uint64_t DeviceModel::ChargeWrite(uint64_t bytes) {
  uint64_t cost = WriteCostNanos(bytes);
  clock_->Advance(cost);
  write_ops_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  busy_ns_.fetch_add(cost, std::memory_order_relaxed);
  return cost;
}

DeviceStats DeviceModel::stats() const {
  DeviceStats s;
  s.read_ops = read_ops_.load(std::memory_order_relaxed);
  s.write_ops = write_ops_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.busy_ns = busy_ns_.load(std::memory_order_relaxed);
  return s;
}

void DeviceModel::ResetStats() {
  read_ops_ = 0;
  write_ops_ = 0;
  bytes_read_ = 0;
  bytes_written_ = 0;
  busy_ns_ = 0;
}

}  // namespace streamlake::sim
