#include "sim/network_model.h"

namespace streamlake::sim {

NetworkProfile NetworkProfile::Rdma() {
  return NetworkProfile{
      .name = "rdma",
      .per_message_ns = 2 * kMicro,
      .bandwidth_bytes_per_sec = 1250ULL * 1000 * 1000,  // 10 Gb ethernet
  };
}

NetworkProfile NetworkProfile::Tcp() {
  return NetworkProfile{
      .name = "tcp",
      .per_message_ns = 30 * kMicro,
      .bandwidth_bytes_per_sec = 1250ULL * 1000 * 1000,
  };
}

NetworkProfile NetworkProfile::Local() {
  return NetworkProfile{
      .name = "local",
      .per_message_ns = 200,
      .bandwidth_bytes_per_sec = 10000ULL * 1000 * 1000,
  };
}

NetworkProfile NetworkProfile::ForTransport(TransportType transport) {
  switch (transport) {
    case TransportType::kRdma:
      return Rdma();
    case TransportType::kTcp:
      return Tcp();
    case TransportType::kLocal:
      return Local();
  }
  return Tcp();
}

uint64_t NetworkModel::ChargeTransfer(uint64_t bytes) {
  uint64_t cost = TransferCostNanos(bytes);
  clock_->Advance(cost);
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  busy_ns_.fetch_add(cost, std::memory_order_relaxed);
  return cost;
}

NetworkStats NetworkModel::stats() const {
  NetworkStats s;
  s.messages = messages_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.busy_ns = busy_ns_.load(std::memory_order_relaxed);
  return s;
}

void NetworkModel::ResetStats() {
  messages_ = 0;
  bytes_ = 0;
  busy_ns_ = 0;
}

}  // namespace streamlake::sim
