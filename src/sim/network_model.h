#ifndef STREAMLAKE_SIM_NETWORK_MODEL_H_
#define STREAMLAKE_SIM_NETWORK_MODEL_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "sim/clock.h"

namespace streamlake::sim {

/// Transport classes of the data exchange bus (Section III). RDMA bypasses
/// the CPU/TCP stack, so its per-message overhead is ~an order of magnitude
/// lower while the wire bandwidth (10 Gb ethernet in the testbed) is shared.
enum class TransportType { kRdma, kTcp, kLocal };

struct NetworkProfile {
  std::string name;
  uint64_t per_message_ns = 0;  // protocol/switching overhead per message
  uint64_t bandwidth_bytes_per_sec = 1;

  static NetworkProfile Rdma();
  static NetworkProfile Tcp();
  /// Intra-process handoff (producer -> worker on same node).
  static NetworkProfile Local();
  static NetworkProfile ForTransport(TransportType transport);
};

struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t busy_ns = 0;
};

/// Charges simulated transfer cost for messages crossing the data bus.
class NetworkModel {
 public:
  NetworkModel(NetworkProfile profile, SimClock* clock)
      : profile_(std::move(profile)), clock_(clock) {}

  uint64_t TransferCostNanos(uint64_t bytes) const {
    return profile_.per_message_ns +
           bytes * kSecond / profile_.bandwidth_bytes_per_sec;
  }

  /// Charge one message of `bytes` to the clock; returns charged nanos.
  uint64_t ChargeTransfer(uint64_t bytes);

  const NetworkProfile& profile() const { return profile_; }
  NetworkStats stats() const;
  void ResetStats();

 private:
  NetworkProfile profile_;
  SimClock* clock_;
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> busy_ns_{0};
};

}  // namespace streamlake::sim

#endif  // STREAMLAKE_SIM_NETWORK_MODEL_H_
