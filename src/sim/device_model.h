#ifndef STREAMLAKE_SIM_DEVICE_MODEL_H_
#define STREAMLAKE_SIM_DEVICE_MODEL_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "sim/clock.h"

namespace streamlake::sim {

/// Storage media classes present in an OceanStor Pacific node plus the
/// persistent-memory cache of hardware Set-2 (Section VII-C).
enum class MediaType { kDram, kPmem, kNvmeSsd, kSasHdd };

/// Latency/bandwidth parameters of one media class. Values are defensible
/// datasheet-order-of-magnitude numbers; experiments depend on the *ratios*
/// (SSD ≪ HDD, PMEM ≪ SSD), not the absolute figures.
struct DeviceProfile {
  std::string name;
  uint64_t read_latency_ns = 0;   // fixed per-op setup (seek, controller)
  uint64_t write_latency_ns = 0;
  uint64_t read_bw_bytes_per_sec = 1;
  uint64_t write_bw_bytes_per_sec = 1;

  static DeviceProfile Dram();
  static DeviceProfile Pmem();
  static DeviceProfile NvmeSsd();
  static DeviceProfile SasHdd();
  static DeviceProfile ForMedia(MediaType media);
};

/// Cumulative I/O counters for one device.
struct DeviceStats {
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t busy_ns = 0;  // total simulated service time
};

/// Computes and charges the simulated cost of I/O against one media class.
/// Thread-safe; the clock is shared by all devices of a cluster.
class DeviceModel {
 public:
  DeviceModel(DeviceProfile profile, SimClock* clock)
      : profile_(std::move(profile)), clock_(clock) {}

  /// Cost of reading `bytes` in one operation, in nanoseconds.
  uint64_t ReadCostNanos(uint64_t bytes) const {
    return profile_.read_latency_ns +
           bytes * kSecond / profile_.read_bw_bytes_per_sec;
  }

  uint64_t WriteCostNanos(uint64_t bytes) const {
    return profile_.write_latency_ns +
           bytes * kSecond / profile_.write_bw_bytes_per_sec;
  }

  /// Charge a read/write to the clock and update counters. Returns the
  /// charged nanoseconds so callers can account per-request latency.
  uint64_t ChargeRead(uint64_t bytes);
  uint64_t ChargeWrite(uint64_t bytes);

  const DeviceProfile& profile() const { return profile_; }
  DeviceStats stats() const;
  void ResetStats();

 private:
  DeviceProfile profile_;
  SimClock* clock_;
  std::atomic<uint64_t> read_ops_{0};
  std::atomic<uint64_t> write_ops_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> busy_ns_{0};
};

}  // namespace streamlake::sim

#endif  // STREAMLAKE_SIM_DEVICE_MODEL_H_
