#ifndef STREAMLAKE_BASELINES_MINI_HDFS_H_
#define STREAMLAKE_BASELINES_MINI_HDFS_H_

#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "storage/storage_pool.h"

namespace streamlake::baselines {

/// \brief Faithful mini-reimplementation of HDFS semantics, the batch
/// baseline of Section VII: a namenode mapping paths to 128 MB blocks,
/// each block replicated 3x across datanodes ("improving the disk
/// utilization rate from 33% to 91%" compares against exactly this).
///
/// Runs on the same simulated device substrate as StreamLake, so storage
/// and time comparisons are apples-to-apples.
class MiniHdfs {
 public:
  struct Options {
    uint64_t block_size = 128ULL << 20;
    int replication = 3;
  };

  explicit MiniHdfs(storage::StoragePool* pool);
  MiniHdfs(storage::StoragePool* pool, Options options);

  /// Create or replace a file.
  Status WriteFile(const std::string& path, ByteView data);
  Result<Bytes> ReadFile(const std::string& path) const;
  Status DeleteFile(const std::string& path);
  bool Exists(const std::string& path) const;
  Result<uint64_t> FileSize(const std::string& path) const;
  std::vector<std::string> List(const std::string& prefix) const;

  /// Logical bytes stored (before replication).
  uint64_t TotalLogicalBytes() const;
  /// Physical bytes allocated (logical x replication, rounded to blocks'
  /// actual sizes — HDFS allocates by need, not whole blocks).
  uint64_t TotalPhysicalBytes() const;

  const Options& options() const { return options_; }

 private:
  struct Block {
    std::vector<storage::Extent> replicas;
    uint64_t size = 0;
  };
  struct Inode {
    std::vector<Block> blocks;
    uint64_t size = 0;
  };

  storage::StoragePool* pool_;
  Options options_;
  mutable Mutex mu_{LockRank::kMiniHdfs, "baselines.mini_hdfs"};
  std::map<std::string, Inode> namespace_ GUARDED_BY(mu_);  // the namenode
};

}  // namespace streamlake::baselines

#endif  // STREAMLAKE_BASELINES_MINI_HDFS_H_
