#include "baselines/mini_kafka.h"

#include "common/coding.h"
#include "common/hash.h"

namespace streamlake::baselines {

namespace {

// Record format mirrors Kafka's: every record carries a CRC-32C.
void EncodeMessage(Bytes* dst, const streaming::Message& message) {
  Bytes body;
  PutLengthPrefixed(&body, std::string_view(message.key));
  PutLengthPrefixed(&body, std::string_view(message.value));
  PutVarint64Signed(&body, message.timestamp);
  PutFixed32(dst, Crc32c(ByteView(body)));
  PutVarint64(dst, body.size());
  AppendBytes(dst, ByteView(body));
}

Result<streaming::Message> DecodeMessage(Decoder* dec) {
  uint32_t expected_crc;
  uint64_t body_len;
  if (!dec->GetFixed32(&expected_crc) || !dec->GetVarint(&body_len) ||
      dec->Remaining() < body_len) {
    return Status::Corruption("kafka record frame");
  }
  if (Crc32c(ByteView(dec->position(), body_len)) != expected_crc) {
    return Status::Corruption("kafka record crc");
  }
  streaming::Message message;
  if (!dec->GetString(&message.key) || !dec->GetString(&message.value) ||
      !dec->GetVarintSigned(&message.timestamp)) {
    return Status::Corruption("kafka message");
  }
  return message;
}

}  // namespace

MiniKafka::MiniKafka(storage::StoragePool* pool)
    : MiniKafka(pool, Options()) {}

MiniKafka::MiniKafka(storage::StoragePool* pool, Options options)
    : pool_(pool), options_(options) {}

Status MiniKafka::CreateTopic(const std::string& topic, uint32_t partitions) {
  MutexLock lock(&mu_);
  if (topics_.count(topic)) return Status::AlreadyExists(topic);
  if (partitions == 0) return Status::InvalidArgument("need >= 1 partition");
  Topic t;
  t.partitions.resize(partitions);
  topics_[topic] = std::move(t);
  return Status::OK();
}

Status MiniKafka::DeleteTopic(const std::string& topic) {
  MutexLock lock(&mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound(topic);
  for (Partition& partition : it->second.partitions) {
    for (const auto& segment : partition.segments) {
      for (const storage::Extent& extent : segment->replicas) {
        pool_->FreeExtent(extent);
      }
    }
  }
  topics_.erase(it);
  return Status::OK();
}

Result<MiniKafka::Segment*> MiniKafka::ActiveSegment(Partition* partition) {
  if (!partition->segments.empty() && !partition->segments.back()->sealed) {
    return partition->segments.back().get();
  }
  auto segment = std::make_unique<Segment>();
  segment->base_offset = partition->next_offset;
  auto extents = pool_->AllocateExtents(options_.replication,
                                        options_.segment_bytes,
                                        /*distinct_nodes=*/true);
  if (!extents.ok()) {
    extents = pool_->AllocateExtents(options_.replication,
                                     options_.segment_bytes,
                                     /*distinct_nodes=*/false);
  }
  if (!extents.ok()) return extents.status();
  segment->replicas = std::move(*extents);
  partition->segments.push_back(std::move(segment));
  return partition->segments.back().get();
}

Result<MiniKafka::ProduceResult> MiniKafka::Produce(
    const std::string& topic, const streaming::Message& message) {
  MutexLock lock(&mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound(topic);
  Topic& t = it->second;
  uint32_t p;
  if (message.key.empty()) {
    p = static_cast<uint32_t>(t.rr_cursor++ % t.partitions.size());
  } else {
    p = static_cast<uint32_t>(Hash64(ByteView(message.key)) %
                              t.partitions.size());
  }
  Partition& partition = t.partitions[p];

  Bytes record;
  EncodeMessage(&record, message);
  SL_ASSIGN_OR_RETURN(Segment * segment, ActiveSegment(&partition));
  auto writeback = [&](Segment* seg) -> Status {
    // Flush the dirty page-cache tail to every replica's log file.
    uint64_t dirty = seg->page_cache.size() - seg->flushed_bytes;
    if (dirty == 0) return Status::OK();
    ByteView tail(seg->page_cache.data() + seg->flushed_bytes, dirty);
    for (const storage::Extent& extent : seg->replicas) {
      SL_RETURN_NOT_OK(
          extent.device->Write(extent.offset + seg->flushed_bytes, tail));
    }
    seg->flushed_bytes = seg->page_cache.size();
    return Status::OK();
  };
  if (segment->bytes + record.size() > options_.segment_bytes) {
    SL_RETURN_NOT_OK(writeback(segment));
    segment->sealed = true;
    segment->page_cache.clear();  // evicted once the segment rolls
    segment->page_cache.shrink_to_fit();
    SL_ASSIGN_OR_RETURN(segment, ActiveSegment(&partition));
    if (record.size() > options_.segment_bytes) {
      return Status::InvalidArgument("message larger than segment");
    }
  }
  segment->message_offsets.push_back(segment->bytes);
  AppendBytes(&segment->page_cache, ByteView(record));
  segment->bytes += record.size();
  segment->messages += 1;
  if (segment->page_cache.size() - segment->flushed_bytes >=
      options_.writeback_bytes) {
    SL_RETURN_NOT_OK(writeback(segment));
  }

  ProduceResult result;
  result.partition = p;
  result.offset = partition.next_offset++;
  return result;
}

Result<std::vector<streaming::Message>> MiniKafka::Fetch(
    const std::string& topic, uint32_t partition_index, uint64_t offset,
    size_t max_messages) const {
  MutexLock lock(&mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound(topic);
  const Topic& t = it->second;
  if (partition_index >= t.partitions.size()) {
    return Status::InvalidArgument("partition out of range");
  }
  const Partition& partition = t.partitions[partition_index];
  std::vector<streaming::Message> out;
  for (const auto& segment : partition.segments) {
    if (out.size() >= max_messages) break;
    if (segment->base_offset + segment->messages <= offset) continue;
    uint64_t from =
        offset > segment->base_offset ? offset - segment->base_offset : 0;
    // Page-cache model: the active segment serves from memory; sealed
    // segments hit the disks.
    Bytes data;
    if (!segment->sealed && !segment->page_cache.empty()) {
      data = segment->page_cache;
    } else {
      Status last = Status::IOError("no replicas");
      bool done = false;
      for (const storage::Extent& extent : segment->replicas) {
        auto read = extent.device->Read(extent.offset, segment->bytes);
        if (read.ok()) {
          data = std::move(*read);
          done = true;
          break;
        }
        last = read.status();
      }
      if (!done) return last;
    }
    for (uint64_t m = from;
         m < segment->messages && out.size() < max_messages; ++m) {
      uint64_t byte_offset = segment->message_offsets[m];
      Decoder dec(ByteView(data.data() + byte_offset,
                           data.size() - byte_offset));
      SL_ASSIGN_OR_RETURN(streaming::Message message, DecodeMessage(&dec));
      out.push_back(std::move(message));
    }
  }
  return out;
}

Result<uint64_t> MiniKafka::EndOffset(const std::string& topic,
                                      uint32_t partition) const {
  MutexLock lock(&mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound(topic);
  if (partition >= it->second.partitions.size()) {
    return Status::InvalidArgument("partition out of range");
  }
  return it->second.partitions[partition].next_offset;
}

Result<uint32_t> MiniKafka::NumPartitions(const std::string& topic) const {
  MutexLock lock(&mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound(topic);
  return static_cast<uint32_t>(it->second.partitions.size());
}

Status MiniKafka::Flush() {
  MutexLock lock(&mu_);
  for (auto& [name, topic] : topics_) {
    for (Partition& partition : topic.partitions) {
      for (auto& segment : partition.segments) {
        if (segment->sealed) continue;
        uint64_t dirty = segment->page_cache.size() - segment->flushed_bytes;
        if (dirty == 0) continue;
        ByteView tail(segment->page_cache.data() + segment->flushed_bytes,
                      dirty);
        for (const storage::Extent& extent : segment->replicas) {
          SL_RETURN_NOT_OK(
              extent.device->Write(extent.offset + segment->flushed_bytes,
                                   tail));
        }
        segment->flushed_bytes = segment->page_cache.size();
      }
    }
  }
  return Status::OK();
}

uint64_t MiniKafka::TotalLogicalBytes() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& [name, topic] : topics_) {
    for (const Partition& partition : topic.partitions) {
      for (const auto& segment : partition.segments) {
        total += segment->bytes;
      }
    }
  }
  return total;
}

uint64_t MiniKafka::TotalPhysicalBytes() const {
  return TotalLogicalBytes() * options_.replication;
}

}  // namespace streamlake::baselines
