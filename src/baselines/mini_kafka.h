#ifndef STREAMLAKE_BASELINES_MINI_KAFKA_H_
#define STREAMLAKE_BASELINES_MINI_KAFKA_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "storage/storage_pool.h"
#include "streaming/message.h"

namespace streamlake::baselines {

/// \brief Faithful mini-reimplementation of Kafka's storage model, the
/// streaming baseline of Section VII: per-partition append-only segment
/// files on the (local) file system, replication factor 3, and a page
/// cache in front of the active segment.
///
/// The contrast with StreamLake's stream objects: Kafka stores messages
/// *via files* with replication (3x space), is coupled to its brokers'
/// local disks (scaling moves data), and needs an external system (HDFS)
/// for batch access.
class MiniKafka {
 public:
  struct Options {
    uint64_t segment_bytes = 64ULL << 20;
    int replication = 3;
    /// Page-cache writeback granularity: appends buffer in the OS page
    /// cache and flush to the log files in batches (Kafka relies on
    /// "unreliable components like file systems and page caches" —
    /// Section V-A — which is also why it is fast).
    uint64_t writeback_bytes = 64ULL << 10;
  };

  explicit MiniKafka(storage::StoragePool* pool);
  MiniKafka(storage::StoragePool* pool, Options options);

  Status CreateTopic(const std::string& topic, uint32_t partitions);
  Status DeleteTopic(const std::string& topic);

  /// Append one message; returns (partition, offset). Keyed messages hash
  /// to a partition; empty keys round-robin.
  struct ProduceResult {
    uint32_t partition = 0;
    uint64_t offset = 0;
  };
  Result<ProduceResult> Produce(const std::string& topic,
                                const streaming::Message& message);

  /// Fetch up to `max_messages` from `offset`.
  Result<std::vector<streaming::Message>> Fetch(const std::string& topic,
                                                uint32_t partition,
                                                uint64_t offset,
                                                size_t max_messages) const;

  Result<uint64_t> EndOffset(const std::string& topic,
                             uint32_t partition) const;
  Result<uint32_t> NumPartitions(const std::string& topic) const;

  /// Force page-cache writeback of every active segment (fsync).
  Status Flush();

  /// Logical message bytes stored (before replication).
  uint64_t TotalLogicalBytes() const;
  /// Physical bytes including replication.
  uint64_t TotalPhysicalBytes() const;

 private:
  struct Segment {
    std::vector<storage::Extent> replicas;  // one extent per replica
    uint64_t base_offset = 0;               // first message offset
    uint64_t bytes = 0;                     // bytes written so far
    uint64_t messages = 0;
    std::vector<uint64_t> message_offsets;  // byte offset of each message
    Bytes page_cache;  // active-segment contents cached in memory
    uint64_t flushed_bytes = 0;  // page-cache writeback frontier
    bool sealed = false;
  };
  struct Partition {
    std::vector<std::unique_ptr<Segment>> segments;
    uint64_t next_offset = 0;
  };
  struct Topic {
    std::vector<Partition> partitions;
    uint64_t rr_cursor = 0;
  };

  Result<Segment*> ActiveSegment(Partition* partition) REQUIRES(mu_);

  storage::StoragePool* pool_;
  Options options_;
  mutable Mutex mu_{LockRank::kMiniKafka, "baselines.mini_kafka"};
  std::map<std::string, Topic> topics_ GUARDED_BY(mu_);
};

}  // namespace streamlake::baselines

#endif  // STREAMLAKE_BASELINES_MINI_KAFKA_H_
