#include "baselines/mini_hdfs.h"

#include <algorithm>

namespace streamlake::baselines {

MiniHdfs::MiniHdfs(storage::StoragePool* pool) : MiniHdfs(pool, Options()) {}

MiniHdfs::MiniHdfs(storage::StoragePool* pool, Options options)
    : pool_(pool), options_(options) {}

Status MiniHdfs::WriteFile(const std::string& path, ByteView data) {
  Inode inode;
  inode.size = data.size();
  uint64_t pos = 0;
  do {
    uint64_t len = std::min<uint64_t>(options_.block_size, data.size() - pos);
    Block block;
    block.size = len;
    // HDFS allocates per-replica extents on distinct nodes.
    auto extents = pool_->AllocateExtents(options_.replication,
                                          std::max<uint64_t>(len, 1),
                                          /*distinct_nodes=*/true);
    if (!extents.ok()) {
      extents = pool_->AllocateExtents(options_.replication,
                                       std::max<uint64_t>(len, 1),
                                       /*distinct_nodes=*/false);
    }
    if (!extents.ok()) return extents.status();
    block.replicas = std::move(*extents);
    for (const storage::Extent& extent : block.replicas) {
      SL_RETURN_NOT_OK(
          extent.device->Write(extent.offset, data.subview(pos, len)));
    }
    inode.blocks.push_back(std::move(block));
    pos += len;
  } while (pos < data.size());

  MutexLock lock(&mu_);
  auto it = namespace_.find(path);
  if (it != namespace_.end()) {
    for (const Block& block : it->second.blocks) {
      for (const storage::Extent& extent : block.replicas) {
        pool_->FreeExtent(extent);
      }
    }
  }
  namespace_[path] = std::move(inode);
  return Status::OK();
}

Result<Bytes> MiniHdfs::ReadFile(const std::string& path) const {
  std::vector<Block> blocks;
  uint64_t size = 0;
  {
    MutexLock lock(&mu_);
    auto it = namespace_.find(path);
    if (it == namespace_.end()) return Status::NotFound(path);
    blocks = it->second.blocks;
    size = it->second.size;
  }
  Bytes out;
  out.reserve(size);
  for (const Block& block : blocks) {
    // Read from the first healthy replica.
    Status last = Status::IOError("no replicas");
    bool done = false;
    for (const storage::Extent& extent : block.replicas) {
      auto data = extent.device->Read(extent.offset, block.size);
      if (data.ok()) {
        AppendBytes(&out, ByteView(*data));
        done = true;
        break;
      }
      last = data.status();
    }
    if (!done) return last;
  }
  return out;
}

Status MiniHdfs::DeleteFile(const std::string& path) {
  MutexLock lock(&mu_);
  auto it = namespace_.find(path);
  if (it == namespace_.end()) return Status::NotFound(path);
  for (const Block& block : it->second.blocks) {
    for (const storage::Extent& extent : block.replicas) {
      pool_->FreeExtent(extent);
    }
  }
  namespace_.erase(it);
  return Status::OK();
}

bool MiniHdfs::Exists(const std::string& path) const {
  MutexLock lock(&mu_);
  return namespace_.count(path) > 0;
}

Result<uint64_t> MiniHdfs::FileSize(const std::string& path) const {
  MutexLock lock(&mu_);
  auto it = namespace_.find(path);
  if (it == namespace_.end()) return Status::NotFound(path);
  return it->second.size;
}

std::vector<std::string> MiniHdfs::List(const std::string& prefix) const {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  for (auto it = namespace_.lower_bound(prefix); it != namespace_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

uint64_t MiniHdfs::TotalLogicalBytes() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& [path, inode] : namespace_) total += inode.size;
  return total;
}

uint64_t MiniHdfs::TotalPhysicalBytes() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& [path, inode] : namespace_) {
    total += inode.size * options_.replication;
  }
  return total;
}

}  // namespace streamlake::baselines
