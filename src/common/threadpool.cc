#include "common/threadpool.h"

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace streamlake {

ThreadPool::ThreadPool(int num_threads, const char* name) : name_(name) {
  SL_CHECK(num_threads > 0);
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    if (shutdown_) {
      // Workers are (or are about to be) joined: the task could never run.
      // Silent acceptance would be lost work; silent drop would be worse.
      std::fprintf(stderr,
                   "\n*** streamlake ThreadPool misuse ***\n"
                   "  Submit() after Shutdown() on pool \"%s\"\n"
                   "  the task would never execute; fix the caller's "
                   "lifetime ordering\n",
                   name_);
      std::abort();
    }
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (!queue_.empty() || active_ != 0) idle_cv_.Wait(&mu_);
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(&mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) work_cv_.Wait(&mu_);
      if (queue_.empty()) {
        // shutdown_ must be true; drain-complete.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(&mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace streamlake
