#ifndef STREAMLAKE_COMMON_MUTEX_H_
#define STREAMLAKE_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

// ---------------------------------------------------------------------------
// Clang thread-safety annotation macros.
//
// Under Clang with -Wthread-safety these expand to attributes that let the
// compiler statically verify locking discipline (fields declared GUARDED_BY a
// Mutex may only be touched while it is held; *Locked helpers declare
// REQUIRES). Under GCC and other compilers they expand to nothing, so the
// annotations are free. See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define SL_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SL_THREAD_ANNOTATION
#define SL_THREAD_ANNOTATION(x)  // no-op
#endif

#define CAPABILITY(x) SL_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY SL_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) SL_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) SL_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) SL_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) SL_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  SL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) SL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  SL_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) SL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  SL_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  SL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) SL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) SL_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) SL_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  SL_THREAD_ANNOTATION(no_thread_safety_analysis)

// Compatibility aliases matching the older lockable attribute names that
// still appear in third-party code; kept so grep finds one vocabulary.
#define EXCLUSIVE_LOCKS_REQUIRED(...) REQUIRES(__VA_ARGS__)
#define SHARED_LOCKS_REQUIRED(...) REQUIRES_SHARED(__VA_ARGS__)

// ---------------------------------------------------------------------------
// Lock-hierarchy (rank) checking.
//
// Every Mutex/SharedMutex is constructed with a LockRank and an instance
// name. In checking builds (STREAMLAKE_LOCK_ORDER_CHECK=1, the default for
// everything except pure Release configurations) each blocking acquisition
// verifies that the new lock's rank is STRICTLY BELOW every rank the thread
// already holds, maintains a per-thread stack of held locks, and feeds a
// process-wide observed lock-order graph. A rank inversion aborts the
// process with both lock names and the offending acquisition order — an
// ABBA deadlock becomes a deterministic crash in any single test run that
// exercises either side of the cycle. In release builds the checking
// compiles to nothing: Lock() is exactly mu_.lock().
// ---------------------------------------------------------------------------

#if defined(STREAMLAKE_LOCK_ORDER_CHECK) && STREAMLAKE_LOCK_ORDER_CHECK
#define SL_LOCK_ORDER_CHECK 1
#else
#define SL_LOCK_ORDER_CHECK 0
#endif

namespace streamlake {

/// \brief Global lock hierarchy, one band per subsystem layer, ordered
/// innermost (acquired last) to outermost (acquired first):
/// common < storage < kv < table < stream < streaming < core < baselines
/// < access. A thread may only acquire a mutex whose rank is strictly
/// below every rank it already holds, so call chains must take locks in
/// strictly descending rank order. Siblings inside a band get distinct
/// values (same-rank acquisition is also a violation — it would permit
/// ABBA between two instances). The one exception is STRIPED locks:
/// members of a lock-striped array constructed with an explicit stripe
/// index may nest within their own rank as long as stripe indices are
/// acquired in strictly ascending order, which is just as ABBA-free as
/// distinct ranks. See DESIGN.md "Lock hierarchy" / "Sharded concurrency"
/// for the rank table and how to pick a rank for a new mutex.
enum class LockRank : uint16_t {
  // ---- common: leaf utilities, acquired last ----
  kMetricsRegistry = 2,  // metric name->object map; registration is lazy
                         // (function-local statics on hot paths), so this
                         // must be acquirable under any other held lock
  kTokenBucket = 4,      // one quota bucket's refill state; leaf — bucket
                         // methods never call out, so it is acquirable
                         // under the admission lock (and any module lock)
  kThreadPool = 10,

  // ---- storage: device/pool/plog write path (Fig. 4) ----
  kBlockDevice = 20,      // page map of one simulated disk
  kStoragePool = 22,      // extent allocator; held while touching devices
  kPlog = 24,             // one persistence log; held across device I/O
  kPlogStore = 26,        // shard-chain stripes; held across Plog calls.
                          // STRIPED: PlogStore spreads its shards over an
                          // array of same-rank mutexes indexed by stripe;
                          // multi-stripe ops lock ascending stripe index
  kObjectStoreWorm = 28,  // WORM prefix list (leaf within object store)

  // ---- kv: the fault-tolerant KV engine backing every index ----
  kKvStore = 30,          // STRIPED: KvStore hashes keys over same-rank
                          // sub-store stripes; WriteBatch commit locks its
                          // touched stripes in ascending index order

  // ---- table: lakehouse metadata + commit protocol ----
  kMetadataStore = 40,    // MetaFresher pending-flush queue
  kTableBlockCache = 41,  // decoded row-group LRU (leaf; commit/compaction/
                          // migration invalidate under their own locks)
  kTableAccess = 42,      // partition access counters (leaf)
  kTableScanBarrier = 43, // per-Select fan-out completion barrier; scan jobs
                          // and the waiting query thread hold nothing else
  kTableCommit = 44,      // commit protocol; held across metadata/KV/object IO
  kQueryFragmentSink = 45,// per-query join build/probe fragment sinks, fed
                          // concurrently by scan-pool jobs; a job holds
                          // nothing else while appending its fragment
  kLakehouse = 46,        // catalog of open tables

  // ---- stream: stream objects over PLogs ----
  kScmSliceCache = 50,       // SCM slice LRU (leaf within stream)
  kStreamObject = 52,        // held across PLog append + KV index update
  kStreamObjectManager = 54, // object directory; held across object calls

  // ---- streaming: dispatcher / workers / transactions ----
  kStreamWorker = 56,      // assigned-stream set
  kStreamDispatcher = 58,  // topology; held across worker/manager/KV calls
  kTxnManager = 60,        // 2PC; held across dispatcher + worker produce

  // ---- core: the facade owns no locks today; reserved for it ----
  kCore = 70,

  // ---- baselines: self-contained mini systems over the storage band ----
  kMiniHdfs = 80,
  kMiniKafka = 82,

  // ---- access: protocol gateways, acquired first ----
  kAccessControl = 90,  // ACL tables (taken under the services below)
  kBlockService = 92,   // volume map; held across pool/device I/O
  kNasService = 94,     // handle table; held across object-store I/O
  kAdmission = 96,      // per-tenant admission queues + quota buckets; the
                        // very first lock of every gated request, so it
                        // outranks everything (holds kTokenBucket and
                        // kAccessControl while deciding, never device I/O)
};

/// Stripe index value meaning "not a member of a lock-striped array".
/// Mutexes constructed without an explicit stripe use this sentinel and
/// get the plain strict-descending rank rule; striped mutexes (PlogStore
/// shard stripes, KvStore sub-stores) carry their array index here, which
/// acts as a sub-rank: equal-rank nesting is legal only between two
/// striped locks with strictly ascending stripe indices.
inline constexpr uint32_t kNoStripe = 0xffffffffu;

namespace lock_order {

#if SL_LOCK_ORDER_CHECK
/// Called before a blocking acquisition: aborts on rank inversion (or
/// stripe-order inversion between same-rank striped locks), records the
/// (held-top -> acquired) edge for strictly-descending steps, and pushes
/// onto the per-thread stack.
void OnAcquire(LockRank rank, const char* name, const void* id,
               uint32_t stripe);
/// Called after a successful try-acquisition: pushes without checking.
/// Non-blocking acquisitions cannot contribute to a deadlock cycle (they
/// fail instead of blocking), so they are exempt from the rank rule.
void OnTryAcquire(LockRank rank, const char* name, const void* id,
                  uint32_t stripe);
/// Called at release: pops the matching entry from the per-thread stack.
void OnRelease(const void* id, const char* name);
/// Aborts unless the current thread's stack contains `id`.
void AssertHeld(const void* id, const char* name);
#endif

/// One observed acquired-while-held pair. Recorded per (class-level) lock
/// name: every time a thread acquires `to` while `from` is its most
/// recently acquired held lock.
struct LockOrderEdge {
  std::string from;
  std::string to;
  LockRank from_rank;
  LockRank to_rank;
};

/// Snapshot of the process-wide observed lock-order graph. Empty when
/// checking is compiled out.
std::vector<LockOrderEdge> GraphEdges();

/// DFS cycle check over the observed graph. Trivially true when checking
/// is compiled out (and true by construction under the strict-descending
/// rule — asserted independently by tests/lock_order_test.cc). On failure
/// `cycle_out` (if non-null) receives a printable cycle description.
bool GraphIsAcyclic(std::string* cycle_out = nullptr);

/// Clears the observed graph (tests only).
void ResetGraphForTest();

/// Writes the observed graph to `path` in the DOT dialect shared with the
/// static analyzer (tools/slint): one `"name" [lockrank=N];` line per node
/// and one `"from" -> "to";` line per edge, both sorted, so diffs and
/// subset checks are stable. Returns false if the file cannot be written.
/// When checking is compiled out the graph (and the file) is empty.
///
/// Test binaries also dump this automatically at process exit when the
/// STREAMLAKE_LOCK_GRAPH_DOT environment variable names a path — the hook
/// feeding `slint --check-observed` (check S4: observed ⊆ static).
bool WriteDot(const std::string& path);

/// Number of locks the calling thread currently holds (0 when checking is
/// compiled out).
size_t HeldByCurrentThread();

}  // namespace lock_order

/// \brief Annotated, ranked exclusive mutex. The only lock type allowed
/// outside this header — tools/lint.py bans naked std::mutex elsewhere so
/// every guarded field in the codebase is visible to Clang's thread-safety
/// analysis, and requires every member declaration to name its LockRank so
/// the hierarchy stays total.
class CAPABILITY("mutex") Mutex {
 public:
#if SL_LOCK_ORDER_CHECK
  explicit Mutex(LockRank rank, const char* name, uint32_t stripe = kNoStripe)
      : rank_(rank), name_(name), stripe_(stripe) {}
#else
  explicit Mutex(LockRank /*rank*/, const char* /*name*/,
                 uint32_t /*stripe*/ = kNoStripe) {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#if SL_LOCK_ORDER_CHECK
    lock_order::OnAcquire(rank_, name_, this, stripe_);
#endif
    mu_.lock();
  }

  /// Lock() that additionally reports whether the acquisition had to block
  /// behind another holder. Identical rank/stripe checking; the only
  /// difference is a leading try_lock so call sites can feed a contention
  /// counter (e.g. storage.plog.stripe_contention) without the mutex layer
  /// depending on metrics.
  bool LockCounted() ACQUIRE() {
#if SL_LOCK_ORDER_CHECK
    lock_order::OnAcquire(rank_, name_, this, stripe_);
#endif
    if (mu_.try_lock()) return false;
    mu_.lock();
    return true;
  }

  void Unlock() RELEASE() {
#if SL_LOCK_ORDER_CHECK
    lock_order::OnRelease(this, name_);
#endif
    mu_.unlock();
  }

  bool TryLock() TRY_ACQUIRE(true) {
    bool acquired = mu_.try_lock();
#if SL_LOCK_ORDER_CHECK
    if (acquired) lock_order::OnTryAcquire(rank_, name_, this, stripe_);
#endif
    return acquired;
  }

  /// Static-analysis assertion that this mutex is held (e.g. in a callback
  /// invoked from a locked region the analysis cannot see through). In
  /// checking builds this is also verified at runtime against the
  /// per-thread held-lock stack.
  void AssertHeld() ASSERT_CAPABILITY(this) {
#if SL_LOCK_ORDER_CHECK
    lock_order::AssertHeld(this, name_);
#endif
  }

#if SL_LOCK_ORDER_CHECK
  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }
#endif

 private:
  friend class CondVar;
  std::mutex mu_;
#if SL_LOCK_ORDER_CHECK
  const LockRank rank_;
  const char* const name_;
  const uint32_t stripe_;
#endif
};

/// \brief Annotated, ranked reader-writer mutex (MetaFresher KV cache read
/// path). Shared acquisitions participate in the rank hierarchy exactly
/// like exclusive ones: a reader blocked behind a pending writer deadlocks
/// an ABBA cycle just as effectively.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
#if SL_LOCK_ORDER_CHECK
  explicit SharedMutex(LockRank rank, const char* name,
                       uint32_t stripe = kNoStripe)
      : rank_(rank), name_(name), stripe_(stripe) {}
#else
  explicit SharedMutex(LockRank /*rank*/, const char* /*name*/,
                       uint32_t /*stripe*/ = kNoStripe) {}
#endif
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
#if SL_LOCK_ORDER_CHECK
    lock_order::OnAcquire(rank_, name_, this, stripe_);
#endif
    mu_.lock();
  }

  /// Writer Lock() that reports whether it had to block (see
  /// Mutex::LockCounted).
  bool LockCounted() ACQUIRE() {
#if SL_LOCK_ORDER_CHECK
    lock_order::OnAcquire(rank_, name_, this, stripe_);
#endif
    if (mu_.try_lock()) return false;
    mu_.lock();
    return true;
  }

  void Unlock() RELEASE() {
#if SL_LOCK_ORDER_CHECK
    lock_order::OnRelease(this, name_);
#endif
    mu_.unlock();
  }

  void LockShared() ACQUIRE_SHARED() {
#if SL_LOCK_ORDER_CHECK
    lock_order::OnAcquire(rank_, name_, this, stripe_);
#endif
    mu_.lock_shared();
  }

  /// Reader LockShared() that reports whether it had to block (see
  /// Mutex::LockCounted).
  bool LockSharedCounted() ACQUIRE_SHARED() {
#if SL_LOCK_ORDER_CHECK
    lock_order::OnAcquire(rank_, name_, this, stripe_);
#endif
    if (mu_.try_lock_shared()) return false;
    mu_.lock_shared();
    return true;
  }

  void UnlockShared() RELEASE_SHARED() {
#if SL_LOCK_ORDER_CHECK
    lock_order::OnRelease(this, name_);
#endif
    mu_.unlock_shared();
  }

#if SL_LOCK_ORDER_CHECK
  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }
#endif

 private:
  std::shared_mutex mu_;
#if SL_LOCK_ORDER_CHECK
  const LockRank rank_;
  const char* const name_;
  const uint32_t stripe_;
#endif
};

/// \brief RAII scoped lock over Mutex, LevelDB-style: MutexLock l(&mu_);
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  /// Contention-observing form: *contended_out is set to whether the
  /// acquisition had to block, so the caller can bump a contention counter.
  MutexLock(Mutex* mu, bool* contended_out) ACQUIRE(mu) : mu_(mu) {
    *contended_out = mu_->LockCounted();
  }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief Exclusive (writer) scoped lock over SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  /// Contention-observing form (see MutexLock).
  WriterMutexLock(SharedMutex* mu, bool* contended_out) ACQUIRE(mu)
      : mu_(mu) {
    *contended_out = mu_->LockCounted();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief Shared (reader) scoped lock over SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  /// Contention-observing form (see MutexLock).
  ReaderMutexLock(SharedMutex* mu, bool* contended_out) ACQUIRE_SHARED(mu)
      : mu_(mu) {
    *contended_out = mu_->LockSharedCounted();
  }
  // Generic RELEASE() (not RELEASE_SHARED) matches Abseil: older Clang
  // versions reject shared-release annotations on scoped destructors.
  ~ReaderMutexLock() RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief Condition variable bound to Mutex at each wait site.
///
/// Use explicit wait loops so guarded reads stay inside the annotated
/// critical section:
///
///   MutexLock lock(&mu_);
///   while (queue_.empty() && !shutdown_) work_cv_.Wait(&mu_);
///
/// Waiting does not touch the lock-order stack: the mutex is logically
/// still held by this thread (it is reacquired before Wait returns, and
/// nothing else can be acquired in between).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release *mu, block, reacquire before returning. Spurious
  /// wakeups are possible: always wait in a loop re-checking the predicate.
  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> reacquire(mu->mu_, std::adopt_lock);
    cv_.wait(reacquire);
    reacquire.release();
  }

  /// Timed wait; returns false on timeout (the mutex is reacquired either
  /// way). Like Wait(), callers must re-check their predicate.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex* mu, const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> reacquire(mu->mu_, std::adopt_lock);
    bool signalled = cv_.wait_for(reacquire, timeout) ==
                     std::cv_status::no_timeout;
    reacquire.release();
    return signalled;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace streamlake

#endif  // STREAMLAKE_COMMON_MUTEX_H_
