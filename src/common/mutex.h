#ifndef STREAMLAKE_COMMON_MUTEX_H_
#define STREAMLAKE_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Clang thread-safety annotation macros.
//
// Under Clang with -Wthread-safety these expand to attributes that let the
// compiler statically verify locking discipline (fields declared GUARDED_BY a
// Mutex may only be touched while it is held; *Locked helpers declare
// REQUIRES). Under GCC and other compilers they expand to nothing, so the
// annotations are free. See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define SL_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SL_THREAD_ANNOTATION
#define SL_THREAD_ANNOTATION(x)  // no-op
#endif

#define CAPABILITY(x) SL_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY SL_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) SL_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) SL_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) SL_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) SL_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  SL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) SL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  SL_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) SL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  SL_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  SL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) SL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) SL_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) SL_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  SL_THREAD_ANNOTATION(no_thread_safety_analysis)

// Compatibility aliases matching the older lockable attribute names that
// still appear in third-party code; kept so grep finds one vocabulary.
#define EXCLUSIVE_LOCKS_REQUIRED(...) REQUIRES(__VA_ARGS__)
#define SHARED_LOCKS_REQUIRED(...) REQUIRES_SHARED(__VA_ARGS__)

namespace streamlake {

/// \brief Annotated exclusive mutex. The only lock type allowed outside this
/// header — tools/lint.py bans naked std::mutex elsewhere so every guarded
/// field in the codebase is visible to Clang's thread-safety analysis.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Static-analysis assertion that this mutex is held (e.g. in a callback
  /// invoked from a locked region the analysis cannot see through).
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief Annotated reader-writer mutex (MetaFresher KV cache read path).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// \brief RAII scoped lock over Mutex, LevelDB-style: MutexLock l(&mu_);
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief Exclusive (writer) scoped lock over SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief Shared (reader) scoped lock over SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  // Generic RELEASE() (not RELEASE_SHARED) matches Abseil: older Clang
  // versions reject shared-release annotations on scoped destructors.
  ~ReaderMutexLock() RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief Condition variable bound to Mutex at each wait site.
///
/// Use explicit wait loops so guarded reads stay inside the annotated
/// critical section:
///
///   MutexLock lock(&mu_);
///   while (queue_.empty() && !shutdown_) work_cv_.Wait(&mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release *mu, block, reacquire before returning. Spurious
  /// wakeups are possible: always wait in a loop re-checking the predicate.
  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> reacquire(mu->mu_, std::adopt_lock);
    cv_.wait(reacquire);
    reacquire.release();
  }

  /// Timed wait; returns false on timeout (the mutex is reacquired either
  /// way). Like Wait(), callers must re-check their predicate.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex* mu, const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> reacquire(mu->mu_, std::adopt_lock);
    bool signalled = cv_.wait_for(reacquire, timeout) ==
                     std::cv_status::no_timeout;
    reacquire.release();
    return signalled;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace streamlake

#endif  // STREAMLAKE_COMMON_MUTEX_H_
