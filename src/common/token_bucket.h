#ifndef STREAMLAKE_COMMON_TOKEN_BUCKET_H_
#define STREAMLAKE_COMMON_TOKEN_BUCKET_H_

#include <cstdint>

#include "common/mutex.h"

namespace streamlake {

/// \brief Deterministic token bucket refilled on virtual (SimClock) time.
///
/// The quota primitive behind per-tenant admission control
/// (`access::AdmissionController`): a bucket holds up to `burst` tokens
/// and gains `rate_per_sec` tokens per simulated second. Callers pass the
/// current virtual time explicitly on every operation, so refill is a
/// pure function of the caller's event timeline — two runs that present
/// the same (time, amount) sequence make identical decisions regardless
/// of wall-clock scheduling, which is what lets the cluster-scale bench
/// gate shed/throttle counters exactly in CI.
///
/// Besides the classic TryConsume, the bucket supports *reservations*
/// (`Reserve`): consuming tokens the bucket does not have yet drives the
/// balance negative, and the debt, divided by the refill rate, is the
/// virtual time the caller must wait before its reservation is backed by
/// real tokens. A debt ceiling expressed as `max_wait_ns` turns the
/// bucket into a bounded FIFO admission queue: a reservation whose wait
/// would exceed the ceiling is refused without consuming anything — the
/// queue-full shed path.
///
/// A zero-capacity bucket (`burst == 0` or `rate_per_sec == 0` with an
/// empty balance) never admits: TryConsume of any positive amount fails
/// and NanosUntilAvailable/Reserve report kNever.
///
/// Thread-safe; the internal mutex is a leaf (LockRank::kTokenBucket) so
/// buckets are safely consulted under the admission lock.
class TokenBucket {
 public:
  /// "This amount will never become available."
  static constexpr uint64_t kNever = ~0ULL;

  TokenBucket(double rate_per_sec, double burst);
  TokenBucket(const TokenBucket&) = delete;
  TokenBucket& operator=(const TokenBucket&) = delete;

  /// Refill to `now_ns`, then take `n` tokens if the balance covers them.
  bool TryConsume(uint64_t now_ns, double n);

  /// Nanoseconds after `now_ns` until `n` tokens are available (0 = now).
  /// kNever when `n` exceeds what the bucket can ever hold.
  uint64_t NanosUntilAvailable(uint64_t now_ns, double n) const;

  /// Reserve `n` tokens, allowing the balance to go negative, and return
  /// the wait (ns after `now_ns`) until the reservation is fully backed.
  /// If that wait would exceed `max_wait_ns` — the bounded-queue ceiling —
  /// nothing is consumed and kNever is returned (caller sheds).
  uint64_t Reserve(uint64_t now_ns, double n, uint64_t max_wait_ns);

  /// Give back `n` tokens (undo of a half-made multi-bucket reservation).
  /// The balance is clamped to `burst`.
  void Refund(double n);

  /// Current balance at `now_ns` (may be negative under reservations).
  double TokensAt(uint64_t now_ns) const;

  double rate_per_sec() const { return rate_; }
  double burst() const { return burst_; }

 private:
  /// Advance refill state to `now_ns` (monotonic: earlier times no-op).
  void RefillLocked(uint64_t now_ns) const REQUIRES(mu_);

  const double rate_;
  const double burst_;
  mutable Mutex mu_{LockRank::kTokenBucket, "common.token_bucket"};
  mutable double tokens_ GUARDED_BY(mu_);
  mutable uint64_t last_refill_ns_ GUARDED_BY(mu_) = 0;
};

}  // namespace streamlake

#endif  // STREAMLAKE_COMMON_TOKEN_BUCKET_H_
