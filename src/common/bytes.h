#ifndef STREAMLAKE_COMMON_BYTES_H_
#define STREAMLAKE_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace streamlake {

/// Owning byte buffer used for record payloads and file contents.
using Bytes = std::vector<uint8_t>;

/// Non-owning view over a byte range (RocksDB-style Slice).
class ByteView {
 public:
  ByteView() : data_(nullptr), size_(0) {}
  ByteView(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  ByteView(const Bytes& b) : data_(b.data()), size_(b.size()) {}
  ByteView(std::string_view s)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}
  ByteView(const std::string& s)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}
  ByteView(const char* s) : ByteView(std::string_view(s)) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t operator[](size_t i) const { return data_[i]; }

  ByteView subview(size_t offset, size_t len) const {
    return ByteView(data_ + offset, len);
  }

  Bytes ToBytes() const { return Bytes(data_, data_ + size_); }
  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }
  std::string_view ToStringView() const {
    return std::string_view(reinterpret_cast<const char*>(data_), size_);
  }

  bool operator==(const ByteView& other) const {
    return size_ == other.size_ &&
           (size_ == 0 || std::memcmp(data_, other.data_, size_) == 0);
  }

 private:
  const uint8_t* data_;
  size_t size_;
};

inline Bytes ToBytes(std::string_view s) {
  return Bytes(reinterpret_cast<const uint8_t*>(s.data()),
               reinterpret_cast<const uint8_t*>(s.data()) + s.size());
}

inline std::string BytesToString(const Bytes& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

inline void AppendBytes(Bytes* dst, ByteView src) {
  dst->insert(dst->end(), src.data(), src.data() + src.size());
}

}  // namespace streamlake

#endif  // STREAMLAKE_COMMON_BYTES_H_
