#ifndef STREAMLAKE_COMMON_LOGGING_H_
#define STREAMLAKE_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace streamlake {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; benches raise it to keep output clean.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

namespace internal {

/// Collects the streamed message and emits it on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define SL_LOG(level)                                                \
  if (::streamlake::LogLevel::k##level < ::streamlake::GetLogLevel()) \
    ;                                                                \
  else                                                               \
    ::streamlake::internal::LogLine(::streamlake::LogLevel::k##level, \
                                    __FILE__, __LINE__)

/// Invariant check that survives release builds (storage code must never
/// silently corrupt data).
#define SL_CHECK(cond)                                                   \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::streamlake::LogMessage(::streamlake::LogLevel::kError, __FILE__, \
                               __LINE__, "CHECK failed: " #cond);        \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

}  // namespace streamlake

#endif  // STREAMLAKE_COMMON_LOGGING_H_
