#include "common/status.h"

#include "common/logging.h"
#include "common/metrics.h"

namespace streamlake {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kQuotaExceeded:
      return "QuotaExceeded";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kUnknown:
      return "Unknown";
  }
  return "Unknown";
}

}  // namespace

void Status::LogIgnored(const char* what) const {
  if (ok()) return;
  static Counter* ignored =
      MetricsRegistry::Global().GetCounter("common.status.ignored");
  ignored->Increment();
  SL_LOG(Warn) << "ignored status (" << what << "): " << ToString();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace streamlake
