#ifndef STREAMLAKE_COMMON_CODING_H_
#define STREAMLAKE_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/bytes.h"

namespace streamlake {

// Little-endian fixed-width and varint primitives shared by the KV WAL,
// PLog records, LakeFile pages, and commit/snapshot serialization.

inline void PutFixed32(Bytes* dst, uint32_t v) {
  uint8_t buf[4];
  std::memcpy(buf, &v, 4);
  dst->insert(dst->end(), buf, buf + 4);
}

inline void PutFixed64(Bytes* dst, uint64_t v) {
  uint8_t buf[8];
  std::memcpy(buf, &v, 8);
  dst->insert(dst->end(), buf, buf + 8);
}

inline uint32_t DecodeFixed32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t DecodeFixed64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline void PutVarint64(Bytes* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  dst->push_back(static_cast<uint8_t>(v));
}

/// Decodes a varint64 at `*p` (bounded by `limit`). Returns false on
/// truncated/overlong input. Advances *p past the varint on success.
inline bool GetVarint64(const uint8_t** p, const uint8_t* limit,
                        uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && *p < limit; shift += 7) {
    uint8_t byte = **p;
    ++*p;
    if (byte & 0x80) {
      result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    } else {
      result |= static_cast<uint64_t>(byte) << shift;
      *value = result;
      return true;
    }
  }
  return false;
}

inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline void PutVarint64Signed(Bytes* dst, int64_t v) {
  PutVarint64(dst, ZigZagEncode(v));
}

inline void PutLengthPrefixed(Bytes* dst, ByteView v) {
  PutVarint64(dst, v.size());
  AppendBytes(dst, v);
}

inline void PutLengthPrefixed(Bytes* dst, std::string_view v) {
  PutLengthPrefixed(dst, ByteView(v));
}

/// Reads a length-prefixed byte range. The returned view aliases the input.
inline bool GetLengthPrefixed(const uint8_t** p, const uint8_t* limit,
                              ByteView* out) {
  uint64_t len;
  if (!GetVarint64(p, limit, &len)) return false;
  if (static_cast<uint64_t>(limit - *p) < len) return false;
  *out = ByteView(*p, static_cast<size_t>(len));
  *p += len;
  return true;
}

/// Cursor that reads the primitives above with bounds checking; every
/// deserializer uses this so corrupt input yields an error, never UB.
class Decoder {
 public:
  explicit Decoder(ByteView data)
      : p_(data.data()), limit_(data.data() + data.size()) {}

  bool GetFixed32(uint32_t* v) {
    if (Remaining() < 4) return false;
    *v = DecodeFixed32(p_);
    p_ += 4;
    return true;
  }
  bool GetFixed64(uint64_t* v) {
    if (Remaining() < 8) return false;
    *v = DecodeFixed64(p_);
    p_ += 8;
    return true;
  }
  bool GetVarint(uint64_t* v) { return GetVarint64(&p_, limit_, v); }
  bool GetVarintSigned(int64_t* v) {
    uint64_t u;
    if (!GetVarint64(&p_, limit_, &u)) return false;
    *v = ZigZagDecode(u);
    return true;
  }
  bool GetBytes(ByteView* out) { return GetLengthPrefixed(&p_, limit_, out); }
  bool GetString(std::string* out) {
    ByteView v;
    if (!GetBytes(&v)) return false;
    *out = v.ToString();
    return true;
  }
  bool Skip(size_t n) {
    if (Remaining() < n) return false;
    p_ += n;
    return true;
  }

  size_t Remaining() const { return static_cast<size_t>(limit_ - p_); }
  const uint8_t* position() const { return p_; }

 private:
  const uint8_t* p_;
  const uint8_t* limit_;
};

}  // namespace streamlake

#endif  // STREAMLAKE_COMMON_CODING_H_
