#include "common/token_bucket.h"

#include <algorithm>
#include <cmath>

namespace streamlake {

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_(rate_per_sec < 0 ? 0 : rate_per_sec),
      burst_(burst < 0 ? 0 : burst),
      tokens_(burst_) {}

void TokenBucket::RefillLocked(uint64_t now_ns) const {
  if (now_ns <= last_refill_ns_) return;  // stale caller timeline: no-op
  double gained = (now_ns - last_refill_ns_) * 1e-9 * rate_;
  tokens_ = std::min(burst_, tokens_ + gained);
  last_refill_ns_ = now_ns;
}

bool TokenBucket::TryConsume(uint64_t now_ns, double n) {
  MutexLock lock(&mu_);
  RefillLocked(now_ns);
  if (tokens_ < n) return false;
  tokens_ -= n;
  return true;
}

uint64_t TokenBucket::NanosUntilAvailable(uint64_t now_ns, double n) const {
  MutexLock lock(&mu_);
  RefillLocked(now_ns);
  if (tokens_ >= n) return 0;
  // A deficit beyond what refill can ever close (the balance converges to
  // burst_) never becomes available.
  if (rate_ <= 0 || n > burst_) return kNever;
  return static_cast<uint64_t>(std::ceil((n - tokens_) / rate_ * 1e9));
}

uint64_t TokenBucket::Reserve(uint64_t now_ns, double n, uint64_t max_wait_ns) {
  MutexLock lock(&mu_);
  RefillLocked(now_ns);
  double after = tokens_ - n;
  uint64_t wait = 0;
  if (after < 0) {
    if (rate_ <= 0) return kNever;
    double wait_ns = std::ceil(-after / rate_ * 1e9);
    // Guard the uint64 conversion: a deep enough debt bound overflows.
    if (wait_ns > 1e18 || static_cast<uint64_t>(wait_ns) > max_wait_ns) {
      return kNever;
    }
    wait = static_cast<uint64_t>(wait_ns);
  }
  tokens_ = after;
  return wait;
}

void TokenBucket::Refund(double n) {
  MutexLock lock(&mu_);
  tokens_ = std::min(burst_, tokens_ + n);
}

double TokenBucket::TokensAt(uint64_t now_ns) const {
  MutexLock lock(&mu_);
  RefillLocked(now_ns);
  return tokens_;
}

}  // namespace streamlake
