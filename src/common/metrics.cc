#include "common/metrics.h"

#include <bit>
#include <cinttypes>
#include <cstdio>

#include "common/logging.h"

namespace streamlake {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

size_t Histogram::BucketIndex(uint64_t value) {
  constexpr uint64_t kSubBuckets = 1ULL << kSubBucketBits;
  if (value < kSubBuckets) return static_cast<size_t>(value);  // exact
  int msb = 63 - std::countl_zero(value);
  size_t group = static_cast<size_t>(msb) - (kSubBucketBits - 1);
  uint64_t sub = (value >> (msb - kSubBucketBits)) & (kSubBuckets - 1);
  return (group << kSubBucketBits) + static_cast<size_t>(sub);
}

uint64_t Histogram::BucketMidpoint(size_t index) {
  constexpr uint64_t kSubBuckets = 1ULL << kSubBucketBits;
  if (index < kSubBuckets) return index;  // exact buckets are their value
  size_t group = index >> kSubBucketBits;
  uint64_t sub = index & (kSubBuckets - 1);
  int msb = static_cast<int>(group) + (kSubBucketBits - 1);
  uint64_t width = 1ULL << (msb - kSubBucketBits);
  uint64_t lower = (1ULL << msb) + sub * width;
  return lower + (width - 1) / 2;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t observed = min_.load(std::memory_order_relaxed);
  while (value < observed &&
         !min_.compare_exchange_weak(observed, value,
                                     std::memory_order_relaxed)) {
  }
  observed = max_.load(std::memory_order_relaxed);
  while (value > observed &&
         !max_.compare_exchange_weak(observed, value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Min() const {
  uint64_t v = min_.load(std::memory_order_relaxed);
  return v == ~0ULL ? 0 : v;
}

uint64_t Histogram::ValueAtQuantile(double q) const {
  uint64_t total = Count();
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  auto target = static_cast<uint64_t>(q * static_cast<double>(total - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) {
      uint64_t mid = BucketMidpoint(i);
      // Concurrent Record()s can make bucket sums momentarily disagree
      // with count_; clamping keeps the answer inside the observed range.
      uint64_t lo = Min();
      uint64_t hi = Max();
      return mid < lo ? lo : (mid > hi ? hi : mid);
    }
  }
  return Max();
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ULL, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: metric pointers cached in function-local statics
  // must stay valid through static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

const char* MetricsRegistry::KindName(Kind kind) const {
  switch (kind) {
    case Kind::kCounter:
      return "counter";
    case Kind::kGauge:
      return "gauge";
    case Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto [it, inserted] = kinds_.emplace(name, Kind::kCounter);
  if (!inserted && it->second != Kind::kCounter) {
    SL_LOG(Error) << "metric name '" << name << "' already registered as a "
                  << KindName(it->second) << ", requested as a counter";
    SL_CHECK(it->second == Kind::kCounter);
  }
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto [it, inserted] = kinds_.emplace(name, Kind::kGauge);
  if (!inserted && it->second != Kind::kGauge) {
    SL_LOG(Error) << "metric name '" << name << "' already registered as a "
                  << KindName(it->second) << ", requested as a gauge";
    SL_CHECK(it->second == Kind::kGauge);
  }
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto [it, inserted] = kinds_.emplace(name, Kind::kHistogram);
  if (!inserted && it->second != Kind::kHistogram) {
    SL_LOG(Error) << "metric name '" << name << "' already registered as a "
                  << KindName(it->second) << ", requested as a histogram";
    SL_CHECK(it->second == Kind::kHistogram);
  }
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Value();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  MutexLock lock(&mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.count = histogram->Count();
    h.sum = histogram->Sum();
    h.min = histogram->Min();
    h.max = histogram->Max();
    h.p50 = histogram->ValueAtQuantile(0.50);
    h.p90 = histogram->ValueAtQuantile(0.90);
    h.p99 = histogram->ValueAtQuantile(0.99);
    snapshot.histograms[name] = h;
  }
  return snapshot;
}

namespace {

// Metric names follow the [a-z0-9._] convention (DESIGN.md), but escape
// defensively so a stray name can't produce unparseable JSON.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}

void AppendJsonKey(std::string* out, const std::string& name) {
  out->append("\"").append(JsonEscape(name)).append("\": ");
}

}  // namespace

std::string MetricsRegistry::TextReport() const {
  MetricsSnapshot snapshot = Snapshot();
  std::string out;
  char buf[160];
  for (const auto& [name, value] : snapshot.counters) {
    std::snprintf(buf, sizeof(buf), "%s = %" PRIu64 "\n", name.c_str(), value);
    out += buf;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::snprintf(buf, sizeof(buf), "%s = %" PRId64 "\n", name.c_str(), value);
    out += buf;
  }
  for (const auto& [name, h] : snapshot.histograms) {
    std::snprintf(buf, sizeof(buf),
                  "%s: count=%" PRIu64 " sum=%" PRIu64 " min=%" PRIu64
                  " p50=%" PRIu64 " p90=%" PRIu64 " p99=%" PRIu64
                  " max=%" PRIu64 "\n",
                  name.c_str(), h.count, h.sum, h.min, h.p50, h.p90, h.p99,
                  h.max);
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::JsonReport() const {
  MetricsSnapshot snapshot = Snapshot();
  std::string out = "{\n  \"counters\": {";
  char buf[64];
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out += buf;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    out += buf;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    char line[256];
    std::snprintf(line, sizeof(line),
                  "{\"count\": %" PRIu64 ", \"sum\": %" PRIu64
                  ", \"min\": %" PRIu64 ", \"max\": %" PRIu64
                  ", \"p50\": %" PRIu64 ", \"p90\": %" PRIu64
                  ", \"p99\": %" PRIu64 "}",
                  h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99);
    out += line;
  }
  out += "\n  }\n}";
  return out;
}

void MetricsRegistry::ResetForTest() {
  MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace streamlake
