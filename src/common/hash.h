#ifndef STREAMLAKE_COMMON_HASH_H_
#define STREAMLAKE_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

#include "common/bytes.h"

namespace streamlake {

/// 64-bit FNV-1a hash; used by the distributed hash table that spreads
/// stream-object slices across the 4096 logical shards (Fig. 4-d).
uint64_t Hash64(ByteView data, uint64_t seed = 0);

/// CRC-32C (Castagnoli); guards every PLog record and LakeFile block.
uint32_t Crc32c(ByteView data, uint32_t seed = 0);

}  // namespace streamlake

#endif  // STREAMLAKE_COMMON_HASH_H_
