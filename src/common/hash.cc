#include "common/hash.h"

#include <array>

namespace streamlake {

uint64_t Hash64(ByteView data, uint64_t seed) {
  // FNV-1a with a seed mixed into the offset basis, then a final avalanche
  // (splitmix64 finalizer) so that short keys still spread well over shards.
  uint64_t h = 14695981039346656037ULL ^ (seed * 0x9E3779B97F4A7C15ULL);
  for (size_t i = 0; i < data.size(); ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

namespace {

std::array<uint32_t, 256> MakeCrc32cTable() {
  std::array<uint32_t, 256> table{};
  constexpr uint32_t kPoly = 0x82F63B78;  // reversed Castagnoli polynomial
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(ByteView data, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = MakeCrc32cTable();
  uint32_t crc = ~seed;
  for (size_t i = 0; i < data.size(); ++i) {
    crc = kTable[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace streamlake
