// Runtime lock-hierarchy checker backing src/common/mutex.h.
//
// Per-thread state is a stack of currently held locks (rank, name,
// instance). Process-wide state is the observed lock-order graph: one edge
// per distinct (holder-name -> acquired-name) pair ever seen. The graph is
// keyed by lock *name* (one per class-level role, e.g. "kv.store"), not by
// instance, so a cycle between any two instances of the same pair of roles
// is visible no matter which instances a given run touched.
//
// This file is the one place allowed to use std::mutex directly (the
// registry guard cannot itself be a ranked Mutex); tools/lint.py exempts
// it alongside mutex.h.

#include "common/mutex.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

namespace streamlake {
namespace lock_order {

#if SL_LOCK_ORDER_CHECK

namespace {

struct HeldLock {
  LockRank rank;
  const char* name;
  const void* id;
  uint32_t stripe;
};

// Held-lock stack for this thread, innermost (most recent) last. The
// strict-descending rule keeps it sorted: back() is always the minimum
// rank, so a single comparison against back() checks against all.
thread_local std::vector<HeldLock> t_held;

struct Graph {
  std::mutex mu;
  // (from-name, to-name) -> (from-rank, to-rank)
  std::map<std::pair<std::string, std::string>,
           std::pair<LockRank, LockRank>>
      edges;
};

// Leaked intentionally: lock acquisitions can happen during static
// destruction and must never touch a destroyed registry.
Graph& GlobalGraph() {
  static Graph* g = new Graph;
  return *g;
}

void RecordEdge(const HeldLock& from, LockRank to_rank, const char* to) {
  Graph& g = GlobalGraph();
  std::lock_guard<std::mutex> guard(g.mu);
  g.edges.emplace(std::make_pair(std::string(from.name), std::string(to)),
                  std::make_pair(from.rank, to_rank));
}

void PrintLockLine(const char* prefix, const char* name, LockRank rank,
                   uint32_t stripe) {
  if (stripe == kNoStripe) {
    std::fprintf(stderr, "%s\"%s\" (rank %u)\n", prefix, name,
                 static_cast<unsigned>(rank));
  } else {
    std::fprintf(stderr, "%s\"%s\" (rank %u, stripe %u)\n", prefix, name,
                 static_cast<unsigned>(rank), stripe);
  }
}

[[noreturn]] void Die(const char* verb, LockRank rank, const char* name,
                      uint32_t stripe) {
  std::fprintf(stderr,
               "\n*** streamlake lock-order violation ***\n"
               "  %s: ",
               verb);
  PrintLockLine("", name, rank, stripe);
  std::fprintf(stderr, "  while holding (outermost first):\n");
  for (const HeldLock& held : t_held) {
    PrintLockLine("    ", held.name, held.rank, held.stripe);
  }
  std::fprintf(stderr,
               "  rule: a mutex may be acquired only while every held rank "
               "is strictly greater\n"
               "  (outer layers lock first; equal ranks never nest), except "
               "that two STRIPED\n"
               "  locks of the same rank may nest in strictly ascending "
               "stripe-index order.\n"
               "  See DESIGN.md, \"Lock hierarchy\" and \"Sharded "
               "concurrency\".\n");
  std::abort();
}

}  // namespace

void OnAcquire(LockRank rank, const char* name, const void* id,
               uint32_t stripe) {
  if (!t_held.empty()) {
    const HeldLock& innermost = t_held.back();
    if (rank < innermost.rank) {
      // Strictly-descending rank step: the only kind that enters the
      // observed order graph (same-rank stripe steps would self-loop on
      // the shared class-level name).
      RecordEdge(innermost, rank, name);
    } else if (rank == innermost.rank && stripe != kNoStripe &&
               innermost.stripe != kNoStripe && stripe > innermost.stripe) {
      // Same-rank striped step in ascending stripe order: legal. The
      // stripe index acts as a sub-rank, so the stack stays sorted by
      // (rank desc, stripe asc) and comparing against back() still
      // checks against every held lock.
    } else {
      Die("acquiring", rank, name, stripe);
    }
  }
  t_held.push_back(HeldLock{rank, name, id, stripe});
}

void OnTryAcquire(LockRank rank, const char* name, const void* id,
                  uint32_t stripe) {
  // No rank check: a failed try-lock returns instead of blocking, so
  // try-acquisitions cannot close a deadlock cycle. Still recorded on the
  // stack (it IS held now) but deliberately kept out of the order graph.
  t_held.push_back(HeldLock{rank, name, id, stripe});
}

void OnRelease(const void* id, const char* name) {
  // Reverse search instead of asserting LIFO: hand-over-hand or
  // out-of-order unlocks are legal, only acquisition order is ranked.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->id == id) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  std::fprintf(stderr,
               "\n*** streamlake lock-order violation ***\n"
               "  releasing \"%s\" which this thread does not hold\n",
               name);
  std::abort();
}

void AssertHeld(const void* id, const char* name) {
  for (const HeldLock& held : t_held) {
    if (held.id == id) return;
  }
  std::fprintf(stderr,
               "\n*** streamlake AssertHeld failure ***\n"
               "  \"%s\" is not held by the current thread\n",
               name);
  std::abort();
}

std::vector<LockOrderEdge> GraphEdges() {
  Graph& g = GlobalGraph();
  std::lock_guard<std::mutex> guard(g.mu);
  std::vector<LockOrderEdge> out;
  out.reserve(g.edges.size());
  for (const auto& [names, ranks] : g.edges) {
    out.push_back(LockOrderEdge{names.first, names.second, ranks.first,
                                ranks.second});
  }
  return out;
}

bool GraphIsAcyclic(std::string* cycle_out) {
  std::vector<LockOrderEdge> edges = GraphEdges();
  std::map<std::string, std::vector<std::string>> adj;
  for (const LockOrderEdge& e : edges) adj[e.from].push_back(e.to);

  // Iterative three-color DFS; a back edge to a gray node is a cycle.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  for (const auto& [start, unused] : adj) {
    (void)unused;
    if (color[start] != 0) continue;
    std::vector<std::pair<std::string, size_t>> stack{{start, 0}};
    color[start] = 1;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      auto& out_edges = adj[node];
      if (next < out_edges.size()) {
        const std::string& succ = out_edges[next++];
        if (color[succ] == 1) {
          if (cycle_out != nullptr) {
            // succ is gray, so it is on the DFS stack: the cycle is the
            // stack segment from succ to the top, closed back onto succ.
            std::string desc;
            bool in_cycle = false;
            for (const auto& [n, unused2] : stack) {
              (void)unused2;
              if (n == succ) in_cycle = true;
              if (in_cycle) desc += n + " -> ";
            }
            *cycle_out = desc + succ;
          }
          return false;
        }
        if (color[succ] == 0) {
          color[succ] = 1;
          stack.emplace_back(succ, 0);
        }
      } else {
        color[node] = 2;
        stack.pop_back();
      }
    }
  }
  return true;
}

void ResetGraphForTest() {
  Graph& g = GlobalGraph();
  std::lock_guard<std::mutex> guard(g.mu);
  g.edges.clear();
}

size_t HeldByCurrentThread() { return t_held.size(); }

namespace {

// Registers the STREAMLAKE_LOCK_GRAPH_DOT at-exit dump. A namespace-scope
// initializer (not GlobalGraph's) so the dump happens even in runs that
// never record an edge: an empty-but-present DOT distinguishes "nothing
// observed" from "hook never ran".
struct LockGraphDumpRegistrar {
  LockGraphDumpRegistrar() {
    if (std::getenv("STREAMLAKE_LOCK_GRAPH_DOT") != nullptr) {
      std::atexit(+[] {
        const char* path = std::getenv("STREAMLAKE_LOCK_GRAPH_DOT");
        if (path != nullptr && !WriteDot(path)) {
          std::fprintf(stderr,
                       "streamlake: failed to write lock graph to %s\n",
                       path);
        }
      });
    }
  }
};
LockGraphDumpRegistrar lock_graph_dump_registrar;

}  // namespace

#else  // !SL_LOCK_ORDER_CHECK

std::vector<LockOrderEdge> GraphEdges() { return {}; }
bool GraphIsAcyclic(std::string* cycle_out) {
  if (cycle_out != nullptr) cycle_out->clear();
  return true;
}
void ResetGraphForTest() {}
size_t HeldByCurrentThread() { return 0; }

#endif  // SL_LOCK_ORDER_CHECK

// Shared between checking and release builds: in release GraphEdges() is
// empty and the file holds just the digraph shell.
bool WriteDot(const std::string& path) {
  std::vector<LockOrderEdge> edges = GraphEdges();
  // std::map gives the stable (sorted) node/edge ordering the DOT contract
  // promises; GraphEdges() already returns edges in (from, to) order.
  std::map<std::string, LockRank> nodes;
  for (const LockOrderEdge& e : edges) {
    nodes.emplace(e.from, e.from_rank);
    nodes.emplace(e.to, e.to_rank);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "digraph lock_order {\n");
  for (const auto& [name, rank] : nodes) {
    std::fprintf(f, "  \"%s\" [lockrank=%u];\n", name.c_str(),
                 static_cast<unsigned>(rank));
  }
  for (const LockOrderEdge& e : edges) {
    std::fprintf(f, "  \"%s\" -> \"%s\";\n", e.from.c_str(), e.to.c_str());
  }
  std::fprintf(f, "}\n");
  return std::fclose(f) == 0;
}

}  // namespace lock_order
}  // namespace streamlake
