#ifndef STREAMLAKE_COMMON_RANDOM_H_
#define STREAMLAKE_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace streamlake {

/// Deterministic xorshift128+ PRNG. Every workload generator and the RL
/// training loop take an explicit seed so experiments are reproducible.
class Random {
 public:
  explicit Random(uint64_t seed = 42) {
    s0_ = seed ? seed : 0xDEADBEEFCAFEBABEULL;
    s1_ = s0_ ^ 0x9E3779B97F4A7C15ULL;
    // Warm up so similar seeds diverge quickly.
    for (int i = 0; i < 8; ++i) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Approximately Zipfian rank in [0, n) with exponent `theta` in (0,1);
  /// used to skew topic/key popularity like production log traffic.
  uint64_t Zipf(uint64_t n, double theta = 0.8);

  /// Random lowercase ASCII string of length `len`.
  std::string NextString(size_t len);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace streamlake

#endif  // STREAMLAKE_COMMON_RANDOM_H_
