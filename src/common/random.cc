#include "common/random.h"

#include <cmath>

namespace streamlake {

uint64_t Random::Zipf(uint64_t n, double theta) {
  // Inverse-CDF approximation for the continuous Zipf-like distribution
  // p(x) ~ x^(-theta); cheap and good enough for workload skew.
  if (n <= 1) return 0;
  double u = NextDouble();
  double exp = 1.0 - theta;
  double x = std::pow(u * (std::pow(static_cast<double>(n), exp) - 1.0) + 1.0,
                      1.0 / exp);
  uint64_t rank = static_cast<uint64_t>(x) - 1;
  return rank >= n ? n - 1 : rank;
}

std::string Random::NextString(size_t len) {
  std::string s(len, 'a');
  for (size_t i = 0; i < len; ++i) {
    s[i] = static_cast<char>('a' + Uniform(26));
  }
  return s;
}

}  // namespace streamlake
