#ifndef STREAMLAKE_COMMON_ADMISSION_GATE_H_
#define STREAMLAKE_COMMON_ADMISSION_GATE_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace streamlake {

/// Request classes the admission layer meters. One request = `ops`
/// operation tokens (usually 1, a batch consumes its size) plus `bytes`
/// payload tokens from the tenant's two buckets.
enum class AdmitOp : uint8_t {
  kProduce = 0,
  kFetch,
  kSelect,
  kConvert,
  kObjectPut,
  kObjectGet,
  kBlockWrite,
  kBlockRead,
};

inline const char* AdmitOpName(AdmitOp op) {
  switch (op) {
    case AdmitOp::kProduce: return "produce";
    case AdmitOp::kFetch: return "fetch";
    case AdmitOp::kSelect: return "select";
    case AdmitOp::kConvert: return "convert";
    case AdmitOp::kObjectPut: return "object_put";
    case AdmitOp::kObjectGet: return "object_get";
    case AdmitOp::kBlockWrite: return "block_write";
    case AdmitOp::kBlockRead: return "block_read";
  }
  return "unknown";
}

/// An admitted request's queueing outcome: how long it waited (virtual
/// nanoseconds) in the tenant/cluster admission queues before its quota
/// tokens were available. 0 = admitted immediately; > 0 = throttled.
struct AdmitTicket {
  uint64_t wait_ns = 0;
};

/// \brief Abstract per-tenant admission gate.
///
/// Lives in common so lower layers (`streaming::Producer`) can be gated
/// without depending on the access module that implements the real
/// controller (`access::AdmissionController`). Both entry points are
/// called with no locks held.
class AdmissionGate {
 public:
  virtual ~AdmissionGate() = default;

  /// Non-blocking decision (open-loop clients): either a ticket — possibly
  /// with a virtual queue wait the caller charges to its own latency — or
  /// kResourceExhausted when the tenant's bounded queue is full (shed).
  virtual Result<AdmitTicket> Admit(const std::string& tenant, AdmitOp op,
                                    uint64_t ops, uint64_t bytes) = 0;

  /// Blocking decision (closed-loop clients, producer backpressure): waits
  /// until the throttle window passes on the simulated clock. Returns
  /// kResourceExhausted immediately — never hangs — when the tenant's
  /// waiter queue is already at its bound.
  virtual Result<AdmitTicket> AdmitBlocking(const std::string& tenant,
                                            AdmitOp op, uint64_t ops,
                                            uint64_t bytes) = 0;
};

}  // namespace streamlake

#endif  // STREAMLAKE_COMMON_ADMISSION_GATE_H_
