#ifndef STREAMLAKE_COMMON_STATUS_H_
#define STREAMLAKE_COMMON_STATUS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>

namespace streamlake {

/// Error codes used across StreamLake. Modeled after the RocksDB/Arrow
/// convention: operations return a Status (or Result<T>) instead of throwing.
enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kAlreadyExists = 2,
  kInvalidArgument = 3,
  kIOError = 4,
  kCorruption = 5,
  kNotSupported = 6,
  kResourceExhausted = 7,
  kConflict = 8,       // optimistic-concurrency commit conflicts
  kQuotaExceeded = 9,  // stream quota violations
  kTimeout = 10,
  kAborted = 11,       // transaction aborts (2PC)
  kOutOfMemory = 12,   // simulated compute-side OOM (Fig. 15b)
  kUnknown = 255,
};

/// \brief Outcome of an operation: a code plus a human-readable message.
///
/// Cheap to copy in the OK case (no allocation); error construction
/// allocates the message. Never throw across StreamLake API boundaries.
///
/// [[nodiscard]] on the class makes every function returning Status by
/// value warn when the caller drops the result (enforced repo-wide by
/// tools/lint.py and -Werror in scripts/check.sh).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(StatusCode::kIOError, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(StatusCode::kNotSupported, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(StatusCode::kResourceExhausted, msg);
  }
  static Status Conflict(std::string_view msg) {
    return Status(StatusCode::kConflict, msg);
  }
  static Status QuotaExceeded(std::string_view msg) {
    return Status(StatusCode::kQuotaExceeded, msg);
  }
  static Status Timeout(std::string_view msg) {
    return Status(StatusCode::kTimeout, msg);
  }
  static Status Aborted(std::string_view msg) {
    return Status(StatusCode::kAborted, msg);
  }
  static Status OutOfMemory(std::string_view msg) {
    return Status(StatusCode::kOutOfMemory, msg);
  }
  static Status Unknown(std::string_view msg) {
    return Status(StatusCode::kUnknown, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  bool IsQuotaExceeded() const { return code_ == StatusCode::kQuotaExceeded; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "IOError: disk full" or "OK".
  std::string ToString() const;

  /// Explicitly discard this status at best-effort call sites (cache drops,
  /// rollback cleanup). Keeps [[nodiscard]] honest: every ignored Status is
  /// greppable instead of silent.
  void IgnoreError() const {}

  /// Like IgnoreError(), but an error is not silent: it logs a warning
  /// tagged with `what` (the call-site's one-word reason) and bumps the
  /// `common.status.ignored` counter. Use in background workers and
  /// rollback paths where a dropped error would otherwise vanish.
  void LogIgnored(const char* what) const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string_view msg)
      : code_(code), message_(msg) {}

  StatusCode code_;
  std::string message_;
};

/// Evaluate `expr`; if the resulting Status is not OK, return it.
#define SL_RETURN_NOT_OK(expr)            \
  do {                                    \
    ::streamlake::Status _s = (expr);     \
    if (!_s.ok()) return _s;              \
  } while (0)

namespace internal {
/// Overload set used by SL_CHECK_OK to extract the Status from either a
/// Status or a Result<T> (result.h adds the Result overload).
inline const Status& StatusOf(const Status& s) { return s; }
}  // namespace internal

/// Abort if a Status/Result expression is not OK. For benches, examples,
/// and test harness code where a failure means the setup itself is broken
/// and there is no caller to propagate to.
#define SL_CHECK_OK(expr)                                             \
  do {                                                                \
    const auto& _sl_ok = (expr);                                      \
    if (!_sl_ok.ok()) {                                               \
      std::fprintf(                                                   \
          stderr, "%s:%d: CHECK_OK failed: %s -> %s\n", __FILE__,     \
          __LINE__, #expr,                                            \
          ::streamlake::internal::StatusOf(_sl_ok).ToString().c_str()); \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

}  // namespace streamlake

#endif  // STREAMLAKE_COMMON_STATUS_H_
