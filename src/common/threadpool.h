#ifndef STREAMLAKE_COMMON_THREADPOOL_H_
#define STREAMLAKE_COMMON_THREADPOOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace streamlake {

/// Fixed-size worker pool used by background services (MetaFresher,
/// stream-to-table conversion, tiering). Tasks are run FIFO; Shutdown()
/// drains queued tasks before joining so callers can rely on completion.
class ThreadPool {
 public:
  /// `name` appears in misuse reports (Submit-after-Shutdown) so a crash
  /// identifies which of the process's pools was abused.
  explicit ThreadPool(int num_threads, const char* name = "common.threadpool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Calling after Shutdown() is a checked error: the task
  /// could never run (workers are already joined), so Submit aborts with a
  /// named misuse report instead of silently dropping or deadlocking.
  void Submit(std::function<void()> task);

  /// Block until all tasks submitted so far have finished.
  void Wait();

  /// Drain the queue, then stop and join all workers. Idempotent.
  void Shutdown();

  int num_threads() const { return static_cast<int>(threads_.size()); }
  const char* name() const { return name_; }

 private:
  void WorkerLoop();

  const char* const name_;
  Mutex mu_{LockRank::kThreadPool, "common.threadpool"};
  CondVar work_cv_;   // signals workers
  CondVar idle_cv_;   // signals Wait()
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  std::vector<std::thread> threads_;
  int active_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace streamlake

#endif  // STREAMLAKE_COMMON_THREADPOOL_H_
