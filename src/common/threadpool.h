#ifndef STREAMLAKE_COMMON_THREADPOOL_H_
#define STREAMLAKE_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace streamlake {

/// Fixed-size worker pool used by background services (MetaFresher,
/// stream-to-table conversion, tiering). Tasks are run FIFO; Shutdown()
/// drains queued tasks before joining so callers can rely on completion.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Must not be called after Shutdown().
  void Submit(std::function<void()> task);

  /// Block until all tasks submitted so far have finished.
  void Wait();

  /// Drain the queue, then stop and join all workers. Idempotent.
  void Shutdown();

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers
  std::condition_variable idle_cv_;   // signals Wait()
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace streamlake

#endif  // STREAMLAKE_COMMON_THREADPOOL_H_
