#ifndef STREAMLAKE_COMMON_THREADPOOL_H_
#define STREAMLAKE_COMMON_THREADPOOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace streamlake {

/// Fixed-size worker pool used by background services (MetaFresher,
/// stream-to-table conversion, tiering). Tasks are run FIFO; Shutdown()
/// drains queued tasks before joining so callers can rely on completion.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Must not be called after Shutdown().
  void Submit(std::function<void()> task);

  /// Block until all tasks submitted so far have finished.
  void Wait();

  /// Drain the queue, then stop and join all workers. Idempotent.
  void Shutdown();

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  Mutex mu_{LockRank::kThreadPool, "common.threadpool"};
  CondVar work_cv_;   // signals workers
  CondVar idle_cv_;   // signals Wait()
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  std::vector<std::thread> threads_;
  int active_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace streamlake

#endif  // STREAMLAKE_COMMON_THREADPOOL_H_
