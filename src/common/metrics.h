#ifndef STREAMLAKE_COMMON_METRICS_H_
#define STREAMLAKE_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"

namespace streamlake {

/// \brief Process-wide observability layer (ROADMAP: "as fast as the
/// hardware allows" is unenforceable until perf is recorded per PR).
///
/// Every subsystem reports through one MetricsRegistry under stable
/// dotted names — `<subsystem>.<component>.<metric>` with unit suffixes
/// (`_bytes`, `_records`, `_ops`, `_ns`); the full per-subsystem table
/// lives in DESIGN.md ("Observability"). Bench binaries embed a registry
/// snapshot in their `BENCH_<name>.json` reports, which the CI
/// bench-regression gate compares against bench/baseline.json.
///
/// Hot-path idiom — one registry lookup per call site per process, then a
/// single relaxed atomic add per event:
///
///   static Counter* appends =
///       MetricsRegistry::Global().GetCounter("stream.object.append_records");
///   appends->Increment(batch.size());

/// \brief Monotonic event counter. Increment is one relaxed atomic add;
/// safe from any thread, while holding any lock.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<uint64_t> value_{0};
};

/// \brief Point-in-time level (queue depth, cache occupancy). Unlike
/// Counter it can move both ways.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<int64_t> value_{0};
};

/// \brief Lock-free log-linear bucketed histogram (HdrHistogram-style)
/// for latency/size distributions. Values 0..15 get exact buckets; above
/// that each power of two splits into 16 linear sub-buckets, so any
/// recorded value is reconstructed to within one sub-bucket (~6% relative
/// error) — plenty for p50/p90/p99 regression tracking. Record() is a few
/// relaxed atomic adds; no locking anywhere.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 4;  // 16 sub-buckets per octave
  // Groups run 0 (exact values 0..15) through 63 - (kSubBucketBits - 1),
  // 16 sub-buckets each — covers all of uint64_t.
  static constexpr size_t kNumBuckets =
      ((64 - kSubBucketBits + 1) << kSubBucketBits);

  void Record(uint64_t value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  uint64_t Min() const;
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  /// Value at quantile q in [0, 1] (q=0.5 is the median), reconstructed
  /// from bucket midpoints. 0 when empty.
  uint64_t ValueAtQuantile(double q) const;

 private:
  friend class MetricsRegistry;
  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketMidpoint(size_t index);
  void Reset();

  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~0ULL};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// Point-in-time copy of one histogram's summary statistics.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
};

/// Point-in-time copy of every registered metric, keyed by name.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// \brief The process-wide metric registry. Get*() registers on first use
/// and returns a stable pointer (metrics are never destroyed), so call
/// sites cache it in a function-local static. Registering the same name
/// as two different metric types is a bug and aborts — names are the
/// public observability contract (DESIGN.md) and must stay unambiguous.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Current value of a counter, 0 if it was never registered. This is
  /// the sampling primitive behind delta-style per-operation metrics
  /// (table::MetadataCounters::Capture).
  uint64_t CounterValue(const std::string& name) const;

  MetricsSnapshot Snapshot() const;

  /// Human-readable one-line-per-metric dump.
  std::string TextReport() const;
  /// JSON object {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, sum, min, max, p50, p90, p99}}} — the "registry"
  /// section of every BENCH_<name>.json report.
  std::string JsonReport() const;

  /// Zero every registered metric, keeping registrations (and therefore
  /// all cached pointers) valid. Tests only: process-global, so
  /// concurrent use outside a test fixture races with live increments.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  enum class Kind { kCounter, kGauge, kHistogram };
  const char* KindName(Kind kind) const;

  mutable Mutex mu_{LockRank::kMetricsRegistry, "common.metrics_registry"};
  std::map<std::string, Kind> kinds_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace streamlake

#endif  // STREAMLAKE_COMMON_METRICS_H_
