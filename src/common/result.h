#ifndef STREAMLAKE_COMMON_RESULT_H_
#define STREAMLAKE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace streamlake {

/// \brief Either a value of type T or a non-OK Status, Arrow-style.
///
/// Example:
///   Result<int> r = ParsePort(s);
///   if (!r.ok()) return r.status();
///   int port = *r;
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Construct from a value (implicit by design, like arrow::Result).
  Result(T value) : value_(std::move(value)) {}
  /// Construct from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Move the value out, or return `fallback` when in the error state.
  T ValueOr(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

namespace internal {
template <typename T>
const Status& StatusOf(const Result<T>& r) {
  return r.status();
}
}  // namespace internal

/// Assign the value of a Result expression to `lhs`, or early-return its
/// error status. `lhs` may include a declaration: SL_ASSIGN_OR_RETURN(auto x,
/// Foo());
#define SL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value();

#define SL_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define SL_ASSIGN_OR_RETURN_NAME(a, b) SL_ASSIGN_OR_RETURN_CONCAT(a, b)
#define SL_ASSIGN_OR_RETURN(lhs, expr) \
  SL_ASSIGN_OR_RETURN_IMPL(            \
      SL_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)

}  // namespace streamlake

#endif  // STREAMLAKE_COMMON_RESULT_H_
