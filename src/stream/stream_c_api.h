#ifndef STREAMLAKE_STREAM_STREAM_C_API_H_
#define STREAMLAKE_STREAM_STREAM_C_API_H_

#include <cstdint>

#include "stream/stream_object.h"

namespace streamlake::stream {

// The C-style stream object operations of Fig. 3, verbatim signatures.
// Thin adapters over StreamObjectManager so applications written against
// the paper's interface run unchanged. Return codes: 0 on success, the
// negated StatusCode otherwise.

using object_id_t = uint64_t;

/// CREATE_OPTIONS_S (Fig. 3 line 2): storage configuration.
struct CREATE_OPTIONS_S {
  /// 0 = replicate, 1 = erasure code.
  int32_t redundancy_mode = 0;
  int32_t replicas = 3;
  int32_t ec_data = 4;
  int32_t ec_parity = 1;
  uint64_t io_quota_records_per_sec = 0;
  int32_t io_aggregation = 1;
};

/// IO_CONTENT_S (Fig. 3 lines 8/14): non-blocking I/O buffer holding the
/// records to append or the records read back.
struct IO_CONTENT_S {
  std::vector<StreamRecord> records;
};

/// READ_CTRL_S (Fig. 3 line 13): read control conditions.
struct READ_CTRL_S {
  /// Max records to return; the message service defaults to "respond to
  /// all subsequent messages".
  uint64_t max_records = UINT64_MAX;
};

/// Bind the manager the C API operates on (the DPC client's connection).
void SetServerStreamManager(StreamObjectManager* manager);

int32_t CreateServerStreamObject(const CREATE_OPTIONS_S* option,
                                 object_id_t* objectId);

int32_t DestroyServerStreamObject(const object_id_t* objectId);

int32_t AppendServerStreamObject(const object_id_t* objectId,
                                 const IO_CONTENT_S* io, uint64_t* offset);

int32_t ReadServerStreamObject(const object_id_t* objectId, uint64_t offset,
                               const READ_CTRL_S* readCtrl, IO_CONTENT_S* io);

}  // namespace streamlake::stream

#endif  // STREAMLAKE_STREAM_STREAM_C_API_H_
